// Command prefix-opt runs one benchmark's evaluation input under a chosen
// allocation strategy (baseline, HDS, HALO, or a PreFix plan) and prints
// the run metrics — the "optimized executable" stage of Figure 8, plus
// the measurement the paper's Table 3 row needs.
//
// Usage:
//
//	prefix-opt -bench mcf                       # compare all strategies
//	prefix-opt -bench mcf -plan mcf.plan.json   # run a saved plan
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/workloads"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark name (required)")
		planPath = flag.String("plan", "", "PreFix plan JSON (from prefix-analyze); when set, only that plan is run against the baseline")
		scale    = flag.String("scale", "long", "evaluation scale: bench or long")
		paperHW  = flag.Bool("paper-cache", false, "use the paper's 40MB-LLC cache geometry instead of the scaled one")
	)
	flag.Parse()
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}

	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = *scale == "bench"
	if *paperHW {
		opt.Cache = cachesim.PaperConfig()
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "strategy\tcycles\tvs baseline\tL1 miss\tLLC miss\tstalls\tpeak")

	if *planPath != "" {
		runSavedPlan(tw, *bench, *planPath, opt)
		return
	}

	cmp, err := pipeline.RunBenchmark(*bench, opt)
	if err != nil {
		fatal(err)
	}
	row := func(name string, r pipeline.RunResult) {
		m := r.Metrics
		fmt.Fprintf(tw, "%s\t%.4g\t%+.2f%%\t%.3f%%\t%.4f%%\t%.1f%%\t%d\n",
			name, m.Cycles, r.TimeDeltaPct(cmp.Baseline),
			100*m.Cache.L1MissRate(), 100*m.Cache.LLCMissRate(),
			m.BackendStallPct(), r.PeakBytes)
	}
	row("baseline", cmp.Baseline)
	row("hds", cmp.HDS)
	row("halo", cmp.HALO)
	for _, v := range []core.Variant{core.VariantHot, core.VariantHDS, core.VariantHDSHot} {
		row(v.String(), cmp.PreFix[v])
	}
	fmt.Fprintf(tw, "best\t%s\t%+.2f%%\t\t\t\t\n", cmp.Best, cmp.BestResult().TimeDeltaPct(cmp.Baseline))
}

func runSavedPlan(tw *tabwriter.Writer, bench, planPath string, opt pipeline.Options) {
	spec, err := workloads.Get(bench)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		fatal(err)
	}
	plan, err := core.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cfg := spec.Long
	if opt.UseBenchScale {
		cfg = spec.Bench
	}

	run := func(alloc machine.Allocator) machine.Metrics {
		m := machine.New(alloc, opt.Cache)
		spec.Program.Run(m, cfg)
		return m.Finish()
	}
	base := run(baselines.NewBaseline(opt.Cache.Cost))
	alloc := core.NewAllocator(plan, opt.Cache.Cost)
	pm := run(alloc)

	delta := 100 * (pm.Cycles - base.Cycles) / base.Cycles
	fmt.Fprintf(tw, "baseline\t%.4g\t\t%.3f%%\t%.4f%%\t%.1f%%\t\n",
		base.Cycles, 100*base.Cache.L1MissRate(), 100*base.Cache.LLCMissRate(), base.BackendStallPct())
	fmt.Fprintf(tw, "%s\t%.4g\t%+.2f%%\t%.3f%%\t%.4f%%\t%.1f%%\t\n",
		plan.Variant, pm.Cycles, delta,
		100*pm.Cache.L1MissRate(), 100*pm.Cache.LLCMissRate(), pm.BackendStallPct())
	cap := alloc.Capture()
	fmt.Fprintf(tw, "capture\tavoided=%d\tfallback=%d\tstatic=%d\trecycled=%d\t\t\n",
		cap.MallocsAvoided, cap.FallbackMallocs, cap.StaticCaptured, cap.RecycledCaptured)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefix-opt:", err)
	os.Exit(1)
}
