// Command prefix-opt runs one benchmark's evaluation input under a chosen
// allocation strategy (baseline, HDS, HALO, or a PreFix plan) and prints
// the run metrics — the "optimized executable" stage of Figure 8, plus
// the measurement the paper's Table 3 row needs.
//
// Usage:
//
//	prefix-opt -bench mcf                       # compare all strategies
//	prefix-opt -bench mcf,health -jobs 2        # several benchmarks, in parallel
//	prefix-opt -bench mcf -plan mcf.plan.json   # run a saved plan
//	prefix-opt -bench mcf -attrib               # + per-site attribution table
//	prefix-opt -bench mcf -metrics-out run.prom -trace-out phases.json -v
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/obsflags"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/report"
	"prefix/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefix-opt:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		bench    = flag.String("bench", "", "benchmark name, or a comma-separated list (required)")
		planPath = flag.String("plan", "", "PreFix plan JSON (from prefix-analyze); when set, only that plan is run against the baseline (single -bench only)")
		scale    = flag.String("scale", "long", "evaluation scale: bench or long")
		jobs     = flag.Int("jobs", pipeline.DefaultJobs(), "run up to N benchmark evaluations concurrently (1 = serial)")
		paperHW  = flag.Bool("paper-cache", false, "use the paper's 40MB-LLC cache geometry instead of the scaled one")
		stream   = flag.Bool("stream", false, "collect profiles through the bounded-memory spill-to-disk streaming path (results are identical)")
		attrib   = flag.Bool("attrib", false, "attribute misses to allocation sites and append the per-site attribution table (strategy rows are identical)")
		obsf     = obsflags.Register(flag.CommandLine)
	)
	obsf.RegisterServe(flag.CommandLine)
	obsf.RegisterShards(flag.CommandLine)
	flag.Parse()
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *scale != "long" && *scale != "bench" {
		return fmt.Errorf("unknown -scale %q (valid: long, bench)", *scale)
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1 (got %d)", *jobs)
	}
	if obsf.Shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", obsf.Shards)
	}
	names, err := workloads.ResolveList(*bench)
	if err != nil {
		return err
	}
	if *planPath != "" && len(names) != 1 {
		return fmt.Errorf("-plan runs a single benchmark; got %d in -bench %q", len(names), *bench)
	}

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = *scale == "bench"
	if *paperHW {
		opt.Cache = cachesim.PaperConfig()
	}
	opt.Progress = sess.Progress()
	opt.Metrics = sess.Metrics
	opt.Tracer = sess.Tracer
	opt.Perf = sess.Perf
	opt.Stream = *stream
	opt.Shards = obsf.Shards
	opt.Attribution = *attrib
	opt.Explain = sess.Explain
	if *attrib && *planPath != "" {
		return fmt.Errorf("-attrib applies to the strategy comparison, not -plan runs")
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tcycles\tvs baseline\tL1 miss\tLLC miss\tstalls\tpeak")

	var cmps []*pipeline.Comparison
	if *planPath != "" {
		err = runSavedPlan(tw, names[0], *planPath, opt)
	} else {
		cmps, err = runComparison(tw, names, opt, *jobs)
	}
	if err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *attrib {
		fmt.Println()
		return report.AttributionTable(os.Stdout, cmps, pipeline.ExplainTopSites)
	}
	return nil
}

func runComparison(tw *tabwriter.Writer, names []string, opt pipeline.Options, jobs int) ([]*pipeline.Comparison, error) {
	cmps, err := pipeline.RunSuite(names, opt, jobs)
	if err != nil {
		return nil, err
	}
	for i, cmp := range cmps {
		if len(cmps) > 1 {
			if i > 0 {
				fmt.Fprintln(tw)
			}
			fmt.Fprintf(tw, "%s\n", cmp.Benchmark)
		}
		row := func(name string, r pipeline.RunResult) {
			m := r.Metrics
			fmt.Fprintf(tw, "%s\t%.4g\t%+.2f%%\t%.3f%%\t%.4f%%\t%.1f%%\t%d\n",
				name, m.Cycles, r.TimeDeltaPct(cmp.Baseline),
				100*m.Cache.L1MissRate(), 100*m.Cache.LLCMissRate(),
				m.BackendStallPct(), r.PeakBytes)
		}
		row("baseline", cmp.Baseline)
		row("hds", cmp.HDS)
		row("halo", cmp.HALO)
		for _, v := range []core.Variant{core.VariantHot, core.VariantHDS, core.VariantHDSHot} {
			row(v.String(), cmp.PreFix[v])
		}
		fmt.Fprintf(tw, "best\t%s\t%+.2f%%\t\t\t\t\n", cmp.Best, cmp.BestResult().TimeDeltaPct(cmp.Baseline))
	}
	return cmps, nil
}

func runSavedPlan(tw *tabwriter.Writer, bench, planPath string, opt pipeline.Options) error {
	spec, err := workloads.Get(bench)
	if err != nil {
		return err
	}
	f, err := os.Open(planPath)
	if err != nil {
		return err
	}
	plan, err := core.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	cfg := spec.Long
	if opt.UseBenchScale {
		cfg = spec.Bench
	}

	root := opt.Tracer.Start("saved-plan " + bench)
	defer root.End()
	run := func(alloc machine.Allocator) machine.Metrics {
		span := root.Child("eval " + alloc.Name())
		m := machine.New(alloc, opt.Cache)
		spec.Program.Run(m, cfg)
		metrics := m.Finish()
		span.Set("cycles", metrics.Cycles)
		span.End()
		metrics.Publish(opt.Metrics, "benchmark", bench, "run", alloc.Name())
		return metrics
	}
	base := run(baselines.NewBaseline(opt.Cache.Cost))
	alloc := core.NewAllocator(plan, opt.Cache.Cost)
	pm := run(alloc)
	alloc.Publish(opt.Metrics, "benchmark", bench, "run", alloc.Name())

	delta := 100 * (pm.Cycles - base.Cycles) / base.Cycles
	fmt.Fprintf(tw, "baseline\t%.4g\t\t%.3f%%\t%.4f%%\t%.1f%%\t\n",
		base.Cycles, 100*base.Cache.L1MissRate(), 100*base.Cache.LLCMissRate(), base.BackendStallPct())
	fmt.Fprintf(tw, "%s\t%.4g\t%+.2f%%\t%.3f%%\t%.4f%%\t%.1f%%\t\n",
		plan.Variant, pm.Cycles, delta,
		100*pm.Cache.L1MissRate(), 100*pm.Cache.LLCMissRate(), pm.BackendStallPct())
	cap := alloc.Capture()
	fmt.Fprintf(tw, "capture\tavoided=%d\tfallback=%d\tstatic=%d\trecycled=%d\t\t\n",
		cap.MallocsAvoided, cap.FallbackMallocs, cap.StaticCaptured, cap.RecycledCaptured)
	return nil
}
