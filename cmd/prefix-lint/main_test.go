package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk. Naming it
// "prefix" puts its internal/ packages inside the deterministic scope,
// so the nodeterminism analyzer fires on the seeded files exactly as it
// would in the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module prefix\n\ngo 1.21\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violatingSource = `package sim

import (
	"fmt"
	"io"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
`

const cleanSource = `package sim

import (
	"fmt"
	"io"
	"sort"
)

func dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}
`

func TestCLIReportsSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "time.Now") || !strings.Contains(out, "(nodeterminism)") {
		t.Errorf("stdout missing the nodeterminism finding:\n%s", out)
	}
	if !strings.Contains(out, "io.Writer") || !strings.Contains(out, "(mapiter)") {
		t.Errorf("stdout missing the mapiter finding:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 issue(s)") {
		t.Errorf("stderr missing the diagnostic count: %q", stderr.String())
	}
}

func TestCLICleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": cleanSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

func TestCLIJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string
		File     string
		Line     int
		Message  string
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d JSON diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic missing fields: %+v", d)
		}
	}
}

func TestCLIBadPatternExitsTwo(t *testing.T) {
	dir := writeModule(t, nil)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./no/such/pkg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}

func TestCLIListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"nodeterminism", "mapiter", "spanend", "metricname",
		"hotalloc", "hotcall", "escapebudget"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestCLIAnalyzersSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-analyzers", "mapiter", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(mapiter)") {
		t.Errorf("selected analyzer did not report:\n%s", out)
	}
	if strings.Contains(out, "(nodeterminism)") {
		t.Errorf("unselected analyzer reported anyway:\n%s", out)
	}
}

func TestCLIUnknownAnalyzerExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %q", stderr.String())
	}
}

// hotpathSource seeds the acceptance scenario: a //prefix:hotpath
// function that picked up a fmt.Sprintf and a defer.
const hotpathSource = `package sim

import "fmt"

type cache struct{ hits, misses uint64 }

func (c *cache) note() {}

//prefix:hotpath
func (c *cache) Access(addr uint64) bool {
	defer c.note()
	_ = fmt.Sprintf("access %d", addr)
	if addr&1 == 0 {
		c.hits++
		return true
	}
	c.misses++
	return false
}
`

func TestCLIHotpathFindingsNameTheConstruct(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/hot.go": hotpathSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-analyzers", "hotalloc,hotcall", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "fmt.Sprintf allocates") || !strings.Contains(out, "(hotalloc)") {
		t.Errorf("stdout missing the hotalloc fmt.Sprintf finding:\n%s", out)
	}
	if !strings.Contains(out, "defer in hot-path function cache.Access") || !strings.Contains(out, "(hotcall)") {
		t.Errorf("stdout missing the hotcall defer finding:\n%s", out)
	}
}

// escapingSource has one annotated function whose local provably moves
// to the heap — the escapebudget record/check round-trip fixture.
const escapingSource = `package sim

//prefix:hotpath
func Leak() *int {
	x := 7
	return &x
}
`

func TestCLIEscapeBudgetRecordRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/leak.go": escapingSource})
	budget := filepath.Join(dir, "testdata", "escape-budget.json")
	lint := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run(append([]string{"-C", dir}, args...), &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	// No budget yet: check mode demands a recording.
	code, out, serr := lint("-analyzers", "escapebudget", "./...")
	if code != 1 || !strings.Contains(out, "no escape-budget entry for prefix/internal/sim.Leak") {
		t.Fatalf("missing-budget run: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, serr)
	}

	// Record, then record again: the file must be byte-stable.
	if code, out, serr = lint("-analyzers", "escapebudget", "-record", "./..."); code != 0 {
		t.Fatalf("record run failed: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, serr)
	}
	first, err := os.ReadFile(budget)
	if err != nil {
		t.Fatalf("budget not written: %v", err)
	}
	if !strings.Contains(string(first), "prefix/internal/sim.Leak") ||
		!strings.Contains(string(first), "moved to heap: x") {
		t.Fatalf("recorded budget missing the Leak entry:\n%s", first)
	}
	if code, _, serr = lint("-analyzers", "escapebudget", "-record", "./..."); code != 0 {
		t.Fatalf("second record run failed: code=%d\nstderr:\n%s", code, serr)
	}
	second, err := os.ReadFile(budget)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("two consecutive -record runs differ:\n--- first\n%s\n--- second\n%s", first, second)
	}

	// Check mode against the fresh budget is clean.
	if code, out, serr = lint("-analyzers", "escapebudget", "./..."); code != 0 {
		t.Fatalf("in-budget check failed: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, serr)
	}

	// A new escape beyond the recorded budget is a finding.
	grown := escapingSource + `
//prefix:hotpath
func Leak2() *uint64 {
	y := uint64(9)
	return &y
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal/sim/leak.go"), []byte(grown), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, serr = lint("-analyzers", "escapebudget", "./...")
	if code != 1 || !strings.Contains(out, "no escape-budget entry for prefix/internal/sim.Leak2") {
		t.Fatalf("grown-escape check: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, serr)
	}
}

func TestVettoolFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", stdout.String())
	}
}

func TestVettoolVersionHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), " version ") {
		t.Errorf("-V=full printed %q, want a tool-version line", stdout.String())
	}
}

// writeVetCfg emulates the .cfg file cmd/go hands a -vettool for one
// compilation unit.
func writeVetCfg(t *testing.T, modDir, pkgRel, importPath string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	pkgDir := filepath.Join(modDir, pkgRel)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(pkgDir, e.Name()))
		}
	}
	vetxPath = filepath.Join(t.TempDir(), "unit.vetx")
	cfg := vetConfig{
		ID:         importPath,
		Dir:        pkgDir,
		ImportPath: importPath,
		GoFiles:    goFiles,
		VetxOnly:   vetxOnly,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestVettoolUnitReportsViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	cfgPath, vetxPath := writeVetCfg(t, dir, "internal/sim", "prefix/internal/sim", false)
	var stdout, stderr bytes.Buffer
	code := run([]string{cfgPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "(nodeterminism)") || !strings.Contains(stderr.String(), "(mapiter)") {
		t.Errorf("unit-mode stderr missing findings:\n%s", stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("VetxOutput facts file was not written: %v", err)
	}
}

func TestVettoolUnitVetxOnly(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	cfgPath, vetxPath := writeVetCfg(t, dir, "internal/sim", "prefix/internal/sim", true)
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("VetxOnly exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("VetxOutput facts file was not written: %v", err)
	}
}
