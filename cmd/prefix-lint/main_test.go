package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk. Naming it
// "prefix" puts its internal/ packages inside the deterministic scope,
// so the nodeterminism analyzer fires on the seeded files exactly as it
// would in the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module prefix\n\ngo 1.21\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violatingSource = `package sim

import (
	"fmt"
	"io"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
`

const cleanSource = `package sim

import (
	"fmt"
	"io"
	"sort"
)

func dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}
`

func TestCLIReportsSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "time.Now") || !strings.Contains(out, "(nodeterminism)") {
		t.Errorf("stdout missing the nodeterminism finding:\n%s", out)
	}
	if !strings.Contains(out, "io.Writer") || !strings.Contains(out, "(mapiter)") {
		t.Errorf("stdout missing the mapiter finding:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 issue(s)") {
		t.Errorf("stderr missing the diagnostic count: %q", stderr.String())
	}
}

func TestCLICleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": cleanSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

func TestCLIJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string
		File     string
		Line     int
		Message  string
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d JSON diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic missing fields: %+v", d)
		}
	}
}

func TestCLIBadPatternExitsTwo(t *testing.T) {
	dir := writeModule(t, nil)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./no/such/pkg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}

func TestCLIAnalyzersFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"nodeterminism", "mapiter", "spanend", "metricname"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestVettoolFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", stdout.String())
	}
}

func TestVettoolVersionHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), " version ") {
		t.Errorf("-V=full printed %q, want a tool-version line", stdout.String())
	}
}

// writeVetCfg emulates the .cfg file cmd/go hands a -vettool for one
// compilation unit.
func writeVetCfg(t *testing.T, modDir, pkgRel, importPath string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	pkgDir := filepath.Join(modDir, pkgRel)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(pkgDir, e.Name()))
		}
	}
	vetxPath = filepath.Join(t.TempDir(), "unit.vetx")
	cfg := vetConfig{
		ID:         importPath,
		Dir:        pkgDir,
		ImportPath: importPath,
		GoFiles:    goFiles,
		VetxOnly:   vetxOnly,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestVettoolUnitReportsViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	cfgPath, vetxPath := writeVetCfg(t, dir, "internal/sim", "prefix/internal/sim", false)
	var stdout, stderr bytes.Buffer
	code := run([]string{cfgPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "(nodeterminism)") || !strings.Contains(stderr.String(), "(mapiter)") {
		t.Errorf("unit-mode stderr missing findings:\n%s", stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("VetxOutput facts file was not written: %v", err)
	}
}

func TestVettoolUnitVetxOnly(t *testing.T) {
	dir := writeModule(t, map[string]string{"internal/sim/sim.go": violatingSource})
	cfgPath, vetxPath := writeVetCfg(t, dir, "internal/sim", "prefix/internal/sim", true)
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("VetxOnly exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("VetxOutput facts file was not written: %v", err)
	}
}
