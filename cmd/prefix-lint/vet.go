package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prefix/internal/analysis"
)

// vetConfig is the subset of the JSON config the go command hands a
// -vettool for each compilation unit (see cmd/go's vetConfig).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `prefix-lint -V=full`, which the go command uses
// as a cache key for vet results. Hashing the executable means a
// rebuilt tool (new or changed analyzers) invalidates cached findings.
func printVersion(stdout io.Writer) int {
	name := "prefix-lint"
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stdout, "%s version devel\n", name)
		return 0
	}
	name = filepath.Base(exe)
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stdout, "%s version devel\n", name)
		return 0
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stdout, "%s version devel\n", name)
		return 0
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%x\n", name, h.Sum(nil))
	return 0
}

// runVetUnit analyzes one compilation unit described by a go vet .cfg
// file. Exit codes follow the vettool convention: 0 clean, 1 findings,
// 2 protocol or load error.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "prefix-lint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "prefix-lint: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command requires the facts file to exist even though this
	// suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "prefix-lint: writing %s: %v\n", cfg.VetxOutput, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test variants arrive as "pkg [pkg.test]" or "pkg.test"; the suite
	// deliberately skips test code (tests fake clocks and metric names),
	// so only the production files of the base package are checked.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	if strings.HasSuffix(importPath, ".test") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := analysis.TypeCheckFiles(fset, imp, importPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "prefix-lint: %v\n", err)
		return 2
	}
	// escapebudget shells out to `go build` and diffs a repo-level
	// budget file; neither fits the vet unit protocol (one package per
	// process, run from inside the go command's own build), so the vet
	// path runs everything else. The budget gate runs under the normal
	// prefix-lint driver and `make lint`.
	analyzers := make([]*analysis.Analyzer, 0, len(analysis.All()))
	for _, a := range analysis.All() {
		if a.Name == "escapebudget" {
			continue
		}
		analyzers = append(analyzers, a)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "prefix-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
