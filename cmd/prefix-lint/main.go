// Command prefix-lint runs the repo's static-analysis suite (see
// internal/analysis): nodeterminism, mapiter, spanend, metricname, and
// the hot-path family hotalloc/hotcall/escapebudget — the mechanical
// enforcement of the invariants the evaluation rests on.
//
// Usage:
//
//	prefix-lint [-json] [-C dir] [-analyzers a,b] [-record] [-budget file] [packages...]
//
// Packages default to ./... and accept any `go list` pattern.
// -analyzers selects a comma-separated subset of the suite (default:
// all; -list prints the registry). -record rewrites the escapebudget
// baseline at -budget (default testdata/escape-budget.json, resolved
// relative to -C) instead of diffing against it. The exit status is 0
// when the tree is clean, 1 when diagnostics were reported, and 2 on a
// usage or load error.
//
// The binary also speaks the `go vet -vettool` unit protocol, so the
// same analyzers run under plain go vet (editors, external CI):
//
//	go build -o bin/prefix-lint ./cmd/prefix-lint
//	go vet -vettool=$(pwd)/bin/prefix-lint ./...
//
// Suppress a finding with a reasoned directive on the flagged line or
// the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prefix/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet unit protocol calls the tool with exactly one special
	// argument per invocation; recognize those before normal flags.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			return printVersion(stdout)
		case args[0] == "-flags":
			// No analyzer-selection flags: the whole suite always runs.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("prefix-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	dir := fs.String("C", "", "resolve package patterns from this directory")
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: the whole suite)")
	listOnly := fs.Bool("list", false, "list the registered analyzers and exit")
	record := fs.Bool("record", false, "escapebudget: rewrite the budget for the analyzed packages instead of diffing")
	budget := fs.String("budget", "testdata/escape-budget.json", "escapebudget: budget file, resolved relative to -C")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: prefix-lint [-json] [-C dir] [-analyzers a,b] [-record] [-budget file] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a := analysis.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "prefix-lint: unknown analyzer %q (run prefix-lint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	budgetPath := *budget
	if !filepath.IsAbs(budgetPath) {
		budgetPath = filepath.Join(*dir, budgetPath)
	}
	analysis.EscapeBudgetFile = budgetPath
	analysis.EscapeBudgetRecord = *record

	pkgs, err := analysis.LoadPatterns(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "prefix-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "prefix-lint: %v\n", err)
		return 2
	}
	if *record {
		fmt.Fprintf(stderr, "prefix-lint: escape budget recorded to %s\n", budgetPath)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "prefix-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "prefix-lint: %d issue(s) in %d package(s)\n", n, len(pkgs))
		return 1
	}
	return 0
}
