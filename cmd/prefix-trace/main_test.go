package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"prefix/internal/trace"
)

func TestRunUnwritableOutputFailsEarly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out.pfxt")
	var out bytes.Buffer
	err := run([]string{"-bench", "ft", "-o", path}, &out)
	if err == nil {
		t.Fatal("unwritable output path accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the output path", err)
	}
}

func TestRunWritesReadableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.pfxt")
	var out bytes.Buffer
	if err := run([]string{"-bench", "ft", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || tr.Instr == 0 {
		t.Errorf("trace is empty: %d events, instr %d", len(tr.Events), tr.Instr)
	}
	if !strings.Contains(out.String(), "events") {
		t.Errorf("summary line missing: %q", out.String())
	}
}

func TestRunStreamMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	memPath := filepath.Join(dir, "mem.pfxt")
	streamPath := filepath.Join(dir, "stream.pfxt")
	var out bytes.Buffer
	if err := run([]string{"-bench", "ft", "-o", memPath}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "ft", "-o", streamPath, "-stream", "-chunk-events", "64"}, &out); err != nil {
		t.Fatal(err)
	}
	read := func(p string) *trace.Trace {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return tr
	}
	mem, streamed := read(memPath), read(streamPath)
	if !reflect.DeepEqual(mem.Events, streamed.Events) || mem.Instr != streamed.Instr {
		t.Fatalf("streamed trace differs from in-memory trace: %d vs %d events",
			len(streamed.Events), len(mem.Events))
	}
	if !strings.Contains(out.String(), "streamed") {
		t.Errorf("stream summary missing: %q", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "ft", "-o", "x", "-stream", "-text"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-text") {
		t.Errorf("-stream -text conflict not rejected: %v", err)
	}
	if err := run([]string{"-bench", "ft", "-o", "x", "-chunk-events", "0"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-chunk-events") {
		t.Errorf("non-positive -chunk-events not rejected: %v", err)
	}
}
