// Command prefix-trace runs a benchmark under the tracing machine (the
// DynamoRIO stage of the paper's Figure 8 pipeline) and writes the
// allocation/access trace to a file for prefix-analyze.
//
// Usage:
//
//	prefix-trace -bench mcf -o mcf.trace            # profiling input
//	prefix-trace -bench mcf -scale long -o mcf.trace
//	prefix-trace -bench mcf -o mcf.trace -metrics-out run.prom -v
package main

import (
	"flag"
	"fmt"
	"os"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/obsflags"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefix-trace:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		bench = flag.String("bench", "", "benchmark name (required); see -list")
		out   = flag.String("o", "", "output trace file (required)")
		scale = flag.String("scale", "profile", "run scale: profile, bench or long")
		text  = flag.Bool("text", false, "write a human-readable text dump instead of the binary format")
		list  = flag.Bool("list", false, "list benchmarks and exit")
		obsf  = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return nil
	}
	if *bench == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workloads.Get(*bench)
	if err != nil {
		return err
	}
	cfg := spec.Profile
	switch *scale {
	case "profile":
	case "bench":
		cfg = spec.Bench
	case "long":
		cfg = spec.Long
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	root := sess.Tracer.Start("trace " + *bench)
	runSpan := root.Child("profile-run")
	rec := trace.NewRecorder()
	m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), machine.WithRecorder(rec))
	spec.Program.Run(m, cfg)
	metrics := m.Finish()
	tr := rec.Trace()
	runSpan.Set("events", len(tr.Events))
	runSpan.End()
	metrics.Publish(sess.Metrics, "benchmark", *bench, "run", "trace")

	writeSpan := root.Child("write-trace")
	f, err := os.Create(*out)
	if err != nil {
		root.End()
		return err
	}
	var writeErr error
	if *text {
		writeErr = tr.WriteText(f)
	} else {
		writeErr = tr.Write(f)
	}
	if writeErr != nil {
		f.Close()
		root.End()
		return writeErr
	}
	if err := f.Close(); err != nil {
		root.End()
		return err
	}
	writeSpan.End()
	root.End()

	s := tr.Summarize()
	if reg := sess.Metrics; reg != nil {
		kv := []string{"benchmark", *bench}
		reg.Counter("prefix_trace_events_total", kv...).Add(uint64(s.Events))
		reg.Counter("prefix_trace_allocs_total", kv...).Add(s.Allocs)
		reg.Counter("prefix_trace_accesses_total", kv...).Add(s.Accesses)
		reg.Gauge("prefix_trace_sites", kv...).Set(float64(s.Sites))
	}
	fmt.Printf("%s: %d events (%d allocs over %d sites, %d accesses), %d instructions -> %s\n",
		*bench, s.Events, s.Allocs, s.Sites, s.Accesses, metrics.Instr, *out)
	return nil
}
