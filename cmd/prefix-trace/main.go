// Command prefix-trace runs a benchmark under the tracing machine (the
// DynamoRIO stage of the paper's Figure 8 pipeline) and writes the
// allocation/access trace to a file for prefix-analyze.
//
// Usage:
//
//	prefix-trace -bench mcf -o mcf.trace            # profiling input
//	prefix-trace -bench mcf -scale long -o mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark name (required); see -list")
		out   = flag.String("o", "", "output trace file (required)")
		scale = flag.String("scale", "profile", "run scale: profile, bench or long")
		text  = flag.Bool("text", false, "write a human-readable text dump instead of the binary format")
		list  = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}
	if *bench == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workloads.Get(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := spec.Profile
	switch *scale {
	case "profile":
	case "bench":
		cfg = spec.Bench
	case "long":
		cfg = spec.Long
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	rec := trace.NewRecorder()
	m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), machine.WithRecorder(rec))
	spec.Program.Run(m, cfg)
	metrics := m.Finish()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tr := rec.Trace()
	var writeErr error
	if *text {
		writeErr = tr.WriteText(f)
	} else {
		writeErr = tr.Write(f)
	}
	if writeErr != nil {
		f.Close()
		fatal(writeErr)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("%s: %d events (%d allocs over %d sites, %d accesses), %d instructions -> %s\n",
		*bench, s.Events, s.Allocs, s.Sites, s.Accesses, metrics.Instr, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefix-trace:", err)
	os.Exit(1)
}
