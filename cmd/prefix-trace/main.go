// Command prefix-trace runs a benchmark under the tracing machine (the
// DynamoRIO stage of the paper's Figure 8 pipeline) and writes the
// allocation/access trace to a file for prefix-analyze.
//
// Usage:
//
//	prefix-trace -bench mcf -o mcf.trace            # profiling input
//	prefix-trace -bench mcf -scale long -o mcf.trace
//	prefix-trace -bench mcf -o mcf.trace -stream    # bounded memory
//	prefix-trace -bench mcf -o mcf.trace -stream -chunk-events 4096
//	prefix-trace -bench mcf -o mcf.trace -metrics-out run.prom -v
//
// With -stream the trace never materializes: the machine records through
// the spill recorder straight into the output file in the chunked stream
// format, holding at most -chunk-events events in memory. prefix-analyze
// reads both formats.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/obsflags"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// errUsage marks bad invocations; main exits 2 for them, matching flag
// parsing errors.
var errUsage = errors.New("usage")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "prefix-trace:", err)
	os.Exit(1)
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("prefix-trace", flag.ContinueOnError)
	var (
		bench       = fs.String("bench", "", "benchmark name (required); see -list")
		out         = fs.String("o", "", "output trace file (required)")
		scale       = fs.String("scale", "profile", "run scale: profile, bench or long")
		text        = fs.Bool("text", false, "write a human-readable text dump instead of the binary format")
		stream      = fs.Bool("stream", false, "record through the bounded-memory spill recorder straight into the output file (chunked stream format)")
		chunkEvents = fs.Int("chunk-events", trace.DefaultChunkEvents, "events buffered per chunk in -stream mode (the trace memory budget)")
		list        = fs.Bool("list", false, "list benchmarks and exit")
		attrib      = fs.Bool("attrib", false, "attribute the profiling run's misses to allocation sites and print the top sites (trace output is identical)")
		obsf        = obsflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	if *list {
		for _, n := range workloads.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if *bench == "" || *out == "" {
		fs.Usage()
		return errUsage
	}
	if *stream && *text {
		return errors.New("-stream writes the chunked binary format; it cannot be combined with -text")
	}
	if *chunkEvents < 1 {
		return fmt.Errorf("-chunk-events must be positive (got %d)", *chunkEvents)
	}
	spec, err := workloads.Get(*bench)
	if err != nil {
		return err
	}
	cfg := spec.Profile
	switch *scale {
	case "profile":
	case "bench":
		cfg = spec.Bench
	case "long":
		cfg = spec.Long
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	// Create the output before burning cycles on the run: an unwritable
	// path must fail immediately, not after the full trace is built.
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("creating output file %s: %w", *out, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && !errors.Is(cerr, os.ErrClosed) && err == nil {
			err = cerr
		}
	}()

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	root := sess.Tracer.Start("trace " + *bench)
	defer root.End()
	perfScope := sess.Perf.Begin("trace").AttachSpan(root)
	defer perfScope.End()
	if *stream {
		return runStreaming(stdout, f, spec, cfg, *bench, *chunkEvents, *attrib, sess, root, perfScope)
	}

	runSpan := root.Child("profile-run")
	rec := trace.NewRecorder()
	mopts := []machine.Option{machine.WithRecorder(rec)}
	if *attrib {
		mopts = append(mopts, machine.WithAttribution())
	}
	m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), mopts...)
	spec.Program.Run(m, cfg)
	metrics := m.Finish()
	tr := rec.Trace()
	runSpan.Set("events", len(tr.Events))
	runSpan.End()
	perfScope.AddEvents(rec.Stats().Events)
	metrics.Publish(sess.Metrics, "benchmark", *bench, "run", "trace")

	writeSpan := root.Child("write-trace")
	var writeErr error
	if *text {
		writeErr = tr.WriteText(f)
	} else {
		writeErr = tr.Write(f)
	}
	if writeErr == nil {
		writeErr = f.Close()
	}
	writeSpan.End()
	if writeErr != nil {
		return writeErr
	}

	s := tr.Summarize()
	if reg := sess.Metrics; reg != nil {
		kv := []string{"benchmark", *bench}
		rec.Stats().Publish(reg, kv...)
		reg.Counter("prefix_trace_events_total", kv...).Add(uint64(s.Events))
		reg.Counter("prefix_trace_allocs_total", kv...).Add(s.Allocs)
		reg.Counter("prefix_trace_accesses_total", kv...).Add(s.Accesses)
		reg.Gauge("prefix_trace_sites", kv...).Set(float64(s.Sites))
	}
	fmt.Fprintf(stdout, "%s: %d events (%d allocs over %d sites, %d accesses), %d instructions -> %s\n",
		*bench, s.Events, s.Allocs, s.Sites, s.Accesses, metrics.Instr, *out)
	printAttrib(stdout, m.Attrib(), *bench, sess)
	return nil
}

// printAttrib prints the attributed top sites and publishes the
// prefix_attrib_* series; a disabled snapshot (no -attrib) is a no-op.
func printAttrib(stdout io.Writer, a machine.AttribCounts, bench string, sess *obsflags.Session) {
	if !a.Enabled {
		return
	}
	a.Publish(sess.Metrics, "benchmark", bench, "run", "trace")
	fmt.Fprintln(stdout, "top sites by LLC misses:")
	for _, s := range a.Top(5) {
		fmt.Fprintf(stdout, "  site %d: %d accesses, %d L1 misses, %d LLC misses (%.1f%% of all LLC misses)\n",
			s.Site, s.Counts.Accesses, s.Counts.L1Misses, s.Counts.LLCMisses, a.LLCMissSharePct(s.Site))
	}
}

// runStreaming records the run through the spill recorder directly into
// the (already created) output file. The caller closes the file.
func runStreaming(stdout io.Writer, f *os.File, spec workloads.Spec, cfg workloads.Config,
	bench string, chunkEvents int, attrib bool, sess *obsflags.Session, root *obs.Span, perfScope *perfstat.Scope) error {
	runSpan := root.Child("profile-run")
	rec, err := trace.NewSpillRecorder(f, chunkEvents)
	if err != nil {
		runSpan.End()
		return err
	}
	mopts := []machine.Option{machine.WithRecorder(rec)}
	if attrib {
		mopts = append(mopts, machine.WithAttribution())
	}
	m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), mopts...)
	spec.Program.Run(m, cfg)
	metrics := m.Finish()
	if err := rec.Close(); err != nil {
		runSpan.End()
		return err
	}
	stats := rec.Stats()
	runSpan.Set("events", stats.Events)
	runSpan.Set("chunks", stats.Chunks)
	runSpan.Set("peak_buffered_events", stats.PeakBufferedEvents)
	runSpan.End()
	perfScope.AddEvents(stats.Events)

	metrics.Publish(sess.Metrics, "benchmark", bench, "run", "trace")
	if reg := sess.Metrics; reg != nil {
		kv := []string{"benchmark", bench}
		stats.Publish(reg, kv...)
		reg.Counter("prefix_trace_events_total", kv...).Add(stats.Events)
	}
	fmt.Fprintf(stdout, "%s: %d events streamed in %d chunks (peak %d buffered), %d instructions -> %s\n",
		bench, stats.Events, stats.Chunks, stats.PeakBufferedEvents, metrics.Instr, f.Name())
	printAttrib(stdout, m.Attrib(), bench, sess)
	return nil
}
