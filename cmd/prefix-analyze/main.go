// Command prefix-analyze consumes a trace written by prefix-trace, runs
// the full profile analysis (hot objects, hot data streams, Algorithm 1
// reconstitution, context inference with counter sharing) and writes the
// resulting PreFix plan as JSON.
//
// Usage:
//
//	prefix-analyze -trace mcf.trace -o mcf.plan.json
//	prefix-analyze -trace mcf.trace -variant hds -miner sequitur -v
//	prefix-analyze -trace mcf.trace -stream -o mcf.plan.json
//	prefix-analyze -trace mcf.trace -stream -shards 8 -o mcf.plan.json
//	prefix-analyze -trace mcf.trace -ledger mcf.ledger.json  # record every decision
//	prefix-analyze -trace mcf.trace -trace-out phases.json -metrics-out plan.prom
//
// Both trace formats are accepted (the classic header-counted file and
// the chunked stream prefix-trace -stream writes). With -stream the
// analysis runs off the file without materializing the event slice, so
// traces far larger than memory are fine. -shards N decodes and
// analyzes the trace on N parallel workers (default: one per CPU);
// the merged analysis is byte-identical to -shards 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"prefix/internal/obs"
	"prefix/internal/obsflags"
	core "prefix/internal/prefix"
	"prefix/internal/report"
	"prefix/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefix-analyze:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		in      = flag.String("trace", "", "input trace file (required)")
		out     = flag.String("o", "", "output plan JSON (default: stdout)")
		bench   = flag.String("bench", "unknown", "benchmark name recorded in the plan")
		variant = flag.String("variant", "hds+hot", "placement variant: hot, hds, hds+hot")
		miner   = flag.String("miner", "lcs", "hot-data-stream miner: lcs or sequitur")
		summary = flag.Bool("summary", false, "print the analysis summary (OHDS/RHDS) to stderr")
		stream  = flag.Bool("stream", false, "analyze the trace incrementally without materializing it (bounded memory)")
		ledger  = flag.String("ledger", "", "record every planning decision (classification, sharing, recycling, placement) and write the ledger JSON to this file")
		obsf    = obsflags.Register(flag.CommandLine)
	)
	obsf.RegisterShards(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if obsf.Shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", obsf.Shards)
	}

	var v core.Variant
	switch *variant {
	case "hot":
		v = core.VariantHot
	case "hds":
		v = core.VariantHDS
	case "hds+hot":
		v = core.VariantHDSHot
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	cfg := core.DefaultPlanConfig(*bench, v)
	switch *miner {
	case "lcs":
		cfg.Miner = core.MinerLCS
	case "sequitur":
		cfg.Miner = core.MinerSequitur
	default:
		return fmt.Errorf("unknown miner %q", *miner)
	}

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	root := sess.Tracer.Start("analyze " + *bench)
	defer root.End()
	perfScope := sess.Perf.Begin("analyze").AttachSpan(root)
	defer perfScope.End()

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	prog := sess.Progress()
	benchName := *bench
	shardCfg := trace.ShardConfig{
		Shards: obsf.Shards,
		Perf:   sess.Perf,
		Progress: func(ev obs.JobEvent) {
			ev.Benchmark = benchName
			prog(ev)
		},
	}
	var a *trace.Analysis
	if *stream {
		// Incremental: decode straight off the file. -shards N > 1 decodes
		// and analyzes chunks on a parallel worker pool; the merged result
		// is identical to the single-pass analysis.
		anSpan := root.Child("analyze")
		anSpan.Set("shards", shardCfg.Shards)
		if obsf.Shards > 1 {
			a, err = trace.AnalyzeStreamSharded(f, shardCfg)
		} else {
			var sr *trace.StreamReader
			sr, err = trace.NewStreamReader(f)
			if err == nil {
				a, err = trace.AnalyzeSource(sr)
			}
		}
		f.Close()
		if err != nil {
			anSpan.End()
			return err
		}
		anSpan.Set("objects", len(a.Objects))
		anSpan.Set("heap_accesses", a.HeapAccesses)
		anSpan.End()
	} else {
		readSpan := root.Child("read-trace")
		tr, rerr := trace.Read(f)
		f.Close()
		if rerr != nil {
			readSpan.End()
			return rerr
		}
		readSpan.Set("events", len(tr.Events))
		readSpan.End()

		anSpan := root.Child("analyze")
		anSpan.Set("shards", shardCfg.Shards)
		if obsf.Shards > 1 {
			a = trace.AnalyzeTraceSharded(tr, shardCfg)
		} else {
			a = trace.Analyze(tr)
		}
		anSpan.Set("objects", len(a.Objects))
		anSpan.Set("heap_accesses", a.HeapAccesses)
		anSpan.End()
	}

	perfScope.AddEvents(uint64(a.Events))

	planSpan := root.Child("plan " + v.String())
	cfg.Trace = planSpan
	if *ledger != "" {
		cfg.Ledger = core.NewLedger()
	}
	plan, sum, err := core.BuildPlan(a, cfg)
	planSpan.End()
	if err != nil {
		return err
	}

	if *ledger != "" {
		lf, lerr := os.Create(*ledger)
		if lerr != nil {
			return lerr
		}
		if lerr := cfg.Ledger.WriteJSON(lf); lerr != nil {
			lf.Close()
			return lerr
		}
		if lerr := lf.Close(); lerr != nil {
			return lerr
		}
		fmt.Fprintf(os.Stderr, "decision ledger (%d decisions) written to %s\n", cfg.Ledger.Len(), *ledger)
	}

	if reg := sess.Metrics; reg != nil {
		kv := []string{"benchmark", *bench, "variant", v.String()}
		reg.Counter("prefix_analyze_trace_events_total", kv...).Add(uint64(a.Events))
		reg.Counter("prefix_analyze_heap_accesses_total", kv...).Add(a.HeapAccesses)
		reg.Gauge("prefix_analyze_objects", kv...).Set(float64(len(a.Objects)))
		reg.Gauge("prefix_plan_sites", kv...).Set(float64(plan.NumSites()))
		reg.Gauge("prefix_plan_counters", kv...).Set(float64(plan.NumCounters()))
		reg.Gauge("prefix_plan_region_bytes", kv...).Set(float64(plan.RegionSize))
		reg.Gauge("prefix_plan_placed_objects", kv...).Set(float64(plan.PlacedObjects))
		reg.Gauge("prefix_plan_hds_objects", kv...).Set(float64(plan.HDSObjects))
	}

	if *summary {
		fmt.Fprintf(os.Stderr, "trace: %d events, %d objects, %d heap accesses\n",
			a.Events, len(a.Objects), a.HeapAccesses)
		fmt.Fprintf(os.Stderr, "hot: %d objects covering %.1f%% of heap accesses, %d in streams\n",
			sum.HotObjects, sum.CoveragePct, sum.HotInHDS)
		fmt.Fprintf(os.Stderr, "context: %s, %d sites, %d counters\n",
			plan.KindsString(), plan.NumSites(), plan.NumCounters())
		fmt.Fprintf(os.Stderr, "region: %d bytes, %d placed objects\n",
			plan.RegionSize, plan.PlacedObjects)
		ohds := sum.OHDS
		if len(ohds) > 8 {
			ohds = ohds[:8]
		}
		report.Figure2(os.Stderr, ohds, sum.Recon)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := plan.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		// A close error on the output file means a truncated plan; report it.
		return f.Close()
	}
	return plan.WriteJSON(w)
}
