// Command prefix-analyze consumes a trace written by prefix-trace, runs
// the full profile analysis (hot objects, hot data streams, Algorithm 1
// reconstitution, context inference with counter sharing) and writes the
// resulting PreFix plan as JSON.
//
// Usage:
//
//	prefix-analyze -trace mcf.trace -o mcf.plan.json
//	prefix-analyze -trace mcf.trace -variant hds -miner sequitur -v
package main

import (
	"flag"
	"fmt"
	"os"

	core "prefix/internal/prefix"
	"prefix/internal/report"
	"prefix/internal/trace"
)

func main() {
	var (
		in      = flag.String("trace", "", "input trace file (required)")
		out     = flag.String("o", "", "output plan JSON (default: stdout)")
		bench   = flag.String("bench", "unknown", "benchmark name recorded in the plan")
		variant = flag.String("variant", "hds+hot", "placement variant: hot, hds, hds+hot")
		miner   = flag.String("miner", "lcs", "hot-data-stream miner: lcs or sequitur")
		verbose = flag.Bool("v", false, "print the analysis summary (OHDS/RHDS)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var v core.Variant
	switch *variant {
	case "hot":
		v = core.VariantHot
	case "hds":
		v = core.VariantHDS
	case "hds+hot":
		v = core.VariantHDSHot
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	cfg := core.DefaultPlanConfig(*bench, v)
	switch *miner {
	case "lcs":
		cfg.Miner = core.MinerLCS
	case "sequitur":
		cfg.Miner = core.MinerSequitur
	default:
		fatal(fmt.Errorf("unknown miner %q", *miner))
	}

	a := trace.Analyze(tr)
	plan, sum, err := core.BuildPlan(a, cfg)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "trace: %d events, %d objects, %d heap accesses\n",
			len(tr.Events), len(a.Objects), a.HeapAccesses)
		fmt.Fprintf(os.Stderr, "hot: %d objects covering %.1f%% of heap accesses, %d in streams\n",
			sum.HotObjects, sum.CoveragePct, sum.HotInHDS)
		fmt.Fprintf(os.Stderr, "context: %s, %d sites, %d counters\n",
			plan.KindsString(), plan.NumSites(), plan.NumCounters())
		fmt.Fprintf(os.Stderr, "region: %d bytes, %d placed objects\n",
			plan.RegionSize, plan.PlacedObjects)
		ohds := sum.OHDS
		if len(ohds) > 8 {
			ohds = ohds[:8]
		}
		report.Figure2(os.Stderr, ohds, sum.Recon)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := plan.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		// A close error on the output file means a truncated plan; report it.
		if err := f.Close(); err != nil {
			fatal(err)
		}
		return
	}
	if err := plan.WriteJSON(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefix-analyze:", err)
	os.Exit(1)
}
