// Command prefix-bench regenerates the paper's evaluation: every table
// and figure of the PreFix paper (CGO 2025), computed over the synthetic
// benchmark suite and the full simulation pipeline.
//
// Usage:
//
//	prefix-bench                      # everything, long-run scale
//	prefix-bench -only table3         # one table/figure
//	prefix-bench -bench mcf,health    # a subset of benchmarks
//	prefix-bench -scale bench         # faster, reduced-scale runs
//	prefix-bench -jobs 8              # parallel benchmark/seed evaluation
//	prefix-bench -shards 8            # parallel trace analysis (same output)
//	prefix-bench -heatmap-dir out/    # also write Figure 9 CSVs
//	prefix-bench -attrib              # per-site attribution + decision ledgers
//	prefix-bench -attrib -only attribution   # just the attribution table
//
// Observability:
//
//	prefix-bench -serve :8080                  # live /metrics /status /trace
//	prefix-bench -metrics-out run.prom         # Prometheus text (or .json)
//	prefix-bench -trace-out phases.json -v     # chrome://tracing + summary
//	prefix-bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Run history and regression gating:
//
//	prefix-bench -record                       # snapshot BENCH_<ts>.json
//	prefix-bench -baseline BENCH_x.json        # diff against a snapshot,
//	                                           # exit non-zero on regression
//	prefix-bench -baseline b.json -regress-pct 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prefix/internal/benchstore"
	"prefix/internal/obsflags"
	"prefix/internal/pipeline"
	"prefix/internal/report"
	"prefix/internal/workloads"
)

// artifacts is every value -only accepts.
var artifacts = []string{
	"figure1", "figure2", "table2", "table3", "table4", "table5", "table6",
	"figure9", "figure10", "figure11", "figure12", "figure13", "figure14",
	"variance", "attribution",
}

// comparisonArtifacts are the artifacts computed from the comparison
// suite; -record and -baseline snapshot/diff exactly these runs.
var comparisonArtifacts = []string{
	"figure1", "figure2", "table2", "table3", "table4", "table5", "table6",
	"figure11", "figure12", "figure13", "figure14", "attribution",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefix-bench:", err)
		os.Exit(1)
	}
}

// validateArgs checks every flag combination that can be rejected before
// any benchmark burns cycles.
func validateArgs(only, scale string, seeds, jobs int, record bool, baseline string, regressPct float64, stream bool, streamChunk int, attrib bool, shards int) error {
	if only != "" {
		known := false
		for _, a := range artifacts {
			if strings.EqualFold(only, a) {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown -only artifact %q (valid: %s)", only, strings.Join(artifacts, ", "))
		}
	}
	if scale != "long" && scale != "bench" {
		return fmt.Errorf("unknown -scale %q (valid: long, bench)", scale)
	}
	if jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1 (got %d)", jobs)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", shards)
	}
	if seeds < 0 {
		return fmt.Errorf("-seeds must be non-negative (got %d)", seeds)
	}
	if strings.EqualFold(only, "variance") && seeds == 0 {
		return fmt.Errorf("-only variance requires -seeds N (without seeds the sweep has nothing to run)")
	}
	if regressPct < 0 {
		return fmt.Errorf("-regress-pct must be non-negative (got %g)", regressPct)
	}
	if streamChunk < 0 {
		return fmt.Errorf("-stream-chunk must be non-negative (got %d)", streamChunk)
	}
	if streamChunk > 0 && !stream {
		return fmt.Errorf("-stream-chunk only applies with -stream")
	}
	if strings.EqualFold(only, "attribution") && !attrib {
		return fmt.Errorf("-only attribution requires -attrib (nothing attributes misses to sites without it)")
	}
	if record || baseline != "" {
		ok := only == ""
		for _, a := range comparisonArtifacts {
			if strings.EqualFold(only, a) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("-record/-baseline snapshot the comparison suite; -only %s does not run it (use a table/figure artifact or drop -only)", only)
		}
	}
	return nil
}

func run() (err error) {
	var (
		only        = flag.String("only", "", "emit a single artifact: figure1, figure2, table2..table6, figure9..figure14, variance")
		benchList   = flag.String("bench", "", "comma-separated benchmark subset (default: all 13)")
		scale       = flag.String("scale", "long", "evaluation scale: long or bench")
		heatmapDir  = flag.String("heatmap-dir", "", "directory for Figure 9 heatmap CSVs")
		capture     = flag.Bool("capture", false, "record long-run traces for Table 5 long-run columns (slower)")
		seeds       = flag.Int("seeds", 0, "additionally run each benchmark across N perturbed evaluation seeds and report the variance (the paper averages over 10 runs)")
		jobs        = flag.Int("jobs", pipeline.DefaultJobs(), "run up to N benchmark/seed evaluations concurrently (1 = serial; output is identical at any job count)")
		record      = flag.Bool("record", false, "snapshot this run's per-benchmark results to BENCH_<timestamp>.json")
		recordOut   = flag.String("record-out", "", "write the run snapshot to this file instead of BENCH_<timestamp>.json (implies -record)")
		baseline    = flag.String("baseline", "", "compare this run against a recorded BENCH_*.json and exit non-zero on regression")
		regressPct  = flag.Float64("regress-pct", 5, "fail the -baseline comparison when any tracked metric regresses by more than this percent")
		stream      = flag.Bool("stream", false, "collect profiles through the bounded-memory spill-to-disk streaming path (report output is identical)")
		streamChunk = flag.Int("stream-chunk", 0, "events per spill chunk in -stream mode (0 = default budget)")
		attrib      = flag.Bool("attrib", false, "attribute every miss to its allocation site and record decision ledgers (simulated results are identical; adds the attribution table, the benchstore attrib section, prefix_attrib_* metrics, and /explain documents)")
		obsf        = obsflags.Register(flag.CommandLine)
	)
	obsf.RegisterServe(flag.CommandLine)
	obsf.RegisterShards(flag.CommandLine)
	flag.Parse()

	if *recordOut != "" {
		*record = true
	}
	if err := validateArgs(*only, *scale, *seeds, *jobs, *record, *baseline, *regressPct, *stream, *streamChunk, *attrib, obsf.Shards); err != nil {
		return err
	}
	names, err := workloads.ResolveList(*benchList)
	if err != nil {
		return err
	}

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = *scale == "bench"
	opt.CaptureLongRun = *capture
	opt.Progress = sess.Progress()
	opt.Metrics = sess.Metrics
	opt.Tracer = sess.Tracer
	opt.Perf = sess.Perf
	opt.Stream = *stream
	opt.StreamChunkEvents = *streamChunk
	opt.Shards = obsf.Shards
	opt.Attribution = *attrib
	opt.Explain = sess.Explain

	want := func(artifact string) bool {
		return *only == "" || strings.EqualFold(*only, artifact)
	}
	needComparisons := *record || *baseline != ""
	for _, a := range comparisonArtifacts {
		if want(a) {
			needComparisons = true
		}
	}

	w := os.Stdout
	var cmps []*pipeline.Comparison
	if needComparisons {
		cmps, err = pipeline.RunSuite(names, opt, *jobs)
		if err != nil {
			return err
		}
	}

	emit := func(name string, f func() error) error {
		if !want(name) {
			return nil
		}
		if eerr := f(); eerr != nil {
			return eerr
		}
		_, werr := fmt.Fprintln(w)
		return werr
	}

	if err := emit("figure1", func() error { return report.Figure1(w, cmps) }); err != nil {
		return err
	}
	if err := emit("figure2", func() error {
		// Use the first benchmark with a non-trivial reconstitution.
		for _, c := range cmps {
			s := c.Summaries[c.Best]
			if len(s.OHDS) >= 2 {
				ohds := s.OHDS
				if len(ohds) > 10 {
					ohds = ohds[:10]
				}
				fmt.Fprintf(w, "(reconstitution example from %s)\n", c.Benchmark)
				report.Figure2(w, ohds, s.Recon)
				return nil
			}
		}
		fmt.Fprintln(w, "Figure 2: no benchmark produced multi-stream OHDS at this scale")
		return nil
	}); err != nil {
		return err
	}
	for _, tbl := range []struct {
		name string
		f    func() error
	}{
		{"table2", func() error { return report.Table2(w, cmps) }},
		{"table3", func() error { return report.Table3(w, cmps) }},
		{"table4", func() error { return report.Table4(w, cmps) }},
		{"table5", func() error { return report.Table5(w, cmps) }},
		{"table6", func() error { return report.Table6(w, cmps) }},
	} {
		if err := emit(tbl.name, tbl.f); err != nil {
			return err
		}
	}

	if want("figure9") {
		if err := figure9(w, opt, *heatmapDir); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if want("figure10") {
		for _, name := range []string{"mysql", "mcf"} {
			results, rerr := pipeline.RunMultithreadedJobs(name, []int{1, 2, 4, 8, 16}, opt, *jobs)
			if rerr != nil {
				return rerr
			}
			if rerr := report.Figure10(w, name, results); rerr != nil {
				return rerr
			}
			fmt.Fprintln(w)
		}
	}
	for _, fig := range []struct {
		name string
		f    func() error
	}{
		{"figure11", func() error { return report.Figure11(w, cmps) }},
		{"figure12", func() error { return report.Figure12(w, cmps) }},
		{"figure13", func() error { return report.Figure13(w, cmps) }},
		{"figure14", func() error { return report.Figure14(w, cmps) }},
	} {
		if err := emit(fig.name, fig.f); err != nil {
			return err
		}
	}

	if *attrib {
		if err := emit("attribution", func() error {
			return report.AttributionTable(w, cmps, pipeline.ExplainTopSites)
		}); err != nil {
			return err
		}
	}

	if *seeds > 0 && want("variance") {
		vs, verr := pipeline.RunSuiteVariance(names, *seeds, opt, *jobs)
		if verr != nil {
			return verr
		}
		if verr := report.VarianceTable(w, vs); verr != nil {
			return verr
		}
	}

	if *record || *baseline != "" {
		snap := benchstore.FromComparisons(cmps, benchstore.Meta{
			//lint:ignore nodeterminism snapshot provenance metadata; never enters simulated results or the regression gate
			Timestamp: time.Now(),
			GitSHA:    benchstore.GitSHA("."),
			Jobs:      *jobs,
			Scale:     *scale,
		})
		if *record {
			path := *recordOut
			if path == "" {
				//lint:ignore nodeterminism output-file timestamp only; -o pins the name when reproducibility matters
				path = benchstore.Filename(time.Now())
			}
			if werr := snap.WriteFile(path); werr != nil {
				return werr
			}
			fmt.Fprintf(os.Stderr, "run snapshot written to %s\n", path)
		}
		if *baseline != "" {
			base, berr := benchstore.ReadFile(*baseline)
			if berr != nil {
				return berr
			}
			if gerr := benchstore.Gate(w, base, snap, *regressPct); gerr != nil {
				return gerr
			}
		}
	}
	return nil
}

// figure9 traces leela under baseline and PreFix and summarizes (and
// optionally dumps) the access heatmaps.
func figure9(w *os.File, opt pipeline.Options, dir string) error {
	fmt.Fprintln(os.Stderr, "tracing leela for figure 9...")
	base, best, variant, err := pipeline.TraceBaselineAndBest("leela", opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "figure 9 traces leela's best variant: %s\n", variant)
	hb := report.BuildHeatmap(base, 120, 80)
	ho := report.BuildHeatmap(best, 120, 80)
	report.Figure9(w, "leela", hb, ho)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, hm := range []struct {
			name string
			h    *report.Heatmap
		}{{"leela-baseline.csv", hb}, {"leela-prefix.csv", ho}} {
			f, err := os.Create(filepath.Join(dir, hm.name))
			if err != nil {
				return err
			}
			if err := hm.h.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "  CSVs written to %s\n", dir)
	}
	return nil
}
