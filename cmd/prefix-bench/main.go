// Command prefix-bench regenerates the paper's evaluation: every table
// and figure of the PreFix paper (CGO 2025), computed over the synthetic
// benchmark suite and the full simulation pipeline.
//
// Usage:
//
//	prefix-bench                      # everything, long-run scale
//	prefix-bench -only table3         # one table/figure
//	prefix-bench -bench mcf,health    # a subset of benchmarks
//	prefix-bench -scale bench         # faster, reduced-scale runs
//	prefix-bench -heatmap-dir out/    # also write Figure 9 CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prefix/internal/pipeline"
	"prefix/internal/report"
	"prefix/internal/workloads"
)

func main() {
	var (
		only       = flag.String("only", "", "emit a single artifact: figure1, figure2, table2..table6, figure9..figure14")
		benchList  = flag.String("bench", "", "comma-separated benchmark subset (default: all 13)")
		scale      = flag.String("scale", "long", "evaluation scale: long or bench")
		heatmapDir = flag.String("heatmap-dir", "", "directory for Figure 9 heatmap CSVs")
		capture    = flag.Bool("capture", false, "record long-run traces for Table 5 long-run columns (slower)")
		seeds      = flag.Int("seeds", 0, "additionally run each benchmark across N perturbed evaluation seeds and report the variance (the paper averages over 10 runs)")
	)
	flag.Parse()

	names := workloads.Names()
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = *scale == "bench"
	opt.CaptureLongRun = *capture

	want := func(artifact string) bool {
		return *only == "" || strings.EqualFold(*only, artifact)
	}
	needComparisons := false
	for _, a := range []string{"figure1", "figure2", "table2", "table3", "table4", "table5", "table6", "figure11", "figure12", "figure13", "figure14"} {
		if want(a) {
			needComparisons = true
		}
	}

	w := os.Stdout
	var cmps []*pipeline.Comparison
	if needComparisons {
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "running %s...\n", name)
			cmp, err := pipeline.RunBenchmark(name, opt)
			if err != nil {
				fatal(err)
			}
			cmps = append(cmps, cmp)
		}
	}

	emit := func(name string, f func() error) {
		if !want(name) {
			return
		}
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}

	emit("figure1", func() error { return report.Figure1(w, cmps) })
	emit("figure2", func() error {
		// Use the first benchmark with a non-trivial reconstitution.
		for _, c := range cmps {
			s := c.Summaries[c.Best]
			if len(s.OHDS) >= 2 {
				ohds := s.OHDS
				if len(ohds) > 10 {
					ohds = ohds[:10]
				}
				fmt.Fprintf(w, "(reconstitution example from %s)\n", c.Benchmark)
				report.Figure2(w, ohds, s.Recon)
				return nil
			}
		}
		fmt.Fprintln(w, "Figure 2: no benchmark produced multi-stream OHDS at this scale")
		return nil
	})
	emit("table2", func() error { return report.Table2(w, cmps) })
	emit("table3", func() error { return report.Table3(w, cmps) })
	emit("table4", func() error { return report.Table4(w, cmps) })
	emit("table5", func() error { return report.Table5(w, cmps) })
	emit("table6", func() error { return report.Table6(w, cmps) })

	if want("figure9") {
		if err := figure9(w, opt, *heatmapDir); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if want("figure10") {
		for _, name := range []string{"mysql", "mcf"} {
			results, err := pipeline.RunMultithreaded(name, []int{1, 2, 4, 8, 16}, opt)
			if err != nil {
				fatal(err)
			}
			if err := report.Figure10(w, name, results); err != nil {
				fatal(err)
			}
			fmt.Fprintln(w)
		}
	}
	emit("figure11", func() error { return report.Figure11(w, cmps) })
	emit("figure12", func() error { return report.Figure12(w, cmps) })
	emit("figure13", func() error { return report.Figure13(w, cmps) })
	emit("figure14", func() error { return report.Figure14(w, cmps) })

	if *seeds > 0 && (*only == "" || strings.EqualFold(*only, "variance")) {
		var vs []*pipeline.Variance
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "variance sweep %s (%d seeds)...\n", name, *seeds)
			v, err := pipeline.RunVariance(name, *seeds, opt)
			if err != nil {
				fatal(err)
			}
			vs = append(vs, v)
		}
		if err := report.VarianceTable(w, vs); err != nil {
			fatal(err)
		}
	}
}

// figure9 traces leela under baseline and PreFix and summarizes (and
// optionally dumps) the access heatmaps.
func figure9(w *os.File, opt pipeline.Options, dir string) error {
	fmt.Fprintln(os.Stderr, "tracing leela for figure 9...")
	base, best, err := pipeline.TraceBaselineAndBest("leela", opt)
	if err != nil {
		return err
	}
	hb := report.BuildHeatmap(base, 120, 80)
	ho := report.BuildHeatmap(best, 120, 80)
	report.Figure9(w, "leela", hb, ho)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, hm := range []struct {
			name string
			h    *report.Heatmap
		}{{"leela-baseline.csv", hb}, {"leela-prefix.csv", ho}} {
			f, err := os.Create(filepath.Join(dir, hm.name))
			if err != nil {
				return err
			}
			if err := hm.h.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "  CSVs written to %s\n", dir)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefix-bench:", err)
	os.Exit(1)
}
