package main

import (
	"strings"
	"testing"
)

func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name        string
		only        string
		scale       string
		seeds       int
		jobs        int
		record      bool
		baseline    string
		regressPct  float64
		stream      bool
		streamChunk int
		attrib      bool
		shards      int
		wantErr     string // substring; "" = valid
	}{
		{"defaults", "", "long", 0, 4, false, "", 5, false, 0, false, 1, ""},
		{"one artifact", "table3", "bench", 0, 1, false, "", 5, false, 0, false, 1, ""},
		{"variance with seeds", "variance", "long", 5, 2, false, "", 5, false, 0, false, 1, ""},
		{"variance case-insensitive", "VARIANCE", "long", 3, 1, false, "", 5, false, 0, false, 1, ""},
		{"variance without seeds", "variance", "long", 0, 1, false, "", 5, false, 0, false, 1, "-only variance requires -seeds"},
		{"unknown artifact", "table99", "long", 0, 1, false, "", 5, false, 0, false, 1, "unknown -only artifact"},
		{"unknown scale", "", "huge", 0, 1, false, "", 5, false, 0, false, 1, "unknown -scale"},
		{"zero jobs", "", "long", 0, 0, false, "", 5, false, 0, false, 1, "-jobs must be at least 1"},
		{"negative jobs", "", "long", 0, -3, false, "", 5, false, 0, false, 1, "-jobs must be at least 1"},
		{"negative seeds", "", "long", -1, 1, false, "", 5, false, 0, false, 1, "-seeds must be non-negative"},
		{"record everything", "", "long", 0, 1, true, "", 5, false, 0, false, 1, ""},
		{"record one table", "table3", "long", 0, 1, true, "", 5, false, 0, false, 1, ""},
		{"baseline one figure", "figure11", "long", 0, 1, false, "BENCH_x.json", 5, false, 0, false, 1, ""},
		{"record non-comparison artifact", "figure9", "long", 0, 1, true, "", 5, false, 0, false, 1, "-record/-baseline snapshot the comparison suite"},
		{"baseline non-comparison artifact", "figure10", "long", 0, 1, false, "BENCH_x.json", 5, false, 0, false, 1, "-record/-baseline snapshot the comparison suite"},
		{"negative regress-pct", "", "long", 0, 1, false, "BENCH_x.json", -1, false, 0, false, 1, "-regress-pct must be non-negative"},
		{"stream with chunk", "", "long", 0, 1, false, "", 5, true, 4096, false, 1, ""},
		{"stream default chunk", "", "long", 0, 1, false, "", 5, true, 0, false, 1, ""},
		{"negative stream-chunk", "", "long", 0, 1, true, "", 5, true, -1, false, 1, "-stream-chunk must be non-negative"},
		{"stream-chunk without stream", "", "long", 0, 1, false, "", 5, false, 512, false, 1, "-stream-chunk only applies with -stream"},
		{"attribution artifact", "attribution", "long", 0, 1, false, "", 5, false, 0, true, 1, ""},
		{"attribution recorded", "attribution", "long", 0, 1, true, "", 5, false, 0, true, 1, ""},
		{"attribution without -attrib", "attribution", "long", 0, 1, false, "", 5, false, 0, false, 1, "-only attribution requires -attrib"},
		{"sharded analysis", "", "long", 0, 1, false, "", 5, false, 0, false, 8, ""},
		{"zero shards", "", "long", 0, 1, false, "", 5, false, 0, false, 0, "-shards must be at least 1"},
		{"negative shards", "", "long", 0, 1, false, "", 5, false, 0, false, -2, "-shards must be at least 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateArgs(c.only, c.scale, c.seeds, c.jobs, c.record, c.baseline, c.regressPct, c.stream, c.streamChunk, c.attrib, c.shards)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateArgs = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateArgs = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}
