package main

import (
	"strings"
	"testing"
)

func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name        string
		only        string
		scale       string
		seeds       int
		jobs        int
		record      bool
		baseline    string
		regressPct  float64
		stream      bool
		streamChunk int
		attrib      bool
		wantErr     string // substring; "" = valid
	}{
		{"defaults", "", "long", 0, 4, false, "", 5, false, 0, false, ""},
		{"one artifact", "table3", "bench", 0, 1, false, "", 5, false, 0, false, ""},
		{"variance with seeds", "variance", "long", 5, 2, false, "", 5, false, 0, false, ""},
		{"variance case-insensitive", "VARIANCE", "long", 3, 1, false, "", 5, false, 0, false, ""},
		{"variance without seeds", "variance", "long", 0, 1, false, "", 5, false, 0, false, "-only variance requires -seeds"},
		{"unknown artifact", "table99", "long", 0, 1, false, "", 5, false, 0, false, "unknown -only artifact"},
		{"unknown scale", "", "huge", 0, 1, false, "", 5, false, 0, false, "unknown -scale"},
		{"zero jobs", "", "long", 0, 0, false, "", 5, false, 0, false, "-jobs must be at least 1"},
		{"negative jobs", "", "long", 0, -3, false, "", 5, false, 0, false, "-jobs must be at least 1"},
		{"negative seeds", "", "long", -1, 1, false, "", 5, false, 0, false, "-seeds must be non-negative"},
		{"record everything", "", "long", 0, 1, true, "", 5, false, 0, false, ""},
		{"record one table", "table3", "long", 0, 1, true, "", 5, false, 0, false, ""},
		{"baseline one figure", "figure11", "long", 0, 1, false, "BENCH_x.json", 5, false, 0, false, ""},
		{"record non-comparison artifact", "figure9", "long", 0, 1, true, "", 5, false, 0, false, "-record/-baseline snapshot the comparison suite"},
		{"baseline non-comparison artifact", "figure10", "long", 0, 1, false, "BENCH_x.json", 5, false, 0, false, "-record/-baseline snapshot the comparison suite"},
		{"negative regress-pct", "", "long", 0, 1, false, "BENCH_x.json", -1, false, 0, false, "-regress-pct must be non-negative"},
		{"stream with chunk", "", "long", 0, 1, false, "", 5, true, 4096, false, ""},
		{"stream default chunk", "", "long", 0, 1, false, "", 5, true, 0, false, ""},
		{"negative stream-chunk", "", "long", 0, 1, true, "", 5, true, -1, false, "-stream-chunk must be non-negative"},
		{"stream-chunk without stream", "", "long", 0, 1, false, "", 5, false, 512, false, "-stream-chunk only applies with -stream"},
		{"attribution artifact", "attribution", "long", 0, 1, false, "", 5, false, 0, true, ""},
		{"attribution recorded", "attribution", "long", 0, 1, true, "", 5, false, 0, true, ""},
		{"attribution without -attrib", "attribution", "long", 0, 1, false, "", 5, false, 0, false, "-only attribution requires -attrib"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateArgs(c.only, c.scale, c.seeds, c.jobs, c.record, c.baseline, c.regressPct, c.stream, c.streamChunk, c.attrib)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateArgs = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateArgs = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}
