package main

import (
	"strings"
	"testing"
)

func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name    string
		only    string
		scale   string
		seeds   int
		jobs    int
		wantErr string // substring; "" = valid
	}{
		{"defaults", "", "long", 0, 4, ""},
		{"one artifact", "table3", "bench", 0, 1, ""},
		{"variance with seeds", "variance", "long", 5, 2, ""},
		{"variance case-insensitive", "VARIANCE", "long", 3, 1, ""},
		{"variance without seeds", "variance", "long", 0, 1, "-only variance requires -seeds"},
		{"unknown artifact", "table99", "long", 0, 1, "unknown -only artifact"},
		{"unknown scale", "", "huge", 0, 1, "unknown -scale"},
		{"zero jobs", "", "long", 0, 0, "-jobs must be at least 1"},
		{"negative jobs", "", "long", 0, -3, "-jobs must be at least 1"},
		{"negative seeds", "", "long", -1, 1, "-seeds must be non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateArgs(c.only, c.scale, c.seeds, c.jobs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateArgs = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateArgs = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}
