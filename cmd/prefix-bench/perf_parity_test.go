package main

import (
	"bytes"
	"testing"
	"time"

	"prefix/internal/obs/perfstat"
	"prefix/internal/pipeline"
	"prefix/internal/report"
)

// TestPerfParityAndOverhead is the perfstat overhead contract: attaching
// a host-cost collector to the smoke suite must leave the rendered
// report byte-identical, and the collector's own sampling cost must stay
// under 2% of the suite's wall time.
func TestPerfParityAndOverhead(t *testing.T) {
	names := []string{"mcf", "health"}
	run := func(pc *perfstat.Collector) (string, time.Duration) {
		opt := pipeline.DefaultOptions()
		opt.UseBenchScale = true
		opt.Perf = pc
		start := time.Now()
		cmps, err := pipeline.RunSuite(names, opt, 4)
		wall := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.Table3(&buf, cmps); err != nil {
			t.Fatal(err)
		}
		if err := report.Table5(&buf, cmps); err != nil {
			t.Fatal(err)
		}
		return buf.String(), wall
	}

	plain, _ := run(nil)
	pc := perfstat.New(nil)
	instrumented, wall := run(pc)
	if plain != instrumented {
		t.Errorf("report changed when the perfstat collector was attached:\n--- without ---\n%s\n--- with ---\n%s",
			plain, instrumented)
	}
	if snap := pc.Snapshot(); snap.Events == 0 {
		t.Error("collector observed no events during the instrumented run")
	}
	if ov := pc.Overhead(); ov > wall/50 {
		t.Errorf("sampler overhead %v exceeds 2%% of suite wall time %v", ov, wall)
	}
}
