// Command prefix-trajectory reads the committed benchstore snapshots
// (BENCH_*.json) and prints each benchmark's trajectory across them:
// host events/sec, the analyze stage's own throughput and shard count
// (schema 4; "n/a" on older snapshots), and simulated L1/LLC miss
// rates per run, oldest
// first, with the first-to-last drift summarized. It answers "is the
// harness getting faster or slower over the project's history" from
// artifacts already in the repository — no benchmarks are run.
//
// Usage:
//
//	prefix-trajectory                   # all BENCH_*.json in the repo root
//	prefix-trajectory -dir snapshots/   # snapshots from another directory
//	prefix-trajectory -bench mcf        # one benchmark only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"prefix/internal/benchstore"
)

// errUsage marks bad invocations; main exits 2 for them, matching flag
// parsing errors.
var errUsage = errors.New("usage")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "prefix-trajectory:", err)
	os.Exit(1)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("prefix-trajectory", flag.ContinueOnError)
	var (
		dir   = fs.String("dir", ".", "directory holding the BENCH_*.json snapshots")
		bench = fs.String("bench", "", "restrict to one benchmark (default: all seen)")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	runs, err := loadRuns(*dir)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no BENCH_*.json snapshots in %s (record one with prefix-bench -record)", *dir)
	}

	fmt.Fprintf(stdout, "%d snapshots, %s .. %s\n", len(runs), runs[0].Timestamp, runs[len(runs)-1].Timestamp)

	for _, name := range benchNames(runs, *bench) {
		points := collect(runs, name)
		if len(points) == 0 {
			return fmt.Errorf("benchmark %q appears in no snapshot", name)
		}
		fmt.Fprintf(stdout, "\n%s:\n", name)
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  timestamp\tgit\tevents/sec\tanalysis ev/s\tL1 miss\tLLC miss\tdelta t")
		for _, p := range points {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%.2f%%\t%.3f%%\t%+.1f%%\n",
				p.run.Timestamp, orShort(p.run.GitSHA),
				eventsPerSec(p.b), analysisEPS(p.b), p.b.L1MissPct, p.b.LLCMissPct, p.b.TimeDeltaPct)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if len(points) > 1 {
			first, last := points[0].b, points[len(points)-1].b
			fmt.Fprintf(stdout, "  trend over %d runs: events/sec %s, L1 miss %+.2fpp, LLC miss %+.3fpp\n",
				len(points), trendPct(hostEPS(first), hostEPS(last)),
				last.L1MissPct-first.L1MissPct, last.LLCMissPct-first.LLCMissPct)
		}
	}
	return nil
}

// point is one benchmark's row in one snapshot.
type point struct {
	run *benchstore.Run
	b   benchstore.Benchmark
}

// loadRuns reads every BENCH_*.json under dir, oldest timestamp first.
// Snapshot filenames embed the timestamp, but the document field is the
// source of truth (hand-renamed files still sort correctly).
func loadRuns(dir string) ([]*benchstore.Run, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var runs []*benchstore.Run
	for _, path := range matches {
		r, err := benchstore.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		runs = append(runs, r)
	}
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Timestamp < runs[j].Timestamp })
	return runs, nil
}

// benchNames returns the benchmarks to report: the explicit pick, or
// every name seen across the snapshots in first-appearance order.
func benchNames(runs []*benchstore.Run, only string) []string {
	if only != "" {
		return []string{only}
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range runs {
		for _, b := range r.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}
	return names
}

// collect pulls one benchmark's row from every snapshot that has it.
func collect(runs []*benchstore.Run, name string) []point {
	var points []point
	for _, r := range runs {
		for _, b := range r.Benchmarks {
			if b.Name == name {
				points = append(points, point{run: r, b: b})
			}
		}
	}
	return points
}

// hostEPS returns the host events/sec, or 0 when the snapshot predates
// the host-cost section (schema 1).
func hostEPS(b benchstore.Benchmark) float64 {
	if b.Host == nil {
		return 0
	}
	return b.Host.EventsPerSec
}

func eventsPerSec(b benchstore.Benchmark) string {
	if b.Host == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", b.Host.EventsPerSec)
}

// analysisEPS renders the analyze stage's own throughput with its shard
// count, e.g. "1234567 (x4)"; pre-v4 snapshots have no analysis section
// and render "n/a".
func analysisEPS(b benchstore.Benchmark) string {
	if b.Analysis == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.0f (x%d)", b.Analysis.EventsPerSec, b.Analysis.Shards)
}

// trendPct formats a first-to-last relative change, tolerating schema-1
// snapshots on either end.
func trendPct(first, last float64) string {
	if first == 0 || last == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(last-first)/first)
}

func orShort(sha string) string {
	if sha == "" {
		return "-"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
