package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prefix/internal/benchstore"
)

// snapshot writes one BENCH_*.json into dir with the given timestamp,
// events/sec, and LLC miss rate for a single "mcf" benchmark.
func snapshot(t *testing.T, dir string, ts time.Time, eps, llcPct float64, host bool) {
	t.Helper()
	b := benchstore.Benchmark{
		Name:           "mcf",
		BaselineCycles: 1000,
		BestVariant:    "prefix:hot",
		BestCycles:     900,
		TimeDeltaPct:   -10,
		L1MissPct:      40,
		LLCMissPct:     llcPct,
	}
	if host {
		b.Host = &benchstore.HostStats{WallNanos: 1e9, Events: uint64(eps), EventsPerSec: eps}
		b.Analysis = &benchstore.AnalysisStats{WallNanos: 1e8, Events: uint64(eps), EventsPerSec: 10 * eps, Shards: 4}
	}
	run := &benchstore.Run{
		Schema:     benchstore.Schema,
		Timestamp:  ts.UTC().Format(time.RFC3339),
		GitSHA:     "abcdef0123456789",
		GOOS:       "linux",
		GOARCH:     "amd64",
		Jobs:       4,
		Scale:      "bench",
		Benchmarks: []benchstore.Benchmark{b},
	}
	path := filepath.Join(dir, benchstore.Filename(ts))
	if err := run.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestTrajectory(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	snapshot(t, dir, base, 500000, 4.0, true)
	snapshot(t, dir, base.Add(24*time.Hour), 600000, 3.5, true)
	snapshot(t, dir, base.Add(48*time.Hour), 750000, 3.0, true)

	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"3 snapshots",
		"mcf:",
		"events/sec",
		"analysis ev/s",
		"500000",
		"750000",
		"7500000 (x4)",
		"trend over 3 runs: events/sec +50.0%",
		"LLC miss -1.000pp",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Oldest row must print before newest regardless of glob order.
	if strings.Index(text, "500000") > strings.Index(text, "750000") {
		t.Errorf("rows not in timestamp order:\n%s", text)
	}
}

func TestTrajectoryNoHost(t *testing.T) {
	// A schema-1-style snapshot without a host section renders n/a and
	// the events/sec trend degrades gracefully.
	dir := t.TempDir()
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	snapshot(t, dir, base, 0, 4.0, false)
	snapshot(t, dir, base.Add(time.Hour), 600000, 3.5, true)

	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "n/a") {
		t.Errorf("hostless snapshot should render n/a events/sec:\n%s", text)
	}
	if !strings.Contains(text, "events/sec n/a") {
		t.Errorf("trend with a hostless endpoint should be n/a:\n%s", text)
	}
	// The analysis column degrades the same way on snapshots that
	// predate the schema-4 analysis section: the hostless row renders
	// n/a in both throughput columns.
	hostlessRow := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "2026-08-01T12:00:00Z") {
			hostlessRow = line
		}
	}
	if strings.Count(hostlessRow, "n/a") != 2 {
		t.Errorf("hostless row should render n/a events/sec and n/a analysis ev/s:\n%s", text)
	}
}

func TestTrajectoryErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", t.TempDir()}, &out); err == nil {
		t.Error("empty dir should error")
	}
	if err := run([]string{"-nope"}, &out); !errors.Is(err, errUsage) {
		t.Errorf("bad flag = %v, want usage error", err)
	}

	dir := t.TempDir()
	snapshot(t, dir, time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC), 500000, 4.0, true)
	if err := run([]string{"-dir", dir, "-bench", "nope"}, &out); err == nil {
		t.Error("unknown -bench should error")
	}
}

func TestTrajectoryCommittedSnapshots(t *testing.T) {
	// The repo-root snapshots this tool exists for must always load.
	var out bytes.Buffer
	if err := run([]string{"-dir", "../.."}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mcf:") {
		t.Errorf("committed snapshots missing mcf:\n%s", out.String())
	}
}
