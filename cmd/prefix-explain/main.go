// Command prefix-explain answers "why is this benchmark slow, and what
// did PreFix do about it" — the explainability join of the evaluation.
// It runs the comparison suite with per-site miss attribution on, then
// for each benchmark prints the top allocation sites by baseline
// LLC-miss share, each site's cost under the best PreFix variant, and
// the decision ledger's recorded reasons for how the planner classified
// and placed that site's objects.
//
// Usage:
//
//	prefix-explain -bench mcf                 # one benchmark, top sites
//	prefix-explain -bench mcf,health -top 5   # several, 5 sites each
//	prefix-explain -bench mcf -json           # machine-readable documents
//	prefix-explain -bench mcf -ledger-dir d/  # also dump the full ledgers
//	prefix-explain -bench mcf -scale long     # paper-scale inputs
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"prefix/internal/obsflags"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/report"
	"prefix/internal/workloads"
)

// errUsage marks bad invocations; main exits 2 for them, matching flag
// parsing errors.
var errUsage = errors.New("usage")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "prefix-explain:", err)
	os.Exit(1)
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("prefix-explain", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", "", "benchmark name, or a comma-separated list (required)")
		scale     = fs.String("scale", "bench", "evaluation scale: bench or long")
		jobs      = fs.Int("jobs", pipeline.DefaultJobs(), "run up to N benchmark evaluations concurrently")
		top       = fs.Int("top", 3, "sites to explain per benchmark, ranked by baseline LLC-miss share")
		asJSON    = fs.Bool("json", false, "emit the explain documents as JSON instead of text")
		ledgerDir = fs.String("ledger-dir", "", "also write each best variant's full decision ledger to <dir>/<benchmark>.ledger.json")
		table     = fs.Bool("table", false, "append the compact attribution table (the prefix-bench -attrib format)")
		obsf      = obsflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if *bench == "" {
		fs.Usage()
		return errUsage
	}
	if *scale != "long" && *scale != "bench" {
		return fmt.Errorf("unknown -scale %q (valid: long, bench)", *scale)
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1 (got %d)", *jobs)
	}
	if *top < 1 {
		return fmt.Errorf("-top must be at least 1 (got %d)", *top)
	}
	names, err := workloads.ResolveList(*bench)
	if err != nil {
		return err
	}

	sess, err := obsf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = *scale == "bench"
	opt.Attribution = true
	opt.Progress = sess.Progress()
	opt.Metrics = sess.Metrics
	opt.Tracer = sess.Tracer
	opt.Perf = sess.Perf

	cmps, err := pipeline.RunSuite(names, opt, *jobs)
	if err != nil {
		return err
	}

	var docs []*pipeline.Explain
	for _, c := range cmps {
		docs = append(docs, pipeline.BuildExplain(c, *top))
	}

	if *ledgerDir != "" {
		if err := os.MkdirAll(*ledgerDir, 0o755); err != nil {
			return err
		}
		for _, c := range cmps {
			led := c.Summaries[c.Best].Ledger
			path := filepath.Join(*ledgerDir, c.Benchmark+".ledger.json")
			lf, lerr := os.Create(path)
			if lerr != nil {
				return lerr
			}
			if lerr := led.WriteJSON(lf); lerr != nil {
				lf.Close()
				return lerr
			}
			if lerr := lf.Close(); lerr != nil {
				return lerr
			}
			fmt.Fprintf(os.Stderr, "%s: %d decisions written to %s\n", c.Benchmark, led.Len(), path)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			return err
		}
	} else {
		for i, ex := range docs {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			writeExplain(stdout, ex)
		}
	}
	if *table {
		fmt.Fprintln(stdout)
		return report.AttributionTable(stdout, cmps, *top)
	}
	return nil
}

// writeExplain renders one benchmark's document as indented text.
func writeExplain(w io.Writer, ex *pipeline.Explain) {
	fmt.Fprintf(w, "%s: best variant %s (%d planning decisions recorded)\n", ex.Benchmark, ex.Variant, ex.Decisions)
	fmt.Fprintf(w, "  LLC misses: %d baseline -> %d best (%s)\n",
		ex.BaselineLLCMisses, ex.BestLLCMisses, deltaPct(ex.BaselineLLCMisses, ex.BestLLCMisses))
	for _, s := range ex.Sites {
		label := fmt.Sprintf("site %d", s.Site)
		if s.Site == 0 {
			label = "unattributed (globals/stacks/freed)"
		}
		fmt.Fprintf(w, "  %s: %.1f%% -> %.1f%% of LLC misses (%d -> %d), %.3g -> %.3g stall cycles\n",
			label, s.Baseline.SharePct, s.Best.SharePct,
			s.Baseline.LLCMisses, s.Best.LLCMisses,
			s.Baseline.StallCycles, s.Best.StallCycles)
		for _, d := range s.Decisions {
			fmt.Fprintf(w, "    %s/%s: %s\n", d.Stage, d.Kind, d.Reason)
		}
		if extra := s.Placements - countPlacements(s); extra > 0 {
			fmt.Fprintf(w, "    (+%d more placement decisions; see -ledger-dir for the full ledger)\n", extra)
		}
		if len(s.Decisions) == 0 && s.Site != 0 {
			fmt.Fprintln(w, "    (no plan decisions: site not hot enough to place)")
		}
	}
}

func countPlacements(s pipeline.SiteExplain) int {
	n := 0
	for _, d := range s.Decisions {
		if d.Stage == core.StagePlacement {
			n++
		}
	}
	return n
}

func deltaPct(base, cur uint64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(cur)-float64(base))/float64(base))
}
