package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
)

func TestExplainText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "swissmap", "-top", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"swissmap: best variant",
		"planning decisions recorded",
		"LLC misses:",
		"site ",
		"of LLC misses",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// At least one ledger reason line must be quoted for the top sites.
	if !strings.Contains(text, "counter-classified") && !strings.Contains(text, "not hot enough") {
		t.Errorf("output has no per-site rationale:\n%s", text)
	}
}

func TestExplainJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "swissmap", "-top", "3", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var docs []*pipeline.Explain
	if err := json.Unmarshal(out.Bytes(), &docs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(docs) != 1 || docs[0].Benchmark != "swissmap" {
		t.Fatalf("docs = %+v", docs)
	}
	if docs[0].Decisions == 0 || len(docs[0].Sites) == 0 || len(docs[0].Sites) > 3 {
		t.Errorf("doc = %+v", docs[0])
	}
}

func TestExplainLedgerDir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-bench", "swissmap", "-ledger-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "swissmap.ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	led, err := core.ReadLedgerJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if led.Len() == 0 {
		t.Error("exported ledger is empty")
	}
}

func TestExplainTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "swissmap", "-table"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Attribution: per-site LLC-miss share") {
		t.Errorf("-table output missing the attribution table:\n%s", out.String())
	}
}

func TestExplainArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); !errors.Is(err, errUsage) {
		t.Errorf("missing -bench = %v, want usage error", err)
	}
	cases := map[string][]string{
		"-scale": {"-bench", "swissmap", "-scale", "huge"},
		"-jobs":  {"-bench", "swissmap", "-jobs", "0"},
		"-top":   {"-bench", "swissmap", "-top", "0"},
		"-bench": {"-bench", "nope"},
	}
	for name, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run(%v) = nil, want error", name, args)
		}
	}
}
