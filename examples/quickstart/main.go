// Quickstart: the complete PreFix pipeline on one benchmark in ~30 lines
// of API — profile, plan, and compare the baseline against every
// allocation strategy.
package main

import (
	"fmt"
	"log"

	prefix "prefix"
)

func main() {
	opt := prefix.DefaultOptions()
	opt.UseBenchScale = true // fast demo scale

	fmt.Println("PreFix quickstart: evaluating the 'ft' benchmark")
	cmp, err := prefix.RunBenchmark("ft", opt)
	if err != nil {
		log.Fatal(err)
	}

	base := cmp.Baseline
	fmt.Printf("baseline:        %12.0f cycles\n", base.Metrics.Cycles)
	fmt.Printf("HDS   [8]:       %12.0f cycles (%+.2f%%)\n",
		cmp.HDS.Metrics.Cycles, cmp.HDS.TimeDeltaPct(base))
	fmt.Printf("HALO [21]:       %12.0f cycles (%+.2f%%)\n",
		cmp.HALO.Metrics.Cycles, cmp.HALO.TimeDeltaPct(base))
	for _, v := range []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot} {
		r := cmp.PreFix[v]
		fmt.Printf("%-16s %12.0f cycles (%+.2f%%)\n", v.String()+":", r.Metrics.Cycles, r.TimeDeltaPct(base))
	}

	plan := cmp.Plans[cmp.Best]
	fmt.Printf("\nbest variant: %v\n", cmp.Best)
	fmt.Printf("context: %s over %d sites with %d counters\n",
		plan.KindsString(), plan.NumSites(), plan.NumCounters())
	fmt.Printf("preallocated region: %d bytes, %d statically placed objects\n",
		plan.RegionSize, plan.PlacedObjects)
	if cap := cmp.BestResult().Capture; cap != nil {
		fmt.Printf("malloc calls avoided: %d (plus %d frees intercepted)\n",
			cap.MallocsAvoided, cap.FreesAvoided)
	}
}
