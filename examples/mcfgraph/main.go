// mcfgraph reproduces the paper's Figure 3 scenario as a custom program
// written against the public API: a loop whose single malloc site creates
// five objects per round, of which only the first and the fifth are hot.
//
// Calling-context techniques cannot tell the five apart — every object
// shares the same call stack — but PreFix's (site, dynamic instance)
// context identifies the hot pair exactly: the example prints the plan's
// inferred pattern and the capture precision of the optimized run.
package main

import (
	"fmt"
	"log"

	"prefix"
)

const (
	siteLoop prefix.SiteID = 1
	fnParse  prefix.FuncID = 1
	fnSolve  prefix.FuncID = 2
)

// program is the Figure 3 loop: per round it allocates O1..O5 from one
// site under one call stack; O1 and O5 survive and are accessed
// repeatedly by the solve phase; O2..O4 die immediately.
func program(env prefix.Env, rounds int) {
	type pair struct{ o1, o5 prefix.Addr }
	var hot []pair

	env.Enter(fnParse)
	for r := 0; r < rounds; r++ {
		var objs [5]prefix.Addr
		for i := range objs {
			objs[i] = env.Malloc(siteLoop, 48)
			env.Write(objs[i], 16)
		}
		hot = append(hot, pair{objs[0], objs[4]})
		env.Free(objs[1])
		env.Free(objs[2])
		env.Free(objs[3])
	}
	env.Leave()

	env.Enter(fnSolve)
	for sweep := 0; sweep < 40; sweep++ {
		for _, p := range hot {
			env.Read(p.o1, 32) // O1 and O5 are accessed together: one HDS
			env.Read(p.o5, 32)
			env.Compute(8)
		}
	}
	env.Leave()

	for _, p := range hot {
		env.Free(p.o1)
		env.Free(p.o5)
	}
}

func main() {
	cache := prefix.ScaledCacheConfig()

	// 1. Profile.
	rec := prefix.NewRecorder()
	m := prefix.NewMachine(prefix.NewBaselineAllocator(cache), cache, rec)
	program(m, 40)
	baseMetrics := m.Finish()
	analysis := prefix.Analyze(rec.Trace())

	// 2. Plan.
	plan, sum, err := prefix.BuildPlan(analysis, prefix.DefaultPlanConfig("mcfgraph", prefix.VariantHDSHot))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 scenario: one site, five objects per round, O1 and O5 hot")
	fmt.Printf("hot objects: %d of %d allocations (%.1f%% of heap accesses)\n",
		sum.HotObjects, len(analysis.Objects), sum.CoveragePct)
	fmt.Printf("inferred context: %s (%d site, %d counter)\n",
		plan.KindsString(), plan.NumSites(), plan.NumCounters())
	fmt.Printf("every call stack is identical, yet the id pattern separates O1/O5 exactly\n\n")

	// 3. Optimize and re-run.
	alloc := prefix.NewPreFixAllocator(plan, cache)
	m2 := prefix.NewMachine(alloc, cache, nil)
	program(m2, 40)
	optMetrics := m2.Finish()

	cap := alloc.Capture()
	fmt.Printf("baseline: %.0f cycles\n", baseMetrics.Cycles)
	fmt.Printf("PreFix:   %.0f cycles (%+.2f%%)\n", optMetrics.Cycles,
		100*(optMetrics.Cycles-baseMetrics.Cycles)/baseMetrics.Cycles)
	fmt.Printf("captured: %d allocations into the region, %d fell back to malloc\n",
		cap.MallocsAvoided, cap.FallbackMallocs)
	fmt.Printf("(a call-stack technique would have captured all %d allocations — Table 4's pollution)\n",
		len(analysis.Objects))
}
