// recycling demonstrates §2.4 object recycling on a swissmap-style churn
// program: groups of objects are created, used, freed, and the pattern
// repeats — so a fixed ring of N preallocated slots serves every
// allocation, shrinks the footprint, and eliminates the malloc/free
// traffic (paper Figure 7 and the povray/roms/leela/swissmap rows of
// Table 3).
package main

import (
	"fmt"
	"log"

	"prefix"
)

const (
	siteTable prefix.SiteID = 1
	siteNoise prefix.SiteID = 2
	fnBench   prefix.FuncID = 1
)

// churn creates a group of tables, probes them, frees them — repeatedly.
// Noise allocations steal the freed blocks, so the baseline's tables
// wander through the heap.
func churn(env prefix.Env, rounds int) {
	env.Enter(fnBench)
	var noise []prefix.Addr
	for r := 0; r < rounds; r++ {
		var tables [6]prefix.Addr
		for i := range tables {
			tables[i] = env.Malloc(siteTable, 2048)
			env.Write(tables[i], 64)
		}
		for p := 0; p < 120; p++ {
			t := tables[(p*7)%len(tables)]
			env.Read(t+prefix.Addr((p*176)%2000), 16)
			env.Compute(12)
		}
		for _, t := range tables {
			env.Free(t)
		}
		// Block-stealing noise.
		n := env.Malloc(siteNoise, 1800)
		env.Write(n, 32)
		noise = append(noise, n)
	}
	for _, n := range noise {
		env.Free(n)
	}
	env.Leave()
}

func main() {
	cache := prefix.ScaledCacheConfig()

	rec := prefix.NewRecorder()
	m := prefix.NewMachine(prefix.NewBaselineAllocator(cache), cache, rec)
	churn(m, 60)
	base := m.Finish()
	analysis := prefix.Analyze(rec.Trace())

	plan, _, err := prefix.BuildPlan(analysis, prefix.DefaultPlanConfig("recycling", prefix.VariantHot))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("swissmap-style churn: groups of 6 tables created, probed, freed, repeated")
	for i := range plan.Counters {
		c := &plan.Counters[i]
		if c.Recycle != nil {
			fmt.Printf("recycling ring: %d slots x %d bytes (pattern: %v over sites %v)\n",
				c.Recycle.N, c.Recycle.SlotSize, c.Kind, c.Sites)
		}
	}
	fmt.Printf("preallocated region: %d bytes total\n\n", plan.RegionSize)

	alloc := prefix.NewPreFixAllocator(plan, cache)
	m2 := prefix.NewMachine(alloc, cache, nil)
	churn(m2, 60)
	opt := m2.Finish()

	cap := alloc.Capture()
	fmt.Printf("baseline: %.0f cycles\n", base.Cycles)
	fmt.Printf("PreFix:   %.0f cycles (%+.2f%%)\n", opt.Cycles, 100*(opt.Cycles-base.Cycles)/base.Cycles)
	fmt.Printf("malloc calls avoided: %d of %d table allocations\n", cap.MallocsAvoided, base.Mallocs)
	fmt.Printf("the same %d bytes of region memory served every generation of tables\n", plan.RegionSize)
}
