// hybrid demonstrates §2.2.2's hybrid context — the paper's proposed
// extension for non-deterministic programs, implemented here: object-id
// patterns identify hot allocations, and the profiled call-stack
// signature acts as a safety check when the allocation order at runtime
// differs from the profiling run.
//
// The program below allocates a configuration table and a request buffer
// from the same site; which comes first depends on the "input" — exactly
// the kind of nondeterminism that makes pure instance-id matching
// capture the wrong object.
package main

import (
	"fmt"
	"log"

	"prefix"
)

const (
	site     prefix.SiteID = 1
	fnConfig prefix.FuncID = 1
	fnServe  prefix.FuncID = 2
)

// program allocates a cold request buffer and the hot config table from
// the same site; configFirst flips the allocation order.
func program(env prefix.Env, configFirst bool) {
	var table, buf prefix.Addr
	allocTable := func() {
		env.Enter(fnConfig)
		table = env.Malloc(site, 256)
		env.Write(table, 64)
		env.Leave()
	}
	allocBuf := func() {
		env.Enter(fnServe)
		buf = env.Malloc(site, 256)
		env.Write(buf, 16)
		env.Leave()
	}
	if configFirst {
		allocTable()
		allocBuf()
	} else {
		allocBuf()
		allocTable()
	}
	// The config table is hot; the buffer is touched once.
	for i := 0; i < 200; i++ {
		env.Read(table, 64)
		env.Compute(10)
	}
	env.Read(buf, 16)
	env.Free(buf)
	env.Free(table)
}

func main() {
	cache := prefix.ScaledCacheConfig()

	// Profile with configFirst = true: the hot table is instance 1.
	rec := prefix.NewRecorder()
	m := prefix.NewMachine(prefix.NewBaselineAllocator(cache), cache, rec)
	program(m, true)
	m.Finish()
	analysis := prefix.Analyze(rec.Trace())

	for _, hybrid := range []bool{false, true} {
		cfg := prefix.DefaultPlanConfig("hybrid-demo", prefix.VariantHot)
		cfg.HybridContext = hybrid
		plan, _, err := prefix.BuildPlan(analysis, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Evaluate with the *flipped* order: instance 1 is now the cold
		// buffer.
		alloc := prefix.NewPreFixAllocator(plan, cache)
		m := prefix.NewMachine(alloc, cache, nil)
		program(m, false)
		m.Finish()
		cap := alloc.Capture()
		fmt.Printf("hybrid=%-5v captured=%d (spurious under id-only matching) rejects=%d\n",
			hybrid, cap.MallocsAvoided, cap.HybridRejects)
	}
	fmt.Println("\nwith the hybrid check the shifted cold buffer is rejected because its")
	fmt.Println("call-stack signature differs from the profiled one (§2.2.2)")
}
