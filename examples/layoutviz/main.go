// layoutviz walks through Algorithm 1 on the paper's own Figure 2
// example: the ten hot data streams observed in a cc1 trace, with shared
// objects (shown in red in the paper) that make the raw OHDS
// unexploitable, and the reconstituted RHDS the algorithm produces.
package main

import (
	"os"

	"prefix/internal/hds"
	"prefix/internal/layout"
	"prefix/internal/mem"
	"prefix/internal/report"
)

func stream(heat uint64, objs ...uint64) hds.Stream {
	ids := make([]mem.ObjectID, len(objs))
	for i, o := range objs {
		ids[i] = mem.ObjectID(o)
	}
	return hds.Stream{Objects: ids, Heat: heat}
}

func main() {
	// The OHDS of the paper's Figure 2 (cc1 trace), descending by memory
	// references. Objects 2009, 2012, 1963, 24, 23 appear in multiple
	// streams — the "red ids".
	ohds := []hds.Stream{
		stream(100, 2012, 2009),
		stream(95, 2009, 2012, 1963),
		stream(90, 2018, 2009),
		stream(85, 1963, 1967),
		stream(80, 2419, 24),
		stream(75, 24, 2017),
		stream(70, 22, 23),
		stream(65, 23, 2422),
		stream(60, 2012, 2016),
		stream(55, 2009, 2017),
	}
	rec := layout.Reconstitute(ohds)
	if err := rec.Validate(); err != nil {
		panic(err)
	}
	report.Figure2(os.Stdout, ohds, rec)

	// And the offsets the objects would get in the preallocated region
	// (all cc1 objects modeled at 64 bytes).
	sizes := make(map[mem.ObjectID]uint64)
	for _, id := range rec.Order() {
		sizes[id] = 64
	}
	p := layout.Assign(rec.Order(), sizes)
	if err := p.Validate(); err != nil {
		panic(err)
	}
	os.Stdout.WriteString("\nPreallocated region offsets:\n")
	for _, id := range p.Order {
		report.Figure2Offsets(os.Stdout, id, p.Offsets[id], p.Sizes[id])
	}
}
