// Parameter sweeps: sensitivity of the headline result to the simulated
// LLC size and to the hot-coverage threshold — the knobs a user would
// turn first when porting the evaluation to a different machine model.
package prefix

import (
	"fmt"
	"testing"

	"prefix/internal/baselines"
	"prefix/internal/machine"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/workloads"
)

// BenchmarkSweepLLCSize runs ft's baseline-vs-PreFix comparison across
// LLC sizes. The gain persists across the sweep because it comes from
// line sharing in L1 and LLC-to-L1 traffic, not from one lucky capacity
// crossover.
func BenchmarkSweepLLCSize(b *testing.B) {
	spec, err := workloads.Get("ft")
	if err != nil {
		b.Fatal(err)
	}
	for _, mb := range []uint64{1, 2, 4, 8} {
		mb := mb
		b.Run(fmt.Sprintf("llc=%dMB", mb), func(b *testing.B) {
			opt := pipeline.DefaultOptions()
			opt.UseBenchScale = true
			opt.Cache.LLCSize = mb << 20
			opt.Cache.LLCWays = 16
			var delta float64
			for i := 0; i < b.N; i++ {
				prof, err := pipeline.CollectProfile(spec, opt)
				if err != nil {
					b.Fatal(err)
				}
				cfg := opt.Plan
				cfg.Benchmark = "ft"
				cfg.Variant = core.VariantHot
				plan, _, err := core.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
				if err != nil {
					b.Fatal(err)
				}
				base := machine.New(baselines.NewBaseline(opt.Cache.Cost), opt.Cache)
				spec.Program.Run(base, spec.Bench)
				bm := base.Finish()
				pm := machine.New(core.NewAllocator(plan, opt.Cache.Cost), opt.Cache)
				spec.Program.Run(pm, spec.Bench)
				om := pm.Finish()
				delta = 100 * (om.Cycles - bm.Cycles) / bm.Cycles
			}
			b.ReportMetric(delta, "time-delta-%")
			if delta > -10 {
				b.Errorf("ft gain collapsed at LLC=%dMB: %+.2f%%", mb, delta)
			}
		})
	}
}

// BenchmarkSweepHotCoverage sweeps the hot-selection coverage threshold
// on health: lower coverage shrinks the preallocated region but forfeits
// capture, tracing the paper's "memory footprint is controllable by
// limiting the size of the preallocated memory" trade-off.
func BenchmarkSweepHotCoverage(b *testing.B) {
	spec, err := workloads.Get("health")
	if err != nil {
		b.Fatal(err)
	}
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	prof, err := pipeline.CollectProfile(spec, opt)
	if err != nil {
		b.Fatal(err)
	}
	var prevRegion uint64
	for _, cov := range []float64{0.5, 0.75, 0.9, 0.96} {
		cov := cov
		b.Run(fmt.Sprintf("coverage=%.2f", cov), func(b *testing.B) {
			var region uint64
			var delta float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultPlanConfig("health", core.VariantHot)
				cfg.Hot.Coverage = cov
				cfg.PromoteAll = 0 // isolate the coverage knob
				plan, _, err := core.BuildPlan(prof.Analysis, cfg)
				if err != nil {
					b.Fatal(err)
				}
				region = plan.RegionSize
				base := machine.New(baselines.NewBaseline(opt.Cache.Cost), opt.Cache)
				spec.Program.Run(base, spec.Bench)
				bm := base.Finish()
				pm := machine.New(core.NewAllocator(plan, opt.Cache.Cost), opt.Cache)
				spec.Program.Run(pm, spec.Bench)
				om := pm.Finish()
				delta = 100 * (om.Cycles - bm.Cycles) / bm.Cycles
			}
			b.ReportMetric(float64(region), "region-bytes")
			b.ReportMetric(delta, "time-delta-%")
			if region < prevRegion {
				b.Errorf("region must grow with coverage: %d after %d", region, prevRegion)
			}
			prevRegion = region
		})
	}
}
