package prefix

import "testing"

func TestBenchmarks(t *testing.T) {
	names := Benchmarks()
	if len(names) != 13 {
		t.Fatalf("benchmarks = %d, want 13", len(names))
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	opt.UseBenchScale = true
	cmp, err := RunBenchmark("ft", opt)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BestResult().Metrics.Cycles >= cmp.Baseline.Metrics.Cycles {
		t.Error("PreFix should beat the baseline on ft")
	}
	plan := cmp.Plans[cmp.Best]
	if err := plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCacheConfigs(t *testing.T) {
	p := PaperCacheConfig()
	s := ScaledCacheConfig()
	if p.LLCSize != 40<<20 {
		t.Error("paper LLC should be 40MB")
	}
	if s.LLCSize >= p.LLCSize {
		t.Error("scaled LLC should be smaller")
	}
}

func TestDefaultPlanConfig(t *testing.T) {
	cfg := DefaultPlanConfig("mcf", VariantHDSHot)
	if cfg.Benchmark != "mcf" || cfg.Variant != VariantHDSHot {
		t.Error("plan config wrong")
	}
	if cfg.RecycleRatio <= 0 {
		t.Error("recycling should default on")
	}
}
