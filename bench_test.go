// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact at bench
// scale (run `cmd/prefix-bench` for the full long-run versions) and
// reports the headline number as a custom metric. Run with -v to see the
// rendered tables.
package prefix

import (
	"bytes"
	"sync"
	"testing"

	"prefix/internal/hds"
	"prefix/internal/pipeline"
	"prefix/internal/report"
	"prefix/internal/workloads"
)

// comparisons caches one full bench-scale evaluation of all 13 benchmarks
// so the table-formatting benchmarks don't redundantly re-run the
// pipeline (BenchmarkTable3ExecutionTime measures the real cost).
var (
	cmpOnce sync.Once
	cmpAll  []*pipeline.Comparison
	cmpErr  error
)

func allComparisons(b *testing.B) []*pipeline.Comparison {
	b.Helper()
	cmpOnce.Do(func() {
		opt := pipeline.DefaultOptions()
		opt.UseBenchScale = true
		opt.CaptureLongRun = true
		for _, name := range workloads.Names() {
			cmp, err := pipeline.RunBenchmark(name, opt)
			if err != nil {
				cmpErr = err
				return
			}
			cmpAll = append(cmpAll, cmp)
		}
	})
	if cmpErr != nil {
		b.Fatal(cmpErr)
	}
	return cmpAll
}

func logTable(b *testing.B, render func(*bytes.Buffer) error) {
	b.Helper()
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkFigure1HotCoverage regenerates Figure 1: the share of heap
// accesses from hot objects, per benchmark.
func BenchmarkFigure1HotCoverage(b *testing.B) {
	opt := pipeline.DefaultOptions()
	var pct float64
	for i := 0; i < b.N; i++ {
		spec, err := workloads.Get("mcf")
		if err != nil {
			b.Fatal(err)
		}
		prof, err := pipeline.CollectProfile(spec, opt)
		if err != nil {
			b.Fatal(err)
		}
		pct = prof.Hot.CoveragePct()
	}
	b.ReportMetric(pct, "hot-coverage-%")
	cmps := allComparisons(b)
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure1(buf, cmps) })
}

// BenchmarkFigure2Reconstitution regenerates the Figure 2 layout
// walk-through from a live perl profile.
func BenchmarkFigure2Reconstitution(b *testing.B) {
	cmps := allComparisons(b)
	var streams int
	for i := 0; i < b.N; i++ {
		for _, c := range cmps {
			streams += len(c.Summaries[c.Best].Recon.RHDS)
		}
	}
	b.ReportMetric(float64(streams)/float64(b.N), "rhds-streams")
}

// BenchmarkTable2Contexts regenerates Table 2: pattern types, #sites and
// #counters per benchmark.
func BenchmarkTable2Contexts(b *testing.B) {
	cmps := allComparisons(b)
	var counters int
	for i := 0; i < b.N; i++ {
		counters = 0
		for _, c := range cmps {
			counters += c.Plans[c.Best].NumCounters()
		}
	}
	b.ReportMetric(float64(counters), "total-counters")
	logTable(b, func(buf *bytes.Buffer) error { return report.Table2(buf, cmps) })
}

// BenchmarkTable3ExecutionTime is the headline experiment: it runs the
// full pipeline (profile, plan, six strategy runs) for one representative
// benchmark per iteration and reports the best-variant reduction; the
// logged table covers all 13 benchmarks.
func BenchmarkTable3ExecutionTime(b *testing.B) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	var best float64
	for i := 0; i < b.N; i++ {
		cmp, err := pipeline.RunBenchmark("ft", opt)
		if err != nil {
			b.Fatal(err)
		}
		best = cmp.BestResult().TimeDeltaPct(cmp.Baseline)
	}
	b.ReportMetric(best, "ft-best-%")
	cmps := allComparisons(b)
	var sum float64
	for _, c := range cmps {
		sum += c.BestResult().TimeDeltaPct(c.Baseline)
	}
	b.ReportMetric(sum/float64(len(cmps)), "avg-best-%")
	logTable(b, func(buf *bytes.Buffer) error { return report.Table3(buf, cmps) })
}

// BenchmarkTable4Pollution regenerates Table 4: objects directed to the
// HDS and HALO regions vs how many of them are hot.
func BenchmarkTable4Pollution(b *testing.B) {
	cmps := allComparisons(b)
	var spurious uint64
	for i := 0; i < b.N; i++ {
		spurious = 0
		for _, c := range cmps {
			if p := c.HDS.Pollution; p != nil {
				spurious += p.Spurious()
			}
			if p := c.HALO.Pollution; p != nil {
				spurious += p.Spurious()
			}
		}
	}
	b.ReportMetric(float64(spurious), "spurious-objects")
	logTable(b, func(buf *bytes.Buffer) error { return report.Table4(buf, cmps) })
}

// BenchmarkTable5Capture regenerates Table 5: PreFix capture precision in
// the profiling vs evaluation runs.
func BenchmarkTable5Capture(b *testing.B) {
	cmps := allComparisons(b)
	var ha float64
	for i := 0; i < b.N; i++ {
		ha = 0
		n := 0
		for _, c := range cmps {
			if c.LongRun != nil {
				ha += c.LongRun.HeapAccessPct
				n++
			}
		}
		if n > 0 {
			ha /= float64(n)
		}
	}
	b.ReportMetric(ha, "avg-longrun-HA-%")
	logTable(b, func(buf *bytes.Buffer) error { return report.Table5(buf, cmps) })
}

// BenchmarkTable6CostsBenefits regenerates Table 6: calls avoided,
// instruction-count change, peak memory change.
func BenchmarkTable6CostsBenefits(b *testing.B) {
	cmps := allComparisons(b)
	var avoided uint64
	for i := 0; i < b.N; i++ {
		avoided = 0
		for _, c := range cmps {
			if cap := c.BestResult().Capture; cap != nil {
				avoided += cap.CallsAvoided()
			}
		}
	}
	b.ReportMetric(float64(avoided), "calls-avoided")
	logTable(b, func(buf *bytes.Buffer) error { return report.Table6(buf, cmps) })
}

// BenchmarkFigure9Heatmap regenerates the Figure 9 data: leela's hot
// access footprint under the baseline vs PreFix.
func BenchmarkFigure9Heatmap(b *testing.B) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, best, _, err := pipeline.TraceBaselineAndBest("leela", opt)
		if err != nil {
			b.Fatal(err)
		}
		hb := report.BuildHeatmap(base, 120, 80)
		ho := report.BuildHeatmap(best, 120, 80)
		if ho.Footprint > 0 {
			ratio = float64(hb.Footprint) / float64(ho.Footprint)
		}
	}
	b.ReportMetric(ratio, "footprint-reduction-x")
}

// BenchmarkFigure10Multithreading regenerates Figure 10 for mcf.
func BenchmarkFigure10Multithreading(b *testing.B) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	var results []pipeline.MTResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = pipeline.RunMultithreaded("mcf", []int{1, 2, 4, 8}, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[len(results)-1].ImprovementPct, "8-thread-improvement-%")
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure10(buf, "mcf", results) })
}

// BenchmarkFigure11L1Misses, 12 and 13 regenerate the miss-rate and
// stall figures from the shared evaluation.
func BenchmarkFigure11L1Misses(b *testing.B) {
	cmps := allComparisons(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		delta = 0
		for _, c := range cmps {
			delta += 100 * (c.BestResult().Metrics.Cache.L1MissRate() - c.Baseline.Metrics.Cache.L1MissRate())
		}
		delta /= float64(len(cmps))
	}
	b.ReportMetric(delta, "avg-L1-miss-pp")
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure11(buf, cmps) })
}

// BenchmarkFigure12LLCMisses regenerates Figure 12.
func BenchmarkFigure12LLCMisses(b *testing.B) {
	cmps := allComparisons(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		delta = 0
		for _, c := range cmps {
			delta += 100 * (c.BestResult().Metrics.Cache.LLCMissRate() - c.Baseline.Metrics.Cache.LLCMissRate())
		}
		delta /= float64(len(cmps))
	}
	b.ReportMetric(delta, "avg-LLC-miss-pp")
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure12(buf, cmps) })
}

// BenchmarkFigure13BackendStalls regenerates Figure 13.
func BenchmarkFigure13BackendStalls(b *testing.B) {
	cmps := allComparisons(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		delta = 0
		for _, c := range cmps {
			delta += c.BestResult().Metrics.BackendStallPct() - c.Baseline.Metrics.BackendStallPct()
		}
		delta /= float64(len(cmps))
	}
	b.ReportMetric(delta, "avg-stall-pp")
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure13(buf, cmps) })
}

// BenchmarkFigure14BinarySize regenerates the binary-size accounting.
func BenchmarkFigure14BinarySize(b *testing.B) {
	cmps := allComparisons(b)
	var growth float64
	for i := 0; i < b.N; i++ {
		growth = 0
		// Formatting includes the Rewrite computation per row.
		var buf bytes.Buffer
		if err := report.Figure14(&buf, cmps); err != nil {
			b.Fatal(err)
		}
		growth = float64(buf.Len())
	}
	b.ReportMetric(growth, "report-bytes")
	logTable(b, func(buf *bytes.Buffer) error { return report.Figure14(buf, cmps) })
}

// BenchmarkAblationSequiturVsLCS compares the paper's LCS miner with the
// original Sequitur detector (§3.1: "as effective as Sequitur" but more
// efficient) on a live perl profile.
func BenchmarkAblationSequiturVsLCS(b *testing.B) {
	spec, err := workloads.Get("perl")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := pipeline.CollectProfile(spec, pipeline.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	refs := hds.CollapseRefs(prof.Analysis.Refs, prof.Hot.IDs)
	cfg := hds.DefaultConfig()

	b.Run("lcs", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(hds.MineLCS(refs, cfg))
		}
		b.ReportMetric(float64(n), "streams")
	})
	b.Run("sequitur", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(hds.MineSequitur(refs, cfg))
		}
		b.ReportMetric(float64(n), "streams")
	})
}

// BenchmarkAblationContextCheck measures the per-allocation cost of the
// three pattern categories' runtime checks (the Table 1 "lightweight
// instrumentation" claim) via the modeled instruction counts.
func BenchmarkAblationContextCheck(b *testing.B) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	cmp, err := pipeline.RunBenchmark("health", opt)
	if err != nil {
		b.Fatal(err)
	}
	var perAlloc float64
	for i := 0; i < b.N; i++ {
		cap := cmp.BestResult().Capture
		total := cap.MallocsAvoided + cap.FallbackMallocs
		if total > 0 {
			perAlloc = float64(cap.CheckInstr) / float64(total)
		}
	}
	b.ReportMetric(perAlloc, "check-instr/alloc")
}
