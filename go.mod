module prefix

go 1.22
