// Ablation benchmarks for the design choices DESIGN.md calls out: counter
// sharing, object recycling, the next-line prefetcher, and the hybrid
// context. Each reports the with/without effect as custom metrics.
package prefix

import (
	"testing"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/workloads"
)

// BenchmarkAblationCounterSharing plans mcf with and without counter
// sharing: sharing collapses six sites onto two counters with no loss of
// capture (§2.2.1).
func BenchmarkAblationCounterSharing(b *testing.B) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := pipeline.CollectProfile(spec, pipeline.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var shared, unshared int
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultPlanConfig("mcf", core.VariantHot)
		p1, _, err := core.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Share.Disabled = true
		p2, _, err := core.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		if err != nil {
			b.Fatal(err)
		}
		shared, unshared = p1.NumCounters(), p2.NumCounters()
	}
	b.ReportMetric(float64(shared), "counters-shared")
	b.ReportMetric(float64(unshared), "counters-unshared")
	if shared >= unshared {
		b.Fatalf("sharing should reduce counters: %d vs %d", shared, unshared)
	}
}

// BenchmarkAblationRecycling evaluates leela with recycling on and off:
// without the ring, the plan degenerates to single-use static slots and
// the win disappears (§2.4).
func BenchmarkAblationRecycling(b *testing.B) {
	spec, err := workloads.Get("leela")
	if err != nil {
		b.Fatal(err)
	}
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	prof, err := pipeline.CollectProfile(spec, opt)
	if err != nil {
		b.Fatal(err)
	}
	run := func(ratio float64) (float64, uint64) {
		cfg := core.DefaultPlanConfig("leela", core.VariantHot)
		cfg.RecycleRatio = ratio
		plan, _, err := core.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		if err != nil {
			b.Fatal(err)
		}
		alloc := core.NewAllocator(plan, opt.Cache.Cost)
		m := machine.New(alloc, opt.Cache)
		spec.Program.Run(m, spec.Bench)
		return m.Finish().Cycles, plan.RegionSize
	}
	var withCycles, withoutCycles float64
	var withRegion, withoutRegion uint64
	for i := 0; i < b.N; i++ {
		withCycles, withRegion = run(4)
		withoutCycles, withoutRegion = run(0)
	}
	b.ReportMetric(100*(withoutCycles-withCycles)/withoutCycles, "recycling-gain-%")
	b.ReportMetric(float64(withoutRegion)/float64(withRegion), "region-shrink-x")
}

// BenchmarkAblationPrefetcher runs the ft baseline with and without the
// next-line prefetcher: sequential hot layouts depend on it, which is why
// the simulator models it.
func BenchmarkAblationPrefetcher(b *testing.B) {
	spec, err := workloads.Get("ft")
	if err != nil {
		b.Fatal(err)
	}
	run := func(prefetch bool) cachesim.Counts {
		cfg := cachesim.ScaledConfig()
		cfg.NextLinePrefetch = prefetch
		m := machine.New(baselines.NewBaseline(cfg.Cost), cfg)
		spec.Program.Run(m, spec.Bench)
		return m.Finish().Cache
	}
	var on, off cachesim.Counts
	for i := 0; i < b.N; i++ {
		on = run(true)
		off = run(false)
	}
	b.ReportMetric(100*on.LLCMissRate(), "llc-miss-%-prefetch")
	b.ReportMetric(100*off.LLCMissRate(), "llc-miss-%-noprefetch")
	if on.LLCMisses >= off.LLCMisses {
		b.Fatal("prefetcher should reduce demand LLC misses on ft")
	}
}

// BenchmarkAblationHybridContext measures the §2.2.2 hybrid check's cost
// on a deterministic benchmark (it should change nothing but the check
// instructions).
func BenchmarkAblationHybridContext(b *testing.B) {
	spec, err := workloads.Get("xalanc")
	if err != nil {
		b.Fatal(err)
	}
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	prof, err := pipeline.CollectProfile(spec, opt)
	if err != nil {
		b.Fatal(err)
	}
	run := func(hybrid bool) (float64, core.Capture) {
		cfg := core.DefaultPlanConfig("xalanc", core.VariantHot)
		cfg.HybridContext = hybrid
		plan, _, err := core.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		if err != nil {
			b.Fatal(err)
		}
		alloc := core.NewAllocator(plan, opt.Cache.Cost)
		m := machine.New(alloc, opt.Cache)
		spec.Program.Run(m, spec.Bench)
		return m.Finish().Cycles, alloc.Capture()
	}
	var plain, hybrid float64
	var cap core.Capture
	for i := 0; i < b.N; i++ {
		plain, _ = run(false)
		hybrid, cap = run(true)
	}
	b.ReportMetric(100*(hybrid-plain)/plain, "hybrid-overhead-%")
	b.ReportMetric(float64(cap.HybridRejects), "hybrid-rejects")
	if cap.MallocsAvoided == 0 {
		b.Fatal("hybrid run captured nothing")
	}
}
