// Package prefix is a reproduction of "PreFix: Optimizing the Performance
// of Heap-Intensive Applications" (CGO 2025): profile-guided preallocation
// of hot heap objects with layout reordering, precise object-id contexts,
// and object recycling — together with the full simulation substrate the
// evaluation needs (heap allocator, cache/TLB hierarchy, tracing machine,
// HDS mining, and the HDS and HALO baselines).
//
// The package is a facade over the implementation packages:
//
//	Profile   — run a benchmark's training input and analyze its trace
//	BuildPlan — derive the preallocation plan (Figures 4–7 inputs)
//	RunBenchmark — the full Figure 8 pipeline with every strategy
//	RunMultithreaded — the §3.3 multithreading experiment
//
// The 13 synthetic benchmarks of the evaluation are registered under the
// names returned by Benchmarks(). See DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured results.
package prefix

import (
	"io"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/hotness"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/pipeline"
	core "prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Core optimization types.
type (
	// Plan is the product of profile analysis: the preallocated region
	// layout, per-counter id patterns, and recycling configuration.
	Plan = core.Plan
	// PlanConfig controls planning (hot selection, mining, sharing,
	// recycling, variant).
	PlanConfig = core.PlanConfig
	// Variant selects which objects a plan places (Hot / HDS / HDS+Hot).
	Variant = core.Variant
	// Allocator executes a Plan with the instrumentation semantics of
	// the paper's Figures 4–7.
	Allocator = core.Allocator
	// Capture holds runtime capture statistics (Tables 5 and 6).
	Capture = core.Capture
	// Summary is the profile-analysis byproduct (OHDS, reconstitution).
	Summary = core.Summary
)

// Pipeline types.
type (
	// Options configures an evaluation (cache geometry, plan config).
	Options = pipeline.Options
	// Comparison is a full benchmark evaluation across strategies.
	Comparison = pipeline.Comparison
	// RunResult is one strategy's run.
	RunResult = pipeline.RunResult
	// MTResult is one Figure 10 data point.
	MTResult = pipeline.MTResult
	// ProfileData is the product of a profiling run.
	ProfileData = pipeline.Profile
	// Variance summarizes a benchmark's perturbed-seed sweep.
	Variance = pipeline.Variance
)

// CacheConfig describes the simulated memory hierarchy.
type CacheConfig = cachesim.Config

// Variants.
const (
	VariantHot    = core.VariantHot
	VariantHDS    = core.VariantHDS
	VariantHDSHot = core.VariantHDSHot
)

// Benchmarks lists the registered benchmark names in the paper's order.
func Benchmarks() []string { return workloads.Names() }

// DefaultOptions returns the standard evaluation setup (scaled LLC, all
// three variants).
func DefaultOptions() Options { return pipeline.DefaultOptions() }

// PaperCacheConfig returns the §3.2 evaluation-machine geometry.
func PaperCacheConfig() CacheConfig { return cachesim.PaperConfig() }

// ScaledCacheConfig returns the reduced-LLC geometry used for fast runs.
func ScaledCacheConfig() CacheConfig { return cachesim.ScaledConfig() }

// DefaultPlanConfig returns the planning configuration used across the
// evaluation for the given benchmark and variant.
func DefaultPlanConfig(benchmark string, v Variant) PlanConfig {
	return core.DefaultPlanConfig(benchmark, v)
}

// RunBenchmark evaluates one benchmark end to end: profile, plan, and run
// under the baseline, HDS, HALO, and every PreFix variant.
func RunBenchmark(name string, opt Options) (*Comparison, error) {
	return pipeline.RunBenchmark(name, opt)
}

// RunSuite evaluates several benchmarks on a bounded worker pool of
// `jobs` workers (1 = serial). Results are indexed by position in
// names, so everything derived from them is identical at any job count.
func RunSuite(names []string, opt Options, jobs int) ([]*Comparison, error) {
	return pipeline.RunSuite(names, opt, jobs)
}

// RunVariance evaluates one benchmark across `runs` perturbed
// evaluation seeds, collecting the profile once and reusing it for
// every seed.
func RunVariance(name string, runs int, opt Options) (*Variance, error) {
	return pipeline.RunVariance(name, runs, opt)
}

// RunMultithreaded reproduces the Figure 10 experiment for a
// multithreaded benchmark (mysql, mcf).
func RunMultithreaded(name string, threads []int, opt Options) ([]MTResult, error) {
	return pipeline.RunMultithreaded(name, threads, opt)
}

// BuildPlan derives a PreFix plan from an analyzed profiling trace.
func BuildPlan(a *trace.Analysis, cfg PlanConfig) (*Plan, *Summary, error) {
	return core.BuildPlan(a, cfg)
}

// SelectHot performs hot-object selection with "all ids" promotion.
func SelectHot(a *trace.Analysis, cfg PlanConfig) *hotness.Set {
	return core.SelectHot(a, cfg)
}

// --- Writing custom programs against the simulation -------------------
//
// A program is any function driving an Env: Enter/Leave for the call
// stack, Malloc/Free/Realloc for heap operations, Read/Write for data
// accesses, Compute for non-memory work. Run it on a tracing machine to
// profile it, build a plan, then run it again on a PreFix allocator.

// Primitive identifier types for custom programs.
type (
	// Addr is a simulated virtual address.
	Addr = mem.Addr
	// SiteID identifies a static malloc site.
	SiteID = mem.SiteID
	// FuncID identifies a function for call-stack tracking.
	FuncID = mem.FuncID
)

// Env is the execution environment custom programs drive.
type Env = machine.Env

// MachineAllocator is an allocation strategy a machine can run on.
type MachineAllocator = machine.Allocator

// Metrics summarizes one run (cycles, cache counts, allocator activity).
type Metrics = machine.Metrics

// Trace and Analysis re-exports for custom profiling flows.
type (
	// Trace is a recorded event stream.
	Trace = trace.Trace
	// Analysis is the object-level reconstruction of a trace.
	Analysis = trace.Analysis
	// Recorder accumulates trace events in memory during a profiling run.
	Recorder = trace.Recorder
)

// Streaming re-exports: the bounded-memory trace architecture. A
// TraceSource pulls events one at a time, a TraceSink consumes them, and
// the spill recorder keeps profiling runs within a fixed event budget by
// streaming chunks to a backing writer (see DESIGN.md "Streaming trace
// architecture").
type (
	// TraceSource is a pull iterator over an event stream.
	TraceSource = trace.Source
	// TraceSink is an incremental consumer of an event stream.
	TraceSink = trace.Sink
	// EventRecorder is the recorder interface a tracing machine feeds;
	// *Recorder and *SpillRecorder both implement it.
	EventRecorder = trace.EventRecorder
	// SpillRecorder records a profiling run within a bounded event
	// budget, spilling chunks to a backing writer.
	SpillRecorder = trace.SpillRecorder
	// TraceAnalyzer reconstructs an Analysis incrementally (Feed each
	// event, then Finish).
	TraceAnalyzer = trace.Analyzer
)

// NewRecorder returns an empty in-memory trace recorder.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// NewSpillRecorder returns a bounded-memory recorder that streams
// chunks of at most chunkEvents events into w (chunkEvents < 1 selects
// the default budget). Close it before reading the stream back.
func NewSpillRecorder(w io.Writer, chunkEvents int) (*SpillRecorder, error) {
	return trace.NewSpillRecorder(w, chunkEvents)
}

// OpenTraceStream returns a pull iterator over a trace file written by
// Trace.Write or a spill recorder, decoding incrementally so the trace
// is never materialized.
func OpenTraceStream(r io.Reader) (TraceSource, error) { return trace.NewStreamReader(r) }

// Analyze reconstructs dynamic objects and the reference string from a
// recorded trace.
func Analyze(t *Trace) *Analysis { return trace.Analyze(t) }

// AnalyzeSource is Analyze over a pull iterator: single-pass and
// bounded-memory, with an identical result for the same events.
func AnalyzeSource(src TraceSource) (*Analysis, error) { return trace.AnalyzeSource(src) }

// NewBaselineAllocator returns the plain-heap strategy.
func NewBaselineAllocator(cfg CacheConfig) MachineAllocator {
	return baselines.NewBaseline(cfg.Cost)
}

// NewPreFixAllocator returns the PreFix runtime for a plan.
func NewPreFixAllocator(plan *Plan, cfg CacheConfig) *Allocator {
	return core.NewAllocator(plan, cfg.Cost)
}

// Machine couples an allocator with a simulated cache hierarchy; custom
// programs run against it as their Env.
type Machine = machine.Machine

// NewMachine builds a machine. Pass a non-nil recorder (in-memory or
// spill-to-disk) to trace the run.
func NewMachine(alloc MachineAllocator, cfg CacheConfig, rec EventRecorder) *Machine {
	if rec != nil {
		return machine.New(alloc, cfg, machine.WithRecorder(rec))
	}
	return machine.New(alloc, cfg)
}
