// Package mem defines the primitive types shared by every layer of the
// PreFix simulation stack: simulated virtual addresses, allocation-site
// identifiers, dynamic object identifiers, and call-stack signatures.
//
// The whole reproduction runs against a simulated 64-bit address space; no
// real memory backs the addresses. Only the addresses themselves matter,
// because cache behaviour, TLB behaviour and layout quality are all pure
// functions of the address stream.
package mem

import "fmt"

// Addr is a simulated 64-bit virtual address.
type Addr uint64

// SiteID identifies a static malloc site in the program text. Site ids are
// assigned by each workload and are stable across runs of that workload.
type SiteID uint32

// ObjectID identifies one dynamic heap object. Object ids are assigned in
// allocation order by the trace analyzer (first allocation = 1) and are
// unique for the lifetime of a trace even when the allocator reuses
// addresses.
type ObjectID uint64

// FuncID identifies a function for call-stack tracking.
type FuncID uint32

// StackSig is a hash signature of a dynamic call stack, as used by HALO to
// identify allocation contexts. Distinct stacks may collide, and — more
// importantly for the paper's argument — identical stacks are shared by
// many dynamic allocations, which is exactly the imprecision PreFix avoids.
type StackSig uint64

// Instance is the dynamic allocation instance number of an object within
// its malloc site: the n-th object allocated by site S has Instance n
// (1-based), matching the paper's "ObjectID = Counter + 1" convention.
type Instance uint64

// NilAddr is the zero address; it is never returned by an allocator.
const NilAddr Addr = 0

// Standard line/page geometry used across the simulation. The cache
// simulator is configurable, but the 64-byte line and 4 KiB page match the
// paper's evaluation machine.
const (
	LineSize  = 64
	PageSize  = 4096
	LineShift = 6
	PageShift = 12
)

// LineOf returns the cache-line number containing a.
func LineOf(a Addr) uint64 { return uint64(a) >> LineShift }

// PageOf returns the page number containing a.
func PageOf(a Addr) uint64 { return uint64(a) >> PageShift }

// AlignUp rounds n up to the next multiple of align. align must be a
// power of two.
func AlignUp(n, align uint64) uint64 {
	return (n + align - 1) &^ (align - 1)
}

// IsAligned reports whether n is a multiple of align (a power of two).
func IsAligned(n, align uint64) bool { return n&(align-1) == 0 }

func (a Addr) String() string     { return fmt.Sprintf("0x%x", uint64(a)) }
func (s SiteID) String() string   { return fmt.Sprintf("site%d", uint32(s)) }
func (o ObjectID) String() string { return fmt.Sprintf("obj%d", uint64(o)) }

// Range is a half-open address interval [Start, Start+Size).
type Range struct {
	Start Addr
	Size  uint64
}

// Contains reports whether a lies inside the range.
func (r Range) Contains(a Addr) bool {
	return a >= r.Start && uint64(a-r.Start) < r.Size
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Start + Addr(r.Size) }

// Overlaps reports whether two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End() && o.Start < r.End()
}
