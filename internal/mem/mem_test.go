package mem

import (
	"testing"
	"testing/quick"
)

func TestAlignUp(t *testing.T) {
	cases := []struct {
		n, align, want uint64
	}{
		{0, 16, 0},
		{1, 16, 16},
		{15, 16, 16},
		{16, 16, 16},
		{17, 16, 32},
		{63, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
		{4095, 4096, 4096},
	}
	for _, c := range cases {
		if got := AlignUp(c.n, c.align); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.n, c.align, got, c.want)
		}
	}
}

func TestAlignUpProperties(t *testing.T) {
	f := func(n uint32, shift uint8) bool {
		align := uint64(1) << (shift % 12)
		got := AlignUp(uint64(n), align)
		return got >= uint64(n) && got%align == 0 && got-uint64(n) < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsAligned(t *testing.T) {
	if !IsAligned(64, 64) || !IsAligned(0, 16) {
		t.Error("expected aligned")
	}
	if IsAligned(65, 64) || IsAligned(8, 16) {
		t.Error("expected unaligned")
	}
}

func TestLineAndPage(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(128) != 2 {
		t.Error("LineOf wrong")
	}
	if PageOf(0) != 0 || PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Error("PageOf wrong")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Start: 100, Size: 50}
	for _, a := range []Addr{100, 101, 149} {
		if !r.Contains(a) {
			t.Errorf("range should contain %v", a)
		}
	}
	for _, a := range []Addr{99, 150, 0, 1 << 40} {
		if r.Contains(a) {
			t.Errorf("range should not contain %v", a)
		}
	}
	if r.End() != 150 {
		t.Errorf("End = %v, want 150", r.End())
	}
}

func TestRangeContainsEmpty(t *testing.T) {
	r := Range{Start: 100, Size: 0}
	if r.Contains(100) {
		t.Error("empty range should contain nothing")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Start: 100, Size: 50}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{100, 50}, true},
		{Range{149, 1}, true},
		{Range{150, 10}, false},
		{Range{90, 10}, false},
		{Range{90, 11}, true},
		{Range{0, 1000}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v", c.b)
		}
	}
}

func TestStringers(t *testing.T) {
	if Addr(0x10).String() != "0x10" {
		t.Errorf("Addr.String: %s", Addr(0x10))
	}
	if SiteID(3).String() != "site3" {
		t.Errorf("SiteID.String: %s", SiteID(3))
	}
	if ObjectID(7).String() != "obj7" {
		t.Errorf("ObjectID.String: %s", ObjectID(7))
	}
}
