package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// mysql models the database benchmark: a server whose hot state is a small
// number of large, long-lived cache structures — table-cache descriptors
// chained together and consulted on every query, plus big buffer pools
// that are scanned with strong intra-object locality.
//
// Per the paper: 10 instrumented sites sharing 6 counters with fixed ids
// (Table 2); the hot objects are "very large with significant intra-object
// spatial locality", so object reordering contributes little and
// PreFix:Hot is the best variant; preallocation grows peak memory
// substantially (Table 6: the sort/join buffers are transient in the
// baseline but permanently reserved by PreFix).
type mysql struct{}

func (mysql) Name() string { return "mysql" }

const (
	// Descriptor sites: three table-cache descriptor chains, each chain
	// allocated in tandem by three sites (open_table / fill_share /
	// attach_index), so each chain's sites share one counter.
	mysqlSiteDesc1 mem.SiteID = iota + 1
	mysqlSiteDesc2
	mysqlSiteDesc3
	mysqlSiteDesc4
	mysqlSiteDesc5
	mysqlSiteDesc6
	// Buffer sites: four per-phase buffer pools (sort, join, key cache,
	// net buffer), each its own counter.
	mysqlSiteBufSort
	mysqlSiteBufJoin
	mysqlSiteBufKey
	mysqlSiteBufNet
	mysqlSiteCold
)

const (
	mysqlFnOpenTable mem.FuncID = iota + 101
	mysqlFnQuery
	mysqlFnPhase
)

const (
	mysqlDescSize = 32
	mysqlBufSize  = 32 * 1024
)

type mysqlState struct {
	descs []hotObj // hot table-cache descriptors
	bufs  []hotObj // long-lived hot buffer pools (one per buffer site)
	cold  *coldPool
	rng   *xrand.Rand
}

func (w mysql) buildServer(env machine.Env, rng *xrand.Rand) *mysqlState {
	st := &mysqlState{rng: rng}
	st.cold = newColdPool(env, rng, mysqlSiteCold, 0, 600)

	env.Enter(mysqlFnOpenTable)
	// Two chain groups: {Desc1,Desc2,Desc3} then {Desc4,Desc5,Desc6}.
	// Each group's first eight tandem rounds allocate the hot table
	// descriptors; later rounds allocate cold per-connection copies from
	// the same sites (and the same call stack — the HALO pollution
	// source). The per-table dictionaries allocated between descriptors
	// scatter each descriptor onto its own page of the baseline heap.
	groups := [][]mem.SiteID{
		{mysqlSiteDesc1, mysqlSiteDesc2, mysqlSiteDesc3},
		{mysqlSiteDesc4, mysqlSiteDesc5, mysqlSiteDesc6},
	}
	for _, g := range groups {
		rounds := 24
		for r := 0; r < rounds; r++ {
			for _, site := range g {
				st.cold.churn(2, 2000)
				a := env.Malloc(site, mysqlDescSize)
				env.Write(a, 24)
				if r < 16 {
					st.descs = append(st.descs, hotObj{a, mysqlDescSize})
				} else {
					env.Free(a)
				}
			}
		}
	}
	env.Leave()

	// Long-lived buffer pools (key cache, join cache, …): one big hot
	// buffer per site, allocated up front and scanned throughout the
	// run. The staggered second hot instance for sort/key arrives later
	// (mysqlHotPhase), keeping the four buffer counters separate.
	env.Enter(mysqlFnPhase)
	for _, site := range [4]mem.SiteID{mysqlSiteBufSort, mysqlSiteBufJoin, mysqlSiteBufKey, mysqlSiteBufNet} {
		b := hotObj{env.Malloc(site, mysqlBufSize), mysqlBufSize}
		for off := uint64(0); off < b.size; off += 256 {
			env.Write(b.addr+mem.Addr(off), 64)
		}
		st.bufs = append(st.bufs, b)
		st.cold.churn(4, 300)
	}
	env.Leave()
	return st
}

// phase runs one buffer phase. Hot phases allocate another big buffer
// pool that stays live for the rest of the run (it joins the scan
// rotation); cold phases allocate a small per-query buffer, use it once
// and free it.
func (w mysql) phase(env machine.Env, st *mysqlState, site mem.SiteID, hot bool) {
	env.Enter(mysqlFnPhase)
	if hot {
		buf := hotObj{env.Malloc(site, mysqlBufSize), mysqlBufSize}
		for off := uint64(0); off < buf.size; off += 256 {
			env.Write(buf.addr+mem.Addr(off), 64)
		}
		st.bufs = append(st.bufs, buf)
		env.Leave()
		return
	}
	buf := hotObj{env.Malloc(site, 8*1024), 8 * 1024}
	env.Write(buf.addr, 64)
	env.Write(buf.addr+4096, 64)
	env.Compute(800)
	env.Free(buf.addr)
	env.Leave()
}

// query is the per-request hot path: scan a window of a buffer pool
// (intra-object locality), and periodically re-walk the full table-cache
// descriptor chains (inter-object locality: the PreFix win).
func (w mysql) query(env machine.Env, st *mysqlState, q int) {
	env.Enter(mysqlFnQuery)
	b := st.bufs[q%len(st.bufs)]
	off := uint64((q*4096)%int(b.size-4096)) &^ 63
	for o := off; o < off+4096; o += 64 {
		env.Read(b.addr+mem.Addr(o), 64)
	}
	env.Compute(600)
	if q%8 == 3 {
		for _, d := range st.descs {
			d.visit(env, 24)
			env.Compute(6)
		}
	}
	env.Leave()
}

func (w mysql) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	st := w.buildServer(env, rng)
	queries := scaled(2600, cfg.Scale)
	bufSites := []mem.SiteID{mysqlSiteBufSort, mysqlSiteBufJoin, mysqlSiteBufKey, mysqlSiteBufNet}
	bufCount := make(map[mem.SiteID]int)
	for q := 0; q < queries; q++ {
		w.query(env, st, q)
		if q%40 == 7 {
			site := bufSites[(q/40)%len(bufSites)]
			bufCount[site]++
			w.phase(env, st, site, mysqlHotPhase(site, bufCount[site]))
		}
		if q%8 == 2 {
			st.cold.touch(3)
		}
		if q%64 == 13 {
			st.cold.churn(10, 200)
		}
	}
	st.cold.drain()
	for _, b := range st.bufs {
		env.Free(b.addr)
	}
	for _, d := range st.descs {
		env.Free(d.addr)
	}
}

// RunMT implements MultiThreaded: every thread is a connection worker
// with its own descriptor chains and buffer phases ("the hot objects are
// allocated and accessed by a unique thread").
func (w mysql) RunMT(envs []machine.Env, cfg Config) {
	if len(envs) == 1 {
		w.Run(envs[0], cfg)
		return
	}
	states := make([]*mysqlState, len(envs))
	for t := range envs {
		states[t] = w.buildServer(envs[t], xrand.New(cfg.Seed+uint64(t)*104729))
	}
	queries := scaled(2600, cfg.Scale)
	bufSites := []mem.SiteID{mysqlSiteBufSort, mysqlSiteBufJoin, mysqlSiteBufKey, mysqlSiteBufNet}
	bufCount := make(map[mem.SiteID]int)
	for q := 0; q < queries; q++ {
		t := q % len(envs)
		st := states[t]
		w.query(envs[t], st, q)
		if q%40 == 7 {
			site := bufSites[(q/40)%len(bufSites)]
			bufCount[site]++
			w.phase(envs[t], st, site, mysqlHotPhase(site, bufCount[site]))
		}
	}
	for t, st := range states {
		st.cold.drain()
		for _, d := range st.descs {
			envs[t].Free(d.addr)
		}
		for _, b := range st.bufs {
			envs[t].Free(b.addr)
		}
	}
}

// mysqlHotPhase reports whether the n-th buffer phase of a site grows the
// hot buffer pool: the sort and key-cache subsystems add a second big
// buffer on their second phase. The staggered instances keep the four
// buffer-site counters from merging.
func mysqlHotPhase(site mem.SiteID, n int) bool {
	switch site {
	case mysqlSiteBufSort, mysqlSiteBufKey:
		return n == 2
	default:
		return false
	}
}

func init() {
	register(Spec{
		Program: mysql{},
		Profile: Config{Scale: 0.15, Seed: 21},
		Long:    Config{Scale: 1.0, Seed: 2203},
		Bench:   Config{Scale: 0.25, Seed: 2203},
		Binary: BinaryInfo{
			TextBytes:   24 << 20,
			MallocSites: 1800, FreeSites: 1400, ReallocSites: 120,
			BoltOrigText: true,
		},
		BaselineSeconds: 152.7,
	})
}
