package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// mcf models SPEC 429/505.mcf, the paper's running example (§2.2 and
// Figure 3): a network-flow solver with six hot objects from six distinct
// malloc sites.
//
//   - Sites 1–3 allocate the input network itself — the node array, the
//     arc array, and the dummy-arc array — as the *first* allocation of
//     each site; the same sites then allocate cold per-parse scratch
//     buffers (the "30 other object allocations with the same call-stack
//     signature" that defeat calling-context identification).
//   - Sites 4–6 allocate the three spanning-tree structures of the
//     primal network simplex optimizer, rebuilt periodically during the
//     solve, so every instance of these sites is hot ("all ids") and the
//     trio recycles through a three-slot ring.
//
// The two site groups allocate in tandem, so each group shares one
// counter — six sites, two counters, matching Table 2's "(6, 2)".
//
// The simplex loop walks (nodes, arcs) together — one hot data stream —
// and touches the three small tree structures together — the second
// stream. Multithreaded runs have thread 0 allocate and all threads
// traverse, the sharing structure §3.3 describes for mcf.
type mcf struct{}

func (mcf) Name() string { return "mcf" }

// Site and function ids.
const (
	mcfSiteNodes mem.SiteID = iota + 1
	mcfSiteArcs
	mcfSiteDummy
	mcfSiteTreeA
	mcfSiteTreeB
	mcfSiteTreeC
	mcfSiteCold
)

const (
	mcfFnParse mem.FuncID = iota + 1
	mcfFnSimplex
	mcfFnRefresh
)

type mcfState struct {
	nodes, arcs, dummy  hotObj
	treeA, treeB, treeC hotObj
	cold                *coldPool
}

// build runs the allocation phase on env and returns the hot handles.
func (w mcf) build(env machine.Env, rng *xrand.Rand, cfg Config) *mcfState {
	st := &mcfState{}
	// fn 0: cold churn happens under the *same* call stack as the hot
	// parse allocations, reproducing the calling-context imprecision of
	// Figure 3 (HALO directs this churn into the hot pool).
	st.cold = newColdPool(env, rng, mcfSiteCold, 0, 400)

	env.Enter(mcfFnParse)
	// Figure 3 shape: a parse loop in which the *first* iteration's
	// allocations are the graph itself and later iterations allocate
	// cold scratch with the very same sites and call stack.
	parseRounds := 10
	for i := 0; i < parseRounds; i++ {
		if i == 0 {
			st.nodes = hotObj{env.Malloc(mcfSiteNodes, 48*1024), 48 * 1024}
			st.arcs = hotObj{env.Malloc(mcfSiteArcs, 96*1024), 96 * 1024}
			st.dummy = hotObj{env.Malloc(mcfSiteDummy, 16*1024), 16 * 1024}
			env.Write(st.nodes.addr, 64)
			env.Write(st.arcs.addr, 64)
			env.Write(st.dummy.addr, 64)
		} else {
			a := env.Malloc(mcfSiteNodes, 256)
			b := env.Malloc(mcfSiteArcs, 256)
			c := env.Malloc(mcfSiteDummy, 128)
			env.Write(a, 16)
			env.Write(b, 16)
			env.Write(c, 16)
			// Scratch is freed at the end of the parse round.
			env.Free(a)
			env.Free(b)
			env.Free(c)
		}
		st.cold.churn(30, 96)
	}
	env.Leave()

	env.Enter(mcfFnSimplex)
	// The simplex setup allocates the three small spanning-tree
	// structures in tandem. They are rebuilt periodically during the
	// solve (rebuildTrees), so *every* instance of these three sites is
	// hot: the sites share one counter with "all ids" and qualify for
	// object recycling — the baseline instead loses the freed blocks to
	// bookkeeping churn and each rebuild lands at a cache-cold address.
	w.allocTrees(env, st)
	st.cold.churn(10, 128)
	env.Leave()
	return st
}

func (w mcf) allocTrees(env machine.Env, st *mcfState) {
	st.treeA = hotObj{env.Malloc(mcfSiteTreeA, 48), 48}
	st.treeB = hotObj{env.Malloc(mcfSiteTreeB, 48), 48}
	st.treeC = hotObj{env.Malloc(mcfSiteTreeC, 32), 32}
	env.Write(st.treeA.addr, 32)
	env.Write(st.treeB.addr, 32)
	env.Write(st.treeC.addr, 24)
}

// rebuildTrees models a spanning-tree refresh: the old structures are
// discarded and fresh ones allocated. The interleaved bookkeeping churn
// claims the freed blocks in the baseline heap.
func (w mcf) rebuildTrees(env machine.Env, st *mcfState) {
	env.Enter(mcfFnSimplex)
	env.Free(st.treeA.addr)
	env.Free(st.treeB.addr)
	env.Free(st.treeC.addr)
	st.cold.churn(4, 80)
	w.allocTrees(env, st)
	env.Leave()
}

// iterate runs one simplex pricing iteration on env.
func (w mcf) iterate(env machine.Env, rng *xrand.Rand, st *mcfState) {
	env.Enter(mcfFnSimplex)
	// Stream 1: nodes and arcs walked together (pricing scan).
	for k := 0; k < 12; k++ {
		ni := rng.Uint64n(st.nodes.size - 64)
		ai := rng.Uint64n(st.arcs.size - 64)
		env.Read(st.nodes.addr+mem.Addr(ni&^7), 16)
		env.Read(st.arcs.addr+mem.Addr(ai&^7), 16)
		env.Compute(12)
	}
	env.Read(st.dummy.addr+mem.Addr(rng.Uint64n(st.dummy.size-64)&^7), 16)
	// Stream 2: the three small tree structures are consulted together
	// on every pivot; packed into adjacent lines they reload with fewer
	// misses after the pricing scan has churned the L1.
	for k := 0; k < 10; k++ {
		st.treeA.visit(env, 24)
		st.treeB.visit(env, 24)
		st.treeC.visit(env, 24)
		env.Compute(8)
		if k%3 == 1 {
			// Pivot bookkeeping between consultations evicts.
			ai := rng.Uint64n(st.arcs.size - 64)
			env.Read(st.arcs.addr+mem.Addr(ai&^7), 16)
		}
	}
	env.Leave()
}

func (w mcf) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	st := w.build(env, rng, cfg)
	iters := scaled(2200, cfg.Scale)
	for i := 0; i < iters; i++ {
		w.iterate(env, rng, st)
		if i%8 == 7 {
			w.rebuildTrees(env, st)
		}
		if i%4 == 1 {
			st.cold.touch(2)
		}
		if i%97 == 0 {
			env.Enter(mcfFnRefresh)
			st.cold.churn(12, 160)
			env.Leave()
		}
	}
	st.cold.drain()
	env.Free(st.nodes.addr)
	env.Free(st.arcs.addr)
	env.Free(st.dummy.addr)
	env.Free(st.treeA.addr)
	env.Free(st.treeB.addr)
	env.Free(st.treeC.addr)
}

// RunMT implements MultiThreaded: thread 0 allocates the hot objects and
// every thread runs pricing iterations over the shared structures.
func (w mcf) RunMT(envs []machine.Env, cfg Config) {
	if len(envs) == 1 {
		w.Run(envs[0], cfg)
		return
	}
	rng := xrand.New(cfg.Seed)
	st := w.build(envs[0], rng, cfg)
	iters := scaled(2200, cfg.Scale)
	rngs := make([]*xrand.Rand, len(envs))
	colds := make([]*coldPool, len(envs))
	for t := range envs {
		rngs[t] = xrand.New(cfg.Seed + uint64(t)*7919)
		colds[t] = newColdPool(envs[t], rngs[t], mcfSiteCold, mcfFnRefresh, 100)
	}
	// Work is partitioned across threads; iterations interleave
	// round-robin, modeling concurrent traversal of the shared graph.
	for i := 0; i < iters; i++ {
		t := i % len(envs)
		shared := *st
		shared.cold = colds[t]
		w.iterate(envs[t], rngs[t], &shared)
		if i%8 == 7 {
			// The allocating thread owns the tree rebuilds.
			w.rebuildTrees(envs[0], st)
		}
	}
	for _, c := range colds {
		c.drain()
	}
	st.cold.drain()
	envs[0].Free(st.nodes.addr)
	envs[0].Free(st.arcs.addr)
	envs[0].Free(st.dummy.addr)
	envs[0].Free(st.treeA.addr)
	envs[0].Free(st.treeB.addr)
	envs[0].Free(st.treeC.addr)
}

func init() {
	register(Spec{
		Program: mcf{},
		Profile: Config{Scale: 0.12, Seed: 11},
		Long:    Config{Scale: 1.0, Seed: 1109},
		Bench:   Config{Scale: 0.3, Seed: 1109},
		Binary: BinaryInfo{
			TextBytes:   410 << 10,
			MallocSites: 22, FreeSites: 18, ReallocSites: 2,
		},
		BaselineSeconds: 11.74,
	})
}
