// Package workloads contains the 13 synthetic benchmark programs the
// evaluation runs: one per benchmark in the paper (Table 3). Each program
// is a deterministic generator of allocation, access and call-stack
// behaviour modeled on the paper's per-benchmark characterization — hot
// object counts and sizes (Table 5), context types and site counts
// (Table 2), recycling opportunities (§2.4), the Figure 3 allocation
// pattern, and the multithreading structure of §3.3.
//
// Programs are written against machine.Env and are completely unaware of
// the allocation strategy serving them, exactly like the paper's binaries.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"prefix/internal/machine"
)

// Config scales a program run.
type Config struct {
	// Scale multiplies iteration and object counts. Profiling runs use a
	// small scale, evaluation runs a larger one ("training inputs
	// involving significantly shorter program runs", §3.2).
	Scale float64
	// Seed drives the deterministic PRNG; profile and long runs use
	// different seeds, standing in for different program inputs.
	Seed uint64
	// Threads is used only by multithreaded programs (mysql, mcf).
	Threads int
}

// Program is one benchmark.
type Program interface {
	Name() string
	// Run executes the program single-threaded.
	Run(env machine.Env, cfg Config)
}

// MultiThreaded is implemented by programs that support the Figure 10
// evaluation. envs[i] is thread i's environment; the program decides the
// interleaving.
type MultiThreaded interface {
	Program
	RunMT(envs []machine.Env, cfg Config)
}

// BinaryInfo models the benchmark's executable for the Figure 14 binary
// size accounting.
type BinaryInfo struct {
	// TextBytes is the baseline .text size.
	TextBytes uint64
	// MallocSites / FreeSites / ReallocSites are static site counts in
	// the whole binary (instrumentation candidates).
	MallocSites  int
	FreeSites    int
	ReallocSites int
	// BoltOrigText marks the binaries where BOLT retains the original
	// code in .bolt.orig.text (mysql, omnetpp, xalanc, povray in the
	// paper).
	BoltOrigText bool
}

// Spec registers a benchmark with its standard run configurations.
type Spec struct {
	Program Program
	// Profile is the profiling-run configuration (short, training input).
	Profile Config
	// Long is the evaluation-run configuration.
	Long Config
	// Bench is a reduced evaluation configuration for the Go benchmark
	// harness (keeps `go test -bench` under control; prefix-bench uses
	// Long).
	Bench Config
	// Binary feeds the Figure 14 model.
	Binary BinaryInfo
	// BaselineSeconds is the paper's baseline execution time, used only
	// to label report rows.
	BaselineSeconds float64
}

var registry = map[string]Spec{}

// register wires a benchmark into the registry; called from each
// program's init.
func register(s Spec) {
	name := s.Program.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workloads: duplicate benchmark %q", name))
	}
	registry[name] = s
}

// Get returns the spec for a benchmark name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	return s, nil
}

// ResolveList parses a comma-separated benchmark list as the CLIs
// accept it: names are trimmed, empty entries and duplicates dropped
// (first occurrence wins), and every remaining name must be registered
// — a typo fails here, up front, not minutes into a run. An empty or
// blank list resolves to Names().
func ResolveList(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return Names(), nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, raw := range strings.Split(csv, ",") {
		name := strings.TrimSpace(raw)
		if name == "" || seen[name] {
			continue
		}
		if _, err := Get(name); err != nil {
			return nil, err
		}
		seen[name] = true
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workloads: benchmark list %q names no benchmarks", csv)
	}
	return out, nil
}

// Names lists all registered benchmarks in the paper's table order.
func Names() []string {
	order := []string{
		"mysql", "perl", "mcf", "omnetpp", "xalanc", "povray", "roms",
		"leela", "swissmap", "libc", "health", "ft", "analyzer",
	}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	// Append any extras deterministically (future benchmarks).
	var extra []string
	for n := range registry {
		found := false
		for _, o := range out {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
