package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// xalanc models SPEC 523.xalancbmk: an XSLT processor. The compiled
// stylesheet's DOM nodes and atomized strings are hot — they are consulted
// for every input element — while the input document's nodes and strings,
// allocated from the *same two sites*, are cold after a single pass.
//
// Table 2: [fixed ids, (2, 2)]: just two instrumented sites, each with
// its own counter (a few discarded comment nodes during stylesheet
// compilation make the DOM site's hot ids non-contiguous, which also
// prevents the two sites from sharing a counter).
type xalanc struct{}

func (xalanc) Name() string { return "xalanc" }

const (
	xalancSiteDOM mem.SiteID = iota + 1
	xalancSiteStr
	xalancSiteCold
)

const (
	xalancFnCompile mem.FuncID = iota + 1101
	xalancFnTransform
)

const (
	xalancNodeSize = 88
	xalancStrSize  = 56
)

func (w xalanc) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, xalancSiteCold, 0, 400)

	// --- Stylesheet compilation: the hot template DOM ------------------
	env.Enter(xalancFnCompile)
	var nodes, strs []hotObj
	nTemplates := 450
	for i := 0; i < nTemplates; i++ {
		n := hotObj{env.Malloc(xalancSiteDOM, xalancNodeSize), xalancNodeSize}
		env.Write(n.addr, 48)
		nodes = append(nodes, n)
		if i%7 == 3 {
			// Discarded comment/whitespace node: a cold instance in the
			// middle of the hot run.
			c := env.Malloc(xalancSiteDOM, xalancNodeSize)
			env.Write(c, 16)
			env.Free(c)
		}
		if i%2 == 0 {
			s := hotObj{env.Malloc(xalancSiteStr, xalancStrSize), xalancStrSize}
			env.Write(s.addr, 32)
			strs = append(strs, s)
		}
		cold.churn(2, 100)
	}
	env.Leave()

	// --- Transformation: stream input elements through the templates ---
	elements := scaled(5200, cfg.Scale)
	for e := 0; e < elements; e++ {
		env.Enter(xalancFnTransform)
		// Template matching walks a run of template nodes and their
		// atomized names (streams over nodes+strings).
		base := (e * 13) % (nTemplates - 6)
		for k := 0; k < 6; k++ {
			nodes[base+k].visit(env, 40)
			if (base+k)%2 == 0 {
				strs[(base+k)/2].visit(env, 24)
			}
			env.Compute(60)
		}
		// Input document nodes/strings from the same sites: allocated,
		// visited once, freed — the pollution of Table 4.
		in := env.Malloc(xalancSiteDOM, xalancNodeSize)
		is := env.Malloc(xalancSiteStr, xalancStrSize)
		env.Write(in, 32)
		env.Write(is, 24)
		env.Compute(400)
		env.Free(in)
		env.Free(is)
		env.Leave()
		if e%32 == 9 {
			cold.churn(4, 140)
		}
	}

	for _, n := range nodes {
		env.Free(n.addr)
	}
	for _, s := range strs {
		env.Free(s.addr)
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: xalanc{},
		Profile: Config{Scale: 0.12, Seed: 121},
		Long:    Config{Scale: 1.0, Seed: 12119},
		Bench:   Config{Scale: 0.3, Seed: 12119},
		Binary: BinaryInfo{
			TextBytes:   4800 << 10,
			MallocSites: 900, FreeSites: 760, ReallocSites: 30,
			BoltOrigText: true,
		},
		BaselineSeconds: 43.38,
	})
}
