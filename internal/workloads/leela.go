package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// leela models the SPEC 541.leela Go engine: Monte-Carlo tree search whose
// inner loop allocates a board copy plus three auxiliary structures per
// playout, uses them intensively, and frees them — millions of times.
//
// Per the paper: 4 sites sharing 1 counter with "all ids" (Table 2);
// only ~5 objects are ever simultaneously live, so object recycling
// (Figure 7) serves virtually every allocation from a 5-slot ring. This is
// the benchmark with the paper's largest malloc/free avoidance (Table 6)
// and the Figure 9 heatmap: the baseline's hot accesses wander over ~10 MB
// of heap as cold churn steals freed blocks, while the optimized binary's
// hot accesses stay inside a ~0.2 MB region.
type leela struct{}

func (leela) Name() string { return "leela" }

const (
	leelaSiteBoard mem.SiteID = iota + 1
	leelaSiteMoves
	leelaSiteScore
	leelaSitePath
	leelaSiteCold
)

const (
	leelaFnPlayout mem.FuncID = iota + 201
	leelaFnExpand
)

const (
	leelaBoardSize = 1024
	leelaMovesSize = 512
	leelaScoreSize = 256
	leelaPathSize  = 128
)

func (w leela) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, leelaSiteCold, leelaFnExpand, 800)
	playouts := scaled(22000, cfg.Scale)

	for p := 0; p < playouts; p++ {
		env.Enter(leelaFnPlayout)
		board := hotObj{env.Malloc(leelaSiteBoard, leelaBoardSize), leelaBoardSize}
		moves := hotObj{env.Malloc(leelaSiteMoves, leelaMovesSize), leelaMovesSize}
		score := hotObj{env.Malloc(leelaSiteScore, leelaScoreSize), leelaScoreSize}
		path := hotObj{env.Malloc(leelaSitePath, leelaPathSize), leelaPathSize}

		// Playout: write the board, walk moves/score/path repeatedly.
		for off := uint64(0); off < board.size; off += 64 {
			env.Write(board.addr+mem.Addr(off), 64)
		}
		depth := 6 + rng.Intn(6)
		for d := 0; d < depth; d++ {
			env.Read(board.addr+mem.Addr(rng.Uint64n(board.size-64)&^7), 16)
			moves.visit(env, 32)
			env.Write(moves.addr, 16)
			score.visit(env, 24)
			env.Write(score.addr, 16)
			path.visit(env, 16)
			env.Write(path.addr, 16)
			env.Compute(300)
		}
		env.Free(board.addr)
		env.Free(moves.addr)
		env.Free(score.addr)
		env.Free(path.addr)
		env.Leave()

		// Tree expansion: cold UCT node churn between playouts. The cold
		// allocations reuse the just-freed playout blocks in the
		// baseline heap, so the next playout's board lands at a new
		// address — the Figure 9 wandering.
		if p%2 == 0 {
			cold.churn(3, 700)
		}
		if p%16 == 5 {
			cold.touch(8)
		}
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: leela{},
		Profile: Config{Scale: 0.08, Seed: 31},
		Long:    Config{Scale: 1.0, Seed: 3301},
		Bench:   Config{Scale: 0.2, Seed: 3301},
		Binary: BinaryInfo{
			TextBytes:   1 << 20,
			MallocSites: 140, FreeSites: 120, ReallocSites: 6,
		},
		BaselineSeconds: 555.8,
	})
}
