package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// swissmap models the fleetbench SwissMap benchmark: hash-table backing
// arrays that are created in small groups, probed heavily, and destroyed —
// with the whole pattern repeating for the benchmark's duration.
//
// Per the paper (§2.2.1): "in swissmap there is a single malloc site that
// generates a large number of objects to which object recycling can be
// applied, as a small group of objects are created, used, and freed, and
// this pattern is repeated. Thus all ids are of interest and a single
// counter is used." Table 2: [all ids, (1, 1)]. Recycling halves peak
// memory (Table 6: 619 → 318 MB) because the baseline heap fragments
// under the churn while the ring reuses 8 fixed slots.
type swissmap struct{}

func (swissmap) Name() string { return "swissmap" }

const (
	swissSiteTable mem.SiteID = 1
	swissSiteCold  mem.SiteID = 9
)

const (
	swissFnRehash mem.FuncID = iota + 501
	swissFnBench
)

const (
	swissGroup     = 8
	swissTableSize = 16 * 1024
)

func (w swissmap) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, swissSiteCold, swissFnBench, 150)
	rounds := scaled(520, cfg.Scale)

	for round := 0; round < rounds; round++ {
		env.Enter(swissFnRehash)
		// Create the group of tables from the single site.
		tables := make([]hotObj, swissGroup)
		for i := range tables {
			tables[i] = hotObj{env.Malloc(swissSiteTable, swissTableSize), swissTableSize}
			// Initialize control bytes.
			for off := uint64(0); off < swissTableSize; off += 256 {
				env.Write(tables[i].addr+mem.Addr(off), 16)
			}
		}
		env.Leave()

		// Probe phase: random lookups across the group.
		env.Enter(swissFnBench)
		probes := 600
		for p := 0; p < probes; p++ {
			t := tables[rng.Intn(swissGroup)]
			slot := rng.Uint64n(swissTableSize-64) &^ 15
			env.Read(t.addr+mem.Addr(slot), 16)    // control bytes
			env.Read(t.addr+mem.Addr(slot)+16, 32) // entry payload
			env.Compute(50)
		}
		env.Leave()

		for i := range tables {
			env.Free(tables[i].addr)
		}
		// Inter-round churn: benchmark bookkeeping with odd sizes claims
		// and splits the freed table blocks, fragmenting the baseline
		// heap so the next round's tables extend the break.
		cold.churn(12, 9000)
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: swissmap{},
		Profile: Config{Scale: 0.08, Seed: 61},
		Long:    Config{Scale: 1.0, Seed: 6607},
		Bench:   Config{Scale: 0.25, Seed: 6607},
		Binary: BinaryInfo{
			TextBytes:   600 << 10,
			MallocSites: 60, FreeSites: 50, ReallocSites: 2,
		},
		BaselineSeconds: 2.275,
	})
}
