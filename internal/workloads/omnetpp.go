package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// omnetpp models SPEC 520.omnetpp: a discrete-event network simulator.
// During network setup, six module kinds build their gate/queue/statistic
// objects — each kind from its own group of sites, allocated in tandem —
// and the event loop then touches a module's objects together every time
// an event fires, interleaved with a heavy churn of cold message objects.
//
// Table 2: [fixed ids, (52, 6)] — 52 instrumented sites collapsing into 6
// shared counters, the largest site count in the evaluation. The hot
// objects of one module kind form streams, so PreFix:HDS wins (−13.2%),
// while the HDS baseline is slightly *harmful* (+0.6%): its region
// inherits the same allocation-order layout plus the message churn
// pollution (123,727 objects in Table 4).
type omnetpp struct{}

func (omnetpp) Name() string { return "omnetpp" }

// Site layout: groups of sites per module kind; 9+9+9+9+8+8 = 52.
var omnetGroupSizes = [6]int{9, 9, 9, 9, 8, 8}

const (
	omnetSiteBase mem.SiteID = 1  // sites 1..52
	omnetSiteMsg  mem.SiteID = 60 // cold message churn
)

const (
	omnetFnSetup mem.FuncID = iota + 1001
	omnetFnEvent
	omnetFnMsg
)

const omnetObjSize = 40

func omnetGroupSite(group, idx int) mem.SiteID {
	s := 0
	for g := 0; g < group; g++ {
		s += omnetGroupSizes[g]
	}
	return omnetSiteBase + mem.SiteID(s+idx)
}

func (w omnetpp) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	msgs := newColdPool(env, rng, omnetSiteMsg, omnetFnMsg, 700)

	// --- Network setup ------------------------------------------------
	// Each module kind allocates 10 tandem hot rounds (its per-instance
	// gates/queues/stats), then cold per-connection scratch from the
	// same sites: fixed ids {1..10*groupSize} under one shared counter.
	env.Enter(omnetFnSetup)
	hot := make([][]hotObj, 6)
	for g := 0; g < 6; g++ {
		size := omnetGroupSizes[g]
		for r := 0; r < 14; r++ {
			for i := 0; i < size; i++ {
				site := omnetGroupSite(g, i)
				if r < 10 {
					// Connection/parameter allocations land between the
					// hot gate objects, scattering each round across the
					// baseline heap.
					msgs.churn(1, 120)
					o := hotObj{env.Malloc(site, omnetObjSize), omnetObjSize}
					env.Write(o.addr, 32)
					hot[g] = append(hot[g], o)
				} else {
					a := env.Malloc(site, 64)
					env.Write(a, 16)
					env.Free(a)
				}
			}
			msgs.churn(6, 120)
		}
	}
	env.Leave()

	// --- Event loop ---------------------------------------------------
	// An event touches one module kind's objects in a fixed round order
	// (the stream) and exchanges cold messages.
	events := scaled(7000, cfg.Scale)
	for e := 0; e < events; e++ {
		g := e % 6
		env.Enter(omnetFnEvent)
		round := (e / 6) % 10
		size := omnetGroupSizes[g]
		// The fired module's gate/queue/stat objects of one round,
		// visited in order.
		for i := 0; i < size; i++ {
			hot[g][round*size+i].visit(env, 24)
			env.Compute(8)
		}
		// Future-event-set bookkeeping touches the first round of the
		// next module kind (cross-group stream edges).
		ng := (g + 1) % 6
		hot[ng][0].visit(env, 24)
		hot[ng][1].visit(env, 24)
		env.Compute(60)
		env.Leave()
		// Message churn: allocate/free cold message objects.
		if e%2 == 1 {
			msgs.churn(4, 160)
		}
		if e%32 == 7 {
			msgs.touch(4)
		}
	}

	for g := range hot {
		for _, o := range hot[g] {
			env.Free(o.addr)
		}
	}
	msgs.drain()
}

func init() {
	register(Spec{
		Program: omnetpp{},
		Profile: Config{Scale: 0.12, Seed: 111},
		Long:    Config{Scale: 1.0, Seed: 11113},
		Bench:   Config{Scale: 0.3, Seed: 11113},
		Binary: BinaryInfo{
			TextBytes:   3500 << 10,
			MallocSites: 600, FreeSites: 520, ReallocSites: 20,
			BoltOrigText: true,
		},
		BaselineSeconds: 434.5,
	})
}
