package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// roms models SPEC 554.roms, an ocean-model stencil code: every timestep
// allocates a set of twenty work arrays (one per field: velocity
// components, tracers, diffusion scratch, …), sweeps them several times,
// and frees them at the end of the step.
//
// Per the paper: 20 sites sharing 1 counter with "all ids" (Table 2), a
// textbook recycling opportunity (§2.4) — the ring keeps every timestep's
// arrays at the same 20 addresses, so later timesteps find their working
// set cache-resident, while the baseline's arrays drift through the heap
// as I/O buffer churn steals the freed blocks.
type roms struct{}

func (roms) Name() string { return "roms" }

const (
	romsSiteField0 mem.SiteID = iota + 1 // fields occupy sites 1..20
	romsSiteCold   mem.SiteID = 40
)

const (
	romsFnStep mem.FuncID = iota + 301
	romsFnIO
)

const (
	romsFields    = 20
	romsFieldSize = 8 * 1024
)

func (w roms) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	// The I/O history buffers are long-lived: they permanently consume
	// the work arrays' freed blocks, so the baseline's arrays drift to
	// fresh (cache-cold) addresses every timestep.
	cold := newColdPool(env, rng, romsSiteCold, romsFnIO, 1<<30)
	steps := scaled(260, cfg.Scale)

	for s := 0; s < steps; s++ {
		env.Enter(romsFnStep)
		// Allocate the step's work arrays in tandem: sites 1..20.
		fields := make([]hotObj, romsFields)
		for f := 0; f < romsFields; f++ {
			fields[f] = hotObj{env.Malloc(romsSiteField0+mem.SiteID(f), romsFieldSize), romsFieldSize}
		}
		// Stencil sweeps: strided passes over each field (a 5-point
		// stencil reads every other line of each array — a stride the
		// next-line prefetcher cannot fully cover), plus a cross-field
		// pass reading corresponding offsets of neighbouring fields.
		for pass := 0; pass < 2; pass++ {
			for f := 0; f < romsFields; f++ {
				for off := uint64(0); off < fields[f].size; off += 128 {
					env.Read(fields[f].addr+mem.Addr(off), 32)
				}
				env.Compute(2000)
			}
		}
		for off := uint64(0); off < romsFieldSize; off += 256 {
			for f := 0; f < romsFields; f += 4 {
				env.Read(fields[f].addr+mem.Addr(off), 32)
			}
			env.Compute(16)
		}
		for f := 0; f < romsFields; f++ {
			env.Free(fields[f].addr)
		}
		env.Leave()

		// I/O and forcing-data history between steps permanently claims
		// some of the freed work-array blocks, so a share of next step's
		// arrays land at fresh, cache-cold addresses.
		cold.churn(1, 6*1024)
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: roms{},
		Profile: Config{Scale: 0.1, Seed: 41},
		Long:    Config{Scale: 1.0, Seed: 4409},
		Bench:   Config{Scale: 0.25, Seed: 4409},
		Binary: BinaryInfo{
			TextBytes:   2 << 20,
			MallocSites: 260, FreeSites: 210, ReallocSites: 4,
		},
		BaselineSeconds: 390.2,
	})
}
