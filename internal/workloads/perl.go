package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// perl models SPEC 500.perlbench: an interpreter whose hot state is a
// population of small scalar/array/hash value headers traversed by the
// opcode dispatch loop, drowned in an enormous churn of short-lived
// temporaries from the very same allocation sites (the paper measures
// ~33 million objects polluting the HDS region, Table 4).
//
// Table 2: [regular & fixed, (15, 7)]. Three interpreter pools allocate
// header/body pairs from a single site each — the headers are the hot
// half, giving Regular ids {1,3,5,…} — and four groups of three sites
// allocate interpreter tables in tandem (fixed ids). PreFix:HDS is the
// best variant: the trailing hot singletons are short-lived and placing
// them at the region's end (HDS+Hot) forfeits their colocation with the
// cold temporaries they are accessed with.
type perl struct{}

func (perl) Name() string { return "perl" }

const (
	// Pool sites (Regular ids): SV, AV, HV pools.
	perlSiteSV mem.SiteID = iota + 1
	perlSiteAV
	perlSiteHV
	// Table sites (fixed ids): four tandem triples.
	perlSiteTab0 // 4..15 via offset arithmetic
)

const perlTabSites = 12

const (
	perlFnPool mem.FuncID = iota + 901
	perlFnTables
	perlFnRun
	perlFnTemp
)

const (
	perlHdrSize      = 48
	perlBodySize     = 80
	perlTabSize      = 512
	perlPairsPerPool = 220 // hot headers per pool: ids 1,3,5,…,439
)

func (w perl) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)

	// --- Interpreter startup: pools and tables ----------------------
	env.Enter(perlFnPool)
	pools := [3]mem.SiteID{perlSiteSV, perlSiteAV, perlSiteHV}
	var headers [3][]hotObj // hot: traversed by the dispatch loop
	var bodies [3][]mem.Addr
	for pi, site := range pools {
		for i := 0; i < perlPairsPerPool; i++ {
			h := hotObj{env.Malloc(site, perlHdrSize), perlHdrSize}
			b := env.Malloc(site, perlBodySize) // cold body: odd/even split
			env.Write(h.addr, 32)
			env.Write(b, 32)
			headers[pi] = append(headers[pi], h)
			bodies[pi] = append(bodies[pi], b)
		}
	}
	env.Leave()

	env.Enter(perlFnTables)
	var tabs []hotObj // 12 hot tables: 4 tandem triples
	for g := 0; g < 4; g++ {
		rounds := 6
		for r := 0; r < rounds; r++ {
			for s := 0; s < 3; s++ {
				site := perlSiteTab0 + mem.SiteID(g*3+s)
				if r == 0 {
					t := hotObj{env.Malloc(site, perlTabSize), perlTabSize}
					env.Write(t.addr, 64)
					tabs = append(tabs, t)
				} else {
					a := env.Malloc(site, 128)
					env.Write(a, 16)
					env.Free(a)
				}
			}
		}
	}
	env.Leave()

	// --- Opcode dispatch loop ----------------------------------------
	// Each "op" touches a stream of headers across the three pools, a
	// table triple, and churns temporaries from the SV site (the
	// pollution source: same site as the hot headers).
	ops := scaled(9000, cfg.Scale)
	var temps []mem.Addr
	for op := 0; op < ops; op++ {
		env.Enter(perlFnRun)
		// Stream: headers k, k+1, k+2 of each pool, in pool order. The
		// opcode sequence strides through the header population, so each
		// header's reuse distance exceeds the L1 and its reload cost
		// depends on the layout.
		k := (op * 7) % (perlPairsPerPool - 2)
		for pi := 0; pi < 3; pi++ {
			headers[pi][k].visit(env, 32)
			headers[pi][k+1].visit(env, 32)
			headers[pi][k+2].visit(env, 24)
		}
		g := (op / 8) % 4
		tabs[g*3].visit(env, 48)
		tabs[g*3+1].visit(env, 48)
		tabs[g*3+2].visit(env, 32)
		// An occasional body access pairs a hot header with its cold
		// body — the layout relationship HDS+Hot's singleton placement
		// disturbs. Rare enough that bodies stay cold.
		if op%31 == 4 {
			env.Read(bodies[(op % 3)][k], 24)
		}
		env.Compute(40)
		env.Leave()

		// Temporary churn from the SV pool site.
		env.Enter(perlFnTemp)
		for t := 0; t < 6; t++ {
			a := env.Malloc(perlSiteSV, 40+rng.Uint64n(40))
			env.Write(a, 16)
			temps = append(temps, a)
		}
		for len(temps) > 48 {
			env.Free(temps[0])
			temps = temps[1:]
		}
		env.Leave()
	}
	for _, a := range temps {
		env.Free(a)
	}
	for pi := range headers {
		for i := range headers[pi] {
			env.Free(headers[pi][i].addr)
			env.Free(bodies[pi][i])
		}
	}
	for _, t := range tabs {
		env.Free(t.addr)
	}
}

func init() {
	register(Spec{
		Program: perl{},
		Profile: Config{Scale: 0.12, Seed: 101},
		Long:    Config{Scale: 1.0, Seed: 10103},
		Bench:   Config{Scale: 0.3, Seed: 10103},
		Binary: BinaryInfo{
			TextBytes:   2 << 20,
			MallocSites: 380, FreeSites: 300, ReallocSites: 40,
		},
		BaselineSeconds: 106.0,
	})
}
