package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// ft models the FreeBench ft benchmark: a minimum-spanning-tree /
// shortest-path kernel over a pointer-based graph with a Fibonacci-heap
// work structure. Tiny node and heap-cell objects are traversed over and
// over with almost no compute between accesses, which is why the paper's
// largest win (−74%) appears here: packing ~20k sub-line objects
// eliminates most of the memory stalls.
//
// Table 2: [fixed & all ids, (3, 2)] — the graph-skeleton site has fixed
// hot instances among parse scratch; the node and heap-cell sites are
// all-hot and share a counter.
type ft struct{}

func (ft) Name() string { return "ft" }

const (
	ftSiteSkeleton mem.SiteID = iota + 1
	ftSiteNode
	ftSiteCell
	ftSiteCold
)

const (
	ftFnBuild mem.FuncID = iota + 701
	ftFnMST
)

const (
	ftNodeSize     = 32
	ftCellSize     = 24
	ftSkeletonSize = 4096
)

func (w ft) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, ftSiteCold, 0, 200)
	// The graph is input data: fixed size, so profiling and evaluation
	// runs see the same node/cell instances (shorter runs, same input).
	const n = 5000

	env.Enter(ftFnBuild)
	// Graph skeleton: three hot index tables among parse scratch from
	// the same site (fixed ids {1,2,3}).
	var skel [3]hotObj
	for i := 0; i < 8; i++ {
		if i < 3 {
			skel[i] = hotObj{env.Malloc(ftSiteSkeleton, ftSkeletonSize), ftSkeletonSize}
			env.Write(skel[i].addr, 64)
		} else {
			a := env.Malloc(ftSiteSkeleton, 512)
			env.Write(a, 32)
			env.Free(a)
		}
	}
	nodes := make([]hotObj, n)
	cells := make([]hotObj, n)
	for i := 0; i < n; i++ {
		// Node and its heap cell in tandem (shared counter, all ids).
		nodes[i] = hotObj{env.Malloc(ftSiteNode, ftNodeSize), ftNodeSize}
		cells[i] = hotObj{env.Malloc(ftSiteCell, ftCellSize), ftCellSize}
		env.Write(nodes[i].addr, 24)
		env.Write(cells[i].addr, 16)
		// Edge-list parse scratch between node allocations scatters the
		// tiny nodes across the baseline heap.
		if i%2 == 1 {
			cold.churn(1, 96)
		}
	}
	env.Leave()

	// MST phases: repeated decrease-key sweeps. Each sweep walks the
	// heap cells and their nodes in order, with random sibling jumps —
	// nearly zero compute per access.
	env.Enter(ftFnMST)
	sweeps := scaled(36, cfg.Scale)
	if sweeps < 4 {
		sweeps = 4
	}
	for s := 0; s < sweeps; s++ {
		skel[s%3].visit(env, 64)
		for i := 0; i < n; i++ {
			cells[i].visit(env, 16)
			nodes[i].visit(env, 24)
			if i%7 == 3 {
				j := rng.Intn(n)
				nodes[j].visit(env, 8)
			}
		}
		env.Compute(200)
	}
	env.Leave()

	for i := 0; i < n; i++ {
		env.Free(nodes[i].addr)
		env.Free(cells[i].addr)
	}
	for i := 0; i < 3; i++ {
		env.Free(skel[i].addr)
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: ft{},
		Profile: Config{Scale: 0.15, Seed: 81},
		Long:    Config{Scale: 1.0, Seed: 8807},
		Bench:   Config{Scale: 0.4, Seed: 8807},
		Binary: BinaryInfo{
			TextBytes:   64 << 10,
			MallocSites: 8, FreeSites: 7, ReallocSites: 0,
		},
		BaselineSeconds: 5.04,
	})
}
