package workloads

import (
	"testing"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/trace"
)

func TestNamesOrderAndCount(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("benchmarks = %d, want 13", len(names))
	}
	want := []string{"mysql", "perl", "mcf", "omnetpp", "xalanc", "povray",
		"roms", "leela", "swissmap", "libc", "health", "ft", "analyzer"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestSpecsComplete(t *testing.T) {
	for _, name := range Names() {
		spec, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Program.Name() != name {
			t.Errorf("%s: program name mismatch", name)
		}
		if spec.Profile.Scale <= 0 || spec.Long.Scale <= 0 || spec.Bench.Scale <= 0 {
			t.Errorf("%s: missing run configurations", name)
		}
		if spec.Profile.Scale >= spec.Long.Scale {
			t.Errorf("%s: profiling run must be shorter than the long run", name)
		}
		if spec.Binary.TextBytes == 0 || spec.Binary.MallocSites == 0 {
			t.Errorf("%s: missing binary info", name)
		}
		if spec.BaselineSeconds <= 0 {
			t.Errorf("%s: missing paper baseline time", name)
		}
	}
}

// runProfile executes a benchmark's profiling configuration and returns
// the machine metrics and trace.
func runProfile(t *testing.T, name string) (machine.Metrics, *trace.Trace) {
	t.Helper()
	spec, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	return m.Finish(), rec.Trace()
}

func TestAllWorkloadsRunAndBalance(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			metrics, tr := runProfile(t, name)
			if metrics.Mallocs == 0 || metrics.Cache.Accesses == 0 {
				t.Fatal("workload did nothing")
			}
			a := trace.Analyze(tr)
			if a.HeapAccesses == 0 {
				t.Fatal("no heap accesses")
			}
			// Every allocation must eventually be freed: heap-intensive
			// programs clean up, and leaks would skew liveness analysis.
			if metrics.Frees+metrics.Reallocs < metrics.Mallocs {
				leaked := metrics.Mallocs - metrics.Frees
				// The cold pools with "never free" behaviour (roms I/O
				// history, povray geometry) legitimately hold objects to
				// program end; they are freed by drain. Everything else
				// must balance.
				if name != "roms" && leaked > metrics.Mallocs/100 {
					t.Errorf("mallocs=%d frees=%d (leak?)", metrics.Mallocs, metrics.Frees)
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"mcf", "health", "swissmap"} {
		m1, _ := runProfile(t, name)
		m2, _ := runProfile(t, name)
		if m1.Instr != m2.Instr || m1.Cache.Accesses != m2.Cache.Accesses ||
			m1.Mallocs != m2.Mallocs || m1.Cycles != m2.Cycles {
			t.Errorf("%s not deterministic: %+v vs %+v", name, m1, m2)
		}
	}
}

func TestSeedChangesBehaviour(t *testing.T) {
	spec, _ := Get("mcf")
	run := func(seed uint64) machine.Metrics {
		m := machine.New(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig())
		cfg := spec.Profile
		cfg.Seed = seed
		spec.Program.Run(m, cfg)
		return m.Finish()
	}
	if run(1).Cache.L1Misses == run(2).Cache.L1Misses {
		t.Log("note: different seeds produced identical L1 misses (possible but unlikely)")
	}
}

func TestMultiThreadedPrograms(t *testing.T) {
	for _, name := range []string{"mysql", "mcf"} {
		spec, _ := Get(name)
		mt, ok := spec.Program.(MultiThreaded)
		if !ok {
			t.Fatalf("%s must implement MultiThreaded", name)
		}
		g := machine.NewGroup(baselines.NewBaseline(cachesim.DefaultCost()), cachesim.ScaledConfig(), 3, nil)
		envs := []machine.Env{g.Env(0), g.Env(1), g.Env(2)}
		cfg := spec.Profile
		cfg.Threads = 3
		mt.RunMT(envs, cfg)
		threads, parallel, total := g.Finish()
		if total.Mallocs == 0 {
			t.Fatalf("%s MT run did nothing", name)
		}
		if parallel <= 0 || len(threads) != 3 {
			t.Fatalf("%s MT metrics wrong", name)
		}
		// Every thread must have executed something.
		for i, th := range threads {
			if th.Instr == 0 {
				t.Errorf("%s thread %d idle", name, i)
			}
		}
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(100, 0.5) != 50 || scaled(100, 0) != 1 || scaled(3, 0.1) != 1 {
		t.Error("scaled helper wrong")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	spec, _ := Get("mcf")
	register(spec)
}

func TestResolveList(t *testing.T) {
	// Trimming, deduplication, and order preservation.
	names, err := ResolveList(" mcf , health,mcf,,health ")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "mcf" || names[1] != "health" {
		t.Errorf("resolved = %v, want [mcf health]", names)
	}
	// Empty input resolves to the full suite.
	all, err := ResolveList("  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Errorf("blank list resolved to %d names, want %d", len(all), len(Names()))
	}
}

func TestResolveListRejectsUnknown(t *testing.T) {
	// A typo must fail up front, before any benchmark runs.
	if _, err := ResolveList("mcf,helath"); err == nil {
		t.Error("typo in list must error")
	}
	// A list of nothing but separators names no benchmarks.
	if _, err := ResolveList(",, ,"); err == nil {
		t.Error("empty-after-trim list must error")
	}
}
