package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// health models the Olden health benchmark: a hierarchy of villages, each
// with linked lists of patient records that the simulation traverses every
// timestep. The benchmark's signature (§3.3) is a very large number of
// *equally hot* objects: every patient record and list cell is touched
// every step, so PreFix:Hot captures essentially everything while
// PreFix:HDS finds few streams (the traversal sequence barely repeats at
// stream granularity). HDS pollution "helps" here — the chosen sites
// allocate only hot objects, so redirecting everything behaves like HALO.
//
// Table 2: [fixed & all ids, (3, 2)] — the village site has fixed hot
// instances (the upper levels of the hierarchy), while the patient and
// list-cell sites are all-hot and share a counter.
type health struct{}

func (health) Name() string { return "health" }

const (
	healthSiteVillage mem.SiteID = iota + 1
	healthSitePatient
	healthSiteCell
	healthSiteCold
)

const (
	healthFnBuild mem.FuncID = iota + 601
	healthFnSim
)

const (
	healthVillages    = 30
	healthHotVillages = 10 // upper hierarchy levels: the fixed ids
	healthPatientSize = 48
	healthCellSize    = 24
	healthVillageSize = 256
)

type healthState struct {
	villages []hotObj
	// patients[v] / cells[v] are village v's list, in allocation order.
	patients [][]hotObj
	cells    [][]hotObj
}

func (w health) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, healthSiteCold, 0, 300)
	// The village hierarchy is input data: fixed size across profiling
	// and evaluation runs (only the simulated time scales).
	const perVillage = 400

	st := &healthState{}
	env.Enter(healthFnBuild)
	for v := 0; v < healthVillages; v++ {
		st.villages = append(st.villages, hotObj{env.Malloc(healthSiteVillage, healthVillageSize), healthVillageSize})
		env.Write(st.villages[v].addr, 64)
		var ps, cs []hotObj
		for i := 0; i < perVillage; i++ {
			// Patient and its list cell in tandem (shared counter).
			p := hotObj{env.Malloc(healthSitePatient, healthPatientSize), healthPatientSize}
			c := hotObj{env.Malloc(healthSiteCell, healthCellSize), healthCellSize}
			env.Write(p.addr, 32)
			env.Write(c.addr, 16)
			ps = append(ps, p)
			cs = append(cs, c)
			// Parser/setup noise between patients scatters them in the
			// baseline heap.
			if i%2 == 0 {
				cold.churn(1, 80)
			}
		}
		st.patients = append(st.patients, ps)
		st.cells = append(st.cells, cs)
	}
	env.Leave()

	// Simulation: every step visits the hot villages and traverses every
	// patient list — cell then record, in list order.
	steps := scaled(26, cfg.Scale)
	env.Enter(healthFnSim)
	for s := 0; s < steps; s++ {
		for v := 0; v < healthVillages; v++ {
			if v < healthHotVillages {
				st.villages[v].visit(env, 48)
			}
			for i := range st.patients[v] {
				st.cells[v][i].visit(env, healthCellSize)
				st.patients[v][i].visit(env, 32)
				env.Compute(10)
			}
		}
		cold.touch(12)
	}
	env.Leave()

	for v := range st.patients {
		for i := range st.patients[v] {
			env.Free(st.patients[v][i].addr)
			env.Free(st.cells[v][i].addr)
		}
		env.Free(st.villages[v].addr)
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: health{},
		Profile: Config{Scale: 0.25, Seed: 71},
		Long:    Config{Scale: 1.0, Seed: 7703},
		Bench:   Config{Scale: 0.3, Seed: 7703},
		Binary: BinaryInfo{
			TextBytes:   96 << 10,
			MallocSites: 10, FreeSites: 8, ReallocSites: 0,
		},
		BaselineSeconds: 32.73,
	})
}
