package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// libc models the fleetbench libc benchmark: a memory-operations kernel
// over a working set of small buffers. Two subsystems build tandem triples
// of buffer descriptors (fixed ids, two shared counters — Table 2's
// [fixed ids, (6, 2)]), and the kernel then runs memcpy/memcmp-style
// passes over runs of those buffers.
//
// Gains are the smallest in the evaluation (−2.77% for PreFix:HDS): the
// buffers are already allocated densely, so the baseline layout is close
// to optimal, and half of each access's cost is intra-buffer streaming
// that layout cannot improve. PreFix:HDS beats HDS+Hot because the hot
// singletons are accessed together with cold neighbour buffers allocated
// right next to them — relocating the singletons to the region's end
// breaks that adjacency.
type libc struct{}

func (libc) Name() string { return "libc" }

const (
	libcSiteA1 mem.SiteID = iota + 1 // subsystem A tandem triple
	libcSiteA2
	libcSiteA3
	libcSiteB1 // subsystem B tandem triple
	libcSiteB2
	libcSiteB3
	libcSitePair // singleton descriptors paired with cold neighbours
	libcSiteCold
)

const (
	libcFnInit mem.FuncID = iota + 1201
	libcFnKernel
)

const (
	libcDescSize  = 64
	libcTriples   = 73 // hot triples per subsystem: 73*3*2 = 438 hot objects
	libcPairCount = 27
)

func (w libc) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, libcSiteCold, 0, 200)

	env.Enter(libcFnInit)
	// Each subsystem allocates its hot triples in tandem, then a few
	// scratch rounds from the same sites (probe buffers, immediately
	// freed): hot ids stay the contiguous fixed run {1..219}.
	buildTriple := func(sites [3]mem.SiteID) []hotObj {
		var out []hotObj
		for i := 0; i < libcTriples; i++ {
			for _, site := range sites {
				o := hotObj{env.Malloc(site, libcDescSize), libcDescSize}
				env.Write(o.addr, 32)
				out = append(out, o)
			}
		}
		for i := 0; i < 8; i++ {
			for _, site := range sites {
				s := env.Malloc(site, 32)
				env.Write(s, 16)
				env.Free(s)
			}
		}
		return out
	}
	a := buildTriple([3]mem.SiteID{libcSiteA1, libcSiteA2, libcSiteA3})
	// Cold setup between the subsystems keeps their counters apart.
	cold.churn(60, 128)
	b := buildTriple([3]mem.SiteID{libcSiteB1, libcSiteB2, libcSiteB3})
	// Paired descriptors: each hot descriptor is allocated back-to-back
	// with the cold buffer it describes and always accessed with it; a
	// few trailing scratch allocations keep the site's pattern Fixed.
	var pairHot []hotObj
	var pairCold []mem.Addr
	for i := 0; i < libcPairCount; i++ {
		h := hotObj{env.Malloc(libcSitePair, 40), 40}
		c := env.Malloc(libcSiteCold, 24)
		env.Write(h.addr, 24)
		env.Write(c, 16)
		pairHot = append(pairHot, h)
		pairCold = append(pairCold, c)
	}
	for i := 0; i < 6; i++ {
		s := env.Malloc(libcSitePair, 24)
		env.Write(s, 8)
		env.Free(s)
	}
	env.Leave()

	passes := scaled(420, cfg.Scale)
	for p := 0; p < passes; p++ {
		env.Enter(libcFnKernel)
		// Stream over a run of triples in each subsystem.
		base := (p * 5) % (libcTriples*3 - 9)
		for k := 0; k < 9; k++ {
			a[base+k].visit(env, 48)
			env.Compute(1600) // memcpy/memcmp body dominates each visit
		}
		for k := 0; k < 9; k++ {
			b[base+k].visit(env, 48)
			env.Compute(1600)
		}
		// Paired accesses: hot descriptor + its cold neighbour.
		pi := p % libcPairCount
		pairHot[pi].visit(env, 24)
		env.Read(pairCold[pi], 16)
		env.Compute(120)
		env.Leave()
		if p%16 == 3 {
			cold.churn(4, 96)
		}
	}

	for _, o := range a {
		env.Free(o.addr)
	}
	for _, o := range b {
		env.Free(o.addr)
	}
	for i := range pairHot {
		env.Free(pairHot[i].addr)
		env.Free(pairCold[i])
	}
	cold.drain()
}

func init() {
	register(Spec{
		Program: libc{},
		Profile: Config{Scale: 0.2, Seed: 131},
		Long:    Config{Scale: 1.0, Seed: 13127},
		Bench:   Config{Scale: 0.4, Seed: 13127},
		Binary: BinaryInfo{
			TextBytes:   300 << 10,
			MallocSites: 40, FreeSites: 36, ReallocSites: 2,
		},
		BaselineSeconds: 1.08,
	})
}
