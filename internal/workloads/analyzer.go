package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// analyzer models the Ptrdist anagram/analyzer-style pointer-intensive
// benchmark: a static-analysis worklist algorithm over a constraint graph
// with ~10^5 tiny nodes. Nearly every access is a pointer dereference into
// a small heap object, so packing the hot set yields the paper's second
// largest win (−58.9%).
//
// Table 2: [fixed & all ids, (5, 3)] — two tandem symbol-table sites with
// fixed ids, an all-hot constraint-node site, and two tandem all-hot
// worklist-cell sites sharing a counter.
type analyzer struct{}

func (analyzer) Name() string { return "analyzer" }

const (
	analyzerSiteTabA mem.SiteID = iota + 1
	analyzerSiteTabB
	analyzerSiteNode
	analyzerSiteCellA
	analyzerSiteCellB
	analyzerSiteCold
)

const (
	analyzerFnParse mem.FuncID = iota + 801
	analyzerFnSolve
)

const (
	analyzerNodeSize = 40
	analyzerCellSize = 24
	analyzerTabSize  = 2048
)

func (w analyzer) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, analyzerSiteCold, 0, 250)
	// The constraint graph is input data: its size does not scale with
	// the run length (profiling uses the same graph for fewer solver
	// rounds, so the fixed/all ids carry over to the long run).
	const n = 6000

	env.Enter(analyzerFnParse)
	// Symbol tables: the two sites allocate in tandem; the first pair is
	// hot, later pairs are per-file scratch (fixed ids {1,2} shared).
	var tabA, tabB hotObj
	for i := 0; i < 5; i++ {
		if i == 0 {
			tabA = hotObj{env.Malloc(analyzerSiteTabA, analyzerTabSize), analyzerTabSize}
			tabB = hotObj{env.Malloc(analyzerSiteTabB, analyzerTabSize), analyzerTabSize}
			env.Write(tabA.addr, 64)
			env.Write(tabB.addr, 64)
		} else {
			a := env.Malloc(analyzerSiteTabA, 256)
			b := env.Malloc(analyzerSiteTabB, 256)
			env.Write(a, 32)
			env.Write(b, 32)
			env.Free(a)
			env.Free(b)
		}
	}
	// Constraint nodes (all hot), interleaved with parse noise. The
	// worklist cells come later from their own tandem pair of sites.
	nodes := make([]hotObj, n)
	for i := 0; i < n; i++ {
		nodes[i] = hotObj{env.Malloc(analyzerSiteNode, analyzerNodeSize), analyzerNodeSize}
		env.Write(nodes[i].addr, 24)
		if i%2 == 1 {
			cold.churn(1, 112)
		}
	}
	cells := make([]hotObj, n/2)
	for i := range cells {
		site := analyzerSiteCellA
		if i%2 == 1 {
			site = analyzerSiteCellB
		}
		cells[i] = hotObj{env.Malloc(site, analyzerCellSize), analyzerCellSize}
		env.Write(cells[i].addr, 16)
	}
	env.Leave()

	// Solve: worklist iterations propagating constraints. Each round
	// walks the worklist cells, follows them to pseudo-random nodes, and
	// consults the symbol tables.
	env.Enter(analyzerFnSolve)
	rounds := scaled(22, cfg.Scale)
	for r := 0; r < rounds; r++ {
		tabA.visit(env, 64)
		tabB.visit(env, 64)
		for i := range cells {
			cells[i].visit(env, 16)
			a := nodes[(i*7+r*13)%n]
			b := nodes[(i*11+5)%n]
			a.visit(env, 32)
			b.visit(env, 16)
			env.Compute(4)
		}
		// Propagation sweep in allocation order (the dominant stream).
		for i := 0; i < n; i++ {
			nodes[i].visit(env, 24)
		}
		cold.touch(20)
	}
	env.Leave()

	for i := range cells {
		env.Free(cells[i].addr)
	}
	for i := 0; i < n; i++ {
		env.Free(nodes[i].addr)
	}
	env.Free(tabA.addr)
	env.Free(tabB.addr)
	cold.drain()
}

func init() {
	register(Spec{
		Program: analyzer{},
		Profile: Config{Scale: 0.12, Seed: 91},
		Long:    Config{Scale: 1.0, Seed: 9901},
		Bench:   Config{Scale: 0.35, Seed: 9901},
		Binary: BinaryInfo{
			TextBytes:   80 << 10,
			MallocSites: 12, FreeSites: 10, ReallocSites: 1,
		},
		BaselineSeconds: 18.08,
	})
}
