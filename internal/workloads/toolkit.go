package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// toolkit holds the generator helpers shared by the benchmark programs.

// coldPool simulates the cold side of a heap-intensive program: a churning
// population of objects that are allocated, occasionally touched, and
// freed. Interleaving cold allocations between hot ones is what scatters
// hot objects across the baseline heap.
type coldPool struct {
	env   machine.Env
	rng   *xrand.Rand
	site  mem.SiteID
	fn    mem.FuncID
	objs  []mem.Addr
	sizes []uint64
	limit int
}

func newColdPool(env machine.Env, rng *xrand.Rand, site mem.SiteID, fn mem.FuncID, limit int) *coldPool {
	return &coldPool{env: env, rng: rng, site: site, fn: fn, limit: limit}
}

// churn allocates n cold objects of roughly size bytes, freeing old ones
// when the pool exceeds its limit so the heap develops the realistic
// free/reuse pattern.
func (c *coldPool) churn(n int, size uint64) {
	if c.fn != 0 {
		c.env.Enter(c.fn)
		defer c.env.Leave()
	}
	for i := 0; i < n; i++ {
		sz := size/2 + c.rng.Uint64n(size)
		a := c.env.Malloc(c.site, sz)
		c.env.Write(a, min64(sz, 16))
		c.objs = append(c.objs, a)
		c.sizes = append(c.sizes, sz)
		if len(c.objs) > c.limit {
			// Free a random victim, keeping the population bounded.
			v := c.rng.Intn(len(c.objs))
			c.env.Free(c.objs[v])
			last := len(c.objs) - 1
			c.objs[v], c.sizes[v] = c.objs[last], c.sizes[last]
			c.objs, c.sizes = c.objs[:last], c.sizes[:last]
		}
	}
}

// touch reads the heads of k random cold objects (background noise
// traffic that contends with hot data for cache space).
func (c *coldPool) touch(k int) {
	if len(c.objs) == 0 {
		return
	}
	for i := 0; i < k; i++ {
		v := c.rng.Intn(len(c.objs))
		c.env.Read(c.objs[v], min64(c.sizes[v], 8))
	}
}

// drain frees everything left in the pool.
func (c *coldPool) drain() {
	for _, a := range c.objs {
		c.env.Free(a)
	}
	c.objs, c.sizes = nil, nil
}

// hotObj is one hot object handle: its address and allocation size.
type hotObj struct {
	addr mem.Addr
	size uint64
}

// visit reads head bytes of the object (the dominant access idiom for
// linked data structures: headers, keys, next pointers).
func (o hotObj) visit(env machine.Env, head uint64) {
	env.Read(o.addr, min64(o.size, head))
}

// sweep visits each hot object in order, reading head bytes, with compute
// between visits.
func sweep(env machine.Env, objs []hotObj, head uint64, computePer uint64) {
	for _, o := range objs {
		o.visit(env, head)
		if computePer > 0 {
			env.Compute(computePer)
		}
	}
}

// scan streams through one object sequentially in line-sized reads
// (intra-object spatial locality, the mysql buffer idiom).
func scan(env machine.Env, o hotObj, stride uint64) {
	if stride == 0 {
		stride = 64
	}
	for off := uint64(0); off < o.size; off += stride {
		env.Read(o.addr+mem.Addr(off), min64(stride, o.size-off))
	}
}

// pick returns objs indexed by idxs (an HDS access order).
func pick(objs []hotObj, idxs ...int) []hotObj {
	out := make([]hotObj, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, objs[i])
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// scaled returns max(1, round(base*scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
