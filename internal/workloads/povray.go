package workloads

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// povray models the SPEC 511.povray ray tracer: per-ray temporary
// structures — the ray itself, an intersection stack, colour vectors and
// texture scratch — allocated from eight sites at the top of the trace
// recursion, used through the shading computation, and freed when the ray
// completes.
//
// Per the paper: 8 sites sharing 1 counter with "all ids" (Table 2),
// with ~20 objects simultaneously live (recursion depth × per-ray
// structures). Gains are modest (−3.44%) because shading is compute-heavy
// relative to the allocator traffic, and every PreFix variant performs the
// same because recycling dominates.
type povray struct{}

func (povray) Name() string { return "povray" }

const (
	povraySiteRay mem.SiteID = iota + 1 // per-ray sites occupy 1..8
	povraySiteIsect
	povraySiteColorA
	povraySiteColorB
	povraySiteColorC
	povraySiteTexA
	povraySiteTexB
	povraySiteShadow
	povraySiteCold mem.SiteID = 20
)

const (
	povrayFnTrace mem.FuncID = iota + 401
	povrayFnScene
)

var povraySizes = [8]uint64{160, 512, 96, 96, 96, 256, 256, 128}

func (w povray) Run(env machine.Env, cfg Config) {
	rng := xrand.New(cfg.Seed)
	cold := newColdPool(env, rng, povraySiteCold, povrayFnScene, 6000)
	// Scene geometry: a large population probed uniformly, so each
	// geometry object individually stays far colder than the per-ray
	// temporaries.
	cold.churn(6000, 300)

	rays := scaled(9000, cfg.Scale)
	for r := 0; r < rays; r++ {
		w.trace(env, rng, cold, 0)
		// Texture cache churn between rays.
		if r%8 == 3 {
			cold.churn(2, 200)
		}
	}
	cold.drain()
}

// trace shades one ray, recursing for reflections: nested live sets of
// per-ray temporaries are what push the simultaneously-live count to ~20.
func (w povray) trace(env machine.Env, rng *xrand.Rand, cold *coldPool, depth int) {
	env.Enter(povrayFnTrace)
	// Ray temporaries from the eight sites in tandem.
	var objs [8]hotObj
	for i := 0; i < 8; i++ {
		objs[i] = hotObj{env.Malloc(povraySiteRay+mem.SiteID(i), povraySizes[i]), povraySizes[i]}
		env.Write(objs[i].addr, min64(povraySizes[i], 32))
	}
	// Shading: compute-dominant, touching the temporaries and the scene
	// geometry.
	bounces := 2 + rng.Intn(3)
	for b := 0; b < bounces; b++ {
		for i := 0; i < 8; i++ {
			objs[i].visit(env, 32)
			env.Write(objs[i].addr, 16) // accumulate shading results
		}
		cold.touch(1)
		env.Compute(12000) // intersection mathematics dominates shading
	}
	// Reflection/refraction rays recurse while this ray's temporaries
	// stay live.
	if depth < 2 && rng.Bool(0.3) {
		w.trace(env, rng, cold, depth+1)
	}
	for i := 0; i < 8; i++ {
		env.Free(objs[i].addr)
	}
	env.Leave()
}

func init() {
	register(Spec{
		Program: povray{},
		Profile: Config{Scale: 0.08, Seed: 51},
		Long:    Config{Scale: 1.0, Seed: 5501},
		Bench:   Config{Scale: 0.25, Seed: 5501},
		Binary: BinaryInfo{
			TextBytes:   1200 << 10,
			MallocSites: 220, FreeSites: 180, ReallocSites: 10,
			BoltOrigText: true,
		},
		BaselineSeconds: 502.3,
	})
}
