package machine

import (
	"strings"
	"testing"

	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/simalloc"
	"prefix/internal/xrand"
)

// heapAlloc adapts the address-reusing simalloc heap to the Allocator
// interface so attribution tests exercise free-list address reuse, which
// the bump allocator never does.
type heapAlloc struct{ h *simalloc.Heap }

func newHeapAlloc() *heapAlloc { return &heapAlloc{h: simalloc.New(0x1_0000)} }

func (a *heapAlloc) Name() string { return "heap" }
func (a *heapAlloc) Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (mem.Addr, uint64) {
	return a.h.Malloc(size), 100
}
func (a *heapAlloc) Free(addr mem.Addr) uint64 { a.h.Free(addr); return 50 }
func (a *heapAlloc) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	na, _ := a.h.Realloc(addr, size)
	return na, 150
}

// driveAttribWorkload runs a deterministic malloc/free/realloc/access mix
// against env: small and multi-page objects across several sites, frees
// and reallocs, plus stray accesses outside any live allocation.
func driveAttribWorkload(env Env, seed uint64) {
	rng := xrand.New(seed)
	type liveObj struct {
		addr mem.Addr
		size uint64
	}
	var live []liveObj
	for i := 0; i < 30000; i++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0:
			site := mem.SiteID(rng.Intn(7) + 1)
			size := uint64(rng.Intn(9000) + 1) // up to ~3 pages
			a := env.Malloc(site, size)
			live = append(live, liveObj{a, size})
		case op < 7:
			o := live[rng.Intn(len(live))]
			env.Read(o.addr+mem.Addr(rng.Uint64()%o.size), 8)
			env.Write(o.addr, 4)
		case op == 7:
			j := rng.Intn(len(live))
			env.Free(live[j].addr)
			live = append(live[:j], live[j+1:]...)
		case op == 8:
			j := rng.Intn(len(live))
			size := uint64(rng.Intn(9000) + 1)
			live[j].addr = env.Realloc(live[j].addr, size)
			live[j].size = size
		default:
			// Untracked traffic: globals/stack stand-ins far from the heap.
			env.Read(mem.Addr(0xdead_0000+rng.Uint64()%4096), 8)
		}
	}
	for _, o := range live {
		env.Free(o.addr)
	}
}

// TestAttribSumInvariant: the per-site cells must sum to the aggregate
// hierarchy Counts exactly — every access's delta lands in one cell.
func TestAttribSumInvariant(t *testing.T) {
	m := New(newHeapAlloc(), cfg(), WithAttribution())
	driveAttribWorkload(m, 7)
	mm := m.Finish()
	at := m.Attrib()
	if !at.Enabled {
		t.Fatal("attribution machine returned disabled snapshot")
	}
	if got := at.Total(); got != mm.Cache {
		t.Fatalf("attributed sum %+v != aggregate Counts %+v", got, mm.Cache)
	}
	if len(at.Top(0)) < 7 {
		t.Fatalf("expected 7 real sites, got %d", len(at.Top(0)))
	}
	if other, ok := at.Of(0); !ok || other.Counts.Accesses == 0 {
		t.Fatalf("sentinel cell missing or empty: %+v ok=%v", other, ok)
	}
}

// TestAttribDifferential: attribution-on and -off runs of the same
// workload must produce identical Metrics — observation cannot perturb
// the simulation.
func TestAttribDifferential(t *testing.T) {
	off := New(newHeapAlloc(), cfg())
	on := New(newHeapAlloc(), cfg(), WithAttribution())
	driveAttribWorkload(off, 11)
	driveAttribWorkload(on, 11)
	mOff, mOn := off.Finish(), on.Finish()
	if mOff != mOn {
		t.Fatalf("attribution changed the run:\noff %+v\non  %+v", mOff, mOn)
	}
	if m := New(newHeapAlloc(), cfg()).Attrib(); m.Enabled || m.Sites != nil {
		t.Fatalf("attribution-off snapshot not zero: %+v", m)
	}
}

// TestAttribSiteResolution pins the address→site mapping: accesses to a
// live object charge its site, freed memory and foreign addresses charge
// the sentinel, and realloc moves the object (keeping its site) even
// across a page boundary.
func TestAttribSiteResolution(t *testing.T) {
	m := New(&bumpAlloc{}, cfg(), WithAttribution())

	a := m.Malloc(3, 64)
	for i := 0; i < 10; i++ {
		m.Read(a, 8)
	}
	b := m.Malloc(5, 3*mem.PageSize) // straddles ≥3 pages
	m.Read(b+mem.Addr(2*mem.PageSize)+17, 8)

	// Realloc keeps site 5; the bump allocator always moves.
	b2 := m.Realloc(b, 5*mem.PageSize)
	if b2 == b {
		t.Fatal("bump realloc did not move")
	}
	m.Read(b2+mem.Addr(4*mem.PageSize), 8)
	m.Read(b, 8) // old range: now unattributed

	m.Free(a)
	m.Read(a, 8) // freed: unattributed
	m.Read(0xffff_0000, 8)

	at := m.Attrib()
	want := map[mem.SiteID]uint64{0: 3, 3: 10, 5: 2}
	for site, accesses := range want {
		s, ok := at.Of(site)
		if !ok || s.Counts.Accesses != accesses {
			t.Errorf("site %d: got %+v ok=%v, want %d accesses", site, s.Counts, ok, accesses)
		}
	}
	if total, sum := m.Finish().Cache, at.Total(); total != sum {
		t.Fatalf("sum invariant broke: %+v != %+v", sum, total)
	}
}

// TestAttribSameAddressReuse: free then re-malloc at the same address
// (recycling rings do this constantly) must re-attribute to the new site.
func TestAttribSameAddressReuse(t *testing.T) {
	alloc := newHeapAlloc()
	m := New(alloc, cfg(), WithAttribution())
	a := m.Malloc(1, 64)
	m.Read(a, 8)
	m.Free(a)
	b := m.Malloc(2, 64)
	if a != b {
		t.Skipf("heap did not reuse the address (%v vs %v)", a, b)
	}
	m.Read(b, 8)
	at := m.Attrib()
	s1, _ := at.Of(1)
	s2, _ := at.Of(2)
	if s1.Counts.Accesses != 1 || s2.Counts.Accesses != 1 {
		t.Fatalf("address reuse misattributed: site1=%+v site2=%+v", s1.Counts, s2.Counts)
	}
}

// TestAttributionOffLoopZeroAllocs guards the tentpole contract: a
// machine built without WithAttribution pays only a nil check — the
// malloc/access/free loop stays at 0 allocs/op.
func TestAttributionOffLoopZeroAllocs(t *testing.T) {
	m := New(&bumpAlloc{}, cfg())
	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		a := m.Malloc(1, 128)
		m.Write(a, 8)
		m.Read(a+mem.Addr(i%64), 8)
		m.Free(a)
		i++
	}); n != 0 {
		t.Errorf("attribution-off loop allocates %.2f per iteration", n)
	}
}

// TestAttribPublish: the snapshot exports the prefix_attrib_* family with
// per-site labels and an "other" sentinel label; a nil registry or a
// disabled snapshot is a no-op.
func TestAttribPublish(t *testing.T) {
	m := New(&bumpAlloc{}, cfg(), WithAttribution())
	a := m.Malloc(4, 64)
	m.Read(a, 8)
	m.Read(0xffff_0000, 8)
	m.Finish()

	reg := obs.NewRegistry()
	at := m.Attrib()
	at.Publish(reg, "benchmark", "t")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`prefix_attrib_accesses_total{benchmark="t",site="4"}`,
		`prefix_attrib_llc_misses_total{benchmark="t",site="other"}`,
		`prefix_attrib_l1_misses_total`,
		`prefix_attrib_tlb_misses_total`,
		`prefix_attrib_stall_cycles`,
		`prefix_attrib_llc_miss_share`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("published series missing %q in:\n%s", want, out)
		}
	}
	at.Publish(nil)             // nil registry: no-op
	AttribCounts{}.Publish(reg) // disabled snapshot: no-op
}
