// Package machine is the execution environment of the reproduction: the
// piece that plays the role of the real CPU + DynamoRIO in the paper's
// pipeline (Figure 8). Workloads are written against the Env interface and
// are completely agnostic of which allocation strategy serves them; the
// machine couples an Allocator, a cache/TLB hierarchy, an optional trace
// recorder, and a call-stack tracker, and accumulates the metrics that the
// evaluation tables report.
package machine

import (
	"fmt"
	"sort"

	"prefix/internal/cachesim"
	"prefix/internal/callstack"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/trace"
)

// Env is what a workload programs against. It mirrors the operations a
// traced binary performs: call/return (for calling-context techniques),
// malloc/free/realloc, data reads/writes, and pure compute.
type Env interface {
	// Enter pushes a function frame; Leave pops it. Only calling-context
	// based strategies (HALO) observe the stack.
	Enter(fn mem.FuncID)
	Leave()
	// Malloc allocates size bytes at the given static malloc site and
	// returns the simulated address.
	Malloc(site mem.SiteID, size uint64) mem.Addr
	// Free releases an allocation.
	Free(addr mem.Addr)
	// Realloc resizes an allocation, possibly moving it.
	Realloc(addr mem.Addr, size uint64) mem.Addr
	// Read and Write simulate data accesses of the given width.
	Read(addr mem.Addr, size uint64)
	Write(addr mem.Addr, size uint64)
	// Compute charges n non-memory instructions.
	Compute(n uint64)
}

// Allocator is an allocation strategy under test: the baseline heap, the
// HDS and HALO baselines, or PreFix. The returned instr values are the
// dynamic instruction cost of the operation including any underlying heap
// work, so strategies with cheap fast paths (preallocation hit: a counter
// bump and a table lookup) are rewarded exactly as in Table 6.
type Allocator interface {
	Name() string
	Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (addr mem.Addr, instr uint64)
	Free(addr mem.Addr) (instr uint64)
	Realloc(addr mem.Addr, size uint64) (newAddr mem.Addr, instr uint64)
}

// Metrics summarizes one run. The JSON field names are a stable interface
// (the obs JSON exporter and external tooling key on them); change them
// only with a migration note.
type Metrics struct {
	Instr       uint64          `json:"instr"`       // total dynamic instructions (compute + memory + allocator)
	MemInstr    uint64          `json:"mem_instr"`   // instructions that were memory accesses
	AllocInstr  uint64          `json:"alloc_instr"` // instructions spent inside the allocator
	Mallocs     uint64          `json:"mallocs"`
	Frees       uint64          `json:"frees"`
	Reallocs    uint64          `json:"reallocs"`
	Cache       cachesim.Counts `json:"cache"`
	Cycles      float64         `json:"cycles"`
	StallCycles float64         `json:"stall_cycles"`
}

// Events is the number of simulated events the run generated: one per
// memory access plus one per allocator call (malloc/free/realloc) —
// exactly the recorder's event count for a recorded run, so host-cost
// throughput (events/sec) is comparable between recorded and
// recording-free runs.
func (m Metrics) Events() uint64 {
	return m.MemInstr + m.Mallocs + m.Frees + m.Reallocs
}

// String returns a one-line human-readable summary of the run.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"cycles=%.4g instr=%d (mem=%d alloc=%d) mallocs=%d frees=%d reallocs=%d L1miss=%.3f%% LLCmiss=%.4f%% stalls=%.1f%%",
		m.Cycles, m.Instr, m.MemInstr, m.AllocInstr, m.Mallocs, m.Frees, m.Reallocs,
		100*m.Cache.L1MissRate(), 100*m.Cache.LLCMissRate(), m.BackendStallPct())
}

// Publish reports the run's metrics — instruction mix, allocator traffic,
// cache/TLB hits and misses, modeled cycles — into reg under the given
// label pairs (typically benchmark and run). Nil-safe: a nil registry
// makes this a no-op, so callers never branch.
func (m Metrics) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	reg.Counter("prefix_run_instructions_total", kv...).Add(m.Instr)
	reg.Counter("prefix_run_mem_instructions_total", kv...).Add(m.MemInstr)
	reg.Counter("prefix_run_alloc_instructions_total", kv...).Add(m.AllocInstr)
	reg.Counter("prefix_run_mallocs_total", kv...).Add(m.Mallocs)
	reg.Counter("prefix_run_frees_total", kv...).Add(m.Frees)
	reg.Counter("prefix_run_reallocs_total", kv...).Add(m.Reallocs)
	reg.Gauge("prefix_run_cycles", kv...).Set(m.Cycles)
	reg.Gauge("prefix_run_stall_cycles", kv...).Set(m.StallCycles)
	reg.Gauge("prefix_run_backend_stall_pct", kv...).Set(m.BackendStallPct())

	c := m.Cache
	reg.Counter("prefix_cache_accesses_total", kv...).Add(c.Accesses)
	reg.Counter("prefix_cache_l1_hits_total", kv...).Add(c.Accesses - c.L1Misses)
	reg.Counter("prefix_cache_l1_misses_total", kv...).Add(c.L1Misses)
	reg.Counter("prefix_cache_l2_hits_total", kv...).Add(c.L2Hits)
	reg.Counter("prefix_cache_llc_hits_total", kv...).Add(c.LLCHits)
	reg.Counter("prefix_cache_llc_misses_total", kv...).Add(c.LLCMisses)
	reg.Counter("prefix_cache_prefetches_total", kv...).Add(c.Prefetches)
	reg.Counter("prefix_tlb1_misses_total", kv...).Add(c.TLB1Miss)
	reg.Counter("prefix_tlb2_misses_total", kv...).Add(c.TLB2Miss)
	reg.Gauge("prefix_cache_l1_miss_rate", kv...).Set(c.L1MissRate())
	reg.Gauge("prefix_cache_llc_miss_rate", kv...).Set(c.LLCMissRate())
}

// BackendStallPct is the share of cycles stalled on memory, the paper's
// Figure 13 metric.
func (m Metrics) BackendStallPct() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return 100 * m.StallCycles / m.Cycles
}

// batchEvents is the machine-side event hand-off batch size: recorded
// events accumulate in a preallocated buffer of this many entries and
// reach the recorder one bulk call per batch. Small enough that the
// extra resident buffer is noise next to a trace chunk, large enough to
// amortize the interface dispatch to well under an add per event.
const batchEvents = 256

// eventBatch batches the hand-off from a machine (or a group of
// machines sharing one recorder) to its trace recorder. The per-event
// cost is an append into a preallocated buffer through a concrete
// method — no interface dispatch; the recorder's interface is crossed
// once per batch, via RecordBatch when the recorder supports bulk
// delivery and an event-at-a-time replay otherwise. A group's machines
// share one batch, so the recorded interleaving is exactly the order
// the workload drove the thread Envs in.
type eventBatch struct {
	rec  trace.EventRecorder
	bulk trace.BatchRecorder // non-nil when rec accepts batches
	buf  []trace.Event
}

func newEventBatch(rec trace.EventRecorder) *eventBatch {
	if rec == nil {
		return nil
	}
	b := &eventBatch{rec: rec, buf: make([]trace.Event, 0, batchEvents)}
	b.bulk, _ = rec.(trace.BatchRecorder)
	return b
}

// add appends one event, flushing when the batch fills.
//
//prefix:hotpath
func (b *eventBatch) add(ev trace.Event) {
	//lint:ignore hotalloc buffer is preallocated at cap batchEvents and flushed at cap, so this append never grows
	b.buf = append(b.buf, ev)
	if len(b.buf) == cap(b.buf) {
		b.flush()
	}
}

// flush hands the buffered events to the recorder and empties the
// batch, keeping its storage. The interface crossings below are the
// point of the batch: they happen once per batchEvents events (or once
// per event only on the legacy non-bulk recorder fallback), not on the
// per-event path.
//
//prefix:hotpath
func (b *eventBatch) flush() {
	if len(b.buf) == 0 {
		return
	}
	if b.bulk != nil {
		//lint:ignore hotcall one dispatch per 256-event batch is the amortization this type exists for
		b.bulk.RecordBatch(b.buf)
	} else {
		for i := range b.buf {
			ev := &b.buf[i]
			switch ev.Kind {
			case trace.KindAlloc:
				//lint:ignore hotcall non-bulk recorder fallback: per-event dispatch is the legacy path, not the pinned one
				b.rec.Alloc(ev.Site, ev.Stack, ev.Addr, ev.Size)
			case trace.KindFree:
				//lint:ignore hotcall non-bulk recorder fallback: per-event dispatch is the legacy path, not the pinned one
				b.rec.Free(ev.Addr)
			case trace.KindRealloc:
				//lint:ignore hotcall non-bulk recorder fallback: per-event dispatch is the legacy path, not the pinned one
				b.rec.Realloc(ev.Addr, ev.Addr2, ev.Size)
			case trace.KindAccess:
				//lint:ignore hotcall non-bulk recorder fallback: per-event dispatch is the legacy path, not the pinned one
				b.rec.Access(ev.Addr, ev.Size, ev.Write)
			}
		}
	}
	b.buf = b.buf[:0]
}

// Machine is a single logical hardware thread.
type Machine struct {
	alloc  Allocator
	hier   *cachesim.Hierarchy
	cost   cachesim.CostModel
	rec    *eventBatch // nil when not tracing; shared across a group
	attrib *attrib     // nil unless WithAttribution
	stack  callstack.Stack

	m Metrics
}

// Option configures a Machine.
type Option func(*Machine)

// WithRecorder attaches a trace recorder (profiling runs): the
// in-memory *trace.Recorder or the bounded-memory *trace.SpillRecorder.
// Events reach the recorder in batches; Finish flushes the final
// partial batch, so read the recorder only after Finish.
func WithRecorder(r trace.EventRecorder) Option {
	return func(m *Machine) { m.rec = newEventBatch(r) }
}

// WithAttribution enables per-site attribution: every cache/TLB event is
// charged to the malloc site owning the touched address, readable via
// Attrib after the run. Costs one range lookup per access and O(live
// allocations + sites) memory; machines without it keep the
// zero-allocation fast path.
func WithAttribution() Option {
	return func(m *Machine) { m.attrib = newAttrib() }
}

// New builds a machine over the given allocator and cache configuration.
func New(alloc Allocator, cfg cachesim.Config, opts ...Option) *Machine {
	m := &Machine{
		alloc: alloc,
		hier:  cachesim.New(cfg),
		cost:  cfg.Cost,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// newShared builds a machine whose LLC is shared (multithreaded groups).
// The event batch is shared too, so the group records one stream in
// exactly the interleaving the workload chose.
func newShared(alloc Allocator, cfg cachesim.Config, llc *cachesim.Cache, batch *eventBatch) *Machine {
	return &Machine{
		alloc: alloc,
		hier:  cachesim.NewShared(cfg, llc),
		cost:  cfg.Cost,
		rec:   batch,
	}
}

// Enter implements Env.
func (m *Machine) Enter(fn mem.FuncID) {
	m.stack.Push(fn)
	m.m.Instr += 2 // call + frame setup
}

// Leave implements Env.
func (m *Machine) Leave() {
	m.stack.Pop()
	m.m.Instr++
}

// Malloc implements Env.
//
//prefix:hotpath
func (m *Machine) Malloc(site mem.SiteID, size uint64) mem.Addr {
	//lint:ignore hotcall the Allocator under test is the experiment's variable; one dispatch per allocator event is the unit of work measured
	addr, instr := m.alloc.Malloc(site, m.stack.Sig(), size)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Mallocs++
	if m.attrib != nil {
		//lint:ignore hotcall attribution is opt-in observability off the pinned fast path; disabled runs pay only this nil check
		m.attrib.register(site, addr, size)
	}
	if m.rec != nil {
		m.rec.add(trace.Event{Kind: trace.KindAlloc, Site: site, Stack: m.stack.Sig(), Addr: addr, Size: size})
	}
	return addr
}

// Free implements Env.
//
//prefix:hotpath
func (m *Machine) Free(addr mem.Addr) {
	if addr == mem.NilAddr {
		return
	}
	//lint:ignore hotcall the Allocator under test is the experiment's variable; one dispatch per allocator event is the unit of work measured
	instr := m.alloc.Free(addr)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Frees++
	if m.attrib != nil {
		//lint:ignore hotcall attribution is opt-in observability off the pinned fast path; disabled runs pay only this nil check
		m.attrib.unregister(addr)
	}
	if m.rec != nil {
		m.rec.add(trace.Event{Kind: trace.KindFree, Addr: addr})
	}
}

// Realloc implements Env.
//
//prefix:hotpath
func (m *Machine) Realloc(addr mem.Addr, size uint64) mem.Addr {
	//lint:ignore hotcall the Allocator under test is the experiment's variable; one dispatch per allocator event is the unit of work measured
	na, instr := m.alloc.Realloc(addr, size)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Reallocs++
	if m.attrib != nil {
		//lint:ignore hotcall attribution is opt-in observability off the pinned fast path; disabled runs pay only this nil check
		m.attrib.realloc(addr, na, size)
	}
	if m.rec != nil {
		m.rec.add(trace.Event{Kind: trace.KindRealloc, Addr: addr, Addr2: na, Size: size})
	}
	return na
}

// Read implements Env.
//
//prefix:hotpath
func (m *Machine) Read(addr mem.Addr, size uint64) { m.access(addr, size, false) }

// Write implements Env.
//
//prefix:hotpath
func (m *Machine) Write(addr mem.Addr, size uint64) { m.access(addr, size, true) }

// access is the per-event hot path: a flat hierarchy walk, two metric
// adds, and — on the recording-free path — nothing else but one nil
// check. Recording runs append into the concrete event batch, so the
// recorder interface is crossed once per batch, not per event.
//
//prefix:hotpath
func (m *Machine) access(addr mem.Addr, size uint64, write bool) {
	if m.attrib == nil {
		m.hier.Access(addr, size)
	} else {
		// Attribution mode walks the identical Access path; the delta is
		// a snapshot subtract, so aggregate Counts cannot diverge.
		//lint:ignore hotcall attribution is opt-in observability off the pinned fast path; disabled runs pay only this nil check
		m.attrib.observe(addr, m.hier.AccessDelta(addr, size))
	}
	m.m.Instr++
	m.m.MemInstr++
	if m.rec != nil {
		m.rec.add(trace.Event{Kind: trace.KindAccess, Addr: addr, Size: size, Write: write})
	}
}

// Compute implements Env.
//
//prefix:hotpath
func (m *Machine) Compute(n uint64) { m.m.Instr += n }

// Finish closes the run and returns the metrics. It flushes the final
// partial event batch to the recorder, so the recorded trace is
// complete once every machine sharing the recorder has finished.
func (m *Machine) Finish() Metrics {
	m.m.Cache = m.hier.Counts()
	m.m.Cycles = m.cost.Cycles(m.m.Instr-m.m.MemInstr, m.m.Cache)
	m.m.StallCycles = m.cost.StallCycles(m.m.Cache)
	if m.rec != nil {
		m.rec.flush()
		m.rec.rec.AddInstr(m.m.Instr)
	}
	return m.m
}

// Attrib returns the run's per-site attribution snapshot. Machines built
// without WithAttribution return the zero (Enabled false) snapshot, so
// callers never branch on the mode.
func (m *Machine) Attrib() AttribCounts {
	if m.attrib == nil {
		return AttribCounts{}
	}
	a := m.attrib
	out := AttribCounts{Enabled: true, Sites: make([]SiteAttrib, len(a.cells))}
	for i, c := range a.cells {
		out.Sites[i] = SiteAttrib{Site: a.sites[i], Counts: c, StallCycles: m.cost.StallCycles(c)}
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].Site < out.Sites[j].Site })
	return out
}

var _ Env = (*Machine)(nil)

// Group is a set of logical threads with private L1/TLB hierarchies and a
// shared LLC and allocator, used for the multithreaded evaluation
// (Figure 10). The simulation is deterministic: the workload decides the
// interleaving by choosing which thread Env it drives.
type Group struct {
	machines []*Machine
}

// NewGroup builds k thread environments sharing one LLC and allocator.
// When rec is non-nil all threads record into the same trace (the paper
// collects a single trace with the default thread count).
func NewGroup(alloc Allocator, cfg cachesim.Config, k int, rec trace.EventRecorder) *Group {
	llc := cachesim.SharedLLC(cfg)
	batch := newEventBatch(rec)
	g := &Group{}
	for i := 0; i < k; i++ {
		g.machines = append(g.machines, newShared(alloc, cfg, llc, batch))
	}
	return g
}

// Env returns thread i's environment.
func (g *Group) Env(i int) Env { return g.machines[i] }

// Size returns the thread count.
func (g *Group) Size() int { return len(g.machines) }

// Finish returns per-thread metrics plus the group's modeled parallel
// time: the maximum per-thread cycle count (threads run concurrently; the
// slowest one bounds wall clock).
func (g *Group) Finish() (threads []Metrics, parallelCycles float64, total Metrics) {
	for _, m := range g.machines {
		mm := m.Finish()
		threads = append(threads, mm)
		if mm.Cycles > parallelCycles {
			parallelCycles = mm.Cycles
		}
		total.Instr += mm.Instr
		total.MemInstr += mm.MemInstr
		total.AllocInstr += mm.AllocInstr
		total.Mallocs += mm.Mallocs
		total.Frees += mm.Frees
		total.Reallocs += mm.Reallocs
		total.Cache.Add(mm.Cache)
		total.Cycles += mm.Cycles
		total.StallCycles += mm.StallCycles
	}
	return threads, parallelCycles, total
}
