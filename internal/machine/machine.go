// Package machine is the execution environment of the reproduction: the
// piece that plays the role of the real CPU + DynamoRIO in the paper's
// pipeline (Figure 8). Workloads are written against the Env interface and
// are completely agnostic of which allocation strategy serves them; the
// machine couples an Allocator, a cache/TLB hierarchy, an optional trace
// recorder, and a call-stack tracker, and accumulates the metrics that the
// evaluation tables report.
package machine

import (
	"prefix/internal/cachesim"
	"prefix/internal/callstack"
	"prefix/internal/mem"
	"prefix/internal/trace"
)

// Env is what a workload programs against. It mirrors the operations a
// traced binary performs: call/return (for calling-context techniques),
// malloc/free/realloc, data reads/writes, and pure compute.
type Env interface {
	// Enter pushes a function frame; Leave pops it. Only calling-context
	// based strategies (HALO) observe the stack.
	Enter(fn mem.FuncID)
	Leave()
	// Malloc allocates size bytes at the given static malloc site and
	// returns the simulated address.
	Malloc(site mem.SiteID, size uint64) mem.Addr
	// Free releases an allocation.
	Free(addr mem.Addr)
	// Realloc resizes an allocation, possibly moving it.
	Realloc(addr mem.Addr, size uint64) mem.Addr
	// Read and Write simulate data accesses of the given width.
	Read(addr mem.Addr, size uint64)
	Write(addr mem.Addr, size uint64)
	// Compute charges n non-memory instructions.
	Compute(n uint64)
}

// Allocator is an allocation strategy under test: the baseline heap, the
// HDS and HALO baselines, or PreFix. The returned instr values are the
// dynamic instruction cost of the operation including any underlying heap
// work, so strategies with cheap fast paths (preallocation hit: a counter
// bump and a table lookup) are rewarded exactly as in Table 6.
type Allocator interface {
	Name() string
	Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (addr mem.Addr, instr uint64)
	Free(addr mem.Addr) (instr uint64)
	Realloc(addr mem.Addr, size uint64) (newAddr mem.Addr, instr uint64)
}

// Metrics summarizes one run.
type Metrics struct {
	Instr       uint64 // total dynamic instructions (compute + memory + allocator)
	MemInstr    uint64 // instructions that were memory accesses
	AllocInstr  uint64 // instructions spent inside the allocator
	Mallocs     uint64
	Frees       uint64
	Reallocs    uint64
	Cache       cachesim.Counts
	Cycles      float64
	StallCycles float64
}

// BackendStallPct is the share of cycles stalled on memory, the paper's
// Figure 13 metric.
func (m Metrics) BackendStallPct() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return 100 * m.StallCycles / m.Cycles
}

// Machine is a single logical hardware thread.
type Machine struct {
	alloc Allocator
	hier  *cachesim.Hierarchy
	cost  cachesim.CostModel
	rec   *trace.Recorder // nil when not tracing
	stack callstack.Stack

	m Metrics
}

// Option configures a Machine.
type Option func(*Machine)

// WithRecorder attaches a trace recorder (profiling runs).
func WithRecorder(r *trace.Recorder) Option {
	return func(m *Machine) { m.rec = r }
}

// New builds a machine over the given allocator and cache configuration.
func New(alloc Allocator, cfg cachesim.Config, opts ...Option) *Machine {
	m := &Machine{
		alloc: alloc,
		hier:  cachesim.New(cfg),
		cost:  cfg.Cost,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// newShared builds a machine whose LLC is shared (multithreaded groups).
func newShared(alloc Allocator, cfg cachesim.Config, llc *cachesim.Cache, rec *trace.Recorder) *Machine {
	return &Machine{
		alloc: alloc,
		hier:  cachesim.NewShared(cfg, llc),
		cost:  cfg.Cost,
		rec:   rec,
	}
}

// Enter implements Env.
func (m *Machine) Enter(fn mem.FuncID) {
	m.stack.Push(fn)
	m.m.Instr += 2 // call + frame setup
}

// Leave implements Env.
func (m *Machine) Leave() {
	m.stack.Pop()
	m.m.Instr++
}

// Malloc implements Env.
func (m *Machine) Malloc(site mem.SiteID, size uint64) mem.Addr {
	addr, instr := m.alloc.Malloc(site, m.stack.Sig(), size)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Mallocs++
	if m.rec != nil {
		m.rec.Alloc(site, m.stack.Sig(), addr, size)
	}
	return addr
}

// Free implements Env.
func (m *Machine) Free(addr mem.Addr) {
	if addr == mem.NilAddr {
		return
	}
	instr := m.alloc.Free(addr)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Frees++
	if m.rec != nil {
		m.rec.Free(addr)
	}
}

// Realloc implements Env.
func (m *Machine) Realloc(addr mem.Addr, size uint64) mem.Addr {
	na, instr := m.alloc.Realloc(addr, size)
	m.m.Instr += instr
	m.m.AllocInstr += instr
	m.m.Reallocs++
	if m.rec != nil {
		m.rec.Realloc(addr, na, size)
	}
	return na
}

// Read implements Env.
func (m *Machine) Read(addr mem.Addr, size uint64) { m.access(addr, size, false) }

// Write implements Env.
func (m *Machine) Write(addr mem.Addr, size uint64) { m.access(addr, size, true) }

func (m *Machine) access(addr mem.Addr, size uint64, write bool) {
	m.hier.Access(addr, size)
	m.m.Instr++
	m.m.MemInstr++
	if m.rec != nil {
		m.rec.Access(addr, size, write)
	}
}

// Compute implements Env.
func (m *Machine) Compute(n uint64) { m.m.Instr += n }

// Finish closes the run and returns the metrics.
func (m *Machine) Finish() Metrics {
	m.m.Cache = m.hier.Counts()
	m.m.Cycles = m.cost.Cycles(m.m.Instr-m.m.MemInstr, m.m.Cache)
	m.m.StallCycles = m.cost.StallCycles(m.m.Cache)
	if m.rec != nil {
		m.rec.AddInstr(m.m.Instr)
	}
	return m.m
}

var _ Env = (*Machine)(nil)

// Group is a set of logical threads with private L1/TLB hierarchies and a
// shared LLC and allocator, used for the multithreaded evaluation
// (Figure 10). The simulation is deterministic: the workload decides the
// interleaving by choosing which thread Env it drives.
type Group struct {
	machines []*Machine
}

// NewGroup builds k thread environments sharing one LLC and allocator.
// When rec is non-nil all threads record into the same trace (the paper
// collects a single trace with the default thread count).
func NewGroup(alloc Allocator, cfg cachesim.Config, k int, rec *trace.Recorder) *Group {
	llc := cachesim.SharedLLC(cfg)
	g := &Group{}
	for i := 0; i < k; i++ {
		g.machines = append(g.machines, newShared(alloc, cfg, llc, rec))
	}
	return g
}

// Env returns thread i's environment.
func (g *Group) Env(i int) Env { return g.machines[i] }

// Size returns the thread count.
func (g *Group) Size() int { return len(g.machines) }

// Finish returns per-thread metrics plus the group's modeled parallel
// time: the maximum per-thread cycle count (threads run concurrently; the
// slowest one bounds wall clock).
func (g *Group) Finish() (threads []Metrics, parallelCycles float64, total Metrics) {
	for _, m := range g.machines {
		mm := m.Finish()
		threads = append(threads, mm)
		if mm.Cycles > parallelCycles {
			parallelCycles = mm.Cycles
		}
		total.Instr += mm.Instr
		total.MemInstr += mm.MemInstr
		total.AllocInstr += mm.AllocInstr
		total.Mallocs += mm.Mallocs
		total.Frees += mm.Frees
		total.Reallocs += mm.Reallocs
		total.Cache.Add(mm.Cache)
		total.Cycles += mm.Cycles
		total.StallCycles += mm.StallCycles
	}
	return threads, parallelCycles, total
}
