package machine

import (
	"bytes"
	"reflect"
	"testing"

	"prefix/internal/cachesim"
	"prefix/internal/mem"
	"prefix/internal/trace"
)

// fakeAlloc is a deterministic allocator for machine tests.
type fakeAlloc struct {
	next    mem.Addr
	mallocs []mem.SiteID
	stacks  []mem.StackSig
	frees   []mem.Addr
}

func (f *fakeAlloc) Name() string { return "fake" }
func (f *fakeAlloc) Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (mem.Addr, uint64) {
	f.mallocs = append(f.mallocs, site)
	f.stacks = append(f.stacks, stack)
	f.next += 0x1000
	return f.next, 100
}
func (f *fakeAlloc) Free(addr mem.Addr) uint64 {
	f.frees = append(f.frees, addr)
	return 50
}
func (f *fakeAlloc) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	f.next += 0x1000
	return f.next, 150
}

func cfg() cachesim.Config { return cachesim.ScaledConfig() }

func TestMachineAccounting(t *testing.T) {
	fa := &fakeAlloc{}
	m := New(fa, cfg())
	a := m.Malloc(3, 64)
	m.Write(a, 8)
	m.Read(a, 8)
	m.Compute(10)
	m.Free(a)
	got := m.Finish()
	if got.Mallocs != 1 || got.Frees != 1 {
		t.Errorf("op counts: %+v", got)
	}
	if got.AllocInstr != 150 {
		t.Errorf("alloc instr = %d, want 150", got.AllocInstr)
	}
	if got.MemInstr != 2 {
		t.Errorf("mem instr = %d", got.MemInstr)
	}
	// instr = 100 (malloc) + 2 (accesses) + 10 (compute) + 50 (free)
	if got.Instr != 162 {
		t.Errorf("instr = %d, want 162", got.Instr)
	}
	if got.Cycles <= 0 {
		t.Error("cycles not computed")
	}
	if len(fa.mallocs) != 1 || fa.mallocs[0] != 3 {
		t.Errorf("allocator saw sites %v", fa.mallocs)
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	fa := &fakeAlloc{}
	m := New(fa, cfg())
	m.Free(mem.NilAddr)
	if len(fa.frees) != 0 {
		t.Error("nil free reached the allocator")
	}
	if m.Finish().Frees != 0 {
		t.Error("nil free counted")
	}
}

func TestStackSignatureReachesAllocator(t *testing.T) {
	fa := &fakeAlloc{}
	m := New(fa, cfg())
	m.Malloc(1, 8)
	m.Enter(7)
	m.Malloc(1, 8)
	m.Leave()
	m.Malloc(1, 8)
	if fa.stacks[0] != fa.stacks[2] {
		t.Error("same (empty) stack should produce same signature")
	}
	if fa.stacks[0] == fa.stacks[1] {
		t.Error("different stacks must produce different signatures")
	}
}

func TestRecorderIntegration(t *testing.T) {
	rec := trace.NewRecorder()
	m := New(&fakeAlloc{}, cfg(), WithRecorder(rec))
	a := m.Malloc(2, 32)
	m.Write(a, 16)
	b := m.Realloc(a, 64)
	m.Free(b)
	m.Finish()
	tr := rec.Trace()
	kinds := []trace.Kind{trace.KindAlloc, trace.KindAccess, trace.KindRealloc, trace.KindFree}
	if len(tr.Events) != len(kinds) {
		t.Fatalf("events = %d", len(tr.Events))
	}
	for i, k := range kinds {
		if tr.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
	}
	if tr.Instr == 0 {
		t.Error("recorder should receive the final instruction count")
	}
}

func TestBackendStallPct(t *testing.T) {
	var m Metrics
	if m.BackendStallPct() != 0 {
		t.Error("zero cycles should give 0 stalls")
	}
	m.Cycles = 200
	m.StallCycles = 50
	if m.BackendStallPct() != 25 {
		t.Errorf("stall pct = %v", m.BackendStallPct())
	}
}

func TestGroupSharedLLCAndParallelTime(t *testing.T) {
	g := NewGroup(&fakeAlloc{}, cfg(), 2, nil)
	e0, e1 := g.Env(0), g.Env(1)
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
	// Thread 0 warms a line; thread 1 should hit the shared LLC but miss
	// its own L1.
	e0.Read(0x5000, 8)
	e1.Read(0x5000, 8)
	threads, parallel, total := g.Finish()
	if len(threads) != 2 {
		t.Fatalf("threads = %d", len(threads))
	}
	if threads[1].Cache.LLCMisses != 0 {
		t.Error("thread 1 should hit shared LLC")
	}
	if threads[1].Cache.L1Misses != 1 {
		t.Error("thread 1 should miss its private L1")
	}
	if parallel < threads[0].Cycles && parallel < threads[1].Cycles {
		t.Error("parallel time must be the max of thread cycles")
	}
	if total.Cache.Accesses != 2 {
		t.Errorf("total accesses = %d", total.Cache.Accesses)
	}
}

func TestEnterLeaveCost(t *testing.T) {
	m := New(&fakeAlloc{}, cfg())
	m.Enter(1)
	m.Leave()
	if got := m.Finish().Instr; got != 3 {
		t.Errorf("call/return instr = %d, want 3", got)
	}
}

func TestMachineSpillRecorderParity(t *testing.T) {
	// Run the same program through both recorder implementations: the
	// spill file must decode to exactly the in-memory trace.
	program := func(m *Machine) {
		m.Enter(1)
		a := m.Malloc(3, 64)
		m.Write(a, 8)
		m.Read(a+16, 8)
		b := m.Malloc(4, 32)
		m.Read(b, 8)
		b = m.Realloc(b, 128)
		m.Write(b, 8)
		m.Compute(25)
		m.Free(a)
		m.Free(b)
		m.Leave()
	}

	mm := trace.NewRecorder()
	m1 := New(&fakeAlloc{}, cfg(), WithRecorder(mm))
	program(m1)
	met1 := m1.Finish()

	var buf bytes.Buffer
	sp, err := trace.NewSpillRecorder(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(&fakeAlloc{}, cfg(), WithRecorder(sp))
	program(m2)
	met2 := m2.Finish()
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	if met1 != met2 {
		t.Errorf("machine metrics diverge across recorders:\n %+v\n %+v", met1, met2)
	}
	want := mm.Trace()
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, want.Events) || got.Instr != want.Instr {
		t.Fatalf("spilled trace differs from in-memory trace:\n got %d events instr %d\nwant %d events instr %d",
			len(got.Events), got.Instr, len(want.Events), want.Instr)
	}
	if s := sp.Stats(); s.PeakBufferedEvents > 4 || s.Events != uint64(len(want.Events)) {
		t.Errorf("spill stats = %+v", s)
	}
}
