package machine

import (
	"encoding/json"
	"strings"
	"testing"

	"prefix/internal/cachesim"
	"prefix/internal/obs"
)

func sampleMetrics() Metrics {
	return Metrics{
		Instr:      1000,
		MemInstr:   400,
		AllocInstr: 100,
		Mallocs:    10,
		Frees:      8,
		Reallocs:   2,
		Cache: cachesim.Counts{
			Accesses: 400, L1Misses: 40, L2Hits: 5,
			LLCHits: 30, LLCMisses: 10,
			TLB1Miss: 4, TLB2Miss: 1, Prefetches: 10,
		},
		Cycles:      5000,
		StallCycles: 2000,
	}
}

// The JSON field names are a stable interface; this test pins them.
func TestMetricsJSONStableFields(t *testing.T) {
	b, err := json.Marshal(sampleMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"instr", "mem_instr", "alloc_instr", "mallocs", "frees", "reallocs",
		"cache", "cycles", "stall_cycles",
	} {
		if _, ok := m[field]; !ok {
			t.Errorf("JSON output missing stable field %q: %s", field, b)
		}
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache field is not an object: %s", b)
	}
	for _, field := range []string{
		"accesses", "l1_misses", "l2_hits", "llc_hits", "llc_misses",
		"tlb1_misses", "tlb2_misses", "prefetches",
	} {
		if _, ok := cache[field]; !ok {
			t.Errorf("cache JSON missing stable field %q: %s", field, b)
		}
	}

	var back Metrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != sampleMetrics() {
		t.Errorf("round trip changed metrics: got %+v want %+v", back, sampleMetrics())
	}
}

func TestMetricsString(t *testing.T) {
	s := sampleMetrics().String()
	for _, want := range []string{"cycles=5000", "instr=1000", "mallocs=10", "L1miss=10.000%", "stalls=40.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestMetricsPublish(t *testing.T) {
	reg := obs.NewRegistry()
	m := sampleMetrics()
	m.Publish(reg, "benchmark", "t", "run", "baseline")

	if got := reg.Counter("prefix_run_instructions_total", "benchmark", "t", "run", "baseline").Value(); got != 1000 {
		t.Errorf("instructions counter = %d, want 1000", got)
	}
	if got := reg.Counter("prefix_cache_l1_hits_total", "benchmark", "t", "run", "baseline").Value(); got != 360 {
		t.Errorf("l1 hits counter = %d, want 360 (accesses - l1 misses)", got)
	}
	if got := reg.Gauge("prefix_run_backend_stall_pct", "benchmark", "t", "run", "baseline").Value(); got != 40 {
		t.Errorf("stall pct gauge = %v, want 40", got)
	}

	// Publishing into a nil registry must be a no-op, not a panic.
	m.Publish(nil, "benchmark", "t")
}
