package machine

import (
	"io"
	"testing"

	"prefix/internal/mem"
	"prefix/internal/trace"
)

// benchLoop is a representative event mix: mostly accesses with a
// sprinkle of allocator traffic, like the table-3 workloads.
func benchLoop(m *Machine, n int) {
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			a := m.Malloc(mem.SiteID(i%7+1), 128)
			m.Write(a, 8)
			m.Free(a)
			continue
		}
		m.Read(mem.Addr(uint64(i)*192%(16<<20)), 8)
	}
}

func BenchmarkMachineEventLoop(b *testing.B) {
	b.Run("recording-free", func(b *testing.B) {
		m := New(&bumpAlloc{}, cfg())
		b.ReportAllocs()
		benchLoop(m, b.N)
	})
	b.Run("spill-recorded", func(b *testing.B) {
		sp, err := trace.NewSpillRecorder(io.Discard, 1<<14)
		if err != nil {
			b.Fatal(err)
		}
		m := New(&bumpAlloc{}, cfg(), WithRecorder(sp))
		b.ReportAllocs()
		benchLoop(m, b.N)
	})
}
