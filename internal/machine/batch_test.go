package machine

import (
	"testing"

	"prefix/internal/mem"
	"prefix/internal/trace"
)

// bumpAlloc is an allocation-free allocator for hot-path tests: a bump
// pointer and fixed instruction charges, no bookkeeping.
type bumpAlloc struct{ next mem.Addr }

func (a *bumpAlloc) Name() string { return "bump" }
func (a *bumpAlloc) Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (mem.Addr, uint64) {
	a.next += mem.Addr((size + 63) &^ 63)
	return a.next, 100
}
func (a *bumpAlloc) Free(addr mem.Addr) uint64 { return 50 }
func (a *bumpAlloc) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	a.next += mem.Addr((size + 63) &^ 63)
	return a.next, 150
}

// TestRecordingFreeLoopZeroAllocs: with no recorder attached, the whole
// access + malloc/free event loop must not allocate — the fast path is
// the hierarchy walk plus a few counter adds.
func TestRecordingFreeLoopZeroAllocs(t *testing.T) {
	m := New(&bumpAlloc{}, cfg())
	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		a := m.Malloc(1, 64)
		m.Write(a, 8)
		m.Read(a+mem.Addr(i%4096), 8)
		m.Free(a)
		i++
	}); n != 0 {
		t.Errorf("recording-free loop allocates %.2f per iteration", n)
	}
}

// TestGroupSharedRecorderOrder: machines in a group share one event
// batch, so the recorded stream must be exactly the interleaving the
// workload drove — not per-thread runs concatenated at flush time.
func TestGroupSharedRecorderOrder(t *testing.T) {
	rec := trace.NewRecorder()
	g := NewGroup(&bumpAlloc{}, cfg(), 2, rec)
	e0, e1 := g.Env(0), g.Env(1)

	a := e0.Malloc(1, 64) // event 0: alloc site 1
	b := e1.Malloc(2, 64) // event 1: alloc site 2
	e0.Write(a, 8)        // event 2: write
	e1.Read(b, 8)         // event 3: read
	e1.Free(b)            // event 4: free b
	e0.Free(a)            // event 5: free a
	g.Finish()

	evs := rec.Trace().Events
	want := []struct {
		kind trace.Kind
		site mem.SiteID
	}{
		{trace.KindAlloc, 1},
		{trace.KindAlloc, 2},
		{trace.KindAccess, 0},
		{trace.KindAccess, 0},
		{trace.KindFree, 0},
		{trace.KindFree, 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %d, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Site != w.site {
			t.Errorf("event %d = kind %v site %v, want kind %v site %v",
				i, evs[i].Kind, evs[i].Site, w.kind, w.site)
		}
	}
	if !evs[2].Write || evs[3].Write {
		t.Error("write/read flags out of order")
	}
	if evs[4].Addr != b || evs[5].Addr != a {
		t.Error("free addresses out of order")
	}
}

// TestBatchFlushBoundary drives more events than one batch holds so the
// mid-run flush path is exercised, and verifies nothing is lost,
// duplicated, or reordered around the boundary.
func TestBatchFlushBoundary(t *testing.T) {
	rec := trace.NewRecorder()
	m := New(&bumpAlloc{}, cfg(), WithRecorder(rec))
	const n = batchEvents*2 + 17
	for i := 0; i < n; i++ {
		m.Read(mem.Addr(i*8), 8)
	}
	m.Finish()
	evs := rec.Trace().Events
	if len(evs) != n {
		t.Fatalf("events = %d, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Kind != trace.KindAccess || ev.Addr != mem.Addr(i*8) {
			t.Fatalf("event %d = %+v, want access at %#x", i, ev, i*8)
		}
	}
}
