package machine

import (
	"sort"
	"strconv"

	"prefix/internal/cachesim"
	"prefix/internal/mem"
	"prefix/internal/obs"
)

// Attribution mode charges every simulated cache/TLB event to the malloc
// site whose live allocation the access touched, the object-centric view
// DJXPerf builds from PEBS samples and the paper builds from its trace.
// It is strictly optional: a machine without WithAttribution runs the
// exact PR 7 zero-allocation fast path (one nil check per access), and a
// machine with it pays one Counts snapshot-subtract plus one page-table
// lookup per access and O(live allocations + sites) memory.
//
// Accesses outside any live tracked allocation (globals, stack, freed
// memory, realloc'd-away ranges) land in a sentinel cell reported as
// site 0 / "other", so the per-site cells always sum to the aggregate
// hierarchy Counts exactly.

// attribSpan is one live allocation's intersection with one page,
// half-open [start, end). Spans within a page never overlap (live
// allocations are disjoint) and are kept sorted by start.
type attribSpan struct {
	start, end mem.Addr
	idx        int32
}

// rangeInfo remembers a live allocation's extent and owning cell so Free
// (which only sees the address) can unregister it.
type rangeInfo struct {
	end mem.Addr
	idx int32
}

// attrib is the per-machine attribution state: a dense site index, one
// flat Counts cell per site, and a page-keyed span table resolving an
// address to the cell of the allocation holding it.
type attrib struct {
	idxOf  map[mem.SiteID]int32
	sites  []mem.SiteID // cell index -> site id; sites[0] == 0 (sentinel)
	cells  []cachesim.Counts
	ranges map[mem.Addr]rangeInfo
	pages  map[uint64][]attribSpan
}

func newAttrib() *attrib {
	return &attrib{
		idxOf:  make(map[mem.SiteID]int32),
		sites:  []mem.SiteID{0},
		cells:  make([]cachesim.Counts, 1),
		ranges: make(map[mem.Addr]rangeInfo),
		pages:  make(map[uint64][]attribSpan),
	}
}

// cellOf returns the dense cell index for site, growing the flat arrays
// on first sight of a site.
func (a *attrib) cellOf(site mem.SiteID) int32 {
	idx, ok := a.idxOf[site]
	if !ok {
		idx = int32(len(a.cells))
		a.idxOf[site] = idx
		a.sites = append(a.sites, site)
		a.cells = append(a.cells, cachesim.Counts{})
	}
	return idx
}

// register tracks a fresh allocation [addr, addr+size) for site.
func (a *attrib) register(site mem.SiteID, addr mem.Addr, size uint64) {
	if addr == mem.NilAddr {
		return
	}
	a.registerIdx(a.cellOf(site), addr, size)
}

func (a *attrib) registerIdx(idx int32, addr mem.Addr, size uint64) {
	if size == 0 {
		size = 1
	}
	if _, live := a.ranges[addr]; live {
		// Defensive: an allocator re-serving a live address replaces the
		// stale attribution range rather than corrupting the span table.
		a.unregister(addr)
	}
	end := addr + mem.Addr(size)
	a.ranges[addr] = rangeInfo{end: end, idx: idx}
	last := uint64(end-1) >> mem.PageShift
	for p := uint64(addr) >> mem.PageShift; p <= last; p++ {
		ps := mem.Addr(p) << mem.PageShift
		s, e := addr, end
		if s < ps {
			s = ps
		}
		if pe := ps + mem.PageSize; e > pe {
			e = pe
		}
		spans := a.pages[p]
		i := sort.Search(len(spans), func(i int) bool { return spans[i].start >= s })
		spans = append(spans, attribSpan{})
		copy(spans[i+1:], spans[i:])
		spans[i] = attribSpan{start: s, end: e, idx: idx}
		a.pages[p] = spans
	}
}

// unregister drops the allocation starting at addr; unknown addresses
// (foreign frees the allocator tolerates) are ignored.
func (a *attrib) unregister(addr mem.Addr) {
	r, ok := a.ranges[addr]
	if !ok {
		return
	}
	delete(a.ranges, addr)
	last := uint64(r.end-1) >> mem.PageShift
	for p := uint64(addr) >> mem.PageShift; p <= last; p++ {
		ps := mem.Addr(p) << mem.PageShift
		s := addr
		if s < ps {
			s = ps
		}
		spans := a.pages[p]
		i := sort.Search(len(spans), func(i int) bool { return spans[i].start >= s })
		if i < len(spans) && spans[i].start == s {
			spans = append(spans[:i], spans[i+1:]...)
			if len(spans) == 0 {
				delete(a.pages, p)
			} else {
				a.pages[p] = spans
			}
		}
	}
}

// realloc moves attribution from old to nu, keeping the owning site. A
// realloc of an untracked address charges the new range to the sentinel.
func (a *attrib) realloc(old, nu mem.Addr, size uint64) {
	var idx int32
	if r, ok := a.ranges[old]; ok {
		idx = r.idx
		a.unregister(old)
	}
	if nu == mem.NilAddr {
		return
	}
	a.registerIdx(idx, nu, size)
}

// observe charges one access's Counts delta to the cell owning addr.
func (a *attrib) observe(addr mem.Addr, d cachesim.Counts) {
	a.cells[a.resolve(addr)].Add(d)
}

// resolve maps an address to its owning cell: the page's span with the
// greatest start <= addr, if it covers addr; the sentinel otherwise.
func (a *attrib) resolve(addr mem.Addr) int32 {
	spans := a.pages[uint64(addr)>>mem.PageShift]
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if spans[mid].start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		if sp := spans[lo-1]; addr < sp.end {
			return sp.idx
		}
	}
	return 0
}

// SiteAttrib is one site's attributed share of the run's simulation
// events. Site 0 collects unattributed traffic (globals, stack, freed
// memory); every other entry is a workload malloc site.
type SiteAttrib struct {
	Site        mem.SiteID      `json:"site"`
	Counts      cachesim.Counts `json:"counts"`
	StallCycles float64         `json:"stall_cycles"`
}

// AttribCounts is a run's attribution snapshot: per-site event counts
// whose sum equals the aggregate hierarchy Counts exactly (every access
// delta lands in exactly one cell). Sites are sorted by id, sentinel
// first; the zero value (Enabled false) is what a machine without
// attribution returns.
type AttribCounts struct {
	Enabled bool         `json:"enabled"`
	Sites   []SiteAttrib `json:"sites,omitempty"`
}

// Total sums every cell, reproducing the run's aggregate Counts.
func (a AttribCounts) Total() cachesim.Counts {
	var t cachesim.Counts
	for _, s := range a.Sites {
		t.Add(s.Counts)
	}
	return t
}

// Of returns the entry for site, if present.
func (a AttribCounts) Of(site mem.SiteID) (SiteAttrib, bool) {
	for _, s := range a.Sites {
		if s.Site == site {
			return s, true
		}
	}
	return SiteAttrib{}, false
}

// Top returns up to n real sites (the sentinel is excluded) ordered by
// LLC misses descending, then L1 misses, then site id — the DJXPerf-style
// "which objects cause the misses" ranking.
func (a AttribCounts) Top(n int) []SiteAttrib {
	top := make([]SiteAttrib, 0, len(a.Sites))
	for _, s := range a.Sites {
		if s.Site != 0 {
			top = append(top, s)
		}
	}
	sort.Slice(top, func(i, j int) bool {
		ci, cj := top[i].Counts, top[j].Counts
		if ci.LLCMisses != cj.LLCMisses {
			return ci.LLCMisses > cj.LLCMisses
		}
		if ci.L1Misses != cj.L1Misses {
			return ci.L1Misses > cj.L1Misses
		}
		return top[i].Site < top[j].Site
	})
	if n > 0 && len(top) > n {
		top = top[:n]
	}
	return top
}

// LLCMissSharePct is site's percentage of the run's total LLC misses.
func (a AttribCounts) LLCMissSharePct(site mem.SiteID) float64 {
	total := a.Total().LLCMisses
	if total == 0 {
		return 0
	}
	s, ok := a.Of(site)
	if !ok {
		return 0
	}
	return 100 * float64(s.Counts.LLCMisses) / float64(total)
}

// siteLabel renders a site id as a metric label value; the sentinel cell
// becomes "other" so dashboards don't show a phantom site 0.
func siteLabel(s mem.SiteID) string {
	if s == 0 {
		return "other"
	}
	return strconv.FormatUint(uint64(s), 10)
}

// Publish reports the per-site attribution series under the given label
// pairs plus a "site" label. Nil-safe and a no-op for disabled snapshots.
func (a AttribCounts) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil || !a.Enabled {
		return
	}
	totalLLC := a.Total().LLCMisses
	for _, s := range a.Sites {
		skv := make([]string, 0, len(kv)+2)
		skv = append(append(skv, kv...), "site", siteLabel(s.Site))
		c := s.Counts
		reg.Counter("prefix_attrib_accesses_total", skv...).Add(c.Accesses)
		reg.Counter("prefix_attrib_l1_misses_total", skv...).Add(c.L1Misses)
		reg.Counter("prefix_attrib_llc_misses_total", skv...).Add(c.LLCMisses)
		reg.Counter("prefix_attrib_tlb_misses_total", skv...).Add(c.TLB1Miss + c.TLB2Miss)
		reg.Gauge("prefix_attrib_stall_cycles", skv...).Set(s.StallCycles)
		if totalLLC > 0 {
			reg.Gauge("prefix_attrib_llc_miss_share", skv...).Set(float64(c.LLCMisses) / float64(totalLLC))
		}
	}
}
