package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) rate = %v", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 50 heavily under s=1.
	if counts[0] < 10*counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n<=0) should panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}
