// Package xrand provides a small deterministic pseudo-random number
// generator used by the synthetic workloads. Workload traces must be
// byte-for-byte reproducible across runs and Go releases (math/rand's
// top-level generator is seeded randomly and its algorithm is not part of
// the compatibility promise), so the workloads use this fixed splitmix64 /
// xoshiro-style generator instead.
package xrand

import "math"

// Rand is a deterministic PRNG. The zero value is not valid; use New.
type Rand struct {
	s0, s1 uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds still produce uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xoroshiro state must not be all zero
	}
	return r
}

// Uint64 returns the next 64 random bits (xoroshiro128+).
func (r *Rand) Uint64() uint64 {
	s0, s1 := r.s0, r.s1
	result := s0 + s1
	s1 ^= s0
	r.s0 = rotl(s0, 55) ^ s1 ^ (s1 << 14)
	r.s1 = rotl(s1, 36)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent s > 0: rank 0 is most likely. It uses inverse-CDF sampling over
// a precomputed table when wrapped in a Zipf value; for one-off draws use
// NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / powf(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw returns the next rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func powf(x, s float64) float64 { return math.Pow(x, s) }
