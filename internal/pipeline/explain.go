package pipeline

import (
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/prefix"
)

// SiteShare is one site's attributed slice of a run.
type SiteShare struct {
	Accesses    uint64  `json:"accesses"`
	LLCMisses   uint64  `json:"llc_misses"`
	SharePct    float64 `json:"share_pct"` // of the run's total LLC misses
	StallCycles float64 `json:"stall_cycles"`
}

// ExplainTopSites is how many top sites (by baseline LLC-miss share) the
// suite runner's explain documents cover.
const ExplainTopSites = 8

// maxSiteDecisions caps how many placement decisions an Explain document
// quotes per site (a site can place hundreds of objects; the ledger has
// them all, the document shows the first few plus the total).
const maxSiteDecisions = 3

// SiteExplain joins one site's before/after attribution with the ledger
// decisions that shaped its layout: classification, sharing, recycling,
// and (capped) placements.
type SiteExplain struct {
	Site     mem.SiteID `json:"site"`
	Baseline SiteShare  `json:"baseline"`
	Best     SiteShare  `json:"best"`
	// Decisions are the site's ledger entries from the best variant's
	// plan build; placement entries are capped at maxSiteDecisions,
	// Placements is the uncapped slot count.
	Decisions  []prefix.Decision `json:"decisions,omitempty"`
	Placements int               `json:"placements"`
}

// Explain is the per-benchmark explainability document: which sites
// caused the baseline's LLC misses, what each costs after the best
// PreFix variant, and why the planner placed them where it did. The
// /explain endpoint and prefix-explain CLI render it.
type Explain struct {
	Benchmark string `json:"benchmark"`
	Variant   string `json:"variant"` // best PreFix variant
	// Totals over all sites (including unattributed traffic).
	BaselineLLCMisses uint64 `json:"baseline_llc_misses"`
	BestLLCMisses     uint64 `json:"best_llc_misses"`
	// Sites are the top-N sites by baseline LLC-miss share.
	Sites []SiteExplain `json:"sites"`
	// Decisions counts the best variant's full ledger.
	Decisions int `json:"decisions"`
}

// shareOf extracts one site's slice from an attribution snapshot.
func shareOf(a machine.AttribCounts, site mem.SiteID, totalLLC uint64) SiteShare {
	s, ok := a.Of(site)
	if !ok {
		return SiteShare{}
	}
	sh := SiteShare{
		Accesses:    s.Counts.Accesses,
		LLCMisses:   s.Counts.LLCMisses,
		StallCycles: s.StallCycles,
	}
	if totalLLC > 0 {
		sh.SharePct = 100 * float64(s.Counts.LLCMisses) / float64(totalLLC)
	}
	return sh
}

// siteDecisions selects a site's ledger entries for the document: every
// classification/sharing/recycling decision, plus up to maxSiteDecisions
// placements. The full placement count is returned separately.
func siteDecisions(led *prefix.Ledger, site mem.SiteID) (ds []prefix.Decision, placements int) {
	for _, d := range led.ForSite(site) {
		if d.Stage == prefix.StagePlacement {
			placements++
			if placements > maxSiteDecisions {
				continue
			}
		}
		ds = append(ds, d)
	}
	return ds, placements
}

// BuildExplain assembles the explain document for one attributed
// comparison: the top-N sites by baseline LLC-miss share, each joined
// with its best-variant attribution and ledger decisions. Returns nil
// when the comparison ran without attribution.
func BuildExplain(c *Comparison, topN int) *Explain {
	if c == nil || !c.Baseline.Attrib.Enabled {
		return nil
	}
	best := c.BestResult()
	led := c.Summaries[c.Best].Ledger
	baseTotal := c.Baseline.Attrib.Total().LLCMisses
	bestTotal := best.Attrib.Total().LLCMisses
	ex := &Explain{
		Benchmark:         c.Benchmark,
		Variant:           c.Best.String(),
		BaselineLLCMisses: baseTotal,
		BestLLCMisses:     bestTotal,
		Decisions:         led.Len(),
	}
	for _, s := range c.Baseline.Attrib.Top(topN) {
		se := SiteExplain{
			Site:     s.Site,
			Baseline: shareOf(c.Baseline.Attrib, s.Site, baseTotal),
			Best:     shareOf(best.Attrib, s.Site, bestTotal),
		}
		se.Decisions, se.Placements = siteDecisions(led, s.Site)
		ex.Sites = append(ex.Sites, se)
	}
	return ex
}
