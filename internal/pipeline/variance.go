package pipeline

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"prefix/internal/obs"
	"prefix/internal/workloads"
)

// Variance is the seed-sweep analogue of the paper's "execution times
// ... are averaged over 10 runs": the evaluation input's seed is
// perturbed N times (different inputs of the same shape) and the
// best-variant reduction is summarized.
type Variance struct {
	Benchmark string
	Runs      int
	MeanPct   float64
	MinPct    float64 // most negative (best) observed reduction
	MaxPct    float64 // least negative (worst) observed reduction
	Deltas    []float64
}

// RunVariance evaluates one benchmark across `runs` perturbed evaluation
// seeds using a single plan from the unperturbed profile — exactly the
// deployment situation: one profile, many inputs.
func RunVariance(name string, runs int, opt Options) (*Variance, error) {
	vs, err := RunSuiteVariance([]string{name}, runs, opt, 1)
	if err != nil {
		return nil, err
	}
	return vs[0], nil
}

// RunSuiteVariance evaluates every named benchmark across `runs`
// perturbed evaluation seeds on one bounded worker pool of `jobs`
// workers (1 = the serial path). The unit of work is one
// (benchmark, seed) evaluation; the profile is collected exactly once
// per benchmark — the first of its seed jobs to run collects it under
// the benchmark's "variance" root span, and the remaining seeds reuse
// the shared *Profile, which compareStrategies treats as read-only.
// Each seed evaluation runs under its own "seed N" child span and
// publishes its metrics with a "seed" label, so N runs produce N
// distinguishable series in the export. Deltas are indexed by seed,
// never by completion order, so the summary is identical at any job
// count.
func RunSuiteVariance(names []string, runs int, opt Options, jobs int) ([]*Variance, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("pipeline: runs must be positive")
	}
	if len(opt.Variants) == 0 {
		opt.Variants = DefaultOptions().Variants
	}
	type benchState struct {
		spec    workloads.Spec
		base    workloads.Config
		once    sync.Once
		root    *obs.Span
		prof    *Profile
		profErr error
		pending atomic.Int64
		deltas  []float64
	}
	states := make([]*benchState, len(names))
	for i, name := range names {
		spec, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		st := &benchState{spec: spec, base: evalConfig(spec, opt), deltas: make([]float64, runs)}
		st.pending.Store(int64(runs))
		states[i] = st
	}

	// Jobs are ordered seed-major (the benchmark index varies fastest) so
	// the per-benchmark profile collections — every seed's shared
	// dependency — start in parallel instead of the whole pool blocking
	// on one benchmark's profile.
	nb := len(names)
	seedJob := func(st *benchState, name string, si int) error {
		defer func() {
			// The last seed to finish closes the benchmark's root span.
			if st.pending.Add(-1) == 0 {
				st.root.End()
			}
		}()
		st.once.Do(func() {
			st.root = opt.Tracer.Start("variance " + name)
			span := st.root.Child("profile")
			st.prof, st.profErr = collectProfile(st.spec, opt, span)
			span.End()
		})
		if st.profErr != nil {
			if si == 0 {
				return st.profErr
			}
			return nil // already reported by the benchmark's seed-0 job
		}
		cfg := st.base
		cfg.Seed = st.base.Seed + uint64(si)*1_000_003
		runSpec := st.spec
		if opt.UseBenchScale {
			runSpec.Bench = cfg
		} else {
			runSpec.Long = cfg
		}
		seedOpt := opt
		seedOpt.Labels = append(append([]string(nil), opt.Labels...), "seed", strconv.Itoa(si))
		span := st.root.Child("seed " + strconv.Itoa(si))
		sc := opt.Perf.Begin("variance").AttachSpan(span)
		// Keep the profiling input fixed: the plan must survive input
		// changes (Table 5's claim).
		cmp, err := compareStrategies(runSpec, seedOpt, st.prof, span)
		if err == nil {
			// cmp.Events counts only this seed's evaluation runs; the
			// shared profile is accounted by its own "profile" scope.
			sc.AddEvents(cmp.Events)
		}
		sc.End()
		span.End()
		if err != nil {
			return fmt.Errorf("seed %d: %w", si, err)
		}
		st.deltas[si] = cmp.BestResult().TimeDeltaPct(cmp.Baseline)
		return nil
	}
	errs := runJobs(nb*runs, jobs, func(j int) error {
		bi, si := j%nb, j/nb
		ev := obs.JobEvent{Phase: "variance", Benchmark: names[bi], Job: j, Jobs: nb * runs, Seed: si, Seeds: runs}
		return opt.instrumentJob(ev, func() error {
			return seedJob(states[bi], names[bi], si)
		})
	})
	if err := joinErrors(errs, func(j int) string { return names[j%nb] }); err != nil {
		return nil, err
	}

	out := make([]*Variance, len(names))
	for i, st := range states {
		v := &Variance{Benchmark: names[i], Runs: runs, Deltas: st.deltas}
		for si, d := range st.deltas {
			v.MeanPct += d
			if si == 0 || d < v.MinPct {
				v.MinPct = d
			}
			if si == 0 || d > v.MaxPct {
				v.MaxPct = d
			}
		}
		v.MeanPct /= float64(runs)
		out[i] = v
	}
	return out, nil
}
