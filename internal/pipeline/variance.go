package pipeline

import (
	"fmt"

	"prefix/internal/workloads"
)

// Variance is the seed-sweep analogue of the paper's "execution times
// ... are averaged over 10 runs": the evaluation input's seed is
// perturbed N times (different inputs of the same shape) and the
// best-variant reduction is summarized.
type Variance struct {
	Benchmark string
	Runs      int
	MeanPct   float64
	MinPct    float64 // most negative (best) observed reduction
	MaxPct    float64 // least negative (worst) observed reduction
	Deltas    []float64
}

// RunVariance evaluates one benchmark across `runs` perturbed evaluation
// seeds using a single plan from the unperturbed profile — exactly the
// deployment situation: one profile, many inputs.
func RunVariance(name string, runs int, opt Options) (*Variance, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("pipeline: runs must be positive")
	}
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	v := &Variance{Benchmark: name, Runs: runs}
	base := evalConfig(spec, opt)
	for i := 0; i < runs; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)*1_000_003
		runSpec := spec
		if opt.UseBenchScale {
			runSpec.Bench = cfg
		} else {
			runSpec.Long = cfg
		}
		// Keep the profiling input fixed: the plan must survive input
		// changes (Table 5's claim).
		cmp, err := runComparison(runSpec, opt)
		if err != nil {
			return nil, err
		}
		d := cmp.BestResult().TimeDeltaPct(cmp.Baseline)
		v.Deltas = append(v.Deltas, d)
		v.MeanPct += d
		if i == 0 || d < v.MinPct {
			v.MinPct = d
		}
		if i == 0 || d > v.MaxPct {
			v.MaxPct = d
		}
	}
	v.MeanPct /= float64(runs)
	return v, nil
}

// runComparison is RunBenchmark for an already-resolved (possibly
// modified) spec.
func runComparison(spec workloads.Spec, opt Options) (*Comparison, error) {
	if len(opt.Variants) == 0 {
		opt.Variants = DefaultOptions().Variants
	}
	root := opt.Tracer.Start("benchmark " + spec.Program.Name())
	defer root.End()
	profSpan := root.Child("profile")
	prof, err := collectProfile(spec, opt, profSpan)
	profSpan.End()
	if err != nil {
		return nil, err
	}
	return compareStrategies(spec, opt, prof, root)
}
