package pipeline

import (
	"testing"

	"prefix/internal/machine"
	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

// TestCrossPlanFailureInjection runs every benchmark under a plan built
// for a *different* benchmark — the worst possible profile mismatch. The
// §2.3 correctness argument says the program must still run to
// completion (wrong captures only change placement, never semantics);
// this is the strongest failure-injection test the transformation can
// face short of memory corruption.
func TestCrossPlanFailureInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many cross pairs")
	}
	opt := fastOpt()
	// A plan from ft (all-ids, tiny objects) applied to everything else.
	ftSpec, err := workloads.Get("ft")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(ftSpec, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.Plan
	cfg.Benchmark = "ft"
	cfg.Variant = prefix.VariantHot
	foreign, _, err := prefix.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"mcf", "swissmap", "health", "perl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			alloc := prefix.NewAllocator(foreign, opt.Cache.Cost)
			m := machine.New(alloc, opt.Cache)
			// Must not panic and must complete the whole run.
			spec.Program.Run(m, spec.Profile)
			got := m.Finish()
			if got.Mallocs == 0 {
				t.Fatal("run did nothing")
			}
			// The foreign plan may capture some same-numbered sites'
			// allocations (harmless) but the size guard must keep every
			// placement inside its slot: validated implicitly by the
			// allocator's bookkeeping — we assert it didn't blow up and
			// the capture stats are consistent.
			cap := alloc.Capture()
			if cap.MallocsAvoided+cap.FallbackMallocs != got.Mallocs {
				t.Errorf("capture accounting inconsistent: %d+%d != %d",
					cap.MallocsAvoided, cap.FallbackMallocs, got.Mallocs)
			}
		})
	}
}
