package pipeline

import (
	"fmt"

	"prefix/internal/baselines"
	"prefix/internal/machine"
	"prefix/internal/obs"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// MTResult is one point of the Figure 10 evaluation: the benchmark run
// with k threads under the baseline and under the best PreFix plan, and
// the relative improvement of modeled parallel time.
type MTResult struct {
	Threads        int
	BaselineCycles float64
	PreFixCycles   float64
	ImprovementPct float64 // positive = PreFix faster, the Figure 10 y-axis
	CallsAvoided   uint64
}

// RunMultithreaded reproduces the §3.3 multithreading experiment for one
// benchmark: the trace is collected once (single-threaded profiling run,
// default configuration), the plan is built once, and the optimized
// program is then run with each thread count. Only benchmarks whose
// program implements workloads.MultiThreaded are eligible.
func RunMultithreaded(name string, threadCounts []int, opt Options) ([]MTResult, error) {
	return RunMultithreadedJobs(name, threadCounts, opt, 1)
}

// RunMultithreadedJobs is RunMultithreaded with the thread-count sweep
// run on a bounded worker pool of `jobs` workers. Every thread count
// evaluates against the same read-only plan with its own machine group,
// and results are indexed by position in threadCounts, so the Figure 10
// series is identical at any job count.
func RunMultithreadedJobs(name string, threadCounts []int, opt Options, jobs int) ([]MTResult, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	mt, ok := spec.Program.(workloads.MultiThreaded)
	if !ok {
		return nil, fmt.Errorf("pipeline: %s is not multithreaded", name)
	}
	// "The traces were collected only once from these benchmarks with the
	// number of threads set to the default value" (§3.3): profile with
	// the default thread count, then optimize once and evaluate at every
	// thread count.
	const defaultThreads = 4
	profScope := opt.Perf.Begin("profile")
	rec := trace.NewRecorder()
	profGroup := machine.NewGroup(baselines.NewBaseline(opt.Cache.Cost), opt.Cache, defaultThreads, rec)
	pcfg := spec.Profile
	pcfg.Threads = defaultThreads
	runGroup(mt, profGroup, pcfg, defaultThreads)
	profGroup.Finish()
	profScope.AddEvents(rec.Stats().Events)
	analysis := trace.Analyze(rec.Trace())
	profScope.End()
	if analysis.HeapAccesses == 0 {
		return nil, fmt.Errorf("pipeline: %s multithreaded profile has no heap accesses", name)
	}

	cfg := opt.Plan
	cfg.Benchmark = name
	cfg.Variant = prefix.VariantHot // mysql/mcf best configurations use Hot
	plan, _, err := prefix.BuildPlanFromHot(analysis, prefix.SelectHot(analysis, cfg), cfg)
	if err != nil {
		return nil, err
	}

	root := opt.Tracer.Start("multithreaded " + name)
	defer root.End()

	base := evalConfig(spec, opt)
	out := make([]MTResult, len(threadCounts))
	errs := runJobs(len(threadCounts), jobs, func(i int) error {
		k := threadCounts[i]
		ev := obs.JobEvent{Phase: "multithreaded", Benchmark: name, Job: i, Jobs: len(threadCounts), Seed: -1, Threads: k}
		return opt.instrumentJob(ev, func() error {
			wcfg := base
			wcfg.Threads = k
			span := root.Child(fmt.Sprintf("eval threads=%d", k))
			sc := opt.Perf.Begin("multithreaded").AttachSpan(span)
			defer sc.End()

			baseGroup := machine.NewGroup(baselines.NewBaseline(opt.Cache.Cost), opt.Cache, k, nil)
			runGroup(mt, baseGroup, wcfg, k)
			_, baseCycles, baseTotal := baseGroup.Finish()

			alloc := prefix.NewAllocator(plan, opt.Cache.Cost)
			optGroup := machine.NewGroup(alloc, opt.Cache, k, nil)
			runGroup(mt, optGroup, wcfg, k)
			_, optCycles, optTotal := optGroup.Finish()
			sc.AddEvents(baseTotal.Events() + optTotal.Events())

			if reg := opt.Metrics; reg != nil {
				threads := fmt.Sprint(k)
				kv := func(run string) []string {
					return append([]string{"benchmark", name, "run", run, "threads", threads}, opt.Labels...)
				}
				baseTotal.Publish(reg, kv("baseline")...)
				optTotal.Publish(reg, kv("prefix")...)
				alloc.Publish(reg, kv("prefix")...)
			}
			span.Set("threads", k)
			span.End()

			r := MTResult{
				Threads:        k,
				BaselineCycles: baseCycles,
				PreFixCycles:   optCycles,
				CallsAvoided:   alloc.Capture().CallsAvoided(),
			}
			if baseCycles > 0 {
				r.ImprovementPct = 100 * (baseCycles - optCycles) / baseCycles
			}
			out[i] = r
			return nil
		})
	})
	if err := joinErrors(errs, func(i int) string {
		return fmt.Sprintf("%s threads=%d", name, threadCounts[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func runGroup(mt workloads.MultiThreaded, g *machine.Group, cfg workloads.Config, k int) {
	envs := make([]machine.Env, k)
	for i := 0; i < k; i++ {
		envs[i] = g.Env(i)
	}
	mt.RunMT(envs, cfg)
}
