package pipeline

import (
	"fmt"

	"prefix/internal/baselines"
	"prefix/internal/machine"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// MTResult is one point of the Figure 10 evaluation: the benchmark run
// with k threads under the baseline and under the best PreFix plan, and
// the relative improvement of modeled parallel time.
type MTResult struct {
	Threads        int
	BaselineCycles float64
	PreFixCycles   float64
	ImprovementPct float64 // positive = PreFix faster, the Figure 10 y-axis
	CallsAvoided   uint64
}

// RunMultithreaded reproduces the §3.3 multithreading experiment for one
// benchmark: the trace is collected once (single-threaded profiling run,
// default configuration), the plan is built once, and the optimized
// program is then run with each thread count. Only benchmarks whose
// program implements workloads.MultiThreaded are eligible.
func RunMultithreaded(name string, threadCounts []int, opt Options) ([]MTResult, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	mt, ok := spec.Program.(workloads.MultiThreaded)
	if !ok {
		return nil, fmt.Errorf("pipeline: %s is not multithreaded", name)
	}
	// "The traces were collected only once from these benchmarks with the
	// number of threads set to the default value" (§3.3): profile with
	// the default thread count, then optimize once and evaluate at every
	// thread count.
	const defaultThreads = 4
	rec := trace.NewRecorder()
	profGroup := machine.NewGroup(baselines.NewBaseline(opt.Cache.Cost), opt.Cache, defaultThreads, rec)
	pcfg := spec.Profile
	pcfg.Threads = defaultThreads
	runGroup(mt, profGroup, pcfg, defaultThreads)
	profGroup.Finish()
	analysis := trace.Analyze(rec.Trace())
	if analysis.HeapAccesses == 0 {
		return nil, fmt.Errorf("pipeline: %s multithreaded profile has no heap accesses", name)
	}

	cfg := opt.Plan
	cfg.Benchmark = name
	cfg.Variant = prefix.VariantHot // mysql/mcf best configurations use Hot
	plan, _, err := prefix.BuildPlanFromHot(analysis, prefix.SelectHot(analysis, cfg), cfg)
	if err != nil {
		return nil, err
	}

	root := opt.Tracer.Start("multithreaded " + name)
	defer root.End()

	wcfg := evalConfig(spec, opt)
	var out []MTResult
	for _, k := range threadCounts {
		wcfg.Threads = k
		span := root.Child(fmt.Sprintf("eval threads=%d", k))

		baseGroup := machine.NewGroup(baselines.NewBaseline(opt.Cache.Cost), opt.Cache, k, nil)
		runGroup(mt, baseGroup, wcfg, k)
		_, baseCycles, baseTotal := baseGroup.Finish()

		alloc := prefix.NewAllocator(plan, opt.Cache.Cost)
		optGroup := machine.NewGroup(alloc, opt.Cache, k, nil)
		runGroup(mt, optGroup, wcfg, k)
		_, optCycles, optTotal := optGroup.Finish()

		if reg := opt.Metrics; reg != nil {
			threads := fmt.Sprint(k)
			baseTotal.Publish(reg, "benchmark", name, "run", "baseline", "threads", threads)
			optTotal.Publish(reg, "benchmark", name, "run", "prefix", "threads", threads)
			alloc.Publish(reg, "benchmark", name, "run", "prefix", "threads", threads)
		}
		span.Set("threads", k)
		span.End()

		r := MTResult{
			Threads:        k,
			BaselineCycles: baseCycles,
			PreFixCycles:   optCycles,
			CallsAvoided:   alloc.Capture().CallsAvoided(),
		}
		if baseCycles > 0 {
			r.ImprovementPct = 100 * (baseCycles - optCycles) / baseCycles
		}
		out = append(out, r)
	}
	return out, nil
}

func runGroup(mt workloads.MultiThreaded, g *machine.Group, cfg workloads.Config, k int) {
	envs := make([]machine.Env, k)
	for i := 0; i < k; i++ {
		envs[i] = g.Env(i)
	}
	mt.RunMT(envs, cfg)
}
