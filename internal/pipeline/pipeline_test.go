package pipeline

import (
	"path/filepath"
	"reflect"
	"testing"

	"prefix/internal/obs"
	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

// fastOpt is the cheapest full-pipeline configuration for unit tests.
func fastOpt() Options {
	opt := DefaultOptions()
	opt.UseBenchScale = true
	return opt
}

func TestCollectProfile(t *testing.T) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(spec, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Analysis.HeapAccesses == 0 || len(prof.Hot.Objects) == 0 {
		t.Error("profile is empty")
	}
	if len(prof.StreamsLCS) == 0 {
		t.Error("LCS mining found nothing on mcf")
	}
	if prof.Metrics.Cycles <= 0 {
		t.Error("profile metrics missing")
	}
}

func TestRunBenchmarkStructure(t *testing.T) {
	cmp, err := RunBenchmark("ft", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Benchmark != "ft" {
		t.Error("name lost")
	}
	if cmp.Baseline.Metrics.Cycles <= 0 || cmp.HDS.Metrics.Cycles <= 0 || cmp.HALO.Metrics.Cycles <= 0 {
		t.Error("missing strategy runs")
	}
	for _, v := range []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot} {
		if _, ok := cmp.PreFix[v]; !ok {
			t.Errorf("missing variant %v", v)
		}
		if cmp.Plans[v] == nil || cmp.Summaries[v] == nil {
			t.Errorf("missing plan/summary for %v", v)
		}
	}
	if cmp.HDS.Pollution == nil || cmp.HALO.Pollution == nil {
		t.Error("baselines must report pollution")
	}
	if cmp.BestResult().Capture == nil {
		t.Error("PreFix runs must report capture")
	}
	// Best must be the variant with the fewest cycles.
	best := cmp.PreFix[cmp.Best].Metrics.Cycles
	for v, r := range cmp.PreFix {
		if r.Metrics.Cycles < best {
			t.Errorf("best=%v but %v is faster", cmp.Best, v)
		}
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", fastOpt()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestCaptureLongRun(t *testing.T) {
	opt := fastOpt()
	opt.CaptureLongRun = true
	cmp, err := RunBenchmark("ft", opt)
	if err != nil {
		t.Fatal(err)
	}
	lr := cmp.LongRun
	if lr == nil {
		t.Fatal("long-run capture missing")
	}
	// The paper's claim (Table 5): the preallocated region serves a high
	// share of heap accesses and captures only hot objects.
	if lr.HeapAccessPct < 50 {
		t.Errorf("long-run HA%% = %.1f, want high", lr.HeapAccessPct)
	}
	if lr.HotObjects == 0 {
		t.Error("no hot objects captured")
	}
	spurious := lr.CapturedObjects - lr.HotObjects
	if float64(spurious) > 0.05*float64(lr.CapturedObjects) {
		t.Errorf("pollution in PreFix region: %d of %d captured objects not hot",
			spurious, lr.CapturedObjects)
	}
}

func TestTimeDeltaPct(t *testing.T) {
	base := RunResult{}
	base.Metrics.Cycles = 200
	r := RunResult{}
	r.Metrics.Cycles = 150
	if got := r.TimeDeltaPct(base); got != -25 {
		t.Errorf("delta = %v", got)
	}
	var zero RunResult
	if r.TimeDeltaPct(zero) != 0 {
		t.Error("zero baseline must not divide by zero")
	}
}

func TestRunMultithreaded(t *testing.T) {
	results, err := RunMultithreaded("mcf", []int{1, 2}, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.BaselineCycles <= 0 || r.PreFixCycles <= 0 {
			t.Errorf("empty MT result: %+v", r)
		}
	}
	if results[1].BaselineCycles >= results[0].BaselineCycles {
		t.Error("two threads should have lower parallel time than one")
	}
}

func TestRunMultithreadedRejectsSingleThreaded(t *testing.T) {
	if _, err := RunMultithreaded("health", []int{1}, fastOpt()); err == nil {
		t.Error("single-threaded benchmark accepted")
	}
}

func TestTraceBaselineAndBest(t *testing.T) {
	base, best, variant, err := TraceBaselineAndBest("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Events) == 0 || len(best.Events) == 0 {
		t.Error("empty traces")
	}
	// The traced variant must be the one compareStrategies would crown.
	cmp, err := RunBenchmark("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if variant != cmp.Best {
		t.Errorf("traced variant = %v, but the comparison's best is %v", variant, cmp.Best)
	}
}

// TestCollectProfileStreamingParity is the tentpole acceptance check at
// the pipeline layer: the bounded-memory streaming profile must be
// identical to the in-memory reference profile.
func TestCollectProfileStreamingParity(t *testing.T) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CollectProfile(spec, fastOpt())
	if err != nil {
		t.Fatal(err)
	}

	opt := fastOpt()
	opt.Stream = true
	opt.StreamChunkEvents = 512
	opt.StreamDir = t.TempDir()
	opt.Metrics = obs.NewRegistry()
	streamed, err := CollectProfile(spec, opt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Analysis, streamed.Analysis) {
		t.Error("streaming analysis differs from in-memory analysis")
	}
	if !reflect.DeepEqual(plain.Hot, streamed.Hot) {
		t.Error("hot sets differ")
	}
	if !reflect.DeepEqual(plain.StreamsLCS, streamed.StreamsLCS) ||
		!reflect.DeepEqual(plain.StreamsSequitur, streamed.StreamsSequitur) {
		t.Error("mined streams differ")
	}
	if plain.Metrics != streamed.Metrics {
		t.Errorf("profiling-run metrics differ:\n plain %+v\nstream %+v", plain.Metrics, streamed.Metrics)
	}

	// The recorder metrics must reflect a genuinely bounded run.
	reg := opt.Metrics
	events := reg.Counter("prefix_trace_recorded_events_total", "benchmark", "mcf").Value()
	if events != uint64(plain.Analysis.Events) {
		t.Errorf("recorded events = %d, want %d", events, plain.Analysis.Events)
	}
	if chunks := reg.Counter("prefix_trace_spilled_chunks_total", "benchmark", "mcf").Value(); chunks == 0 {
		t.Error("no chunks spilled at chunk size 512")
	}
	if peak := reg.Gauge("prefix_trace_peak_buffered_events", "benchmark", "mcf").Value(); peak > 512 {
		t.Errorf("peak buffered events = %v, above the 512 budget", peak)
	}
}

// TestRunBenchmarkStreamingParity runs the full pipeline with streaming
// profiles: every downstream number must be unchanged.
func TestRunBenchmarkStreamingParity(t *testing.T) {
	plain, err := RunBenchmark("ft", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt()
	opt.Stream = true
	opt.StreamChunkEvents = 1024
	opt.StreamDir = t.TempDir()
	streamed, err := RunBenchmark("ft", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Baseline.Metrics, streamed.Baseline.Metrics) {
		t.Error("baseline metrics differ under streaming profiles")
	}
	for _, v := range fastOpt().Variants {
		if plain.PreFix[v].Metrics != streamed.PreFix[v].Metrics {
			t.Errorf("%v metrics differ under streaming profiles", v)
		}
	}
	if plain.Best != streamed.Best {
		t.Errorf("best variant differs: plain %v, streamed %v", plain.Best, streamed.Best)
	}
}

// TestCollectProfileStreamBadDir surfaces spill-file creation failures
// as errors instead of panics.
func TestCollectProfileStreamBadDir(t *testing.T) {
	spec, err := workloads.Get("ft")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt()
	opt.Stream = true
	opt.StreamDir = filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, err := CollectProfile(spec, opt); err == nil {
		t.Fatal("missing spill dir should fail profile collection")
	}
}
