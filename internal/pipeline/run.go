package pipeline

import (
	"fmt"

	"prefix/internal/baselines"
	"prefix/internal/hds"
	"prefix/internal/machine"
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// RunResult is one evaluation run under one allocation strategy.
type RunResult struct {
	Strategy  string
	Metrics   machine.Metrics
	PeakBytes uint64
	// Attrib is the per-site attribution snapshot (Enabled only when the
	// run executed with Options.Attribution).
	Attrib machine.AttribCounts
	// Pollution is set for the HDS and HALO baselines (Table 4).
	Pollution *baselines.Pollution
	// Capture is set for PreFix runs (Tables 5 and 6).
	Capture *prefix.Capture
	// Trace is the recorded evaluation trace when requested.
	Trace *trace.Trace
}

// TimeDeltaPct returns the execution-time change of this run relative to
// base, in percent (negative = reduction, the paper's Table 3 convention).
func (r RunResult) TimeDeltaPct(base RunResult) float64 {
	if base.Metrics.Cycles == 0 {
		return 0
	}
	return 100 * (r.Metrics.Cycles - base.Metrics.Cycles) / base.Metrics.Cycles
}

// evalConfig returns the evaluation-run workload configuration.
func evalConfig(spec workloads.Spec, opt Options) workloads.Config {
	if opt.UseBenchScale {
		return spec.Bench
	}
	return spec.Long
}

// runOne executes the evaluation input on one strategy, emitting an
// "eval <strategy>" span under parent and publishing the run's metrics
// when opt carries a registry.
func runOne(spec workloads.Spec, opt Options, alloc machine.Allocator, record bool, parent *obs.Span) RunResult {
	span := parent.Child("eval " + alloc.Name())
	var rec *trace.Recorder
	mopts := []machine.Option{}
	if record {
		rec = trace.NewRecorder()
		mopts = append(mopts, machine.WithRecorder(rec))
	}
	if opt.Attribution {
		mopts = append(mopts, machine.WithAttribution())
	}
	m := machine.New(alloc, opt.Cache, mopts...)
	spec.Program.Run(m, evalConfig(spec, opt))
	res := RunResult{Strategy: alloc.Name(), Metrics: m.Finish(), Attrib: m.Attrib()}
	if rec != nil {
		res.Trace = rec.Trace()
	}
	reg := opt.Metrics
	kv := append([]string{"benchmark", spec.Program.Name(), "run", alloc.Name()}, opt.Labels...)
	switch a := alloc.(type) {
	case *baselines.Baseline:
		res.PeakBytes = a.PeakBytes()
	case *baselines.HDSAlloc:
		res.PeakBytes = a.PeakBytes()
		p := a.Pollution()
		res.Pollution = &p
		p.Publish(reg, kv...)
	case *baselines.HALO:
		res.PeakBytes = a.PeakBytes()
		p := a.Pollution()
		res.Pollution = &p
		p.Publish(reg, kv...)
	case *prefix.Allocator:
		res.PeakBytes = a.PeakBytes()
		c := a.Capture()
		res.Capture = &c
		a.Publish(reg, kv...)
	}
	if reg != nil {
		res.Metrics.Publish(reg, kv...)
		reg.Gauge("prefix_run_peak_bytes", kv...).Set(float64(res.PeakBytes))
		res.Attrib.Publish(reg, kv...)
	}
	span.Set("cycles", res.Metrics.Cycles)
	span.Set("instructions", res.Metrics.Instr)
	span.End()
	return res
}

// Comparison is the full evaluation of one benchmark: every strategy's
// run, the plans, and the profile it was all derived from.
type Comparison struct {
	Benchmark string
	Profile   *Profile
	Baseline  RunResult
	HDS       RunResult
	HALO      RunResult
	PreFix    map[prefix.Variant]RunResult
	Plans     map[prefix.Variant]*prefix.Plan
	Summaries map[prefix.Variant]*prefix.Summary
	// Best is the best-performing PreFix variant (lowest cycles).
	Best prefix.Variant
	// LongRun is the Table 5 long-run analysis of the best variant's
	// recorded trace (nil unless CaptureLongRun).
	LongRun *LongRunCapture
	// Events is the total number of simulated events the benchmark's
	// profiling and evaluation runs generated (the events/sec numerator).
	Events uint64
	// Host is the benchmark job's measured host cost (wall time, heap
	// allocation, GC, events/sec), filled by the suite runner when
	// Options.Perf is attached; nil otherwise. Never feeds report output.
	Host *perfstat.Sample
}

// LongRunCapture compares what landed in the preallocated region during
// the evaluation run against the run's own hot set (Table 5, right half).
type LongRunCapture struct {
	// HeapAccessPct is the share of heap accesses served by preallocated
	// objects.
	HeapAccessPct float64
	// HotObjects is the number of hot objects captured in the region;
	// HDSObjects of those, the ones belonging to the run's own streams.
	HotObjects int
	HDSObjects int
	// CapturedObjects is everything placed in the region (spurious
	// captures would make this exceed HotObjects; PreFix's claim is that
	// it does not).
	CapturedObjects int
}

// BestResult returns the best PreFix run.
func (c *Comparison) BestResult() RunResult { return c.PreFix[c.Best] }

// RunBenchmark evaluates one benchmark end to end.
func RunBenchmark(name string, opt Options) (*Comparison, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	if len(opt.Variants) == 0 {
		opt.Variants = DefaultOptions().Variants
	}
	root := opt.Tracer.Start("benchmark " + name)
	profSpan := root.Child("profile")
	prof, err := collectProfile(spec, opt, profSpan)
	profSpan.End()
	if err != nil {
		root.End()
		return nil, err
	}
	cmp, err := compareStrategies(spec, opt, prof, root)
	root.End()
	if err == nil {
		cmp.Events += prof.Stats.Events
		root.ObserveDurations(opt.Metrics.Histogram("prefix_stage_seconds", obs.TimeBuckets))
	}
	return cmp, err
}

// compareStrategies runs the evaluation input under every strategy for an
// already-collected profile. The root span (nil when tracing is off)
// receives the per-plan and per-run child spans.
func compareStrategies(spec workloads.Spec, opt Options, prof *Profile, root *obs.Span) (*Comparison, error) {
	name := spec.Program.Name()
	cmp := &Comparison{
		Benchmark: name,
		Profile:   prof,
		PreFix:    make(map[prefix.Variant]RunResult),
		Plans:     make(map[prefix.Variant]*prefix.Plan),
		Summaries: make(map[prefix.Variant]*prefix.Summary),
	}

	cost := opt.Cache.Cost
	hotSet := baselines.HotSetOf(prof.Hot)

	// Baseline.
	cmp.Baseline = runOne(spec, opt, baselines.NewBaseline(cost), false, root)
	cmp.Events += cmp.Baseline.Metrics.Events()

	// HDS baseline: sites from Sequitur streams, per the original work.
	hdsSites := baselines.HDSSites(prof.Analysis, prof.StreamsSequitur)
	cmp.HDS = runOne(spec, opt, baselines.NewHDS(hdsSites, hotSet, cost), false, root)
	cmp.Events += cmp.HDS.Metrics.Events()

	// HALO baseline: affinity-grouped allocation contexts.
	haloCfg := baselines.PlanHALO(prof.Analysis, prof.Hot, prof.StreamsLCS)
	cmp.HALO = runOne(spec, opt, baselines.NewHALO(haloCfg, hotSet, cost), false, root)
	cmp.Events += cmp.HALO.Metrics.Events()

	// PreFix variants.
	for _, v := range opt.Variants {
		cfg := opt.Plan
		cfg.Benchmark = name
		cfg.Variant = v
		planSpan := root.Child("plan " + v.String())
		cfg.Trace = planSpan
		if opt.Attribution {
			cfg.Ledger = prefix.NewLedger()
		}
		plan, sum, err := prefix.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		if err != nil {
			planSpan.End()
			return nil, fmt.Errorf("pipeline: %s %v: %w", name, v, err)
		}
		planSpan.Set("sites", plan.NumSites())
		planSpan.Set("counters", plan.NumCounters())
		planSpan.Set("region_bytes", plan.RegionSize)
		planSpan.End()
		if reg := opt.Metrics; reg != nil {
			kv := append([]string{"benchmark", name, "variant", v.String()}, opt.Labels...)
			reg.Gauge("prefix_plan_sites", kv...).Set(float64(plan.NumSites()))
			reg.Gauge("prefix_plan_counters", kv...).Set(float64(plan.NumCounters()))
			reg.Gauge("prefix_plan_region_bytes", kv...).Set(float64(plan.RegionSize))
			reg.Gauge("prefix_plan_placed_objects", kv...).Set(float64(plan.PlacedObjects))
			reg.Gauge("prefix_plan_hds_objects", kv...).Set(float64(plan.HDSObjects))
		}
		cmp.Plans[v] = plan
		cmp.Summaries[v] = sum
		cmp.PreFix[v] = runOne(spec, opt, prefix.NewAllocator(plan, cost), false, root)
		cmp.Events += cmp.PreFix[v].Metrics.Events()
	}

	best := opt.Variants[0]
	for _, v := range opt.Variants[1:] {
		if cmp.PreFix[v].Metrics.Cycles < cmp.PreFix[best].Metrics.Cycles {
			best = v
		}
	}
	cmp.Best = best

	if opt.CaptureLongRun {
		lr, events, err := captureLongRun(spec, opt, cmp.Plans[best], root)
		if err != nil {
			return nil, err
		}
		cmp.LongRun = lr
		cmp.Events += events
	}
	return cmp, nil
}

// TraceBaselineAndBest runs the evaluation input under the baseline and
// under a freshly planned best-variant PreFix allocator, recording both
// traces — the input of the Figure 9 heatmaps. "Best" means what it
// means in compareStrategies: every configured variant is planned and
// evaluated, and the one with the lowest cycle count is re-run with
// recording. The chosen variant is returned alongside the traces.
// Published metrics carry a "phase" label so the selection and trace
// runs never collide with a suite run's series for the same benchmark.
func TraceBaselineAndBest(name string, opt Options) (base, best *trace.Trace, bestVariant prefix.Variant, err error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(opt.Variants) == 0 {
		opt.Variants = DefaultOptions().Variants
	}
	root := opt.Tracer.Start("figure9 " + name)
	defer root.End()
	sc := opt.Perf.Begin("figure9").AttachSpan(root)
	defer sc.End()
	profSpan := root.Child("profile")
	prof, err := collectProfile(spec, opt, profSpan)
	profSpan.End()
	if err != nil {
		return nil, nil, 0, err
	}

	selOpt := opt
	selOpt.Labels = append(append([]string(nil), opt.Labels...), "phase", "figure9-select")
	var bestPlan *prefix.Plan
	var bestCycles float64
	for i, v := range opt.Variants {
		cfg := opt.Plan
		cfg.Benchmark = name
		cfg.Variant = v
		planSpan := root.Child("plan " + v.String())
		cfg.Trace = planSpan
		plan, _, perr := prefix.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
		planSpan.End()
		if perr != nil {
			return nil, nil, 0, fmt.Errorf("pipeline: %s %v: %w", name, v, perr)
		}
		res := runOne(spec, selOpt, prefix.NewAllocator(plan, opt.Cache.Cost), false, root)
		sc.AddEvents(res.Metrics.Events())
		if i == 0 || res.Metrics.Cycles < bestCycles {
			bestCycles = res.Metrics.Cycles
			bestVariant, bestPlan = v, plan
		}
	}

	recOpt := opt
	recOpt.Labels = append(append([]string(nil), opt.Labels...), "phase", "figure9")
	baseRun := runOne(spec, recOpt, baselines.NewBaseline(opt.Cache.Cost), true, root)
	optRun := runOne(spec, recOpt, prefix.NewAllocator(bestPlan, opt.Cache.Cost), true, root)
	sc.AddEvents(baseRun.Metrics.Events() + optRun.Metrics.Events())
	return baseRun.Trace, optRun.Trace, bestVariant, nil
}

// captureLongRun re-runs the best variant with tracing and analyzes what
// was captured (Table 5's long-run columns). The second return is the
// capture run's simulated event count for host-cost accounting.
func captureLongRun(spec workloads.Spec, opt Options, plan *prefix.Plan, root *obs.Span) (*LongRunCapture, uint64, error) {
	span := root.Child("long-run-capture")
	defer span.End()
	alloc := prefix.NewAllocator(plan, opt.Cache.Cost)
	res := runOne(spec, opt, alloc, true, span)
	a := trace.Analyze(res.Trace)
	region := plan.Region()

	cfg := opt.Plan
	cfg.Benchmark = spec.Program.Name()
	hot := prefix.SelectHot(a, cfg)
	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	streams := hds.MineLCS(refs, cfg.HDS)
	inStream := hds.Objects(streams)

	lr := &LongRunCapture{}
	var regionAccesses uint64
	for _, o := range a.Objects {
		if !region.Contains(o.Addr) {
			continue
		}
		lr.CapturedObjects++
		regionAccesses += o.Accesses
		if hot.IDs[o.ID] {
			lr.HotObjects++
			if inStream[o.ID] {
				lr.HDSObjects++
			}
		}
	}
	if a.HeapAccesses > 0 {
		lr.HeapAccessPct = 100 * float64(regionAccesses) / float64(a.HeapAccesses)
	}
	return lr, res.Metrics.Events(), nil
}
