package pipeline

import (
	"reflect"
	"testing"

	"prefix/internal/obs"
	"prefix/internal/prefix"
)

// attribOpt is fastOpt with attribution collection on.
func attribOpt() Options {
	opt := fastOpt()
	opt.Attribution = true
	return opt
}

// TestAttributionDifferential: attribution is purely observational — a
// benchmark evaluated with it on reproduces the exact metrics of the
// plain run, for every strategy and variant.
func TestAttributionDifferential(t *testing.T) {
	plain, err := RunBenchmark("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	attr, err := RunBenchmark("swissmap", attribOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Baseline.Metrics, attr.Baseline.Metrics) {
		t.Error("attribution changed the baseline metrics")
	}
	if !reflect.DeepEqual(plain.HDS.Metrics, attr.HDS.Metrics) ||
		!reflect.DeepEqual(plain.HALO.Metrics, attr.HALO.Metrics) {
		t.Error("attribution changed a baseline strategy's metrics")
	}
	for v, pr := range plain.PreFix {
		if !reflect.DeepEqual(pr.Metrics, attr.PreFix[v].Metrics) {
			t.Errorf("attribution changed %v metrics", v)
		}
	}
	if plain.Best != attr.Best || plain.Events != attr.Events {
		t.Error("attribution changed the verdict or the event count")
	}
	if plain.Baseline.Attrib.Enabled || len(plain.Baseline.Attrib.Sites) != 0 {
		t.Error("plain run carries an attribution snapshot")
	}
}

// TestAttributionSumInvariant is the acceptance check: for every run in
// an attributed comparison, the per-site attributed misses sum to the
// run's aggregate Counts exactly — every event lands in exactly one cell.
func TestAttributionSumInvariant(t *testing.T) {
	cmp, err := RunBenchmark("swissmap", attribOpt())
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]RunResult{"baseline": cmp.Baseline, "hds": cmp.HDS, "halo": cmp.HALO}
	for v, r := range cmp.PreFix {
		runs[v.String()] = r
	}
	for name, r := range runs {
		if !r.Attrib.Enabled {
			t.Fatalf("%s: no attribution snapshot", name)
		}
		if got, want := r.Attrib.Total(), r.Metrics.Cache; got != want {
			t.Errorf("%s: attributed sum %+v != aggregate counts %+v", name, got, want)
		}
	}
}

// TestBuildExplain: the explain document names the top sites by baseline
// LLC-miss share and joins each with its ledger decisions from the best
// variant's plan build.
func TestBuildExplain(t *testing.T) {
	cmp, err := RunBenchmark("swissmap", attribOpt())
	if err != nil {
		t.Fatal(err)
	}
	ex := BuildExplain(cmp, 3)
	if ex == nil {
		t.Fatal("BuildExplain returned nil for an attributed comparison")
	}
	if ex.Benchmark != "swissmap" || ex.Variant != cmp.Best.String() {
		t.Errorf("header = %s/%s", ex.Benchmark, ex.Variant)
	}
	if ex.BaselineLLCMisses != cmp.Baseline.Metrics.Cache.LLCMisses {
		t.Errorf("baseline total %d != aggregate %d", ex.BaselineLLCMisses, cmp.Baseline.Metrics.Cache.LLCMisses)
	}
	if ex.Decisions == 0 {
		t.Error("best variant's ledger is empty")
	}
	if len(ex.Sites) == 0 || len(ex.Sites) > 3 {
		t.Fatalf("sites = %d, want 1..3", len(ex.Sites))
	}
	for i, s := range ex.Sites {
		if i > 0 && s.Baseline.LLCMisses > ex.Sites[i-1].Baseline.LLCMisses {
			t.Error("sites not ordered by baseline LLC misses")
		}
		if s.Baseline.SharePct < 0 || s.Baseline.SharePct > 100 {
			t.Errorf("site %d share %.2f out of range", s.Site, s.Baseline.SharePct)
		}
		for _, d := range s.Decisions {
			if d.Reason == "" {
				t.Errorf("site %d decision %s/%s has no reason", s.Site, d.Stage, d.Kind)
			}
		}
		placements := 0
		for _, d := range s.Decisions {
			if d.Stage == prefix.StagePlacement {
				placements++
			}
		}
		if placements > maxSiteDecisions {
			t.Errorf("site %d quotes %d placement decisions, cap is %d", s.Site, placements, maxSiteDecisions)
		}
		if s.Placements < placements {
			t.Errorf("site %d total placements %d < quoted %d", s.Site, s.Placements, placements)
		}
	}
	// The hottest site must carry at least one ledger decision: the smoke
	// acceptance requires a reason for every top site's placement.
	if len(ex.Sites[0].Decisions) == 0 && ex.Sites[0].Site != 0 {
		t.Error("hottest site has no ledger decisions")
	}
}

// TestBuildExplainNil: nil comparisons and unattributed runs yield nil.
func TestBuildExplainNil(t *testing.T) {
	if BuildExplain(nil, 3) != nil {
		t.Error("BuildExplain(nil) != nil")
	}
	cmp, err := RunBenchmark("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if BuildExplain(cmp, 3) != nil {
		t.Error("BuildExplain(unattributed) != nil")
	}
}

// TestSuiteExplainDocs: RunSuite publishes one explain document per
// benchmark into the store when attribution is on, and none otherwise.
func TestSuiteExplainDocs(t *testing.T) {
	opt := attribOpt()
	opt.Explain = obs.NewExplainStore()
	if _, err := RunSuite([]string{"swissmap"}, opt, 1); err != nil {
		t.Fatal(err)
	}
	docs := opt.Explain.Snapshot()
	ex, ok := docs["swissmap"].(*Explain)
	if !ok || ex == nil {
		t.Fatalf("store docs = %v, want swissmap *Explain", docs)
	}
	if ex.Benchmark != "swissmap" || len(ex.Sites) == 0 {
		t.Errorf("stored doc = %+v", ex)
	}

	off := fastOpt()
	off.Explain = obs.NewExplainStore()
	if _, err := RunSuite([]string{"swissmap"}, off, 1); err != nil {
		t.Fatal(err)
	}
	if off.Explain.Len() != 0 {
		t.Errorf("unattributed suite published %d docs, want 0", off.Explain.Len())
	}
}

// TestAttributionLedgersOnSummaries: every variant's summary carries a
// populated ledger when attribution is on, and none when off.
func TestAttributionLedgersOnSummaries(t *testing.T) {
	cmp, err := RunBenchmark("swissmap", attribOpt())
	if err != nil {
		t.Fatal(err)
	}
	for v, sum := range cmp.Summaries {
		if sum.Ledger == nil || sum.Ledger.Len() == 0 {
			t.Errorf("%v: summary has no ledger", v)
		}
	}
	plain, err := RunBenchmark("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for v, sum := range plain.Summaries {
		if sum.Ledger != nil {
			t.Errorf("%v: unattributed run recorded a ledger", v)
		}
	}
}
