package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/workloads"
)

// TestCollectProfileShardedParity is the pipeline-layer acceptance check
// for the sharded analysis path: routing the analyze stage through N
// parallel shards — on both the in-memory and the spill-to-disk
// streaming profile — must produce a profile identical to the
// single-pass reference at every shard count.
func TestCollectProfileShardedParity(t *testing.T) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CollectProfile(spec, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if ref.AnalysisShards != 1 {
		t.Fatalf("reference AnalysisShards = %d, want 1", ref.AnalysisShards)
	}

	for _, stream := range []bool{false, true} {
		for _, shards := range []int{2, 3, 8} {
			opt := fastOpt()
			opt.Shards = shards
			opt.Stream = stream
			if stream {
				opt.StreamChunkEvents = 512
				opt.StreamDir = t.TempDir()
			}
			prof, err := CollectProfile(spec, opt)
			if err != nil {
				t.Fatalf("stream=%v shards=%d: %v", stream, shards, err)
			}
			if !reflect.DeepEqual(ref.Analysis, prof.Analysis) {
				t.Errorf("stream=%v shards=%d: analysis differs from single-pass", stream, shards)
			}
			if !reflect.DeepEqual(ref.Hot, prof.Hot) {
				t.Errorf("stream=%v shards=%d: hot sets differ", stream, shards)
			}
			if !reflect.DeepEqual(ref.StreamsLCS, prof.StreamsLCS) ||
				!reflect.DeepEqual(ref.StreamsSequitur, prof.StreamsSequitur) {
				t.Errorf("stream=%v shards=%d: mined streams differ", stream, shards)
			}
			if prof.AnalysisShards != shards {
				t.Errorf("stream=%v shards=%d: AnalysisShards = %d", stream, shards, prof.AnalysisShards)
			}
		}
	}
}

// TestRunBenchmarkShardedIdentical runs the full comparison with and
// without sharding: every reported number must match, because sharding
// only changes how the profiling trace is analyzed, never what the
// analysis says.
func TestRunBenchmarkShardedIdentical(t *testing.T) {
	ref, err := RunBenchmark("swissmap", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt()
	opt.Shards = 4
	sharded, err := RunBenchmark("swissmap", opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Best != sharded.Best {
		t.Errorf("best variant: single-pass %v, sharded %v", ref.Best, sharded.Best)
	}
	if !reflect.DeepEqual(ref.Baseline.Metrics, sharded.Baseline.Metrics) {
		t.Error("baseline metrics differ under sharded analysis")
	}
	if !reflect.DeepEqual(ref.BestResult().Metrics, sharded.BestResult().Metrics) {
		t.Error("best-variant metrics differ under sharded analysis")
	}
	if !reflect.DeepEqual(ref.Plans[ref.Best], sharded.Plans[sharded.Best]) {
		t.Error("best plan differs under sharded analysis")
	}
}

// TestShardedProfileObservability checks the wiring the -shards flag
// depends on: with a perfstat collector attached the profile carries
// the analyze stage's own host sample, and shard-stage progress events
// arrive tagged with the benchmark name and the shard count.
func TestShardedProfileObservability(t *testing.T) {
	spec, err := workloads.Get("swissmap")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		events []obs.JobEvent
	)
	opt := fastOpt()
	opt.Shards = 3
	opt.Perf = perfstat.New(nil)
	opt.Progress = func(ev obs.JobEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	prof, err := CollectProfile(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if prof.AnalysisHost == nil {
		t.Fatal("AnalysisHost not recorded with Perf attached")
	}
	if prof.AnalysisHost.Phase != "analyze" || prof.AnalysisHost.Events == 0 {
		t.Errorf("analysis sample = %+v", prof.AnalysisHost)
	}
	shardDone := 0
	for _, ev := range events {
		if ev.Shards == 0 {
			continue
		}
		if ev.Shards != 3 {
			t.Fatalf("shard event carries Shards=%d, want 3: %+v", ev.Shards, ev)
		}
		if ev.Benchmark != "swissmap" {
			t.Fatalf("shard event missing benchmark name: %+v", ev)
		}
		if ev.Phase == "analyze-shard" && ev.State == obs.JobDone {
			shardDone++
		}
	}
	if shardDone != 3 {
		t.Errorf("analyze-shard done events = %d, want 3", shardDone)
	}
}
