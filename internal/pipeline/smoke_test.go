package pipeline

import (
	"testing"

	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

// TestSmokeAllBenchmarks runs the full Figure 8 pipeline on every
// benchmark at bench scale and checks the headline shape of Table 3: the
// best PreFix variant must never lose to the baseline, and must beat both
// prior techniques on average.
func TestSmokeAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline smoke is not short")
	}
	var sumBest, sumHDS, sumHALO float64
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.UseBenchScale = true
			cmp, err := RunBenchmark(name, opt)
			if err != nil {
				t.Fatalf("RunBenchmark: %v", err)
			}
			base := cmp.Baseline
			best := cmp.BestResult().TimeDeltaPct(base)
			hds := cmp.HDS.TimeDeltaPct(base)
			halo := cmp.HALO.TimeDeltaPct(base)
			t.Logf("%s: base=%.3g cycles hds=%+.2f%% halo=%+.2f%% hot=%+.2f%% hds_v=%+.2f%% hds+hot=%+.2f%% best=%v (sites=%d counters=%d kinds=%s hot=%d)",
				name, base.Metrics.Cycles, hds, halo,
				cmp.PreFix[prefix.VariantHot].TimeDeltaPct(base),
				cmp.PreFix[prefix.VariantHDS].TimeDeltaPct(base),
				cmp.PreFix[prefix.VariantHDSHot].TimeDeltaPct(base),
				cmp.Best, cmp.Plans[cmp.Best].NumSites(),
				cmp.Plans[cmp.Best].NumCounters(), cmp.Plans[cmp.Best].KindsString(),
				len(cmp.Profile.Hot.Objects))
			if best > 1.0 {
				t.Errorf("best PreFix variant is %.2f%% (a slowdown > 1%%) on %s", best, name)
			}
			sumBest += best
			sumHDS += hds
			sumHALO += halo
		})
	}
	n := float64(len(workloads.Names()))
	t.Logf("averages: prefix-best=%.2f%% hds=%.2f%% halo=%.2f%%", sumBest/n, sumHDS/n, sumHALO/n)
	if sumBest/n >= sumHDS/n || sumBest/n >= sumHALO/n {
		t.Errorf("PreFix average (%.2f%%) must beat HDS (%.2f%%) and HALO (%.2f%%)",
			sumBest/n, sumHDS/n, sumHALO/n)
	}
}
