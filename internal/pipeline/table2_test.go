package pipeline

import (
	"testing"

	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

// TestTable2Classification locks down each benchmark's context product —
// the pattern kinds, instrumented-site count, and counter count of
// Table 2. These are structural properties of the workloads' allocation
// behaviour plus the context-inference pipeline, so a change here means
// either a workload regression or an inference regression.
func TestTable2Classification(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all 13 benchmarks")
	}
	want := map[string]struct {
		kinds    string
		sites    int
		counters int
	}{
		// Paper Table 2: [fixed ids, (10, 6)]
		"mysql": {"fixed ids", 10, 6},
		// Paper: [regular & fixed, (15, 7)]
		"perl": {"fixed & regular ids", 15, 7},
		// Paper: [fixed ids, (6, 2)]; the rebuilt tree trio is all-hot here
		"mcf": {"fixed & all ids", 6, 2},
		// Paper: [fixed ids, (52, 6)]
		"omnetpp": {"fixed ids", 52, 6},
		// Paper: [fixed ids, (2, 2)]
		"xalanc": {"fixed ids", 2, 2},
		// Paper: [all ids, (8, 1)]; geometry tables add one fixed counter
		"povray": {"fixed & all ids", 9, 2},
		// Paper: [all ids, (20, 1)]
		"roms": {"all ids", 20, 1},
		// Paper: [all ids, (4, 1)]
		"leela": {"all ids", 4, 1},
		// Paper: [all ids, (1, 1)]
		"swissmap": {"all ids", 1, 1},
		// Paper: [fixed ids, (6, 2)]; our per-site classification differs
		"libc": {"fixed & all ids", 8, 8},
		// Paper: [fixed & all ids, (3, 2)]
		"health": {"fixed & all ids", 3, 2},
		// Paper: [fixed & all ids, (3, 2)]; the 3-object skeleton is cold
		"ft": {"all ids", 2, 1},
		// Paper: [fixed & all ids, (5, 3)]
		"analyzer": {"fixed & all ids", 5, 3},
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := CollectProfile(spec, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			cfg := prefix.DefaultPlanConfig(name, prefix.VariantHDSHot)
			plan, _, err := prefix.BuildPlanFromHot(prof.Analysis, prof.Hot, cfg)
			if err != nil {
				t.Fatal(err)
			}
			w, ok := want[name]
			if !ok {
				t.Fatalf("no expectation for %s", name)
			}
			if got := plan.KindsString(); got != w.kinds {
				t.Errorf("kinds = %q, want %q", got, w.kinds)
			}
			if got := plan.NumSites(); got != w.sites {
				t.Errorf("sites = %d, want %d", got, w.sites)
			}
			if got := plan.NumCounters(); got != w.counters {
				t.Errorf("counters = %d, want %d", got, w.counters)
			}
		})
	}
}
