package pipeline

import (
	"testing"

	"prefix/internal/baselines"
	"prefix/internal/machine"
	"prefix/internal/obs/perfstat"
	"prefix/internal/workloads"
)

// TestPerfSmoke is the host-cost end-to-end smoke: a parallel suite run
// with a perfstat collector attached must attribute wall time, heap
// cost, and events/sec to every job, and the collector's totals must
// line up with the per-benchmark samples.
func TestPerfSmoke(t *testing.T) {
	pc := perfstat.New(nil)
	opt := fastOpt()
	opt.Perf = pc
	names := []string{"mcf", "health"}
	cmps, err := RunSuite(names, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cmp := range cmps {
		h := cmp.Host
		if h == nil {
			t.Fatalf("%s: Comparison.Host is nil with a collector attached", names[i])
		}
		if h.Phase != "suite" {
			t.Errorf("%s: host sample phase = %q, want \"suite\"", names[i], h.Phase)
		}
		if h.WallNanos <= 0 {
			t.Errorf("%s: host wall = %d ns, want > 0", names[i], h.WallNanos)
		}
		if h.Events == 0 {
			t.Errorf("%s: host events = 0, want the run's simulation event count", names[i])
		}
		if h.EventsPerSec() <= 0 {
			t.Errorf("%s: events/sec = %g, want > 0", names[i], h.EventsPerSec())
		}
	}

	snap := pc.Snapshot()
	if snap.Events == 0 || snap.ThroughputEventsPerSec <= 0 {
		t.Errorf("snapshot events=%d throughput=%g, want both > 0",
			snap.Events, snap.ThroughputEventsPerSec)
	}
	phases := map[string]perfstat.PhaseStats{}
	for _, p := range snap.Phases {
		phases[p.Phase] = p
	}
	for _, phase := range []string{"suite", "profile"} {
		p, ok := phases[phase]
		if !ok {
			t.Fatalf("snapshot missing phase %q (have %v)", phase, snap.Phases)
		}
		if p.Scopes != len(names) {
			t.Errorf("phase %q scopes = %d, want %d (one per benchmark)", phase, p.Scopes, len(names))
		}
		if p.WallNanos <= 0 || p.Events == 0 {
			t.Errorf("phase %q wall=%d events=%d, want both > 0", phase, p.WallNanos, p.Events)
		}
	}
}

// TestPerfScaleMonotone pins that host-cost attribution actually tracks
// the work done: running the same workload at 4x the scale must produce
// more simulation events (exact — the simulation is deterministic) and
// more wall time (retried — host timing is noisy at smoke scale).
func TestPerfScaleMonotone(t *testing.T) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt()
	runScaled := func(pc *perfstat.Collector, phase string, scale float64) perfstat.Sample {
		cfg := spec.Profile
		cfg.Scale = scale
		sc := pc.Begin(phase)
		m := machine.New(baselines.NewBaseline(opt.Cache.Cost), opt.Cache)
		spec.Program.Run(m, cfg)
		sc.AddEvents(m.Finish().Events())
		return sc.End()
	}

	pc := perfstat.New(nil)
	small := runScaled(pc, "scale_small", spec.Profile.Scale)
	big := runScaled(pc, "scale_big", spec.Profile.Scale*4)
	if big.Events <= small.Events {
		t.Fatalf("events not monotone with scale: small=%d big=%d", small.Events, big.Events)
	}

	// Wall time is host-dependent; allow a few retries before declaring
	// the attribution broken.
	for attempt := 0; ; attempt++ {
		if big.WallNanos > small.WallNanos {
			break
		}
		if attempt >= 4 {
			t.Fatalf("wall time not monotone with scale after %d attempts: small=%dns big=%dns",
				attempt, small.WallNanos, big.WallNanos)
		}
		small = runScaled(pc, "scale_small", spec.Profile.Scale)
		big = runScaled(pc, "scale_big", spec.Profile.Scale*4)
	}
}
