package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"prefix/internal/obs"
)

// DefaultJobs is the default worker count for suite runs: one worker per
// available CPU (the evaluation is compute-bound; benchmark×seed jobs
// share nothing but the race-safe obs.Registry/Tracer).
//
//lint:ignore nodeterminism worker count only paces execution; result slots are order-indexed so output is jobs-independent
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// runJobs executes jobs 0..n-1 on at most `jobs` concurrent workers and
// returns the per-job errors indexed by job order. Jobs are dispatched
// in index order, so jobs=1 is exactly the serial loop. Each job must
// write its result into a caller-owned slot keyed by its index — never
// by completion order — which is what keeps a parallel suite's
// aggregate output byte-identical to the serial path. A panicking job
// is recovered into its error slot rather than tearing down the run.
func runJobs(n, jobs int, run func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > n {
		jobs = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runProtected(func() error { return run(i) })
			}
		}()
	}
	wg.Wait()
	return errs
}

// runProtected runs one job, converting a panic into an error.
func runProtected(run func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return run()
}

// joinErrors aggregates per-job errors in job order, attaching each
// failed job's name.
func joinErrors(errs []error, name func(i int) string) error {
	var agg []error
	for i, e := range errs {
		if e != nil {
			agg = append(agg, fmt.Errorf("%s: %w", name(i), e))
		}
	}
	return errors.Join(agg...)
}

// RunSuite evaluates the named benchmarks on a bounded worker pool of
// `jobs` workers (1 = the serial path, DefaultJobs() = one per CPU).
// The returned comparisons are indexed by position in names, never by
// completion order, so everything derived from them — every table and
// figure — is byte-identical to running the benchmarks serially. The
// shared Options may carry one obs.Registry/Tracer: both are race-safe,
// every run's series is distinguished by its benchmark/run labels, and
// every benchmark gets its own root span. Per-benchmark errors are
// aggregated (in suite order) with the benchmark name attached.
func RunSuite(names []string, opt Options, jobs int) ([]*Comparison, error) {
	cmps := make([]*Comparison, len(names))
	errs := runJobs(len(names), jobs, func(i int) error {
		ev := obs.JobEvent{Phase: "suite", Benchmark: names[i], Job: i, Jobs: len(names), Seed: -1}
		return opt.instrumentJob(ev, func() error {
			sc := opt.Perf.Begin("suite")
			cmp, err := RunBenchmark(names[i], opt)
			if err != nil {
				sc.End()
				return err
			}
			sc.AddEvents(cmp.Events)
			sample := sc.End()
			if opt.Perf != nil {
				cmp.Host = &sample
			}
			if opt.Attribution && opt.Explain != nil {
				opt.Explain.Put(names[i], BuildExplain(cmp, ExplainTopSites))
			}
			cmps[i] = cmp
			return nil
		})
	})
	if err := joinErrors(errs, func(i int) string { return names[i] }); err != nil {
		return nil, err
	}
	return cmps, nil
}
