package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"prefix/internal/obs"
	"prefix/internal/prefix"
)

// TestObsNoopParity is the acceptance guarantee of the instrumentation:
// running with a registry and tracer attached must leave every reported
// number bit-identical to an uninstrumented run.
func TestObsNoopParity(t *testing.T) {
	opt := DefaultOptions()
	opt.UseBenchScale = true
	plain, err := RunBenchmark("mcf", opt)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	opt2 := DefaultOptions()
	opt2.UseBenchScale = true
	opt2.Metrics = obs.NewRegistry()
	opt2.Tracer = obs.NewTracer()
	instr, err := RunBenchmark("mcf", opt2)
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}

	if !reflect.DeepEqual(plain.Baseline.Metrics, instr.Baseline.Metrics) {
		t.Errorf("baseline metrics differ:\n  plain: %v\n  instr: %v", plain.Baseline.Metrics, instr.Baseline.Metrics)
	}
	if !reflect.DeepEqual(plain.HDS.Metrics, instr.HDS.Metrics) ||
		!reflect.DeepEqual(plain.HALO.Metrics, instr.HALO.Metrics) {
		t.Error("prior-technique metrics differ between instrumented and plain runs")
	}
	for _, v := range opt.Variants {
		if plain.PreFix[v].Metrics.Cycles != instr.PreFix[v].Metrics.Cycles {
			t.Errorf("%v cycles differ: plain %v, instrumented %v",
				v, plain.PreFix[v].Metrics.Cycles, instr.PreFix[v].Metrics.Cycles)
		}
	}
	if plain.Best != instr.Best {
		t.Errorf("best variant differs: plain %v, instrumented %v", plain.Best, instr.Best)
	}

	// The registry must agree with the pipeline's own report.
	got := opt2.Metrics.Gauge("prefix_run_cycles", "benchmark", "mcf", "run", "baseline").Value()
	if got != plain.Baseline.Metrics.Cycles {
		t.Errorf("registry cycles = %v, want %v", got, plain.Baseline.Metrics.Cycles)
	}
	if n := opt2.Metrics.Counter("prefix_run_mallocs_total", "benchmark", "mcf", "run", "baseline").Value(); n != plain.Baseline.Metrics.Mallocs {
		t.Errorf("registry mallocs = %d, want %d", n, plain.Baseline.Metrics.Mallocs)
	}
}

// spanNames returns the names of a span's direct children.
func spanNames(s *obs.Span) []string {
	var names []string
	for _, c := range s.Children() {
		names = append(names, c.Name)
	}
	return names
}

// TestObsSpanTree asserts the expected Figure-8 phase tree for one small
// workload: profile (run/analyze/hotness/mining), one plan per variant
// with the planner's internal stages, one eval per strategy.
func TestObsSpanTree(t *testing.T) {
	opt := DefaultOptions()
	opt.UseBenchScale = true
	opt.Variants = []prefix.Variant{prefix.VariantHDSHot}
	opt.Metrics = obs.NewRegistry()
	opt.Tracer = obs.NewTracer()
	if _, err := RunBenchmark("health", opt); err != nil {
		t.Fatal(err)
	}

	roots := opt.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "benchmark health" {
		t.Errorf("root span = %q", root.Name)
	}
	wantTop := []string{
		"profile",
		"eval baseline",
		"eval hds",
		"eval halo",
		"plan prefix:hds+hot",
		"eval prefix:hds+hot",
	}
	if got := spanNames(root); !reflect.DeepEqual(got, wantTop) {
		t.Errorf("top-level spans = %v, want %v", got, wantTop)
	}

	children := root.Children()
	wantProfile := []string{"profile-run", "analyze", "hotness", "hds-mining"}
	if got := spanNames(children[0]); !reflect.DeepEqual(got, wantProfile) {
		t.Errorf("profile spans = %v, want %v", got, wantProfile)
	}
	wantPlan := []string{"hds-mining", "reconstitution", "context-inference", "recycling", "slot-assignment"}
	if got := spanNames(children[4]); !reflect.DeepEqual(got, wantPlan) {
		t.Errorf("plan spans = %v, want %v", got, wantPlan)
	}

	// Every span must be closed and folded into the stage histogram.
	var total int
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		total++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	if n := opt.Metrics.Histogram("prefix_stage_seconds", nil).Count(); n != uint64(total) {
		t.Errorf("stage histogram count = %d, want %d (one per span)", n, total)
	}

	// The exporters must accept the real pipeline output.
	var prom, chrome strings.Builder
	if err := opt.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{
		"# TYPE prefix_run_cycles gauge",
		`prefix_run_mallocs_total{benchmark="health",run="baseline"}`,
		`prefix_capture_mallocs_avoided_total{benchmark="health",run="prefix:hds+hot"}`,
		"# TYPE prefix_stage_seconds histogram",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	if err := opt.Tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !strings.Contains(chrome.String(), `"name": "reconstitution"`) {
		t.Error("chrome trace missing planner stage span")
	}
}
