package pipeline

import (
	"sort"
	"testing"

	"prefix/internal/mem"
	"prefix/internal/workloads"
)

// TestDebugProfile prints per-site hot selection and mining results; a
// development aid kept because it documents each workload's profile
// structure. Run with -run TestDebugProfile -v.
func TestDebugProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("debug only")
	}
	for _, name := range []string{"analyzer", "perl", "mysql", "mcf"} {
		spec, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		prof, err := CollectProfile(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		a := prof.Analysis
		t.Logf("=== %s: objects=%d heapAcc=%d hot=%d coverage=%.1f%% lcsStreams=%d seqStreams=%d",
			name, len(a.Objects), a.HeapAccesses, len(prof.Hot.Objects),
			prof.Hot.CoveragePct(), len(prof.StreamsLCS), len(prof.StreamsSequitur))
		var sites []mem.SiteID
		for s := range a.SiteAllocs {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, s := range sites {
			t.Logf("  site%-3d allocs=%-6d hot=%-6d maxLive=%d",
				s, a.SiteAllocs[s], len(prof.Hot.PerSite[s]), a.SiteMaxLive[s])
		}
		for i, st := range prof.StreamsLCS {
			if i >= 3 {
				break
			}
			t.Logf("  lcs[%d]: len=%d heat=%d", i, len(st.Objects), st.Heat)
		}
		for i, st := range prof.StreamsSequitur {
			if i >= 3 {
				break
			}
			t.Logf("  seq[%d]: len=%d heat=%d", i, len(st.Objects), st.Heat)
		}
	}
}
