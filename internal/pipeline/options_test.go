package pipeline

import (
	"testing"

	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

func TestVariantSubset(t *testing.T) {
	opt := fastOpt()
	opt.Variants = []prefix.Variant{prefix.VariantHot}
	cmp, err := RunBenchmark("swissmap", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.PreFix) != 1 {
		t.Fatalf("variants run = %d, want 1", len(cmp.PreFix))
	}
	if cmp.Best != prefix.VariantHot {
		t.Errorf("best = %v", cmp.Best)
	}
}

func TestEmptyVariantsDefaulted(t *testing.T) {
	opt := fastOpt()
	opt.Variants = nil
	cmp, err := RunBenchmark("swissmap", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.PreFix) != 3 {
		t.Fatalf("variants run = %d, want 3", len(cmp.PreFix))
	}
}

func TestEvalConfigSelection(t *testing.T) {
	spec, err := workloads.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	if got := evalConfig(spec, opt); got != spec.Long {
		t.Error("default should use the long configuration")
	}
	opt.UseBenchScale = true
	if got := evalConfig(spec, opt); got != spec.Bench {
		t.Error("bench scale should use the bench configuration")
	}
}

func TestDeterministicComparison(t *testing.T) {
	run := func() float64 {
		cmp, err := RunBenchmark("mcf", fastOpt())
		if err != nil {
			t.Fatal(err)
		}
		return cmp.BestResult().Metrics.Cycles
	}
	if run() != run() {
		t.Error("the whole pipeline must be deterministic")
	}
}

func TestRunVariance(t *testing.T) {
	v, err := RunVariance("swissmap", 3, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if v.Runs != 3 || len(v.Deltas) != 3 {
		t.Fatalf("variance = %+v", v)
	}
	if v.MinPct > v.MeanPct || v.MeanPct > v.MaxPct {
		t.Errorf("summary ordering wrong: %+v", v)
	}
	// The plan must keep winning on perturbed inputs (Table 5's claim).
	if v.MaxPct > -1 {
		t.Errorf("worst-case reduction %.2f%% too weak across seeds", v.MaxPct)
	}
}

func TestRunVarianceErrors(t *testing.T) {
	if _, err := RunVariance("swissmap", 0, fastOpt()); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := RunVariance("nope", 2, fastOpt()); err == nil {
		t.Error("unknown benchmark should error")
	}
}
