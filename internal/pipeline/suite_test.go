package pipeline

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"prefix/internal/obs"
)

func TestRunJobsSerialOrder(t *testing.T) {
	var order []int
	errs := runJobs(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("jobs=1 execution order = %v, want ascending", order)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("job %d: unexpected error %v", i, e)
		}
	}
}

func TestRunJobsRunsEverything(t *testing.T) {
	var ran atomic.Int64
	runJobs(100, 7, func(i int) error {
		ran.Add(1)
		return nil
	})
	if n := ran.Load(); n != 100 {
		t.Errorf("ran %d jobs, want 100", n)
	}
}

func TestRunJobsPanicRecovered(t *testing.T) {
	errs := runJobs(3, 2, func(i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy jobs errored: %v", errs)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "boom") {
		t.Errorf("panic not recovered into error: %v", errs[1])
	}
}

func TestJoinErrorsAttachesNames(t *testing.T) {
	errs := []error{nil, errors.New("bad"), errors.New("worse")}
	err := joinErrors(errs, func(i int) string { return fmt.Sprintf("bench%d", i) })
	if err == nil {
		t.Fatal("want aggregated error")
	}
	for _, want := range []string{"bench1: bad", "bench2: worse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "bench0") {
		t.Errorf("aggregate %q names a healthy job", err)
	}
}

// TestRunSuiteMatchesSerial is the tentpole guarantee: a parallel suite
// run produces results identical to the serial path, slot for slot.
func TestRunSuiteMatchesSerial(t *testing.T) {
	names := []string{"swissmap", "health", "ft"}
	serial, err := RunSuite(names, fastOpt(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuite(names, fastOpt(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if serial[i].Benchmark != name || parallel[i].Benchmark != name {
			t.Fatalf("slot %d holds %q/%q, want %q (results must be job-ordered)",
				i, serial[i].Benchmark, parallel[i].Benchmark, name)
		}
		if !reflect.DeepEqual(serial[i].Baseline.Metrics, parallel[i].Baseline.Metrics) {
			t.Errorf("%s: baseline metrics differ between jobs=1 and jobs=8", name)
		}
		if serial[i].Best != parallel[i].Best {
			t.Errorf("%s: best variant differs: %v vs %v", name, serial[i].Best, parallel[i].Best)
		}
		for v, r := range serial[i].PreFix {
			if r.Metrics.Cycles != parallel[i].PreFix[v].Metrics.Cycles {
				t.Errorf("%s %v: cycles differ: %v vs %v", name, v,
					r.Metrics.Cycles, parallel[i].PreFix[v].Metrics.Cycles)
			}
		}
	}
}

// TestRunSuiteSharedObsRace drives one registry and tracer from many
// workers; `go test -race` is the assertion.
func TestRunSuiteSharedObsRace(t *testing.T) {
	opt := fastOpt()
	opt.Metrics = obs.NewRegistry()
	opt.Tracer = obs.NewTracer()
	names := []string{"swissmap", "health", "ft", "libc"}
	cmps, err := RunSuite(names, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != len(names) {
		t.Fatalf("comparisons = %d, want %d", len(cmps), len(names))
	}
	// One root span per benchmark, regardless of completion order.
	if roots := opt.Tracer.Roots(); len(roots) != len(names) {
		t.Errorf("root spans = %d, want %d", len(roots), len(names))
	}
	// Every benchmark's series must survive in the shared registry.
	for _, name := range names {
		if v := opt.Metrics.Gauge("prefix_run_cycles", "benchmark", name, "run", "baseline").Value(); v == 0 {
			t.Errorf("%s: baseline cycles missing from shared registry", name)
		}
	}
}

func TestRunSuiteAggregatesErrors(t *testing.T) {
	_, err := RunSuite([]string{"swissmap", "nope", "also-nope"}, fastOpt(), 2)
	if err == nil {
		t.Fatal("unknown benchmarks must fail the suite")
	}
	for _, want := range []string{"nope:", "also-nope:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRunSuiteVarianceMatchesSerial(t *testing.T) {
	names := []string{"swissmap", "health"}
	serial, err := RunSuiteVariance(names, 3, fastOpt(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuiteVariance(names, 3, fastOpt(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("variance differs between jobs=1 and jobs=6:\n  serial:   %+v %+v\n  parallel: %+v %+v",
			serial[0], serial[1], parallel[0], parallel[1])
	}
}

// TestVarianceProfileOnce pins the profile-reuse fix: one "profile" span
// per benchmark no matter how many seeds run.
func TestVarianceProfileOnce(t *testing.T) {
	opt := fastOpt()
	opt.Tracer = obs.NewTracer()
	if _, err := RunVariance("swissmap", 3, opt); err != nil {
		t.Fatal(err)
	}
	roots := opt.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if roots[0].Name != "variance swissmap" {
		t.Errorf("root span = %q, want \"variance swissmap\"", roots[0].Name)
	}
	profiles, seeds := 0, 0
	for _, c := range roots[0].Children() {
		switch {
		case c.Name == "profile":
			profiles++
		case strings.HasPrefix(c.Name, "seed "):
			seeds++
		}
	}
	if profiles != 1 {
		t.Errorf("profile spans = %d, want exactly 1 (profile must be collected once)", profiles)
	}
	if seeds != 3 {
		t.Errorf("seed spans = %d, want 3", seeds)
	}
}

// TestVarianceSeedLabels pins the metrics fix: every seed's run series
// survives in the export under its own "seed" label.
func TestVarianceSeedLabels(t *testing.T) {
	opt := fastOpt()
	opt.Metrics = obs.NewRegistry()
	if _, err := RunVariance("swissmap", 2, opt); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []string{"0", "1"} {
		v := opt.Metrics.Gauge("prefix_run_cycles",
			"benchmark", "swissmap", "run", "baseline", "seed", seed).Value()
		if v == 0 {
			t.Errorf("seed %s: baseline run series missing (seed label not threaded through)", seed)
		}
	}
	// The shared profile run carries no seed label.
	if v := opt.Metrics.Gauge("prefix_run_cycles", "benchmark", "swissmap", "run", "profile").Value(); v == 0 {
		t.Error("profile run series missing")
	}
}

func TestRunMultithreadedJobsMatchesSerial(t *testing.T) {
	counts := []int{1, 2, 4}
	serial, err := RunMultithreaded("mcf", counts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMultithreadedJobs("mcf", counts, fastOpt(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Figure 10 series differs between serial and parallel:\n  %+v\n  %+v", serial, parallel)
	}
}

func TestProgressCallback(t *testing.T) {
	opt := fastOpt()
	var mu sync.Mutex
	var events []obs.JobEvent
	opt.Progress = func(ev obs.JobEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	names := []string{"swissmap", "health"}
	if _, err := RunSuite(names, opt, 2); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("progress events = %d (%v), want 4 (running+done per job)", len(events), events)
	}
	perJob := map[int][]obs.JobEvent{}
	for _, ev := range events {
		if ev.Phase != "suite" {
			t.Errorf("event phase = %q, want \"suite\"", ev.Phase)
		}
		if ev.Jobs != 2 || ev.Seed != -1 {
			t.Errorf("event %+v: want Jobs=2, Seed=-1", ev)
		}
		if ev.Benchmark != names[ev.Job] {
			t.Errorf("job %d carries benchmark %q, want %q", ev.Job, ev.Benchmark, names[ev.Job])
		}
		perJob[ev.Job] = append(perJob[ev.Job], ev)
	}
	for job, evs := range perJob {
		if len(evs) != 2 || evs[0].State != obs.JobRunning || evs[1].State != obs.JobDone {
			t.Errorf("job %d events = %+v, want running then done", job, evs)
		}
	}
}

// TestProgressCallbackFailure pins that a failing job emits a failed
// event carrying the error text.
func TestProgressCallbackFailure(t *testing.T) {
	opt := fastOpt()
	var mu sync.Mutex
	var failed []obs.JobEvent
	opt.Progress = func(ev obs.JobEvent) {
		mu.Lock()
		if ev.State == obs.JobFailed {
			failed = append(failed, ev)
		}
		mu.Unlock()
	}
	if _, err := RunSuite([]string{"swissmap", "nope"}, opt, 2); err == nil {
		t.Fatal("suite with unknown benchmark must fail")
	}
	if len(failed) != 1 || failed[0].Benchmark != "nope" || failed[0].Err == "" {
		t.Errorf("failed events = %+v, want one for \"nope\" with error text", failed)
	}
}

// TestVarianceProgressEvents pins the seed/job indices that make variance
// sweep progress lines distinguishable.
func TestVarianceProgressEvents(t *testing.T) {
	opt := fastOpt()
	var mu sync.Mutex
	seen := map[string]bool{}
	opt.Progress = func(ev obs.JobEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Phase != "variance" || ev.Jobs != 2 || ev.Seeds != 2 {
			t.Errorf("event %+v: want phase=variance, Jobs=2, Seeds=2", ev)
		}
		if ev.State == obs.JobRunning {
			seen[ev.String()] = true
		}
	}
	if _, err := RunVariance("swissmap", 2, opt); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Errorf("distinct running lines = %d (%v), want 2 — seed sweeps must be distinguishable", len(seen), seen)
	}
}
