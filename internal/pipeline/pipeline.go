// Package pipeline orchestrates the full PreFix flow of the paper's
// Figure 8 for one benchmark: run the profiling input under the tracing
// machine, analyze the trace (hot objects, hot data streams, layout,
// contexts), build the per-variant plans and baseline configurations, run
// the evaluation input under every allocation strategy, and assemble the
// measurements every table and figure reports.
package pipeline

import (
	"fmt"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Options configures a benchmark evaluation.
type Options struct {
	// Cache is the simulated memory hierarchy (ScaledConfig by default).
	Cache cachesim.Config
	// Plan is the base planning configuration; Variant is overridden per
	// run and Benchmark is filled in by the pipeline.
	Plan prefix.PlanConfig
	// UseBenchScale selects spec.Bench instead of spec.Long for the
	// evaluation runs (used by the Go benchmark harness).
	UseBenchScale bool
	// CaptureLongRun additionally records and analyzes the best PreFix
	// evaluation run, producing the Table 5 long-run columns. Costs
	// memory proportional to the trace length.
	CaptureLongRun bool
	// Variants to evaluate; defaults to all three.
	Variants []prefix.Variant
}

// DefaultOptions returns the standard evaluation setup.
func DefaultOptions() Options {
	return Options{
		Cache:    cachesim.ScaledConfig(),
		Plan:     prefix.DefaultPlanConfig("", prefix.VariantHDSHot),
		Variants: []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot},
	}
}

// Profile is the product of the profiling run.
type Profile struct {
	Analysis *trace.Analysis
	Hot      *hotness.Set
	// StreamsLCS is the paper's LCS-mined OHDS (drives PreFix planning
	// and HALO affinity grouping); StreamsSequitur drives the HDS
	// baseline's site choice, as in the original HDS work.
	StreamsLCS      []hds.Stream
	StreamsSequitur []hds.Stream
	// Metrics of the profiling run itself.
	Metrics machine.Metrics
}

// CollectProfile runs the benchmark's profiling input under the tracing
// machine with the baseline allocator and analyzes the trace.
func CollectProfile(spec workloads.Spec, opt Options) (*Profile, error) {
	rec := trace.NewRecorder()
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics := m.Finish()

	a := trace.Analyze(rec.Trace())
	if a.HeapAccesses == 0 {
		return nil, fmt.Errorf("pipeline: %s profiling run produced no heap accesses", spec.Program.Name())
	}
	cfg := opt.Plan
	cfg.Benchmark = spec.Program.Name()
	hot := prefix.SelectHot(a, cfg)

	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	return &Profile{
		Analysis:        a,
		Hot:             hot,
		StreamsLCS:      weigh(hds.MineLCS(refs, cfg.HDS), hot),
		StreamsSequitur: weigh(hds.MineSequitur(refs, cfg.HDS), hot),
		Metrics:         metrics,
	}, nil
}

func weigh(streams []hds.Stream, hot *hotness.Set) []hds.Stream {
	accesses := make(map[mem.ObjectID]uint64, len(hot.Objects))
	for _, o := range hot.Objects {
		accesses[o.ID] = o.Accesses
	}
	return hds.WeighByAccesses(streams, accesses)
}
