// Package pipeline orchestrates the full PreFix flow of the paper's
// Figure 8 for one benchmark: run the profiling input under the tracing
// machine, analyze the trace (hot objects, hot data streams, layout,
// contexts), build the per-variant plans and baseline configurations, run
// the evaluation input under every allocation strategy, and assemble the
// measurements every table and figure reports.
package pipeline

import (
	"fmt"
	"io"
	"os"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Options configures a benchmark evaluation.
type Options struct {
	// Cache is the simulated memory hierarchy (ScaledConfig by default).
	Cache cachesim.Config
	// Plan is the base planning configuration; Variant is overridden per
	// run and Benchmark is filled in by the pipeline.
	Plan prefix.PlanConfig
	// UseBenchScale selects spec.Bench instead of spec.Long for the
	// evaluation runs (used by the Go benchmark harness).
	UseBenchScale bool
	// CaptureLongRun additionally records and analyzes the best PreFix
	// evaluation run, producing the Table 5 long-run columns. Costs
	// memory proportional to the trace length.
	CaptureLongRun bool
	// Variants to evaluate; defaults to all three.
	Variants []prefix.Variant
	// Metrics, when non-nil, receives every stage's counters and every
	// run's metrics (exportable as Prometheus text or JSON). Tracer, when
	// non-nil, receives one span per Figure-8 phase. Both default to nil;
	// the no-op path does no observability work, so reported numbers are
	// identical with or without them.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Perf, when non-nil, receives host-cost samples: every profile,
	// suite, variance, multithreaded, and figure9 job is bracketed by a
	// perfstat scope measuring wall time, heap allocation, GC cost, and
	// events/sec throughput on the host. Like Metrics/Tracer it is
	// nil-safe and never influences reported results.
	Perf *perfstat.Collector
	// Labels are extra label key/value pairs appended to every metric
	// series the pipeline publishes. The variance sweep uses it to attach
	// a "seed" label so all N seed runs survive in the export instead of
	// overwriting one another.
	Labels []string
	// Progress, when non-nil, receives a structured obs.JobEvent as each
	// suite job starts (running) and finishes (done or failed) — the CLIs
	// print stderr progress lines through it and feed the observability
	// server's /status tracker from the same stream. Suite runners invoke
	// it from worker goroutines, so it must be safe for concurrent use.
	Progress func(ev obs.JobEvent)
	// Attribution enables object-centric attribution: every evaluation
	// run's machine charges each cache/TLB event to the malloc site that
	// owns the touched address (RunResult.Attrib), every plan build
	// records its decision ledger (Summary.Ledger), per-site
	// prefix_attrib_* series are published when Metrics is attached, and
	// per-benchmark Explain documents are stored when Explain is
	// attached. Purely observational: reported Counts and report bytes
	// are identical with or without it — the attribution walk is the
	// same simulation path — at the cost of one range lookup per access.
	Attribution bool
	// Explain, when non-nil (and Attribution is on), receives one
	// per-benchmark Explain document as each suite job completes; the
	// obshttp /explain endpoint serves its snapshot.
	Explain *obs.ExplainStore
	// Shards selects the analysis path for profiling traces. Values > 1
	// route the analyze stage through the sharded pool (parallel chunk
	// decode feeding per-shard analyzers with a deterministic merge),
	// whose output is identical to the single-pass analyzer's at every
	// shard count; 0 and 1 select the legacy single-pass path. Shard
	// workers are bracketed by perfstat scopes ("analyze-decode",
	// "analyze-shard", "analyze-merge") when Perf is attached and emit
	// shard-stage JobEvents through Progress.
	Shards int
	// Stream routes profiling runs through the bounded-memory path: the
	// machine records into a spill-to-disk chunked trace file and the
	// analysis consumes it as a stream, so peak trace-buffer memory is
	// one chunk instead of the whole trace. The resulting Profile is
	// identical to the in-memory path's.
	Stream bool
	// StreamChunkEvents bounds the spill buffer in events per chunk;
	// values < 1 select trace.DefaultChunkEvents.
	StreamChunkEvents int
	// StreamDir is where profiling spill files are created (the system
	// temp directory when empty). Files are removed when the profile
	// collection returns.
	StreamDir string
}

// progress invokes the Progress callback when one is set.
func (o Options) progress(ev obs.JobEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// shardConfig assembles the trace-layer sharding configuration for one
// benchmark's analyze stage: the shard count, the host-cost collector,
// and a progress adapter stamping the benchmark name onto the shard
// workers' JobEvents before forwarding them.
func (o Options) shardConfig(benchmark string) trace.ShardConfig {
	cfg := trace.ShardConfig{Shards: o.Shards, Perf: o.Perf}
	if prog := o.Progress; prog != nil {
		cfg.Progress = func(ev obs.JobEvent) {
			ev.Benchmark = benchmark
			prog(ev)
		}
	}
	return cfg
}

// instrumentJob brackets one job body with running/done/failed progress
// events. Panics inside body are converted to errors (so the failed event
// always fires) and propagated as errors, exactly as runJobs would have
// reported them.
func (o Options) instrumentJob(ev obs.JobEvent, body func() error) error {
	ev.State = obs.JobRunning
	ev.Err = ""
	o.progress(ev)
	err := runProtected(body)
	if err != nil {
		ev.State = obs.JobFailed
		ev.Err = err.Error()
	} else {
		ev.State = obs.JobDone
	}
	o.progress(ev)
	return err
}

// DefaultOptions returns the standard evaluation setup.
func DefaultOptions() Options {
	return Options{
		Cache:    cachesim.ScaledConfig(),
		Plan:     prefix.DefaultPlanConfig("", prefix.VariantHDSHot),
		Variants: []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot},
	}
}

// Profile is the product of the profiling run.
type Profile struct {
	Analysis *trace.Analysis
	Hot      *hotness.Set
	// StreamsLCS is the paper's LCS-mined OHDS (drives PreFix planning
	// and HALO affinity grouping); StreamsSequitur drives the HDS
	// baseline's site choice, as in the original HDS work.
	StreamsLCS      []hds.Stream
	StreamsSequitur []hds.Stream
	// Metrics of the profiling run itself.
	Metrics machine.Metrics
	// Stats is what the profiling recorder captured (event count, spill
	// chunking) — the event total feeds host-cost throughput accounting.
	Stats trace.RecorderStats
	// AnalysisHost is the analyze stage's own host-cost sample (wall
	// time, allocation, events/sec over the trace's events), measured
	// when Options.Perf is attached; nil otherwise. AnalysisShards is
	// the shard count the analysis ran with (1 = single-pass). Neither
	// feeds report output.
	AnalysisHost   *perfstat.Sample
	AnalysisShards int
}

// CollectProfile runs the benchmark's profiling input under the tracing
// machine with the baseline allocator and analyzes the trace.
func CollectProfile(spec workloads.Spec, opt Options) (*Profile, error) {
	span := opt.Tracer.Start("profile " + spec.Program.Name())
	defer span.End()
	return collectProfile(spec, opt, span)
}

// collectProfile is CollectProfile under a caller-provided parent span:
// it emits one child span per profiling stage (profile-run, analyze,
// hotness, hds-mining) and publishes the stage counters when a registry
// is attached. Options.Stream selects the bounded-memory recording and
// analysis path; the resulting Profile is identical either way.
func collectProfile(spec workloads.Spec, opt Options, parent *obs.Span) (*Profile, error) {
	name := spec.Program.Name()
	sc := opt.Perf.Begin("profile").AttachSpan(parent)
	defer sc.End()

	var (
		a       *trace.Analysis
		metrics machine.Metrics
		stats   trace.RecorderStats
		anHost  *perfstat.Sample
		err     error
	)
	if opt.Stream {
		a, metrics, stats, anHost, err = streamProfileRun(spec, opt, parent)
	} else {
		a, metrics, stats, anHost = memoryProfileRun(spec, opt, parent)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s streaming profile: %w", name, err)
	}
	sc.AddEvents(stats.Events)
	if a.HeapAccesses == 0 {
		return nil, fmt.Errorf("pipeline: %s profiling run produced no heap accesses", name)
	}

	hotSpan := parent.Child("hotness")
	cfg := opt.Plan
	cfg.Benchmark = name
	hot := prefix.SelectHot(a, cfg)
	hotSpan.Set("hot_objects", len(hot.Objects))
	hotSpan.Set("coverage_pct", hot.CoveragePct())
	hotSpan.End()

	mineSpan := parent.Child("hds-mining")
	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	lcs := weigh(hds.MineLCS(refs, cfg.HDS), hot)
	seq := weigh(hds.MineSequitur(refs, cfg.HDS), hot)
	mineSpan.Set("streams_lcs", len(lcs))
	mineSpan.Set("streams_sequitur", len(seq))
	mineSpan.End()

	if reg := opt.Metrics; reg != nil {
		kv := append([]string{"benchmark", name}, opt.Labels...)
		metrics.Publish(reg, append(kv, "run", "profile")...)
		stats.Publish(reg, kv...)
		reg.Counter("prefix_profile_trace_events_total", kv...).Add(stats.Events)
		reg.Counter("prefix_profile_heap_accesses_total", kv...).Add(a.HeapAccesses)
		reg.Gauge("prefix_profile_objects", kv...).Set(float64(len(a.Objects)))
		reg.Gauge("prefix_profile_hot_objects", kv...).Set(float64(len(hot.Objects)))
		reg.Gauge("prefix_profile_hot_coverage_pct", kv...).Set(hot.CoveragePct())
		reg.Gauge("prefix_profile_streams_lcs", kv...).Set(float64(len(lcs)))
		reg.Gauge("prefix_profile_streams_sequitur", kv...).Set(float64(len(seq)))
	}

	return &Profile{
		Analysis:        a,
		Hot:             hot,
		StreamsLCS:      lcs,
		StreamsSequitur: seq,
		Metrics:         metrics,
		Stats:           stats,
		AnalysisHost:    anHost,
		AnalysisShards:  max(opt.Shards, 1),
	}, nil
}

// memoryProfileRun is the reference profiling path: record the whole
// trace in memory, then analyze it (sharded when Options.Shards > 1).
func memoryProfileRun(spec workloads.Spec, opt Options, parent *obs.Span) (*trace.Analysis, machine.Metrics, trace.RecorderStats, *perfstat.Sample) {
	runSpan := parent.Child("profile-run")
	rec := trace.NewRecorder()
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics := m.Finish()
	tr := rec.Trace()
	stats := rec.Stats()
	runSpan.Set("events", len(tr.Events))
	runSpan.End()

	anSpan := parent.Child("analyze")
	asc := opt.Perf.Begin("analyze").AttachSpan(anSpan)
	var a *trace.Analysis
	if opt.Shards > 1 {
		a = trace.AnalyzeTraceSharded(tr, opt.shardConfig(spec.Program.Name()))
	} else {
		a = trace.Analyze(tr)
	}
	asc.AddEvents(stats.Events)
	sample := asc.End()
	anSpan.Set("objects", len(a.Objects))
	anSpan.Set("heap_accesses", a.HeapAccesses)
	anSpan.Set("shards", max(opt.Shards, 1))
	anSpan.End()
	var host *perfstat.Sample
	if opt.Perf != nil {
		host = &sample
	}
	return a, metrics, stats, host
}

// streamProfileRun is the bounded-memory profiling path: the machine
// records through a spill-to-disk recorder into a temporary chunked
// trace file, which is then analyzed as a stream (sharded when
// Options.Shards > 1 — indexed spill files decode in parallel).
// Trace-buffer memory never exceeds one chunk (StreamChunkEvents
// events).
func streamProfileRun(spec workloads.Spec, opt Options, parent *obs.Span) (_ *trace.Analysis, metrics machine.Metrics, stats trace.RecorderStats, host *perfstat.Sample, err error) {
	runSpan := parent.Child("profile-run")
	f, err := os.CreateTemp(opt.StreamDir, "prefix-spill-*.pfxt")
	if err != nil {
		runSpan.End()
		return nil, metrics, stats, nil, err
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	rec, err := trace.NewSpillRecorder(f, opt.StreamChunkEvents)
	if err != nil {
		runSpan.End()
		return nil, metrics, stats, nil, err
	}
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics = m.Finish()
	if err := rec.Close(); err != nil {
		runSpan.End()
		return nil, metrics, stats, nil, err
	}
	stats = rec.Stats()
	runSpan.Set("events", stats.Events)
	runSpan.Set("chunks", stats.Chunks)
	runSpan.Set("peak_buffered_events", stats.PeakBufferedEvents)
	runSpan.End()

	anSpan := parent.Child("analyze")
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		anSpan.End()
		return nil, metrics, stats, nil, err
	}
	asc := opt.Perf.Begin("analyze").AttachSpan(anSpan)
	var a *trace.Analysis
	if opt.Shards > 1 {
		a, err = trace.AnalyzeStreamSharded(f, opt.shardConfig(spec.Program.Name()))
	} else {
		var sr *trace.StreamReader
		sr, err = trace.NewStreamReader(f)
		if err == nil {
			a, err = trace.AnalyzeSource(sr)
		}
	}
	asc.AddEvents(stats.Events)
	sample := asc.End()
	if err != nil {
		anSpan.End()
		return nil, metrics, stats, nil, err
	}
	if opt.Perf != nil {
		host = &sample
	}
	anSpan.Set("objects", len(a.Objects))
	anSpan.Set("heap_accesses", a.HeapAccesses)
	anSpan.Set("shards", max(opt.Shards, 1))
	anSpan.End()
	return a, metrics, stats, host, nil
}

func weigh(streams []hds.Stream, hot *hotness.Set) []hds.Stream {
	accesses := make(map[mem.ObjectID]uint64, len(hot.Objects))
	for _, o := range hot.Objects {
		accesses[o.ID] = o.Accesses
	}
	return hds.WeighByAccesses(streams, accesses)
}
