// Package pipeline orchestrates the full PreFix flow of the paper's
// Figure 8 for one benchmark: run the profiling input under the tracing
// machine, analyze the trace (hot objects, hot data streams, layout,
// contexts), build the per-variant plans and baseline configurations, run
// the evaluation input under every allocation strategy, and assemble the
// measurements every table and figure reports.
package pipeline

import (
	"fmt"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Options configures a benchmark evaluation.
type Options struct {
	// Cache is the simulated memory hierarchy (ScaledConfig by default).
	Cache cachesim.Config
	// Plan is the base planning configuration; Variant is overridden per
	// run and Benchmark is filled in by the pipeline.
	Plan prefix.PlanConfig
	// UseBenchScale selects spec.Bench instead of spec.Long for the
	// evaluation runs (used by the Go benchmark harness).
	UseBenchScale bool
	// CaptureLongRun additionally records and analyzes the best PreFix
	// evaluation run, producing the Table 5 long-run columns. Costs
	// memory proportional to the trace length.
	CaptureLongRun bool
	// Variants to evaluate; defaults to all three.
	Variants []prefix.Variant
	// Metrics, when non-nil, receives every stage's counters and every
	// run's metrics (exportable as Prometheus text or JSON). Tracer, when
	// non-nil, receives one span per Figure-8 phase. Both default to nil;
	// the no-op path does no observability work, so reported numbers are
	// identical with or without them.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Labels are extra label key/value pairs appended to every metric
	// series the pipeline publishes. The variance sweep uses it to attach
	// a "seed" label so all N seed runs survive in the export instead of
	// overwriting one another.
	Labels []string
	// Progress, when non-nil, receives a structured obs.JobEvent as each
	// suite job starts (running) and finishes (done or failed) — the CLIs
	// print stderr progress lines through it and feed the observability
	// server's /status tracker from the same stream. Suite runners invoke
	// it from worker goroutines, so it must be safe for concurrent use.
	Progress func(ev obs.JobEvent)
}

// progress invokes the Progress callback when one is set.
func (o Options) progress(ev obs.JobEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// instrumentJob brackets one job body with running/done/failed progress
// events. Panics inside body are converted to errors (so the failed event
// always fires) and propagated as errors, exactly as runJobs would have
// reported them.
func (o Options) instrumentJob(ev obs.JobEvent, body func() error) error {
	ev.State = obs.JobRunning
	ev.Err = ""
	o.progress(ev)
	err := runProtected(body)
	if err != nil {
		ev.State = obs.JobFailed
		ev.Err = err.Error()
	} else {
		ev.State = obs.JobDone
	}
	o.progress(ev)
	return err
}

// DefaultOptions returns the standard evaluation setup.
func DefaultOptions() Options {
	return Options{
		Cache:    cachesim.ScaledConfig(),
		Plan:     prefix.DefaultPlanConfig("", prefix.VariantHDSHot),
		Variants: []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot},
	}
}

// Profile is the product of the profiling run.
type Profile struct {
	Analysis *trace.Analysis
	Hot      *hotness.Set
	// StreamsLCS is the paper's LCS-mined OHDS (drives PreFix planning
	// and HALO affinity grouping); StreamsSequitur drives the HDS
	// baseline's site choice, as in the original HDS work.
	StreamsLCS      []hds.Stream
	StreamsSequitur []hds.Stream
	// Metrics of the profiling run itself.
	Metrics machine.Metrics
}

// CollectProfile runs the benchmark's profiling input under the tracing
// machine with the baseline allocator and analyzes the trace.
func CollectProfile(spec workloads.Spec, opt Options) (*Profile, error) {
	span := opt.Tracer.Start("profile " + spec.Program.Name())
	defer span.End()
	return collectProfile(spec, opt, span)
}

// collectProfile is CollectProfile under a caller-provided parent span:
// it emits one child span per profiling stage (profile-run, analyze,
// hotness, hds-mining) and publishes the stage counters when a registry
// is attached.
func collectProfile(spec workloads.Spec, opt Options, parent *obs.Span) (*Profile, error) {
	name := spec.Program.Name()

	runSpan := parent.Child("profile-run")
	rec := trace.NewRecorder()
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics := m.Finish()
	tr := rec.Trace()
	runSpan.Set("events", len(tr.Events))
	runSpan.End()

	anSpan := parent.Child("analyze")
	a := trace.Analyze(tr)
	if a.HeapAccesses == 0 {
		anSpan.End()
		return nil, fmt.Errorf("pipeline: %s profiling run produced no heap accesses", name)
	}
	anSpan.Set("objects", len(a.Objects))
	anSpan.Set("heap_accesses", a.HeapAccesses)
	anSpan.End()

	hotSpan := parent.Child("hotness")
	cfg := opt.Plan
	cfg.Benchmark = name
	hot := prefix.SelectHot(a, cfg)
	hotSpan.Set("hot_objects", len(hot.Objects))
	hotSpan.Set("coverage_pct", hot.CoveragePct())
	hotSpan.End()

	mineSpan := parent.Child("hds-mining")
	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	lcs := weigh(hds.MineLCS(refs, cfg.HDS), hot)
	seq := weigh(hds.MineSequitur(refs, cfg.HDS), hot)
	mineSpan.Set("streams_lcs", len(lcs))
	mineSpan.Set("streams_sequitur", len(seq))
	mineSpan.End()

	if reg := opt.Metrics; reg != nil {
		kv := append([]string{"benchmark", name}, opt.Labels...)
		metrics.Publish(reg, append(kv, "run", "profile")...)
		reg.Counter("prefix_profile_trace_events_total", kv...).Add(uint64(len(tr.Events)))
		reg.Counter("prefix_profile_heap_accesses_total", kv...).Add(a.HeapAccesses)
		reg.Gauge("prefix_profile_objects", kv...).Set(float64(len(a.Objects)))
		reg.Gauge("prefix_profile_hot_objects", kv...).Set(float64(len(hot.Objects)))
		reg.Gauge("prefix_profile_hot_coverage_pct", kv...).Set(hot.CoveragePct())
		reg.Gauge("prefix_profile_streams_lcs", kv...).Set(float64(len(lcs)))
		reg.Gauge("prefix_profile_streams_sequitur", kv...).Set(float64(len(seq)))
	}

	return &Profile{
		Analysis:        a,
		Hot:             hot,
		StreamsLCS:      lcs,
		StreamsSequitur: seq,
		Metrics:         metrics,
	}, nil
}

func weigh(streams []hds.Stream, hot *hotness.Set) []hds.Stream {
	accesses := make(map[mem.ObjectID]uint64, len(hot.Objects))
	for _, o := range hot.Objects {
		accesses[o.ID] = o.Accesses
	}
	return hds.WeighByAccesses(streams, accesses)
}
