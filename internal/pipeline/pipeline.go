// Package pipeline orchestrates the full PreFix flow of the paper's
// Figure 8 for one benchmark: run the profiling input under the tracing
// machine, analyze the trace (hot objects, hot data streams, layout,
// contexts), build the per-variant plans and baseline configurations, run
// the evaluation input under every allocation strategy, and assemble the
// measurements every table and figure reports.
package pipeline

import (
	"fmt"
	"io"
	"os"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/prefix"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Options configures a benchmark evaluation.
type Options struct {
	// Cache is the simulated memory hierarchy (ScaledConfig by default).
	Cache cachesim.Config
	// Plan is the base planning configuration; Variant is overridden per
	// run and Benchmark is filled in by the pipeline.
	Plan prefix.PlanConfig
	// UseBenchScale selects spec.Bench instead of spec.Long for the
	// evaluation runs (used by the Go benchmark harness).
	UseBenchScale bool
	// CaptureLongRun additionally records and analyzes the best PreFix
	// evaluation run, producing the Table 5 long-run columns. Costs
	// memory proportional to the trace length.
	CaptureLongRun bool
	// Variants to evaluate; defaults to all three.
	Variants []prefix.Variant
	// Metrics, when non-nil, receives every stage's counters and every
	// run's metrics (exportable as Prometheus text or JSON). Tracer, when
	// non-nil, receives one span per Figure-8 phase. Both default to nil;
	// the no-op path does no observability work, so reported numbers are
	// identical with or without them.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Perf, when non-nil, receives host-cost samples: every profile,
	// suite, variance, multithreaded, and figure9 job is bracketed by a
	// perfstat scope measuring wall time, heap allocation, GC cost, and
	// events/sec throughput on the host. Like Metrics/Tracer it is
	// nil-safe and never influences reported results.
	Perf *perfstat.Collector
	// Labels are extra label key/value pairs appended to every metric
	// series the pipeline publishes. The variance sweep uses it to attach
	// a "seed" label so all N seed runs survive in the export instead of
	// overwriting one another.
	Labels []string
	// Progress, when non-nil, receives a structured obs.JobEvent as each
	// suite job starts (running) and finishes (done or failed) — the CLIs
	// print stderr progress lines through it and feed the observability
	// server's /status tracker from the same stream. Suite runners invoke
	// it from worker goroutines, so it must be safe for concurrent use.
	Progress func(ev obs.JobEvent)
	// Attribution enables object-centric attribution: every evaluation
	// run's machine charges each cache/TLB event to the malloc site that
	// owns the touched address (RunResult.Attrib), every plan build
	// records its decision ledger (Summary.Ledger), per-site
	// prefix_attrib_* series are published when Metrics is attached, and
	// per-benchmark Explain documents are stored when Explain is
	// attached. Purely observational: reported Counts and report bytes
	// are identical with or without it — the attribution walk is the
	// same simulation path — at the cost of one range lookup per access.
	Attribution bool
	// Explain, when non-nil (and Attribution is on), receives one
	// per-benchmark Explain document as each suite job completes; the
	// obshttp /explain endpoint serves its snapshot.
	Explain *obs.ExplainStore
	// Stream routes profiling runs through the bounded-memory path: the
	// machine records into a spill-to-disk chunked trace file and the
	// analysis consumes it as a stream, so peak trace-buffer memory is
	// one chunk instead of the whole trace. The resulting Profile is
	// identical to the in-memory path's.
	Stream bool
	// StreamChunkEvents bounds the spill buffer in events per chunk;
	// values < 1 select trace.DefaultChunkEvents.
	StreamChunkEvents int
	// StreamDir is where profiling spill files are created (the system
	// temp directory when empty). Files are removed when the profile
	// collection returns.
	StreamDir string
}

// progress invokes the Progress callback when one is set.
func (o Options) progress(ev obs.JobEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// instrumentJob brackets one job body with running/done/failed progress
// events. Panics inside body are converted to errors (so the failed event
// always fires) and propagated as errors, exactly as runJobs would have
// reported them.
func (o Options) instrumentJob(ev obs.JobEvent, body func() error) error {
	ev.State = obs.JobRunning
	ev.Err = ""
	o.progress(ev)
	err := runProtected(body)
	if err != nil {
		ev.State = obs.JobFailed
		ev.Err = err.Error()
	} else {
		ev.State = obs.JobDone
	}
	o.progress(ev)
	return err
}

// DefaultOptions returns the standard evaluation setup.
func DefaultOptions() Options {
	return Options{
		Cache:    cachesim.ScaledConfig(),
		Plan:     prefix.DefaultPlanConfig("", prefix.VariantHDSHot),
		Variants: []prefix.Variant{prefix.VariantHot, prefix.VariantHDS, prefix.VariantHDSHot},
	}
}

// Profile is the product of the profiling run.
type Profile struct {
	Analysis *trace.Analysis
	Hot      *hotness.Set
	// StreamsLCS is the paper's LCS-mined OHDS (drives PreFix planning
	// and HALO affinity grouping); StreamsSequitur drives the HDS
	// baseline's site choice, as in the original HDS work.
	StreamsLCS      []hds.Stream
	StreamsSequitur []hds.Stream
	// Metrics of the profiling run itself.
	Metrics machine.Metrics
	// Stats is what the profiling recorder captured (event count, spill
	// chunking) — the event total feeds host-cost throughput accounting.
	Stats trace.RecorderStats
}

// CollectProfile runs the benchmark's profiling input under the tracing
// machine with the baseline allocator and analyzes the trace.
func CollectProfile(spec workloads.Spec, opt Options) (*Profile, error) {
	span := opt.Tracer.Start("profile " + spec.Program.Name())
	defer span.End()
	return collectProfile(spec, opt, span)
}

// collectProfile is CollectProfile under a caller-provided parent span:
// it emits one child span per profiling stage (profile-run, analyze,
// hotness, hds-mining) and publishes the stage counters when a registry
// is attached. Options.Stream selects the bounded-memory recording and
// analysis path; the resulting Profile is identical either way.
func collectProfile(spec workloads.Spec, opt Options, parent *obs.Span) (*Profile, error) {
	name := spec.Program.Name()
	sc := opt.Perf.Begin("profile").AttachSpan(parent)
	defer sc.End()

	var (
		a       *trace.Analysis
		metrics machine.Metrics
		stats   trace.RecorderStats
		err     error
	)
	if opt.Stream {
		a, metrics, stats, err = streamProfileRun(spec, opt, parent)
	} else {
		a, metrics, stats = memoryProfileRun(spec, opt, parent)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s streaming profile: %w", name, err)
	}
	sc.AddEvents(stats.Events)
	if a.HeapAccesses == 0 {
		return nil, fmt.Errorf("pipeline: %s profiling run produced no heap accesses", name)
	}

	hotSpan := parent.Child("hotness")
	cfg := opt.Plan
	cfg.Benchmark = name
	hot := prefix.SelectHot(a, cfg)
	hotSpan.Set("hot_objects", len(hot.Objects))
	hotSpan.Set("coverage_pct", hot.CoveragePct())
	hotSpan.End()

	mineSpan := parent.Child("hds-mining")
	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	lcs := weigh(hds.MineLCS(refs, cfg.HDS), hot)
	seq := weigh(hds.MineSequitur(refs, cfg.HDS), hot)
	mineSpan.Set("streams_lcs", len(lcs))
	mineSpan.Set("streams_sequitur", len(seq))
	mineSpan.End()

	if reg := opt.Metrics; reg != nil {
		kv := append([]string{"benchmark", name}, opt.Labels...)
		metrics.Publish(reg, append(kv, "run", "profile")...)
		stats.Publish(reg, kv...)
		reg.Counter("prefix_profile_trace_events_total", kv...).Add(stats.Events)
		reg.Counter("prefix_profile_heap_accesses_total", kv...).Add(a.HeapAccesses)
		reg.Gauge("prefix_profile_objects", kv...).Set(float64(len(a.Objects)))
		reg.Gauge("prefix_profile_hot_objects", kv...).Set(float64(len(hot.Objects)))
		reg.Gauge("prefix_profile_hot_coverage_pct", kv...).Set(hot.CoveragePct())
		reg.Gauge("prefix_profile_streams_lcs", kv...).Set(float64(len(lcs)))
		reg.Gauge("prefix_profile_streams_sequitur", kv...).Set(float64(len(seq)))
	}

	return &Profile{
		Analysis:        a,
		Hot:             hot,
		StreamsLCS:      lcs,
		StreamsSequitur: seq,
		Metrics:         metrics,
		Stats:           stats,
	}, nil
}

// memoryProfileRun is the reference profiling path: record the whole
// trace in memory, then analyze it.
func memoryProfileRun(spec workloads.Spec, opt Options, parent *obs.Span) (*trace.Analysis, machine.Metrics, trace.RecorderStats) {
	runSpan := parent.Child("profile-run")
	rec := trace.NewRecorder()
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics := m.Finish()
	tr := rec.Trace()
	stats := rec.Stats()
	runSpan.Set("events", len(tr.Events))
	runSpan.End()

	anSpan := parent.Child("analyze")
	a := trace.Analyze(tr)
	anSpan.Set("objects", len(a.Objects))
	anSpan.Set("heap_accesses", a.HeapAccesses)
	anSpan.End()
	return a, metrics, stats
}

// streamProfileRun is the bounded-memory profiling path: the machine
// records through a spill-to-disk recorder into a temporary chunked
// trace file, which is then analyzed as a stream. Trace-buffer memory
// never exceeds one chunk (StreamChunkEvents events).
func streamProfileRun(spec workloads.Spec, opt Options, parent *obs.Span) (_ *trace.Analysis, metrics machine.Metrics, stats trace.RecorderStats, err error) {
	runSpan := parent.Child("profile-run")
	f, err := os.CreateTemp(opt.StreamDir, "prefix-spill-*.pfxt")
	if err != nil {
		runSpan.End()
		return nil, metrics, stats, err
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	rec, err := trace.NewSpillRecorder(f, opt.StreamChunkEvents)
	if err != nil {
		runSpan.End()
		return nil, metrics, stats, err
	}
	alloc := baselines.NewBaseline(opt.Cache.Cost)
	m := machine.New(alloc, opt.Cache, machine.WithRecorder(rec))
	spec.Program.Run(m, spec.Profile)
	metrics = m.Finish()
	if err := rec.Close(); err != nil {
		runSpan.End()
		return nil, metrics, stats, err
	}
	stats = rec.Stats()
	runSpan.Set("events", stats.Events)
	runSpan.Set("chunks", stats.Chunks)
	runSpan.Set("peak_buffered_events", stats.PeakBufferedEvents)
	runSpan.End()

	anSpan := parent.Child("analyze")
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		anSpan.End()
		return nil, metrics, stats, err
	}
	sr, err := trace.NewStreamReader(f)
	if err != nil {
		anSpan.End()
		return nil, metrics, stats, err
	}
	a, err := trace.AnalyzeSource(sr)
	if err != nil {
		anSpan.End()
		return nil, metrics, stats, err
	}
	anSpan.Set("objects", len(a.Objects))
	anSpan.Set("heap_accesses", a.HeapAccesses)
	anSpan.End()
	return a, metrics, stats, nil
}

func weigh(streams []hds.Stream, hot *hotness.Set) []hds.Stream {
	accesses := make(map[mem.ObjectID]uint64, len(hot.Objects))
	for _, o := range hot.Objects {
		accesses[o.ID] = o.Accesses
	}
	return hds.WeighByAccesses(streams, accesses)
}
