package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prefix/internal/mem"
)

// Binary trace file format (all integers unsigned varints):
//
//	magic "PFXT" | version | instr | eventCount | events...
//
// Each event starts with a tag byte (Kind, with the high bit carrying the
// Write flag for accesses) followed by kind-specific fields. Addresses are
// delta-encoded against the previous address of the same kind to keep files
// compact — profiling traces reach tens of millions of events.
const (
	magic   = "PFXT"
	version = 1
)

// Write serializes the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(version); err != nil {
		return err
	}
	if err := putUvarint(t.Instr); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var prevAddr [5]uint64 // previous address per kind, for delta encoding
	for _, ev := range t.Events {
		tag := byte(ev.Kind)
		if ev.Kind == KindAccess && ev.Write {
			tag |= 0x80
		}
		if err := bw.WriteByte(tag); err != nil {
			return err
		}
		delta := uint64(ev.Addr) - prevAddr[ev.Kind]
		prevAddr[ev.Kind] = uint64(ev.Addr)
		if err := putUvarint(zigzag(delta)); err != nil {
			return err
		}
		switch ev.Kind {
		case KindAlloc:
			if err := putUvarint(uint64(ev.Site)); err != nil {
				return err
			}
			if err := putUvarint(uint64(ev.Stack)); err != nil {
				return err
			}
			if err := putUvarint(ev.Size); err != nil {
				return err
			}
		case KindRealloc:
			if err := putUvarint(uint64(ev.Addr2)); err != nil {
				return err
			}
			if err := putUvarint(ev.Size); err != nil {
				return err
			}
		case KindAccess:
			if err := putUvarint(ev.Size); err != nil {
				return err
			}
		case KindFree:
			// address only
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic (not a PreFix trace file)")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	if t.Instr, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation: the header count is untrusted (a corrupt or
	// malicious file could claim 2⁶⁴ events); append grows the slice as
	// real events actually decode.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Events = make([]Event, 0, capHint)
	var prevAddr [5]uint64
	for i := uint64(0); i < count; i++ {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		var ev Event
		ev.Kind = Kind(tag & 0x7f)
		if ev.Kind < KindAlloc || ev.Kind > KindAccess {
			return nil, fmt.Errorf("trace: event %d: bad kind %d", i, ev.Kind)
		}
		ev.Write = tag&0x80 != 0
		zd, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prevAddr[ev.Kind] += unzigzag(zd)
		ev.Addr = mem.Addr(prevAddr[ev.Kind])
		switch ev.Kind {
		case KindAlloc:
			site, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ev.Site = mem.SiteID(site)
			stack, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ev.Stack = mem.StackSig(stack)
			if ev.Size, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		case KindRealloc:
			a2, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ev.Addr2 = mem.Addr(a2)
			if ev.Size, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		case KindAccess:
			if ev.Size, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// zigzag maps a two's-complement delta to an unsigned value with small
// magnitudes near zero, so varints stay short for both directions.
func zigzag(d uint64) uint64 {
	s := int64(d)
	return uint64(s<<1) ^ uint64(s>>63)
}

func unzigzag(z uint64) uint64 {
	return uint64(int64(z>>1) ^ -int64(z&1))
}
