package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"prefix/internal/mem"
)

// Binary trace file format (all integers unsigned varints):
//
//	magic "PFXT" | version=1 | instr | eventCount | events...
//
// Each event starts with a tag byte (Kind, with the high bit carrying the
// Write flag for accesses) followed by kind-specific fields. Addresses are
// delta-encoded against the previous address of the same kind to keep files
// compact — profiling traces reach tens of millions of events.
//
// Version 2 is the chunked stream container (see stream.go); it frames
// the same event encoding into fixed-size chunks so it can be produced
// and consumed incrementally. Version 3 keeps the chunk framing and
// additionally stamps every chunk frame with its encoded byte length and
// the delta-decoder state at the chunk's first event, so chunks can be
// located and decoded independently (the parallel analysis path in
// shard.go). Read accepts all three versions.
const (
	magic          = "PFXT"
	version        = 1
	versionChunked = 2
	versionIndexed = 3
)

// maxEventEncodedBytes bounds one encoded event: tag byte plus at most
// four 10-byte varints (address delta, site/old-address, stack/new-
// address, size). The stream reader uses it to reject chunk frames whose
// declared byte length could not possibly hold the declared event count.
const maxEventEncodedBytes = 1 + 4*binary.MaxVarintLen64

// maxPreallocEvents caps how many Events Read preallocates from the
// untrusted header count: a corrupt or hostile file can claim 2⁶⁴
// events, so the initial allocation is bounded and the slice grows only
// as real events actually decode.
const maxPreallocEvents = 1 << 16

// byteWriter is what the event encoder needs from its destination; both
// *bufio.Writer (classic Write) and *bytes.Buffer (chunk staging)
// satisfy it.
type byteWriter interface {
	io.Writer
	io.ByteWriter
}

// eventEncoder encodes events with per-kind address delta compression.
// Its state must run continuously over the whole stream (chunk framing
// does not reset it).
type eventEncoder struct {
	w        byteWriter
	prevAddr [5]uint64 // previous address per kind, for delta encoding
	buf      [binary.MaxVarintLen64]byte
}

func (e *eventEncoder) putUvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.w.Write(e.buf[:n])
	return err
}

// encode writes one event.
func (e *eventEncoder) encode(ev Event) error {
	if ev.Kind < KindAlloc || ev.Kind > KindAccess {
		return fmt.Errorf("trace: cannot encode event of kind %d", ev.Kind)
	}
	tag := byte(ev.Kind)
	if ev.Kind == KindAccess && ev.Write {
		tag |= 0x80
	}
	if err := e.w.WriteByte(tag); err != nil {
		return err
	}
	delta := uint64(ev.Addr) - e.prevAddr[ev.Kind]
	e.prevAddr[ev.Kind] = uint64(ev.Addr)
	if err := e.putUvarint(zigzag(delta)); err != nil {
		return err
	}
	switch ev.Kind {
	case KindAlloc:
		if err := e.putUvarint(uint64(ev.Site)); err != nil {
			return err
		}
		if err := e.putUvarint(uint64(ev.Stack)); err != nil {
			return err
		}
		return e.putUvarint(ev.Size)
	case KindRealloc:
		if err := e.putUvarint(uint64(ev.Addr2)); err != nil {
			return err
		}
		return e.putUvarint(ev.Size)
	case KindAccess:
		return e.putUvarint(ev.Size)
	}
	return nil // KindFree: address only
}

// eventDecoder mirrors eventEncoder; i is the running event index, used
// only for error messages.
type eventDecoder struct {
	br       *bufio.Reader
	prevAddr [5]uint64
}

func (d *eventDecoder) decode(i uint64) (Event, error) {
	tag, err := d.br.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: %w", i, err)
	}
	var ev Event
	ev.Kind = Kind(tag & 0x7f)
	if ev.Kind < KindAlloc || ev.Kind > KindAccess {
		return Event{}, fmt.Errorf("trace: event %d: bad kind %d", i, ev.Kind)
	}
	ev.Write = tag&0x80 != 0
	zd, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Event{}, err
	}
	d.prevAddr[ev.Kind] += unzigzag(zd)
	ev.Addr = mem.Addr(d.prevAddr[ev.Kind])
	switch ev.Kind {
	case KindAlloc:
		site, err := binary.ReadUvarint(d.br)
		if err != nil {
			return Event{}, err
		}
		ev.Site = mem.SiteID(site)
		stack, err := binary.ReadUvarint(d.br)
		if err != nil {
			return Event{}, err
		}
		ev.Stack = mem.StackSig(stack)
		if ev.Size, err = binary.ReadUvarint(d.br); err != nil {
			return Event{}, err
		}
	case KindRealloc:
		a2, err := binary.ReadUvarint(d.br)
		if err != nil {
			return Event{}, err
		}
		ev.Addr2 = mem.Addr(a2)
		if ev.Size, err = binary.ReadUvarint(d.br); err != nil {
			return Event{}, err
		}
	case KindAccess:
		if ev.Size, err = binary.ReadUvarint(d.br); err != nil {
			return Event{}, err
		}
	}
	return ev, nil
}

// Write serializes the trace in the classic version-1 layout.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeUvarint(bw, version); err != nil {
		return err
	}
	if err := writeUvarint(bw, t.Instr); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(t.Events))); err != nil {
		return err
	}
	enc := eventEncoder{w: bw}
	for _, ev := range t.Events {
		if err := enc.encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read materializes a trace file written by Write or by a StreamWriter
// (both container versions). It is the in-memory convenience over
// NewStreamReader; use the stream reader directly to stay within a
// bounded event buffer.
func Read(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	t.Events = make([]Event, 0, sr.capHint())
	for {
		ev, ok := sr.Next()
		if !ok {
			break
		}
		t.Events = append(t.Events, ev)
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	t.Instr = sr.Instr()
	return t, nil
}

// zigzag maps a two's-complement delta to an unsigned value with small
// magnitudes near zero, so varints stay short for both directions.
func zigzag(d uint64) uint64 {
	s := int64(d)
	return uint64(s<<1) ^ uint64(s>>63)
}

func unzigzag(z uint64) uint64 {
	return uint64(int64(z>>1) ^ -int64(z&1))
}
