package trace

import (
	"sort"

	"prefix/internal/mem"
)

// intervalIndex maps live, non-overlapping address intervals to objects.
// It keeps a sorted slice of interval starts: find is O(log n); insert and
// remove shift the slice, which is O(live set) but with a tiny constant —
// allocation events are orders of magnitude rarer than accesses in every
// workload, so the index stays far from being the analysis bottleneck.
type intervalIndex struct {
	starts []mem.Addr
	items  map[mem.Addr]*interval
}

type interval struct {
	size uint64
	obj  *Object
}

func newIntervalIndex() *intervalIndex {
	return &intervalIndex{items: make(map[mem.Addr]*interval)}
}

func (x *intervalIndex) insert(addr mem.Addr, size uint64, obj *Object) {
	if size == 0 {
		size = 1
	}
	if _, dup := x.items[addr]; !dup {
		i := sort.Search(len(x.starts), func(i int) bool { return x.starts[i] >= addr })
		x.starts = append(x.starts, 0)
		copy(x.starts[i+1:], x.starts[i:])
		x.starts[i] = addr
	}
	x.items[addr] = &interval{size: size, obj: obj}
}

func (x *intervalIndex) remove(addr mem.Addr) *Object {
	it := x.items[addr]
	if it == nil {
		return nil
	}
	delete(x.items, addr)
	i := sort.Search(len(x.starts), func(i int) bool { return x.starts[i] >= addr })
	if i < len(x.starts) && x.starts[i] == addr {
		x.starts = append(x.starts[:i], x.starts[i+1:]...)
	}
	return it.obj
}

// find returns the live object whose interval contains addr, or nil.
func (x *intervalIndex) find(addr mem.Addr) *Object {
	// Fast path: addr is an interval base (common for small objects).
	if it := x.items[addr]; it != nil {
		return it.obj
	}
	i := sort.Search(len(x.starts), func(i int) bool { return x.starts[i] > addr })
	if i == 0 {
		return nil
	}
	start := x.starts[i-1]
	it := x.items[start]
	if it != nil && uint64(addr-start) < it.size {
		return it.obj
	}
	return nil
}

// len reports the number of live intervals.
func (x *intervalIndex) len() int { return len(x.starts) }
