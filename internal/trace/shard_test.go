package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/xrand"
)

// shardCounts is the differential matrix from the issue: 1 is the
// degenerate single-shard case, 2/3 split the site space unevenly, 8
// exceeds the distinct-site count of most fixtures.
var shardCounts = []int{1, 2, 3, 8}

// requireDeepEqual diffs two analyses field by field before the final
// DeepEqual, so a mismatch names the diverging field instead of just
// "not equal".
func requireDeepEqual(t *testing.T, label string, want, got *Analysis) {
	t.Helper()
	if got.Events != want.Events {
		t.Fatalf("%s: Events = %d, want %d", label, got.Events, want.Events)
	}
	if len(got.Objects) != len(want.Objects) {
		t.Fatalf("%s: Objects = %d, want %d", label, len(got.Objects), len(want.Objects))
	}
	for i := range want.Objects {
		if !reflect.DeepEqual(got.Objects[i], want.Objects[i]) {
			t.Fatalf("%s: object %d = %+v, want %+v", label, i+1, *got.Objects[i], *want.Objects[i])
		}
	}
	if !reflect.DeepEqual(got.Refs, want.Refs) {
		t.Fatalf("%s: Refs diverge (len %d vs %d)", label, len(got.Refs), len(want.Refs))
	}
	if !reflect.DeepEqual(got.RefAt, want.RefAt) {
		t.Fatalf("%s: RefAt diverges", label)
	}
	if got.MaxLive != want.MaxLive || !reflect.DeepEqual(got.SiteMaxLive, want.SiteMaxLive) {
		t.Fatalf("%s: live peaks diverge: MaxLive %d vs %d, SiteMaxLive %v vs %v",
			label, got.MaxLive, want.MaxLive, got.SiteMaxLive, want.SiteMaxLive)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: analyses diverge", label)
	}
}

// diffSharded checks the full differential matrix for one trace: the
// in-memory sharded path and the streamed sharded path (several chunk
// sizes) against the single-pass analyzers.
func diffSharded(t *testing.T, tr *Trace) {
	t.Helper()
	want := Analyze(tr)
	for _, n := range shardCounts {
		got := AnalyzeTraceSharded(tr, ShardConfig{Shards: n, ChunkEvents: 5})
		requireDeepEqual(t, "mem shards="+itoa(n), want, got)
	}
	for _, chunk := range []int{1, 3, 64} {
		data := writeChunked(t, tr, chunk)
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		wantStream, err := AnalyzeSource(sr)
		if err != nil {
			t.Fatal(err)
		}
		requireDeepEqual(t, "stream single-pass chunk="+itoa(chunk), want, wantStream)
		for _, n := range shardCounts {
			got, err := AnalyzeStreamSharded(bytes.NewReader(data), ShardConfig{Shards: n})
			if err != nil {
				t.Fatalf("stream shards=%d chunk=%d: %v", n, chunk, err)
			}
			requireDeepEqual(t, "stream shards="+itoa(n)+" chunk="+itoa(chunk), want, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestShardedMatchesSinglePassRecorded(t *testing.T) {
	diffSharded(t, record())
}

func TestShardedMatchesSinglePassEmpty(t *testing.T) {
	r := NewRecorder()
	r.AddInstr(77)
	diffSharded(t, r.Trace())
}

// adversarialTrace builds the straddle fixture from the issue: object
// lifetimes engineered to cross any naive partition boundary — reallocs
// that move an object into another site's address territory, duplicate
// live base addresses where the newer allocation shadows the older, a
// realloc landing exactly on a foreign object's base, and metadata
// events for addresses the heap never allocated.
func adversarialTrace() *Trace {
	r := NewRecorder()

	// obj1 (site 1) and obj2 (site 2) land in different shards at every
	// shard count > 1.
	r.Alloc(1, 0xa1, 0x1000, 64)
	r.Alloc(2, 0xb2, 0x2000, 64)
	r.Access(0x1010, 8, false) // obj1 interior
	r.Access(0x2020, 8, true)  // obj2 interior

	// obj1's lifetime straddles the address partition: realloc moves it
	// right next to obj2's territory, then it is accessed and freed at
	// the new address. Every shard must keep tracking the moved
	// interval or its later finds diverge.
	r.Realloc(0x1000, 0x2100, 32)
	r.Access(0x2110, 8, false) // obj1 after the move
	r.Access(0x1010, 8, false) // old address: heap miss now
	r.Free(0x2100)

	// Duplicate live base address: obj3 (site 3) is shadowed by obj4
	// (site 4) at the same base. Accesses attribute to the newer
	// object; the one free removes the one interval, so the address
	// then misses even though obj3 was never freed.
	r.Alloc(3, 0xc3, 0x5000, 48)
	r.Access(0x5008, 8, false) // obj3
	r.Alloc(4, 0xd4, 0x5000, 16)
	r.Access(0x5008, 8, true) // obj4 shadows obj3
	r.Free(0x5000)
	r.Access(0x5008, 8, false) // miss: the interval is gone

	// Realloc landing exactly on a foreign live base: obj6 (site 6)
	// moves onto obj5's (site 5) base address and replaces its
	// interval.
	r.Alloc(5, 0xe5, 0x7000, 64)
	r.Alloc(6, 0xf6, 0x8000, 64)
	r.Realloc(0x8000, 0x7000, 24)
	r.Access(0x7004, 8, false) // obj6 now owns the base
	r.Free(0x7000)

	// Metadata events for addresses the heap never allocated: both are
	// no-ops in the single-pass analyzer and must stay no-ops in every
	// shard.
	r.Free(0x9999)
	r.Realloc(0xaaaa, 0xbbbb, 8)
	r.Access(0xbbbb, 8, false) // still a miss

	// Zero-size allocation clamps to a one-byte interval.
	r.Alloc(7, 0x17, 0xc000, 0)
	r.Access(0xc000, 1, false)

	// A second instance for site 1 keeps per-site instance numbering in
	// play after the straddles.
	r.Alloc(1, 0xa1, 0xd000, 64)
	r.Access(0xd03f, 8, true) // last byte of obj8

	r.AddInstr(4321)
	return r.Trace()
}

func TestShardedAdversarialStraddle(t *testing.T) {
	diffSharded(t, adversarialTrace())
}

// TestShardedMatchesSinglePassRandom fuzzes the differential with
// deterministic random traces heavy on realloc churn and address reuse.
func TestShardedMatchesSinglePassRandom(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := xrand.New(seed)
		r := NewRecorder()
		var live []mem.Addr
		addr := mem.Addr(0x1000)
		for i := 0; i < 2000; i++ {
			switch rng.Intn(10) {
			case 0, 1:
				r.Alloc(mem.SiteID(rng.Intn(9)+1), mem.StackSig(rng.Uint64()), addr, rng.Uint64n(256))
				live = append(live, addr)
				addr += 0x40
			case 2:
				if len(live) > 0 {
					k := rng.Intn(len(live))
					r.Free(live[k])
					live = append(live[:k], live[k+1:]...)
				}
			case 3:
				if len(live) > 0 {
					k := rng.Intn(len(live))
					r.Realloc(live[k], addr, rng.Uint64n(512))
					live[k] = addr
					addr += 0x40
				}
			case 4:
				// Shadowing alloc on a live base address.
				if len(live) > 0 {
					base := live[rng.Intn(len(live))]
					r.Alloc(mem.SiteID(rng.Intn(9)+1), mem.StackSig(rng.Uint64()), base, rng.Uint64n(64))
				}
			default:
				r.Access(mem.Addr(rng.Uint64n(uint64(addr))), 8, rng.Bool(0.5))
			}
		}
		r.AddInstr(rng.Uint64n(1 << 20))
		diffSharded(t, r.Trace())
	}
}

// TestShardedConcurrentWorkers drives the full parallel machinery —
// indexed decode pool, shard fan-out, merge — over a larger trace with
// more shards than cores. Run under -race via `make check`, this is the
// data-race gate for the shard workers.
func TestShardedConcurrentWorkers(t *testing.T) {
	rng := xrand.New(42)
	r := NewRecorder()
	addr := mem.Addr(0x1000)
	var live []mem.Addr
	for i := 0; i < 60_000; i++ {
		switch rng.Intn(12) {
		case 0:
			r.Alloc(mem.SiteID(rng.Intn(17)+1), mem.StackSig(rng.Uint64()), addr, 64+rng.Uint64n(64))
			live = append(live, addr)
			addr += 0x80
		case 1:
			if len(live) > 1 {
				k := rng.Intn(len(live))
				r.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		case 2:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				r.Realloc(live[k], addr, 32+rng.Uint64n(96))
				live[k] = addr
				addr += 0x80
			}
		default:
			if len(live) > 0 {
				base := live[rng.Intn(len(live))]
				r.Access(base+mem.Addr(rng.Uint64n(32)), 8, rng.Bool(0.3))
			}
		}
	}
	r.AddInstr(99)
	tr := r.Trace()
	want := Analyze(tr)

	got := AnalyzeTraceSharded(tr, ShardConfig{Shards: 8, ChunkEvents: 1024})
	requireDeepEqual(t, "mem shards=8", want, got)

	data := writeChunked(t, tr, 2048)
	gotStream, err := AnalyzeStreamSharded(bytes.NewReader(data), ShardConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "stream shards=8", want, gotStream)
}

// TestShardedStreamClassicFallback routes a version-1 container (no
// chunk framing) through the sharded entry point: serial decode, same
// parallel shard set, same answer.
func TestShardedStreamClassicFallback(t *testing.T) {
	tr := record()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := Analyze(tr)
	got, err := AnalyzeStreamSharded(bytes.NewReader(buf.Bytes()), ShardConfig{Shards: 4, ChunkEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "v1 fallback shards=4", want, got)
}

// TestShardedStreamTruncatedErrors cuts a valid indexed stream at
// several offsets; every cut must surface a decode error (and must not
// deadlock the worker pipeline).
func TestShardedStreamTruncatedErrors(t *testing.T) {
	data := writeChunked(t, record(), 4)
	for _, cut := range []int{5, len(data) / 2, len(data) - 1} {
		if _, err := AnalyzeStreamSharded(bytes.NewReader(data[:cut]), ShardConfig{Shards: 4}); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
}

// TestShardedStreamTrailingChunkBytesRejected hand-builds an indexed
// frame whose declared event count undershoots its payload; the decode
// worker must reject the leftover bytes rather than silently dropping
// events.
func TestShardedStreamTrailingChunkBytesRejected(t *testing.T) {
	var payload bytes.Buffer
	enc := eventEncoder{w: &payload}
	for _, ev := range record().Events[:2] {
		if err := enc.encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, v := range []uint64{versionIndexed, 16, 1, uint64(payload.Len()), 0, 0, 0, 0} {
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	buf.Write(payload.Bytes())
	buf.WriteByte(0) // terminator
	buf.WriteByte(0) // instr
	if _, err := AnalyzeStreamSharded(bytes.NewReader(buf.Bytes()), ShardConfig{Shards: 2}); err == nil {
		t.Fatal("frame with trailing payload bytes accepted")
	}
}

// TestStreamHandoffMismatchRejected corrupts the recorded decoder
// handoff of a second chunk; the serial reader cross-checks it against
// its own running state and must fail.
func TestStreamHandoffMismatchRejected(t *testing.T) {
	data := writeChunked(t, record(), 4) // 12 events -> 3 chunks
	// Walk to the second chunk frame: header = magic + version +
	// chunkSize, then frame 1 = n | byteLen | 4 handoff varints |
	// payload.
	br := bytes.NewReader(data)
	head := make([]byte, len(magic))
	if _, err := br.Read(head); err != nil {
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // version
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // chunkSize
		t.Fatal(err)
	}
	n, err := binary.ReadUvarint(br) // frame 1 event count
	if err != nil || n != 4 {
		t.Fatalf("frame 1 count = %d, %v", n, err)
	}
	byteLen, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := binary.ReadUvarint(br); err != nil {
			t.Fatal(err)
		}
	}
	// br now sits at frame 1's payload; frame 2's first handoff varint
	// lives right after payload + count + byteLen varints.
	off := len(data) - br.Len() + int(byteLen)
	rest := bytes.NewReader(data[off:])
	if _, err := binary.ReadUvarint(rest); err != nil { // frame 2 count
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(rest); err != nil { // frame 2 byteLen
		t.Fatal(err)
	}
	handoffOff := off + (len(data) - off - rest.Len())
	corrupt := append([]byte(nil), data...)
	corrupt[handoffOff] ^= 0x01 // flip the low bit of prevAddr[Alloc]

	sr, err := NewStreamReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeSource(sr); err == nil {
		t.Fatal("serial reader accepted a corrupted chunk handoff")
	} else if !bytes.Contains([]byte(err.Error()), []byte("handoff")) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestShardedProgressEvents verifies the obs wiring: per-shard and
// merge JobEvents with the Shards marker set and the seed field
// disabled.
func TestShardedProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []obs.JobEvent
	cfg := ShardConfig{
		Shards:      3,
		ChunkEvents: 4,
		Progress: func(ev obs.JobEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	data := writeChunked(t, record(), 4)
	if _, err := AnalyzeStreamSharded(bytes.NewReader(data), cfg); err != nil {
		t.Fatal(err)
	}
	done := map[string]int{}
	for _, ev := range events {
		if ev.Shards != 3 {
			t.Fatalf("event %+v missing Shards marker", ev)
		}
		if ev.Seed != -1 {
			t.Fatalf("event %+v should disable the seed field", ev)
		}
		if ev.State == obs.JobDone {
			done[ev.Phase]++
		}
		if ev.State == obs.JobFailed {
			t.Fatalf("unexpected failed event: %+v", ev)
		}
	}
	if done["analyze-shard"] != 3 {
		t.Errorf("analyze-shard done events = %d, want 3", done["analyze-shard"])
	}
	if done["analyze-decode"] != 3 {
		t.Errorf("analyze-decode done events = %d, want 3", done["analyze-decode"])
	}
	if done["analyze-merge"] != 1 {
		t.Errorf("analyze-merge done events = %d, want 1", done["analyze-merge"])
	}
}

func TestMergeAnalysesEmpty(t *testing.T) {
	a := MergeAnalyses(nil, 55)
	if a.Instr != 55 || a.Events != 0 || len(a.Objects) != 0 {
		t.Fatalf("empty merge = %+v", a)
	}
	if a.SiteAllocs == nil || a.SiteObjects == nil || a.SiteMaxLive == nil {
		t.Fatal("empty merge must keep maps non-nil, matching NewAnalyzer")
	}
}

// TestShardFeedZeroAlloc is the lint satellite's runtime counterpart:
// once the reference-string slices have grown their capacity, the shard
// feed loop performs zero allocations per access event.
func TestShardFeedZeroAlloc(t *testing.T) {
	s := NewShardAnalyzer(0, 1)
	s.FeedBatch([]Event{{Kind: KindAlloc, Site: 1, Addr: 0x1000, Size: 4096}}, 0)
	batch := make([]Event, 4096)
	for i := range batch {
		batch[i] = Event{Kind: KindAccess, Addr: mem.Addr(0x1000 + uint64(i%4096)), Size: 8, Write: i%2 == 0}
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.recs = s.recs[:0]
		s.FeedBatch(batch, 1)
	})
	if allocs != 0 {
		t.Errorf("shard feed loop allocates %.1f times per batch, want 0", allocs)
	}
}

// TestShardedSpillSpeedup is the acceptance benchmark: a 10M+-event
// spill file must analyze measurably faster at -shards 4 than on the
// legacy single-pass path, while staying DeepEqual-identical. The
// speedup assertion only arms on machines with enough cores and a
// meaningful single-pass wall time; the equality check always runs.
func TestShardedSpillSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-event speedup test skipped in -short mode")
	}
	rounds := 1_000_000
	if raceEnabled {
		// Race instrumentation multiplies both sides' cost without
		// changing what is being proven here; the -race value of this
		// test is the concurrency coverage, so shrink the trace.
		rounds = 50_000
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "big.pfxt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := NewSpillRecorder(f, DefaultChunkEvents)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		addr := mem.Addr(0x1000 + uint64(i%256)*0x100)
		rec.Alloc(mem.SiteID(i%23+1), mem.StackSig(i%7), addr, 192)
		for j := 0; j < 9; j++ {
			rec.Access(addr+mem.Addr(j*16), 8, j%3 == 0)
		}
		rec.Free(addr)
	}
	rec.AddInstr(uint64(rounds) * 11)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	analyze := func(shards int) (*Analysis, time.Duration) {
		t.Helper()
		g, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		start := time.Now()
		var a *Analysis
		if shards == 1 {
			sr, err := NewStreamReader(g)
			if err != nil {
				t.Fatal(err)
			}
			if a, err = AnalyzeSource(sr); err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			if a, err = AnalyzeStreamSharded(g, ShardConfig{Shards: shards}); err != nil {
				t.Fatal(err)
			}
		}
		return a, time.Since(start)
	}

	// Timing passes first, results dropped and the heap collected in
	// between, so neither side pays GC tax for the other's retained
	// object graph; the equality pass runs untimed afterwards.
	_, singleWall := analyze(1)
	runtime.GC()
	_, shardedWall := analyze(4)
	runtime.GC()
	single, _ := analyze(1)
	sharded, _ := analyze(4)
	if single.Events != rounds*11 {
		t.Fatalf("events = %d, want %d", single.Events, rounds*11)
	}
	requireDeepEqual(t, "spill shards=4", single, sharded)
	speedup := float64(singleWall) / float64(shardedWall)
	t.Logf("events=%d single-pass=%v shards4=%v speedup=%.2fx", single.Events, singleWall, shardedWall, speedup)
	if !raceEnabled && runtime.NumCPU() >= 4 && singleWall >= 300*time.Millisecond && shardedWall >= singleWall {
		t.Errorf("sharded analysis (%v) not faster than single-pass (%v)", shardedWall, singleWall)
	}
}
