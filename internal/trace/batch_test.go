package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestAppendBatchByteParity: AppendBatch must produce byte-identical
// output to event-at-a-time Append for every batch/chunk alignment —
// including batches that span chunk boundaries — because the delta
// encoder state is continuous across both paths.
func TestAppendBatchByteParity(t *testing.T) {
	tr := record()
	want := writeChunked(t, tr, 5) // per-event reference bytes

	for _, batch := range []int{1, 2, 3, 7, len(tr.Events)} {
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(tr.Events); i += batch {
			end := i + batch
			if end > len(tr.Events) {
				end = len(tr.Events)
			}
			if err := sw.AppendBatch(tr.Events[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		sw.SetInstr(tr.Instr)
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("batch size %d: encoded bytes differ from per-event Append", batch)
		}
	}
}

// TestRecorderRecordBatch: the in-memory recorder's bulk path must be
// indistinguishable from the per-event methods.
func TestRecorderRecordBatch(t *testing.T) {
	tr := record()
	r := NewRecorder()
	r.RecordBatch(tr.Events[:4])
	r.RecordBatch(tr.Events[4:])
	r.AddInstr(tr.Instr)
	got := r.Trace()
	if !reflect.DeepEqual(got.Events, tr.Events) || got.Instr != tr.Instr {
		t.Errorf("RecordBatch trace differs: %d events instr %d", len(got.Events), got.Instr)
	}
}

// TestSpillRecorderRecordBatchParity: bulk delivery into the spill
// recorder must yield byte-identical output to per-event delivery.
func TestSpillRecorderRecordBatchParity(t *testing.T) {
	tr := record()

	var single bytes.Buffer
	sp1, err := NewSpillRecorder(&single, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindAlloc:
			sp1.Alloc(ev.Site, ev.Stack, ev.Addr, ev.Size)
		case KindFree:
			sp1.Free(ev.Addr)
		case KindRealloc:
			sp1.Realloc(ev.Addr, ev.Addr2, ev.Size)
		case KindAccess:
			sp1.Access(ev.Addr, ev.Size, ev.Write)
		}
	}
	sp1.AddInstr(tr.Instr)
	if err := sp1.Close(); err != nil {
		t.Fatal(err)
	}

	var bulk bytes.Buffer
	sp2, err := NewSpillRecorder(&bulk, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp2.RecordBatch(tr.Events)
	sp2.AddInstr(tr.Instr)
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(single.Bytes(), bulk.Bytes()) {
		t.Fatal("bulk spill bytes differ from per-event spill bytes")
	}
	got, err := Read(&bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) || got.Instr != tr.Instr {
		t.Error("bulk spill does not round-trip the trace")
	}
}
