// Sharded parallel analysis: the multi-core counterpart of Analyzer.
//
// The reference analyzer (trace.go) is a single pass over the event
// stream. The sharded path splits that pass two ways:
//
//   - Decode parallelism: version-3 containers stamp every chunk frame
//     with its byte length and the delta-decoder handoff state, so a
//     pool of workers can decode chunks independently (stream.go).
//
//   - Analysis parallelism: N ShardAnalyzers each scan every event.
//     Allocation-metadata events (alloc/free/realloc — orders of
//     magnitude rarer than accesses) are replicated: every shard runs
//     the exact single-pass index algorithm over a private interval
//     index, so each shard's view of address liveness — including
//     address reuse, duplicate live base addresses, and objects whose
//     malloc→realloc→free lifetime crosses any partition boundary — is
//     identical to the single-pass analyzer's at every event.
//     Access events, the hot bulk of the stream, are partitioned: the
//     shard owning the address page (addr>>12 mod N) performs the
//     containment lookup and records the hit, so the expensive per-
//     access work is divided across shards rather than replicated.
//     Object construction is partitioned separately by malloc site
//     (site mod N), the paper's object identity axis.
//
// MergeAnalyses then reassembles the single-pass Analysis from the
// partials: objects k-way merged by allocation event index (unique, so
// the merge is deterministic and shard-count-invariant), IDs and
// per-site instance numbers renumbered in that order, live-object peaks
// reconstructed by an alloc/free sweep, and the reference string k-way
// merged by event index. The result is reflect.DeepEqual-identical to
// Analyze / AnalyzeSource at every shard count, which shard_test.go
// enforces differentially.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
)

// ShardConfig configures the sharded analysis path.
type ShardConfig struct {
	// Shards is the number of shard analyzers (and, for indexed
	// streams, decode workers). Values below 1 select 1; 1 still runs
	// the shard machinery but on a single worker, which the
	// differential tests use as the degenerate case.
	Shards int
	// ChunkEvents is the batch granularity for inputs that do not carry
	// their own chunk framing (in-memory traces, serially-decoded
	// sources); values below 1 select DefaultChunkEvents.
	ChunkEvents int
	// Progress, when non-nil, receives one obs.JobEvent per state
	// transition of every decode worker, shard worker, and the merge
	// step (phases "analyze-decode", "analyze-shard", "analyze-merge";
	// Job is the worker index, Jobs the pool size, Shards the configured
	// shard count). Benchmark is left empty for the caller to fill.
	// Must be safe for concurrent use.
	Progress func(obs.JobEvent)
	// Perf, when non-nil, brackets every decode worker, shard worker,
	// and the merge with a perfstat scope so the host-cost table and the
	// events/sec gate see the parallel analysis phases.
	Perf *perfstat.Collector
}

func (cfg ShardConfig) shardCount() int {
	if cfg.Shards < 1 {
		return 1
	}
	return cfg.Shards
}

func (cfg ShardConfig) chunkEvents() int {
	if cfg.ChunkEvents < 1 {
		return DefaultChunkEvents
	}
	return cfg.ChunkEvents
}

func (cfg ShardConfig) progress(phase string, job, jobs int, state obs.JobState, err error) {
	if cfg.Progress == nil {
		return
	}
	ev := obs.JobEvent{
		Phase:  phase,
		Job:    job,
		Jobs:   jobs,
		Seed:   -1,
		Shards: cfg.shardCount(),
		State:  state,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	cfg.Progress(ev)
}

// shardIndex is the flat-array clone of intervalIndex: live address
// intervals ordered by base address. Every shard indexes every live
// interval (the index transitions must mirror the single-pass analyzer
// exactly); the object pointer is non-nil only for intervals whose
// site the shard owns, while allocAt — the allocation event index, the
// globally unique object identity — is recorded for all of them so any
// shard can attribute an access hit. The semantics — duplicate base
// addresses replace in place, zero sizes clamp to one, containment is
// [start, start+size) against the greatest start ≤ addr — mirror
// intervalIndex exactly.
type shardIndex struct {
	starts  []uint64
	sizes   []uint64
	allocAt []int
	objs    []*Object
}

// lowerBound returns the first position whose start is >= addr.
func (x *shardIndex) lowerBound(addr uint64) int {
	lo, hi := 0, len(x.starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.starts[mid] < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds a live interval; obj is nil for foreign-site intervals,
// allocAt is the allocating event's index for all of them.
func (x *shardIndex) insert(addr uint64, size uint64, allocAt int, obj *Object) {
	if size == 0 {
		size = 1
	}
	i := x.lowerBound(addr)
	if i < len(x.starts) && x.starts[i] == addr {
		// Duplicate live base address: the newer allocation shadows the
		// older, matching intervalIndex's map semantics.
		x.sizes[i] = size
		x.allocAt[i] = allocAt
		x.objs[i] = obj
		return
	}
	x.starts = append(x.starts, 0)
	x.sizes = append(x.sizes, 0)
	x.allocAt = append(x.allocAt, 0)
	x.objs = append(x.objs, nil)
	copy(x.starts[i+1:], x.starts[i:])
	copy(x.sizes[i+1:], x.sizes[i:])
	copy(x.allocAt[i+1:], x.allocAt[i:])
	copy(x.objs[i+1:], x.objs[i:])
	x.starts[i], x.sizes[i], x.allocAt[i], x.objs[i] = addr, size, allocAt, obj
}

// remove deletes the interval based exactly at addr. ok reports whether
// an interval existed; the object is nil for foreign-site intervals,
// and the caller needs all three results: a realloc must reinsert a
// foreign interval (with its original allocAt) even though it cannot
// record it, while a free of an unknown address must not touch the
// index at all.
func (x *shardIndex) remove(addr uint64) (obj *Object, allocAt int, ok bool) {
	i := x.lowerBound(addr)
	if i >= len(x.starts) || x.starts[i] != addr {
		return nil, 0, false
	}
	obj, allocAt = x.objs[i], x.allocAt[i]
	x.starts = append(x.starts[:i], x.starts[i+1:]...)
	x.sizes = append(x.sizes[:i], x.sizes[i+1:]...)
	x.allocAt = append(x.allocAt[:i], x.allocAt[i+1:]...)
	x.objs = append(x.objs[:i], x.objs[i+1:]...)
	return obj, allocAt, true
}

// find returns the index position of the live interval containing addr,
// or -1 when the address is outside every live object.
//
//prefix:hotpath
func (x *shardIndex) find(addr uint64) int {
	lo, hi := 0, len(x.starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.starts[mid] <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1
	}
	j := lo - 1
	if addr-x.starts[j] < x.sizes[j] {
		return j
	}
	return -1
}

// pageShift is the access-partition granularity: the shard owning
// uint32(addr>>pageShift) % shards processes the access. Page
// granularity keeps one object's accesses mostly on one shard (its
// interval lookups stay cache-warm) while spreading the address space
// evenly. Any deterministic address function partitions correctly —
// every shard's index is identical, so any shard computes the same
// containment answer; the partition only decides which shard does the
// work.
const pageShift = 12

// refRec is one recorded access hit: the hit object's allocation event
// index (its globally unique identity — ObjectIDs do not exist until
// the merge), the access's own event index, and the write flag.
// Counters are reconstructed from these records at merge time, one
// increment per record, exactly as the single-pass analyzer performed
// them.
type refRec struct {
	allocAt int
	at      int
	write   bool
}

// ShardAnalyzer is one shard's partial analyzer. It must be fed every
// event of the trace in order (FeedBatch with the batch's global base
// index). Allocation metadata is processed by every shard (keeping all
// interval indexes identical); each access event is processed by
// exactly one shard (by address page), and objects are constructed by
// exactly one shard (by malloc site). Partials combine via
// MergeAnalyses.
type ShardAnalyzer struct {
	shard  uint32
	shards uint32
	idx    shardIndex
	// objs collects site-owned objects in allocation order; ID,
	// Instance, and the access counters stay zero until MergeAnalyses
	// fills them globally.
	objs []*Object
	// recs is this shard's slice of the reference string, ascending in
	// trace order.
	recs          []refRec
	heapAccesses  uint64
	totalAccesses uint64
	events        int
}

// NewShardAnalyzer returns the analyzer for one shard of a pool of
// shards. Panics on an out-of-range shard index — that is a caller bug,
// not an input condition.
func NewShardAnalyzer(shard, shards int) *ShardAnalyzer {
	if shards < 1 {
		shards = 1
	}
	if shard < 0 || shard >= shards {
		panic("trace: shard index out of range")
	}
	return &ShardAnalyzer{shard: uint32(shard), shards: uint32(shards)}
}

// FeedBatch processes one batch of events whose first event has global
// index base. Batches must arrive in trace order and cover the stream
// without gaps.
//
//prefix:hotpath
func (s *ShardAnalyzer) FeedBatch(evs []Event, base int) {
	for j := range evs {
		s.feed(&evs[j], base+j)
	}
	if n := base + len(evs); n > s.events {
		s.events = n
	}
}

// feed processes one event at global index i. Accesses — the hot kind
// by orders of magnitude — are handled inline: non-owned pages return
// after one shift-and-compare, owned pages do the containment lookup
// and record the hit, allocation-free except for the amortized growth
// of the analysis product itself.
//
//prefix:hotpath
func (s *ShardAnalyzer) feed(ev *Event, i int) {
	if ev.Kind == KindAccess {
		addr := uint64(ev.Addr)
		if s.shards > 1 && uint32(addr>>pageShift)%s.shards != s.shard {
			return
		}
		s.totalAccesses++
		j := s.idx.find(addr)
		if j < 0 {
			return
		}
		s.heapAccesses++
		//lint:ignore hotalloc the reference string is the analysis product; append growth is amortized doubling over the whole trace
		s.recs = append(s.recs, refRec{allocAt: s.idx.allocAt[j], at: i, write: ev.Write})
		return
	}
	//lint:ignore hotcall allocation-metadata events are orders of magnitude rarer than accesses; the cold path owns index shifts and object construction
	s.feedSlow(ev, i)
}

// feedSlow is the cold path: allocation-metadata events that mutate the
// interval index. Every shard performs the identical index transitions
// as the single-pass analyzer; site ownership only decides which shard
// constructs and annotates the Object.
func (s *ShardAnalyzer) feedSlow(ev *Event, i int) {
	switch ev.Kind {
	case KindAlloc:
		var obj *Object
		if uint32(ev.Site)%s.shards == s.shard {
			obj = &Object{
				Site:      ev.Site,
				Stack:     ev.Stack,
				Size:      ev.Size,
				FinalSize: ev.Size,
				Addr:      ev.Addr,
				AllocAt:   i,
				FreeAt:    -1,
			}
			s.objs = append(s.objs, obj)
		}
		s.idx.insert(uint64(ev.Addr), ev.Size, i, obj)
	case KindFree:
		if obj, _, ok := s.idx.remove(uint64(ev.Addr)); ok && obj != nil {
			obj.FreeAt = i
		}
	case KindRealloc:
		if obj, allocAt, ok := s.idx.remove(uint64(ev.Addr)); ok {
			if obj != nil {
				obj.FinalSize = ev.Size
				obj.Addr = ev.Addr2
			}
			// Foreign intervals reinsert too (nil obj, original
			// allocAt): the moved object stays live at its new address
			// in every shard's index, exactly as in the single-pass
			// analyzer.
			s.idx.insert(uint64(ev.Addr2), ev.Size, allocAt, obj)
		}
	}
}

// MergeAnalyses combines per-shard partials — all fed the identical
// full event stream — into the single-pass Analysis. The merge is
// deterministic and shard-count-invariant because every ordering key is
// a globally-unique event index: objects merge by AllocAt, references
// by RefAt, and the live-object peaks replay the alloc/free sequence
// those indexes define.
func MergeAnalyses(parts []*ShardAnalyzer, instr uint64) *Analysis {
	a := &Analysis{
		SiteAllocs:  make(map[mem.SiteID]uint64),
		SiteObjects: make(map[mem.SiteID][]mem.ObjectID),
		SiteMaxLive: make(map[mem.SiteID]uint64),
		Instr:       instr,
	}
	if len(parts) == 0 {
		return a
	}
	totalObjs, totalRefs := 0, 0
	for _, p := range parts {
		totalObjs += len(p.objs)
		totalRefs += len(p.recs)
		a.HeapAccesses += p.heapAccesses
		// Accesses partition exactly one-to-one across shards, so the
		// totals sum.
		a.TotalAccesses += p.totalAccesses
		if p.events > a.Events {
			a.Events = p.events
		}
	}

	// Objects: k-way merge by allocation event index (each partial is
	// already AllocAt-ascending), renumbering IDs and per-site instance
	// counters in merged order — the order the single-pass analyzer
	// allocated them in.
	if totalObjs > 0 {
		a.Objects = make([]*Object, 0, totalObjs)
		cur := make([]int, len(parts))
		for len(a.Objects) < totalObjs {
			best := -1
			bestAt := int(^uint(0) >> 1)
			for p := range parts {
				if c := cur[p]; c < len(parts[p].objs) && parts[p].objs[c].AllocAt < bestAt {
					best, bestAt = p, parts[p].objs[c].AllocAt
				}
			}
			obj := parts[best].objs[cur[best]]
			cur[best]++
			obj.ID = mem.ObjectID(len(a.Objects) + 1)
			a.Objects = append(a.Objects, obj)
			a.SiteAllocs[obj.Site]++
			obj.Instance = mem.Instance(a.SiteAllocs[obj.Site])
			a.SiteObjects[obj.Site] = append(a.SiteObjects[obj.Site], obj.ID)
		}
	}

	// Live-object peaks: replay the merged alloc/free timeline. FreeAt
	// was recorded exactly when the single-pass analyzer's remove
	// matched a live interval, so (+1 at AllocAt, -1 at FreeAt) with
	// the maximum taken after each alloc reproduces its live counters.
	type freeMark struct {
		at   int
		site mem.SiteID
	}
	frees := make([]freeMark, 0, len(a.Objects))
	for _, obj := range a.Objects {
		if obj.FreeAt >= 0 {
			frees = append(frees, freeMark{obj.FreeAt, obj.Site})
		}
	}
	sort.Slice(frees, func(i, j int) bool { return frees[i].at < frees[j].at })
	var live uint64
	siteLive := make(map[mem.SiteID]uint64)
	fi := 0
	for _, obj := range a.Objects {
		for fi < len(frees) && frees[fi].at < obj.AllocAt {
			live--
			siteLive[frees[fi].site]--
			fi++
		}
		live++
		siteLive[obj.Site]++
		if live > a.MaxLive {
			a.MaxLive = live
		}
		if siteLive[obj.Site] > a.SiteMaxLive[obj.Site] {
			a.SiteMaxLive[obj.Site] = siteLive[obj.Site]
		}
	}

	// Reference string: k-way merge by event index, resolving each
	// record's allocAt to the now-renumbered object and replaying its
	// counter increment — the same one-increment-per-hit the
	// single-pass analyzer performed inline.
	if totalRefs > 0 {
		a.Refs = make([]mem.ObjectID, totalRefs)
		a.RefAt = make([]int, totalRefs)
		cur := make([]int, len(parts))
		memo := make([]*Object, len(parts))
		mergeRefs(parts, cur, memo, a.Objects, a.Refs, a.RefAt)
	}
	return a
}

// mergeRefs merges the partials' reference strings by event index into
// the caller-allocated refs/refAt (sized to the exact total), crediting
// each hit to its object. Each partial's record stream is strictly
// ascending in event index and an event index appears in at most one
// partial, so a linear min-scan over the cursors is a deterministic
// total order. objs is sorted by AllocAt (allocation order), so a
// record's object resolves by binary search; memo caches each partial's
// last object because consecutive hits overwhelmingly repeat it.
//
//prefix:hotpath
func mergeRefs(parts []*ShardAnalyzer, cur []int, memo []*Object, objs []*Object, refs []mem.ObjectID, refAt []int) {
	for k := range refs {
		best := -1
		bestAt := int(^uint(0) >> 1)
		for p := range parts {
			if c := cur[p]; c < len(parts[p].recs) && parts[p].recs[c].at < bestAt {
				best, bestAt = p, parts[p].recs[c].at
			}
		}
		rec := &parts[best].recs[cur[best]]
		cur[best]++
		o := memo[best]
		if o == nil || o.AllocAt != rec.allocAt {
			lo, hi := 0, len(objs)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if objs[mid].AllocAt < rec.allocAt {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			o = objs[lo]
			memo[best] = o
		}
		o.Accesses++
		if rec.write {
			o.Writes++
		} else {
			o.Reads++
		}
		refs[k] = o.ID
		refAt[k] = bestAt
	}
}

// shardBatch is one ordered slice of decoded events broadcast to every
// shard. Pooled batches (pool non-nil) return to the pool when the last
// shard releases its reference.
type shardBatch struct {
	evs  []Event
	base int
	refs atomic.Int32
	pool *sync.Pool
}

// batchPool recycles shardBatches between decode and shard workers.
type batchPool struct {
	pool sync.Pool
}

func newBatchPool(capEvents int) *batchPool {
	p := &batchPool{}
	p.pool.New = func() any {
		return &shardBatch{evs: make([]Event, 0, capEvents)}
	}
	return p
}

func (p *batchPool) get() *shardBatch {
	b := p.pool.Get().(*shardBatch)
	b.evs = b.evs[:0]
	b.base = 0
	b.pool = &p.pool
	return b
}

// shardQueueDepth bounds each shard's input queue; with the batch pool
// it also bounds how many decoded batches exist at once.
const shardQueueDepth = 2

// shardRun owns one sharded analysis: the shard workers, their input
// channels, and the first-error/stop machinery shared with the decode
// stage.
type shardRun struct {
	cfg   ShardConfig
	parts []*ShardAnalyzer
	chans []chan *shardBatch
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once
	err   error
}

func newShardRun(cfg ShardConfig) *shardRun {
	n := cfg.shardCount()
	r := &shardRun{
		cfg:   cfg,
		parts: make([]*ShardAnalyzer, n),
		chans: make([]chan *shardBatch, n),
		stop:  make(chan struct{}),
	}
	for k := 0; k < n; k++ {
		r.parts[k] = NewShardAnalyzer(k, n)
		r.chans[k] = make(chan *shardBatch, shardQueueDepth)
		r.wg.Add(1)
		go r.shardWorker(k)
	}
	return r
}

// fail records the first error and unblocks every stage.
func (r *shardRun) fail(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.stop)
	})
}

// emit broadcasts one ordered batch to every shard. The caller must not
// touch the batch afterward. Returns false once the run has failed.
func (r *shardRun) emit(b *shardBatch) bool {
	b.refs.Store(int32(len(r.chans)))
	for _, ch := range r.chans {
		select {
		case ch <- b:
		case <-r.stop:
			return false
		}
	}
	return true
}

// finish closes the shard inputs; call exactly once, after the last
// emit.
func (r *shardRun) finish() {
	for _, ch := range r.chans {
		close(ch)
	}
}

// wait blocks until every shard worker has drained and returns the
// run's first error.
func (r *shardRun) wait() error {
	r.wg.Wait()
	return r.err
}

func (r *shardRun) shardWorker(k int) {
	defer r.wg.Done()
	sc := r.cfg.Perf.Begin("analyze-shard")
	defer sc.End()
	r.cfg.progress("analyze-shard", k, len(r.parts), obs.JobRunning, nil)
	for {
		select {
		case b, ok := <-r.chans[k]:
			if !ok {
				r.cfg.progress("analyze-shard", k, len(r.parts), obs.JobDone, nil)
				return
			}
			r.parts[k].FeedBatch(b.evs, b.base)
			sc.AddEvents(uint64(len(b.evs)))
			if b.pool != nil && b.refs.Add(-1) == 0 {
				b.pool.Put(b)
			}
		case <-r.stop:
			return
		}
	}
}

// merge runs the final merge step under its own perfstat scope and
// progress events.
func (r *shardRun) merge(instr uint64) *Analysis {
	sc := r.cfg.Perf.Begin("analyze-merge")
	r.cfg.progress("analyze-merge", 0, 1, obs.JobRunning, nil)
	a := MergeAnalyses(r.parts, instr)
	sc.AddEvents(uint64(a.Events))
	sc.End()
	r.cfg.progress("analyze-merge", 0, 1, obs.JobDone, nil)
	return a
}

// AnalyzeTraceSharded analyzes an in-memory trace on cfg.Shards
// parallel shard analyzers. The result is reflect.DeepEqual-identical
// to Analyze(t) at every shard count. Nothing on the in-memory path can
// fail, so there is no error return.
func AnalyzeTraceSharded(t *Trace, cfg ShardConfig) *Analysis {
	r := newShardRun(cfg)
	chunk := cfg.chunkEvents()
	for base := 0; base < len(t.Events); base += chunk {
		end := min(base+chunk, len(t.Events))
		if !r.emit(&shardBatch{evs: t.Events[base:end], base: base}) {
			break
		}
	}
	r.finish()
	_ = r.wait() // no failure sources feed this path
	return r.merge(t.Instr)
}

// AnalyzeSourceSharded drains src on a single decode cursor but feeds
// the events through the parallel shard set — the fallback for sources
// without independently-decodable chunks. The result matches
// AnalyzeSource(src) exactly.
func AnalyzeSourceSharded(src Source, cfg ShardConfig) (*Analysis, error) {
	r := newShardRun(cfg)
	pool := newBatchPool(cfg.chunkEvents())
	sc := cfg.Perf.Begin("analyze-decode")
	cfg.progress("analyze-decode", 0, 1, obs.JobRunning, nil)
	base := 0
	for {
		b := pool.get()
		for len(b.evs) < cap(b.evs) {
			ev, ok := src.Next()
			if !ok {
				break
			}
			b.evs = append(b.evs, ev)
		}
		n := len(b.evs)
		if n == 0 {
			break
		}
		b.base = base
		base += n
		if !r.emit(b) || n < cap(b.evs) {
			break
		}
	}
	sc.AddEvents(uint64(base))
	sc.End()
	r.finish()
	if err := src.Err(); err != nil {
		cfg.progress("analyze-decode", 0, 1, obs.JobFailed, err)
		_ = r.wait()
		return nil, err
	}
	cfg.progress("analyze-decode", 0, 1, obs.JobDone, nil)
	if err := r.wait(); err != nil {
		return nil, err
	}
	return r.merge(src.Instr()), nil
}

// AnalyzeStreamSharded analyzes a serialized trace container with the
// sharded path. Version-3 (indexed) containers decode their chunks on a
// parallel worker pool; version-1/2 containers fall back to a serial
// decode cursor feeding the same parallel shard set. The result matches
// the single-pass AnalyzeSource over the same bytes at every shard
// count.
func AnalyzeStreamSharded(rd io.Reader, cfg ShardConfig) (*Analysis, error) {
	br := bufio.NewReader(rd)
	ver, err := readContainerHeader(br)
	if err != nil {
		return nil, err
	}
	if ver == versionIndexed {
		return analyzeIndexedSharded(br, cfg)
	}
	sr, err := newStreamReader(br, ver)
	if err != nil {
		return nil, err
	}
	return AnalyzeSourceSharded(sr, cfg)
}

// chunkFrame is one encoded chunk sliced out of an indexed stream: the
// frame header fields plus the raw payload bytes, ready for any decode
// worker.
type chunkFrame struct {
	idx   int
	n     int
	state [5]uint64
	data  []byte
	base  int
}

// decodedChunk pairs a decoded batch with its chunk index for the
// sequencer.
type decodedChunk struct {
	idx int
	b   *shardBatch
}

// analyzeIndexedSharded is the fully parallel path over a version-3
// container: a scanner slices chunk frames off the stream sequentially
// (cheap — header varints plus one bulk read per chunk), a pool of
// workers decodes frames concurrently seeded with each frame's recorded
// delta-decoder handoff, and a sequencer reorders decoded batches by
// chunk index before broadcasting them to the shard set, preserving the
// exact single-pass event order.
func analyzeIndexedSharded(br *bufio.Reader, cfg ShardConfig) (*Analysis, error) {
	chunkSize, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if chunkSize == 0 {
		return nil, errors.New("trace: chunked stream declares zero chunk size")
	}
	workers := cfg.shardCount()
	r := newShardRun(cfg)
	// The batch prealloc is bounded against hostile chunkSize claims;
	// real chunks grow batches to their true event count, which is then
	// retained by the pool.
	pool := newBatchPool(int(min(chunkSize, maxPreallocEvents)))
	var bufPool sync.Pool // *[]byte payload staging buffers
	frames := make(chan chunkFrame, workers)
	decoded := make(chan decodedChunk, workers)
	var instr uint64

	// Scanner: sequential frame slicing. On any error it fails the run,
	// which unblocks every other stage.
	go func() {
		defer close(frames)
		idx, base := 0, 0
		for {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				r.fail(fmt.Errorf("trace: chunk %d header: %w", idx, err))
				return
			}
			if n == 0 {
				v, err := binary.ReadUvarint(br)
				if err != nil {
					r.fail(fmt.Errorf("trace: stream terminator: %w", err))
					return
				}
				instr = v
				return
			}
			if n > chunkSize {
				r.fail(fmt.Errorf("trace: chunk %d claims %d events, above the declared chunk size %d", idx, n, chunkSize))
				return
			}
			byteLen, err := binary.ReadUvarint(br)
			if err != nil {
				r.fail(fmt.Errorf("trace: chunk %d byte length: %w", idx, err))
				return
			}
			// Division form so a hostile (n, byteLen) pair cannot
			// overflow the product; the bound is a rejection filter,
			// not an exact fit.
			if byteLen == 0 || byteLen/maxEventEncodedBytes > n {
				r.fail(fmt.Errorf("trace: chunk %d claims %d bytes for %d events", idx, byteLen, n))
				return
			}
			var state [5]uint64
			for kind := KindAlloc; kind <= KindAccess; kind++ {
				if state[kind], err = binary.ReadUvarint(br); err != nil {
					r.fail(fmt.Errorf("trace: chunk %d handoff: %w", idx, err))
					return
				}
			}
			data, err := readChunkPayload(br, &bufPool, byteLen)
			if err != nil {
				r.fail(fmt.Errorf("trace: chunk %d payload: %w", idx, err))
				return
			}
			select {
			case frames <- chunkFrame{idx: idx, n: int(n), state: state, data: data, base: base}:
			case <-r.stop:
				return
			}
			idx++
			base += int(n)
		}
	}()

	// Decode workers: each owns its own decoder cursor, seeded per
	// frame with the recorded handoff state.
	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func(w int) {
			defer dwg.Done()
			sc := cfg.Perf.Begin("analyze-decode")
			defer sc.End()
			cfg.progress("analyze-decode", w, workers, obs.JobRunning, nil)
			var rd bytes.Reader
			dbr := bufio.NewReader(nil)
			var dec eventDecoder
			dec.br = dbr
			for f := range frames {
				rd.Reset(f.data)
				dbr.Reset(&rd)
				dec.prevAddr = f.state
				b := pool.get()
				b.base = f.base
				var derr error
				for j := 0; j < f.n; j++ {
					ev, err := dec.decode(uint64(f.base + j))
					if err != nil {
						derr = err
						break
					}
					b.evs = append(b.evs, ev)
				}
				if derr == nil {
					if rem := dbr.Buffered() + rd.Len(); rem > 0 {
						derr = fmt.Errorf("trace: chunk %d: %d trailing bytes after %d events", f.idx, rem, f.n)
					}
				}
				putBuf(&bufPool, f.data)
				if derr != nil {
					r.fail(derr)
					cfg.progress("analyze-decode", w, workers, obs.JobFailed, derr)
					return
				}
				sc.AddEvents(uint64(len(b.evs)))
				select {
				case decoded <- decodedChunk{idx: f.idx, b: b}:
				case <-r.stop:
					return
				}
			}
			cfg.progress("analyze-decode", w, workers, obs.JobDone, nil)
		}(w)
	}
	go func() {
		dwg.Wait()
		close(decoded)
	}()

	// Sequencer (this goroutine): restore chunk order before
	// broadcasting, so every shard sees the exact single-pass event
	// sequence.
	pending := make(map[int]*shardBatch)
	next := 0
	dead := false
	for dc := range decoded {
		if dead {
			continue
		}
		pending[dc.idx] = dc.b
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if !r.emit(b) {
				dead = true
				break
			}
			next++
		}
	}
	r.finish()
	if err := r.wait(); err != nil {
		return nil, err
	}
	return r.merge(instr), nil
}

// getBuf returns a staging buffer of exactly n bytes, reusing pooled
// capacity when possible.
func getBuf(pool *sync.Pool, n int) []byte {
	if v, ok := pool.Get().(*[]byte); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]byte, n)
}

func putBuf(pool *sync.Pool, buf []byte) {
	pool.Put(&buf)
}

// maxStagingStep bounds how much staging buffer grows per read: a
// hostile frame claiming a huge byte length only ever allocates one
// step before ReadFull hits the real end of the file.
const maxStagingStep = 1 << 20

// readChunkPayload reads exactly n payload bytes, growing the staging
// buffer incrementally so the allocation tracks bytes actually present
// in the stream rather than the untrusted declared length.
func readChunkPayload(br *bufio.Reader, pool *sync.Pool, n uint64) ([]byte, error) {
	if n <= maxStagingStep {
		buf := getBuf(pool, int(n))
		_, err := io.ReadFull(br, buf)
		return buf, err
	}
	buf := getBuf(pool, maxStagingStep)[:0]
	for rem := n; rem > 0; {
		step := int(min(rem, maxStagingStep))
		old := len(buf)
		buf = slices.Grow(buf, step)[:old+step]
		if _, err := io.ReadFull(br, buf[old:]); err != nil {
			return nil, err
		}
		rem -= uint64(step)
	}
	return buf, nil
}
