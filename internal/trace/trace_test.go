package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func record() *Trace {
	r := NewRecorder()
	r.Alloc(1, 0xabc, 0x1000, 64) // obj1
	r.Access(0x1000, 8, false)
	r.Access(0x1020, 8, true)     // interior access to obj1
	r.Alloc(1, 0xabc, 0x2000, 32) // obj2, site1 instance 2
	r.Alloc(2, 0xdef, 0x3000, 16) // obj3
	r.Access(0x2000, 8, false)
	r.Free(0x1000)
	r.Alloc(2, 0xdef, 0x1000, 48) // obj4 reuses obj1's address
	r.Access(0x1000, 8, false)
	r.Realloc(0x3000, 0x4000, 128)
	r.Access(0x4000, 8, true)
	r.AddInstr(1234)
	return r.Trace()
}

func TestAnalyzeObjectIdentity(t *testing.T) {
	a := Analyze(record())
	if len(a.Objects) != 4 {
		t.Fatalf("objects = %d, want 4", len(a.Objects))
	}
	o1 := a.Object(1)
	if o1.Site != 1 || o1.Instance != 1 || o1.Size != 64 {
		t.Errorf("obj1 = %+v", o1)
	}
	if o1.Accesses != 2 || o1.Reads != 1 || o1.Writes != 1 {
		t.Errorf("obj1 accesses = %d r=%d w=%d", o1.Accesses, o1.Reads, o1.Writes)
	}
	if o1.FreeAt < 0 {
		t.Error("obj1 should be freed")
	}
	// Address reuse: obj4 lives at obj1's address but is distinct.
	o4 := a.Object(4)
	if o4.Site != 2 || o4.Instance != 2 || o4.Accesses != 1 {
		t.Errorf("obj4 = %+v", o4)
	}
}

func TestAnalyzeRealloc(t *testing.T) {
	a := Analyze(record())
	o3 := a.Object(3)
	if o3.FinalSize != 128 {
		t.Errorf("obj3 final size = %d, want 128", o3.FinalSize)
	}
	if o3.Accesses != 1 {
		t.Errorf("access after realloc not attributed: %d", o3.Accesses)
	}
	if o3.Addr != 0x4000 {
		t.Errorf("obj3 addr = %v", o3.Addr)
	}
}

func TestAnalyzeRefs(t *testing.T) {
	a := Analyze(record())
	want := []mem.ObjectID{1, 1, 2, 4, 3}
	if len(a.Refs) != len(want) {
		t.Fatalf("refs = %v, want %v", a.Refs, want)
	}
	for i, id := range want {
		if a.Refs[i] != id {
			t.Fatalf("refs[%d] = %v, want %v", i, a.Refs[i], id)
		}
	}
	if a.HeapAccesses != 5 || a.TotalAccesses != 5 {
		t.Errorf("accesses: heap=%d total=%d", a.HeapAccesses, a.TotalAccesses)
	}
	if len(a.RefAt) != len(a.Refs) {
		t.Error("RefAt length mismatch")
	}
}

func TestAnalyzeNonHeapAccess(t *testing.T) {
	r := NewRecorder()
	r.Alloc(1, 0, 0x1000, 16)
	r.Access(0x9000, 8, false) // no live object there
	a := Analyze(r.Trace())
	if a.HeapAccesses != 0 || a.TotalAccesses != 1 {
		t.Errorf("heap=%d total=%d", a.HeapAccesses, a.TotalAccesses)
	}
}

func TestAnalyzeSiteTables(t *testing.T) {
	a := Analyze(record())
	if a.SiteAllocs[1] != 2 || a.SiteAllocs[2] != 2 {
		t.Errorf("site allocs: %v", a.SiteAllocs)
	}
	if got := a.ObjectBySiteInstance(1, 2); got == nil || got.ID != 2 {
		t.Errorf("ObjectBySiteInstance(1,2) = %v", got)
	}
	if a.ObjectBySiteInstance(1, 3) != nil {
		t.Error("instance 3 should not exist")
	}
	if a.ObjectBySiteInstance(9, 1) != nil {
		t.Error("unknown site should return nil")
	}
}

func TestAnalyzeLiveness(t *testing.T) {
	a := Analyze(record())
	if a.MaxLive != 3 {
		t.Errorf("MaxLive = %d, want 3", a.MaxLive)
	}
	if a.SiteMaxLive[1] != 2 {
		t.Errorf("site1 max live = %d, want 2", a.SiteMaxLive[1])
	}
	if a.Instr != 1234 {
		t.Errorf("instr = %d", a.Instr)
	}
}

func TestObjectLookupBounds(t *testing.T) {
	a := Analyze(record())
	if a.Object(0) != nil || a.Object(5) != nil {
		t.Error("out-of-range object lookup should be nil")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	tr := record()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instr != tr.Instr || len(got.Events) != len(tr.Events) {
		t.Fatalf("roundtrip mismatch: %d events, instr %d", len(got.Events), got.Instr)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestDecodeDoctoredEventCount(t *testing.T) {
	// A header may claim any event count — it is untrusted input. A
	// doctored count of 2^40 followed by a truncated body must fail
	// cleanly without preallocating the claimed amount.
	var buf bytes.Buffer
	buf.WriteString(magic)
	w := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	w(version) // version
	w(0)       // instr
	w(1 << 40) // eventCount: absurd
	buf.WriteByte(byte(KindFree))
	buf.WriteByte(0) // one real event, then EOF
	tr, err := Read(&buf)
	if err == nil {
		t.Fatalf("doctored header accepted: %d events", len(tr.Events))
	}
}

func TestDecodeDoctoredCountBoundsPrealloc(t *testing.T) {
	var buf bytes.Buffer
	if err := record().Write(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.capHint(); got != len(record().Events) {
		t.Errorf("capHint = %d, want declared count %d", got, len(record().Events))
	}
	// Forge a reader with a hostile declared count; the hint must cap.
	sr.declared = 1 << 40
	if got := sr.capHint(); got != maxPreallocEvents {
		t.Errorf("capHint = %d, want cap %d", got, maxPreallocEvents)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE whatever"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEncodeDecodeRandomTraces(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		r := NewRecorder()
		var live []mem.Addr
		addr := mem.Addr(0x1000)
		for i := 0; i < 200; i++ {
			switch rng.Intn(4) {
			case 0:
				r.Alloc(mem.SiteID(rng.Intn(5)+1), mem.StackSig(rng.Uint64()), addr, rng.Uint64n(256))
				live = append(live, addr)
				addr += 0x100
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					r.Free(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 2:
				if len(live) > 0 {
					old := live[rng.Intn(len(live))]
					r.Realloc(old, addr, rng.Uint64n(512))
					addr += 0x100
				}
			default:
				r.Access(mem.Addr(rng.Uint64n(uint64(addr))), 8, rng.Bool(0.5))
			}
		}
		tr := r.Trace()
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestZigzagRoundtrip(t *testing.T) {
	f := func(v uint64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalIndexInteriorLookup(t *testing.T) {
	x := newIntervalIndex()
	o := &Object{ID: 1}
	x.insert(0x1000, 64, o)
	if x.find(0x1000) != o || x.find(0x103f) != o {
		t.Error("containment lookup failed")
	}
	if x.find(0x1040) != nil || x.find(0xfff) != nil {
		t.Error("out-of-range lookup should miss")
	}
	if x.remove(0x1000) != o {
		t.Error("remove returned wrong object")
	}
	if x.find(0x1000) != nil {
		t.Error("removed interval still found")
	}
	if x.len() != 0 {
		t.Error("index not empty")
	}
}

func TestIntervalIndexMany(t *testing.T) {
	x := newIntervalIndex()
	objs := make([]*Object, 100)
	for i := range objs {
		objs[i] = &Object{ID: mem.ObjectID(i + 1)}
		x.insert(mem.Addr(0x1000+i*0x100), 0x80, objs[i])
	}
	for i := range objs {
		base := mem.Addr(0x1000 + i*0x100)
		if x.find(base+0x40) != objs[i] {
			t.Fatalf("interior lookup %d failed", i)
		}
		if x.find(base+0x80) != nil {
			t.Fatalf("gap lookup %d should miss", i)
		}
	}
}
