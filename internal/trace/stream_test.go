package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"prefix/internal/mem"
)

// drain pulls every event out of a source, failing the test on a decode
// error.
func drain(t *testing.T, src Source) []Event {
	t.Helper()
	var evs []Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		evs = append(evs, ev)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("source error: %v", err)
	}
	return evs
}

// writeChunked streams tr through a StreamWriter with the given chunk
// size and returns the encoded bytes.
func writeChunked(t *testing.T, tr *Trace, chunkEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, chunkEvents)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := sw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	sw.SetInstr(tr.Instr)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundtripChunkSizes(t *testing.T) {
	tr := record() // 12 events
	for _, chunk := range []int{1, 3, 4, 12, 100} {
		data := writeChunked(t, tr, chunk)
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		got := drain(t, sr)
		if !reflect.DeepEqual(got, tr.Events) {
			t.Fatalf("chunk %d: events differ:\n got %+v\nwant %+v", chunk, got, tr.Events)
		}
		if sr.Instr() != tr.Instr {
			t.Fatalf("chunk %d: instr = %d, want %d", chunk, sr.Instr(), tr.Instr)
		}
		wantChunks := uint64((len(tr.Events) + chunk - 1) / chunk)
		if sr.Chunks() != wantChunks {
			t.Fatalf("chunk %d: chunks = %d, want %d", chunk, sr.Chunks(), wantChunks)
		}
	}
}

func TestStreamWriterStats(t *testing.T) {
	tr := record()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := sw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	s := sw.Stats()
	if s.Events != uint64(len(tr.Events)) {
		t.Errorf("Events = %d, want %d", s.Events, len(tr.Events))
	}
	if s.Chunks != 3 { // 12 events at chunk size 5 -> 5+5+2
		t.Errorf("Chunks = %d, want 3", s.Chunks)
	}
	if s.PeakBufferedEvents != 5 {
		t.Errorf("PeakBufferedEvents = %d, want 5", s.PeakBufferedEvents)
	}
}

func TestStreamEmptyTrace(t *testing.T) {
	data := writeChunked(t, &Trace{Instr: 77}, 4)
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if evs := drain(t, sr); len(evs) != 0 {
		t.Fatalf("events = %+v, want none", evs)
	}
	if sr.Instr() != 77 {
		t.Errorf("instr = %d, want 77", sr.Instr())
	}
}

func TestReadAcceptsChunkedFormat(t *testing.T) {
	tr := record()
	got, err := Read(bytes.NewReader(writeChunked(t, tr, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Instr != tr.Instr || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("Read over chunked bytes differs from source trace")
	}
}

func TestStreamReaderClassicFormat(t *testing.T) {
	tr := record()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Instr() != tr.Instr { // v1 carries instr in the header
		t.Errorf("instr = %d, want %d", sr.Instr(), tr.Instr)
	}
	if got := drain(t, sr); !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("classic decode through StreamReader differs")
	}
}

func TestStreamTruncatedChunk(t *testing.T) {
	data := writeChunked(t, record(), 4)
	sr, err := NewStreamReader(bytes.NewReader(data[:len(data)-6]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := sr.Next(); !ok {
			break
		}
	}
	if sr.Err() == nil {
		t.Fatal("truncated chunked stream decoded cleanly")
	}
}

func TestStreamOverlongChunkHeaderRejected(t *testing.T) {
	// A chunk claiming more events than the declared chunk size is
	// corrupt and must fail without trusting the count.
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header is "PFXT" + version varint + chunkSize varint; splice in a
	// bogus chunk frame claiming 100 events (one varint byte).
	head := data[:len(magic)+2]
	doctored := append(append([]byte(nil), head...), 100)
	sr, err := NewStreamReader(bytes.NewReader(doctored))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sr.Next(); ok {
		t.Fatal("Next succeeded on bogus chunk header")
	}
	if err := sr.Err(); err == nil || !strings.Contains(err.Error(), "above the declared chunk size") {
		t.Fatalf("err = %v, want chunk-size violation", err)
	}
}

func TestTraceSourceSink(t *testing.T) {
	tr := record()
	var sink Trace
	src := tr.Source()
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := sink.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	sink.SetInstr(src.Instr())
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink.Events, tr.Events) || sink.Instr != tr.Instr {
		t.Fatal("Trace source->sink copy differs")
	}
}

func TestSpillRecorderMatchesRecorder(t *testing.T) {
	// Drive both recorders with the same calls; the spill file must
	// decode to exactly the in-memory trace.
	mm := NewRecorder()
	var buf bytes.Buffer
	sp, err := NewSpillRecorder(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []EventRecorder{mm, sp} {
		rec.Alloc(1, 0xabc, 0x1000, 64)
		rec.Access(0x1000, 8, false)
		rec.Access(0x1020, 8, true)
		rec.Alloc(2, 0xdef, 0x2000, 32)
		rec.Free(0x1000)
		rec.Realloc(0x2000, 0x3000, 96)
		rec.Access(0x3000, 8, true)
		rec.AddInstr(4321)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := mm.Trace()
	if !reflect.DeepEqual(got.Events, want.Events) || got.Instr != want.Instr {
		t.Fatalf("spill file decodes to:\n %+v\nwant %+v", got, want)
	}
	s := sp.Stats()
	if s.Events != uint64(len(want.Events)) || s.PeakBufferedEvents > 3 || s.Chunks == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSpillRecorderLatchesWriteError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.pfxt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpillRecorder(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // every subsequent chunk flush fails
	for i := 0; i < 10; i++ {
		sp.Access(0x1000, 8, false) // must not panic
	}
	if sp.Err() == nil && sp.Close() == nil {
		t.Fatal("write error on closed file never surfaced")
	}
}

func TestAnalyzeSourceMatchesAnalyze(t *testing.T) {
	tr := record()
	want := Analyze(tr)

	fromSlice, err := AnalyzeSource(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSlice, want) {
		t.Fatal("AnalyzeSource(slice) differs from Analyze")
	}

	sr, err := NewStreamReader(bytes.NewReader(writeChunked(t, tr, 4)))
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := AnalyzeSource(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromStream, want) {
		t.Fatal("AnalyzeSource(stream) differs from Analyze")
	}
	if want.Events != len(tr.Events) {
		t.Errorf("Analysis.Events = %d, want %d", want.Events, len(tr.Events))
	}
}

func TestAnalyzeSourceTruncatedStreamErrors(t *testing.T) {
	data := writeChunked(t, record(), 4)
	sr, err := NewStreamReader(bytes.NewReader(data[:len(data)-6]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeSource(sr); err == nil {
		t.Fatal("AnalyzeSource accepted a truncated stream")
	}
}

// TestStreamBoundedMemoryLargeTrace is the acceptance check for the
// streaming pipeline: a >10M-event run recorded through the spill
// recorder must keep the peak trace buffer at one chunk, and the
// resulting stream must analyze to the expected object population.
func TestStreamBoundedMemoryLargeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-event stream test skipped in -short mode")
	}
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "big.pfxt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const chunk = 1 << 14
	rec, err := NewSpillRecorder(f, chunk)
	if err != nil {
		t.Fatal(err)
	}

	// 1M rounds of alloc + 9 accesses + free: >10M events with a live
	// set of one object, so the analyzer side stays small too.
	const rounds = 1_000_000
	for i := 0; i < rounds; i++ {
		addr := mem.Addr(0x1000 + uint64(i%64)*0x100)
		rec.Alloc(mem.SiteID(i%7+1), mem.StackSig(i%13), addr, 128)
		for j := 0; j < 9; j++ {
			rec.Access(addr+mem.Addr(j*8), 8, j%2 == 0)
		}
		rec.Free(addr)
	}
	rec.AddInstr(rounds * 11)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	s := rec.Stats()
	if want := uint64(rounds * 11); s.Events != want {
		t.Fatalf("recorded %d events, want %d", s.Events, want)
	}
	if s.PeakBufferedEvents > chunk {
		t.Fatalf("peak buffered events %d exceeds the chunk budget %d", s.PeakBufferedEvents, chunk)
	}
	if s.Chunks < rounds*11/chunk {
		t.Fatalf("chunks spilled = %d, want at least %d", s.Chunks, rounds*11/chunk)
	}

	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSource(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != rounds {
		t.Errorf("objects = %d, want %d", len(a.Objects), rounds)
	}
	if a.HeapAccesses != rounds*9 {
		t.Errorf("heap accesses = %d, want %d", a.HeapAccesses, rounds*9)
	}
	if a.MaxLive != 1 {
		t.Errorf("max live = %d, want 1", a.MaxLive)
	}
	if a.Instr != rounds*11 {
		t.Errorf("instr = %d", a.Instr)
	}
}
