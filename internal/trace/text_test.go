package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tr := record()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alloc", "free", "realloc", "access", "read", "write", "site=1", "site=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(tr.Events)+1 {
		t.Errorf("lines = %d, want %d (events + header)", lines, len(tr.Events)+1)
	}
}

func TestSummarize(t *testing.T) {
	s := record().Summarize()
	if s.Allocs != 4 || s.Frees != 1 || s.Reallocs != 1 || s.Accesses != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.Writes != 2 {
		t.Errorf("writes = %d, want 2", s.Writes)
	}
	if s.Sites != 2 {
		t.Errorf("sites = %d, want 2", s.Sites)
	}
	if s.Bytes != 64+32+16+48 {
		t.Errorf("bytes = %d", s.Bytes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var tr Trace
	s := tr.Summarize()
	if s.Events != 0 || s.Allocs != 0 || s.Sites != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
