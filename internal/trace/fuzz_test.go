package trace

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the trace decoders: neither may
// panic, anything accepted must re-encode losslessly, and the streaming
// reader must agree with the materializing Read on every input — same
// events in the same order, or an error on both sides.
func FuzzRead(f *testing.F) {
	// Seed with valid traces in both container versions and a few
	// corruptions of them.
	var buf bytes.Buffer
	if err := record().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PFXT"))
	if len(valid) > 8 {
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}
	// Chunked-container seeds: a valid stream and a truncated chunk.
	var chunked bytes.Buffer
	sw, err := NewStreamWriter(&chunked, 4)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range record().Events {
		if err := sw.Append(ev); err != nil {
			f.Fatal(err)
		}
	}
	sw.SetInstr(record().Instr)
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(chunked.Bytes())
	f.Add(append([]byte(nil), chunked.Bytes()[:chunked.Len()-6]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))

		// The streaming reader must agree with Read byte for byte: the
		// same events in the same order, or an error on both paths.
		sr, srErr := NewStreamReader(bytes.NewReader(data))
		var streamed []Event
		var instr uint64
		if srErr == nil {
			for {
				ev, ok := sr.Next()
				if !ok {
					break
				}
				streamed = append(streamed, ev)
			}
			srErr = sr.Err()
			instr = sr.Instr()
		}
		if (err == nil) != (srErr == nil) {
			t.Fatalf("decoder disagreement: Read err=%v, stream err=%v", err, srErr)
		}
		if err != nil {
			return // rejecting garbage is fine, as long as both reject
		}
		if len(streamed) != len(tr.Events) || instr != tr.Instr {
			t.Fatalf("stream decoded %d events (instr %d), Read %d (instr %d)",
				len(streamed), instr, len(tr.Events), tr.Instr)
		}
		for i := range streamed {
			if streamed[i] != tr.Events[i] {
				t.Fatalf("event %d: stream %+v, Read %+v", i, streamed[i], tr.Events[i])
			}
		}

		// Anything accepted must survive a re-encode roundtrip.
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || tr2.Instr != tr.Instr {
			t.Fatal("re-encode roundtrip lost events")
		}
	})
}
