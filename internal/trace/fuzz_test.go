package trace

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the trace decoder: it must never
// panic, and anything it accepts must re-encode losslessly.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	if err := record().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PFXT"))
	if len(valid) > 8 {
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || tr2.Instr != tr.Instr {
			t.Fatal("re-encode roundtrip lost events")
		}
	})
}
