package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prefix/internal/mem"
	"prefix/internal/obs"
)

// This file is the streaming half of the trace layer. The in-memory
// *Trace stays the reference implementation, but every consumer that can
// work single-pass goes through the Source/Sink pair so profiling runs
// with tens of millions of events never materialize the whole stream:
//
//	Source — pull iterator over events (in-memory slice, or an
//	         incremental decode of a trace file)
//	Sink   — incremental consumer (in-memory slice, or the chunked
//	         stream writer that spills fixed-size chunks to disk)
//
// The chunked stream format (version 2 of the PFXT container) reuses the
// version-1 event encoding byte for byte — the delta-encoder state runs
// continuously across chunk boundaries — and frames events into chunks
// of at most the writer's configured size, so both ends hold one chunk
// at most:
//
//	magic "PFXT" | version=2 | chunkSize |
//	  chunk*: eventCount (1..chunkSize) | events... |
//	  terminator: 0 | instr
//
// The instruction count moves from the header to the terminator because
// a spilling recorder only learns it when the run finishes.
//
// Version 3 — what the StreamWriter emits — is version 2 plus an indexed
// chunk frame: each chunk additionally carries its encoded byte length
// and the delta-decoder handoff (the per-kind previous addresses at the
// chunk's first event), so a cheap sequential scanner can slice the file
// into self-contained (bytes, start-state) units for the parallel decode
// pool in shard.go without decoding anything itself:
//
//	magic "PFXT" | version=3 | chunkSize |
//	  chunk*: eventCount (1..chunkSize) | byteLen |
//	          prevAddr[Alloc] prevAddr[Free] prevAddr[Realloc] prevAddr[Access] |
//	          events... (byteLen bytes)
//	  terminator: 0 | instr
//
// The serial reader cross-checks the recorded handoff against its own
// running decoder state, so a writer bug in the handoff snapshot can
// never go unnoticed; the parallel path trusts it (that is the point:
// decoding chunk k must not require decoding chunk k-1).

// Source is a pull iterator over an event stream in trace order.
type Source interface {
	// Next returns the next event; ok=false ends the stream. After a
	// false return, Err distinguishes clean end-of-stream from a decode
	// error.
	Next() (ev Event, ok bool)
	// Err returns the first error the source hit, or nil.
	Err() error
	// Instr returns the total dynamic instruction count of the traced
	// run. It is guaranteed valid only after Next has returned false
	// (chunked files carry it in the stream terminator).
	Instr() uint64
}

// Sink is an incremental consumer of an event stream.
type Sink interface {
	// Append adds the next event in trace order.
	Append(Event) error
	// SetInstr records the run's total dynamic instruction count; call
	// it before Close.
	SetInstr(uint64)
	// Close finalizes the stream. No Append may follow.
	Close() error
}

// EventRecorder is the write interface the machine layer feeds during a
// profiled run. *Recorder (in-memory) and *SpillRecorder (bounded
// memory) both implement it.
type EventRecorder interface {
	Alloc(site mem.SiteID, stack mem.StackSig, addr mem.Addr, size uint64)
	Free(addr mem.Addr)
	Realloc(old, new mem.Addr, size uint64)
	Access(addr mem.Addr, size uint64, write bool)
	AddInstr(n uint64)
}

// BatchRecorder is implemented by recorders that accept events in bulk.
// The machine layer batches its event hand-off and delivers whole
// batches through this when available, so the per-event recording cost
// is an append into the batch rather than an interface dispatch;
// semantics are identical to feeding the events one at a time through
// EventRecorder.
type BatchRecorder interface {
	RecordBatch(evs []Event)
}

// RecorderStats describes what a recorder captured and how much of it
// was ever resident: Events is the total recorded, Chunks how many
// fixed-size chunks were spilled to the backing writer (always zero for
// the in-memory recorder), and PeakBufferedEvents the largest number of
// events simultaneously buffered in memory — the whole trace for the
// in-memory recorder, at most one chunk for the spilling one.
type RecorderStats struct {
	Events             uint64
	Chunks             uint64
	PeakBufferedEvents int
}

// Publish reports the recorder statistics into reg under the given
// label pairs. Nil-safe like every obs entry point.
func (s RecorderStats) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	reg.Counter("prefix_trace_recorded_events_total", kv...).Add(s.Events)
	reg.Counter("prefix_trace_spilled_chunks_total", kv...).Add(s.Chunks)
	reg.Gauge("prefix_trace_peak_buffered_events", kv...).Set(float64(s.PeakBufferedEvents))
}

// --- In-memory Trace as Source and Sink -------------------------------

// Source returns an iterator over the in-memory events.
func (t *Trace) Source() Source { return &sliceSource{t: t} }

type sliceSource struct {
	t *Trace
	i int
}

func (s *sliceSource) Next() (Event, bool) {
	if s.i >= len(s.t.Events) {
		return Event{}, false
	}
	ev := s.t.Events[s.i]
	s.i++
	return ev, true
}

func (s *sliceSource) Err() error    { return nil }
func (s *sliceSource) Instr() uint64 { return s.t.Instr }

// Append implements Sink by growing the in-memory slice.
func (t *Trace) Append(ev Event) error {
	t.Events = append(t.Events, ev)
	return nil
}

// SetInstr implements Sink.
func (t *Trace) SetInstr(n uint64) { t.Instr = n }

// Close implements Sink; the in-memory trace needs no finalization.
func (t *Trace) Close() error { return nil }

var (
	_ Sink          = (*Trace)(nil)
	_ EventRecorder = (*Recorder)(nil)
	_ BatchRecorder = (*Recorder)(nil)
	_ BatchRecorder = (*SpillRecorder)(nil)
)

// --- Chunked stream writer --------------------------------------------

// DefaultChunkEvents is the default chunk size of the streaming writer
// and the spill recorder: the maximum number of events buffered in
// memory before a chunk is flushed to the backing writer.
const DefaultChunkEvents = 1 << 16

// StreamWriter writes the chunked stream format incrementally. Events
// are encoded into an in-memory chunk as they arrive; when the chunk
// holds chunkEvents events it is framed and flushed, so the writer never
// buffers more than one chunk.
type StreamWriter struct {
	w           *bufio.Writer
	enc         eventEncoder
	chunk       bytes.Buffer // encoded bytes of the open chunk
	chunkEvents int
	n           int // events in the open chunk
	// handoff is the delta-encoder state at the open chunk's first
	// event, snapshotted at every chunk boundary; the version-3 frame
	// records it so chunks decode independently.
	handoff [5]uint64
	instr   uint64
	stats   RecorderStats
	closed  bool
	err     error
}

// NewStreamWriter starts a chunked stream on w. chunkEvents is the
// memory budget in events per chunk; values < 1 select
// DefaultChunkEvents. The stream is invalid until Close succeeds.
func NewStreamWriter(w io.Writer, chunkEvents int) (*StreamWriter, error) {
	if chunkEvents < 1 {
		chunkEvents = DefaultChunkEvents
	}
	sw := &StreamWriter{w: bufio.NewWriter(w), chunkEvents: chunkEvents}
	sw.enc.w = &sw.chunk
	if _, err := sw.w.WriteString(magic); err != nil {
		return nil, err
	}
	if err := writeUvarint(sw.w, versionIndexed); err != nil {
		return nil, err
	}
	if err := writeUvarint(sw.w, uint64(chunkEvents)); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *StreamWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// Append implements Sink: encode the event into the open chunk,
// flushing it when full.
func (sw *StreamWriter) Append(ev Event) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return sw.fail(errors.New("trace: Append after Close"))
	}
	if err := sw.enc.encode(ev); err != nil {
		return sw.fail(err)
	}
	sw.n++
	sw.stats.Events++
	if sw.n > sw.stats.PeakBufferedEvents {
		sw.stats.PeakBufferedEvents = sw.n
	}
	if sw.n >= sw.chunkEvents {
		return sw.flushChunk()
	}
	return nil
}

// AppendBatch encodes a batch of events in order, flushing chunks as
// they fill. It produces byte-for-byte the same stream as appending the
// events one at a time — the delta-encoder state runs continuously and
// chunk boundaries fall at the same event indexes — while hoisting the
// per-event error and lifecycle checks out of the loop. The chunk
// staging buffer is reused across chunks, so steady-state bulk encoding
// allocates nothing.
func (sw *StreamWriter) AppendBatch(evs []Event) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return sw.fail(errors.New("trace: Append after Close"))
	}
	for i := range evs {
		if err := sw.enc.encode(evs[i]); err != nil {
			return sw.fail(err)
		}
		sw.n++
		sw.stats.Events++
		if sw.n > sw.stats.PeakBufferedEvents {
			sw.stats.PeakBufferedEvents = sw.n
		}
		if sw.n >= sw.chunkEvents {
			if err := sw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushChunk frames and writes the open chunk: event count, encoded
// byte length, the decoder handoff at the chunk's first event, then the
// payload. The handoff snapshot rolls forward to the encoder's current
// state for the next chunk.
func (sw *StreamWriter) flushChunk() error {
	if err := writeUvarint(sw.w, uint64(sw.n)); err != nil {
		return sw.fail(err)
	}
	if err := writeUvarint(sw.w, uint64(sw.chunk.Len())); err != nil {
		return sw.fail(err)
	}
	for kind := KindAlloc; kind <= KindAccess; kind++ {
		if err := writeUvarint(sw.w, sw.handoff[kind]); err != nil {
			return sw.fail(err)
		}
	}
	if _, err := sw.chunk.WriteTo(sw.w); err != nil {
		return sw.fail(err)
	}
	sw.chunk.Reset()
	sw.n = 0
	sw.handoff = sw.enc.prevAddr
	sw.stats.Chunks++
	return nil
}

// SetInstr implements Sink; the count lands in the stream terminator.
func (sw *StreamWriter) SetInstr(n uint64) { sw.instr = n }

// Close flushes the final partial chunk and writes the terminator.
// Close is idempotent; the first error wins.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	sw.closed = true
	if sw.n > 0 {
		if err := sw.flushChunk(); err != nil {
			return err
		}
	}
	if err := writeUvarint(sw.w, 0); err != nil {
		return sw.fail(err)
	}
	if err := writeUvarint(sw.w, sw.instr); err != nil {
		return sw.fail(err)
	}
	if err := sw.w.Flush(); err != nil {
		return sw.fail(err)
	}
	return nil
}

// Stats reports what the writer has accepted and spilled so far.
func (sw *StreamWriter) Stats() RecorderStats { return sw.stats }

var _ Sink = (*StreamWriter)(nil)

// --- Chunked / classic stream reader ----------------------------------

// StreamReader decodes a trace file incrementally, holding no event
// buffer at all. It accepts every container version: the classic
// version-1 file (header-counted) and the version-2/3 chunked streams.
type StreamReader struct {
	dec       eventDecoder
	version   uint64
	instr     uint64
	events    uint64 // events decoded so far
	remaining uint64 // events left in the current chunk (v2) or file (v1)
	declared  uint64 // v1 header event count
	chunkSize uint64 // v2 declared chunk size
	chunks    uint64
	done      bool
	err       error
}

// readContainerHeader consumes the magic and version from br.
func readContainerHeader(br *bufio.Reader) (ver uint64, err error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return 0, errors.New("trace: bad magic (not a PreFix trace file)")
	}
	return binary.ReadUvarint(br)
}

// NewStreamReader reads the container header and returns a Source over
// the file's events.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	ver, err := readContainerHeader(br)
	if err != nil {
		return nil, err
	}
	return newStreamReader(br, ver)
}

// newStreamReader continues after the magic and version have been
// consumed from br (the sharded path peeks the version first to decide
// between serial and parallel decode).
func newStreamReader(br *bufio.Reader, ver uint64) (*StreamReader, error) {
	s := &StreamReader{version: ver}
	s.dec.br = br
	var err error
	switch ver {
	case version:
		if s.instr, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if s.declared, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		s.remaining = s.declared
	case versionChunked, versionIndexed:
		if s.chunkSize, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if s.chunkSize == 0 {
			return nil, errors.New("trace: chunked stream declares zero chunk size")
		}
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	return s, nil
}

func (s *StreamReader) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Next implements Source.
func (s *StreamReader) Next() (Event, bool) {
	if s.done || s.err != nil {
		return Event{}, false
	}
	if s.remaining == 0 {
		if s.version == version {
			s.done = true
			return Event{}, false
		}
		// Chunked: next frame is a chunk header or the terminator.
		n, err := binary.ReadUvarint(s.dec.br)
		if err != nil {
			s.fail(fmt.Errorf("trace: chunk %d header: %w", s.chunks, err))
			return Event{}, false
		}
		if n == 0 {
			instr, err := binary.ReadUvarint(s.dec.br)
			if err != nil {
				s.fail(fmt.Errorf("trace: stream terminator: %w", err))
				return Event{}, false
			}
			s.instr = instr
			s.done = true
			return Event{}, false
		}
		if n > s.chunkSize {
			s.fail(fmt.Errorf("trace: chunk %d claims %d events, above the declared chunk size %d",
				s.chunks, n, s.chunkSize))
			return Event{}, false
		}
		if s.version == versionIndexed {
			// Indexed frame: byte length and decoder handoff. The
			// serial decoder's state already runs continuously, so the
			// recorded handoff must match it exactly — a mismatch means
			// a corrupt file or a broken writer snapshot.
			byteLen, err := binary.ReadUvarint(s.dec.br)
			if err != nil {
				s.fail(fmt.Errorf("trace: chunk %d byte length: %w", s.chunks, err))
				return Event{}, false
			}
			if byteLen > n*maxEventEncodedBytes {
				s.fail(fmt.Errorf("trace: chunk %d claims %d bytes for %d events", s.chunks, byteLen, n))
				return Event{}, false
			}
			for kind := KindAlloc; kind <= KindAccess; kind++ {
				state, err := binary.ReadUvarint(s.dec.br)
				if err != nil {
					s.fail(fmt.Errorf("trace: chunk %d handoff: %w", s.chunks, err))
					return Event{}, false
				}
				if state != s.dec.prevAddr[kind] {
					s.fail(fmt.Errorf("trace: chunk %d handoff mismatch for kind %d: recorded %#x, decoder at %#x",
						s.chunks, kind, state, s.dec.prevAddr[kind]))
					return Event{}, false
				}
			}
		}
		s.chunks++
		s.remaining = n
	}
	ev, err := s.dec.decode(s.events)
	if err != nil {
		s.fail(err)
		return Event{}, false
	}
	s.events++
	s.remaining--
	return ev, true
}

// Err implements Source.
func (s *StreamReader) Err() error { return s.err }

// Instr implements Source. For version-1 files it is valid immediately;
// for chunked streams only after Next has returned false.
func (s *StreamReader) Instr() uint64 { return s.instr }

// Events returns the number of events decoded so far.
func (s *StreamReader) Events() uint64 { return s.events }

// Chunks returns the number of chunk frames consumed (zero for
// version-1 files).
func (s *StreamReader) Chunks() uint64 { return s.chunks }

// capHint returns a bounded capacity hint for materializing the stream:
// the declared event count where the header carries one, capped so a
// doctored header cannot drive a huge allocation (satellite of the
// untrusted-eventCount fix — real events grow the slice as they decode).
func (s *StreamReader) capHint() int {
	hint := s.declared
	if s.version != version {
		hint = s.chunkSize
	}
	if hint > maxPreallocEvents {
		hint = maxPreallocEvents
	}
	return int(hint)
}

var _ Source = (*StreamReader)(nil)

// --- Spill-to-disk recorder -------------------------------------------

// SpillRecorder is the bounded-memory trace recorder: the machine layer
// feeds it exactly like the in-memory Recorder, but events stream into a
// chunked trace file as chunks fill, so the run's peak trace-buffer
// memory is one chunk regardless of trace length.
//
// The Env recording methods cannot return errors, so a write failure is
// latched: recording becomes a no-op and the error surfaces from Err and
// Close. Callers must Close the recorder (which writes the stream
// terminator) before reading the spill file back.
type SpillRecorder struct {
	sw    *StreamWriter
	instr uint64
}

// NewSpillRecorder starts a spilling recorder over w (typically a temp
// file). chunkEvents bounds the in-memory buffer; values < 1 select
// DefaultChunkEvents.
func NewSpillRecorder(w io.Writer, chunkEvents int) (*SpillRecorder, error) {
	sw, err := NewStreamWriter(w, chunkEvents)
	if err != nil {
		return nil, err
	}
	return &SpillRecorder{sw: sw}, nil
}

// Alloc implements EventRecorder.
func (r *SpillRecorder) Alloc(site mem.SiteID, stack mem.StackSig, addr mem.Addr, size uint64) {
	_ = r.sw.Append(Event{Kind: KindAlloc, Site: site, Stack: stack, Addr: addr, Size: size})
}

// Free implements EventRecorder.
func (r *SpillRecorder) Free(addr mem.Addr) {
	_ = r.sw.Append(Event{Kind: KindFree, Addr: addr})
}

// Realloc implements EventRecorder.
func (r *SpillRecorder) Realloc(old, new mem.Addr, size uint64) {
	_ = r.sw.Append(Event{Kind: KindRealloc, Addr: old, Addr2: new, Size: size})
}

// Access implements EventRecorder.
func (r *SpillRecorder) Access(addr mem.Addr, size uint64, write bool) {
	_ = r.sw.Append(Event{Kind: KindAccess, Addr: addr, Size: size, Write: write})
}

// RecordBatch implements BatchRecorder: the batch bulk-encodes through
// the stream writer, flushing chunks as they fill. Write errors latch
// exactly as on the per-event path.
func (r *SpillRecorder) RecordBatch(evs []Event) {
	_ = r.sw.AppendBatch(evs)
}

// AddInstr implements EventRecorder.
func (r *SpillRecorder) AddInstr(n uint64) { r.instr += n }

// Err returns the first write error, if any.
func (r *SpillRecorder) Err() error { return r.sw.err }

// Close finalizes the spill stream (terminator + instruction count).
func (r *SpillRecorder) Close() error {
	r.sw.SetInstr(r.instr)
	return r.sw.Close()
}

// Stats reports events recorded, chunks spilled, and the peak number of
// buffered events.
func (r *SpillRecorder) Stats() RecorderStats { return r.sw.Stats() }

var _ EventRecorder = (*SpillRecorder)(nil)

// --- Streaming analysis ------------------------------------------------

// AnalyzeSource reconstructs dynamic objects and the reference string
// from any event source in a single pass, without materializing the
// trace. Feeding the same events as Analyze produces an identical
// Analysis.
func AnalyzeSource(src Source) (*Analysis, error) {
	an := NewAnalyzer()
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		an.Feed(ev)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	an.SetInstr(src.Instr())
	return an.Finish(), nil
}

// writeUvarint writes one unsigned varint to w.
func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}
