package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText dumps the trace in a line-per-event human-readable form, the
// equivalent of DrCacheSim's text view. Intended for debugging and small
// traces; the binary format is the interchange format.
//
//	alloc   site=3 stack=0x1f addr=0x12340 size=64
//	access  addr=0x12340 size=8 read
//	realloc old=0x12340 new=0x99000 size=128
//	free    addr=0x99000
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace: %d events, %d instructions\n", len(t.Events), t.Instr)
	for i, ev := range t.Events {
		switch ev.Kind {
		case KindAlloc:
			fmt.Fprintf(bw, "%8d alloc   site=%d stack=%#x addr=%#x size=%d\n",
				i, ev.Site, uint64(ev.Stack), uint64(ev.Addr), ev.Size)
		case KindFree:
			fmt.Fprintf(bw, "%8d free    addr=%#x\n", i, uint64(ev.Addr))
		case KindRealloc:
			fmt.Fprintf(bw, "%8d realloc old=%#x new=%#x size=%d\n",
				i, uint64(ev.Addr), uint64(ev.Addr2), ev.Size)
		case KindAccess:
			rw := "read"
			if ev.Write {
				rw = "write"
			}
			fmt.Fprintf(bw, "%8d access  addr=%#x size=%d %s\n",
				i, uint64(ev.Addr), ev.Size, rw)
		default:
			fmt.Fprintf(bw, "%8d ?kind=%d\n", i, ev.Kind)
		}
	}
	return bw.Flush()
}

// Stats summarizes a trace for quick inspection.
type Stats struct {
	Events   int
	Allocs   uint64
	Frees    uint64
	Reallocs uint64
	Accesses uint64
	Writes   uint64
	Bytes    uint64 // total bytes allocated
	Sites    int    // distinct malloc sites
}

// Summarize computes trace statistics in one pass.
func (t *Trace) Summarize() Stats {
	s := Stats{Events: len(t.Events)}
	sites := make(map[uint32]bool)
	for _, ev := range t.Events {
		switch ev.Kind {
		case KindAlloc:
			s.Allocs++
			s.Bytes += ev.Size
			sites[uint32(ev.Site)] = true
		case KindFree:
			s.Frees++
		case KindRealloc:
			s.Reallocs++
		case KindAccess:
			s.Accesses++
			if ev.Write {
				s.Writes++
			}
		}
	}
	s.Sites = len(sites)
	return s
}
