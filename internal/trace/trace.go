// Package trace defines the memory-trace model produced by profiling runs
// and consumed by every analysis in the PreFix pipeline (paper Figure 8:
// "Alloc & Access Trace").
//
// A trace is an ordered stream of events: allocations (with static malloc
// site and call-stack signature), frees, reallocs, and memory accesses.
// Event index doubles as logical time. The analyzer reconstructs a table of
// dynamic objects from the stream — address reuse by the allocator is
// resolved by liveness, so every dynamic object receives a unique ObjectID
// in allocation order, which is exactly the paper's notion of identity
// ("static malloc site + dynamic allocation instance").
package trace

import (
	"prefix/internal/mem"
)

// Kind discriminates trace events.
type Kind uint8

const (
	KindAlloc Kind = iota + 1
	KindFree
	KindRealloc
	KindAccess
)

// Event is one trace record. Field use depends on Kind:
//
//	Alloc:   Site, Stack, Addr, Size
//	Free:    Addr
//	Realloc: Addr (old), Addr2 (new), Size (new size)
//	Access:  Addr, Size (access width), Write
type Event struct {
	Kind  Kind
	Site  mem.SiteID
	Stack mem.StackSig
	Addr  mem.Addr
	Addr2 mem.Addr
	Size  uint64
	Write bool
}

// Trace is an in-memory event stream.
type Trace struct {
	Events []Event
	// Instr is the total dynamic instruction count of the traced run
	// (memory accesses + compute), used for Table 6 style accounting.
	Instr uint64
}

// Recorder accumulates events during a profiling run. The machine layer
// feeds it; analyses read the resulting Trace.
type Recorder struct {
	tr Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Alloc records an allocation event.
func (r *Recorder) Alloc(site mem.SiteID, stack mem.StackSig, addr mem.Addr, size uint64) {
	r.tr.Events = append(r.tr.Events, Event{Kind: KindAlloc, Site: site, Stack: stack, Addr: addr, Size: size})
}

// Free records a deallocation event.
func (r *Recorder) Free(addr mem.Addr) {
	r.tr.Events = append(r.tr.Events, Event{Kind: KindFree, Addr: addr})
}

// Realloc records a reallocation from old to new with the new size.
func (r *Recorder) Realloc(old, new mem.Addr, size uint64) {
	r.tr.Events = append(r.tr.Events, Event{Kind: KindRealloc, Addr: old, Addr2: new, Size: size})
}

// Access records a memory reference.
func (r *Recorder) Access(addr mem.Addr, size uint64, write bool) {
	r.tr.Events = append(r.tr.Events, Event{Kind: KindAccess, Addr: addr, Size: size, Write: write})
}

// RecordBatch implements BatchRecorder: one bulk append of the batch
// into the in-memory event slice.
func (r *Recorder) RecordBatch(evs []Event) {
	r.tr.Events = append(r.tr.Events, evs...)
}

// AddInstr accumulates dynamic instruction count.
func (r *Recorder) AddInstr(n uint64) { r.tr.Instr += n }

// Trace returns the recorded trace. The recorder must not be used after.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Stats reports what the recorder captured. The in-memory recorder
// buffers everything, so the peak equals the event count and nothing is
// ever spilled.
func (r *Recorder) Stats() RecorderStats {
	return RecorderStats{
		Events:             uint64(len(r.tr.Events)),
		PeakBufferedEvents: len(r.tr.Events),
	}
}

// Object describes one dynamic heap object reconstructed from a trace.
type Object struct {
	ID       mem.ObjectID
	Site     mem.SiteID
	Stack    mem.StackSig
	Instance mem.Instance // n-th allocation of Site (1-based)
	Size     uint64       // size at allocation (final size after reallocs in FinalSize)
	Addr     mem.Addr     // address at allocation
	AllocAt  int          // event index of allocation
	FreeAt   int          // event index of free, -1 if never freed
	Accesses uint64       // number of access events landing in the object
	Reads    uint64
	Writes   uint64
	// FinalSize is the size after the last realloc (== Size if none).
	FinalSize uint64
}

// Analysis is the result of reconstructing objects from a trace.
type Analysis struct {
	// Events is the total number of trace events analyzed.
	Events  int
	Objects []*Object // index = ObjectID-1
	// Refs is the object-granular reference string: for every access event
	// that hit a live heap object, the ObjectID, in trace order. Accesses
	// to non-heap addresses are dropped.
	Refs []mem.ObjectID
	// RefAt[i] is the event index of Refs[i] (for time-bucketed heatmaps).
	RefAt []int
	// HeapAccesses / TotalAccesses split access events into those that hit
	// a live object and all of them.
	HeapAccesses  uint64
	TotalAccesses uint64
	// SiteAllocs counts dynamic allocations per site.
	SiteAllocs map[mem.SiteID]uint64
	// SiteObjects lists, per site, the ObjectIDs it allocated in order —
	// index i is the object with Instance i+1.
	SiteObjects map[mem.SiteID][]mem.ObjectID
	// MaxLive and per-site peaks of simultaneously-live objects (for the
	// recycling planner).
	MaxLive     uint64
	SiteMaxLive map[mem.SiteID]uint64
	Instr       uint64
}

// Analyzer reconstructs objects and the reference string incrementally:
// Feed it every event in trace order, then Finish. Analyze and
// AnalyzeSource are both built on it, so the in-memory and streaming
// paths produce identical results by construction.
type Analyzer struct {
	a *Analysis
	// idx maps live address intervals -> objects for containment
	// queries: the workloads access addresses inside [base, base+size),
	// so live intervals sit in an ordered slice with binary search.
	idx      *intervalIndex
	live     uint64
	siteLive map[mem.SiteID]uint64
	i        int // event index == logical time
}

// NewAnalyzer returns an empty incremental analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		a: &Analysis{
			SiteAllocs:  make(map[mem.SiteID]uint64),
			SiteObjects: make(map[mem.SiteID][]mem.ObjectID),
			SiteMaxLive: make(map[mem.SiteID]uint64),
		},
		idx:      newIntervalIndex(),
		siteLive: make(map[mem.SiteID]uint64),
	}
}

// Feed processes the next event in trace order.
func (an *Analyzer) Feed(ev Event) {
	a := an.a
	i := an.i
	an.i++
	switch ev.Kind {
	case KindAlloc:
		a.SiteAllocs[ev.Site]++
		obj := &Object{
			ID:        mem.ObjectID(len(a.Objects) + 1),
			Site:      ev.Site,
			Stack:     ev.Stack,
			Instance:  mem.Instance(a.SiteAllocs[ev.Site]),
			Size:      ev.Size,
			FinalSize: ev.Size,
			Addr:      ev.Addr,
			AllocAt:   i,
			FreeAt:    -1,
		}
		a.Objects = append(a.Objects, obj)
		a.SiteObjects[ev.Site] = append(a.SiteObjects[ev.Site], obj.ID)
		an.idx.insert(ev.Addr, ev.Size, obj)
		an.live++
		an.siteLive[ev.Site]++
		if an.live > a.MaxLive {
			a.MaxLive = an.live
		}
		if an.siteLive[ev.Site] > a.SiteMaxLive[ev.Site] {
			a.SiteMaxLive[ev.Site] = an.siteLive[ev.Site]
		}
	case KindFree:
		if obj := an.idx.remove(ev.Addr); obj != nil {
			obj.FreeAt = i
			an.live--
			an.siteLive[obj.Site]--
		}
	case KindRealloc:
		if obj := an.idx.remove(ev.Addr); obj != nil {
			obj.FinalSize = ev.Size
			obj.Addr = ev.Addr2
			an.idx.insert(ev.Addr2, ev.Size, obj)
		}
	case KindAccess:
		a.TotalAccesses++
		if obj := an.idx.find(ev.Addr); obj != nil {
			a.HeapAccesses++
			obj.Accesses++
			if ev.Write {
				obj.Writes++
			} else {
				obj.Reads++
			}
			a.Refs = append(a.Refs, obj.ID)
			a.RefAt = append(a.RefAt, i)
		}
	}
}

// SetInstr records the traced run's dynamic instruction count.
func (an *Analyzer) SetInstr(n uint64) { an.a.Instr = n }

// Finish returns the completed analysis. The analyzer must not be fed
// after.
func (an *Analyzer) Finish() *Analysis {
	an.a.Events = an.i
	return an.a
}

// Analyze reconstructs dynamic objects and the object-granular reference
// string from an in-memory trace.
func Analyze(t *Trace) *Analysis {
	an := NewAnalyzer()
	for _, ev := range t.Events {
		an.Feed(ev)
	}
	an.SetInstr(t.Instr)
	return an.Finish()
}

// Object returns the object with the given id, or nil.
func (a *Analysis) Object(id mem.ObjectID) *Object {
	if id == 0 || int(id) > len(a.Objects) {
		return nil
	}
	return a.Objects[id-1]
}

// ObjectBySiteInstance returns the object allocated as the instance-th
// allocation of site, or nil.
func (a *Analysis) ObjectBySiteInstance(site mem.SiteID, instance mem.Instance) *Object {
	objs := a.SiteObjects[site]
	if instance == 0 || int(instance) > len(objs) {
		return nil
	}
	return a.Object(objs[instance-1])
}
