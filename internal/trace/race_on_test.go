//go:build race

package trace

// raceEnabled reports whether the race detector instruments this test
// binary; large-trace tests shrink their inputs under -race.
const raceEnabled = true
