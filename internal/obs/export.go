package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// --- Registry exporters -------------------------------------------------

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family followed by
// its series, sorted by family then label set. Histograms expose
// cumulative `_bucket` series with `le` labels plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.family != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.family, typeName(s.kind))
			lastFamily = s.family
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", s.family, s.labels, s.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", s.family, s.labels, formatFloat(s.gauge.Value()))
		case kindHistogram:
			h := s.hist
			bounds := h.Bounds()
			counts := h.BucketCounts()
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					s.family, mergeLabels(s.labels, "le", formatFloat(b)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", s.family, mergeLabels(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.family, s.labels, formatFloat(h.Sum()))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.family, s.labels, h.Count())
		}
	}
	return bw.Flush()
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels appends one extra label to an already-rendered label set.
func mergeLabels(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// histogramJSON is the JSON shape of one histogram series.
type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// WriteJSON writes the registry as a single JSON document with
// "counters", "gauges", and "histograms" objects keyed by full series
// name. Key order is deterministic (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histogramJSON{},
	}
	for _, s := range r.snapshot() {
		key := s.family + s.labels
		switch s.kind {
		case kindCounter:
			doc.Counters[key] = s.counter.Value()
		case kindGauge:
			doc.Gauges[key] = s.gauge.Value()
		case kindHistogram:
			doc.Histograms[key] = histogramJSON{
				Bounds: s.hist.Bounds(),
				Counts: s.hist.BucketCounts(),
				Sum:    s.hist.Sum(),
				Count:  s.hist.Count(),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteMetricsFile writes the registry to path, choosing the format by
// extension: ".json" writes the JSON document, anything else (".prom",
// ".txt", …) writes Prometheus text exposition.
func (r *Registry) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if filepath.Ext(path) == ".json" {
		werr = r.WriteJSON(f)
	} else {
		werr = r.WritePrometheus(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// --- Tracer exporters ---------------------------------------------------

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // µs since tracer epoch
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes all recorded spans as a Chrome trace-event JSON
// document ({"traceEvents":[...]}) loadable in chrome://tracing and
// Perfetto. Spans still open at export time are written with zero
// duration.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{}
	for _, root := range t.Roots() {
		walkSpans(root, func(s *Span) {
			s.tracer.mu.Lock()
			ev := chromeEvent{
				Name: s.Name,
				Cat:  "phase",
				Ph:   "X",
				Ts:   s.start.Microseconds(),
				Pid:  1,
				Tid:  1,
			}
			if s.end >= 0 {
				ev.Dur = (s.end - s.start).Microseconds()
			}
			if len(s.args) > 0 {
				ev.Args = make(map[string]any, len(s.args))
				for k, v := range s.args {
					ev.Args[k] = v
				}
			}
			s.tracer.mu.Unlock()
			events = append(events, ev)
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// WriteTraceFile writes the Chrome trace-event document to path.
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteSummary prints a human-readable phase-timing tree: every span with
// its duration, its share of the root span, and its annotations.
func (t *Tracer) WriteSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "phase timing:")
	for _, root := range t.Roots() {
		total := root.Duration()
		writeSummarySpan(bw, root, 1, total)
	}
	return bw.Flush()
}

func writeSummarySpan(w io.Writer, s *Span, depth int, total time.Duration) {
	d := s.Duration()
	line := fmt.Sprintf("%s%-*s %10s", strings.Repeat("  ", depth), 44-2*depth, s.Name,
		d.Round(time.Microsecond))
	if total > 0 && depth > 1 {
		line += fmt.Sprintf("  %5.1f%%", 100*float64(d)/float64(total))
	}
	keys, values := s.Args()
	for i, k := range keys {
		if i == 0 {
			line += "  "
		} else {
			line += " "
		}
		line += fmt.Sprintf("%s=%v", k, values[i])
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children() {
		writeSummarySpan(w, c, depth+1, total)
	}
}
