package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer records a forest of phase spans. All methods are safe for
// concurrent use; a nil *Tracer hands out nil spans, so instrumentation
// costs one nil check when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
	roots []*Span
}

// NewTracer returns a tracer whose clock is the wall clock.
func NewTracer() *Tracer {
	t := &Tracer{now: wallClock}
	t.epoch = t.now()
	return t
}

// SetClock replaces the tracer's time source and resets its epoch — the
// hook that makes exporter output deterministic in tests.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.epoch = now()
}

// Start opens a new root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tracer: t, Name: name, start: t.now().Sub(t.epoch)}
	s.end = -1
	t.roots = append(t.roots, s)
	return s
}

// Roots returns the root spans recorded so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed phase. Spans nest: children are created with Child
// and must end before (or be cut off by) their parent's End.
type Span struct {
	tracer *Tracer
	Name   string

	start, end time.Duration // offsets from the tracer epoch; end < 0 while open
	args       map[string]any
	children   []*Span
}

// Child opens a nested span. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{tracer: t, Name: name, start: t.now().Sub(t.epoch)}
	c.end = -1
	s.children = append(s.children, c)
	return c
}

// Set attaches a key/value annotation (a per-stage counter, a size, a
// config note) exported into the trace-event args. Nil-safe.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
}

// End closes the span. Ending twice keeps the first end time. Open
// children are closed at the same instant. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	s.endLocked(t.now().Sub(t.epoch))
}

func (s *Span) endLocked(at time.Duration) {
	if s.end >= 0 {
		return
	}
	s.end = at
	for _, c := range s.children {
		c.endLocked(at)
	}
}

// Duration returns the span's length (0 while open or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.end < 0 {
		return 0
	}
	return s.end - s.start
}

// Children returns the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Args returns the span's annotations with keys sorted, as key/value
// pairs (flattened for deterministic iteration).
func (s *Span) Args() (keys []string, values []any) {
	if s == nil {
		return nil, nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	for k := range s.args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		values = append(values, s.args[k])
	}
	return keys, values
}

// ObserveDurations folds every finished span's duration (seconds) into
// h — the bridge from phase tracing to the metrics registry. Nil-safe in
// both directions.
func (t *Tracer) ObserveDurations(h *Histogram) {
	if t == nil || h == nil {
		return
	}
	for _, root := range t.Roots() {
		root.ObserveDurations(h)
	}
}

// ObserveDurations folds this span's and every descendant's finished
// duration (seconds) into h. Use the span-level form when one tracer
// accumulates several roots and only the newest should be counted.
func (s *Span) ObserveDurations(h *Histogram) {
	if s == nil || h == nil {
		return
	}
	walkSpans(s, func(sp *Span) {
		if sp.ended() {
			h.Observe(sp.Duration().Seconds())
		}
	})
}

func (s *Span) ended() bool {
	if s == nil {
		return false
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.end >= 0
}

// walkSpans visits s and its descendants depth-first.
func walkSpans(s *Span, f func(*Span)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range s.Children() {
		walkSpans(c, f)
	}
}
