package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "benchmark", "mcf")
	c.Inc()
	c.Add(4)
	if got := r.Counter("ops_total", "benchmark", "mcf").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// A different label set is a different series.
	if got := r.Counter("ops_total", "benchmark", "leela").Value(); got != 0 {
		t.Errorf("other series = %d, want 0", got)
	}

	g := r.Gauge("occupancy")
	g.Set(0.5)
	g.Add(0.25)
	if got := r.Gauge("occupancy").Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "b", "2", "a", "1").Inc()
	if got := r.Counter("x", "a", "1", "b", "2").Value(); got != 1 {
		t.Errorf("label order should not split series: got %d, want 1", got)
	}
}

func TestKindMismatchIsNoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	g := r.Gauge("m") // same series name, wrong kind
	g.Set(3)          // must not panic or corrupt the counter
	if got := r.Counter("m").Value(); got != 1 {
		t.Errorf("counter corrupted by kind mismatch: %d", got)
	}
}

// TestHistogramBucketBoundaries pins the le (v <= bound) semantics on the
// exact boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{4, 1, 2, 2}) // unsorted + dup on purpose
	if got := h.Bounds(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("bounds = %v, want [1 2 4]", got)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	// 0.5,1 -> le=1; 1.5,2 -> le=2; 3,4 -> le=4; 5,100 -> +Inf
	want := []uint64{2, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+4+5+100 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestNilSafety drives every instrument and span method through nil
// receivers: the no-op path the simulation takes when observability is
// off.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", "k", "v").Inc()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", TimeBuckets).Observe(1)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h", nil).Count() != 0 {
		t.Error("nil registry must read as zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}

	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	c := sp.Child("x")
	c.Set("k", 1)
	c.End()
	sp.End()
	if sp.Duration() != 0 || c.Children() != nil {
		t.Error("nil span must be inert")
	}
	tr.ObserveDurations(r.Histogram("h", nil))
	if err := tr.WriteSummary(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteSummary: %v", err)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race this is the concurrency guarantee of the package.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("per_worker_total", "w", string(rune('a'+id))).Inc()
				r.Gauge("last").Set(float64(i))
				r.Gauge("sum").Add(1)
				r.Histogram("dist", []float64{100, 500, 900}).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("shared_total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("sum").Value(); got != workers*perWorker {
		t.Errorf("sum gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("dist", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("per_worker_total", "w", string(rune('a'+w))).Value(); got != perWorker {
			t.Errorf("worker %d = %d, want %d", w, got, perWorker)
		}
	}
}
