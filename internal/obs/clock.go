package obs

import "time"

// wallClock is the one sanctioned wall-clock entry point in this
// package. Every tracer and tracker defaults to it and exposes
// SetClock, so deterministic runs swap the clock in one place; new code
// must thread a clock through rather than calling time.Now directly —
// the nodeterminism lint enforces exactly that.
func wallClock() time.Time {
	//lint:ignore nodeterminism the single sanctioned wall-clock source; everything downstream is swappable via SetClock
	return time.Now()
}
