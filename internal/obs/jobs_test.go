package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJobEventString(t *testing.T) {
	cases := []struct {
		name string
		ev   JobEvent
		want string
	}{
		{
			"suite running",
			JobEvent{Phase: "suite", Benchmark: "mcf", Job: 0, Jobs: 13, Seed: -1, State: JobRunning},
			"[suite 1/13] mcf running",
		},
		{
			"suite done",
			JobEvent{Phase: "suite", Benchmark: "health", Job: 4, Jobs: 13, Seed: -1, State: JobDone},
			"[suite 5/13] health done",
		},
		{
			"variance seed",
			JobEvent{Phase: "variance", Benchmark: "mcf", Job: 6, Jobs: 20, Seed: 2, Seeds: 10, State: JobRunning},
			"[variance 7/20] mcf seed 3/10 running",
		},
		{
			"seed without total",
			JobEvent{Phase: "variance", Benchmark: "mcf", Job: 0, Jobs: 2, Seed: 0, State: JobDone},
			"[variance 1/2] mcf seed 1 done",
		},
		{
			"multithreaded",
			JobEvent{Phase: "multithreaded", Benchmark: "mysql", Job: 2, Jobs: 5, Seed: -1, Threads: 4, State: JobRunning},
			"[multithreaded 3/5] mysql threads=4 running",
		},
		{
			"failed with error",
			JobEvent{Phase: "suite", Benchmark: "nope", Job: 1, Jobs: 2, Seed: -1, State: JobFailed, Err: "unknown benchmark"},
			"[suite 2/2] nope failed: unknown benchmark",
		},
		{
			"stateless",
			JobEvent{Phase: "suite", Benchmark: "mcf", Job: 0, Jobs: 1, Seed: -1},
			"[suite 1/1] mcf",
		},
		{
			"shard worker",
			JobEvent{Phase: "analyze-shard", Benchmark: "mcf", Job: 2, Jobs: 4, Seed: -1, Shards: 4, State: JobRunning},
			"[analyze-shard 3/4] mcf running",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.ev.String(); got != c.want {
				t.Errorf("String() = %q, want %q", got, c.want)
			}
		})
	}
}

// manualClock is a hand-advanced time source for deterministic tracker tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestJobTrackerStatus(t *testing.T) {
	clock := newManualClock()
	tr := NewJobTracker()
	tr.SetClock(clock.now)

	ev := func(job int, state JobState) JobEvent {
		return JobEvent{Phase: "suite", Benchmark: "b", Job: job, Jobs: 4, Seed: -1, State: state}
	}
	tr.Observe(ev(0, JobRunning))
	tr.Observe(ev(1, JobRunning))
	clock.advance(10 * time.Second)
	tr.Observe(ev(0, JobDone))
	tr.Observe(ev(1, JobFailed))
	clock.advance(5 * time.Second)
	tr.Observe(ev(2, JobRunning))

	st := tr.Status()
	if st.Total != 4 || st.Queued != 1 || st.Running != 1 || st.Done != 1 || st.Failed != 1 {
		t.Errorf("counts = total %d queued %d running %d done %d failed %d, want 4/1/1/1/1",
			st.Total, st.Queued, st.Running, st.Done, st.Failed)
	}
	if len(st.Phases) != 1 || st.Phases[0].Phase != "suite" {
		t.Fatalf("phases = %+v, want one suite phase", st.Phases)
	}
	if st.ElapsedSeconds != 15 {
		t.Errorf("elapsed = %v, want 15", st.ElapsedSeconds)
	}
	// 2 finished over 15s -> 7.5 s/job over 2 remaining = 15s ETA.
	if st.ETASeconds != 15 {
		t.Errorf("eta = %v, want 15", st.ETASeconds)
	}
	if len(st.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 observed", len(st.Jobs))
	}
	// Job 0 ran for the 10s between its running and done events; job 2 is
	// still running, so its elapsed tracks the clock.
	if st.Jobs[0].ElapsedSeconds != 10 {
		t.Errorf("job 0 elapsed = %v, want 10 (finished duration)", st.Jobs[0].ElapsedSeconds)
	}
	if st.Jobs[2].ElapsedSeconds != 0 {
		t.Errorf("job 2 elapsed = %v, want 0 (just started)", st.Jobs[2].ElapsedSeconds)
	}
	clock.advance(3 * time.Second)
	if got := tr.Status().Jobs[2].ElapsedSeconds; got != 3 {
		t.Errorf("job 2 elapsed after 3s = %v, want 3", got)
	}
}

func TestJobTrackerMultiplePhases(t *testing.T) {
	tr := NewJobTracker()
	tr.Observe(JobEvent{Phase: "suite", Benchmark: "a", Job: 0, Jobs: 2, Seed: -1, State: JobDone})
	tr.Observe(JobEvent{Phase: "variance", Benchmark: "a", Job: 0, Jobs: 6, Seed: 0, Seeds: 3, State: JobRunning})
	st := tr.Status()
	if len(st.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(st.Phases))
	}
	if st.Phases[0].Phase != "suite" || st.Phases[1].Phase != "variance" {
		t.Errorf("phase order = %q, %q; want suite then variance (first-observation order)",
			st.Phases[0].Phase, st.Phases[1].Phase)
	}
	if st.Total != 8 || st.Queued != 6 {
		t.Errorf("total/queued = %d/%d, want 8/6", st.Total, st.Queued)
	}
}

func TestJobTrackerNilSafe(t *testing.T) {
	var tr *JobTracker
	tr.Observe(JobEvent{Phase: "suite"}) // must not panic
	tr.SetClock(time.Now)
	if st := tr.Status(); st.Total != 0 || len(st.Jobs) != 0 {
		t.Errorf("nil tracker status = %+v, want zero", st)
	}
}

// TestJobTrackerConcurrent drives Observe and Status from many
// goroutines; `go test -race` is the assertion.
func TestJobTrackerConcurrent(t *testing.T) {
	tr := NewJobTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Observe(JobEvent{Phase: "suite", Benchmark: "b", Job: g*50 + i, Jobs: 400, Seed: -1, State: JobRunning})
				tr.Observe(JobEvent{Phase: "suite", Benchmark: "b", Job: g*50 + i, Jobs: 400, Seed: -1, State: JobDone})
				_ = tr.Status()
			}
		}(g)
	}
	wg.Wait()
	if st := tr.Status(); st.Done != 400 {
		t.Errorf("done = %d, want 400", st.Done)
	}
}

// TestStatusJSON pins the /status document's field names.
func TestStatusJSON(t *testing.T) {
	tr := NewJobTracker()
	tr.Observe(JobEvent{Phase: "suite", Benchmark: "mcf", Job: 0, Jobs: 1, Seed: -1, State: JobRunning})
	raw, err := json.Marshal(tr.Status())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"phases"`, `"jobs"`, `"queued"`, `"running"`, `"elapsed_seconds"`, `"eta_seconds"`, `"benchmark":"mcf"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("status JSON missing %s: %s", key, raw)
		}
	}
}

// TestJobTrackerShardEventsPerBenchmark: shard-stage phases reuse
// worker indexes across concurrently-analyzed benchmarks, so the
// tracker must key jobs by benchmark too — the same (phase, job) pair
// from two benchmarks is two jobs, not one overwriting the other.
func TestJobTrackerShardEventsPerBenchmark(t *testing.T) {
	tr := NewJobTracker()
	for _, bench := range []string{"mcf", "health"} {
		for job := 0; job < 2; job++ {
			tr.Observe(JobEvent{Phase: "analyze-shard", Benchmark: bench, Job: job, Jobs: 2, Seed: -1, Shards: 2, State: JobRunning})
			tr.Observe(JobEvent{Phase: "analyze-shard", Benchmark: bench, Job: job, Jobs: 2, Seed: -1, Shards: 2, State: JobDone})
		}
	}
	st := tr.Status()
	if len(st.Jobs) != 4 {
		t.Fatalf("tracked jobs = %d, want 4 (2 benchmarks x 2 shards)", len(st.Jobs))
	}
	if st.Done != 4 {
		t.Errorf("done = %d, want 4", st.Done)
	}
	for _, j := range st.Jobs {
		if j.Shards != 2 {
			t.Errorf("job %+v lost its Shards marker", j.JobEvent)
		}
	}
}
