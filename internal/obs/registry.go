// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) and a phase tracer (nested spans), with exporters for
// Prometheus text exposition, JSON, and the Chrome trace-event format
// (loadable in chrome://tracing and Perfetto).
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, a
// nil *Tracer hands out nil spans, and every method on a nil instrument
// or span is a no-op. Instrumented code therefore never branches on
// "observability enabled" — it unconditionally calls into obs, and runs
// with no registry attached pay only a nil check. The simulation's
// reported numbers are computed entirely outside this package, so
// attaching or detaching a registry can never change a result.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric series. Series are identified by a family
// name plus an optional label set; the same (name, labels) pair always
// returns the same instrument. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by full series name (name + rendered labels)
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

type series struct {
	family string // name without labels
	labels string // rendered `{k="v",...}` or ""
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels formats alternating key, value pairs as a Prometheus label
// set, sorted by key. An empty list renders as "".
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "MISSING")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for (name, labels), creating it with the
// given kind on first use. A kind mismatch on an existing series returns
// nil (the caller's instrument methods then no-op rather than corrupt a
// differently-typed series).
func (r *Registry) lookup(name string, k kind, buckets []float64, kv []string) *series {
	labels := renderLabels(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &series{family: name, labels: labels, kind: k}
		switch k {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(buckets)
		}
		r.series[key] = s
	}
	if s.kind != k {
		return nil
	}
	return s
}

// Counter returns the counter series for name with the given alternating
// label key, value pairs, creating it at zero on first use. Nil-safe: a
// nil registry returns a nil counter whose methods no-op.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindCounter, nil, kv)
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge returns the gauge series for name, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindGauge, nil, kv)
	if s == nil {
		return nil
	}
	return s.gauge
}

// Histogram returns the fixed-bucket histogram series for name, creating
// it on first use. The buckets are upper bounds (v <= bound lands in the
// bucket, Prometheus `le` semantics); they are sorted and deduplicated,
// and only apply on first creation. An implicit +Inf bucket always
// exists.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindHistogram, buckets, kv)
	if s == nil {
		return nil
	}
	return s.hist
}

// snapshot returns the registry's series sorted by family then labels.
func (r *Registry) snapshot() []*series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d. No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observations are counted in
// the first bucket whose upper bound is >= v (le semantics); values above
// every bound land in the implicit +Inf bucket.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // sorted, deduplicated upper bounds, excluding +Inf
	counts  []uint64  // len(bounds)+1; last is the +Inf bucket
	sum     float64
	samples uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != bounds[i-1] {
			dedup = append(dedup, b)
		}
	}
	bounds = dedup
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// BucketCounts returns the per-bucket counts including the trailing +Inf
// bucket, matching Bounds() plus one.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...)
}

// Bounds returns the histogram's finite upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// TimeBuckets are the default duration buckets (seconds) used for phase
// timings: 1µs .. 10s, decade-spaced.
var TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
