package obs

import "sync"

// ExplainStore is a race-safe keyed document store for explainability
// artifacts: the pipeline puts per-benchmark attribution/ledger documents
// in, and the observability server's /explain endpoint snapshots them
// out. Like the rest of the obs kit it is nil-safe, so producers and
// consumers never branch on whether explainability is wired up. Values
// are stored as opaque documents (anything JSON-encodable) so obs does
// not depend on the pipeline's types.
type ExplainStore struct {
	mu   sync.Mutex
	docs map[string]any
}

// NewExplainStore returns an empty store.
func NewExplainStore() *ExplainStore {
	return &ExplainStore{docs: make(map[string]any)}
}

// Put stores doc under key, replacing any previous document. No-op on a
// nil store.
func (s *ExplainStore) Put(key string, doc any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[key] = doc
}

// Len returns the number of stored documents (0 for nil).
func (s *ExplainStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs)
}

// Snapshot returns a copy of the current documents; empty (non-nil) for
// a nil store, so encoders render {} rather than null.
func (s *ExplainStore) Snapshot() map[string]any {
	out := make(map[string]any)
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.docs {
		out[k] = v
	}
	return out
}
