package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// JobState is the lifecycle state of one parallel-harness job. A job is
// implicitly queued until its first event arrives.
type JobState string

const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobEvent is one structured state transition of a parallel-harness job:
// which phase of the evaluation it belongs to, which benchmark/seed/
// thread-count it evaluates, its index within the phase, and the state it
// just entered. The pipeline emits one running event when a job starts
// and one done or failed event when it finishes; the same struct backs
// the CLIs' stderr progress lines and the observability server's /status
// view.
type JobEvent struct {
	// Phase names the harness phase ("suite", "variance", "multithreaded").
	Phase     string `json:"phase"`
	Benchmark string `json:"benchmark"`
	// Job is the 0-based job index within the phase; Jobs the phase total.
	Job  int `json:"job"`
	Jobs int `json:"jobs"`
	// Seed is the 0-based seed index for variance-sweep jobs, -1 otherwise;
	// Seeds is the per-benchmark seed count of the sweep.
	Seed  int `json:"seed"`
	Seeds int `json:"seeds,omitempty"`
	// Threads is the evaluated thread count for multithreaded-sweep jobs.
	Threads int `json:"threads,omitempty"`
	// Shards marks shard-stage events from the parallel analysis path
	// (phases "analyze-decode", "analyze-shard", "analyze-merge"): the
	// shard pool size of the run this worker belongs to. Zero for
	// regular harness jobs; consumers use it to fold per-shard progress
	// into /status without printing a stderr line per shard.
	Shards int      `json:"shards,omitempty"`
	State  JobState `json:"state"`
	// Err carries the job's error text on a failed event.
	Err string `json:"err,omitempty"`
}

// String renders the event as one progress line, e.g.
// "[variance 7/20] mcf seed 3/10 running".
func (e JobEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s %d/%d] %s", e.Phase, e.Job+1, e.Jobs, e.Benchmark)
	if e.Seed >= 0 {
		if e.Seeds > 0 {
			fmt.Fprintf(&b, " seed %d/%d", e.Seed+1, e.Seeds)
		} else {
			fmt.Fprintf(&b, " seed %d", e.Seed+1)
		}
	}
	if e.Threads > 0 {
		fmt.Fprintf(&b, " threads=%d", e.Threads)
	}
	if e.State != "" {
		b.WriteString(" " + string(e.State))
	}
	if e.Err != "" {
		b.WriteString(": " + e.Err)
	}
	return b.String()
}

// JobTracker folds a stream of JobEvents into a live status snapshot of
// the harness: per-job state with elapsed time, per-phase running/queued/
// done/failed counts, and an overall ETA. All methods are safe for
// concurrent use and nil-safe, matching the rest of the package.
type JobTracker struct {
	mu    sync.Mutex
	now   func() time.Time
	start time.Time
	jobs  map[jobKey]*trackedJob
	order []jobKey
}

// jobKey identifies one tracked job. The benchmark is part of the key
// because shard-stage phases ("analyze-decode", "analyze-shard",
// "analyze-merge") reuse worker indexes across concurrently-running
// benchmarks; harness phases number jobs uniquely, so the extra field
// is inert for them.
type jobKey struct {
	phase     string
	benchmark string
	job       int
}

type trackedJob struct {
	ev      JobEvent
	started time.Time
	ended   time.Time // zero while running
}

// NewJobTracker returns a tracker on the wall clock.
func NewJobTracker() *JobTracker {
	return &JobTracker{now: wallClock, jobs: make(map[jobKey]*trackedJob)}
}

// SetClock replaces the tracker's time source (deterministic tests).
func (t *JobTracker) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// Observe records one event. Events for the same (phase, job) pair update
// the job in place; the first event ever observed starts the run clock.
// No-op on a nil tracker, so it can sit unconditionally in a progress
// callback.
func (t *JobTracker) Observe(ev JobEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if t.start.IsZero() {
		t.start = now
	}
	k := jobKey{ev.Phase, ev.Benchmark, ev.Job}
	j, ok := t.jobs[k]
	if !ok {
		j = &trackedJob{started: now}
		t.jobs[k] = j
		t.order = append(t.order, k)
	}
	j.ev = ev
	if ev.State != JobRunning {
		j.ended = now
	}
}

// JobStatus is one job's event plus its elapsed wall time (running jobs:
// time since start; finished jobs: total duration).
type JobStatus struct {
	JobEvent
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// PhaseStatus aggregates one phase's jobs. Queued is the phase's declared
// job total minus every job observed so far.
type PhaseStatus struct {
	Phase   string `json:"phase"`
	Total   int    `json:"total"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
}

// Status is the full /status document.
type Status struct {
	Phases  []PhaseStatus `json:"phases"`
	Jobs    []JobStatus   `json:"jobs"`
	Total   int           `json:"total"`
	Queued  int           `json:"queued"`
	Running int           `json:"running"`
	Done    int           `json:"done"`
	Failed  int           `json:"failed"`
	// ElapsedSeconds is the time since the first observed event.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds extrapolates the mean finished-job rate over the
	// remaining (queued + running) jobs; 0 until a job has finished.
	ETASeconds float64 `json:"eta_seconds"`
}

// Status snapshots the tracker. Jobs appear in first-observation order;
// phases in the order their first job was observed. Zero on nil.
func (t *JobTracker) Status() Status {
	if t == nil {
		return Status{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var st Status
	now := t.now()
	if !t.start.IsZero() {
		st.ElapsedSeconds = now.Sub(t.start).Seconds()
	}
	phaseIdx := make(map[string]int)
	for _, k := range t.order {
		j := t.jobs[k]
		pi, ok := phaseIdx[k.phase]
		if !ok {
			pi = len(st.Phases)
			phaseIdx[k.phase] = pi
			st.Phases = append(st.Phases, PhaseStatus{Phase: k.phase})
		}
		p := &st.Phases[pi]
		if j.ev.Jobs > p.Total {
			p.Total = j.ev.Jobs
		}
		end := j.ended
		if end.IsZero() {
			end = now
		}
		st.Jobs = append(st.Jobs, JobStatus{
			JobEvent:       j.ev,
			ElapsedSeconds: end.Sub(j.started).Seconds(),
		})
		switch j.ev.State {
		case JobDone:
			p.Done++
		case JobFailed:
			p.Failed++
		default:
			p.Running++
		}
	}
	for i := range st.Phases {
		p := &st.Phases[i]
		p.Queued = p.Total - p.Running - p.Done - p.Failed
		if p.Queued < 0 {
			p.Queued = 0
		}
		st.Total += p.Total
		st.Queued += p.Queued
		st.Running += p.Running
		st.Done += p.Done
		st.Failed += p.Failed
	}
	if finished := st.Done + st.Failed; finished > 0 && st.ElapsedSeconds > 0 {
		perJob := st.ElapsedSeconds / float64(finished)
		st.ETASeconds = perJob * float64(st.Queued+st.Running)
	}
	return st
}
