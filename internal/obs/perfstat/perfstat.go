// Package perfstat measures what the simulator itself costs the host —
// the measurement layer the hot-path throughput campaign gates on. The
// rest of the repo measures *simulated* cycles and miss rates; perfstat
// attributes *host* resources to the same phase structure: per-phase
// wall time, Go heap allocation deltas (runtime.ReadMemStats), GC pause
// totals and GC cycles (runtime/metrics), goroutine counts, and an
// events/sec throughput figure derived from the simulated event counts
// each phase processed.
//
// The unit of measurement is a Scope: Begin samples the runtime, the
// bracketed work runs, End samples again and folds the deltas into the
// per-phase aggregate. Scopes may nest (a "profile" scope inside a
// "suite" scope) and overlap across goroutines; wall time is accumulated
// per scope, so a phase's wall under a parallel harness is job-time, not
// elapsed time, and allocation deltas are process-global over the
// scope's lifetime — exact for serial phases, an upper bound when jobs
// overlap. The sampler also accounts for its own cost (the time spent
// inside Begin/End), so its overhead is a measured number, not a claim.
//
// Everything is nil-safe in the obs tradition: a nil *Collector hands
// out nil scopes and every method on either no-ops, so instrumented code
// never branches on "perfstat enabled". Samples never feed report
// output; attaching a collector cannot change a reported result.
package perfstat

import (
	"fmt"
	"io"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"prefix/internal/obs"
)

// runtime/metrics keys sampled at each probe, supplementing the
// ReadMemStats snapshot.
const (
	gcCyclesMetric   = "/gc/cycles/total:gc-cycles"
	goroutinesMetric = "/sched/goroutines:goroutines"
)

// wallClock is the package's one sanctioned wall-clock source, matching
// the obs convention: every collector defaults to it and exposes
// SetClock so tests are deterministic.
func wallClock() time.Time {
	//lint:ignore nodeterminism host-cost wall time is genuinely wall-clock; it never feeds report output and tests swap the clock via SetClock
	return time.Now()
}

// Probe is one point-in-time runtime reading. All cumulative fields are
// monotone process totals; Scope deltas subtract two probes.
type Probe struct {
	Mallocs      uint64 // cumulative heap objects allocated
	AllocBytes   uint64 // cumulative bytes allocated
	GCPauseNanos uint64 // cumulative stop-the-world pause time
	GCCycles     uint64 // completed GC cycles
	Goroutines   int    // current goroutine count
}

// readProbe samples the live runtime: ReadMemStats for the allocation
// and pause totals, runtime/metrics for GC cycles and goroutines (with
// MemStats/NumGoroutine fallbacks when a key is unsupported).
func readProbe(buf []runtimemetrics.Sample) Probe {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p := Probe{
		Mallocs:      ms.Mallocs,
		AllocBytes:   ms.TotalAlloc,
		GCPauseNanos: ms.PauseTotalNs,
		GCCycles:     uint64(ms.NumGC),
		Goroutines:   runtime.NumGoroutine(),
	}
	runtimemetrics.Read(buf)
	if buf[0].Value.Kind() == runtimemetrics.KindUint64 {
		p.GCCycles = buf[0].Value.Uint64()
	}
	if buf[1].Value.Kind() == runtimemetrics.KindUint64 {
		p.Goroutines = int(buf[1].Value.Uint64())
	}
	return p
}

// Collector aggregates host-cost samples per phase and publishes them
// into an obs.Registry as the prefix_perf_* series. All methods are safe
// for concurrent use and nil-safe.
type Collector struct {
	mu    sync.Mutex
	now   func() time.Time
	probe func() Probe
	rmBuf []runtimemetrics.Sample
	reg   *obs.Registry

	phases     map[string]*PhaseStats
	order      []string
	firstBegin time.Time
	lastEnd    time.Time
	open       int
	selfNanos  int64
}

// New returns a collector publishing into reg (nil: aggregate only).
func New(reg *obs.Registry) *Collector {
	c := &Collector{
		now:    wallClock,
		reg:    reg,
		rmBuf:  []runtimemetrics.Sample{{Name: gcCyclesMetric}, {Name: goroutinesMetric}},
		phases: make(map[string]*PhaseStats),
	}
	c.probe = func() Probe { return readProbe(c.rmBuf) }
	return c
}

// SetClock replaces the collector's time source (deterministic tests).
func (c *Collector) SetClock(now func() time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// SetProbe replaces the runtime reader (deterministic tests).
func (c *Collector) SetProbe(probe func() Probe) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probe = probe
}

// Scope is one bracketed region of work. Created by Begin, finished by
// End; AddEvents credits it with simulated events for the events/sec
// figure, AttachSpan routes the measured deltas into the span tree as
// host_* annotations.
type Scope struct {
	c      *Collector
	phase  string
	span   *obs.Span
	start  time.Time
	begin  Probe
	events uint64
	done   bool
}

// Begin opens a scope for the named phase, sampling the runtime. The
// scope's wall clock starts after the sample, so sampler cost is not
// attributed to the phase. Nil-safe: a nil collector returns a nil
// scope.
func (c *Collector) Begin(phase string) *Scope {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	t0 := c.now()
	p := c.probe()
	t1 := c.now()
	c.selfNanos += t1.Sub(t0).Nanoseconds()
	if c.firstBegin.IsZero() {
		c.firstBegin = t1
	}
	c.open++
	c.mu.Unlock()
	return &Scope{c: c, phase: phase, start: t1, begin: p}
}

// AttachSpan routes the scope's measured deltas into sp as host_*
// annotations at End. Returns the scope for chaining. Nil-safe.
func (s *Scope) AttachSpan(sp *obs.Span) *Scope {
	if s != nil {
		s.span = sp
	}
	return s
}

// AddEvents credits the scope with n simulated events (recorder events
// processed, machine events evaluated); End divides by wall time for the
// events/sec figure. Nil-safe.
func (s *Scope) AddEvents(n uint64) {
	if s != nil {
		s.events += n
	}
}

// Sample is one finished scope's measured host cost.
type Sample struct {
	Phase        string `json:"phase"`
	WallNanos    int64  `json:"wall_nanos"`
	Events       uint64 `json:"events"`
	Allocs       uint64 `json:"allocs"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	GCPauseNanos uint64 `json:"gc_pause_nanos"`
	GCCycles     uint64 `json:"gc_cycles"`
	Goroutines   int    `json:"goroutines"`
}

// EventsPerSec is the sample's throughput figure (0 when wall is 0).
func (s Sample) EventsPerSec() float64 {
	if s.WallNanos <= 0 {
		return 0
	}
	return float64(s.Events) / (float64(s.WallNanos) / 1e9)
}

// End closes the scope: samples the runtime again, folds the deltas into
// the phase aggregate, publishes the prefix_perf_* series, annotates the
// attached span, and returns the sample. Ending twice returns the zero
// sample. Nil-safe.
func (s *Scope) End() Sample {
	if s == nil || s.done {
		return Sample{}
	}
	s.done = true
	c := s.c
	c.mu.Lock()
	t0 := c.now()
	p := c.probe()
	t1 := c.now()
	c.selfNanos += t1.Sub(t0).Nanoseconds()
	c.open--
	if t0.After(c.lastEnd) {
		c.lastEnd = t0
	}
	sample := Sample{
		Phase:        s.phase,
		WallNanos:    t0.Sub(s.start).Nanoseconds(),
		Events:       s.events,
		Allocs:       p.Mallocs - s.begin.Mallocs,
		AllocBytes:   p.AllocBytes - s.begin.AllocBytes,
		GCPauseNanos: p.GCPauseNanos - s.begin.GCPauseNanos,
		GCCycles:     p.GCCycles - s.begin.GCCycles,
		Goroutines:   maxInt(s.begin.Goroutines, p.Goroutines),
	}
	ph, ok := c.phases[s.phase]
	if !ok {
		ph = &PhaseStats{Phase: s.phase}
		c.phases[s.phase] = ph
		c.order = append(c.order, s.phase)
	}
	ph.fold(sample)
	phTotal := *ph
	c.mu.Unlock()

	s.publish(sample, phTotal)
	if sp := s.span; sp != nil {
		sp.Set("host_wall_nanos", sample.WallNanos)
		sp.Set("host_allocs", sample.Allocs)
		sp.Set("host_alloc_bytes", sample.AllocBytes)
		sp.Set("host_gc_pause_nanos", sample.GCPauseNanos)
		if sample.Events > 0 {
			sp.Set("host_events", sample.Events)
			sp.Set("host_events_per_sec", sample.EventsPerSec())
		}
	}
	return sample
}

// publish exports the scope's deltas and its phase's cumulative
// throughput into the registry (nil registry: no-op).
func (s *Scope) publish(sample Sample, ph PhaseStats) {
	reg := s.c.reg
	if reg == nil {
		return
	}
	kv := []string{"phase", s.phase}
	reg.Counter("prefix_perf_scopes_total", kv...).Inc()
	reg.Counter("prefix_perf_wall_nanos_total", kv...).Add(uint64(sample.WallNanos))
	reg.Counter("prefix_perf_events_total", kv...).Add(sample.Events)
	reg.Counter("prefix_perf_allocs_total", kv...).Add(sample.Allocs)
	reg.Counter("prefix_perf_alloc_bytes_total", kv...).Add(sample.AllocBytes)
	reg.Counter("prefix_perf_gc_pause_nanos_total", kv...).Add(sample.GCPauseNanos)
	reg.Counter("prefix_perf_gc_cycles_total", kv...).Add(sample.GCCycles)
	reg.Gauge("prefix_perf_events_per_sec", kv...).Set(ph.EventsPerSec())
	reg.Gauge("prefix_perf_goroutines", kv...).Set(float64(sample.Goroutines))
}

// PhaseStats is one phase's aggregate over every finished scope.
type PhaseStats struct {
	Phase        string `json:"phase"`
	Scopes       int    `json:"scopes"`
	WallNanos    int64  `json:"wall_nanos"`
	Events       uint64 `json:"events"`
	Allocs       uint64 `json:"allocs"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	GCPauseNanos uint64 `json:"gc_pause_nanos"`
	GCCycles     uint64 `json:"gc_cycles"`
	// MaxGoroutines is the largest goroutine count observed at any of the
	// phase's probe points.
	MaxGoroutines int `json:"max_goroutines"`
	// EventsPerSecond is Events over accumulated scope wall time. The
	// field is materialized (not just a method) so the /perf JSON carries
	// it without client-side arithmetic.
	EventsPerSecond float64 `json:"events_per_sec"`
}

func (p *PhaseStats) fold(s Sample) {
	p.Scopes++
	p.WallNanos += s.WallNanos
	p.Events += s.Events
	p.Allocs += s.Allocs
	p.AllocBytes += s.AllocBytes
	p.GCPauseNanos += s.GCPauseNanos
	p.GCCycles += s.GCCycles
	if s.Goroutines > p.MaxGoroutines {
		p.MaxGoroutines = s.Goroutines
	}
	p.EventsPerSecond = p.EventsPerSec()
}

// EventsPerSec is the phase's cumulative throughput (0 when wall is 0).
func (p PhaseStats) EventsPerSec() float64 {
	if p.WallNanos <= 0 {
		return 0
	}
	return float64(p.Events) / (float64(p.WallNanos) / 1e9)
}

// Snapshot is the collector's full live view: overall throughput,
// cumulative GC cost, per-phase attribution, and the sampler's own
// measured overhead — the /perf document and the -v table's source.
type Snapshot struct {
	// ElapsedNanos spans the first Begin to the last End (or to now while
	// scopes are open); ThroughputEventsPerSec is total events over it.
	ElapsedNanos           int64   `json:"elapsed_nanos"`
	Events                 uint64  `json:"events"`
	ThroughputEventsPerSec float64 `json:"throughput_events_per_sec"`
	Allocs                 uint64  `json:"allocs"`
	AllocBytes             uint64  `json:"alloc_bytes"`
	GCPauseNanos           uint64  `json:"gc_pause_nanos"`
	GCCycles               uint64  `json:"gc_cycles"`
	// OverheadNanos is the time spent inside the sampler itself (probe
	// reads in Begin/End) — the measured cost of measuring.
	OverheadNanos int64        `json:"sampler_overhead_nanos"`
	Phases        []PhaseStats `json:"phases"`
}

// Snapshot renders the current state. Zero value on nil.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{OverheadNanos: c.selfNanos}
	if !c.firstBegin.IsZero() {
		end := c.lastEnd
		if c.open > 0 || end.IsZero() {
			end = c.now()
		}
		snap.ElapsedNanos = end.Sub(c.firstBegin).Nanoseconds()
	}
	for _, name := range c.order {
		p := *c.phases[name]
		snap.Phases = append(snap.Phases, p)
		snap.Events += p.Events
		snap.Allocs += p.Allocs
		snap.AllocBytes += p.AllocBytes
		snap.GCPauseNanos += p.GCPauseNanos
		if p.GCCycles > snap.GCCycles {
			// Phases overlap and nest; cumulative GC cycles are not
			// additive across them, so report the largest phase delta.
			snap.GCCycles = p.GCCycles
		}
	}
	if snap.ElapsedNanos > 0 {
		snap.ThroughputEventsPerSec = float64(snap.Events) / (float64(snap.ElapsedNanos) / 1e9)
	}
	return snap
}

// Overhead returns the accumulated sampler self-time. Zero on nil.
func (c *Collector) Overhead() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.selfNanos)
}

// WriteTable prints the per-phase host-cost table (the -v summary
// extension): wall, events, events/sec, allocation and GC attribution.
// Phases print in first-Begin order with a trailing totals row. A
// collector with no finished scopes prints nothing. Nil-safe.
func (c *Collector) WriteTable(w io.Writer) error {
	snap := c.Snapshot()
	if len(snap.Phases) == 0 {
		return nil
	}
	fmt.Fprintln(w, "host cost:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  phase\tscopes\twall\tevents\tevents/sec\tallocs\talloc bytes\tgc pause\tmax g")
	row := func(name string, p PhaseStats) {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%d\t%s\t%d\t%d\t%s\t%d\n",
			name, p.Scopes, time.Duration(p.WallNanos).Round(time.Microsecond),
			p.Events, formatRate(p.EventsPerSec()), p.Allocs, p.AllocBytes,
			time.Duration(p.GCPauseNanos).Round(time.Microsecond), p.MaxGoroutines)
	}
	for _, p := range snap.Phases {
		row(p.Phase, p)
	}
	fmt.Fprintf(tw, "  total\t\t%s\t%d\t%s\t%d\t%d\t%s\t\n",
		time.Duration(snap.ElapsedNanos).Round(time.Microsecond), snap.Events,
		formatRate(snap.ThroughputEventsPerSec), snap.Allocs, snap.AllocBytes,
		time.Duration(snap.GCPauseNanos).Round(time.Microsecond))
	if err := tw.Flush(); err != nil {
		return err
	}
	pct := 0.0
	if snap.ElapsedNanos > 0 {
		pct = 100 * float64(snap.OverheadNanos) / float64(snap.ElapsedNanos)
	}
	_, err := fmt.Fprintf(w, "  sampler overhead: %s (%.3f%% of elapsed)\n",
		time.Duration(snap.OverheadNanos).Round(time.Microsecond), pct)
	return err
}

// formatRate renders events/sec compactly (12.3M/s style).
func formatRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.1f/s", v)
	}
}

// SortedPhases returns the snapshot's phases sorted by descending wall
// time — the "where does the time go" ordering for dashboards that
// prefer cost order over execution order.
func (s Snapshot) SortedPhases() []PhaseStats {
	out := append([]PhaseStats(nil), s.Phases...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNanos > out[j].WallNanos })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
