package perfstat

import (
	"strings"
	"testing"
	"time"

	"prefix/internal/obs"
)

// testClock steps a fixed amount on every reading, so wall times and
// sampler self-times are exact, deterministic values.
type testClock struct {
	t    time.Time
	step time.Duration
}

func (c *testClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// probeSeq replays a fixed sequence of probes, then repeats the last.
type probeSeq struct {
	probes []Probe
	i      int
}

func (p *probeSeq) next() Probe {
	if p.i >= len(p.probes) {
		return p.probes[len(p.probes)-1]
	}
	out := p.probes[p.i]
	p.i++
	return out
}

func newTestCollector(reg *obs.Registry, step time.Duration, probes ...Probe) *Collector {
	c := New(reg)
	clk := &testClock{t: time.Unix(0, 0), step: step}
	c.SetClock(clk.now)
	if len(probes) > 0 {
		seq := &probeSeq{probes: probes}
		c.SetProbe(seq.next)
	}
	return c
}

func TestScopeDeltas(t *testing.T) {
	// Clock steps 1ms per reading. Begin reads now,probe,now; End reads
	// now,probe,now. Scope wall = End's first reading - Begin's last
	// reading = 2ms (one step inside the scope body per probe read, plus
	// the step to End's t0... with step=1ms: Begin t0=1ms, t1=2ms
	// (start); End t0=3ms → wall = 1ms).
	c := newTestCollector(nil, time.Millisecond,
		Probe{Mallocs: 100, AllocBytes: 1000, GCPauseNanos: 10, GCCycles: 1, Goroutines: 2},
		Probe{Mallocs: 150, AllocBytes: 1600, GCPauseNanos: 30, GCCycles: 3, Goroutines: 5},
	)
	sc := c.Begin("suite")
	sc.AddEvents(2_000_000)
	sample := sc.End()

	if sample.Phase != "suite" {
		t.Fatalf("phase = %q", sample.Phase)
	}
	if sample.WallNanos != int64(time.Millisecond) {
		t.Errorf("wall = %d, want %d", sample.WallNanos, time.Millisecond)
	}
	if sample.Allocs != 50 || sample.AllocBytes != 600 {
		t.Errorf("allocs = %d/%d, want 50/600", sample.Allocs, sample.AllocBytes)
	}
	if sample.GCPauseNanos != 20 || sample.GCCycles != 2 {
		t.Errorf("gc = %d pause / %d cycles, want 20/2", sample.GCPauseNanos, sample.GCCycles)
	}
	if sample.Goroutines != 5 {
		t.Errorf("goroutines = %d, want 5 (max of probe points)", sample.Goroutines)
	}
	if sample.Events != 2_000_000 {
		t.Errorf("events = %d", sample.Events)
	}
	// 2e6 events over 1ms = 2e9 events/sec.
	if got := sample.EventsPerSec(); got != 2e9 {
		t.Errorf("events/sec = %g, want 2e9", got)
	}
}

func TestPhaseAggregationAndSnapshot(t *testing.T) {
	c := newTestCollector(nil, time.Millisecond, Probe{})
	for i := 0; i < 3; i++ {
		sc := c.Begin("suite")
		sc.AddEvents(1000)
		sc.End()
	}
	sc := c.Begin("variance")
	sc.AddEvents(500)
	sc.End()

	snap := c.Snapshot()
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(snap.Phases))
	}
	// First-Begin order: suite before variance.
	if snap.Phases[0].Phase != "suite" || snap.Phases[1].Phase != "variance" {
		t.Errorf("phase order = %q, %q", snap.Phases[0].Phase, snap.Phases[1].Phase)
	}
	suite := snap.Phases[0]
	if suite.Scopes != 3 || suite.Events != 3000 {
		t.Errorf("suite scopes/events = %d/%d, want 3/3000", suite.Scopes, suite.Events)
	}
	if suite.WallNanos != 3*int64(time.Millisecond) {
		t.Errorf("suite wall = %d, want 3ms", suite.WallNanos)
	}
	if suite.EventsPerSecond != suite.EventsPerSec() {
		t.Errorf("materialized events/sec %g != computed %g", suite.EventsPerSecond, suite.EventsPerSec())
	}
	if snap.Events != 3500 {
		t.Errorf("snapshot events = %d, want 3500", snap.Events)
	}
	if snap.ElapsedNanos <= 0 || snap.ThroughputEventsPerSec <= 0 {
		t.Errorf("elapsed/throughput = %d/%g, want positive", snap.ElapsedNanos, snap.ThroughputEventsPerSec)
	}
	// Sampler self-time: each Begin/End pair spends 2 clock steps inside
	// probe reads (t0→t1 in Begin, t1→t2 in End) = 2ms per scope.
	if want := int64(4 * 2 * time.Millisecond); snap.OverheadNanos != want {
		t.Errorf("overhead = %d, want %d", snap.OverheadNanos, want)
	}
}

func TestSortedPhases(t *testing.T) {
	c := newTestCollector(nil, time.Millisecond, Probe{})
	c.Begin("fast").End()
	sc := c.Begin("slow")
	// Extra clock reads make "slow" accumulate more wall via more scopes.
	sc.End()
	c.Begin("slow").End()
	sorted := c.Snapshot().SortedPhases()
	if sorted[0].Phase != "slow" {
		t.Errorf("sorted[0] = %q, want slow", sorted[0].Phase)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	c.SetClock(nil)
	c.SetProbe(nil)
	sc := c.Begin("x")
	if sc != nil {
		t.Fatalf("nil collector Begin = %v, want nil scope", sc)
	}
	sc.AddEvents(10)
	sc.AttachSpan(nil)
	if s := sc.End(); s != (Sample{}) {
		t.Errorf("nil scope End = %+v, want zero", s)
	}
	if snap := c.Snapshot(); len(snap.Phases) != 0 || snap.Events != 0 {
		t.Errorf("nil collector Snapshot = %+v, want zero", snap)
	}
	if c.Overhead() != 0 {
		t.Errorf("nil collector Overhead != 0")
	}
	var sb strings.Builder
	if err := c.WriteTable(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil collector WriteTable wrote %q, err %v", sb.String(), err)
	}
}

func TestDoubleEnd(t *testing.T) {
	c := newTestCollector(nil, time.Millisecond, Probe{})
	sc := c.Begin("x")
	sc.End()
	if s := sc.End(); s != (Sample{}) {
		t.Errorf("second End = %+v, want zero", s)
	}
	if got := c.Snapshot().Phases[0].Scopes; got != 1 {
		t.Errorf("scopes = %d after double End, want 1", got)
	}
}

func TestRegistryPublishing(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCollector(reg, time.Millisecond,
		Probe{},
		Probe{Mallocs: 7, AllocBytes: 70, GCPauseNanos: 5, GCCycles: 1, Goroutines: 3},
	)
	sc := c.Begin("suite")
	sc.AddEvents(4000)
	sc.End()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`prefix_perf_scopes_total{phase="suite"} 1`,
		`prefix_perf_wall_nanos_total{phase="suite"} 1000000`,
		`prefix_perf_events_total{phase="suite"} 4000`,
		`prefix_perf_allocs_total{phase="suite"} 7`,
		`prefix_perf_alloc_bytes_total{phase="suite"} 70`,
		`prefix_perf_gc_pause_nanos_total{phase="suite"} 5`,
		`prefix_perf_gc_cycles_total{phase="suite"} 1`,
		`prefix_perf_events_per_sec{phase="suite"}`,
		`prefix_perf_goroutines{phase="suite"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics export missing %q\n%s", want, out)
		}
	}
}

func TestSpanAnnotation(t *testing.T) {
	tr := obs.NewTracer()
	c := newTestCollector(nil, time.Millisecond,
		Probe{},
		Probe{Mallocs: 3, AllocBytes: 30, GCPauseNanos: 2},
	)
	span := tr.Start("benchmark mcf")
	sc := c.Begin("suite").AttachSpan(span)
	sc.AddEvents(100)
	sc.End()
	span.End()

	keys, values := span.Args()
	got := make(map[string]any, len(keys))
	for i, k := range keys {
		got[k] = values[i]
	}
	if got["host_wall_nanos"] != int64(time.Millisecond) {
		t.Errorf("host_wall_nanos = %v", got["host_wall_nanos"])
	}
	if got["host_allocs"] != uint64(3) || got["host_alloc_bytes"] != uint64(30) {
		t.Errorf("host allocs = %v/%v", got["host_allocs"], got["host_alloc_bytes"])
	}
	if got["host_gc_pause_nanos"] != uint64(2) {
		t.Errorf("host_gc_pause_nanos = %v", got["host_gc_pause_nanos"])
	}
	if got["host_events"] != uint64(100) {
		t.Errorf("host_events = %v", got["host_events"])
	}
	if _, ok := got["host_events_per_sec"]; !ok {
		t.Errorf("host_events_per_sec missing")
	}
}

func TestWriteTable(t *testing.T) {
	c := newTestCollector(nil, time.Millisecond, Probe{})
	sc := c.Begin("suite")
	sc.AddEvents(5000)
	sc.End()

	var sb strings.Builder
	if err := c.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"host cost:", "phase", "events/sec", "suite", "total", "sampler overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestLiveProbe(t *testing.T) {
	// No injected probe: exercise the real runtime reader end to end.
	c := New(nil)
	sc := c.Begin("live")
	// Allocate something observable.
	buf := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		buf = append(buf, make([]byte, 1024))
	}
	_ = buf
	sample := sc.End()
	if sample.WallNanos <= 0 {
		t.Errorf("live wall = %d, want > 0", sample.WallNanos)
	}
	if sample.AllocBytes == 0 {
		t.Errorf("live alloc bytes = 0, want > 0 after allocating ~1MB")
	}
	if sample.Goroutines <= 0 {
		t.Errorf("live goroutines = %d, want > 0", sample.Goroutines)
	}
}

func TestEventsPerSecZeroWall(t *testing.T) {
	s := Sample{Events: 100}
	if got := s.EventsPerSec(); got != 0 {
		t.Errorf("zero-wall events/sec = %g, want 0 (no +Inf in JSON)", got)
	}
}

func TestConcurrentScopes(t *testing.T) {
	// Overlapping scopes from multiple goroutines must be race-free and
	// all fold into the aggregate (run under -race in make check).
	c := New(obs.NewRegistry())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				sc := c.Begin("par")
				sc.AddEvents(10)
				sc.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	snap := c.Snapshot()
	if snap.Phases[0].Scopes != 400 || snap.Phases[0].Events != 4000 {
		t.Errorf("scopes/events = %d/%d, want 400/4000", snap.Phases[0].Scopes, snap.Phases[0].Events)
	}
}
