package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic time source advancing step per call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("prefix_run_mallocs", "benchmark", "mcf", "run", "baseline").Add(42)
	r.Counter("prefix_run_mallocs", "benchmark", "mcf", "run", "hds+hot").Add(40)
	r.Gauge("prefix_run_cycles", "benchmark", "mcf", "run", "baseline").Set(1234.5)
	h := r.Histogram("prefix_stage_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE prefix_run_cycles gauge
prefix_run_cycles{benchmark="mcf",run="baseline"} 1234.5
# TYPE prefix_run_mallocs counter
prefix_run_mallocs{benchmark="mcf",run="baseline"} 42
prefix_run_mallocs{benchmark="mcf",run="hds+hot"} 40
# TYPE prefix_stage_seconds histogram
prefix_stage_seconds_bucket{le="0.001"} 2
prefix_stage_seconds_bucket{le="0.01"} 3
prefix_stage_seconds_bucket{le="+Inf"} 4
prefix_stage_seconds_sum 5.003
prefix_stage_seconds_count 4
`
	if b.String() != want {
		t.Errorf("prometheus exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("allocs", "run", "hot").Add(7)
	r.Gauge("peak_bytes").Set(4096)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "allocs{run=\"hot\"}": 7
  },
  "gauges": {
    "peak_bytes": 4096
  },
  "histograms": {
    "lat": {
      "bounds": [
        1,
        2
      ],
      "counts": [
        0,
        1,
        0
      ],
      "sum": 1.5,
      "count": 1
    }
  }
}
`
	if b.String() != want {
		t.Errorf("json mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(time.Millisecond)) // epoch consumes the first tick

	root := tr.Start("benchmark mcf") // 1ms after epoch -> ts 1000µs
	prof := root.Child("profile")     // ts 2000µs
	prof.Set("events", 10)
	prof.End() // dur 1ms
	root.End() // dur 3ms

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "traceEvents": [
    {
      "name": "benchmark mcf",
      "cat": "phase",
      "ph": "X",
      "ts": 1000,
      "dur": 3000,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "profile",
      "cat": "phase",
      "ph": "X",
      "ts": 2000,
      "dur": 1000,
      "pid": 1,
      "tid": 1,
      "args": {
        "events": 10
      }
    }
  ]
}
`
	if b.String() != want {
		t.Errorf("chrome trace mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSummaryGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(time.Millisecond))

	root := tr.Start("benchmark mcf")
	prof := root.Child("profile")
	prof.Set("events", 10)
	prof.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"phase timing:", "benchmark mcf", "profile", "3ms", "1ms", "33.3%", "events=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSpanTreeAndEndSemantics pins nesting, double-End, and the
// close-open-children-on-parent-End behaviour.
func TestSpanTreeAndEndSemantics(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(time.Millisecond))

	root := tr.Start("root") // start 1ms
	a := root.Child("a")     // start 2ms
	b := a.Child("b")        // start 3ms
	_ = b                    // left open: root.End must close it
	root.End()               // 4ms
	root.End()               // no-op: keeps the first end time
	if got := root.Duration(); got != 3*time.Millisecond {
		t.Errorf("root duration = %v, want 3ms", got)
	}
	if got := a.Duration(); got != 2*time.Millisecond {
		t.Errorf("open child cut at parent end: a = %v, want 2ms", got)
	}
	if got := b.Duration(); got != time.Millisecond {
		t.Errorf("grandchild cut at parent end: b = %v, want 1ms", got)
	}
	roots := tr.Roots()
	if len(roots) != 1 || len(roots[0].Children()) != 1 || len(a.Children()) != 1 {
		t.Error("span tree shape wrong")
	}

	h := NewRegistry().Histogram("d", []float64{0.0015, 0.01})
	tr.ObserveDurations(h)
	if h.Count() != 3 {
		t.Errorf("ObserveDurations count = %d, want 3", h.Count())
	}
	if got := h.BucketCounts(); got[0] != 1 || got[1] != 2 {
		t.Errorf("duration buckets = %v, want [1 2 0]", got)
	}
}
