package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
	"prefix/internal/pipeline"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestIndex(t *testing.T) {
	h := NewHandler(Config{})
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", res.StatusCode)
	}
	for _, want := range []string{"/metrics", "/healthz", "/status", "/trace", "/perf", "/explain", "/debug/pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s:\n%s", want, body)
		}
	}
}

func TestIndexUnknownPath(t *testing.T) {
	res, _ := get(t, NewHandler(Config{}), "/nope")
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", res.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	res, body := get(t, NewHandler(Config{}), "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", res.StatusCode)
	}
	var doc struct {
		Status     string  `json:"status"`
		Uptime     float64 `json:"uptime_seconds"`
		Goroutines int     `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" || doc.Goroutines < 1 {
		t.Errorf("healthz = %+v, want status ok and goroutines >= 1", doc)
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("prefix_test_total", "benchmark", "mcf").Add(7)
	res, body := get(t, NewHandler(Config{Registry: reg}), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(body, "# TYPE prefix_test_total counter") ||
		!strings.Contains(body, `prefix_test_total{benchmark="mcf"} 7`) {
		t.Errorf("metrics exposition wrong:\n%s", body)
	}
}

func TestMetricsNilRegistry(t *testing.T) {
	res, body := get(t, NewHandler(Config{}), "/metrics")
	if res.StatusCode != http.StatusOK || body != "" {
		t.Errorf("nil-registry /metrics = %d %q, want 200 with empty body", res.StatusCode, body)
	}
}

func TestTrace(t *testing.T) {
	tr := obs.NewTracer()
	span := tr.Start("phase-a")
	span.Child("inner").End()
	// span stays open: a mid-run scrape must still be valid JSON.
	res, body := get(t, NewHandler(Config{Tracer: tr}), "/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", res.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("traceEvents = %d, want 2 (open root + closed child)", len(doc.TraceEvents))
	}
}

func TestStatus(t *testing.T) {
	jt := obs.NewJobTracker()
	jt.Observe(obs.JobEvent{Phase: "suite", Benchmark: "mcf", Job: 0, Jobs: 3, Seed: -1, State: obs.JobRunning})
	res, body := get(t, NewHandler(Config{Tracker: jt}), "/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /status = %d", res.StatusCode)
	}
	var st obs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if st.Total != 3 || st.Running != 1 || st.Queued != 2 {
		t.Errorf("status = %+v, want total 3, running 1, queued 2", st)
	}
}

func TestPerf(t *testing.T) {
	pc := perfstat.New(nil)
	sc := pc.Begin("suite")
	sc.AddEvents(1234)
	sc.End()
	res, body := get(t, NewHandler(Config{Perf: pc}), "/perf")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /perf = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON", ct)
	}
	var snap perfstat.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("perf is not JSON: %v\n%s", err, body)
	}
	if snap.Events != 1234 || snap.ThroughputEventsPerSec <= 0 {
		t.Errorf("perf events/throughput = %d/%g, want 1234/>0", snap.Events, snap.ThroughputEventsPerSec)
	}
	if len(snap.Phases) != 1 || snap.Phases[0].Phase != "suite" {
		t.Errorf("perf phases = %+v, want one suite phase", snap.Phases)
	}
}

func TestPerfNilCollector(t *testing.T) {
	res, body := get(t, NewHandler(Config{}), "/perf")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("nil-collector /perf = %d", res.StatusCode)
	}
	var snap perfstat.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("nil-collector /perf is not well-formed JSON: %v\n%s", err, body)
	}
}

func TestExplain(t *testing.T) {
	st := obs.NewExplainStore()
	st.Put("mcf", map[string]any{"variant": "prefix:hds+hot"})
	res, body := get(t, NewHandler(Config{Explain: st}), "/explain")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON", ct)
	}
	var docs map[string]map[string]any
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatalf("explain is not JSON: %v\n%s", err, body)
	}
	if docs["mcf"]["variant"] != "prefix:hds+hot" {
		t.Errorf("explain docs = %v", docs)
	}
}

// TestExplainNilStore: without a store the endpoint serves {} (not null),
// so an unattributed run's server stays fully well-formed.
func TestExplainNilStore(t *testing.T) {
	res, body := get(t, NewHandler(Config{}), "/explain")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("nil-store /explain = %d", res.StatusCode)
	}
	var docs map[string]any
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatalf("nil-store /explain is not JSON: %v\n%s", err, body)
	}
	if docs == nil || len(docs) != 0 {
		t.Errorf("nil-store /explain = %q, want {}", body)
	}
}

// TestExplainConcurrentMutation scrapes /explain while producers rewrite
// the store; `go test -race` doubles it as the mutation race test. Every
// response must be a complete, valid document.
func TestExplainConcurrentMutation(t *testing.T) {
	st := obs.NewExplainStore()
	h := NewHandler(Config{Explain: st})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st.Put(fmt.Sprintf("bench-%d", w), map[string]any{"round": 0})
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st.Put(fmt.Sprintf("bench-%d", w), map[string]any{"round": i})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		res, body := get(t, h, "/explain")
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET /explain = %d mid-mutation", res.StatusCode)
		}
		var docs map[string]any
		if err := json.Unmarshal([]byte(body), &docs); err != nil {
			t.Fatalf("mid-mutation /explain not valid JSON: %v\n%s", err, body)
		}
	}
	close(stop)
	wg.Wait()
	if st.Len() != 4 {
		t.Errorf("store len = %d, want 4", st.Len())
	}
}

func TestPprofIndex(t *testing.T) {
	res, body := get(t, NewHandler(Config{}), "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("GET /debug/pprof/ = %d, want profile index", res.StatusCode)
	}
}

// TestStatusMidRun blocks a suite job inside the progress callback and
// asserts /status reports it as running while the harness is live.
func TestStatusMidRun(t *testing.T) {
	jt := obs.NewJobTracker()
	h := NewHandler(Config{Tracker: jt})

	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	opt.Progress = func(ev obs.JobEvent) {
		jt.Observe(ev)
		if ev.Benchmark == "swissmap" && ev.State == obs.JobRunning {
			once.Do(func() { close(blocked) })
			<-release
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := pipeline.RunSuite([]string{"swissmap", "health"}, opt, 2)
		done <- err
	}()
	<-blocked

	_, body := get(t, h, "/status")
	var st obs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("mid-run status is not JSON: %v\n%s", err, body)
	}
	if st.Running < 1 {
		t.Errorf("mid-run status running = %d, want >= 1:\n%s", st.Running, body)
	}
	found := false
	for _, j := range st.Jobs {
		if j.Benchmark == "swissmap" && j.State == obs.JobRunning {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-run status missing running swissmap job:\n%s", body)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_, body = get(t, h, "/status")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || st.Running != 0 {
		t.Errorf("post-run status = done %d running %d, want 2/0", st.Done, st.Running)
	}
}

// TestServeLiveSuite is the end-to-end check: a real server over a
// jobs=8 suite run, scraped concurrently; `go test -race` doubles it as
// the concurrent-scrape race test.
func TestServeLiveSuite(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	jt := obs.NewJobTracker()
	pc := perfstat.New(reg)
	es := obs.NewExplainStore()
	srv, err := Serve("127.0.0.1:0", Config{Registry: reg, Tracer: tr, Tracker: jt, Perf: pc, Explain: es})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	base := "http://" + srv.Addr()

	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	opt.Metrics = reg
	opt.Tracer = tr
	opt.Perf = pc
	opt.Attribution = true
	opt.Explain = es
	opt.Progress = func(ev obs.JobEvent) { jt.Observe(ev) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/status", "/trace", "/perf", "/explain", "/healthz"} {
					res, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, res.Body)
					res.Body.Close()
					if res.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d mid-run", path, res.StatusCode)
						return
					}
				}
			}
		}()
	}

	names := []string{"swissmap", "health", "ft", "libc"}
	cmps, err := pipeline.RunSuite(names, opt, 8)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != len(names) {
		t.Fatalf("comparisons = %d, want %d", len(cmps), len(names))
	}

	// After the run, every endpoint reflects the completed suite.
	res, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "prefix_run_cycles") {
		t.Errorf("/metrics after run missing prefix_run_cycles series")
	}
	res, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st obs.Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Done != len(names) || st.Failed != 0 {
		t.Errorf("final status = %+v, want %d done, 0 failed", st, len(names))
	}
	if st.ElapsedSeconds <= 0 {
		t.Errorf("final status elapsed = %v, want > 0", st.ElapsedSeconds)
	}
	// /perf reflects the completed suite: every benchmark job and its
	// profile ran under a scope, so both phases report events and
	// positive throughput, and /metrics carries the prefix_perf_ series.
	res, err = http.Get(base + "/perf")
	if err != nil {
		t.Fatal(err)
	}
	var snap perfstat.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if snap.Events == 0 || snap.ThroughputEventsPerSec <= 0 {
		t.Errorf("final /perf events/throughput = %d/%g, want positive", snap.Events, snap.ThroughputEventsPerSec)
	}
	phases := make(map[string]perfstat.PhaseStats, len(snap.Phases))
	for _, p := range snap.Phases {
		phases[p.Phase] = p
	}
	for _, name := range []string{"suite", "profile"} {
		p, ok := phases[name]
		if !ok || p.Scopes != len(names) || p.Events == 0 || p.WallNanos <= 0 {
			t.Errorf("final /perf phase %q = %+v, want %d scopes with events and wall time", name, p, len(names))
		}
	}
	if !strings.Contains(string(body), "prefix_perf_events_total") {
		t.Errorf("/metrics after run missing prefix_perf_events_total series")
	}
	// The attributed run published the per-site series and one explain
	// document per benchmark.
	if !strings.Contains(string(body), "prefix_attrib_llc_misses_total") {
		t.Errorf("/metrics after attributed run missing prefix_attrib_llc_misses_total series")
	}
	res, err = http.Get(base + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	var docs map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	for _, name := range names {
		if _, ok := docs[name]; !ok {
			t.Errorf("/explain missing document for %s (have %d docs)", name, len(docs))
		}
	}
}

func TestServeShutdown(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("server has no address")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still serving after Shutdown")
	}
	var nilSrv *Server
	if err := nilSrv.Shutdown(); err != nil {
		t.Errorf("nil server Shutdown = %v", err)
	}
}
