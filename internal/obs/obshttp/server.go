// Package obshttp serves the live observability surface of a running
// evaluation process over HTTP — the always-on window into a suite run
// that the paper's long multi-benchmark sweeps otherwise lack:
//
//	/metrics        Prometheus text exposition of the obs.Registry
//	/healthz        liveness (status, uptime, goroutines)
//	/status         JSON view of the parallel harness's job states
//	/trace          Chrome trace-event JSON of the live span tree
//	/perf           JSON host-cost snapshot (throughput, GC, per-phase)
//	/explain        per-benchmark attribution + decision-ledger documents
//	/debug/pprof/*  the Go runtime profiles of the harness process
//
// The server is read-only and snapshot-based: every request renders the
// current state of the race-safe Registry/Tracer/JobTracker, so scraping
// mid-run is always safe and never perturbs the simulation's results.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
)

// Config wires the observability sources into the handler. Any field may
// be nil; the corresponding endpoint then serves an empty (but well-
// formed) document.
type Config struct {
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Tracker  *obs.JobTracker
	Perf     *perfstat.Collector
	Explain  *obs.ExplainStore
}

// NewHandler returns the observability mux. Exposed separately from
// Serve so tests can drive it through httptest.
func NewHandler(cfg Config) http.Handler {
	//lint:ignore nodeterminism server uptime is genuinely wall-clock; it never feeds report output
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "prefix observability server\n\n"+
			"/metrics        Prometheus text exposition\n"+
			"/healthz        liveness\n"+
			"/status         parallel-harness job states (JSON)\n"+
			"/trace          Chrome trace-event JSON of the live span tree\n"+
			"/perf           host-cost snapshot: throughput, GC, per-phase (JSON)\n"+
			"/explain        per-benchmark attribution + decision ledger (JSON)\n"+
			"/debug/pprof/   Go runtime profiles\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status": "ok",
			//lint:ignore nodeterminism uptime reported to a live operator, not to any artifact
			"uptime_seconds": time.Since(start).Seconds(),
			"goroutines":     runtime.NumGoroutine(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// WritePrometheus snapshots the registry; nil renders empty.
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Open spans export with zero duration, so a mid-run scrape is
		// still a loadable chrome://tracing document.
		_ = cfg.Tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, cfg.Tracker.Status())
	})
	mux.HandleFunc("/perf", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot renders the zero document on a nil collector, so the
		// endpoint is well-formed before any scope has finished.
		writeJSON(w, cfg.Perf.Snapshot())
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot is {} on a nil store, so the endpoint is well-formed
		// when the run is not attributed (or has not finished a benchmark).
		writeJSON(w, cfg.Explain.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running observability HTTP server.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the observability server on addr (":0" picks a free
// port) and returns once it is listening; requests are handled on a
// background goroutine until Shutdown.
func Serve(addr string, cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: %w", err)
	}
	s := &Server{lis: lis, srv: &http.Server{Handler: NewHandler(cfg)}}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the server's actual listen address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Shutdown stops the server, waiting up to a second for in-flight
// scrapes to finish. Nil-safe.
func (s *Server) Shutdown() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
