package cachesim

import (
	"testing"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// refCache reimplements the pre-flat tag storage — one []uint64 per set,
// grown on demand — with identical replacement semantics and the same
// xorshift stream, so it is a behavioural oracle for the flat layout
// across every policy.
type refCache struct {
	sets   uint64
	ways   int
	shift  uint
	policy Policy
	tags   [][]uint64
	rng    uint64
}

func newRefCache(size, line uint64, ways int, p Policy) *refCache {
	lines := size / line
	sets := lines / uint64(ways)
	var shift uint
	for l := line; l > 1; l >>= 1 {
		shift++
	}
	return &refCache{
		sets: sets, ways: ways, shift: shift, policy: p,
		tags: make([][]uint64, sets),
		rng:  0x9e3779b97f4a7c15,
	}
}

func (r *refCache) access(addr mem.Addr) bool {
	block := uint64(addr) >> r.shift
	si := block & (r.sets - 1)
	ws := r.tags[si]
	for i, tag := range ws {
		if tag == block {
			if r.policy == PolicyLRU {
				copy(ws[1:i+1], ws[:i])
				ws[0] = block
			}
			return true
		}
	}
	switch {
	case len(ws) < r.ways:
		ws = append(ws, 0)
		copy(ws[1:], ws)
		ws[0] = block
		r.tags[si] = ws
	case r.policy == PolicyRandom:
		r.rng ^= r.rng << 13
		r.rng ^= r.rng >> 7
		r.rng ^= r.rng << 17
		ws[r.rng%uint64(len(ws))] = block
	default:
		copy(ws[1:], ws)
		ws[0] = block
	}
	return false
}

// TestFlatMatchesReferenceAllPolicies drives the flat cache and the
// slice-per-set oracle with the same mixed address stream (sequential
// sweeps, strides, pseudo-random) and demands identical hit/miss
// outcomes at every single access, for all three policies.
func TestFlatMatchesReferenceAllPolicies(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} {
		t.Run(p.String(), func(t *testing.T) {
			c := MustCache(4096, 64, 4)
			c.SetPolicy(p)
			ref := newRefCache(4096, 64, 4, p)
			rng := xrand.New(42)
			step := 0
			drive := func(a mem.Addr) {
				step++
				if got, want := c.Access(a), ref.access(a); got != want {
					t.Fatalf("step %d addr %#x: flat=%v ref=%v", step, a, got, want)
				}
			}
			for a := mem.Addr(0); a < 8<<10; a += 64 { // sequential
				drive(a)
			}
			for a := mem.Addr(0); a < 32<<10; a += 192 { // strided
				drive(a)
			}
			for i := 0; i < 5000; i++ { // pseudo-random
				drive(mem.Addr(rng.Uint64n(64 << 10)))
			}
			for a := mem.Addr(0); a < 64<<10; a += 64 { // capacity thrash
				drive(a)
			}
		})
	}
}

// TestStraddleMatchesReference covers accesses spanning a line boundary:
// the hierarchy walks both lines, so the per-line transitions must match
// the oracle driven line by line.
func TestStraddleMatchesReference(t *testing.T) {
	c := MustCache(4096, 64, 4)
	ref := newRefCache(4096, 64, 4, PolicyLRU)
	rng := xrand.New(7)
	for i := 0; i < 4000; i++ {
		a := mem.Addr(rng.Uint64n(32 << 10))
		size := 1 + rng.Uint64n(256) // frequently straddles
		first := uint64(a) >> 6
		last := (uint64(a) + size - 1) >> 6
		for blk := first; blk <= last; blk++ {
			if got, want := c.AccessBlock(blk), ref.access(mem.Addr(blk<<6)); got != want {
				t.Fatalf("access %d blk %#x: flat=%v ref=%v", i, blk, got, want)
			}
		}
	}
}

// TestInstallMatchesAccessContent: Install must perform exactly the
// content transitions of a demand access — same hits, fills, evictions —
// while leaving the demand counters untouched.
func TestInstallMatchesAccessContent(t *testing.T) {
	via := MustCache(4096, 64, 4)  // driven by Access
	inst := MustCache(4096, 64, 4) // driven by Install
	rng := xrand.New(99)
	addrs := make([]mem.Addr, 6000)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Uint64n(64 << 10))
	}
	for _, a := range addrs {
		via.Access(a)
		inst.Install(a)
	}
	if inst.Accesses() != 0 || inst.Misses() != 0 {
		t.Errorf("Install touched demand counters: accesses=%d misses=%d", inst.Accesses(), inst.Misses())
	}
	for a := mem.Addr(0); a < 64<<10; a += 64 {
		if via.Contains(a) != inst.Contains(a) {
			t.Fatalf("content diverged at %#x: access=%v install=%v", a, via.Contains(a), inst.Contains(a))
		}
	}
}

// TestPrefetchDoesNotInflateLLCDemand is the regression test for the
// accounting bug where next-line prefetches were issued through the
// demand path: the LLC's own counters must reflect only demand lookups
// (Counts.LLCHits + Counts.LLCMisses), never prefetch installs.
func TestPrefetchDoesNotInflateLLCDemand(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	rng := xrand.New(5)
	for i := 0; i < 20000; i++ {
		h.Access(mem.Addr(rng.Uint64n(8<<20)), 8)
	}
	c := h.Counts()
	if c.Prefetches == 0 {
		t.Fatal("workload issued no prefetches; test is vacuous")
	}
	if got, want := h.llc.Accesses(), c.LLCHits+c.LLCMisses; got != want {
		t.Errorf("LLC demand accesses = %d, want %d (prefetches=%d leaked into demand counters)",
			got, want, c.Prefetches)
	}
	if got, want := h.llc.Misses(), c.LLCMisses; got != want {
		t.Errorf("LLC demand misses = %d, want %d", got, want)
	}
}

// TestCacheAccessZeroAllocs: after construction, the demand path must
// never allocate — including the eviction paths of every policy.
func TestCacheAccessZeroAllocs(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} {
		c := MustCache(4096, 64, 4)
		c.SetPolicy(p)
		var i uint64
		if n := testing.AllocsPerRun(10000, func() {
			c.Access(mem.Addr(i * 64))
			i++
		}); n != 0 {
			t.Errorf("%s: Access allocates %.1f per op", p, n)
		}
	}
}

// TestResetRefillZeroAllocs is the regression test for Reset dropping
// way storage: a full fill → Reset → full refill cycle must reuse the
// flat array and allocate nothing.
func TestResetRefillZeroAllocs(t *testing.T) {
	c := MustCache(4096, 64, 4)
	for a := mem.Addr(0); a < 64<<10; a += 64 {
		c.Access(a)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Reset()
		for a := mem.Addr(0); a < 64<<10; a += 64 {
			c.Access(a)
		}
	}); n != 0 {
		t.Errorf("Reset+refill allocates %.1f per cycle", n)
	}
	if c.Accesses() == 0 || !c.Contains(64<<10-64) {
		t.Error("refill did not actually run")
	}
}

// TestHierarchyAccessZeroAllocs: the full L1→LLC→TLB walk with the
// prefetcher on must be allocation-free.
func TestHierarchyAccessZeroAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	rng := xrand.New(11)
	if n := testing.AllocsPerRun(10000, func() {
		h.Access(mem.Addr(rng.Uint64n(8<<20)), 8)
	}); n != 0 {
		t.Errorf("Hierarchy.Access allocates %.1f per op", n)
	}
}
