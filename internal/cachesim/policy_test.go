package cachesim

import (
	"testing"

	"prefix/internal/mem"
)

func TestPolicyStrings(t *testing.T) {
	if PolicyLRU.String() != "lru" || PolicyFIFO.String() != "fifo" || PolicyRandom.String() != "random" {
		t.Error("policy strings wrong")
	}
}

func TestFIFODoesNotRefreshOnHit(t *testing.T) {
	// 1 set x 2 ways. Fill A, B; touch A (hit); insert C.
	// LRU would evict B (A was refreshed); FIFO evicts A (oldest fill).
	c := MustCache(128, 64, 2)
	c.SetPolicy(PolicyFIFO)
	c.Access(0)       // A
	c.Access(1 << 20) // B (same set: only one set)
	c.Access(0)       // hit A — no refresh under FIFO
	c.Access(2 << 20) // C evicts A
	if c.Contains(0) {
		t.Error("FIFO should have evicted the oldest fill (A)")
	}
	if !c.Contains(1 << 20) {
		t.Error("B should survive under FIFO")
	}
}

func TestLRURefreshesOnHit(t *testing.T) {
	c := MustCache(128, 64, 2)
	c.Access(0)
	c.Access(1 << 20)
	c.Access(0)
	c.Access(2 << 20)
	if !c.Contains(0) {
		t.Error("LRU should keep the refreshed line")
	}
	if c.Contains(1 << 20) {
		t.Error("LRU should evict the least recent line")
	}
}

func TestRandomPolicyDeterministicAndValid(t *testing.T) {
	run := func() uint64 {
		c := MustCache(4096, 64, 4)
		c.SetPolicy(PolicyRandom)
		for i := 0; i < 5000; i++ {
			c.Access(mem.Addr((i * 7919) % (64 << 10)))
		}
		return c.Misses()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("random policy not deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("no misses recorded")
	}
}

func TestRandomPolicyNeverExceedsWays(t *testing.T) {
	c := MustCache(256, 64, 2) // 2 sets x 2 ways
	c.SetPolicy(PolicyRandom)
	for i := 0; i < 100; i++ {
		c.Access(mem.Addr(i * 64))
	}
	for s, n := range c.fill {
		if int(n) > c.ways {
			t.Fatalf("set %d grew past associativity: %d", s, n)
		}
	}
}

func TestOptionalL2Level(t *testing.T) {
	cfg := ScaledConfig()
	cfg.NextLinePrefetch = false
	cfg.L2Size = 256 << 10
	cfg.L2Ways = 8
	h := New(cfg)
	h.Access(0x1000, 8)
	// Evict from the 32KB L1 but not from the 256KB L2.
	for a := mem.Addr(0x100000); a < 0x100000+64<<10; a += 64 {
		h.Access(a, 8)
	}
	before := h.Counts()
	h.Access(0x1000, 8)
	after := h.Counts()
	if after.L2Hits != before.L2Hits+1 {
		t.Errorf("expected an L2 hit: %+v -> %+v", before, after)
	}
	if after.LLCMisses != before.LLCMisses || after.LLCHits != before.LLCHits {
		t.Error("L2 hit must not touch the LLC")
	}
}

func TestL2CostModel(t *testing.T) {
	m := DefaultCost()
	var c Counts
	c.Accesses = 10
	c.L1Misses = 4
	c.L2Hits = 4
	withL2 := m.Cycles(0, c)
	c.L2Hits = 0
	c.LLCHits = 4
	withoutL2 := m.Cycles(0, c)
	if withL2 >= withoutL2 {
		t.Errorf("L2 hits should be cheaper than LLC hits: %v vs %v", withL2, withoutL2)
	}
}

func TestL2DisabledByDefault(t *testing.T) {
	h := New(ScaledConfig())
	if h.l2 != nil {
		t.Error("default configuration must not have an L2")
	}
	h.Access(0x1000, 8)
	if h.Counts().L2Hits != 0 {
		t.Error("phantom L2 hits")
	}
}
