package cachesim

import (
	"prefix/internal/mem"
)

// Config describes a full hierarchy: L1D + LLC + two-level TLB, with the
// cycle cost model used to derive execution time and backend stalls.
type Config struct {
	L1Size uint64
	L1Ways int
	// L2Size/L2Ways add an optional private mid-level cache between L1
	// and the LLC; 0 disables it (the default — the evaluation's
	// calibration uses the two-level hierarchy of §3.2).
	L2Size  uint64
	L2Ways  int
	LLCSize uint64
	LLCWays int
	Line    uint64

	TLB1Entries int
	TLB1Ways    int
	TLB2Entries int
	TLB2Ways    int
	Page        uint64

	// NextLinePrefetch enables the next-line prefetcher: on an L1 demand
	// miss, the following line is installed in the LLC. This is what
	// rewards stream-ordered layouts (reconstituted HDS objects placed
	// in access order prefetch one another), matching the hardware the
	// paper measures on.
	NextLinePrefetch bool

	Cost CostModel
}

// CostModel converts event counts into cycles. The constants are ordinary
// figures for a modern Intel server part; absolute values only scale the
// modeled "execution time", all paper comparisons are relative.
type CostModel struct {
	CyclesPerInstr float64 // base IPC⁻¹ for non-memory work
	L1HitCycles    float64 // charged per memory access
	L2HitCycles    float64 // extra cycles when L1 misses but L2 hits
	L1MissCycles   float64 // extra cycles when L1 misses but LLC hits
	LLCMissCycles  float64 // extra cycles when LLC misses (DRAM)
	TLB1MissCycles float64 // extra when L1 TLB misses but L2 TLB hits
	TLB2MissCycles float64 // extra for a page walk
	MallocInstr    uint64  // instructions charged per heap malloc
	FreeInstr      uint64  // instructions charged per heap free
	ReallocInstr   uint64  // instructions charged per heap realloc
}

// DefaultCost is the cost model used across the evaluation.
func DefaultCost() CostModel {
	return CostModel{
		CyclesPerInstr: 0.5,
		L1HitCycles:    1,
		L2HitCycles:    6,  // L1 miss, L2 hit (when an L2 is configured)
		L1MissCycles:   12, // L1 miss, LLC hit
		LLCMissCycles:  200,
		TLB1MissCycles: 8,
		TLB2MissCycles: 60,
		MallocInstr:    120,
		FreeInstr:      90,
		ReallocInstr:   160,
	}
}

// PaperConfig is the evaluation machine of §3.2: 32 KB 8-way L1, 40 MB
// 20-way LLC, 64 B lines, 64-entry 4-way L1 TLB, 1536-entry 6-way L2 TLB.
func PaperConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		LLCSize: 40 << 20, LLCWays: 20,
		Line:        64,
		TLB1Entries: 64, TLB1Ways: 4,
		TLB2Entries: 1536, TLB2Ways: 6,
		Page:             4096,
		NextLinePrefetch: true,
		Cost:             DefaultCost(),
	}
}

// ScaledConfig shrinks the LLC to 2 MB (16-way) so scaled-down workloads
// exercise LLC misses the way the paper's full-size runs exercise the
// 40 MB LLC. Everything else matches PaperConfig.
func ScaledConfig() Config {
	c := PaperConfig()
	c.LLCSize = 2 << 20
	c.LLCWays = 16
	return c
}

// Hierarchy simulates one hardware thread's view of the memory system: a
// private L1 and TLBs in front of a (possibly shared) LLC.
type Hierarchy struct {
	cfg  Config
	l1   *Cache
	l2   *Cache // optional private mid-level cache (nil when disabled)
	llc  *Cache // may be shared between hierarchies
	tlb1 *Cache
	tlb2 *Cache

	counts Counts
}

// Counts aggregates simulation totals.
type Counts struct {
	Accesses   uint64 `json:"accesses"`
	L1Misses   uint64 `json:"l1_misses"`
	L2Hits     uint64 `json:"l2_hits"`  // L1 misses served by the optional L2
	LLCHits    uint64 `json:"llc_hits"` // misses served by LLC
	LLCMisses  uint64 `json:"llc_misses"`
	TLB1Miss   uint64 `json:"tlb1_misses"`
	TLB2Miss   uint64 `json:"tlb2_misses"`
	Prefetches uint64 `json:"prefetches"` // next-line prefetches issued
}

// New builds a hierarchy with a private LLC.
func New(cfg Config) *Hierarchy {
	llc := MustCache(cfg.LLCSize, cfg.Line, cfg.LLCWays)
	return NewShared(cfg, llc)
}

// NewShared builds a hierarchy whose LLC is the given (shared) cache; used
// for multithreaded simulation where threads have private L1s.
func NewShared(cfg Config, llc *Cache) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		l1:   MustCache(cfg.L1Size, cfg.Line, cfg.L1Ways),
		llc:  llc,
		tlb1: MustCache(uint64(cfg.TLB1Entries)*cfg.Page, cfg.Page, cfg.TLB1Ways),
		tlb2: MustCache(uint64(cfg.TLB2Entries)*cfg.Page, cfg.Page, cfg.TLB2Ways),
	}
	if cfg.L2Size > 0 {
		h.l2 = MustCache(cfg.L2Size, cfg.Line, cfg.L2Ways)
	}
	return h
}

// SharedLLC builds an LLC suitable for NewShared from cfg.
func SharedLLC(cfg Config) *Cache { return MustCache(cfg.LLCSize, cfg.Line, cfg.LLCWays) }

// Access simulates one data reference of the given width. Accesses that
// straddle a line boundary touch both lines (one counted access, both line
// fills), matching DrCacheSim accounting closely enough for the ratios the
// paper reports.
//
// The walk is flat: each address's page and line block numbers are
// computed once and probed directly against every level's flat tag
// array, so the whole L1→L2→LLC→TLB path is adds, shifts, and one short
// probe loop per level — no per-level address re-derivation and no
// allocation.
//
//prefix:hotpath
func (h *Hierarchy) Access(addr mem.Addr, size uint64) {
	if size == 0 {
		size = 1
	}
	h.counts.Accesses++
	a := uint64(addr)
	// TLB lookup for the first page only; straddles are negligible. Both
	// TLB levels share the page geometry, so one page number serves both.
	if page := a >> h.tlb1.shift; !h.tlb1.AccessBlock(page) {
		h.counts.TLB1Miss++
		if !h.tlb2.AccessBlock(page) {
			h.counts.TLB2Miss++
		}
	}
	// L1, L2, and LLC share the line geometry: one block number per line
	// walks all three levels.
	lineShift := h.l1.shift
	first := a >> lineShift
	last := (a + size - 1) >> lineShift
	for blk := first; ; blk++ {
		if !h.l1.AccessBlock(blk) {
			h.counts.L1Misses++
			if h.l2 != nil && h.l2.AccessBlock(blk) {
				h.counts.L2Hits++
			} else {
				if h.llc.AccessBlock(blk) {
					h.counts.LLCHits++
				} else {
					h.counts.LLCMisses++
				}
				if h.cfg.NextLinePrefetch {
					// Install the successor line in the LLC. Prefetch
					// traffic is tracked separately (Counts.Prefetches)
					// and installs without demand accounting, so the
					// LLC's own accesses/misses stay demand-only.
					h.llc.InstallBlock(blk + 1)
					h.counts.Prefetches++
				}
			}
		}
		if blk == last {
			break
		}
	}
}

// AccessDelta is Access plus attribution: it simulates the reference and
// returns exactly the Counts it contributed. The walk itself is the same
// code as Access — the delta is a before/after snapshot of the totals —
// so attribution-mode simulation produces aggregate Counts identical to
// the plain path by construction, and every access's events land in
// exactly one delta (summing deltas reproduces Counts()).
//
//prefix:hotpath
func (h *Hierarchy) AccessDelta(addr mem.Addr, size uint64) Counts {
	before := h.counts
	h.Access(addr, size)
	return h.counts.Sub(before)
}

// Counts returns the accumulated totals.
func (h *Hierarchy) Counts() Counts { return h.counts }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1MissRate is L1 misses per access.
func (c Counts) L1MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(c.Accesses)
}

// LLCMissRate is LLC misses per access (the paper's Figure 12 metric:
// percentage of memory accesses that missed in the LLC).
func (c Counts) LLCMissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.Accesses)
}

// TLB1MissRate is first-level TLB misses per access.
func (c Counts) TLB1MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.TLB1Miss) / float64(c.Accesses)
}

// TLBMissRate is the combined TLB miss rate per access: misses at either
// TLB level, so a full page walk contributes both its L1-TLB and L2-TLB
// miss — mirroring the cost model, which charges TLB1MissCycles for
// every first-level miss and TLB2MissCycles on top for walks.
func (c Counts) TLBMissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.TLB1Miss+c.TLB2Miss) / float64(c.Accesses)
}

// Add accumulates other into c.
func (c *Counts) Add(o Counts) {
	c.Accesses += o.Accesses
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.LLCHits += o.LLCHits
	c.LLCMisses += o.LLCMisses
	c.TLB1Miss += o.TLB1Miss
	c.TLB2Miss += o.TLB2Miss
	c.Prefetches += o.Prefetches
}

// Sub returns the field-wise difference c-o. Callers pair it with a
// snapshot taken before a batch of accesses to attribute just that
// batch; o must be an earlier snapshot of the same counter set.
//
//prefix:hotpath
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		Accesses:   c.Accesses - o.Accesses,
		L1Misses:   c.L1Misses - o.L1Misses,
		L2Hits:     c.L2Hits - o.L2Hits,
		LLCHits:    c.LLCHits - o.LLCHits,
		LLCMisses:  c.LLCMisses - o.LLCMisses,
		TLB1Miss:   c.TLB1Miss - o.TLB1Miss,
		TLB2Miss:   c.TLB2Miss - o.TLB2Miss,
		Prefetches: c.Prefetches - o.Prefetches,
	}
}

// Cycles applies the cost model: instr covers non-memory instructions,
// counts covers the memory side.
func (m CostModel) Cycles(instr uint64, c Counts) float64 {
	cy := float64(instr) * m.CyclesPerInstr
	cy += float64(c.Accesses) * m.L1HitCycles
	cy += float64(c.L2Hits) * m.L2HitCycles
	cy += float64(c.L1Misses-c.L2Hits) * m.L1MissCycles
	cy += float64(c.LLCMisses) * m.LLCMissCycles
	cy += float64(c.TLB1Miss) * m.TLB1MissCycles
	cy += float64(c.TLB2Miss) * m.TLB2MissCycles
	return cy
}

// StallCycles returns the memory-stall component of Cycles, the numerator
// of the paper's Figure 13 "backend stall" metric.
func (m CostModel) StallCycles(c Counts) float64 {
	return float64(c.L2Hits)*m.L2HitCycles +
		float64(c.L1Misses-c.L2Hits)*m.L1MissCycles +
		float64(c.LLCMisses)*m.LLCMissCycles +
		float64(c.TLB1Miss)*m.TLB1MissCycles +
		float64(c.TLB2Miss)*m.TLB2MissCycles
}
