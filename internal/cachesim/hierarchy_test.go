package cachesim

import (
	"testing"

	"prefix/internal/mem"
)

func testConfig() Config {
	c := ScaledConfig()
	c.NextLinePrefetch = false
	return c
}

func TestHierarchyCounts(t *testing.T) {
	h := New(testConfig())
	h.Access(0x1000, 8)
	h.Access(0x1000, 8)
	c := h.Counts()
	if c.Accesses != 2 {
		t.Errorf("accesses = %d", c.Accesses)
	}
	if c.L1Misses != 1 || c.LLCMisses != 1 || c.LLCHits != 0 {
		t.Errorf("counts = %+v", c)
	}
	if c.TLB1Miss != 1 || c.TLB2Miss != 1 {
		t.Errorf("tlb = %+v", c)
	}
}

func TestLineStraddle(t *testing.T) {
	h := New(testConfig())
	h.Access(0x1030, 32) // spans 0x1000 and 0x1040 lines
	c := h.Counts()
	if c.Accesses != 1 {
		t.Errorf("straddle must count one access, got %d", c.Accesses)
	}
	if c.L1Misses != 2 {
		t.Errorf("straddle should fill two lines, got %d misses", c.L1Misses)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	h := New(testConfig())
	h.Access(0x1000, 0)
	if h.Counts().Accesses != 1 || h.Counts().L1Misses != 1 {
		t.Error("zero-size access should behave like 1 byte")
	}
}

func TestLLCHitAfterL1Eviction(t *testing.T) {
	cfg := testConfig()
	h := New(cfg)
	h.Access(0x1000, 8)
	// Thrash L1 (32KB) while staying inside the LLC.
	for a := mem.Addr(0x100000); a < 0x100000+64<<10; a += 64 {
		h.Access(a, 8)
	}
	before := h.Counts()
	h.Access(0x1000, 8)
	after := h.Counts()
	if after.L1Misses != before.L1Misses+1 {
		t.Error("expected L1 miss after eviction")
	}
	if after.LLCMisses != before.LLCMisses {
		t.Error("line should still be in LLC")
	}
	if after.LLCHits != before.LLCHits+1 {
		t.Error("expected LLC hit")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	// Sequential sweep: every line except the first should be an LLC hit
	// thanks to the prefetcher.
	for a := mem.Addr(0x1000); a < 0x1000+4096; a += 64 {
		h.Access(a, 8)
	}
	c := h.Counts()
	if c.LLCMisses != 1 {
		t.Errorf("sequential sweep with prefetch: LLC misses = %d, want 1", c.LLCMisses)
	}
	if c.Prefetches == 0 {
		t.Error("no prefetches issued")
	}

	// Without prefetch every line misses the LLC.
	h2 := New(testConfig())
	for a := mem.Addr(0x1000); a < 0x1000+4096; a += 64 {
		h2.Access(a, 8)
	}
	if h2.Counts().LLCMisses != 64 {
		t.Errorf("no-prefetch sweep: LLC misses = %d, want 64", h2.Counts().LLCMisses)
	}
}

func TestStridedSweepDefeatsPrefetch(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	// Stride-128 sweep touches every other line; the next-line prefetch
	// fetches the untouched ones, so demand misses stay high.
	for a := mem.Addr(0x1000); a < 0x1000+8192; a += 128 {
		h.Access(a, 8)
	}
	if got := h.Counts().LLCMisses; got != 64 {
		t.Errorf("strided sweep LLC misses = %d, want 64", got)
	}
}

func TestSharedLLC(t *testing.T) {
	cfg := testConfig()
	llc := SharedLLC(cfg)
	a := NewShared(cfg, llc)
	b := NewShared(cfg, llc)
	a.Access(0x1000, 8)
	b.Access(0x1000, 8) // misses its private L1, hits the shared LLC
	if b.Counts().L1Misses != 1 {
		t.Error("thread b should miss its private L1")
	}
	if b.Counts().LLCMisses != 0 {
		t.Error("thread b should hit the shared LLC")
	}
}

func TestPaperConfigGeometry(t *testing.T) {
	cfg := PaperConfig()
	if cfg.L1Size != 32<<10 || cfg.L1Ways != 8 || cfg.LLCSize != 40<<20 || cfg.LLCWays != 20 {
		t.Errorf("paper cache geometry wrong: %+v", cfg)
	}
	if cfg.TLB1Entries != 64 || cfg.TLB1Ways != 4 || cfg.TLB2Entries != 1536 || cfg.TLB2Ways != 6 {
		t.Errorf("paper TLB geometry wrong: %+v", cfg)
	}
	// Must construct without panicking.
	New(cfg)
}

func TestCostModel(t *testing.T) {
	m := DefaultCost()
	var c Counts
	c.Accesses = 100
	base := m.Cycles(1000, c)
	c.LLCMisses = 10
	withMisses := m.Cycles(1000, c)
	if withMisses-base != 10*m.LLCMissCycles {
		t.Errorf("LLC miss cost wrong: %v vs %v", withMisses, base)
	}
	if m.StallCycles(c) != 10*m.LLCMissCycles {
		t.Errorf("stall cycles = %v", m.StallCycles(c))
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Accesses: 1, L1Misses: 2, LLCHits: 3, LLCMisses: 4, TLB1Miss: 5, TLB2Miss: 6, Prefetches: 7}
	b := a
	b.Add(a)
	if b.Accesses != 2 || b.L1Misses != 4 || b.LLCHits != 6 || b.LLCMisses != 8 || b.TLB1Miss != 10 || b.TLB2Miss != 12 || b.Prefetches != 14 {
		t.Errorf("Add wrong: %+v", b)
	}
}

func TestRates(t *testing.T) {
	c := Counts{Accesses: 200, L1Misses: 50, LLCMisses: 10, TLB1Miss: 4, TLB2Miss: 2}
	if c.L1MissRate() != 0.25 {
		t.Errorf("L1 rate %v", c.L1MissRate())
	}
	if c.LLCMissRate() != 0.05 {
		t.Errorf("LLC rate %v", c.LLCMissRate())
	}
	if c.TLB1MissRate() != 0.02 {
		t.Errorf("TLB1 rate %v", c.TLB1MissRate())
	}
	// Combined: both levels' misses count, so the page walks (TLB2Miss)
	// show up on top of the first-level misses.
	if c.TLBMissRate() != 0.03 {
		t.Errorf("combined TLB rate %v", c.TLBMissRate())
	}
	var zero Counts
	if zero.L1MissRate() != 0 || zero.LLCMissRate() != 0 || zero.TLBMissRate() != 0 || zero.TLB1MissRate() != 0 {
		t.Error("zero-access rates should be 0")
	}
}

func TestTLBBehaviour(t *testing.T) {
	h := New(testConfig())
	h.Access(0x1000, 8)
	h.Access(0x1008, 8) // same page: no new TLB miss
	c := h.Counts()
	if c.TLB1Miss != 1 {
		t.Errorf("TLB1 misses = %d, want 1", c.TLB1Miss)
	}
	h.Access(0x2000, 8) // new page
	if h.Counts().TLB1Miss != 2 {
		t.Error("new page should miss TLB")
	}
}
