package cachesim

import (
	"testing"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// deltaConfigs exercises AccessDelta across every hierarchy shape: the
// paper geometry, the scaled one, and a three-level stack with an L2.
func deltaConfigs() []Config {
	withL2 := ScaledConfig()
	withL2.L2Size = 256 << 10
	withL2.L2Ways = 8
	return []Config{PaperConfig(), ScaledConfig(), withL2}
}

// TestAccessDeltaMatchesAccess drives two identical hierarchies with the
// same address stream — one through Access, one through AccessDelta —
// and requires (a) identical aggregate Counts (the delta path is the
// same walk) and (b) that the summed deltas reproduce Counts exactly
// (every event lands in exactly one delta).
func TestAccessDeltaMatchesAccess(t *testing.T) {
	for ci, cfg := range deltaConfigs() {
		plain := New(cfg)
		attr := New(cfg)
		rng := xrand.New(uint64(ci) + 42)
		var sum Counts
		for i := 0; i < 200000; i++ {
			addr := mem.Addr(rng.Uint64() % (1 << 26))
			size := rng.Uint64()%128 + 1
			plain.Access(addr, size)
			d := attr.AccessDelta(addr, size)
			sum.Add(d)
			if d.Accesses != 1 {
				t.Fatalf("cfg %d: delta counted %d accesses", ci, d.Accesses)
			}
		}
		if plain.Counts() != attr.Counts() {
			t.Fatalf("cfg %d: delta path diverged: %+v vs %+v", ci, plain.Counts(), attr.Counts())
		}
		if sum != attr.Counts() {
			t.Fatalf("cfg %d: summed deltas %+v != totals %+v", ci, sum, attr.Counts())
		}
	}
}

// TestCountsSubRoundTrip: Sub inverts Add field-by-field.
func TestCountsSubRoundTrip(t *testing.T) {
	a := Counts{Accesses: 10, L1Misses: 9, L2Hits: 8, LLCHits: 7, LLCMisses: 6, TLB1Miss: 5, TLB2Miss: 4, Prefetches: 3}
	b := Counts{Accesses: 1, L1Misses: 2, L2Hits: 3, LLCHits: 4, LLCMisses: 5, TLB1Miss: 1, TLB2Miss: 2, Prefetches: 1}
	c := a
	c.Add(b)
	if got := c.Sub(b); got != a {
		t.Fatalf("Sub(Add) round trip broke: %+v != %+v", got, a)
	}
	if got := c.Sub(a); got != b {
		t.Fatalf("Sub(Add) round trip broke: %+v != %+v", got, b)
	}
}

// TestAccessDeltaZeroAllocs: the attribution walk must stay on the
// allocation-free fast path — it is the same walk plus a struct copy.
func TestAccessDeltaZeroAllocs(t *testing.T) {
	h := New(ScaledConfig())
	var i uint64
	var sink Counts
	if n := testing.AllocsPerRun(10000, func() {
		sink = h.AccessDelta(mem.Addr(i*64), 8)
		i++
	}); n != 0 {
		t.Errorf("AccessDelta allocates %.2f per access", n)
	}
	_ = sink
}
