package cachesim

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func TestGeometryValidation(t *testing.T) {
	if _, err := NewCache(32<<10, 64, 8); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []struct {
		size, line uint64
		ways       int
	}{
		{0, 64, 8},
		{32 << 10, 0, 8},
		{32 << 10, 64, 0},
		{32 << 10, 63, 8},   // non-power-of-two line
		{48 << 10, 64, 8},   // set count not a power of two
		{32 << 10, 64, 768}, // lines not divisible by ways... (512/768)
	}
	for _, c := range bad {
		if _, err := NewCache(c.size, c.line, c.ways); err == nil {
			t.Errorf("geometry %+v accepted", c)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	c := MustCache(1024, 64, 2)
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x13f) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x140) {
		t.Error("next line should miss")
	}
	if c.Misses() != 2 || c.Accesses() != 4 {
		t.Errorf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets, 2 ways, 64B lines => lines mapping to set 0: 0, 128, 256...
	c := MustCache(256, 64, 2)
	c.Access(0)   // set0: [0]
	c.Access(128) // set0: [128 0]
	c.Access(0)   // set0: [0 128] (MRU refresh)
	c.Access(256) // evicts 128
	if !c.Access(0) {
		t.Error("line 0 should have survived (was MRU)")
	}
	if c.Access(128) {
		t.Error("line 128 should have been evicted")
	}
}

func TestContainsDoesNotTouch(t *testing.T) {
	c := MustCache(256, 64, 2)
	c.Access(0)
	acc := c.Accesses()
	if !c.Contains(0) || c.Contains(64) {
		t.Error("Contains wrong")
	}
	if c.Accesses() != acc {
		t.Error("Contains must not count as access")
	}
}

func TestReset(t *testing.T) {
	c := MustCache(256, 64, 2)
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 || c.Contains(0) {
		t.Error("reset incomplete")
	}
}

// referenceLRU is a slow, obviously-correct fully-indexed model.
type referenceLRU struct {
	sets  uint64
	ways  int
	shift uint
	sets_ []([]uint64)
}

func newReferenceLRU(size, line uint64, ways int) *referenceLRU {
	lines := size / line
	sets := lines / uint64(ways)
	var shift uint
	for l := line; l > 1; l >>= 1 {
		shift++
	}
	r := &referenceLRU{sets: sets, ways: ways, shift: shift}
	r.sets_ = make([][]uint64, sets)
	return r
}

func (r *referenceLRU) access(addr mem.Addr) bool {
	block := uint64(addr) >> r.shift
	si := block & (r.sets - 1)
	set := r.sets_[si]
	for i, b := range set {
		if b == block {
			r.sets_[si] = append([]uint64{block}, append(set[:i:i], set[i+1:]...)...)
			return true
		}
	}
	set = append([]uint64{block}, set...)
	if len(set) > r.ways {
		set = set[:r.ways]
	}
	r.sets_[si] = set
	return false
}

// TestAgainstReferenceModel: property — the cache matches a trivially
// correct LRU model on random address streams.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := MustCache(4096, 64, 4)
		ref := newReferenceLRU(4096, 64, 4)
		for i := 0; i < 3000; i++ {
			a := mem.Addr(rng.Uint64n(32 << 10))
			if c.Access(a) != ref.access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	c := MustCache(1024, 64, 2)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := MustCache(32<<10, 64, 8)
	// 16KB working set fits a 32KB cache: second sweep must be all hits.
	for rep := 0; rep < 2; rep++ {
		for a := mem.Addr(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses() != 256 {
		t.Errorf("misses = %d, want 256 (first sweep only)", c.Misses())
	}
}

func TestWorkingSetThrashes(t *testing.T) {
	c := MustCache(32<<10, 64, 8)
	// A 64KB working set in a 32KB cache with a sequential sweep thrashes
	// under LRU: every access misses.
	for rep := 0; rep < 3; rep++ {
		for a := mem.Addr(0); a < 64<<10; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses() != c.Accesses() {
		t.Errorf("sequential over-capacity sweep should always miss: %d/%d", c.Misses(), c.Accesses())
	}
}
