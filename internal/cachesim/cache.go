// Package cachesim simulates the memory hierarchy the paper measures with
// DrCacheSim and hardware counters: a set-associative L1 data cache, a
// shared last-level cache, a two-level data TLB, and a cycle cost model
// that stands in for execution time and backend-stall measurements.
//
// The default geometry matches the paper's evaluation machine (§3.2):
// 32 KB 8-way L1 with 64 B lines; 40 MB 20-way LLC with 64 B lines; TLB
// with 64-entry 4-way L1 and 1536-entry 6-way L2. A scaled configuration
// with a smaller LLC is provided so the full 13-benchmark harness runs in
// seconds; EXPERIMENTS.md documents the scaling.
package cachesim

import (
	"fmt"

	"prefix/internal/mem"
)

// Policy selects a cache replacement policy.
type Policy uint8

const (
	// PolicyLRU is true least-recently-used (the default).
	PolicyLRU Policy = iota
	// PolicyFIFO evicts in fill order regardless of reuse.
	PolicyFIFO
	// PolicyRandom evicts a deterministic pseudo-random way.
	PolicyRandom
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	default:
		return "policy?"
	}
}

// Cache is one set-associative, write-allocate cache level. Tags are
// line (or page) numbers; no data is stored.
type Cache struct {
	sets     uint64
	ways     int
	shift    uint // address bits consumed below the index (line/page)
	policy   Policy
	tags     [][]uint64 // per set; MRU-first for LRU, fill-order for FIFO
	rng      uint64     // xorshift state for PolicyRandom
	accesses uint64
	misses   uint64
}

// NewCache builds a cache of size bytes with the given associativity and
// line size. size must be divisible by ways*line and the set count must be
// a power of two.
func NewCache(size, line uint64, ways int) (*Cache, error) {
	if size == 0 || line == 0 || ways <= 0 {
		return nil, fmt.Errorf("cachesim: bad geometry size=%d line=%d ways=%d", size, line, ways)
	}
	lines := size / line
	if lines%uint64(ways) != 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, ways)
	}
	sets := lines / uint64(ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	var shift uint
	for l := line; l > 1; l >>= 1 {
		if l&1 != 0 {
			return nil, fmt.Errorf("cachesim: line size %d not a power of two", line)
		}
		shift++
	}
	c := &Cache{sets: sets, ways: ways, shift: shift, rng: 0x9e3779b97f4a7c15}
	c.tags = make([][]uint64, sets)
	return c, nil
}

// SetPolicy selects the replacement policy; call before first use.
func (c *Cache) SetPolicy(p Policy) { c.policy = p }

// Policy returns the active replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// MustCache is NewCache that panics on bad geometry; for package presets.
func MustCache(size, line uint64, ways int) *Cache {
	c, err := NewCache(size, line, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Access touches the block containing addr and reports whether it hit.
func (c *Cache) Access(addr mem.Addr) bool {
	c.accesses++
	block := uint64(addr) >> c.shift
	set := block & (c.sets - 1)
	ws := c.tags[set]
	for i, tag := range ws {
		if tag == block {
			if c.policy == PolicyLRU {
				// Move to MRU.
				copy(ws[1:i+1], ws[:i])
				ws[0] = block
			}
			return true
		}
	}
	c.misses++
	switch {
	case len(ws) < c.ways:
		// Fill an empty way: insert at the front (MRU / newest).
		ws = append(ws, 0)
		copy(ws[1:], ws)
		ws[0] = block
	case c.policy == PolicyRandom:
		// Deterministic xorshift victim.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		ws[c.rng%uint64(len(ws))] = block
	default:
		// LRU and FIFO both evict the tail and insert at the head; the
		// difference is that FIFO never refreshes on hit.
		copy(ws[1:], ws)
		ws[0] = block
	}
	c.tags[set] = ws
	return false
}

// Contains reports whether the block holding addr is resident (no state
// change, no accounting).
func (c *Cache) Contains(addr mem.Addr) bool {
	block := uint64(addr) >> c.shift
	for _, tag := range c.tags[block&(c.sets-1)] {
		if tag == block {
			return true
		}
	}
	return false
}

// Accesses returns the number of Access calls.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 when empty).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = nil
	}
	c.accesses, c.misses = 0, 0
}
