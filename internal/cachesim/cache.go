// Package cachesim simulates the memory hierarchy the paper measures with
// DrCacheSim and hardware counters: a set-associative L1 data cache, a
// shared last-level cache, a two-level data TLB, and a cycle cost model
// that stands in for execution time and backend-stall measurements.
//
// The default geometry matches the paper's evaluation machine (§3.2):
// 32 KB 8-way L1 with 64 B lines; 40 MB 20-way LLC with 64 B lines; TLB
// with 64-entry 4-way L1 and 1536-entry 6-way L2. A scaled configuration
// with a smaller LLC is provided so the full 13-benchmark harness runs in
// seconds; EXPERIMENTS.md documents the scaling.
package cachesim

import (
	"fmt"

	"prefix/internal/mem"
)

// Policy selects a cache replacement policy.
type Policy uint8

const (
	// PolicyLRU is true least-recently-used (the default).
	PolicyLRU Policy = iota
	// PolicyFIFO evicts in fill order regardless of reuse.
	PolicyFIFO
	// PolicyRandom evicts a deterministic pseudo-random way.
	PolicyRandom
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	default:
		return "policy?"
	}
}

// Cache is one set-associative, write-allocate cache level. Tags are
// line (or page) numbers; no data is stored.
//
// Tag storage is one flat preallocated array of sets*ways words: set s
// occupies tags[s*ways : s*ways+fill[s]], ordered MRU-first for LRU and
// fill-order for FIFO. Every Access is a bounds-computed probe of that
// window — no per-set slice headers to chase, and no allocation ever
// happens after construction (Reset reuses the storage).
type Cache struct {
	sets     uint64
	ways     int
	shift    uint // address bits consumed below the index (line/page)
	policy   Policy
	tags     []uint64 // flat sets*ways tag array
	fill     []int32  // valid ways per set
	rng      uint64   // xorshift state for PolicyRandom
	accesses uint64
	misses   uint64
}

// NewCache builds a cache of size bytes with the given associativity and
// line size. size must be divisible by ways*line and the set count must be
// a power of two.
func NewCache(size, line uint64, ways int) (*Cache, error) {
	if size == 0 || line == 0 || ways <= 0 {
		return nil, fmt.Errorf("cachesim: bad geometry size=%d line=%d ways=%d", size, line, ways)
	}
	lines := size / line
	if lines%uint64(ways) != 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, ways)
	}
	sets := lines / uint64(ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	var shift uint
	for l := line; l > 1; l >>= 1 {
		if l&1 != 0 {
			return nil, fmt.Errorf("cachesim: line size %d not a power of two", line)
		}
		shift++
	}
	c := &Cache{sets: sets, ways: ways, shift: shift, rng: 0x9e3779b97f4a7c15}
	c.tags = make([]uint64, sets*uint64(ways))
	c.fill = make([]int32, sets)
	return c, nil
}

// SetPolicy selects the replacement policy; call before first use.
func (c *Cache) SetPolicy(p Policy) { c.policy = p }

// Policy returns the active replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// MustCache is NewCache that panics on bad geometry; for package presets.
func MustCache(size, line uint64, ways int) *Cache {
	c, err := NewCache(size, line, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// BlockOf returns the tag (line or page number) of the block holding
// addr; the *Block entry points take it directly so a hierarchy walk
// computes each address's block number once across levels.
func (c *Cache) BlockOf(addr mem.Addr) uint64 { return uint64(addr) >> c.shift }

// Access touches the block containing addr and reports whether it hit.
//
//prefix:hotpath
func (c *Cache) Access(addr mem.Addr) bool {
	return c.AccessBlock(uint64(addr) >> c.shift)
}

// AccessBlock is Access on a precomputed block number.
//
//prefix:hotpath
func (c *Cache) AccessBlock(block uint64) bool {
	c.accesses++
	set := block & (c.sets - 1)
	base := int(set) * c.ways
	n := int(c.fill[set])
	if c.lookup(block, base, n) {
		return true
	}
	c.misses++
	c.fillWay(block, set, base, n)
	return false
}

// Install fills or refreshes the block containing addr exactly like a
// demand access — same LRU refresh on hit, same fill/eviction on miss —
// but without touching the demand accesses/misses counters. Prefetchers
// use it so non-demand traffic never skews MissRate.
//
//prefix:hotpath
func (c *Cache) Install(addr mem.Addr) {
	c.InstallBlock(uint64(addr) >> c.shift)
}

// InstallBlock is Install on a precomputed block number.
//
//prefix:hotpath
func (c *Cache) InstallBlock(block uint64) {
	set := block & (c.sets - 1)
	base := int(set) * c.ways
	n := int(c.fill[set])
	if c.lookup(block, base, n) {
		return
	}
	c.fillWay(block, set, base, n)
}

// lookup probes the set window for block, refreshing recency order on a
// hit; it reports residency. Shared by the demand and install paths so
// their content transitions are identical by construction.
//
//prefix:hotpath
func (c *Cache) lookup(block uint64, base, n int) bool {
	ws := c.tags[base : base+n]
	for i, tag := range ws {
		if tag == block {
			if c.policy == PolicyLRU {
				// Move to MRU.
				copy(ws[1:i+1], ws[:i])
				ws[0] = block
			}
			return true
		}
	}
	return false
}

// fillWay inserts block into a set that does not hold it: fill an empty
// way when one exists, otherwise evict per the replacement policy.
//
//prefix:hotpath
func (c *Cache) fillWay(block, set uint64, base, n int) {
	switch {
	case n < c.ways:
		// Fill an empty way: insert at the front (MRU / newest).
		ws := c.tags[base : base+n+1]
		copy(ws[1:], ws)
		ws[0] = block
		c.fill[set] = int32(n + 1)
	case c.policy == PolicyRandom:
		// Deterministic xorshift victim.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		c.tags[base+int(c.rng%uint64(n))] = block
	default:
		// LRU and FIFO both evict the tail and insert at the head; the
		// difference is that FIFO never refreshes on hit.
		ws := c.tags[base : base+n]
		copy(ws[1:], ws)
		ws[0] = block
	}
}

// Contains reports whether the block holding addr is resident (no state
// change, no accounting).
func (c *Cache) Contains(addr mem.Addr) bool {
	block := uint64(addr) >> c.shift
	set := block & (c.sets - 1)
	base := int(set) * c.ways
	for _, tag := range c.tags[base : base+int(c.fill[set])] {
		if tag == block {
			return true
		}
	}
	return false
}

// Accesses returns the number of demand Access calls (Install traffic is
// not counted).
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of demand misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 when empty).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters in place: fill counts drop to zero
// and the flat tag array is kept, so a post-reset refill re-pays no
// allocations.
//
//prefix:hotpath
func (c *Cache) Reset() {
	for i := range c.fill {
		c.fill[i] = 0
	}
	c.accesses, c.misses = 0, 0
}
