package cachesim

import (
	"testing"

	"prefix/internal/mem"
)

// The microbenchmarks pin the inner-loop cost of the simulator. Run with
// `make bench-micro` (smoke) or `go test -bench . -benchmem ./internal/...`
// for real numbers; allocs/op must stay at 0.

func BenchmarkCacheAccess(b *testing.B) {
	for _, p := range []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} {
		b.Run(p.String(), func(b *testing.B) {
			c := MustCache(32<<10, 64, 8)
			c.SetPolicy(p)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Stride past L1 capacity so hits and misses both occur.
				c.Access(mem.Addr(uint64(i) * 192 % (256 << 10)))
			}
		})
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	run := func(b *testing.B, prefetch bool) {
		cfg := ScaledConfig()
		cfg.NextLinePrefetch = prefetch
		h := New(cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Access(mem.Addr(uint64(i)*320%(16<<20)), 8)
		}
	}
	b.Run("demand", func(b *testing.B) { run(b, false) })
	b.Run("prefetch", func(b *testing.B) { run(b, true) })
}
