package analysis

import (
	"go/ast"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFiles type-checks one temp-dir package from named file contents.
func loadFiles(t *testing.T, fset *token.FileSet, importPath string, files map[string]string) *Package {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	paths := make([]string, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	pkg, err := typeCheck(fset, importer.ForCompiler(fset, "source", nil), importPath, paths)
	if err != nil {
		t.Fatalf("typecheck %s: %v", importPath, err)
	}
	return pkg
}

// reverseReporter reports every top-level function, deliberately walking
// files and declarations back-to-front so any ordering the runner
// exhibits comes from its own sort, not emission order.
var reverseReporter = &Analyzer{
	Name: "reverse",
	Doc:  "test analyzer that emits diagnostics in reverse source order",
	Run: func(pass *Pass) error {
		for i := len(pass.Files) - 1; i >= 0; i-- {
			decls := pass.Files[i].Decls
			for j := len(decls) - 1; j >= 0; j-- {
				if fd, ok := decls[j].(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestRunnerDeterministicOrder: diagnostics come out sorted by (file,
// line, column, analyzer) regardless of package order or the order the
// analyzer emitted them in. Table-driven over package permutations.
func TestRunnerDeterministicOrder(t *testing.T) {
	fset := token.NewFileSet()
	pkgA := loadFiles(t, fset, "order/a", map[string]string{
		"a.go": "package a\n\nfunc A1() {}\n\nfunc A2() {}\n",
		"z.go": "package a\n\nfunc Z1() {}\n",
	})
	pkgB := loadFiles(t, fset, "order/b", map[string]string{
		"b.go": "package b\n\nfunc B1() {}\n",
	})

	var baseline []string
	for _, tc := range []struct {
		name string
		pkgs []*Package
	}{
		{"a-then-b", []*Package{pkgA, pkgB}},
		{"b-then-a", []*Package{pkgB, pkgA}},
	} {
		diags, err := RunAnalyzers(tc.pkgs, []*Analyzer{reverseReporter})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !sort.SliceIsSorted(diags, func(i, j int) bool {
			a, b := diags[i], diags[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		}) {
			t.Errorf("%s: diagnostics not sorted by (file, line, col): %v", tc.name, diags)
		}
		got := make([]string, len(diags))
		for i, d := range diags {
			got[i] = d.String()
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if strings.Join(got, "\n") != strings.Join(baseline, "\n") {
			t.Errorf("%s: package order changed the output:\n%s\nvs\n%s",
				tc.name, strings.Join(got, "\n"), strings.Join(baseline, "\n"))
		}
	}
	if len(baseline) != 4 {
		t.Fatalf("expected 4 diagnostics, got %d: %v", len(baseline), baseline)
	}
}

// TestMalformedDirectiveReportedOnce: directive parsing happens once
// per package, not once per analyzer, so a malformed //lint:ignore
// yields exactly one "lint" diagnostic however many analyzers run.
func TestMalformedDirectiveReportedOnce(t *testing.T) {
	noop := func(name string) *Analyzer {
		return &Analyzer{Name: name, Doc: "noop", Run: func(*Pass) error { return nil }}
	}
	for _, tc := range []struct {
		name      string
		analyzers []*Analyzer
	}{
		{"one-analyzer", []*Analyzer{noop("n1")}},
		{"three-analyzers", []*Analyzer{noop("n1"), noop("n2"), noop("n3")}},
	} {
		fset := token.NewFileSet()
		pkg := loadFiles(t, fset, "malformed/p", map[string]string{
			"p.go": "package p\n\n//lint:ignore\nfunc F() {}\n",
		})
		diags, err := RunAnalyzers([]*Package{pkg}, tc.analyzers)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var lint int
		for _, d := range diags {
			if d.Analyzer == "lint" && strings.Contains(d.Message, "malformed") {
				lint++
			}
		}
		if lint != 1 {
			t.Errorf("%s: malformed directive reported %d times, want exactly 1: %v",
				tc.name, lint, diags)
		}
	}
}
