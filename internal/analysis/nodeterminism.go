package analysis

import (
	"go/types"
	"strconv"
	"strings"
)

// Nodeterminism forbids non-deterministic inputs in the simulation,
// report, and observability packages: traces and reports must be
// byte-for-byte reproducible, so wall clocks must flow through an
// injected `func() time.Time`, randomness through internal/xrand, and
// configuration through explicit options rather than the environment or
// the host's CPU count.
var Nodeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid math/rand, bare time.Now/time.Since, os.Getenv, and " +
		"runtime.NumCPU/GOMAXPROCS in result-affecting packages",
	Run: runNodeterminism,
}

// nondeterministicImports maps forbidden import paths to the sanctioned
// alternative named in the diagnostic.
var nondeterministicImports = map[string]string{
	"math/rand":    "use prefix/internal/xrand: its stream is part of the repro contract, math/rand's is not",
	"math/rand/v2": "use prefix/internal/xrand: its stream is part of the repro contract, math/rand/v2's is not",
}

// nondeterministicFuncs maps forbidden package-level functions
// (qualified by package path) to the sanctioned alternative.
var nondeterministicFuncs = map[string]string{
	"time.Now":           "inject a clock (func() time.Time) so runs and tests are reproducible",
	"time.Since":         "derive durations from an injected clock so runs and tests are reproducible",
	"os.Getenv":          "thread configuration through explicit options, not the environment",
	"os.LookupEnv":       "thread configuration through explicit options, not the environment",
	"os.Environ":         "thread configuration through explicit options, not the environment",
	"runtime.NumCPU":     "parallelism must be an explicit option; results may never depend on the host",
	"runtime.GOMAXPROCS": "parallelism must be an explicit option; results may never depend on the host",
}

// inDeterministicScope reports whether the package's import path is one
// the determinism contract covers: the root package, everything under
// prefix/internal (simulation, planning, report, and obs layers), and
// the CLIs under prefix/cmd. CLIs legitimately timestamp output files
// and wire wall-clock sessions in a few places, but each such use must
// carry a reasoned //lint:ignore nodeterminism suppression rather than
// a blanket exemption — an unexplained wall-clock read in a command is
// exactly how nondeterminism leaks into reports.
func inDeterministicScope(path string) bool {
	return path == "prefix" ||
		strings.HasPrefix(path, "prefix/internal/") ||
		strings.HasPrefix(path, "prefix/cmd/")
}

func runNodeterminism(pass *Pass) error {
	if !inDeterministicScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := nondeterministicImports[path]; ok {
				pass.Reportf(imp.Pos(), "non-deterministic import %q: %s", path, why)
			}
		}
	}
	// Uses covers both calls (time.Now()) and value references
	// (now: time.Now), which is exactly the injected-clock default case.
	for id, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		if _, isFunc := obj.(*types.Func); !isFunc {
			continue
		}
		qualified := pkg.Path() + "." + obj.Name()
		if why, ok := nondeterministicFuncs[qualified]; ok {
			pass.Reportf(id.Pos(), "non-deterministic %s: %s", qualified, why)
		}
	}
	return nil
}
