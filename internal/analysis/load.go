package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newTypesInfo returns an Info with every map the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// LoadPatterns resolves the given `go list` package patterns (from dir,
// or the current directory when dir is empty) and returns each matched
// package parsed and type-checked. Test files are not loaded: the
// invariants guard production code, and tests routinely fake clocks and
// metric names on purpose.
//
// Type checking resolves imports from source via the standard library's
// source importer, so the loader works offline and needs no pre-built
// export data.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(listed))
	for _, p := range listed {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses every non-test .go file in dir as the package
// importPath and type-checks it with the given importer. It is the
// loading primitive for analysistest golden packages, whose directories
// live under testdata and are invisible to `go list`.
func LoadDir(fset *token.FileSet, imp types.Importer, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return typeCheck(fset, imp, importPath, files)
}

// TypeCheckFiles parses and type-checks one package from explicit file
// paths. It is the loading primitive for the go vet -vettool unit
// protocol, where the go command supplies the file list directly.
func TypeCheckFiles(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	return typeCheck(fset, imp, importPath, files)
}

// typeCheck parses and type-checks one package from explicit file paths.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
