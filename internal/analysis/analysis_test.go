package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSource type-checks one in-memory file as importPath and runs the
// given analyzers over it.
func checkSource(t *testing.T, importPath, src string, analyzers []*Analyzer) ([]Diagnostic, error) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "src.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := typeCheck(fset, imp, importPath, []string{path})
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return RunAnalyzers([]*Package{pkg}, analyzers)
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	src := `package p

import "time"

func sameLine() time.Time {
	return time.Now() //lint:ignore nodeterminism reason on the same line
}

func lineAbove() time.Time {
	//lint:ignore nodeterminism reason on the line above
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now()
}
`
	diags, err := checkSource(t, "prefix/internal/fake", src, []*Analyzer{Nodeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the unsuppressed one): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 15 {
		t.Errorf("diagnostic at line %d, want 15", diags[0].Pos.Line)
	}
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	src := `package p

import "time"

func f() time.Time {
	//lint:ignore mapiter wrong analyzer name
	return time.Now()
}
`
	diags, err := checkSource(t, "prefix/internal/fake", src, []*Analyzer{Nodeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

func TestSuppressionAnalyzerList(t *testing.T) {
	src := `package p

import "time"

func f() time.Time {
	//lint:ignore nodeterminism,mapiter covers both analyzers
	return time.Now()
}
`
	diags, err := checkSource(t, "prefix/internal/fake", src, []*Analyzer{Nodeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	src := `package p

//lint:ignore nodeterminism
func f() {}
`
	diags, err := checkSource(t, "prefix/internal/fake", src, []*Analyzer{Nodeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive diagnostic, got %v", diags)
	}
	if diags[0].Analyzer != "lint" {
		t.Errorf("malformed directive reported by %q, want \"lint\"", diags[0].Analyzer)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	src := `package p

import (
	"os"
	"time"
)

func b() time.Time { return time.Now() }

func a() string { return os.Getenv("X") }
`
	diags, err := checkSource(t, "prefix/internal/fake", src, []*Analyzer{Nodeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted by line: %v", diags)
	}
}

func TestInspectWithStack(t *testing.T) {
	src := `package p

func f() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawLoopUnderFunc bool
	InspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.ForStmt); ok {
			for _, s := range stack {
				if _, ok := s.(*ast.FuncDecl); ok {
					sawLoopUnderFunc = true
				}
			}
			// The immediate parent must be the function body block.
			if len(stack) == 0 {
				t.Fatal("for statement has empty stack")
			}
			if _, ok := stack[len(stack)-1].(*ast.BlockStmt); !ok {
				t.Errorf("for statement's parent is %T, want *ast.BlockStmt", stack[len(stack)-1])
			}
		}
		return true
	})
	if !sawLoopUnderFunc {
		t.Error("never saw the for loop with a FuncDecl ancestor")
	}
}

func TestLoadPatternsLoadsThisModule(t *testing.T) {
	if testing.Short() {
		t.Skip("package loading shells out to go list and type-checks from source")
	}
	pkgs, err := LoadPatterns("", []string{"prefix/internal/xrand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "prefix/internal/xrand" {
		t.Fatalf("LoadPatterns = %+v, want exactly prefix/internal/xrand", pkgs)
	}
	if pkgs[0].Types == nil || len(pkgs[0].Files) == 0 {
		t.Fatal("loaded package missing type info or files")
	}
	var _ types.Object // keep go/types imported for the assertion below
	if pkgs[0].Types.Scope().Lookup("New") == nil {
		t.Error("xrand.New not found in loaded package scope")
	}
}
