package analysis

import (
	"go/ast"
	"go/types"
)

// Spanend enforces the obs span lifecycle: every span acquired from
// Tracer.Start or Span.Child, and every perfstat scope acquired from
// Collector.Begin, must reach End() — via defer, or via an explicit
// call in the same block as the acquisition (so straight-line control
// flow always passes it). A span that is discarded, or whose only
// End() sits inside a nested branch, leaks open and poisons the
// phase-timing tree; an unended perfstat scope silently drops its host
// sample.
//
// Ownership hand-offs are recognized: a span passed to another function,
// returned, stored in a struct/field, or captured by a non-deferred
// closure is assumed to be ended by its new owner. A Begin chained
// through AttachSpan (perf.Begin("x").AttachSpan(root)) binds the same
// scope, so the chained call is classified as the acquisition.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "ensure every obs span and perfstat scope acquisition reaches End() on all paths",
	Run:  runSpanend,
}

const (
	obsPkgPath      = "prefix/internal/obs"
	perfstatPkgPath = "prefix/internal/obs/perfstat"
)

// isObsSpan reports whether t is *obs.Span or *perfstat.Scope.
func isObsSpan(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "Span" && obj.Pkg().Path() == obsPkgPath:
		return true
	case obj.Name() == "Scope" && obj.Pkg().Path() == perfstatPkgPath:
		return true
	}
	return false
}

// isSpanProducer reports whether call is Tracer.Start, Span.Child, or
// Collector.Begin (anything span-shaped from the obs layer).
func isSpanProducer(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Start" && name != "Child" && name != "Begin" {
		return false
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return isObsSpan(tv.Type)
}

func runSpanend(pass *Pass) error {
	for _, f := range pass.Files {
		InspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSpanProducer(pass.TypesInfo, call) {
				return true
			}
			checkSpanAcquisition(pass, call, stack)
			return true
		})
	}
	return nil
}

// checkSpanAcquisition classifies how the producer call's result is
// bound and, for a plain local variable, verifies its End discipline.
func checkSpanAcquisition(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	// A perfstat Begin chained through AttachSpan yields the same
	// scope: climb to the outermost chained call and classify how that
	// result is bound instead.
	for len(stack) >= 2 {
		sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
		if !ok || sel.X != ast.Expr(call) || sel.Sel.Name != "AttachSpan" {
			break
		}
		outer, ok := stack[len(stack)-2].(*ast.CallExpr)
		if !ok || outer.Fun != ast.Expr(sel) {
			break
		}
		call = outer
		stack = stack[:len(stack)-2]
	}
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "span is discarded; its End() can never be called")
		return
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 || p.Rhs[0] != ast.Expr(call) {
			return
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok {
			// Field or index destination: ownership moves to the
			// container; its owner is responsible for End.
			return
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span is assigned to _; its End() can never be called")
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		checkSpanVar(pass, obj, p, stack)
	case *ast.ValueSpec:
		if len(p.Names) != 1 || len(p.Values) != 1 || p.Values[0] != ast.Expr(call) {
			return
		}
		obj := pass.TypesInfo.Defs[p.Names[0]]
		if obj == nil {
			return
		}
		checkSpanVar(pass, obj, p, stack)
	}
	// Every other parent (call argument, return, composite literal,
	// selector chain) transfers ownership; the new owner must End it.
}

// spanUse is the End-discipline evidence collected for one span var.
type spanUse struct {
	deferred     bool // v.End() under a defer (directly or in a deferred closure)
	escapes      bool // aliased, passed, returned, stored, or captured
	sameBlockEnd bool // explicit v.End() in the acquisition's own block, after it
	nestedEnd    bool // explicit v.End() only deeper in the block tree
}

// checkSpanVar scans the enclosing function for the variable's End and
// escape evidence and reports the two failure shapes: no End at all, or
// End only on some paths.
func checkSpanVar(pass *Pass, obj types.Object, bind ast.Node, stack []ast.Node) {
	// Innermost enclosing function body and the block holding the
	// acquisition statement.
	var fnBody *ast.BlockStmt
	var bindBlock *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			if fnBody == nil {
				fnBody = f.Body
			}
		case *ast.FuncLit:
			if fnBody == nil {
				fnBody = f.Body
			}
		case *ast.BlockStmt:
			if bindBlock == nil {
				bindBlock = f
			}
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil || bindBlock == nil {
		return
	}

	var use spanUse
	InspectWithStack(fnBody, func(n ast.Node, inner []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if id.Pos() <= bind.End() && id.Pos() >= bind.Pos() {
			return true // the binding itself
		}
		classifySpanUse(pass, id, inner, bindBlock, &use)
		return true
	})

	switch {
	case use.deferred, use.escapes, use.sameBlockEnd:
		return
	case use.nestedEnd:
		pass.Reportf(bind.Pos(), "%s.End() is only called on some paths; defer it or call it in this block", obj.Name())
	default:
		pass.Reportf(bind.Pos(), "missing %s.End(); defer it right after the span is acquired", obj.Name())
	}
}

// classifySpanUse folds one identifier occurrence into the evidence.
// inner is the ancestor stack of id within the enclosing function body.
func classifySpanUse(pass *Pass, id *ast.Ident, inner []ast.Node, bindBlock *ast.BlockStmt, use *spanUse) {
	if len(inner) == 0 {
		return
	}
	parent := inner[len(inner)-1]

	// v.End() / v.Set() / v.Child() — method selector on the span.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
		if sel.Sel.Name != "End" {
			return // neutral method use (Set, Child, ObserveDurations, ...)
		}
		// Position the End call in control flow.
		inDefer := false
		var endBlock *ast.BlockStmt
		for i := len(inner) - 1; i >= 0; i-- {
			switch nd := inner[i].(type) {
			case *ast.DeferStmt:
				inDefer = true
			case *ast.BlockStmt:
				if endBlock == nil {
					endBlock = nd
				}
			case *ast.FuncLit:
				// End inside a nested closure: deferred closures count as
				// defers; others are ownership capture.
				if deferredLit(inner[:i+1]) {
					use.deferred = true
				} else {
					use.escapes = true
				}
				return
			}
		}
		switch {
		case inDefer:
			use.deferred = true
		case endBlock == bindBlock:
			use.sameBlockEnd = true
		default:
			use.nestedEnd = true
		}
		return
	}

	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(id) {
				use.escapes = true // handed to another function
				return
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == ast.Expr(id) {
				// Aliased into another variable/field — but a blank
				// assignment (`_ = span`) transfers nothing.
				for _, lhs := range p.Lhs {
					if lid, ok := lhs.(*ast.Ident); ok && lid.Name == "_" {
						return
					}
				}
				use.escapes = true
				return
			}
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.UnaryExpr, *ast.SendStmt, *ast.IndexExpr:
		use.escapes = true
	}
}

// deferredLit reports whether the innermost FuncLit at the top of the
// stack is the immediate function of a DeferStmt (defer func(){...}()).
func deferredLit(stack []ast.Node) bool {
	// stack ends at the FuncLit; walk outward past its CallExpr.
	for i := len(stack) - 2; i >= 0 && i >= len(stack)-4; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
