// Package analysistest runs one analyzer over a golden package under
// testdata/src and checks its diagnostics against `// want` comments, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `map iteration order`
//
// Each backquoted (or quoted) string after `want` is a regular
// expression that must match a diagnostic reported on that line; every
// diagnostic must be matched by some expectation and vice versa.
// //lint:ignore suppressions are applied before matching, so a golden
// line carrying a directive and no want comment demonstrates an
// accepted suppression.
//
// Golden packages are addressed by import path: the files live at
// testdata/src/<importPath>/ and are type-checked AS that import path,
// which is how scope-sensitive analyzers (nodeterminism) see a golden
// inside or outside their target package set. Imports resolve first
// against testdata/src, then against the real module and standard
// library via the source importer — goldens import the real
// prefix/internal/obs.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prefix/internal/analysis"
)

// Run loads testdata/src/<importPath> (relative to the test's working
// directory), runs the analyzer, and matches diagnostics against the
// package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, importPath string) {
	t.Helper()
	if a == nil {
		t.Fatalf("nil analyzer (was its registration deleted?)")
	}
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &testdataImporter{
		fset:  fset,
		root:  root,
		base:  importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
	dir := filepath.Join(root, filepath.FromSlash(importPath))
	pkg, err := analysis.LoadDir(fset, imp, dir, importPath)
	if err != nil {
		t.Fatalf("loading golden %s: %v", importPath, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	check(t, fset, pkg.Files, diags)
}

// expectation is one want regexp at a (file, line).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// check matches diagnostics against want comments, failing the test on
// any unmatched diagnostic or unmet expectation.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(text, "want ")
				matches := wantRE.FindAllStringSubmatch(body, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range matches {
					src := m[1]
					if src == "" {
						src = m[2]
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, src, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: src})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.text)
		}
	}
}

// testdataImporter resolves golden-package imports: a directory under
// testdata/src wins; anything else falls through to the source importer
// (standard library and the real module packages).
type testdataImporter struct {
	fset  *token.FileSet
	root  string
	base  types.Importer
	cache map[string]*types.Package
}

func (i *testdataImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(i.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := analysis.LoadDir(i.fset, i, dir, path)
		if err != nil {
			return nil, fmt.Errorf("testdata import %q: %w", path, err)
		}
		i.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	pkg, err := i.base.Import(path)
	if err != nil {
		return nil, err
	}
	i.cache[path] = pkg
	return pkg, nil
}
