package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Escapebudget is the compiler-diagnostics half of the hot-path gate:
// hotalloc/hotcall reason about syntax, this analyzer asks the compiler
// what it actually decided. For every package containing
// //prefix:hotpath functions it runs `go build -gcflags=-m=2`, parses
// the escape-analysis and inlining decisions for the annotated
// functions, and diffs them against a committed budget file:
//
//   - a function recorded as inlinable must stay inlinable;
//   - a function must not gain heap escapes beyond those recorded.
//
// The budget is regenerated with
//
//	go run ./cmd/prefix-lint -analyzers escapebudget -record ./...
//
// which rewrites the analyzed packages' entries in place (the default
// file is testdata/escape-budget.json; see the -budget flag). A golden
// package can carry its own escape-budget.json next to its sources,
// which takes precedence over the global file.
//
// The analyzer shells out to the go tool, so it is excluded from the
// `go vet -vettool` unit protocol and runs only under the prefix-lint
// driver.
var Escapebudget = &Analyzer{
	Name: "escapebudget",
	Doc:  "diff compiler escape/inline decisions for //prefix:hotpath functions against a committed budget",
	Run:  runEscapeBudget,
}

// EscapeBudgetFile is the budget consulted when the analyzed package's
// directory has no escape-budget.json of its own. cmd/prefix-lint
// resolves its -budget flag (default testdata/escape-budget.json,
// relative to -C) into this variable before running the suite.
var EscapeBudgetFile = "testdata/escape-budget.json"

// EscapeBudgetRecord switches escapebudget from diffing to rewriting
// the budget entries for the packages analyzed (the CLI -record flag).
var EscapeBudgetRecord = false

const escapeBudgetComment = "Compiler escape/inline budget for //prefix:hotpath functions. " +
	"Regenerate with: go run ./cmd/prefix-lint -analyzers escapebudget -record ./..."

// budgetEntry is one function's recorded compiler decisions. Escapes
// are normalized messages without positions, so unrelated line shifts
// do not invalidate the budget.
type budgetEntry struct {
	File    string   `json:"file"`
	Inline  bool     `json:"inline"`
	Cost    int      `json:"cost"`
	Escapes []string `json:"escapes"`

	noInlineReason string // transient; not serialized
}

type budgetFile struct {
	Comment   string                 `json:"comment"`
	Functions map[string]budgetEntry `json:"functions"`
}

func runEscapeBudget(pass *Pass) error {
	hot := hotFuncDecls(pass)
	if len(hot) == 0 {
		return nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	diags, err := compileDiagnostics(dir, pass.Files[0].Name.Name == "main")
	if err != nil {
		return err
	}

	current := make(map[string]budgetEntry)
	declPos := make(map[string]*ast.FuncDecl)
	for _, decl := range hot {
		fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		q := funcQualifiedName(fn)
		start := pass.Fset.Position(decl.Pos())
		end := pass.Fset.Position(decl.End())
		base := filepath.Base(start.Filename)
		entry := budgetEntry{File: base, Escapes: []string{}}
		seen := make(map[string]bool)
		for _, cd := range diags {
			if cd.file != base {
				continue
			}
			switch {
			case cd.line == start.Line && cd.kind == diagInline:
				entry.Inline, entry.Cost, entry.noInlineReason = cd.inline, cd.cost, cd.msg
			case cd.line >= start.Line && cd.line <= end.Line && cd.kind == diagEscape:
				if !seen[cd.msg] {
					seen[cd.msg] = true
					entry.Escapes = append(entry.Escapes, cd.msg)
				}
			}
		}
		sort.Strings(entry.Escapes)
		current[q] = entry
		declPos[q] = decl
	}

	budgetPath := filepath.Join(dir, "escape-budget.json")
	if _, err := os.Stat(budgetPath); err != nil {
		budgetPath = EscapeBudgetFile
	}

	if EscapeBudgetRecord {
		return recordBudget(budgetPath, pass.Pkg.Path(), current)
	}

	budget, err := loadBudget(budgetPath)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(current))
	for q := range current {
		keys = append(keys, q)
	}
	sort.Strings(keys)
	for _, q := range keys {
		cur := current[q]
		decl := declPos[q]
		want, ok := budget.Functions[q]
		if !ok {
			pass.Reportf(decl.Pos(), "no escape-budget entry for %s in %s; run `prefix-lint -analyzers escapebudget -record` and commit the result",
				q, budgetPath)
			continue
		}
		if want.Inline && !cur.Inline {
			reason := cur.noInlineReason
			if reason == "" {
				reason = "no inline decision reported"
			}
			pass.Reportf(decl.Pos(), "hot-path function %s lost inlinability: %s (budget requires it to stay inlinable)",
				q, reason)
		}
		allowed := make(map[string]bool, len(want.Escapes))
		for _, e := range want.Escapes {
			allowed[e] = true
		}
		for _, e := range cur.Escapes {
			if !allowed[e] {
				pass.Reportf(decl.Pos(), "new heap escape in hot-path function %s: %s (not in budget)", q, e)
			}
		}
	}
	return nil
}

// recordBudget rewrites pkgPath's entries in the budget file, leaving
// other packages' entries untouched. The output is deterministic
// (sorted keys, fixed indentation), so two consecutive -record runs
// over an unchanged tree produce byte-identical files.
func recordBudget(path, pkgPath string, current map[string]budgetEntry) error {
	budget, err := loadBudget(path)
	if err != nil {
		return err
	}
	prefix := pkgPath + "."
	for q := range budget.Functions {
		if rest, ok := strings.CutPrefix(q, prefix); ok && !strings.Contains(rest, "/") {
			delete(budget.Functions, q)
		}
	}
	for q, e := range current {
		e.noInlineReason = ""
		budget.Functions[q] = e
	}
	budget.Comment = escapeBudgetComment
	out, err := json.MarshalIndent(budget, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, out, 0o644)
}

// loadBudget reads the budget file; a missing file yields an empty
// budget (check mode then reports every annotated function as
// unrecorded, record mode starts fresh).
func loadBudget(path string) (*budgetFile, error) {
	b := &budgetFile{Functions: make(map[string]budgetEntry)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Functions == nil {
		b.Functions = make(map[string]budgetEntry)
	}
	return b, nil
}

const (
	diagInline = iota
	diagEscape
)

// compilerDiag is one parsed line of `go build -gcflags=-m=2` output.
type compilerDiag struct {
	file   string // base name
	line   int
	kind   int
	inline bool   // diagInline: can the function be inlined
	cost   int    // diagInline: inline cost when inlinable
	msg    string // diagEscape: normalized message; diagInline: reason when not inlinable
}

// compileDiagnostics compiles the package in dir and parses the
// compiler's -m=2 commentary. The build cache replays diagnostics for
// cached packages, so repeated runs are cheap and consistent. Main
// packages are built to the null device so no binary is dropped.
func compileDiagnostics(dir string, isMain bool) ([]compilerDiag, error) {
	args := []string{"build", "-gcflags=-m=2"}
	if isMain {
		args = append(args, "-o", os.DevNull)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 in %s: %v\n%s", dir, err, out.String())
	}
	var diags []compilerDiag
	for _, line := range strings.Split(out.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		msg := parts[3]
		if strings.HasPrefix(msg, "  ") || strings.HasPrefix(msg, " \t") {
			continue // flow:/from continuation lines
		}
		msg = strings.TrimSpace(msg)
		d := compilerDiag{file: filepath.Base(parts[0]), line: lineNo}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			d.kind, d.inline = diagInline, true
			if _, rest, ok := strings.Cut(msg, " with cost "); ok {
				if costStr, _, ok := strings.Cut(rest, " "); ok {
					d.cost, _ = strconv.Atoi(costStr)
				}
			}
		case strings.HasPrefix(msg, "cannot inline "):
			d.kind, d.inline = diagInline, false
			d.msg = strings.TrimPrefix(msg, "cannot inline ")
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
			d.kind = diagEscape
			d.msg = strings.TrimSuffix(msg, ":")
		case strings.HasPrefix(msg, "moved to heap: "):
			d.kind = diagEscape
			d.msg = msg
		default:
			continue
		}
		diags = append(diags, d)
	}
	return diags, nil
}
