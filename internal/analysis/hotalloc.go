package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Hotalloc forbids allocation-inducing constructs inside
// //prefix:hotpath functions: the PR 7 fast path is pinned at zero
// allocs/op by testing.AllocsPerRun, and this analyzer names the exact
// construct that would reintroduce one — before the benchmark run does.
//
// Flagged: make/new, &composite literals, map and slice literals, map
// writes, append (may grow), capturing closures, string concatenation,
// string<->[]byte/[]rune conversions, fmt.* calls, and boxing a
// concrete value into an interface parameter. Whether a given literal
// or variable actually reaches the heap is the compiler's decision;
// that side is gated by the escapebudget analyzer, so the two overlap
// deliberately. Amortized or by-design allocations are suppressed in
// place with //lint:ignore hotalloc <reason>.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-inducing constructs in //prefix:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, decl := range hotFuncDecls(pass) {
		name := declDisplayName(decl)
		InspectWithStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkHotAllocCall(pass, name, n)
			case *ast.CompositeLit:
				// &T{...} is reported once, at the &.
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == n {
						return true
					}
				}
				switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in hot-path function %s", name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in hot-path function %s", name)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						pass.Reportf(n.Pos(), "&composite literal allocates in hot-path function %s", name)
					}
				}
			case *ast.FuncLit:
				if captured := closureCaptures(pass, n); len(captured) > 0 {
					pass.Reportf(n.Pos(), "closure capturing %s allocates in hot-path function %s",
						quotedList(captured), name)
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringType(pass.TypesInfo.Types[n].Type) {
					// Report a + b + c once, at the outermost +.
					if len(stack) > 0 {
						if b, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && b.Op == token.ADD && isStringType(pass.TypesInfo.Types[b].Type) {
							return true
						}
					}
					pass.Reportf(n.Pos(), "string concatenation allocates in hot-path function %s", name)
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypesInfo.Types[n.Lhs[0]].Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates in hot-path function %s", name)
				}
				for _, lhs := range n.Lhs {
					reportMapWrite(pass, name, lhs)
				}
			case *ast.IncDecStmt:
				reportMapWrite(pass, name, n.X)
			}
			return true
		})
	}
	return nil
}

// checkHotAllocCall handles the call-shaped constructs: allocation
// builtins, string conversions, fmt, and interface boxing at call
// boundaries.
func checkHotAllocCall(pass *Pass, name string, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkStringConversion(pass, name, call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot-path function %s", name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot-path function %s", name)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in hot-path function %s", name)
			}
			return
		}
	}
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot-path function %s", fn.Name(), name)
		return
	}
	checkInterfaceBoxing(pass, name, call)
}

// checkStringConversion flags the conversions that copy their operand:
// string <-> []byte/[]rune and integer -> string.
func checkStringConversion(pass *Pass, name string, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argType := pass.TypesInfo.Types[call.Args[0]].Type
	if argType == nil {
		return
	}
	if isStringType(target) && !isStringType(argType) {
		pass.Reportf(call.Pos(), "conversion to string allocates in hot-path function %s", name)
		return
	}
	if sl, ok := target.Underlying().(*types.Slice); ok && isStringType(argType) {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && (b.Kind() == types.Byte || b.Kind() == types.Rune) {
			pass.Reportf(call.Pos(), "conversion from string allocates in hot-path function %s", name)
		}
	}
}

// checkInterfaceBoxing flags concrete arguments passed to interface
// parameters: the value is boxed, which allocates unless the compiler
// can prove otherwise.
func checkInterfaceBoxing(pass *Pass, name string, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	np := params.Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			paramType = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			paramType = params.At(i).Type()
		default:
			continue
		}
		argTV := pass.TypesInfo.Types[arg]
		if argTV.Type == nil || argTV.IsNil() {
			continue
		}
		if types.IsInterface(paramType) && !types.IsInterface(argTV.Type.Underlying()) {
			pass.Reportf(arg.Pos(), "argument boxes into %s in hot-path function %s",
				types.TypeString(paramType, types.RelativeTo(pass.Pkg)), name)
		}
	}
}

// reportMapWrite flags an assignment target that indexes a map.
func reportMapWrite(pass *Pass, name string, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := pass.TypesInfo.Types[idx.X].Type; t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			pass.Reportf(lhs.Pos(), "map write may allocate in hot-path function %s", name)
		}
	}
}

// closureCaptures returns the sorted names of enclosing-function
// variables the literal closes over. Package-level variables are
// excluded: referencing them does not force a heap-allocated closure
// context.
func closureCaptures(pass *Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent() == types.Universe || v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v.Name()] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// quotedList joins names for a diagnostic: `a`, `b`.
func quotedList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
