package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotcall forbids call-shape hazards inside //prefix:hotpath functions:
// defer and go statements, dynamic dispatch (interface method calls and
// calls through function values — exactly the devirtualization the
// machine package's *eventBatch exists to avoid), and calls to module
// functions that are not themselves //prefix:hotpath-annotated. The
// last rule is how the hot-path closure is enforced: annotating a
// function obligates its statically-reachable module callees to be
// annotated too, or each call site to carry a //lint:ignore hotcall
// <reason> explaining why the branch is off the fast path.
//
// Callees in packages outside the current run (partial patterns, the go
// vet unit protocol) are tolerated: the closure is only checked when
// the callee's package was loaded.
var Hotcall = &Analyzer{
	Name: "hotcall",
	Doc:  "forbid defer, dynamic dispatch, and unannotated callees in //prefix:hotpath functions",
	Run:  runHotcall,
}

func runHotcall(pass *Pass) error {
	for _, decl := range hotFuncDecls(pass) {
		name := declDisplayName(decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				pass.Reportf(n.Pos(), "defer in hot-path function %s adds call overhead and blocks inlining", name)
				return false
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in hot-path function %s spawns a goroutine per call", name)
				return false
			case *ast.CallExpr:
				checkHotCall(pass, name, n)
			}
			return true
		})
	}
	return nil
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return
		}
	}
	if callee := calleeFunc(pass, call); callee != nil {
		// A method whose receiver is an interface dispatches dynamically
		// even when reached through a concrete struct (embedded
		// interface promotion).
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			pass.Reportf(call.Pos(), "interface method call %s dispatches dynamically in hot-path function %s",
				callee.FullName(), name)
			return
		}
		pkg := callee.Pkg()
		if pkg == nil {
			return
		}
		if pass.Module.HasPackage(pkg.Path()) && !pass.Module.Annotated(funcQualifiedName(callee)) {
			pass.Reportf(call.Pos(), "call to %s in hot-path function %s: callee is not marked //prefix:hotpath",
				shortQualified(callee), name)
		}
		return
	}
	// No static callee: a dynamic call through a function value.
	switch fun := fun.(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Var); ok {
			pass.Reportf(call.Pos(), "dynamic call through func value %s in hot-path function %s", fun.Name, name)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			pass.Reportf(call.Pos(), "dynamic call through func-valued field %s in hot-path function %s", fun.Sel.Name, name)
		} else if _, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Var); ok {
			pass.Reportf(call.Pos(), "dynamic call through func value %s in hot-path function %s", fun.Sel.Name, name)
		}
	}
}

// shortQualified renders a *types.Func as pkgname.Recv.Name — the
// qualified name with the import path shortened to its last element.
func shortQualified(fn *types.Func) string {
	q := funcQualifiedName(fn)
	if i := strings.LastIndex(q, "/"); i >= 0 {
		q = q[i+1:]
	}
	return q
}
