// Package metricname is the metricname golden: obs series names are
// constant, snake_case, namespaced, counters end in _total, and
// loop-invariant instrument lookups are hoisted out of loops.
package metricname

import "prefix/internal/obs"

// good covers every sanctioned namespace and instrument kind.
func good(reg *obs.Registry) {
	reg.Counter("prefix_jobs_completed_total").Inc()
	reg.Gauge("pipeline_queue_depth").Set(1)
	reg.Histogram("analysis_pass_seconds", obs.TimeBuckets).Observe(0.1)
}

// badNamespace is outside prefix_/pipeline_/analysis_.
func badNamespace(reg *obs.Registry) {
	reg.Counter("jobs_done_total").Inc() // want `namespace`
}

// badCase is not snake_case.
func badCase(reg *obs.Registry) {
	reg.Gauge("prefix_queueDepth").Set(1) // want `snake_case`
}

// badCounterSuffix lacks _total.
func badCounterSuffix(reg *obs.Registry) {
	reg.Counter("prefix_jobs_done").Inc() // want `must end in _total`
}

// badGaugeSuffix misuses the counter suffix.
func badGaugeSuffix(reg *obs.Registry) {
	reg.Gauge("prefix_live_bytes_total").Set(1) // want `reserved for counters`
}

// perfGood covers the prefix_perf_ host-cost family: counters name a
// unit before _total, gauges a rate or unit word, histograms a unit.
func perfGood(reg *obs.Registry) {
	reg.Counter("prefix_perf_scopes_total").Inc()
	reg.Counter("prefix_perf_wall_nanos_total").Inc()
	reg.Counter("prefix_perf_alloc_bytes_total").Inc()
	reg.Counter("prefix_perf_events_total").Inc()
	reg.Counter("prefix_perf_gc_cycles_total").Inc()
	reg.Gauge("prefix_perf_events_per_sec").Set(1)
	reg.Gauge("prefix_perf_goroutines").Set(1)
	reg.Histogram("prefix_perf_scope_seconds", obs.TimeBuckets).Observe(0.1)
}

// perfBadCounterUnit ends in _total but names no unit.
func perfBadCounterUnit(reg *obs.Registry) {
	reg.Counter("prefix_perf_gcs_total").Inc() // want `must name its unit before _total`
}

// perfBadGaugeUnit carries no rate or unit suffix.
func perfBadGaugeUnit(reg *obs.Registry) {
	reg.Gauge("prefix_perf_throughput").Set(1) // want `must end in a rate or unit suffix`
}

// perfBadHistogramUnit carries no unit suffix.
func perfBadHistogramUnit(reg *obs.Registry) {
	reg.Histogram("prefix_perf_scope_wall", obs.TimeBuckets).Observe(0.1) // want `must end in a unit suffix`
}

// attribGood covers the prefix_attrib_ per-site attribution family:
// counters name what they count before _total, gauges a share or unit.
func attribGood(reg *obs.Registry) {
	reg.Counter("prefix_attrib_accesses_total").Inc()
	reg.Counter("prefix_attrib_l1_misses_total").Inc()
	reg.Counter("prefix_attrib_llc_misses_total").Inc()
	reg.Counter("prefix_attrib_tlb_misses_total").Inc()
	reg.Counter("prefix_attrib_ledger_decisions_total").Inc()
	reg.Gauge("prefix_attrib_llc_miss_share").Set(1)
	reg.Gauge("prefix_attrib_stall_cycles").Set(1)
	reg.Histogram("prefix_attrib_site_bytes", obs.TimeBuckets).Observe(64)
}

// attribBadCounterNoun ends in _total but names nothing countable.
func attribBadCounterNoun(reg *obs.Registry) {
	reg.Counter("prefix_attrib_site_total").Inc() // want `must name what it counts before _total`
}

// attribBadGaugeSuffix carries no share or unit suffix.
func attribBadGaugeSuffix(reg *obs.Registry) {
	reg.Gauge("prefix_attrib_top_site").Set(1) // want `must end in a share or unit suffix`
}

// attribBadHistogramUnit carries no unit suffix.
func attribBadHistogramUnit(reg *obs.Registry) {
	reg.Histogram("prefix_attrib_spread", obs.TimeBuckets).Observe(1) // want `must end in a unit suffix`
}

// dynamic builds the name at run time.
func dynamic(reg *obs.Registry, name string) {
	reg.Counter(name).Inc() // want `compile-time constant`
}

// hotLoop looks the same series up every iteration.
func hotLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("prefix_iterations_total").Inc() // want `loop-invariant Counter lookup`
	}
}

// perLabelLoop selects a different series per iteration via the loop
// variable, which is the sanctioned per-benchmark/per-variant pattern.
func perLabelLoop(reg *obs.Registry, names []string) {
	for _, b := range names {
		reg.Counter("prefix_runs_total", "benchmark", b).Inc()
	}
}

// hoisted is the fix for hotLoop.
func hoisted(reg *obs.Registry, n int) {
	c := reg.Counter("prefix_iterations_total")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// legacy demonstrates the accepted suppression.
func legacy(reg *obs.Registry) {
	//lint:ignore metricname demo: legacy series name kept for dashboard compatibility
	reg.Counter("legacy_total").Inc()
}
