// Package metricname is the metricname golden: obs series names are
// constant, snake_case, namespaced, counters end in _total, and
// loop-invariant instrument lookups are hoisted out of loops.
package metricname

import "prefix/internal/obs"

// good covers every sanctioned namespace and instrument kind.
func good(reg *obs.Registry) {
	reg.Counter("prefix_jobs_completed_total").Inc()
	reg.Gauge("pipeline_queue_depth").Set(1)
	reg.Histogram("analysis_pass_seconds", obs.TimeBuckets).Observe(0.1)
}

// badNamespace is outside prefix_/pipeline_/analysis_.
func badNamespace(reg *obs.Registry) {
	reg.Counter("jobs_done_total").Inc() // want `namespace`
}

// badCase is not snake_case.
func badCase(reg *obs.Registry) {
	reg.Gauge("prefix_queueDepth").Set(1) // want `snake_case`
}

// badCounterSuffix lacks _total.
func badCounterSuffix(reg *obs.Registry) {
	reg.Counter("prefix_jobs_done").Inc() // want `must end in _total`
}

// badGaugeSuffix misuses the counter suffix.
func badGaugeSuffix(reg *obs.Registry) {
	reg.Gauge("prefix_live_bytes_total").Set(1) // want `reserved for counters`
}

// dynamic builds the name at run time.
func dynamic(reg *obs.Registry, name string) {
	reg.Counter(name).Inc() // want `compile-time constant`
}

// hotLoop looks the same series up every iteration.
func hotLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("prefix_iterations_total").Inc() // want `loop-invariant Counter lookup`
	}
}

// perLabelLoop selects a different series per iteration via the loop
// variable, which is the sanctioned per-benchmark/per-variant pattern.
func perLabelLoop(reg *obs.Registry, names []string) {
	for _, b := range names {
		reg.Counter("prefix_runs_total", "benchmark", b).Inc()
	}
}

// hoisted is the fix for hotLoop.
func hoisted(reg *obs.Registry, n int) {
	c := reg.Counter("prefix_iterations_total")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// legacy demonstrates the accepted suppression.
func legacy(reg *obs.Registry) {
	//lint:ignore metricname demo: legacy series name kept for dashboard compatibility
	reg.Counter("legacy_total").Inc()
}
