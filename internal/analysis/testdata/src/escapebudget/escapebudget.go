// Package escapebudget is the escapebudget golden. The committed
// escape-budget.json next to this file (dir-local budgets take
// precedence over the repo-level one) encodes: a function whose budget
// allows no escapes but which now moves a variable to the heap, a
// function the budget requires to stay inlinable but which has grown
// past the inlining cost ceiling, a function with no budget entry at
// all, a suppressed finding, and a clean in-budget function.
package escapebudget

//prefix:hotpath
func grewEscape() *int { // want `new heap escape in hot-path function escapebudget.grewEscape`
	x := 7
	return &x
}

//prefix:hotpath
func lostInline(a, b uint64) uint64 { // want `lost inlinability`
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 3
	b ^= a << 5
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 7
	b ^= a << 9
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 11
	b ^= a << 13
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 15
	b ^= a << 17
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 19
	b ^= a << 21
	a = a*31 + b
	b = b*17 + a
	a ^= b >> 23
	b ^= a << 25
	a = a*31 + b
	b = b*17 + a
	return a ^ b
}

//prefix:hotpath
func missingEntry(a, b int) int { // want `no escape-budget entry for escapebudget.missingEntry`
	return a + b
}

//prefix:hotpath
func suppressedEscape() *int { //lint:ignore escapebudget returning a pointer is this function's contract
	y := 9
	return &y
}

//prefix:hotpath
func clean(a, b int) int {
	return a*b + a
}
