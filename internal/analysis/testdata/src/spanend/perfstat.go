// perfstat.go extends the spanend golden to perfstat scopes: a
// Collector.Begin acquisition follows the same End-on-all-paths rule as
// Tracer.Start, including when the scope is chained through AttachSpan.
package spanend

import (
	"prefix/internal/obs"
	"prefix/internal/obs/perfstat"
)

// perfMissingEnd never ends the scope: the host sample is dropped.
func perfMissingEnd(perf *perfstat.Collector) {
	sc := perf.Begin("simulate") // want `missing sc\.End\(\)`
	sc.AddEvents(100)
}

// perfDiscarded loses the scope entirely.
func perfDiscarded(perf *perfstat.Collector) {
	perf.Begin("simulate") // want `span is discarded`
}

// perfDeferred is the canonical healthy shape.
func perfDeferred(perf *perfstat.Collector) {
	sc := perf.Begin("simulate")
	defer sc.End()
	sc.AddEvents(100)
}

// perfSameBlock ends explicitly in the acquisition's own block.
func perfSameBlock(perf *perfstat.Collector) perfstat.Sample {
	sc := perf.Begin("simulate")
	sc.AddEvents(100)
	return sc.End()
}

// perfConditional ends the scope on only one path.
func perfConditional(perf *perfstat.Collector, fail bool) {
	sc := perf.Begin("simulate") // want `only called on some paths`
	if !fail {
		sc.End()
	}
}

// perfAttachChainDeferred mirrors the CLIs: Begin chained through
// AttachSpan binds the same scope, and the deferred End satisfies it.
func perfAttachChainDeferred(perf *perfstat.Collector, root *obs.Span) {
	sc := perf.Begin("run").AttachSpan(root)
	defer sc.End()
}

// perfAttachChainMissing must still be caught through the chain.
func perfAttachChainMissing(perf *perfstat.Collector, root *obs.Span) {
	sc := perf.Begin("run").AttachSpan(root) // want `missing sc\.End\(\)`
	sc.AddEvents(1)
}

// perfHandedOff transfers ownership to the callee.
func perfHandedOff(perf *perfstat.Collector) {
	sc := perf.Begin("simulate")
	endElsewhere(sc)
}

func endElsewhere(sc *perfstat.Scope) {
	sc.End()
}
