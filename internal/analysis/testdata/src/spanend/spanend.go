// Package spanend is the spanend golden: every span acquired from the
// real prefix/internal/obs tracer must reach End() on all paths.
package spanend

import "prefix/internal/obs"

// missingEnd never ends the span.
func missingEnd(tr *obs.Tracer) {
	span := tr.Start("phase") // want `missing span\.End\(\)`
	span.Set("k", 1)
}

// discarded loses the span entirely.
func discarded(tr *obs.Tracer) {
	tr.Start("phase") // want `span is discarded`
}

// toBlank throws the span away explicitly.
func toBlank(tr *obs.Tracer) {
	_ = tr.Start("phase") // want `assigned to _`
}

// conditional ends the span on only one path.
func conditional(tr *obs.Tracer, fail bool) {
	span := tr.Start("phase") // want `only called on some paths`
	if fail {
		span.End()
	}
}

// childMissing applies the same rule to Span.Child.
func childMissing(parent *obs.Span) {
	child := parent.Child("sub") // want `missing child\.End\(\)`
	child.Set("k", 1)
}

// deferred is the canonical correct shape.
func deferred(tr *obs.Tracer) {
	span := tr.Start("phase")
	defer span.End()
}

// deferredClosure ends the span inside a deferred closure.
func deferredClosure(tr *obs.Tracer) {
	span := tr.Start("phase")
	defer func() {
		span.Set("done", true)
		span.End()
	}()
}

// explicit ends parent and child in the acquisition block.
func explicit(tr *obs.Tracer) {
	span := tr.Start("phase")
	child := span.Child("sub")
	child.End()
	span.End()
}

// errPath ends on the error path and on the fall-through path; the
// same-block End covers straight-line flow.
func errPath(tr *obs.Tracer, f func() error) error {
	span := tr.Start("phase")
	if err := f(); err != nil {
		span.End()
		return err
	}
	span.End()
	return nil
}

// handoff transfers ownership to another function.
func handoff(tr *obs.Tracer) {
	span := tr.Start("phase")
	finish(span)
}

func finish(s *obs.Span) { s.End() }

// returned transfers ownership to the caller.
func returned(tr *obs.Tracer) *obs.Span {
	span := tr.Start("phase")
	return span
}

// leftOpen demonstrates the accepted suppression.
func leftOpen(tr *obs.Tracer) {
	//lint:ignore spanend demo: harness cuts this span off at process exit by design
	span := tr.Start("phase")
	span.Set("k", 1)
}
