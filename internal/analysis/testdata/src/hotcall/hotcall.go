// Package hotcall is the hotcall golden: defer/go statements, dynamic
// dispatch, and calls to unannotated module functions inside
// //prefix:hotpath functions are findings. Callees in packages outside
// the analysis run (here: the standard library) are tolerated.
package hotcall

import "sort"

type recorder interface{ Record(int) }

type hooks struct{ fire func() }

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

//prefix:hotpath
func (c *counter) hotBump() { c.n++ }

//prefix:hotpath
func hotDefer(c *counter) {
	defer c.bump() // want `defer in hot-path function hotDefer`
	c.n++
}

//prefix:hotpath
func hotGo(c *counter) {
	go c.bump() // want `go statement in hot-path function hotGo`
}

//prefix:hotpath
func hotIface(r recorder, n int) {
	for i := 0; i < n; i++ {
		r.Record(i) // want `interface method call .*Record dispatches dynamically`
	}
}

//prefix:hotpath
func hotCallsCold(c *counter) {
	c.bump() // want `call to hotcall.counter.bump in hot-path function hotCallsCold: callee is not marked`
}

//prefix:hotpath
func hotCallsHot(c *counter) {
	c.hotBump()
}

//prefix:hotpath
func hotFuncValue(f func()) {
	f() // want `dynamic call through func value f`
}

//prefix:hotpath
func hotFieldCall(h *hooks) {
	h.fire() // want `dynamic call through func-valued field fire`
}

//prefix:hotpath
func hotSuppressed(c *counter) {
	//lint:ignore hotcall cold branch: runs once per simulation, not per event
	c.bump()
}

//prefix:hotpath
func hotStdlib(vals []int) {
	sort.Ints(vals) // clean: sort is outside the analyzed module
}

// coldDefer is unannotated: the analyzer does not walk it.
func coldDefer(c *counter) {
	defer c.bump()
	go c.bump()
}
