// Package hotalloc is the hotalloc golden: allocation-inducing
// constructs inside //prefix:hotpath functions are findings, the same
// constructs in unannotated functions are not, and //lint:ignore
// hotalloc suppresses a finding in place.
package hotalloc

import "fmt"

type counters struct {
	vals []uint64
	m    map[string]int
}

//prefix:hotpath
func hotBuiltins(n int) []int {
	buf := make([]int, n) // want `make allocates in hot-path function hotBuiltins`
	p := new(int)         // want `new allocates`
	_ = p
	return append(buf, n) // want `append may grow its backing array`
}

//prefix:hotpath
func hotLiterals(c *counters) {
	c.vals = []uint64{1, 2} // want `slice literal allocates`
	c.m = map[string]int{}  // want `map literal allocates`
	c.m["k"] = 1            // want `map write may allocate`
	_ = &counters{}         // want `&composite literal allocates`
}

//prefix:hotpath
func hotStrings(name string, bs []byte) string {
	s := name + "!"  // want `string concatenation allocates`
	s += name        // want `string concatenation allocates`
	_ = string(bs)   // want `conversion to string allocates`
	_ = []byte(name) // want `conversion from string allocates`
	return s
}

func sink(v any) { _ = v }

//prefix:hotpath
func hotFmtAndBoxing(x int) {
	fmt.Println(x) // want `fmt.Println allocates`
	sink(x)        // want `argument boxes into any`
}

//prefix:hotpath
func hotClosure(limit int) int {
	total := 0
	add := func(v int) { total += v } // want `closure capturing total allocates`
	add(limit)
	return total
}

//prefix:hotpath
func hotSuppressed(buf []int, n int) []int {
	//lint:ignore hotalloc caller reserves capacity; this append never grows
	return append(buf, n)
}

//prefix:hotpath
func hotClean(buf []int, n int) int {
	sum := 0
	for _, v := range buf {
		sum += v
	}
	return sum + n
}

// coldAlloc uses every flagged construct without the annotation: the
// analyzer only walks //prefix:hotpath functions.
func coldAlloc(n int) []int {
	m := map[string]int{"k": n}
	_ = fmt.Sprint(n)
	return append(make([]int, 0), m["k"])
}
