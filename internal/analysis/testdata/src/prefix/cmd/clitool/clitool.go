// Package clitool is the nodeterminism golden for the CLI scope: since
// the scope widened from prefix/internal/... to prefix/cmd/..., bare
// wall-clock reads in commands are findings unless suppressed with a
// reason (CLIs may timestamp artifacts, but each site must say why).
package clitool

import "time"

func stampUnsuppressed() time.Time {
	return time.Now() // want `non-deterministic time.Now`
}

func stampSuppressed() time.Time {
	//lint:ignore nodeterminism output-file timestamp only; never enters a report
	return time.Now()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `non-deterministic time.Since`
}
