// Package machine is the nodeterminism golden. Its import path places
// it inside the deterministic scope (prefix/internal/...), so every
// wall-clock, environment, randomness, and host-CPU access below must
// be flagged unless suppressed.
package machine

import (
	"math/rand" // want `non-deterministic import "math/rand"`
	"os"
	"runtime"
	"time"
)

// now reads the wall clock directly instead of an injected clock.
func now() time.Time {
	return time.Now() // want `non-deterministic time\.Now`
}

// since derives a duration from the wall clock.
func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `non-deterministic time\.Since`
}

// seed consumes the forbidden generator (the import line carries the
// diagnostic; uses of the package need no further report).
func seed() int {
	return rand.Int()
}

// env reads configuration from the environment.
func env() string {
	return os.Getenv("PREFIX_DEBUG") // want `non-deterministic os\.Getenv`
}

// hostCPUs sizes work by the host.
func hostCPUs() int {
	return runtime.NumCPU() // want `non-deterministic runtime\.NumCPU`
}

// defaultJobs demonstrates the accepted suppression: a concurrency
// default that can never change results.
func defaultJobs() int {
	//lint:ignore nodeterminism concurrency default only; results are order-indexed and jobs-independent
	return runtime.GOMAXPROCS(0)
}

// clock is the sanctioned injected-clock pattern: the one wall-clock
// default is suppressed with a reason, everything else flows through
// the injected func.
type clock struct {
	now func() time.Time
}

func newClock() *clock {
	//lint:ignore nodeterminism the injected clock needs exactly one wall-clock default
	return &clock{now: time.Now}
}

func (c *clock) stamp() time.Time { return c.now() }

var _ = now
var _ = since
var _ = seed
var _ = env
var _ = hostCPUs
var _ = defaultJobs
var _ = newClock
var _ = (*clock).stamp
