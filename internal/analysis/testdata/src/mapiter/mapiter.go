// Package mapiter is the mapiter golden: map iteration order must never
// reach an io.Writer or escape in an unsorted slice.
package mapiter

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// export writes rows in map order — the classic nondeterministic-report
// bug.
func export(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches an io\.Writer`
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// buildString leaks map order through a strings.Builder's Write methods.
func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order reaches an io\.Writer`
		b.WriteString(k)
	}
	return b.String()
}

// collectUnsorted returns keys in map order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `escapes unsorted`
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the sanctioned fix: collect, then sort before the
// slice escapes.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSlice also counts: sort.Slice on the collected values.
func sortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// nestedCollect appends inside a map range nested in an outer loop and
// sorts after the outer loop; the analyzer must look past the inner
// enclosing block to see the sort.
func nestedCollect(ms []map[string]int) []string {
	var keys []string
	for _, m := range ms {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// nestedUnsorted is the same shape with no sort anywhere; still flagged.
func nestedUnsorted(ms []map[string]int) []string {
	var keys []string
	for _, m := range ms {
		for k := range m { // want `escapes unsorted`
			keys = append(keys, k)
		}
	}
	return keys
}

// aggregate only folds values; order cannot leak.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// copyMap feeds another map; insertion order is invisible.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// exportVetted demonstrates the accepted suppression.
func exportVetted(w io.Writer, m map[string]int) {
	//lint:ignore mapiter demo: the caller deduplicates and sorts the merged output
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
