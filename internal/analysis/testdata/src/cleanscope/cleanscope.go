// Package cleanscope exercises the same constructs as the in-scope
// nodeterminism golden but lives OUTSIDE prefix/internal, so the
// analyzer must stay silent: command-line and example code may read the
// wall clock and the environment.
package cleanscope

import (
	"os"
	"runtime"
	"time"
)

func now() time.Time { return time.Now() }

func since(t0 time.Time) time.Duration { return time.Since(t0) }

func env() string { return os.Getenv("PREFIX_DEBUG") }

func hostCPUs() int { return runtime.NumCPU() }

var _ = now
var _ = since
var _ = env
var _ = hostCPUs
