package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// Metricname enforces the obs metric naming contract established when
// the registry was introduced: series names are compile-time constants
// in snake_case under a sanctioned namespace (prefix_, pipeline_,
// analysis_), counters carry the Prometheus _total suffix, and
// instruments are not looked up redundantly inside loops (the
// name+labels map lookup is cheap but not free, and the hot simulation
// loops must not pay it per iteration).
//
// The prefix_perf_ family (the perfstat host-cost series) additionally
// requires an explicit unit suffix, so host-cost dashboards never have
// to guess whether a number is nanoseconds, bytes, or a rate: counters
// end in <unit>_total (nanos/bytes/events/allocs/cycles/scopes/samples),
// gauges end in a rate or unit word (per_sec/goroutines/bytes/nanos/
// ratio/count), histograms in seconds/nanos/bytes.
//
// The prefix_attrib_ family (the per-site attribution series) carries
// the analogous discipline: counters name what they count before _total
// (accesses/hits/misses/prefetches/cycles/bytes/objects/decisions),
// gauges end in share/pct/ratio/cycles/count/bytes.
//
// A lookup inside a loop is fine when its arguments depend on the loop
// (a per-benchmark or per-variant label set selects a different series
// each iteration); a loop-invariant lookup should be hoisted.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc: "enforce snake_case namespaced obs metric names, _total counter " +
		"suffix, and no loop-invariant instrument lookups inside loops",
	Run: runMetricname,
}

// metricNameRE: sanctioned namespace, then snake_case words.
var metricNameRE = regexp.MustCompile(`^(prefix|pipeline|analysis)_[a-z0-9]+(_[a-z0-9]+)*$`)

// perfFamilyPrefix marks the host-cost series with unit-suffix rules.
const perfFamilyPrefix = "prefix_perf_"

// perf-family unit suffixes, per instrument kind.
var (
	perfCounterRE   = regexp.MustCompile(`_(nanos|bytes|events|allocs|cycles|scopes|samples)_total$`)
	perfGaugeRE     = regexp.MustCompile(`_(per_sec|goroutines|bytes|nanos|ratio|count)$`)
	perfHistogramRE = regexp.MustCompile(`_(seconds|nanos|bytes)$`)
)

// attribFamilyPrefix marks the per-site attribution series, which carry
// the same discipline as the perf family: a per-site dashboard must
// never guess what a number counts or whether a gauge is a share or a
// cycle count.
const attribFamilyPrefix = "prefix_attrib_"

// attrib-family suffixes, per instrument kind.
var (
	attribCounterRE   = regexp.MustCompile(`_(accesses|hits|misses|prefetches|cycles|bytes|objects|decisions)_total$`)
	attribGaugeRE     = regexp.MustCompile(`_(share|pct|ratio|cycles|count|bytes)$`)
	attribHistogramRE = regexp.MustCompile(`_(seconds|nanos|bytes|cycles)$`)
)

// isRegistryMethod reports whether call is obs.Registry.Counter/Gauge/
// Histogram and returns the method name.
func isRegistryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Counter" && name != "Gauge" && name != "Histogram" {
		return "", false
	}
	recv := info.Types[sel.X].Type
	if recv == nil {
		return "", false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return "", false
	}
	return name, true
}

func runMetricname(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		InspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := isRegistryMethod(info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			checkMetricCall(pass, call, method, stack)
			return true
		})
	}
	return nil
}

func checkMetricCall(pass *Pass, call *ast.CallExpr, method string, stack []ast.Node) {
	nameArg := call.Args[0]
	tv := pass.TypesInfo.Types[nameArg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(),
			"metric name must be a compile-time constant so the series inventory is auditable")
	} else {
		name := constant.StringVal(tv.Value)
		switch {
		case !metricNameRE.MatchString(name):
			pass.Reportf(nameArg.Pos(),
				"metric name %q must be snake_case under a prefix_/pipeline_/analysis_ namespace", name)
		case method == "Counter" && !strings.HasSuffix(name, "_total"):
			pass.Reportf(nameArg.Pos(), "counter %q must end in _total (Prometheus counter convention)", name)
		case method != "Counter" && strings.HasSuffix(name, "_total"):
			pass.Reportf(nameArg.Pos(), "%s %q must not end in _total; that suffix is reserved for counters",
				strings.ToLower(method), name)
		case strings.HasPrefix(name, perfFamilyPrefix):
			checkPerfFamily(pass, nameArg, method, name)
		case strings.HasPrefix(name, attribFamilyPrefix):
			checkAttribFamily(pass, nameArg, method, name)
		}
	}

	// Loop-invariant lookup inside a loop: every argument resolves to
	// objects declared outside the innermost enclosing loop, so the call
	// returns the same instrument each iteration — hoist it.
	loop := enclosingLoop(stack)
	if loop == nil {
		return
	}
	for _, arg := range call.Args {
		if dependsOnRange(pass.TypesInfo, arg, loop) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"loop-invariant %s lookup inside a loop; hoist the instrument out of the loop", method)
}

// checkPerfFamily applies the unit-suffix rules to prefix_perf_ series.
// The general rules have already passed, so a Counter here is known to
// end in _total; what's checked is the unit word in front of it.
func checkPerfFamily(pass *Pass, nameArg ast.Expr, method, name string) {
	switch method {
	case "Counter":
		if !perfCounterRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"perf counter %q must name its unit before _total (nanos/bytes/events/allocs/cycles/scopes/samples)", name)
		}
	case "Gauge":
		if !perfGaugeRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"perf gauge %q must end in a rate or unit suffix (per_sec/goroutines/bytes/nanos/ratio/count)", name)
		}
	case "Histogram":
		if !perfHistogramRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"perf histogram %q must end in a unit suffix (seconds/nanos/bytes)", name)
		}
	}
}

// checkAttribFamily applies the suffix rules to prefix_attrib_ series.
// The general rules have already passed, so a Counter here is known to
// end in _total; what's checked is the counted-thing word in front of it.
func checkAttribFamily(pass *Pass, nameArg ast.Expr, method, name string) {
	switch method {
	case "Counter":
		if !attribCounterRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"attrib counter %q must name what it counts before _total (accesses/hits/misses/prefetches/cycles/bytes/objects/decisions)", name)
		}
	case "Gauge":
		if !attribGaugeRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"attrib gauge %q must end in a share or unit suffix (share/pct/ratio/cycles/count/bytes)", name)
		}
	case "Histogram":
		if !attribHistogramRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(),
				"attrib histogram %q must end in a unit suffix (seconds/nanos/bytes/cycles)", name)
		}
	}
}

// enclosingLoop returns the innermost for/range statement enclosing the
// node whose ancestor stack is given, without crossing a function
// boundary.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// dependsOnRange reports whether expr references any object declared
// within loop (the loop variables or anything created in its body).
func dependsOnRange(info *types.Info, expr ast.Expr, loop ast.Node) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil || !obj.Pos().IsValid() {
			return true
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
			found = true
		}
		return !found
	})
	return found
}
