package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Mapiter flags `for range` loops over maps whose iteration order can
// leak into output: a body that writes to an io.Writer, or that appends
// to a slice declared outside the loop which is never subsequently
// sorted. Go randomizes map iteration order, so either pattern makes
// report and export bytes differ run to run — the exact bug class the
// parallel harness had to fix by hand to keep -jobs N output identical.
//
// The sanctioned pattern — collect the keys, sort them, iterate the
// sorted slice — is recognized: an append-collect loop is accepted when
// the slice is later passed to a sort or slices call in the same block.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration whose order reaches an io.Writer or an " +
		"unsorted outer slice (nondeterministic output)",
	Run: runMapiter,
}

// ioWriter is a structurally-equal stand-in for io.Writer, so the check
// needs no dependency on the real io package's type object.
var ioWriter = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		),
		false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	iface.Complete()
	return iface
}()

func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ioWriter)
}

// receiverWrites reports whether a method call on recv can write to it:
// the type (or its pointer, which a method call takes implicitly)
// satisfies io.Writer.
func receiverWrites(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return types.Implements(types.NewPointer(t), ioWriter)
		}
	}
	return false
}

func runMapiter(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		InspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, stack)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one map-range body for order-leaking sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo

	// Sink 1: anything written to an io.Writer inside the body — the
	// write order is the (random) map order.
	reportedWriter := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reportedWriter {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if implementsWriter(info.Types[arg].Type) {
				pass.Reportf(rng.Pos(), "map iteration order reaches an io.Writer; iterate sorted keys instead")
				reportedWriter = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if strings.HasPrefix(sel.Sel.Name, "Write") && receiverWrites(info.Types[sel.X].Type) {
				pass.Reportf(rng.Pos(), "map iteration order reaches an io.Writer via %s; iterate sorted keys instead", sel.Sel.Name)
				reportedWriter = true
				return false
			}
		}
		return true
	})
	if reportedWriter {
		return
	}

	// Sink 2: appends to a slice declared outside the loop. Accepted when
	// the collected slice is sorted after the loop (the canonical
	// collect-then-sort fix); reported otherwise, because the slice's
	// element order is the map order.
	appended := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				continue
			}
			if bi, ok := info.Uses[fn].(*types.Builtin); !ok || bi.Name() != "append" {
				continue
			}
			base, ok := call.Args[0].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[base]
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
				appended[obj] = true
			}
		}
		return true
	})
	if len(appended) == 0 {
		return
	}
	for obj := range appended {
		if !sortedAfter(pass, rng, stack, obj) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %q, which escapes unsorted; sort it after the loop or iterate sorted keys",
				obj.Name())
		}
	}
}

// sortedAfter reports whether obj is passed into a sort or slices call
// in a statement after rng, in rng's enclosing block or any enclosing
// block out to the function boundary — collecting inside a nested loop
// and sorting after the outer loop is still the sanctioned pattern.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	inner := ast.Node(rng)
	for i := len(stack) - 1; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if sortedInBlockAfter(pass, outer, inner, obj) {
				return true
			}
		}
		inner = stack[i]
	}
	return false
}

// sortedInBlockAfter scans block statements after the one containing
// inner for a sort/slices call that references obj.
func sortedInBlockAfter(pass *Pass, block *ast.BlockStmt, inner ast.Node, obj types.Object) bool {
	after := false
	for _, stmt := range block.List {
		if stmt.Pos() <= inner.Pos() && inner.End() <= stmt.End() {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
