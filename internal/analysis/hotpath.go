package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //prefix:hotpath directive marks a function as part of the
// simulator's allocation-free fast path. The hotalloc and hotcall
// analyzers walk every annotated function body, and escapebudget diffs
// the compiler's escape/inline decisions for annotated functions
// against a committed budget file. The directive must appear in the
// function's doc comment group:
//
//	//prefix:hotpath
//	func (c *Cache) Access(addr mem.Addr) AccessResult { ... }
const hotpathDirective = "prefix:hotpath"

// isHotpathAnnotated reports whether the function declaration carries a
// //prefix:hotpath directive in its doc comment group.
func isHotpathAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective {
			return true
		}
	}
	return false
}

// funcQualifiedName returns the stable identity used for hot-path
// bookkeeping: "pkgpath.Func" for functions and "pkgpath.Recv.Func" for
// methods. Pointer receivers spell the same as value receivers so the
// name survives receiver refactors, and the same string is produced
// whether the *types.Func came from a declaration or a call site.
func funcQualifiedName(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name() // error.Error and other universe methods
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// A ModuleIndex is the cross-package view shared by the hot-path
// analyzer family: which packages were loaded in this run, and the
// qualified names of every //prefix:hotpath function among them. It is
// built once per RunAnalyzers call, so hotcall can distinguish "callee
// is a module function that is not annotated" (a finding) from "callee
// lives in a package outside this run" (tolerated — partial patterns
// and the go vet unit protocol analyze one package at a time).
type ModuleIndex struct {
	pkgs map[string]bool
	hot  map[string]bool
}

// HasPackage reports whether the package path was loaded in this run.
func (ix *ModuleIndex) HasPackage(path string) bool {
	return ix != nil && ix.pkgs[path]
}

// Annotated reports whether the qualified function name (see
// funcQualifiedName) carries //prefix:hotpath.
func (ix *ModuleIndex) Annotated(qualified string) bool {
	return ix != nil && ix.hot[qualified]
}

// buildModuleIndex scans every loaded package for //prefix:hotpath
// declarations. Identity is by qualified-name string, not types.Object,
// because the source importer re-type-checks imported packages: the
// *types.Func seen at a cross-package call site is a different object
// from the one at the declaration.
func buildModuleIndex(pkgs []*Package) *ModuleIndex {
	ix := &ModuleIndex{pkgs: make(map[string]bool), hot: make(map[string]bool)}
	for _, pkg := range pkgs {
		ix.pkgs[pkg.Types.Path()] = true
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !isHotpathAnnotated(fd) {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ix.hot[funcQualifiedName(fn)] = true
				}
			}
		}
	}
	return ix
}

// hotFuncDecls returns the //prefix:hotpath function declarations in
// the pass's package, paired with their display names for diagnostics.
func hotFuncDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && isHotpathAnnotated(fd) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declDisplayName renders a FuncDecl as Recv.Name or Name for messages.
func declDisplayName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
	}
	return decl.Name.Name
}

// calleeFunc resolves the statically-known *types.Func a call
// expression targets, or nil for builtins, conversions, and dynamic
// calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
