// Package analysis is the repo's static-analysis layer: a small,
// dependency-free analyzer framework in the shape of
// golang.org/x/tools/go/analysis, plus the suite of analyzers that
// mechanically enforce the invariants the reproduction's evaluation
// rests on — trace determinism (no wall clock, no math/rand, no
// environment reads in result-affecting code), byte-identical report
// output at any -jobs count (no map-ordered writes), span lifecycle
// hygiene (every Start/Child reaches End), and obs metric naming
// discipline.
//
// The framework is built directly on go/ast and go/types because the
// build environment bakes in only the standard library; the Analyzer
// and Pass types mirror x/tools so the analyzers could be ported to a
// real multichecker by swapping the driver.
//
// Diagnostics can be suppressed with a directive comment on the same
// line or the line directly above the flagged position:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a malformed directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package through the Pass and reports findings via
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. It may return an error for internal
	// failures; invariant violations go through Pass.Reportf instead.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the cross-package hot-path index for the whole run (all
	// packages passed to RunAnalyzers), shared by the hotalloc/hotcall/
	// escapebudget family.
	Module *ModuleIndex

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, with its position resolved.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	file      string
	line      int
}

const ignorePrefix = "lint:ignore"

// parseDirectives extracts every //lint:ignore directive from the
// package's comments. Malformed directives (no analyzer list or no
// reason) are reported through report under the pseudo-analyzer "lint".
func parseDirectives(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
					})
					continue
				}
				set := make(map[string]bool)
				for _, n := range strings.Split(names, ",") {
					set[strings.TrimSpace(n)] = true
				}
				out = append(out, ignoreDirective{analyzers: set, file: pos.Filename, line: pos.Line})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on its own
// line or the line directly above it.
func suppressed(d Diagnostic, directives []ignoreDirective) bool {
	for _, dir := range directives {
		if dir.file != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every package, applies
// //lint:ignore suppressions, and returns the surviving diagnostics
// sorted by position. Analyzer-internal errors are returned as an error
// after all packages have been visited.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	module := buildModuleIndex(pkgs)
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) {
			d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
			raw = append(raw, d)
		}
		directives := parseDirectives(pkg.Fset, pkg.Files, collect)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    module,
				report:    collect,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, pkg.Path, err))
			}
		}
		for _, d := range raw {
			if !suppressed(d, directives) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if len(errs) > 0 {
		return diags, fmt.Errorf("analysis failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return diags, nil
}

// InspectWithStack walks the AST rooted at n depth-first, calling f with
// each node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false skips the node's children.
func InspectWithStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(node, stack) {
			return false
		}
		stack = append(stack, node)
		return true
	})
}
