package analysis

// All returns the full prefix-lint analyzer suite in reporting order.
// Every analyzer must be registered here: the goldens in testdata look
// their analyzer up by name through this registry, so dropping a
// registration fails that analyzer's test, not just the CLI.
func All() []*Analyzer {
	return []*Analyzer{
		Nodeterminism,
		Mapiter,
		Spanend,
		Metricname,
		Hotalloc,
		Hotcall,
		Escapebudget,
	}
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
