package analysis_test

import (
	"testing"

	"prefix/internal/analysis"
	"prefix/internal/analysis/analysistest"
)

// mustLookup fetches an analyzer through the registry, so deleting a
// registration from All() fails that analyzer's golden test here rather
// than only going dark in the CLI.
func mustLookup(t *testing.T, name string) *analysis.Analyzer {
	t.Helper()
	a := analysis.Lookup(name)
	if a == nil {
		t.Fatalf("analyzer %q is not registered in analysis.All()", name)
	}
	return a
}

func TestNodeterminismGolden(t *testing.T) {
	// The golden's import path puts it inside the deterministic scope.
	analysistest.Run(t, mustLookup(t, "nodeterminism"), "prefix/internal/machine")
}

func TestNodeterminismOutOfScope(t *testing.T) {
	// Identical constructs outside prefix/internal must stay silent.
	analysistest.Run(t, mustLookup(t, "nodeterminism"), "cleanscope")
}

func TestMapiterGolden(t *testing.T) {
	analysistest.Run(t, mustLookup(t, "mapiter"), "mapiter")
}

func TestSpanendGolden(t *testing.T) {
	analysistest.Run(t, mustLookup(t, "spanend"), "spanend")
}

func TestMetricnameGolden(t *testing.T) {
	analysistest.Run(t, mustLookup(t, "metricname"), "metricname")
}

func TestHotallocGolden(t *testing.T) {
	analysistest.Run(t, mustLookup(t, "hotalloc"), "hotalloc")
}

func TestHotcallGolden(t *testing.T) {
	analysistest.Run(t, mustLookup(t, "hotcall"), "hotcall")
}

func TestEscapebudgetGolden(t *testing.T) {
	// The golden directory carries its own escape-budget.json, which
	// takes precedence over the repo-level budget; its entries encode a
	// grown escape, a lost inline, a missing entry, a suppressed
	// finding, and a clean function.
	analysistest.Run(t, mustLookup(t, "escapebudget"), "escapebudget")
}

func TestNodeterminismCmdScope(t *testing.T) {
	// Satellite: the deterministic scope now covers the CLIs too.
	analysistest.Run(t, mustLookup(t, "nodeterminism"), "prefix/cmd/clitool")
}

func TestAllRegistered(t *testing.T) {
	want := []string{"nodeterminism", "mapiter", "spanend", "metricname",
		"hotalloc", "hotcall", "escapebudget"}
	got := analysis.All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Doc == "" || got[i].Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", name)
		}
	}
}
