package context

import (
	"testing"

	"prefix/internal/mem"
)

// rec builds an AllocRecord.
func rec(site mem.SiteID, obj mem.ObjectID, hot bool) AllocRecord {
	return AllocRecord{Site: site, Object: obj, Hot: hot}
}

func TestBuildAssignmentEmpty(t *testing.T) {
	a, err := BuildAssignment([]AllocRecord{rec(1, 1, false)}, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 0 || a.NumSites() != 0 {
		t.Error("no hot allocations should produce no counters")
	}
}

func TestTandemSitesShareCounter(t *testing.T) {
	// The mcf shape: three sites allocate in rounds; round 0 is hot.
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	for round := 0; round < 5; round++ {
		for site := mem.SiteID(1); site <= 3; site++ {
			allocs = append(allocs, rec(site, obj, round == 0))
			obj++
		}
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 1 {
		t.Fatalf("counters = %d, want 1 (tandem sharing)", a.NumCounters())
	}
	c := a.Counters[0]
	if c.Kind != KindFixed {
		t.Errorf("kind = %v", c.Kind)
	}
	// Shared ids of the three hot objects are {1,2,3}.
	for id := mem.Instance(1); id <= 3; id++ {
		if _, ok := c.HotIDs[id]; !ok {
			t.Errorf("shared id %d missing", id)
		}
	}
}

func TestTwoPhaseGroupsGetTwoCounters(t *testing.T) {
	// Two tandem groups separated in time: shared ids would fragment, so
	// they must not merge (the mcf "(6, 2)" shape).
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	addGroup := func(base mem.SiteID) {
		for round := 0; round < 5; round++ {
			for s := base; s < base+3; s++ {
				allocs = append(allocs, rec(s, obj, round == 0))
				obj++
			}
		}
	}
	addGroup(1)
	addGroup(4)
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 2 {
		t.Fatalf("counters = %d, want 2", a.NumCounters())
	}
	if a.NumSites() != 6 {
		t.Errorf("sites = %d, want 6", a.NumSites())
	}
}

func TestBlockAllocationsDoNotShare(t *testing.T) {
	// Two all-hot sites allocating in long blocks (not tandem): merging
	// would form an "All" pattern, but the block structure is input-size
	// dependent, so the tandem-run guard must keep them apart.
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	for i := 0; i < 20; i++ {
		allocs = append(allocs, rec(1, obj, true))
		obj++
	}
	for i := 0; i < 20; i++ {
		allocs = append(allocs, rec(2, obj, true))
		obj++
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 2 {
		t.Fatalf("counters = %d, want 2 (block sites must not share)", a.NumCounters())
	}
	for _, c := range a.Counters {
		if c.Kind != KindAll {
			t.Errorf("kind = %v, want all", c.Kind)
		}
	}
}

func TestInterleavedAllHotShare(t *testing.T) {
	// Pairwise interleaved all-hot sites (the health patient/cell shape)
	// share one All counter.
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	for i := 0; i < 20; i++ {
		allocs = append(allocs, rec(1, obj, true))
		obj++
		allocs = append(allocs, rec(2, obj, true))
		obj++
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 1 || a.Counters[0].Kind != KindAll {
		t.Fatalf("want one shared All counter, got %d (%v)", a.NumCounters(), a.Counters[0].Kind)
	}
}

func TestAlternatingHotGivesRegular(t *testing.T) {
	// One site allocating header (hot), body (cold) pairs: Regular ids.
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	for i := 0; i < 10; i++ {
		allocs = append(allocs, rec(1, obj, true))
		obj++
		allocs = append(allocs, rec(1, obj, false))
		obj++
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 1 {
		t.Fatalf("counters = %d", a.NumCounters())
	}
	c := a.Counters[0]
	if c.Kind != KindRegular || c.Pattern.Step != 2 {
		t.Errorf("pattern = %+v", c.Pattern)
	}
}

func TestDegradeToLargeFixed(t *testing.T) {
	// Hot ids with many runs exceed MaxRuns but a single site must still
	// be instrumented (degraded explicit fixed set).
	var allocs []AllocRecord
	obj := mem.ObjectID(1)
	for i := 1; i <= 30; i++ {
		hot := i%5 == 1 || i%7 == 0 // irregular
		allocs = append(allocs, rec(1, obj, hot))
		obj++
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCounters() != 1 {
		t.Fatalf("counters = %d", a.NumCounters())
	}
	if a.Counters[0].Kind != KindFixed {
		t.Errorf("kind = %v", a.Counters[0].Kind)
	}
}

func TestHotIDsMapToObjects(t *testing.T) {
	allocs := []AllocRecord{
		rec(1, 100, false),
		rec(1, 101, true),
		rec(1, 102, false),
		rec(1, 103, true),
	}
	a, err := BuildAssignment(allocs, DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := a.Counters[0]
	if c.HotIDs[2] != 101 || c.HotIDs[4] != 103 {
		t.Errorf("hot ids = %v", c.HotIDs)
	}
}

func TestRuns(t *testing.T) {
	if runs(nil) != 0 {
		t.Error("empty runs")
	}
	if runs(insts(1, 2, 3)) != 1 {
		t.Error("contiguous should be 1 run")
	}
	if runs(insts(1, 2, 5, 6, 9)) != 3 {
		t.Error("expected 3 runs")
	}
}
