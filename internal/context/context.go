// Package context implements PreFix's new context definition (§2.2.1):
// identifying hot dynamic objects by (static malloc site, dynamic
// allocation instance) instead of by calling context.
//
// For each malloc site that allocates hot objects the package inspects the
// hot instance ids and classifies them into one of the paper's three
// pattern categories:
//
//	Fixed   — an explicit small set of instances, e.g. {1, 3, 8};
//	Regular — an arithmetic progression, e.g. {1, 3, 5, …, 15};
//	All     — every instance the site allocates is hot.
//
// It also discovers counter-sharing opportunities: multiple sites that
// allocate in tandem can share one runtime counter if, when their
// allocation events are merged in trace order, the hot ids under the
// shared counter still follow a supported pattern (§2.2.1: "sharing is
// simulated over the allocation trace").
package context

import (
	"fmt"
	"sort"

	"prefix/internal/mem"
)

// PatternKind is the paper's category of object-id patterns.
type PatternKind uint8

const (
	// KindFixed matches an explicit set of instance ids.
	KindFixed PatternKind = iota + 1
	// KindRegular matches an arithmetic progression of instance ids.
	KindRegular
	// KindAll matches every instance.
	KindAll
)

func (k PatternKind) String() string {
	switch k {
	case KindFixed:
		return "fixed"
	case KindRegular:
		return "regular"
	case KindAll:
		return "all"
	default:
		return fmt.Sprintf("PatternKind(%d)", uint8(k))
	}
}

// Pattern matches dynamic instance ids. Exactly one representation is
// active depending on Kind.
type Pattern struct {
	Kind PatternKind
	// Fixed set, sorted ascending (KindFixed).
	Set []mem.Instance
	// Arithmetic progression Start, Start+Step, … for Count terms
	// (KindRegular).
	Start mem.Instance
	Step  mem.Instance
	Count uint64

	fixed map[mem.Instance]bool // lazy lookup index for KindFixed
}

// Matches reports whether instance id is matched by the pattern. This is
// the runtime "Hot Object Check" of Figure 4; it is O(1).
func (p *Pattern) Matches(id mem.Instance) bool {
	switch p.Kind {
	case KindAll:
		return true
	case KindRegular:
		if id < p.Start || p.Step == 0 {
			return p.Step == 0 && id == p.Start && p.Count > 0
		}
		d := id - p.Start
		if d%p.Step != 0 {
			return false
		}
		return uint64(d/p.Step) < p.Count
	case KindFixed:
		if p.fixed == nil {
			p.fixed = make(map[mem.Instance]bool, len(p.Set))
			for _, v := range p.Set {
				p.fixed[v] = true
			}
		}
		return p.fixed[id]
	default:
		return false
	}
}

// CheckInstr is the modeled dynamic instruction cost of one pattern check
// at a malloc site (counter bump + compare/lookup). The paper's Table 1
// calls this "limited lightweight instrumentation".
func (p *Pattern) CheckInstr() uint64 {
	switch p.Kind {
	case KindAll:
		return 2 // counter bump + unconditional placement
	case KindRegular:
		return 5 // bump, sub, mod, bound check
	case KindFixed:
		return 6 // bump + hash/table probe
	default:
		return 0
	}
}

// Describe renders the pattern as a classification reason against the
// observed total allocation count, e.g. "regular ids: start 3 step 2 for
// 8 of 57 instances". Decision-ledger entries and reports use it; it is
// purely descriptive.
func (p *Pattern) Describe(total uint64) string {
	switch p.Kind {
	case KindAll:
		return fmt.Sprintf("all ids: every one of %d instances is hot", total)
	case KindRegular:
		return fmt.Sprintf("regular ids: start %d step %d for %d of %d instances",
			p.Start, p.Step, p.Count, total)
	case KindFixed:
		return fmt.Sprintf("fixed ids: explicit set of %d of %d instances in %d consecutive runs",
			len(p.Set), total, runs(p.Set))
	default:
		return "unclassified"
	}
}

// Size returns how many instances the pattern matches (Count semantics
// for All are "unbounded", reported as 0).
func (p *Pattern) Size() uint64 {
	switch p.Kind {
	case KindFixed:
		return uint64(len(p.Set))
	case KindRegular:
		return p.Count
	default:
		return 0
	}
}

// Infer classifies hot instance ids for one site. hot must be sorted
// ascending and non-empty; total is the site's total dynamic allocation
// count in the profile.
func Infer(hot []mem.Instance, total uint64) (Pattern, error) {
	if len(hot) == 0 {
		return Pattern{}, fmt.Errorf("context: no hot instances")
	}
	if !sort.SliceIsSorted(hot, func(i, j int) bool { return hot[i] < hot[j] }) {
		return Pattern{}, fmt.Errorf("context: hot instances not sorted")
	}
	// All: the site only ever allocates hot objects.
	if uint64(len(hot)) == total && isContiguousFromOne(hot) {
		return Pattern{Kind: KindAll}, nil
	}
	// Regular: arithmetic progression with at least 3 terms and step ≥ 2
	// (a contiguous block of ids is a Fixed set in the paper's taxonomy;
	// Regular captures strided patterns like {1,3,5,…,15}).
	if len(hot) >= 3 {
		step := hot[1] - hot[0]
		if step > 1 {
			regular := true
			for i := 2; i < len(hot); i++ {
				if hot[i]-hot[i-1] != step {
					regular = false
					break
				}
			}
			if regular {
				return Pattern{
					Kind:  KindRegular,
					Start: hot[0],
					Step:  step,
					Count: uint64(len(hot)),
				}, nil
			}
		}
	}
	// Fixed: explicit set.
	return Pattern{Kind: KindFixed, Set: append([]mem.Instance(nil), hot...)}, nil
}

func isContiguousFromOne(ids []mem.Instance) bool {
	for i, v := range ids {
		if v != mem.Instance(i+1) {
			return false
		}
	}
	return true
}

// Counter is one runtime counter shared by one or more malloc sites, with
// the pattern over the shared instance ids and the mapping from shared id
// to the hot object it identifies.
type Counter struct {
	ID    int
	Sites []mem.SiteID
	Pattern
	// HotIDs maps a matching shared instance id to the object (from the
	// profiling trace) it identifies; the planner turns this into region
	// offsets.
	HotIDs map[mem.Instance]mem.ObjectID
	// Reason records why the counter got this classification (the
	// decision-ledger "why Fixed/Regular/All" entry).
	Reason string
}

// ShareDecision is one counter-sharing attempt from BuildAssignment's
// greedy trace simulation: the candidate site group, whether the merged
// ids still formed a supported pattern, and why.
type ShareDecision struct {
	Sites    []mem.SiteID `json:"sites"`
	Accepted bool         `json:"accepted"`
	Reason   string       `json:"reason"`
}

// Assignment is the full context product for a program: every relevant
// malloc site assigned to exactly one counter.
type Assignment struct {
	Counters []*Counter
	// SiteCounter maps each instrumented site to its counter index.
	SiteCounter map[mem.SiteID]int
	// Trail records every sharing attempt (accepted extensions and the
	// rejections that closed a group), in trace-simulation order.
	Trail []ShareDecision
}

// NumSites returns the number of instrumented malloc sites (the Table 2
// "#sites" column).
func (a *Assignment) NumSites() int { return len(a.SiteCounter) }

// NumCounters returns the number of counters (Table 2 "#counters").
func (a *Assignment) NumCounters() int { return len(a.Counters) }

// Kinds returns the set of pattern kinds in use, for the Table 2 "type"
// column, in a stable order.
func (a *Assignment) Kinds() []PatternKind {
	seen := make(map[PatternKind]bool)
	for _, c := range a.Counters {
		seen[c.Kind] = true
	}
	var out []PatternKind
	for _, k := range []PatternKind{KindFixed, KindRegular, KindAll} {
		if seen[k] {
			out = append(out, k)
		}
	}
	return out
}

// KindsString renders Kinds like the paper's Table 2 ("fixed & all ids").
func (a *Assignment) KindsString() string {
	ks := a.Kinds()
	if len(ks) == 0 {
		return "none"
	}
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += " & "
		}
		s += k.String()
	}
	return s + " ids"
}
