package context

import (
	"fmt"
	"sort"

	"prefix/internal/mem"
)

// AllocRecord is one allocation event from the profiling trace, in trace
// order: which site allocated, which dynamic object resulted, and whether
// that object is in the hot set.
type AllocRecord struct {
	Site   mem.SiteID
	Object mem.ObjectID
	Hot    bool
}

// ShareConfig tunes counter-sharing discovery.
type ShareConfig struct {
	// Disabled turns counter sharing off entirely: every hot site gets
	// its own counter (the ablation baseline for §2.2.1's sharing).
	Disabled bool
	// MaxFixed is the largest Fixed set a shared counter may carry.
	MaxFixed int
	// MaxRuns is the largest number of maximal consecutive-id runs a
	// shared Fixed set may have: sites that allocate hot objects in
	// tandem produce a single run under a shared counter, whereas
	// unrelated sites fragment the id space and are kept separate.
	MaxRuns int
	// MaxTandemRun bounds how many consecutive allocations one site may
	// contribute to a shared counter's merged sequence. Counter sharing
	// is only safe for sites that "work in tandem" (§2.2.1): if one site
	// allocates a long block on its own, the shared ids of the other
	// sites depend on that block's length, which input scaling would
	// shift — so such groups are rejected even when the merged ids
	// happen to form a pattern.
	MaxTandemRun int
}

// DefaultShareConfig matches the behaviour described in §2.2.1: sharing
// is employed only when the merged ids still "reveal a pattern" — a
// contiguous fixed run, an arithmetic progression, or all ids.
func DefaultShareConfig() ShareConfig {
	return ShareConfig{MaxFixed: 4096, MaxRuns: 1, MaxTandemRun: 4}
}

// BuildAssignment derives the full context product from the profile: it
// partitions the hot malloc sites into counter groups (simulating counter
// sharing over the allocation trace, exactly as the paper prescribes),
// infers the id pattern of every counter, and records which shared
// instance id identifies which hot object.
func BuildAssignment(allocs []AllocRecord, cfg ShareConfig) (*Assignment, error) {
	if cfg.MaxFixed <= 0 {
		cfg.MaxFixed = 4096
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 1
	}
	if cfg.MaxTandemRun <= 0 {
		cfg.MaxTandemRun = 4
	}

	// Hot sites in order of their first hot allocation: tandem sites are
	// adjacent in this order.
	firstHot := make(map[mem.SiteID]int)
	for i, a := range allocs {
		if a.Hot {
			if _, ok := firstHot[a.Site]; !ok {
				firstHot[a.Site] = i
			}
		}
	}
	if len(firstHot) == 0 {
		return &Assignment{SiteCounter: map[mem.SiteID]int{}}, nil
	}
	sites := make([]mem.SiteID, 0, len(firstHot))
	for s := range firstHot {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if firstHot[sites[i]] != firstHot[sites[j]] {
			return firstHot[sites[i]] < firstHot[sites[j]]
		}
		return sites[i] < sites[j]
	})

	asn := &Assignment{SiteCounter: make(map[mem.SiteID]int)}
	if cfg.Disabled {
		for _, s := range sites {
			if err := asn.closeGroup(allocs, []mem.SiteID{s}, cfg); err != nil {
				return nil, err
			}
		}
		return asn, nil
	}
	group := []mem.SiteID{sites[0]}
	for _, s := range sites[1:] {
		candidate := append(append([]mem.SiteID(nil), group...), s)
		_, _, reason, ok := simulateShared(allocs, candidate, cfg)
		asn.Trail = append(asn.Trail, ShareDecision{Sites: candidate, Accepted: ok, Reason: reason})
		if ok {
			group = candidate
			continue
		}
		if err := asn.closeGroup(allocs, group, cfg); err != nil {
			return nil, err
		}
		group = []mem.SiteID{s}
	}
	if err := asn.closeGroup(allocs, group, cfg); err != nil {
		return nil, err
	}
	return asn, nil
}

// closeGroup finalizes one counter group.
func (a *Assignment) closeGroup(allocs []AllocRecord, group []mem.SiteID, cfg ShareConfig) error {
	pat, hotIDs, reason, ok := simulateShared(allocs, group, cfg)
	if !ok && len(group) > 1 {
		return fmt.Errorf("context: internal error: accepted group %v fails simulation", group)
	}
	if !ok {
		// Single site whose ids exceed the Fixed cap: degrade to an
		// explicit (large) fixed set rather than dropping the site.
		var hot []mem.Instance
		hotIDs = make(map[mem.Instance]mem.ObjectID)
		var n mem.Instance
		for _, r := range allocs {
			if r.Site != group[0] {
				continue
			}
			n++
			if r.Hot {
				hot = append(hot, n)
				hotIDs[n] = r.Object
			}
		}
		p, err := Infer(hot, uint64(n))
		if err != nil {
			return err
		}
		pat = p
		reason = fmt.Sprintf("%s; kept despite sharing caps (%s)", pat.Describe(uint64(n)), reason)
	}
	c := &Counter{
		ID:      len(a.Counters),
		Sites:   append([]mem.SiteID(nil), group...),
		Pattern: pat,
		HotIDs:  hotIDs,
		Reason:  reason,
	}
	a.Counters = append(a.Counters, c)
	for _, s := range group {
		a.SiteCounter[s] = c.ID
	}
	return nil
}

// simulateShared replays the allocation trace with one counter shared by
// the given sites and reports whether the hot ids form an acceptable
// pattern. The returned reason explains the verdict either way and feeds
// the decision ledger.
func simulateShared(allocs []AllocRecord, sites []mem.SiteID, cfg ShareConfig) (Pattern, map[mem.Instance]mem.ObjectID, string, bool) {
	member := make(map[mem.SiteID]bool, len(sites))
	for _, s := range sites {
		member[s] = true
	}
	var counter mem.Instance
	var hot []mem.Instance
	hotIDs := make(map[mem.Instance]mem.ObjectID)
	var lastSite mem.SiteID
	sameRun := 0
	for _, r := range allocs {
		if !member[r.Site] {
			continue
		}
		counter++
		if len(sites) > 1 {
			if r.Site == lastSite {
				sameRun++
				if sameRun > cfg.MaxTandemRun {
					return Pattern{}, nil, fmt.Sprintf(
						"sites not in tandem: site %d allocated %d consecutive objects (max %d)",
						r.Site, sameRun, cfg.MaxTandemRun), false
				}
			} else {
				lastSite, sameRun = r.Site, 1
			}
		}
		if r.Hot {
			hot = append(hot, counter)
			hotIDs[counter] = r.Object
		}
	}
	if len(hot) == 0 {
		return Pattern{}, nil, "no hot allocations under the shared counter", false
	}
	pat, err := Infer(hot, uint64(counter))
	if err != nil {
		return Pattern{}, nil, err.Error(), false
	}
	switch pat.Kind {
	case KindAll, KindRegular:
		return pat, hotIDs, pat.Describe(uint64(counter)), true
	case KindFixed:
		if len(pat.Set) > cfg.MaxFixed {
			return Pattern{}, nil, fmt.Sprintf(
				"merged fixed set of %d ids exceeds cap %d", len(pat.Set), cfg.MaxFixed), false
		}
		if r := runs(pat.Set); r > cfg.MaxRuns {
			return Pattern{}, nil, fmt.Sprintf(
				"merged ids fragment into %d consecutive runs (max %d): sites do not allocate in tandem",
				r, cfg.MaxRuns), false
		}
		return pat, hotIDs, pat.Describe(uint64(counter)), true
	}
	return Pattern{}, nil, "merged ids reveal no supported pattern", false
}

// runs counts maximal consecutive-integer stretches in a sorted id set.
func runs(set []mem.Instance) int {
	if len(set) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(set); i++ {
		if set[i] != set[i-1]+1 {
			n++
		}
	}
	return n
}
