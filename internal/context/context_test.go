package context

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func insts(vs ...uint64) []mem.Instance {
	out := make([]mem.Instance, len(vs))
	for i, v := range vs {
		out[i] = mem.Instance(v)
	}
	return out
}

func TestInferAll(t *testing.T) {
	p, err := Infer(insts(1, 2, 3, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindAll {
		t.Errorf("kind = %v, want all", p.Kind)
	}
	for i := mem.Instance(1); i <= 100; i++ {
		if !p.Matches(i) {
			t.Fatalf("All must match %d", i)
		}
	}
}

func TestInferAllRequiresContiguityFromOne(t *testing.T) {
	// 4 hot of 4 allocations but ids {2,3,4,5} cannot be All.
	p, err := Infer(insts(2, 3, 4, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind == KindAll {
		t.Error("non-1-based ids must not classify as All")
	}
}

func TestInferRegular(t *testing.T) {
	p, err := Infer(insts(1, 3, 5, 7, 9), 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindRegular || p.Start != 1 || p.Step != 2 || p.Count != 5 {
		t.Errorf("pattern = %+v", p)
	}
	for _, want := range insts(1, 3, 5, 7, 9) {
		if !p.Matches(want) {
			t.Errorf("regular must match %d", want)
		}
	}
	for _, not := range insts(2, 4, 11, 0) {
		if p.Matches(not) {
			t.Errorf("regular must not match %d", not)
		}
	}
}

func TestInferContiguousIsFixed(t *testing.T) {
	// A step-1 progression is a Fixed set in the paper's taxonomy.
	p, err := Infer(insts(1, 2, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindFixed {
		t.Errorf("kind = %v, want fixed", p.Kind)
	}
}

func TestInferFixed(t *testing.T) {
	p, err := Infer(insts(1, 3, 8), 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindFixed {
		t.Errorf("kind = %v", p.Kind)
	}
	if !p.Matches(1) || !p.Matches(3) || !p.Matches(8) || p.Matches(2) || p.Matches(9) {
		t.Error("fixed matching wrong")
	}
	if p.Size() != 3 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(nil, 5); err == nil {
		t.Error("empty hot set should error")
	}
	if _, err := Infer(insts(3, 1), 5); err == nil {
		t.Error("unsorted input should error")
	}
}

// TestPatternMatchesExactly: property — for any sorted id set, the
// inferred pattern matches exactly the hot ids within the observed range.
func TestPatternMatchesExactly(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		total := uint64(rng.Intn(50) + 1)
		hotSet := make(map[mem.Instance]bool)
		for i := uint64(1); i <= total; i++ {
			if rng.Bool(0.4) {
				hotSet[mem.Instance(i)] = true
			}
		}
		if len(hotSet) == 0 {
			hotSet[1] = true
		}
		var hot []mem.Instance
		for i := uint64(1); i <= total; i++ {
			if hotSet[mem.Instance(i)] {
				hot = append(hot, mem.Instance(i))
			}
		}
		p, err := Infer(hot, total)
		if err != nil {
			return false
		}
		for i := uint64(1); i <= total; i++ {
			if p.Matches(mem.Instance(i)) != hotSet[mem.Instance(i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckInstr(t *testing.T) {
	all := Pattern{Kind: KindAll}
	reg := Pattern{Kind: KindRegular, Start: 1, Step: 2, Count: 3}
	fix := Pattern{Kind: KindFixed, Set: insts(1)}
	if !(all.CheckInstr() < reg.CheckInstr() && reg.CheckInstr() < fix.CheckInstr()+1) {
		t.Error("check costs should order all <= regular <= fixed")
	}
}

func TestPatternKindString(t *testing.T) {
	if KindFixed.String() != "fixed" || KindRegular.String() != "regular" || KindAll.String() != "all" {
		t.Error("kind strings wrong")
	}
}

func TestAssignmentKinds(t *testing.T) {
	a := &Assignment{
		Counters: []*Counter{
			{Pattern: Pattern{Kind: KindAll}},
			{Pattern: Pattern{Kind: KindFixed}},
		},
		SiteCounter: map[mem.SiteID]int{1: 0, 2: 1},
	}
	if a.KindsString() != "fixed & all ids" {
		t.Errorf("kinds = %q", a.KindsString())
	}
	if a.NumSites() != 2 || a.NumCounters() != 2 {
		t.Error("counts wrong")
	}
	empty := &Assignment{}
	if empty.KindsString() != "none" {
		t.Errorf("empty kinds = %q", empty.KindsString())
	}
}
