package report

import (
	"bytes"
	"strings"
	"testing"

	"prefix/internal/hds"
	"prefix/internal/layout"
	"prefix/internal/mem"
	"prefix/internal/pipeline"
	"prefix/internal/trace"
)

func comparisons(t *testing.T) []*pipeline.Comparison {
	t.Helper()
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	var cmps []*pipeline.Comparison
	for _, name := range []string{"mcf", "ft"} {
		cmp, err := pipeline.RunBenchmark(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		cmps = append(cmps, cmp)
	}
	return cmps
}

func TestTablesRender(t *testing.T) {
	cmps := comparisons(t)
	emitters := map[string]func(*bytes.Buffer) error{
		"figure1":  func(b *bytes.Buffer) error { return Figure1(b, cmps) },
		"table2":   func(b *bytes.Buffer) error { return Table2(b, cmps) },
		"table3":   func(b *bytes.Buffer) error { return Table3(b, cmps) },
		"table4":   func(b *bytes.Buffer) error { return Table4(b, cmps) },
		"table5":   func(b *bytes.Buffer) error { return Table5(b, cmps) },
		"table6":   func(b *bytes.Buffer) error { return Table6(b, cmps) },
		"figure11": func(b *bytes.Buffer) error { return Figure11(b, cmps) },
		"figure12": func(b *bytes.Buffer) error { return Figure12(b, cmps) },
		"figure13": func(b *bytes.Buffer) error { return Figure13(b, cmps) },
		"figure14": func(b *bytes.Buffer) error { return Figure14(b, cmps) },
	}
	for name, emit := range emitters {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "mcf") || !strings.Contains(out, "ft") {
			t.Errorf("%s output missing benchmark rows:\n%s", name, out)
		}
	}
}

func TestTable3Averages(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, comparisons(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AVERAGE") {
		t.Error("table 3 must include the average row")
	}
}

func TestFigure2Render(t *testing.T) {
	ohds := []hds.Stream{
		{Objects: []mem.ObjectID{1, 2}, Heat: 10},
		{Objects: []mem.ObjectID{2, 3}, Heat: 5},
	}
	rec := layout.Reconstitute(ohds)
	var buf bytes.Buffer
	Figure2(&buf, ohds, rec)
	out := buf.String()
	for _, want := range []string{"OHDS", "RHDS", "layout order"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure10Render(t *testing.T) {
	var buf bytes.Buffer
	err := Figure10(&buf, "mcf", []pipeline.MTResult{{Threads: 2, BaselineCycles: 100, PreFixCycles: 90, ImprovementPct: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+10.00%") {
		t.Errorf("figure 10 output:\n%s", buf.String())
	}
}

func TestHeatmap(t *testing.T) {
	r := trace.NewRecorder()
	r.Alloc(1, 0, 0x1000, 64)
	r.Alloc(1, 0, 0x9000, 64)
	for i := 0; i < 20; i++ {
		r.Access(0x1000, 8, false)
		r.Access(0x9000, 8, false)
	}
	h := BuildHeatmap(r.Trace(), 4, 4)
	if h.Footprint != 0x8001 {
		t.Errorf("footprint = %#x", h.Footprint)
	}
	var total uint64
	for _, row := range h.Counts {
		for _, n := range row {
			total += n
		}
	}
	if total != 40 {
		t.Errorf("plotted accesses = %d, want 40", total)
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "addr_bucket,time_bucket,count") {
		t.Error("CSV header missing")
	}
}

func TestHeatmapEmptyTrace(t *testing.T) {
	h := BuildHeatmap(&trace.Trace{}, 4, 4)
	if h.Footprint != 0 {
		t.Error("empty trace should have zero footprint")
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[uint64]string{
		512:       "512B",
		2048:      "2KB",
		1 << 20:   "1.0MB",
		600 << 20: "600MB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(-12.5) != "-12.50%" || Pct(3.125) != "+3.12%" {
		t.Errorf("Pct formatting: %s %s", Pct(-12.5), Pct(3.125))
	}
}

// TestReportBytesIdenticalAcrossJobs is the end-to-end determinism
// guarantee of the parallel evaluation harness: the rendered reports —
// the bytes prefix-bench writes — must be identical whether the suite
// ran serially or on eight workers.
func TestReportBytesIdenticalAcrossJobs(t *testing.T) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	names := []string{"mcf", "ft", "health"}
	render := func(jobs int) string {
		cmps, err := pipeline.RunSuite(names, opt, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, emit := range []func(*bytes.Buffer) error{
			func(b *bytes.Buffer) error { return Table2(b, cmps) },
			func(b *bytes.Buffer) error { return Table3(b, cmps) },
			func(b *bytes.Buffer) error { return Table4(b, cmps) },
			func(b *bytes.Buffer) error { return Figure11(b, cmps) },
		} {
			if err := emit(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("report bytes differ between jobs=1 and jobs=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestReportBytesIdenticalWithAttribution is the explain-smoke guarantee:
// turning attribution on must not change a single byte of the paper
// tables — attribution only adds its own table.
func TestReportBytesIdenticalWithAttribution(t *testing.T) {
	names := []string{"mcf", "health"}
	render := func(attrib bool) string {
		opt := pipeline.DefaultOptions()
		opt.UseBenchScale = true
		opt.Attribution = attrib
		cmps, err := pipeline.RunSuite(names, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, emit := range []func(*bytes.Buffer) error{
			func(b *bytes.Buffer) error { return Table2(b, cmps) },
			func(b *bytes.Buffer) error { return Table3(b, cmps) },
			func(b *bytes.Buffer) error { return Table5(b, cmps) },
			func(b *bytes.Buffer) error { return Figure12(b, cmps) },
		} {
			if err := emit(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	if off, on := render(false), render(true); off != on {
		t.Errorf("report bytes differ between attribution off and on:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
}

// TestAttributionTable: attributed comparisons render per-site rows with
// a ledger reason; unattributed ones render the skip note.
func TestAttributionTable(t *testing.T) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	opt.Attribution = true
	cmp, err := pipeline.RunBenchmark("mcf", opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := AttributionTable(&buf, []*pipeline.Comparison{cmp}, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "site ") {
		t.Errorf("attribution table missing site rows:\n%s", out)
	}
	if strings.Contains(out, "without -attrib") {
		t.Errorf("attributed run rendered the skip note:\n%s", out)
	}

	opt.Attribution = false
	plain, err := pipeline.RunBenchmark("mcf", opt)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := AttributionTable(&buf, []*pipeline.Comparison{plain}, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "without -attrib") {
		t.Errorf("unattributed run missing skip note:\n%s", buf.String())
	}
}

// TestVarianceTableBytesIdenticalAcrossJobs does the same for the seed
// sweep, whose jobs additionally share one profile per benchmark.
func TestVarianceTableBytesIdenticalAcrossJobs(t *testing.T) {
	opt := pipeline.DefaultOptions()
	opt.UseBenchScale = true
	render := func(jobs int) string {
		vs, err := pipeline.RunSuiteVariance([]string{"mcf", "health"}, 3, opt, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := VarianceTable(&buf, vs); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, parallel := render(1), render(6); serial != parallel {
		t.Errorf("variance table differs between jobs=1 and jobs=6:\n%s\n---\n%s", serial, parallel)
	}
}
