package report

import (
	"fmt"
	"io"
	"sort"

	"prefix/internal/binrewrite"
	"prefix/internal/hds"
	"prefix/internal/layout"
	"prefix/internal/mem"
	"prefix/internal/pipeline"
	"prefix/internal/trace"
	"prefix/internal/workloads"
)

// Figure2 renders a layout-determination walk-through in the style of the
// paper's cc1 example: the OHDS list, the reconstituted RHDS, and the
// final placement order.
func Figure2(w io.Writer, ohds []hds.Stream, rec *layout.Reconstitution) {
	fmt.Fprintln(w, "Figure 2: Layout determination (OHDS -> RHDS)")
	fmt.Fprintln(w, "OHDS (descending memory references):")
	for i, s := range ohds {
		fmt.Fprintf(w, "  %2d. %v  (refs=%d)\n", i+1, idList(s.Objects), s.Heat)
	}
	fmt.Fprintln(w, "RHDS (reconstituted, exploitable):")
	for i, s := range rec.RHDS {
		fmt.Fprintf(w, "  %2d. %v\n", i+1, idList(s.Objects))
	}
	if len(rec.Singletons) > 0 {
		fmt.Fprintf(w, "Singletons (end of region): %v\n", idList(rec.Singletons))
	}
	fmt.Fprintf(w, "Actions: %d unchanged, %d merged, %d split, %d dropped\n",
		rec.Unchanged, rec.Merged, rec.Split, rec.Dropped)
	fmt.Fprintf(w, "Final layout order: %v\n", idList(rec.Order()))
}

// Figure2Offsets prints one region-placement row for the layoutviz
// example.
func Figure2Offsets(w io.Writer, id mem.ObjectID, offset, size uint64) {
	fmt.Fprintf(w, "  %-8v offset %5d  size %4d\n", id, offset, size)
}

func idList(ids []mem.ObjectID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// Heatmap is the Figure 9 data: access counts bucketed by time (columns)
// and relative heap offset (rows), plus the hot footprint (the address
// span the hot accesses cover).
type Heatmap struct {
	TimeBuckets int
	AddrBuckets int
	Counts      [][]uint64 // [addrBucket][timeBucket]
	Footprint   uint64     // bytes spanned by hot-object accesses
}

// BuildHeatmap computes a heatmap from an evaluation trace: only accesses
// to hot objects are plotted (the paper plots "the same hot and
// interesting objects" in both binaries), and addresses are normalized to
// the lowest hot address.
func BuildHeatmap(tr *trace.Trace, timeBuckets, addrBuckets int) *Heatmap {
	a := trace.Analyze(tr)
	// Hot = the smallest object set covering 90% of heap accesses, like
	// the optimizer's own selection; an absolute threshold would sweep
	// in long-tail objects and stretch the footprint meaninglessly.
	sorted := make([]*trace.Object, 0, len(a.Objects))
	for _, o := range a.Objects {
		if o.Accesses > 0 {
			sorted = append(sorted, o)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Accesses > sorted[j].Accesses })
	hotAddr := make(map[mem.ObjectID]bool)
	var covered uint64
	target := a.HeapAccesses * 9 / 10
	for _, o := range sorted {
		if covered >= target {
			break
		}
		hotAddr[o.ID] = true
		covered += o.Accesses
	}
	var lo, hi mem.Addr
	first := true
	for i, id := range a.Refs {
		if !hotAddr[id] {
			continue
		}
		addr := a.Object(id).Addr
		_ = i
		if first {
			lo, hi = addr, addr
			first = false
			continue
		}
		if addr < lo {
			lo = addr
		}
		if addr > hi {
			hi = addr
		}
	}
	h := &Heatmap{TimeBuckets: timeBuckets, AddrBuckets: addrBuckets}
	if first {
		return h
	}
	h.Footprint = uint64(hi-lo) + 1
	h.Counts = make([][]uint64, addrBuckets)
	for i := range h.Counts {
		h.Counts[i] = make([]uint64, timeBuckets)
	}
	span := h.Footprint
	events := a.Events
	for i, id := range a.Refs {
		if !hotAddr[id] {
			continue
		}
		addr := a.Object(id).Addr
		ab := int(uint64(addr-lo) * uint64(addrBuckets) / span)
		if ab >= addrBuckets {
			ab = addrBuckets - 1
		}
		tb := a.RefAt[i] * timeBuckets / events
		if tb >= timeBuckets {
			tb = timeBuckets - 1
		}
		h.Counts[ab][tb]++
	}
	return h
}

// WriteCSV emits the heatmap as addr_bucket,time_bucket,count rows.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "addr_bucket,time_bucket,count"); err != nil {
		return err
	}
	for ab := range h.Counts {
		for tb, n := range h.Counts[ab] {
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%d\n", ab, tb, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Figure9 prints the heatmap summary (footprints) and optionally the two
// CSVs to the given writers (nil skips the CSV).
func Figure9(w io.Writer, benchmark string, base, opt *Heatmap) {
	fmt.Fprintf(w, "Figure 9: Data access heatmap footprints (%s)\n", benchmark)
	fmt.Fprintf(w, "  baseline hot-access footprint: %s\n", Bytes(base.Footprint))
	fmt.Fprintf(w, "  PreFix   hot-access footprint: %s\n", Bytes(opt.Footprint))
	if opt.Footprint > 0 {
		fmt.Fprintf(w, "  reduction: %.1fx\n", float64(base.Footprint)/float64(opt.Footprint))
	}
}

// Figure14 prints the binary-size accounting.
func Figure14(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Figure 14: Binary Sizes: Baseline -> Best PreFix")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tbaseline\toptimized\tgrowth\tgrowth excl .bolt.orig.text")
	for _, c := range cmps {
		spec, err := workloads.Get(c.Benchmark)
		if err != nil {
			return err
		}
		r := binrewrite.Rewrite(spec.Binary, c.Plans[c.Best])
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.2f%%\t%+.2f%%\n",
			c.Benchmark, Bytes(r.BaseBytes), Bytes(r.OptBytes()), r.GrowthPct(), r.InstrumentedGrowthPct())
	}
	return tw.Flush()
}
