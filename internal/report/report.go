// Package report renders the evaluation results in the shape of the
// paper's tables and figures. Every emitter takes the pipeline's
// measurement structs and writes a plain-text table (or CSV, for the
// heatmap) to an io.Writer, so the same code backs the prefix-bench
// command and the Go benchmark harness.
package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"prefix/internal/pipeline"
	"prefix/internal/prefix"
)

// Pct formats a signed percentage the way the paper's Table 3 does.
func Pct(v float64) string {
	return fmt.Sprintf("%+.2f%%", v)
}

// Bytes renders a byte count in human units.
func Bytes(b uint64) string {
	switch {
	case b >= 10<<20:
		return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Figure1 prints the hot-object coverage bars: % of heap accesses from
// hot heap objects, with the number of hot dynamic objects per benchmark.
func Figure1(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Figure 1: Percentage of Memory Accesses from Heap Objects vs. Hot Heap Objects (profiling runs)")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\theap acc %\thot obj acc %\t# hot objects")
	for _, c := range cmps {
		a := c.Profile.Analysis
		heapPct := 0.0
		if a.TotalAccesses > 0 {
			heapPct = 100 * float64(a.HeapAccesses) / float64(a.TotalAccesses)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%d\n",
			c.Benchmark, heapPct, c.Profile.Hot.CoveragePct()*heapPct/100, len(c.Profile.Hot.Objects))
	}
	return tw.Flush()
}

// Table2 prints the context summary: pattern types, #sites, #counters.
func Table2(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Table 2: Context Used")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\ttype\t#sites\t#counters")
	for _, c := range cmps {
		p := c.Plans[c.Best]
		fmt.Fprintf(tw, "%s\t[%s]\t%d\t%d\n", c.Benchmark, p.KindsString(), p.NumSites(), p.NumCounters())
	}
	return tw.Flush()
}

// Table3 prints the execution-time comparison.
func Table3(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Table 3: Relative Changes in Execution Time (negative = reduction)")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tbaseline cycles\tmem refs\tHDS\tHALO\tPreFix:Hot\tPreFix:HDS\tPreFix:HDS+Hot\tBest")
	var sums [6]float64
	for _, c := range cmps {
		b := c.Baseline
		hot := c.PreFix[prefix.VariantHot].TimeDeltaPct(b)
		hds := c.PreFix[prefix.VariantHDS].TimeDeltaPct(b)
		both := c.PreFix[prefix.VariantHDSHot].TimeDeltaPct(b)
		best := c.BestResult().TimeDeltaPct(b)
		dHDS := c.HDS.TimeDeltaPct(b)
		dHALO := c.HALO.TimeDeltaPct(b)
		fmt.Fprintf(tw, "%s\t%.3g\t%d\t%s\t%s\t%s\t%s\t%s\t%s (%s)\n",
			c.Benchmark, b.Metrics.Cycles, b.Metrics.Cache.Accesses,
			Pct(dHDS), Pct(dHALO), Pct(hot), Pct(hds), Pct(both), Pct(best), c.Best)
		for i, v := range []float64{dHDS, dHALO, hot, hds, both, best} {
			sums[i] += v
		}
	}
	n := float64(len(cmps))
	fmt.Fprintf(tw, "AVERAGE\t\t\t%s\t%s\t%s\t%s\t%s\t%s\n",
		Pct(sums[0]/n), Pct(sums[1]/n), Pct(sums[2]/n), Pct(sums[3]/n), Pct(sums[4]/n), Pct(sums[5]/n))
	return tw.Flush()
}

// Table4 prints pollution counts for the HDS and HALO baselines.
func Table4(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Table 4: Pollution in HDS and HALO (objects directed to the special regions)")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tHDS hot\tHDS all\tHALO hot\tHALO all")
	for _, c := range cmps {
		var hh, ha, gh, ga uint64
		if p := c.HDS.Pollution; p != nil {
			hh, ha = p.Hot, p.All
		}
		if p := c.HALO.Pollution; p != nil {
			gh, ga = p.Hot, p.All
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", c.Benchmark, hh, ha, gh, ga)
	}
	return tw.Flush()
}

// Table5 prints PreFix capture statistics: profiling-run vs long-run.
func Table5(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Table 5: PreFix Object Capture in Profiling vs. Long Run")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tprof HA%\tprof Hot\tprof HDS\tlong HA%\tlong Hot\tlong HDS\tcaptured")
	for _, c := range cmps {
		s := c.Summaries[c.Best]
		la := "-"
		lh, lhds, cap := "-", "-", "-"
		if c.LongRun != nil {
			la = fmt.Sprintf("%.1f%%", c.LongRun.HeapAccessPct)
			lh = fmt.Sprint(c.LongRun.HotObjects)
			lhds = fmt.Sprint(c.LongRun.HDSObjects)
			cap = fmt.Sprint(c.LongRun.CapturedObjects)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%d\t%d\t%s\t%s\t%s\t%s\n",
			c.Benchmark, s.CoveragePct, s.HotObjects, s.HotInHDS, la, lh, lhds, cap)
	}
	return tw.Flush()
}

// Table6 prints costs and benefits: calls avoided, dynamic instruction
// change, peak memory change.
func Table6(w io.Writer, cmps []*pipeline.Comparison) error {
	fmt.Fprintln(w, "Table 6: Best PreFix: Benefits and Costs")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tcalls avoided\tdyn. instr change\tpeak memory change")
	for _, c := range cmps {
		best := c.BestResult()
		var avoided uint64
		if best.Capture != nil {
			avoided = best.Capture.CallsAvoided()
		}
		instrDelta := 0.0
		if bi := c.Baseline.Metrics.Instr; bi > 0 {
			instrDelta = 100 * (float64(best.Metrics.Instr) - float64(bi)) / float64(bi)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s -> %s\n",
			c.Benchmark, avoided, Pct(instrDelta),
			Bytes(c.Baseline.PeakBytes), Bytes(best.PeakBytes))
	}
	return tw.Flush()
}

// Figure11 prints the L1 miss-rate change; Figure12 the LLC miss rate;
// Figure13 backend stalls — all per benchmark, baseline vs best PreFix.
func Figure11(w io.Writer, cmps []*pipeline.Comparison) error {
	return missFigure(w, cmps, "Figure 11: L1 miss rate (baseline -> PreFix)", func(r pipeline.RunResult) float64 {
		return 100 * r.Metrics.Cache.L1MissRate()
	})
}

// Figure12 prints the LLC miss-rate change.
func Figure12(w io.Writer, cmps []*pipeline.Comparison) error {
	return missFigure(w, cmps, "Figure 12: LLC miss rate (baseline -> PreFix)", func(r pipeline.RunResult) float64 {
		return 100 * r.Metrics.Cache.LLCMissRate()
	})
}

// Figure13 prints the backend-stall change.
func Figure13(w io.Writer, cmps []*pipeline.Comparison) error {
	return missFigure(w, cmps, "Figure 13: Backend stall share of cycles (baseline -> PreFix)", func(r pipeline.RunResult) float64 {
		return r.Metrics.BackendStallPct()
	})
}

func missFigure(w io.Writer, cmps []*pipeline.Comparison, title string, metric func(pipeline.RunResult) float64) error {
	fmt.Fprintln(w, title)
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tbaseline\tPreFix\tchange")
	for _, c := range cmps {
		b := metric(c.Baseline)
		p := metric(c.BestResult())
		fmt.Fprintf(tw, "%s\t%.3f%%\t%.3f%%\t%+.3f pp\n", c.Benchmark, b, p, p-b)
	}
	return tw.Flush()
}

// AttributionTable prints the per-site before/after attribution: the
// top-N allocation sites by baseline LLC-miss share, each with its
// best-variant share and the ledger's one-line placement rationale.
// Benchmarks run without attribution print a skip note instead, so the
// table is safe to request unconditionally.
func AttributionTable(w io.Writer, cmps []*pipeline.Comparison, topN int) error {
	fmt.Fprintln(w, "Attribution: per-site LLC-miss share, baseline -> best PreFix (top sites)")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tsite\tbase LLC\tbase share\tbest LLC\tbest share\twhy")
	for _, c := range cmps {
		ex := pipeline.BuildExplain(c, topN)
		if ex == nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t(run without -attrib; no attribution collected)\n", c.Benchmark)
			continue
		}
		for _, s := range ex.Sites {
			fmt.Fprintf(tw, "%s\tsite %d\t%d\t%.1f%%\t%d\t%.1f%%\t%s\n",
				c.Benchmark, s.Site,
				s.Baseline.LLCMisses, s.Baseline.SharePct,
				s.Best.LLCMisses, s.Best.SharePct,
				attributionWhy(s))
		}
	}
	return tw.Flush()
}

// attributionWhy picks the one-line rationale for a site: the context
// classification if the planner recorded one, else the first decision,
// else a note that the site never reached the plan.
func attributionWhy(s pipeline.SiteExplain) string {
	for _, d := range s.Decisions {
		if d.Kind == "counter-classified" {
			return d.Reason
		}
	}
	if len(s.Decisions) > 0 {
		return s.Decisions[0].Reason
	}
	return "(no plan decisions: site not hot enough to place)"
}

// VarianceTable prints the seed-sweep summary (the paper's "averaged
// over 10 runs" methodology).
func VarianceTable(w io.Writer, vs []*pipeline.Variance) error {
	fmt.Fprintln(w, "Seed variance: best-PreFix reduction across perturbed evaluation inputs")
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\truns\tmean\tbest\tworst")
	for _, v := range vs {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", v.Benchmark, v.Runs, Pct(v.MeanPct), Pct(v.MinPct), Pct(v.MaxPct))
	}
	return tw.Flush()
}

// Figure10 prints the multithreaded improvements.
func Figure10(w io.Writer, name string, results []pipeline.MTResult) error {
	fmt.Fprintf(w, "Figure 10: Effect of Multithreading (%s)\n", name)
	tw := newTab(w)
	fmt.Fprintln(tw, "threads\tbaseline cycles\tPreFix cycles\timprovement")
	for _, r := range results {
		fmt.Fprintf(tw, "%d\t%.3g\t%.3g\t%+.2f%%\n", r.Threads, r.BaselineCycles, r.PreFixCycles, r.ImprovementPct)
	}
	return tw.Flush()
}
