package hds

import (
	"sort"

	"prefix/internal/mem"
)

// Sequitur grammar inference (Nevill-Manning & Witten 1997), the stream
// detector used by the original HDS work. It infers a context-free grammar
// whose rules are the repeated subsequences of the input; rules over hot
// object references become hot data stream candidates.
//
// The implementation maintains the two classic invariants:
//
//	digram uniqueness — no pair of adjacent symbols appears more than
//	once in the grammar;
//	rule utility — every rule is used at least twice.

// seqSymbol is a node in a rule's doubly-linked symbol list. Terminals
// carry an object id; nonterminals reference a rule.
type seqSymbol struct {
	prev, next *seqSymbol
	term       mem.ObjectID // valid when rule == nil
	rule       *seqRule     // non-nil for nonterminals
	guard      bool         // sentinel node of a rule's circular list
	owner      *seqRule     // rule whose body this guard belongs to (guards only)
}

// seqRule is a grammar rule: guard <-> s1 <-> s2 <-> ... <-> guard.
type seqRule struct {
	id    int
	guard *seqSymbol
	uses  int
}

//prefix:hotpath
func (s *Sequitur) newRule(id int) *seqRule {
	//lint:ignore hotalloc one node per discovered rule; rules are rare relative to the symbols they compress
	r := &seqRule{id: id}
	g := s.newSymbol()
	g.guard = true
	g.owner = r
	g.prev, g.next = g, g
	r.guard = g
	return r
}

//prefix:hotpath
func (r *seqRule) first() *seqSymbol { return r.guard.next }

//prefix:hotpath
func (r *seqRule) last() *seqSymbol { return r.guard.prev }

// digram is the key of the digram index.
type digram struct{ a, b uint64 }

//prefix:hotpath
func symKey(s *seqSymbol) uint64 {
	if s.rule != nil {
		return 1<<63 | uint64(s.rule.id)
	}
	return uint64(s.term)
}

// Sequitur is an incremental grammar builder.
type Sequitur struct {
	root   *seqRule
	rules  map[int]*seqRule
	nextID int
	index  map[digram]*seqSymbol // digram -> first symbol of its occurrence
	slab   []seqSymbol           // bump-pointer arena for symbol nodes
}

// newSymbol hands out symbol nodes from a slab so one grammar build does a
// handful of chunk allocations instead of one per input reference. Unlinked
// symbols are never recycled — the digram index may still hold pointers to
// them, and a stale-but-unreused node is harmless while a reused one would
// corrupt the index.
//
//prefix:hotpath
func (s *Sequitur) newSymbol() *seqSymbol {
	if len(s.slab) == 0 {
		//lint:ignore hotalloc bump-pointer arena refill: one chunk allocation amortized over 1024 symbol nodes
		s.slab = make([]seqSymbol, 1024)
	}
	sym := &s.slab[0]
	s.slab = s.slab[1:]
	return sym
}

// NewSequitur returns an empty grammar.
func NewSequitur() *Sequitur {
	s := &Sequitur{
		rules:  make(map[int]*seqRule),
		index:  make(map[digram]*seqSymbol),
		nextID: 1,
	}
	s.root = s.newRule(0)
	s.rules[0] = s.root
	return s
}

// Append feeds the next object reference into the grammar.
//
//prefix:hotpath
func (s *Sequitur) Append(obj mem.ObjectID) {
	sym := s.newSymbol()
	sym.term = obj
	s.insertAfter(s.root.last(), sym)
	s.check(sym.prev)
}

// insertAfter links n after p (p may be a guard).
//
//prefix:hotpath
func (s *Sequitur) insertAfter(p, n *seqSymbol) {
	n.prev = p
	n.next = p.next
	p.next.prev = n
	p.next = n
}

// remove unlinks n (not a guard) without touching the digram index.
//
//prefix:hotpath
func (s *Sequitur) remove(n *seqSymbol) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

// digramOf returns the digram starting at a, or ok=false when a or its
// successor is a guard.
//
//prefix:hotpath
func digramOf(a *seqSymbol) (digram, bool) {
	if a == nil || a.guard || a.next.guard {
		return digram{}, false
	}
	return digram{symKey(a), symKey(a.next)}, true
}

// unindex forgets the digram starting at a if the index points at a.
//
//prefix:hotpath
func (s *Sequitur) unindex(a *seqSymbol) {
	if d, ok := digramOf(a); ok {
		if s.index[d] == a {
			delete(s.index, d)
		}
	}
}

// check enforces digram uniqueness for the digram starting at a. Returns
// true when a substitution happened. The digram index writes below are
// the algorithm itself — Sequitur is defined by this map — so they carry
// reasoned suppressions rather than being designed away.
//
//prefix:hotpath
func (s *Sequitur) check(a *seqSymbol) bool {
	d, ok := digramOf(a)
	if !ok {
		return false
	}
	match, exists := s.index[d]
	if !exists {
		//lint:ignore hotalloc recording a first digram occurrence is the digram-uniqueness invariant at work
		s.index[d] = a
		return false
	}
	if match == a || match.next == a || a.next == match {
		// Same or overlapping occurrence (e.g. "aaa"); do nothing.
		return false
	}
	// The digram appears twice: if the match is exactly a rule's whole
	// body, reuse that rule; otherwise create a new rule.
	if match.prev.guard && match.next.next.guard {
		r := match.prev.owner
		s.substitute(a, r)
	} else {
		r := s.newRule(s.nextID)
		s.nextID++
		//lint:ignore hotalloc rule registration happens once per discovered rule, not per input symbol
		s.rules[r.id] = r
		// Move copies of the two symbols into the rule body.
		ra := s.newSymbol()
		ra.term, ra.rule = match.term, match.rule
		rb := s.newSymbol()
		rb.term, rb.rule = match.next.term, match.next.rule
		s.insertAfter(r.guard, ra)
		s.insertAfter(ra, rb)
		if ra.rule != nil {
			ra.rule.uses++
		}
		if rb.rule != nil {
			rb.rule.uses++
		}
		//lint:ignore hotalloc repointing the digram index at the canonical rule-body occurrence is part of the uniqueness invariant
		s.index[d] = ra
		s.substitute(match, r)
		s.substitute(a, r)
	}
	return true
}

// substitute replaces the digram starting at a with a reference to rule r,
// maintaining both invariants.
//
//prefix:hotpath
func (s *Sequitur) substitute(a *seqSymbol, r *seqRule) {
	b := a.next
	// Forget digrams that are about to disappear.
	s.unindex(a.prev)
	s.unindex(a)
	s.unindex(b)

	if a.rule != nil {
		s.decrementUse(a.rule)
	}
	if b.rule != nil {
		s.decrementUse(b.rule)
	}

	nt := s.newSymbol()
	nt.rule = r
	r.uses++
	prev := a.prev
	s.remove(a)
	s.remove(b)
	s.insertAfter(prev, nt)

	// Re-check the digrams around the new nonterminal.
	if !s.check(nt.prev) {
		s.check(nt)
	}
}

// decrementUse lowers a rule's use count; when it drops to one, the rule
// is inlined at its sole remaining use (rule utility invariant). The
// inlining is deferred: we record it and inline lazily during expansion,
// because eager inlining requires tracking the single use site. For stream
// extraction, under-used rules are simply skipped.
//
//prefix:hotpath
func (s *Sequitur) decrementUse(r *seqRule) {
	r.uses--
}

// expand appends the terminal expansion of rule r to out.
func (s *Sequitur) expand(r *seqRule, out []mem.ObjectID, depth int) []mem.ObjectID {
	if depth > 64 {
		return out // cycle guard; grammars are acyclic but stay safe
	}
	for sym := r.first(); !sym.guard; sym = sym.next {
		if sym.rule != nil {
			out = s.expand(sym.rule, out, depth+1)
		} else {
			out = append(out, sym.term)
		}
	}
	return out
}

// Expansion returns the full terminal string of the grammar (the original
// input); tests use it to verify losslessness.
func (s *Sequitur) Expansion() []mem.ObjectID {
	return s.expand(s.root, nil, 0)
}

// Streams extracts hot data stream candidates: every rule (other than the
// root) that is genuinely used at least cfg.MinFrequency times, expanded
// to its terminal object sequence. Heat = uses × expansion length.
func (s *Sequitur) Streams(cfg Config) []Stream {
	var out []Stream
	// Deterministic order: by rule id.
	ids := make([]int, 0, len(s.rules))
	for id := range s.rules {
		if id != 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := s.rules[id]
		if r.uses < cfg.MinFrequency {
			continue
		}
		exp := s.expand(r, nil, 0)
		if len(exp) < cfg.MinLength {
			continue
		}
		out = append(out, Stream{Objects: exp, Heat: uint64(r.uses) * uint64(len(exp))})
	}
	return rankAndTrim(out, cfg)
}

// MineSequitur runs the full pipeline: feed refs, extract streams.
func MineSequitur(refs []mem.ObjectID, cfg Config) []Stream {
	g := NewSequitur()
	for _, r := range refs {
		g.Append(r)
	}
	return g.Streams(cfg)
}
