package hds

import (
	"testing"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// benchRefs builds a reference string with embedded repetition, the shape
// the miners see after hot-object filtering.
func benchRefs(n int) []mem.ObjectID {
	rng := xrand.New(3)
	motif := randSeq(rng, 24, 12)
	refs := make([]mem.ObjectID, 0, n)
	for len(refs) < n {
		if rng.Bool(0.7) {
			refs = append(refs, motif...)
		} else {
			refs = append(refs, randSeq(rng, 16, 200)...)
		}
	}
	return refs[:n]
}

func BenchmarkMineLCS(b *testing.B) {
	refs := benchRefs(16384)
	cfg := Config{Window: 64, MinLength: 4, MinFrequency: 2, MaxStreams: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineLCS(refs, cfg)
	}
}

func BenchmarkSequiturAppend(b *testing.B) {
	refs := benchRefs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewSequitur()
		for _, r := range refs {
			g.Append(r)
		}
	}
}
