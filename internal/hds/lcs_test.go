package hds

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func TestLCSKnownCases(t *testing.T) {
	cases := []struct {
		a, b, want []mem.ObjectID
	}{
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(1, 2, 3), ids(4, 5, 6), nil},
		{ids(1, 2, 3, 4), ids(2, 4), ids(2, 4)},
		{ids(1, 3, 5, 7), ids(0, 3, 0, 7), ids(3, 7)},
		{nil, ids(1), nil},
	}
	for _, c := range cases {
		got := LCS(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("LCS(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("LCS(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

// isSubsequence reports whether sub appears in seq in order.
func isSubsequence(sub, seq []mem.ObjectID) bool {
	j := 0
	for _, v := range seq {
		if j < len(sub) && sub[j] == v {
			j++
		}
	}
	return j == len(sub)
}

// bruteLCSLen computes LCS length exponentially for tiny inputs.
func bruteLCSLen(a, b []mem.ObjectID) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if a[0] == b[0] {
		return 1 + bruteLCSLen(a[1:], b[1:])
	}
	x := bruteLCSLen(a[1:], b)
	if y := bruteLCSLen(a, b[1:]); y > x {
		x = y
	}
	return x
}

// TestLCSProperties: the result is a common subsequence with the optimal
// length (verified against a brute-force oracle for small inputs).
func TestLCSProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n, m := rng.Intn(9)+1, rng.Intn(9)+1
		a := make([]mem.ObjectID, n)
		b := make([]mem.ObjectID, m)
		for i := range a {
			a[i] = mem.ObjectID(rng.Intn(4) + 1)
		}
		for i := range b {
			b[i] = mem.ObjectID(rng.Intn(4) + 1)
		}
		got := LCS(a, b)
		if !isSubsequence(got, a) || !isSubsequence(got, b) {
			return false
		}
		return len(got) == bruteLCSLen(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMineLCSAdjacentRepetition(t *testing.T) {
	// The pattern (1..6) repeats continuously: adjacent windows share it.
	var refs []mem.ObjectID
	for i := 0; i < 200; i++ {
		for v := uint64(1); v <= 6; v++ {
			refs = append(refs, mem.ObjectID(v))
		}
	}
	streams := MineLCS(refs, DefaultConfig())
	if len(streams) == 0 {
		t.Fatal("no streams")
	}
	top := streams[0]
	if len(top.Objects) < 4 {
		t.Errorf("top stream too short: %v", top.Objects)
	}
}

func TestMineLCSLongPeriod(t *testing.T) {
	// Period of ~8 windows: groups of 16 objects visited in a cycle of
	// 32 groups (512 objects, 8192-ref period with 16 refs per group).
	var refs []mem.ObjectID
	const groups = 32
	for rep := 0; rep < 6; rep++ {
		for g := 0; g < groups; g++ {
			for k := 0; k < 16; k++ {
				refs = append(refs, mem.ObjectID(g*16+k+1))
			}
		}
	}
	streams := MineLCS(refs, DefaultConfig())
	if len(streams) == 0 {
		t.Fatal("multi-lag mining failed on long-period pattern")
	}
}

func TestMineLCSShortInput(t *testing.T) {
	refs := ids(1, 2, 3, 1, 2, 3)
	streams := MineLCS(refs, Config{MinLength: 2, MinFrequency: 2, Window: 64, MaxStreams: 4})
	if len(streams) == 0 {
		t.Fatal("short-input path found nothing")
	}
	if !streams[0].Contains(1) || !streams[0].Contains(2) {
		t.Errorf("stream = %v", streams[0].Objects)
	}
}

func TestMineLCSNoise(t *testing.T) {
	rng := xrand.New(99)
	refs := make([]mem.ObjectID, 4000)
	for i := range refs {
		refs[i] = mem.ObjectID(rng.Uint64n(1 << 40)) // essentially unique
	}
	streams := MineLCS(refs, DefaultConfig())
	if len(streams) != 0 {
		t.Errorf("pure noise produced %d streams", len(streams))
	}
}
