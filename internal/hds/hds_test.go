package hds

import (
	"testing"

	"prefix/internal/mem"
)

func ids(vs ...uint64) []mem.ObjectID {
	out := make([]mem.ObjectID, len(vs))
	for i, v := range vs {
		out[i] = mem.ObjectID(v)
	}
	return out
}

func TestCollapseRefs(t *testing.T) {
	hot := map[mem.ObjectID]bool{1: true, 2: true, 3: true}
	refs := ids(1, 1, 2, 9, 2, 3, 3, 3, 1)
	got := CollapseRefs(refs, hot)
	want := ids(1, 2, 3, 1)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestCollapseRefsNilFilter(t *testing.T) {
	got := CollapseRefs(ids(5, 5, 6), nil)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("got %v", got)
	}
}

func TestCollapseRefsKeepsSeparatedDuplicates(t *testing.T) {
	got := CollapseRefs(ids(1, 2, 1), map[mem.ObjectID]bool{1: true, 2: true})
	if len(got) != 3 {
		t.Errorf("separated duplicates must survive: %v", got)
	}
}

func TestStreamContainsAndKey(t *testing.T) {
	s := Stream{Objects: ids(3, 1, 2)}
	if !s.Contains(1) || s.Contains(9) {
		t.Error("Contains wrong")
	}
	s2 := Stream{Objects: ids(3, 1, 2)}
	s3 := Stream{Objects: ids(1, 2, 3)}
	if s.Key() != s2.Key() {
		t.Error("identical streams must share keys")
	}
	if s.Key() == s3.Key() {
		t.Error("order must be part of the key")
	}
}

func TestRankAndTrim(t *testing.T) {
	streams := []Stream{
		{Objects: ids(1, 2), Heat: 10},
		{Objects: ids(1, 2), Heat: 5},      // duplicate: merge heat
		{Objects: ids(3, 4, 3), Heat: 100}, // dedupe members
		{Objects: ids(7), Heat: 1000},      // too short
	}
	got := rankAndTrim(streams, Config{MinLength: 2, MaxStreams: 10})
	if len(got) != 2 {
		t.Fatalf("got %d streams", len(got))
	}
	if got[0].Heat != 100 || len(got[0].Objects) != 2 {
		t.Errorf("top stream = %+v", got[0])
	}
	if got[1].Heat != 15 {
		t.Errorf("merged heat = %d, want 15", got[1].Heat)
	}
}

func TestRankAndTrimCap(t *testing.T) {
	var streams []Stream
	for i := uint64(0); i < 20; i++ {
		streams = append(streams, Stream{Objects: ids(i*2+1, i*2+2), Heat: i})
	}
	got := rankAndTrim(streams, Config{MinLength: 2, MaxStreams: 5})
	if len(got) != 5 {
		t.Errorf("cap failed: %d", len(got))
	}
	if got[0].Heat != 19 {
		t.Error("cap must keep the hottest")
	}
}

func TestObjects(t *testing.T) {
	set := Objects([]Stream{{Objects: ids(1, 2)}, {Objects: ids(2, 3)}})
	if len(set) != 3 || !set[1] || !set[2] || !set[3] {
		t.Errorf("union = %v", set)
	}
}

func TestWeighByAccesses(t *testing.T) {
	streams := []Stream{
		{Objects: ids(1, 2), Heat: 1},
		{Objects: ids(3), Heat: 2},
	}
	acc := map[mem.ObjectID]uint64{1: 10, 2: 20, 3: 500}
	got := WeighByAccesses(streams, acc)
	if got[0].Heat != 500 || got[1].Heat != 30 {
		t.Errorf("weighed heats = %d,%d", got[0].Heat, got[1].Heat)
	}
	// Input must be unmodified.
	if streams[0].Heat != 1 {
		t.Error("WeighByAccesses mutated its input")
	}
}
