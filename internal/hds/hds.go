// Package hds mines hot data streams from the object-granular reference
// string of a profiling trace.
//
// A hot data stream (HDS) is a set of hot objects that are accessed
// together repeatedly (Chilimbi & Shaham 2006). The original work detects
// them with Sequitur grammar inference; the paper replaces Sequitur with a
// Longest-Common-Subsequence miner "because it is highly efficient and as
// effective as Sequitur" (§3.1). This package implements both, so the
// substitution itself can be validated (see the ablation bench).
//
// Output of either miner is an OHDS: the observed HDS list in descending
// order of memory references, the input of the layout reconstitution
// algorithm (Algorithm 1).
package hds

import (
	"sort"

	"prefix/internal/mem"
)

// Stream is one hot data stream: an ordered list of distinct objects that
// tend to be accessed in this order, plus its heat.
type Stream struct {
	Objects []mem.ObjectID
	// Heat estimates the memory references attributable to the stream
	// (frequency × length); OHDS is sorted by it, descending.
	Heat uint64
}

// Contains reports whether the stream includes obj.
func (s Stream) Contains(obj mem.ObjectID) bool {
	for _, o := range s.Objects {
		if o == obj {
			return true
		}
	}
	return false
}

// Key returns a canonical string of the ordered member list, used to merge
// duplicate discoveries.
func (s Stream) Key() string {
	b := make([]byte, 0, len(s.Objects)*8)
	for _, o := range s.Objects {
		v := uint64(o)
		for i := 0; i < 8; i++ {
			b = append(b, byte(v))
			v >>= 8
		}
	}
	return string(b)
}

// Config controls mining.
type Config struct {
	// MinLength is the minimum number of distinct objects in a stream
	// (an HDS needs at least two objects to be useful, §2.1).
	MinLength int
	// MinFrequency is the minimum number of repetitions.
	MinFrequency int
	// MaxStreams caps the OHDS size.
	MaxStreams int
	// Window is the LCS miner's window length in references.
	Window int
	// Lags are the window offsets the LCS miner compares at: lag 1 finds
	// patterns that repeat back-to-back, larger lags find periodic
	// patterns whose period spans several windows (an interpreter loop
	// revisiting the same objects every N dispatches).
	Lags []int
}

// DefaultConfig mirrors the profiling setup used throughout the
// evaluation.
func DefaultConfig() Config {
	return Config{
		MinLength:    2,
		MinFrequency: 2,
		MaxStreams:   256,
		Window:       64,
		Lags:         []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64},
	}
}

// CollapseRefs filters a reference string to hot objects and collapses
// consecutive duplicates, the standard preprocessing for both miners
// (repeated accesses to one object carry no inter-object locality signal).
func CollapseRefs(refs []mem.ObjectID, hot map[mem.ObjectID]bool) []mem.ObjectID {
	out := make([]mem.ObjectID, 0, len(refs))
	var last mem.ObjectID
	for _, r := range refs {
		if hot != nil && !hot[r] {
			continue
		}
		if r == last && len(out) > 0 {
			continue
		}
		out = append(out, r)
		last = r
	}
	return out
}

// dedupeOrdered removes repeated objects from a sequence, keeping first
// occurrences, so a Stream's member list is a set with an order.
func dedupeOrdered(seq []mem.ObjectID) []mem.ObjectID {
	seen := make(map[mem.ObjectID]bool, len(seq))
	out := seq[:0:0]
	for _, o := range seq {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// rankAndTrim merges duplicate streams, drops short or rare ones, sorts by
// heat and applies the cap — producing a valid OHDS.
func rankAndTrim(streams []Stream, cfg Config) []Stream {
	merged := make(map[string]*Stream)
	var order []string
	for _, s := range streams {
		s.Objects = dedupeOrdered(s.Objects)
		if len(s.Objects) < cfg.MinLength {
			continue
		}
		k := s.Key()
		if m, ok := merged[k]; ok {
			m.Heat += s.Heat
		} else {
			cp := s
			merged[k] = &cp
			order = append(order, k)
		}
	}
	out := make([]Stream, 0, len(merged))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Heat > out[j].Heat })
	if cfg.MaxStreams > 0 && len(out) > cfg.MaxStreams {
		out = out[:cfg.MaxStreams]
	}
	return out
}

// Objects returns the union of member objects across streams.
func Objects(streams []Stream) map[mem.ObjectID]bool {
	set := make(map[mem.ObjectID]bool)
	for _, s := range streams {
		for _, o := range s.Objects {
			set[o] = true
		}
	}
	return set
}
