package hds

import (
	"reflect"
	"testing"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

// naiveLCS is the original closure-indexed formulation, kept verbatim as
// an oracle for the row-sliced kernel: identical recurrence, identical
// tie-break (prefer advancing b), identical traceback.
func naiveLCS(a, b []mem.ObjectID) []mem.ObjectID {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	dp := make([]uint32, (n+1)*(m+1))
	at := func(i, j int) uint32 { return dp[i*(m+1)+j] }
	set := func(i, j int, v uint32) { dp[i*(m+1)+j] = v }
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				set(i, j, at(i-1, j-1)+1)
			} else if at(i-1, j) >= at(i, j-1) {
				set(i, j, at(i-1, j))
			} else {
				set(i, j, at(i, j-1))
			}
		}
	}
	out := make([]mem.ObjectID, at(n, m))
	k := len(out)
	for i, j := n, m; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			k--
			out[k] = a[i-1]
			i--
			j--
		case at(i-1, j) >= at(i, j-1):
			i--
		default:
			j--
		}
	}
	return out
}

func randSeq(rng *xrand.Rand, n, alphabet int) []mem.ObjectID {
	s := make([]mem.ObjectID, n)
	for i := range s {
		s[i] = mem.ObjectID(rng.Uint64n(uint64(alphabet)) + 1)
	}
	return s
}

// TestLCSKernelMatchesNaive: the optimized kernel — including the
// reused-buffer path, where the table retains a previous pair's interior
// cells — must return exactly the naive result, not just one of equal
// length.
func TestLCSKernelMatchesNaive(t *testing.T) {
	rng := xrand.New(1234)
	var lb lcsBuf // reused across all pairs, like MineLCS uses it
	for trial := 0; trial < 300; trial++ {
		n := int(rng.Uint64n(70))
		m := int(rng.Uint64n(70))
		a := randSeq(rng, n, 6)
		b := randSeq(rng, m, 6)
		want := naiveLCS(a, b)
		if got := lb.lcs(a, b); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (reused buf): lcs(%v, %v) = %v, want %v", trial, a, b, got, want)
		}
		if got := LCS(a, b); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (fresh buf): got %v, want %v", trial, got, want)
		}
	}
}

// TestLCSBufGrowsAndShrinks: a buffer sized for a big pair must still be
// correct for a following smaller pair (the reuse path slices down and
// clears only row 0 / column 0).
func TestLCSBufGrowsAndShrinks(t *testing.T) {
	rng := xrand.New(77)
	var lb lcsBuf
	big := randSeq(rng, 120, 4)
	if got, want := lb.lcs(big, big), naiveLCS(big, big); !reflect.DeepEqual(got, want) {
		t.Fatal("big pair wrong")
	}
	small := randSeq(rng, 9, 3)
	other := randSeq(rng, 13, 3)
	if got, want := lb.lcs(small, other), naiveLCS(small, other); !reflect.DeepEqual(got, want) {
		t.Fatalf("small pair after big: got %v, want %v", got, want)
	}
}
