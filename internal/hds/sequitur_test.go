package hds

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func feed(s *Sequitur, seq []mem.ObjectID) {
	for _, v := range seq {
		s.Append(v)
	}
}

func TestSequiturLossless(t *testing.T) {
	inputs := [][]mem.ObjectID{
		ids(1),
		ids(1, 2, 3),
		ids(1, 2, 1, 2),
		ids(1, 2, 3, 1, 2, 3, 1, 2, 3),
		ids(1, 1, 1, 1, 1, 1),
		ids(1, 2, 1, 2, 3, 1, 2, 1, 2, 3),
	}
	for _, in := range inputs {
		s := NewSequitur()
		feed(s, in)
		got := s.Expansion()
		if len(got) != len(in) {
			t.Fatalf("expansion of %v = %v", in, got)
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("expansion of %v = %v", in, got)
			}
		}
	}
}

// TestSequiturLosslessRandom: property — grammar inference never loses or
// reorders symbols, for random strings over small alphabets (which force
// heavy rule creation).
func TestSequiturLosslessRandom(t *testing.T) {
	f := func(seed uint64, alphaBits uint8) bool {
		rng := xrand.New(seed)
		alpha := int(alphaBits%6) + 2
		in := make([]mem.ObjectID, 500)
		for i := range in {
			in[i] = mem.ObjectID(rng.Intn(alpha) + 1)
		}
		s := NewSequitur()
		feed(s, in)
		got := s.Expansion()
		if len(got) != len(in) {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSequiturFindsRepeatedPhrase(t *testing.T) {
	// The phrase (10,20,30) repeats eight times separated by noise.
	var in []mem.ObjectID
	for i := 0; i < 8; i++ {
		in = append(in, 10, 20, 30, mem.ObjectID(100+i))
	}
	s := NewSequitur()
	feed(s, in)
	streams := s.Streams(Config{MinLength: 2, MinFrequency: 2, MaxStreams: 16})
	if len(streams) == 0 {
		t.Fatal("no streams found")
	}
	found := false
	for _, st := range streams {
		if st.Contains(10) && st.Contains(20) && st.Contains(30) {
			found = true
		}
	}
	if !found {
		t.Errorf("repeated phrase not detected: %+v", streams)
	}
}

func TestSequiturNoStreamsInUniqueString(t *testing.T) {
	var in []mem.ObjectID
	for i := 1; i <= 200; i++ {
		in = append(in, mem.ObjectID(i))
	}
	streams := MineSequitur(in, DefaultConfig())
	if len(streams) != 0 {
		t.Errorf("unique string produced streams: %+v", streams)
	}
}

func TestMineSequiturPeriodic(t *testing.T) {
	// A strictly periodic reference string: one dominant stream.
	var in []mem.ObjectID
	for i := 0; i < 50; i++ {
		in = append(in, 1, 2, 3, 4)
	}
	streams := MineSequitur(in, DefaultConfig())
	if len(streams) == 0 {
		t.Fatal("periodic input produced no streams")
	}
	top := streams[0]
	for _, want := range ids(1, 2, 3, 4) {
		if !top.Contains(want) {
			t.Errorf("top stream %v missing %v", top.Objects, want)
		}
	}
}
