package hds

import (
	"prefix/internal/mem"
)

// The LCS miner is the paper's replacement for Sequitur (§3.1): split the
// hot reference string into fixed-length windows and compute the Longest
// Common Subsequence between neighbouring windows. A subsequence common to
// two separate stretches of the trace is, by construction, a repeated
// access pattern — a hot data stream candidate. Candidates discovered from
// many window pairs accumulate heat and rise in the OHDS ranking.

// LCS computes a longest common subsequence of a and b with the classic
// O(len(a)·len(b)) dynamic program. Deterministic: on ties it prefers
// advancing b, so equal inputs yield equal outputs across runs.
func LCS(a, b []mem.ObjectID) []mem.ObjectID {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	// dp is (n+1)×(m+1) flattened.
	dp := make([]uint32, (n+1)*(m+1))
	at := func(i, j int) uint32 { return dp[i*(m+1)+j] }
	set := func(i, j int, v uint32) { dp[i*(m+1)+j] = v }
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				set(i, j, at(i-1, j-1)+1)
			} else if at(i-1, j) >= at(i, j-1) {
				set(i, j, at(i-1, j))
			} else {
				set(i, j, at(i, j-1))
			}
		}
	}
	out := make([]mem.ObjectID, at(n, m))
	k := len(out)
	for i, j := n, m; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			k--
			out[k] = a[i-1]
			i--
			j--
		case at(i-1, j) >= at(i, j-1):
			i--
		default:
			j--
		}
	}
	return out
}

// MineLCS mines hot data streams from a (hot-filtered, collapsed)
// reference string using windowed LCS.
func MineLCS(refs []mem.ObjectID, cfg Config) []Stream {
	w := cfg.Window
	if w <= 0 {
		w = 64
	}
	if len(refs) < 2*w {
		// Short profile: one LCS of the two halves still finds the
		// repeating core.
		half := len(refs) / 2
		if half < cfg.MinLength {
			return nil
		}
		sub := LCS(refs[:half], refs[half:])
		if len(dedupeOrdered(append([]mem.ObjectID(nil), sub...))) < cfg.MinLength {
			return nil
		}
		return rankAndTrim([]Stream{{Objects: sub, Heat: 2 * uint64(len(sub))}}, cfg)
	}

	// Candidate accumulation across window pairs at multiple lags.
	type acc struct {
		stream Stream
		count  uint64
	}
	cands := make(map[string]*acc)
	var order []string

	lags := cfg.Lags
	if len(lags) == 0 {
		lags = []int{1}
	}
	windows := len(refs) / w
	// Bound total LCS work: long profiles are sampled by striding the
	// anchor window. Each LCS is O(W²), so ~20k pairs keeps mining fast
	// regardless of trace length.
	const maxPairs = 20000
	step := 1
	if windows*len(lags) > maxPairs {
		step = (windows*len(lags) + maxPairs - 1) / maxPairs
	}
	for i := 0; i < windows; i += step {
		a := refs[i*w : (i+1)*w]
		for _, lag := range lags {
			j := i + lag
			if j >= windows {
				break
			}
			b := refs[j*w : (j+1)*w]
			sub := LCS(a, b)
			members := dedupeOrdered(append([]mem.ObjectID(nil), sub...))
			if len(members) < cfg.MinLength {
				continue
			}
			s := Stream{Objects: members}
			k := s.Key()
			if c, ok := cands[k]; ok {
				c.count++
			} else {
				cands[k] = &acc{stream: s, count: 1}
				order = append(order, k)
			}
		}
	}

	var out []Stream
	for _, k := range order {
		c := cands[k]
		freq := c.count + 1 // a match between two windows = 2 occurrences
		if int(freq) < cfg.MinFrequency {
			continue
		}
		s := c.stream
		s.Heat = freq * uint64(len(s.Objects))
		out = append(out, s)
	}
	return rankAndTrim(out, cfg)
}

// WeighByAccesses rescales stream heat by the total access counts of the
// member objects, producing the "descending order of memory references"
// ranking Algorithm 1 expects. accesses maps object → access count from
// the trace analysis.
func WeighByAccesses(streams []Stream, accesses map[mem.ObjectID]uint64) []Stream {
	out := make([]Stream, len(streams))
	copy(out, streams)
	for i := range out {
		var total uint64
		for _, o := range out[i].Objects {
			total += accesses[o]
		}
		out[i].Heat = total
	}
	// Stable to preserve miner order on ties.
	sortStreamsByHeat(out)
	return out
}

func sortStreamsByHeat(s []Stream) {
	// simple stable insertion by heat desc (stream lists are small)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Heat > s[j-1].Heat; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
