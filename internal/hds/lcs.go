package hds

import (
	"prefix/internal/mem"
)

// The LCS miner is the paper's replacement for Sequitur (§3.1): split the
// hot reference string into fixed-length windows and compute the Longest
// Common Subsequence between neighbouring windows. A subsequence common to
// two separate stretches of the trace is, by construction, a repeated
// access pattern — a hot data stream candidate. Candidates discovered from
// many window pairs accumulate heat and rise in the OHDS ranking.

// LCS computes a longest common subsequence of a and b with the classic
// O(len(a)·len(b)) dynamic program. Deterministic: on ties it prefers
// advancing b, so equal inputs yield equal outputs across runs.
//
//prefix:hotpath
func LCS(a, b []mem.ObjectID) []mem.ObjectID {
	var lb lcsBuf
	return lb.lcs(a, b)
}

// lcsBuf owns a reusable DP table so a mining loop computing thousands
// of window-pair LCSes allocates the table once instead of per pair.
// The zero value is ready to use.
type lcsBuf struct {
	dp []uint32
}

// lcs is LCS over the reusable table. The kernel walks two row slices of
// the flat (n+1)×(m+1) table directly — no per-cell index arithmetic or
// closure calls — and carries the row-running "left" value in a
// register; cell values (and therefore the traceback and the returned
// subsequence) are identical to the classic formulation.
//
//prefix:hotpath
func (lb *lcsBuf) lcs(a, b []mem.ObjectID) []mem.ObjectID {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	need := (n + 1) * (m + 1)
	if cap(lb.dp) < need {
		//lint:ignore hotalloc the table is the buffer being reused; it grows to the high-water mark once, then every later pair hits the else branch
		lb.dp = make([]uint32, need)
	} else {
		// Reuse the table: only row 0 and column 0 are read before being
		// written, so clearing just those O(n+m) cells resets it.
		lb.dp = lb.dp[:need]
		clear(lb.dp[:m+1])
		for i := 1; i <= n; i++ {
			lb.dp[i*(m+1)] = 0
		}
	}
	dp := lb.dp
	for i := 1; i <= n; i++ {
		ai := a[i-1]
		prev := dp[(i-1)*(m+1) : i*(m+1)]
		row := dp[i*(m+1) : (i+1)*(m+1)]
		var left uint32 // at(i, j-1)
		for j := 1; j <= m; j++ {
			v := prev[j] // at(i-1, j): ties prefer advancing b
			if ai == b[j-1] {
				v = prev[j-1] + 1
			} else if left > v {
				v = left
			}
			row[j] = v
			left = v
		}
	}
	// Traceback indexes the flat table directly (w = row stride).
	w := m + 1
	//lint:ignore hotalloc the returned subsequence is the function's product, sized exactly from the final cell
	out := make([]mem.ObjectID, dp[n*w+m])
	k := len(out)
	for i, j := n, m; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			k--
			out[k] = a[i-1]
			i--
			j--
		case dp[(i-1)*w+j] >= dp[i*w+j-1]:
			i--
		default:
			j--
		}
	}
	return out
}

// MineLCS mines hot data streams from a (hot-filtered, collapsed)
// reference string using windowed LCS.
func MineLCS(refs []mem.ObjectID, cfg Config) []Stream {
	w := cfg.Window
	if w <= 0 {
		w = 64
	}
	if len(refs) < 2*w {
		// Short profile: one LCS of the two halves still finds the
		// repeating core.
		half := len(refs) / 2
		if half < cfg.MinLength {
			return nil
		}
		sub := LCS(refs[:half], refs[half:])
		// dedupeOrdered never mutates its input, so sub is passed directly.
		if len(dedupeOrdered(sub)) < cfg.MinLength {
			return nil
		}
		return rankAndTrim([]Stream{{Objects: sub, Heat: 2 * uint64(len(sub))}}, cfg)
	}

	// Candidate accumulation across window pairs at multiple lags.
	type acc struct {
		stream Stream
		count  uint64
	}
	cands := make(map[string]*acc)
	var order []string
	var lb lcsBuf // one DP table reused across every window pair

	lags := cfg.Lags
	if len(lags) == 0 {
		lags = []int{1}
	}
	windows := len(refs) / w
	// Bound total LCS work: long profiles are sampled by striding the
	// anchor window. Each LCS is O(W²), so ~20k pairs keeps mining fast
	// regardless of trace length.
	const maxPairs = 20000
	step := 1
	if windows*len(lags) > maxPairs {
		step = (windows*len(lags) + maxPairs - 1) / maxPairs
	}
	for i := 0; i < windows; i += step {
		a := refs[i*w : (i+1)*w]
		for _, lag := range lags {
			j := i + lag
			if j >= windows {
				break
			}
			b := refs[j*w : (j+1)*w]
			sub := lb.lcs(a, b)
			members := dedupeOrdered(sub)
			if len(members) < cfg.MinLength {
				continue
			}
			s := Stream{Objects: members}
			k := s.Key()
			if c, ok := cands[k]; ok {
				c.count++
			} else {
				cands[k] = &acc{stream: s, count: 1}
				order = append(order, k)
			}
		}
	}

	var out []Stream
	for _, k := range order {
		c := cands[k]
		freq := c.count + 1 // a match between two windows = 2 occurrences
		if int(freq) < cfg.MinFrequency {
			continue
		}
		s := c.stream
		s.Heat = freq * uint64(len(s.Objects))
		out = append(out, s)
	}
	return rankAndTrim(out, cfg)
}

// WeighByAccesses rescales stream heat by the total access counts of the
// member objects, producing the "descending order of memory references"
// ranking Algorithm 1 expects. accesses maps object → access count from
// the trace analysis.
func WeighByAccesses(streams []Stream, accesses map[mem.ObjectID]uint64) []Stream {
	out := make([]Stream, len(streams))
	copy(out, streams)
	for i := range out {
		var total uint64
		for _, o := range out[i].Objects {
			total += accesses[o]
		}
		out[i].Heat = total
	}
	// Stable to preserve miner order on ties.
	sortStreamsByHeat(out)
	return out
}

func sortStreamsByHeat(s []Stream) {
	// simple stable insertion by heat desc (stream lists are small)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Heat > s[j-1].Heat; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
