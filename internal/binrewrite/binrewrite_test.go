package binrewrite

import (
	"testing"

	"prefix/internal/context"
	"prefix/internal/mem"
	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

func plan() *prefix.Plan {
	return &prefix.Plan{
		Benchmark:  "t",
		RegionSize: 256,
		Counters: []prefix.PlanCounter{
			{
				Sites: []mem.SiteID{1, 2},
				Kind:  context.KindFixed,
				Set:   []mem.Instance{1, 2, 3},
				SlotOf: map[mem.Instance]prefix.Slot{
					// Irregular offsets: the mapping needs a real table.
					1: {Offset: 0, Size: 64},
					2: {Offset: 64, Size: 16},
					3: {Offset: 176, Size: 64},
				},
			},
			{
				Sites:   []mem.SiteID{3},
				Kind:    context.KindAll,
				Recycle: &prefix.RecyclePlan{N: 2, SlotSize: 32, Base: 192},
			},
		},
		SiteCounter: map[mem.SiteID]int{1: 0, 2: 0, 3: 1},
	}
}

func info() workloads.BinaryInfo {
	return workloads.BinaryInfo{
		TextBytes:   100 << 10,
		MallocSites: 40, FreeSites: 20, ReallocSites: 2,
	}
}

func TestRewriteAccounting(t *testing.T) {
	r := Rewrite(info(), plan())
	want := uint64(RegionSetup) +
		3*MallocStub + // 3 instrumented sites
		20*FreeStub +
		2*ReallocStub +
		2*CounterBytes +
		3*FixedEntry +
		2*MapEntry // 2 irregular entries; the first anchors the formula
	if r.InstrBytes != want {
		t.Errorf("instr bytes = %d, want %d", r.InstrBytes, want)
	}
	if r.OrigTextBytes != 0 {
		t.Error("no .bolt.orig.text expected")
	}
	if r.OptBytes() != r.BaseBytes+r.InstrBytes {
		t.Error("opt size wrong")
	}
}

func TestRewriteBoltOrigText(t *testing.T) {
	in := info()
	in.BoltOrigText = true
	r := Rewrite(in, plan())
	if r.OrigTextBytes != in.TextBytes {
		t.Error("retained original text not accounted")
	}
	if r.GrowthPct() <= 100 {
		t.Errorf("growth with retained text should exceed 100%%, got %v", r.GrowthPct())
	}
	if r.InstrumentedGrowthPct() >= 100 {
		t.Errorf("instrumentation-only growth should be small, got %v", r.InstrumentedGrowthPct())
	}
}

func TestGrowthPctZeroBase(t *testing.T) {
	r := SizeReport{}
	if r.GrowthPct() != 0 || r.InstrumentedGrowthPct() != 0 {
		t.Error("zero base should not divide by zero")
	}
}

func TestComputedPlacementElidesTable(t *testing.T) {
	// Uniform-size contiguous placement: offset is a closed-form
	// function of the id — no mapping table bytes.
	uniform := &prefix.PlanCounter{
		Sites: []mem.SiteID{1},
		Kind:  context.KindAll,
		SlotOf: map[mem.Instance]prefix.Slot{
			1: {Offset: 0, Size: 64},
			2: {Offset: 64, Size: 64},
			3: {Offset: 128, Size: 64},
			4: {Offset: 192, Size: 64},
		},
	}
	if !computedPlacement(uniform) {
		t.Error("uniform placement should need no table")
	}
	// Interleaved pair sizes (record/cell): period-2 delta pattern.
	pairs := &prefix.PlanCounter{
		SlotOf: map[mem.Instance]prefix.Slot{
			1: {Offset: 0, Size: 48},
			2: {Offset: 48, Size: 32},
			3: {Offset: 80, Size: 48},
			4: {Offset: 128, Size: 32},
			5: {Offset: 160, Size: 48},
		},
	}
	if !computedPlacement(pairs) {
		t.Error("period-2 placement should need no table")
	}
	// Regularly gapped ids (a Regular pattern) are still computable.
	gap := &prefix.PlanCounter{
		SlotOf: map[mem.Instance]prefix.Slot{
			1: {Offset: 0, Size: 64},
			3: {Offset: 64, Size: 64},
			5: {Offset: 128, Size: 64},
		},
	}
	if !computedPlacement(gap) {
		t.Error("regularly gapped ids are computable")
	}
	// Irregular offsets need (mostly) stored entries.
	irregular := &prefix.PlanCounter{
		SlotOf: map[mem.Instance]prefix.Slot{
			1: {Offset: 0, Size: 64},
			2: {Offset: 64, Size: 16},
			3: {Offset: 176, Size: 64},
			4: {Offset: 180, Size: 4},
			5: {Offset: 400, Size: 64},
		},
	}
	if computedPlacement(irregular) {
		t.Error("irregular offsets require a table")
	}
}

func TestOnlyRelevantMallocSitesInstrumented(t *testing.T) {
	// 40 malloc sites in the binary but only 3 in the plan: growth must
	// scale with the plan (§2.3: "only relevant malloc sites ... are
	// instrumented").
	r := Rewrite(info(), plan())
	if r.InstrBytes >= uint64(40*MallocStub) {
		t.Error("instrumentation seems to cover all malloc sites")
	}
}
