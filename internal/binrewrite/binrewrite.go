// Package binrewrite models the LLVM-BOLT post-link rewriting step of the
// paper's pipeline (Figure 8): transforming the chosen malloc sites and
// all free/realloc sites of a binary into their instrumented forms, and
// accounting the resulting code-size growth (Figure 14).
//
// The model works on a BinaryInfo description of the executable rather
// than on machine code: what Figure 14 reports is pure size accounting —
// per-site instrumentation stubs, pattern tables, the id→offset mapping,
// and (for the four benchmarks where BOLT kept the original code) a
// duplicated .bolt.orig.text section.
package binrewrite

import (
	"sort"

	"prefix/internal/context"
	"prefix/internal/mem"
	"prefix/internal/prefix"
	"prefix/internal/workloads"
)

// Per-transform size constants, in bytes. They model the instrumentation
// sequences of Figures 4–7 on x86-64.
const (
	// MallocStub is the counter bump + pattern check + placement branch
	// inserted at each instrumented malloc site (Figure 4 / Figure 7).
	MallocStub = 96
	// FreeStub is the region range check at each free site (Figure 5).
	FreeStub = 48
	// ReallocStub is the Figure 6 sequence at each realloc site.
	ReallocStub = 112
	// CounterBytes is the static storage for one counter.
	CounterBytes = 16
	// FixedEntry / MapEntry are the table bytes per fixed id and per
	// id→offset mapping entry.
	FixedEntry = 8
	MapEntry   = 24
	// RegionSetup is the one-time preallocation/teardown code.
	RegionSetup = 256
)

// SizeReport is the Figure 14 row for one benchmark.
type SizeReport struct {
	Benchmark string
	BaseBytes uint64
	// InstrBytes is the instrumentation growth (stubs + tables).
	InstrBytes uint64
	// OrigTextBytes is the retained .bolt.orig.text (0 unless the
	// benchmark's BOLT configuration kept it).
	OrigTextBytes uint64
}

// OptBytes is the optimized binary's total size.
func (r SizeReport) OptBytes() uint64 {
	return r.BaseBytes + r.InstrBytes + r.OrigTextBytes
}

// GrowthPct is the relative size increase in percent.
func (r SizeReport) GrowthPct() float64 {
	if r.BaseBytes == 0 {
		return 0
	}
	return 100 * float64(r.OptBytes()-r.BaseBytes) / float64(r.BaseBytes)
}

// InstrumentedGrowthPct excludes the retained original text, the paper's
// observation that "excluding this section makes the code size bloat of
// these benchmarks similar to the other ones".
func (r SizeReport) InstrumentedGrowthPct() float64 {
	if r.BaseBytes == 0 {
		return 0
	}
	return 100 * float64(r.InstrBytes) / float64(r.BaseBytes)
}

// Rewrite sizes the instrumented binary produced by applying plan to the
// given executable.
func Rewrite(info workloads.BinaryInfo, plan *prefix.Plan) SizeReport {
	r := SizeReport{Benchmark: plan.Benchmark, BaseBytes: info.TextBytes}
	r.InstrBytes = RegionSetup
	// Only relevant malloc sites are instrumented (§2.3a)…
	r.InstrBytes += uint64(plan.NumSites()) * MallocStub
	// …but every free and realloc site needs the region check (§2.3b,c).
	r.InstrBytes += uint64(info.FreeSites) * FreeStub
	r.InstrBytes += uint64(info.ReallocSites) * ReallocStub
	for i := range plan.Counters {
		c := &plan.Counters[i]
		r.InstrBytes += CounterBytes
		if c.Kind == context.KindFixed {
			r.InstrBytes += uint64(len(c.Set)) * FixedEntry
		}
		r.InstrBytes += uint64(tableEntries(c)) * MapEntry
	}
	if info.BoltOrigText {
		r.OrigTextBytes = info.TextBytes
	}
	return r
}

// tableEntries models the size of a counter's id→offset mapping. When
// hot ids and offsets mostly advance with a short repeating delta pattern
// (uniform-size objects placed in allocation order, interleaved pairs
// like record/cell), the offset is a closed-form function of the id and
// only the *irregular* entries — stream-reordered objects, gaps — need
// stored exceptions. This is the common case for the "all ids"
// benchmarks with tens of thousands of placed objects.
func tableEntries(c *prefix.PlanCounter) int {
	n := len(c.SlotOf)
	if n < 3 {
		return n
	}
	ids := make([]mem.Instance, 0, n)
	for id := range c.SlotOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type step struct {
		idGap uint64
		delta int64
	}
	steps := make([]step, 0, n-1)
	for i := 1; i < n; i++ {
		steps = append(steps, step{
			idGap: uint64(ids[i] - ids[i-1]),
			delta: int64(c.SlotOf[ids[i]].Offset) - int64(c.SlotOf[ids[i-1]].Offset),
		})
	}
	best := n // worst case: every entry stored
	for period := 1; period <= 4 && period < len(steps); period++ {
		anomalies := 1 // the first entry anchors the formula
		for i := period; i < len(steps); i++ {
			if steps[i] != steps[i-period] {
				anomalies++
			}
		}
		if anomalies < best {
			best = anomalies
		}
	}
	return best
}

// computedPlacement reports whether the mapping needs no table at all.
func computedPlacement(c *prefix.PlanCounter) bool {
	return len(c.SlotOf) == 0 || (len(c.SlotOf) >= 3 && tableEntries(c) <= 1)
}
