// Package simalloc implements a malloc-style heap allocator over a
// simulated 64-bit address space. It is the substrate every strategy in
// this repository allocates from: the baseline runs use it directly, and
// the HDS / HALO / PreFix strategies fall back to it for objects they do
// not capture.
//
// The allocator is a segregated free-list design in the spirit of dlmalloc:
//
//   - every block carries a 16-byte header (accounted, not stored — no real
//     memory backs the simulated space);
//   - payloads are 16-byte aligned;
//   - freed blocks are coalesced with free neighbours and indexed in
//     size-class bins; allocation is first-fit within the best bin
//     (address-ordered), which reproduces the address-reuse behaviour that
//     scatters hot objects between cold ones in real heaps — exactly the
//     phenomenon PreFix exists to fix;
//   - the heap grows by extending a contiguous break (sbrk-style).
//
// The allocator also tracks the statistics the evaluation needs: live
// bytes, peak footprint (paper Table 6), and operation counts.
package simalloc

import (
	"fmt"
	"sort"

	"prefix/internal/mem"
	"prefix/internal/obs"
)

const (
	// HeaderSize models the per-block malloc metadata.
	HeaderSize = 16
	// Alignment of returned payload addresses.
	Alignment = 16
	// MinPayload is the smallest payload a block can hold; frees smaller
	// than this still occupy MinPayload bytes.
	MinPayload = 16
)

// numBins segregates free blocks by size class: bins 0..31 hold exact
// 16-byte multiples up to 512 bytes, later bins are logarithmic.
const numBins = 48

// block is an allocated or free region of the simulated heap.
// Blocks partition the heap: every byte between heapStart and brk belongs
// to exactly one block.
type block struct {
	addr mem.Addr // payload address
	size uint64   // payload size (aligned)
	free bool
}

// Heap is the simulated allocator. It is not safe for concurrent use; the
// machine layer serializes access (the simulation interleaves logical
// threads deterministically).
type Heap struct {
	heapStart mem.Addr
	brk       mem.Addr

	// blocks maps payload address -> block, for O(1) free/realloc.
	blocks map[mem.Addr]*block
	// byStart is the address-ordered list of all blocks for neighbour
	// coalescing; maps block start (addr) to the previous block's start.
	next map[mem.Addr]mem.Addr
	prev map[mem.Addr]mem.Addr
	last mem.Addr // highest block start, NilAddr when heap empty

	bins [numBins][]mem.Addr // address-ordered free lists

	stats Stats
}

// Stats summarizes allocator activity.
type Stats struct {
	Mallocs     uint64
	Frees       uint64
	Reallocs    uint64
	LiveBytes   uint64 // payload bytes currently allocated
	LiveBlocks  uint64
	GrossBytes  uint64 // payload + header bytes inside the break
	PeakBytes   uint64 // peak of GrossBytes: the paper's "peak memory"
	BrkExtends  uint64
	Coalesces   uint64
	FailedFrees uint64 // frees of unknown addresses (always a caller bug)
}

// Fragmentation returns the share of the heap break not backing live
// payloads: (GrossBytes - LiveBytes) / GrossBytes, in [0,1]. An empty
// heap reports 0.
func (s Stats) Fragmentation() float64 {
	if s.GrossBytes == 0 {
		return 0
	}
	return float64(s.GrossBytes-s.LiveBytes) / float64(s.GrossBytes)
}

// Publish reports the heap's activity and footprint — live/gross/peak
// bytes, fragmentation, operation counts — into reg under the given label
// pairs. Nil-safe on a nil registry.
func (s Stats) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	reg.Counter("prefix_heap_mallocs_total", kv...).Add(s.Mallocs)
	reg.Counter("prefix_heap_frees_total", kv...).Add(s.Frees)
	reg.Counter("prefix_heap_reallocs_total", kv...).Add(s.Reallocs)
	reg.Counter("prefix_heap_brk_extends_total", kv...).Add(s.BrkExtends)
	reg.Counter("prefix_heap_coalesces_total", kv...).Add(s.Coalesces)
	reg.Counter("prefix_heap_failed_frees_total", kv...).Add(s.FailedFrees)
	reg.Gauge("prefix_heap_live_bytes", kv...).Set(float64(s.LiveBytes))
	reg.Gauge("prefix_heap_live_blocks", kv...).Set(float64(s.LiveBlocks))
	reg.Gauge("prefix_heap_gross_bytes", kv...).Set(float64(s.GrossBytes))
	reg.Gauge("prefix_heap_peak_bytes", kv...).Set(float64(s.PeakBytes))
	reg.Gauge("prefix_heap_fragmentation", kv...).Set(s.Fragmentation())
}

// New creates an empty heap whose break starts at base. Strategies place
// their private regions far from base so the address spaces never overlap.
func New(base mem.Addr) *Heap {
	if base == mem.NilAddr {
		base = 0x10000
	}
	return &Heap{
		heapStart: base,
		brk:       base,
		blocks:    make(map[mem.Addr]*block),
		next:      make(map[mem.Addr]mem.Addr),
		prev:      make(map[mem.Addr]mem.Addr),
		last:      mem.NilAddr,
	}
}

// Base returns the lowest address the heap manages.
func (h *Heap) Base() mem.Addr { return h.heapStart }

// Brk returns the current heap break (first unowned address).
func (h *Heap) Brk() mem.Addr { return h.brk }

// Stats returns a copy of the allocator statistics.
func (h *Heap) Stats() Stats { return h.stats }

func binFor(size uint64) int {
	if size <= 512 {
		b := int(size / 16)
		if b >= 32 {
			b = 31
		}
		return b
	}
	// logarithmic bins above 512
	b := 32
	s := uint64(1024)
	for size > s && b < numBins-1 {
		s <<= 1
		b++
	}
	return b
}

// Malloc allocates size payload bytes and returns the payload address.
// A size of zero allocates MinPayload bytes, matching common mallocs that
// return distinct pointers for zero-byte requests.
func (h *Heap) Malloc(size uint64) mem.Addr {
	h.stats.Mallocs++
	size = mem.AlignUp(maxU64(size, MinPayload), Alignment)

	if a := h.takeFree(size); a != mem.NilAddr {
		b := h.blocks[a]
		h.stats.LiveBytes += b.size
		h.stats.LiveBlocks++
		return a
	}

	// Extend the break.
	payload := h.brk + HeaderSize
	b := &block{addr: payload, size: size}
	h.blocks[payload] = b
	h.linkAfter(h.last, payload)
	h.brk = payload + mem.Addr(size)
	h.stats.BrkExtends++
	h.stats.GrossBytes += size + HeaderSize
	if h.stats.GrossBytes > h.stats.PeakBytes {
		h.stats.PeakBytes = h.stats.GrossBytes
	}
	h.stats.LiveBytes += size
	h.stats.LiveBlocks++
	return payload
}

// takeFree pops the lowest-addressed free block that fits size, splitting
// it when the remainder can hold another block.
func (h *Heap) takeFree(size uint64) mem.Addr {
	for bin := binFor(size); bin < numBins; bin++ {
		list := h.bins[bin]
		for i, a := range list {
			b := h.blocks[a]
			if b == nil || !b.free {
				continue // stale entry, cleaned below
			}
			if b.size < size {
				continue
			}
			// Remove from bin.
			h.bins[bin] = append(list[:i:i], list[i+1:]...)
			b.free = false
			// Split if worthwhile.
			if b.size >= size+HeaderSize+MinPayload {
				remAddr := b.addr + mem.Addr(size) + HeaderSize
				rem := &block{addr: remAddr, size: b.size - size - HeaderSize, free: true}
				b.size = size
				h.blocks[remAddr] = rem
				h.linkAfter(b.addr, remAddr)
				h.pushFree(rem)
			}
			return a
		}
	}
	return mem.NilAddr
}

func (h *Heap) pushFree(b *block) {
	bin := binFor(b.size)
	// Keep the bin address-ordered so reuse is lowest-address-first, the
	// behaviour that interleaves recycled hot slots with cold data.
	list := h.bins[bin]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= b.addr })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = b.addr
	h.bins[bin] = list
}

func (h *Heap) removeFree(a mem.Addr, size uint64) {
	bin := binFor(size)
	list := h.bins[bin]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= a })
	if i < len(list) && list[i] == a {
		h.bins[bin] = append(list[:i:i], list[i+1:]...)
	}
}

// Free releases the block at addr. Freeing an address the heap does not
// own returns false (callers treat that as a bug in the workload).
func (h *Heap) Free(addr mem.Addr) bool {
	b := h.blocks[addr]
	if b == nil || b.free {
		h.stats.FailedFrees++
		return false
	}
	h.stats.Frees++
	h.stats.LiveBytes -= b.size
	h.stats.LiveBlocks--
	b.free = true
	h.coalesce(b)
	return true
}

// coalesce merges b with free neighbours and files the result in a bin.
func (h *Heap) coalesce(b *block) {
	// Merge with next neighbour(s).
	for {
		na, ok := h.next[b.addr]
		if !ok {
			break
		}
		nb := h.blocks[na]
		if nb == nil || !nb.free {
			break
		}
		h.removeFree(na, nb.size)
		h.unlink(na)
		delete(h.blocks, na)
		b.size += nb.size + HeaderSize
		h.stats.Coalesces++
	}
	// Merge into previous neighbour if free.
	if pa, ok := h.prev[b.addr]; ok {
		pb := h.blocks[pa]
		if pb != nil && pb.free {
			h.removeFree(pa, pb.size)
			h.unlink(b.addr)
			delete(h.blocks, b.addr)
			pb.size += b.size + HeaderSize
			h.stats.Coalesces++
			h.pushFree(pb)
			return
		}
	}
	h.pushFree(b)
}

// Realloc resizes the block at addr to newSize, returning the (possibly
// moved) payload address and the number of payload bytes preserved. A nil
// addr behaves like Malloc.
func (h *Heap) Realloc(addr mem.Addr, newSize uint64) (mem.Addr, uint64) {
	h.stats.Reallocs++
	if addr == mem.NilAddr {
		return h.Malloc(newSize), 0
	}
	b := h.blocks[addr]
	if b == nil || b.free {
		h.stats.FailedFrees++
		return h.Malloc(newSize), 0
	}
	newSize = mem.AlignUp(maxU64(newSize, MinPayload), Alignment)
	if newSize <= b.size {
		return addr, newSize // shrink in place (no block split for simplicity)
	}
	old := b.size
	na := h.Malloc(newSize)
	h.Free(addr)
	return na, old
}

// SizeOf returns the payload size of the live block at addr, or 0 if addr
// is not a live payload address.
func (h *Heap) SizeOf(addr mem.Addr) uint64 {
	b := h.blocks[addr]
	if b == nil || b.free {
		return 0
	}
	return b.size
}

// Owns reports whether addr is a payload address the heap has ever issued
// and that is currently live.
func (h *Heap) Owns(addr mem.Addr) bool {
	b := h.blocks[addr]
	return b != nil && !b.free
}

// linkAfter inserts block na after pa in address order (pa == NilAddr
// appends at the very start when the heap is empty).
func (h *Heap) linkAfter(pa, na mem.Addr) {
	if pa == mem.NilAddr {
		h.last = na
		return
	}
	if n, ok := h.next[pa]; ok {
		h.next[na] = n
		h.prev[n] = na
	}
	h.next[pa] = na
	h.prev[na] = pa
	if pa == h.last {
		h.last = na
	}
}

func (h *Heap) unlink(a mem.Addr) {
	p, hasP := h.prev[a]
	n, hasN := h.next[a]
	if hasP && hasN {
		h.next[p] = n
		h.prev[n] = p
	} else if hasP {
		delete(h.next, p)
		h.last = p
	} else if hasN {
		delete(h.prev, n)
	}
	delete(h.prev, a)
	delete(h.next, a)
	if h.last == a {
		if hasP {
			h.last = p
		} else {
			h.last = mem.NilAddr
		}
	}
}

// CheckInvariants validates internal consistency; tests call it after
// randomized operation sequences. It returns an error describing the first
// violation found.
func (h *Heap) CheckInvariants() error {
	// Walk address order, ensure blocks tile [heapStart, brk) exactly.
	var walk []mem.Addr
	for a := range h.blocks {
		walk = append(walk, a)
	}
	sort.Slice(walk, func(i, j int) bool { return walk[i] < walk[j] })
	cursor := h.heapStart
	var live, liveBlocks uint64
	for _, a := range walk {
		b := h.blocks[a]
		if a != cursor+HeaderSize {
			return fmt.Errorf("simalloc: block %v does not start at cursor %v+header", a, cursor)
		}
		if !mem.IsAligned(uint64(a), Alignment) {
			return fmt.Errorf("simalloc: block %v misaligned", a)
		}
		if !b.free {
			live += b.size
			liveBlocks++
		}
		cursor = a + mem.Addr(b.size)
	}
	if cursor != h.brk {
		return fmt.Errorf("simalloc: blocks end at %v, brk is %v", cursor, h.brk)
	}
	if live != h.stats.LiveBytes {
		return fmt.Errorf("simalloc: live bytes %d != stats %d", live, h.stats.LiveBytes)
	}
	if liveBlocks != h.stats.LiveBlocks {
		return fmt.Errorf("simalloc: live blocks %d != stats %d", liveBlocks, h.stats.LiveBlocks)
	}
	// No free block may appear twice across bins, and all bin entries must
	// reference live free blocks.
	seen := make(map[mem.Addr]bool)
	for bin, list := range h.bins {
		for _, a := range list {
			b := h.blocks[a]
			if b == nil {
				return fmt.Errorf("simalloc: bin %d holds deleted block %v", bin, a)
			}
			if !b.free {
				return fmt.Errorf("simalloc: bin %d holds allocated block %v", bin, a)
			}
			if seen[a] {
				return fmt.Errorf("simalloc: block %v filed twice", a)
			}
			seen[a] = true
		}
	}
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
