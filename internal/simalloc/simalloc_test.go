package simalloc

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func TestMallocAlignmentAndDistinctness(t *testing.T) {
	h := New(0x10000)
	seen := make(map[mem.Addr]bool)
	for i := 0; i < 100; i++ {
		a := h.Malloc(uint64(i * 3))
		if a == mem.NilAddr {
			t.Fatal("nil address")
		}
		if !mem.IsAligned(uint64(a), Alignment) {
			t.Fatalf("misaligned address %v", a)
		}
		if seen[a] {
			t.Fatalf("address %v handed out twice while live", a)
		}
		seen[a] = true
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeMalloc(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(0)
	b := h.Malloc(0)
	if a == b {
		t.Error("zero-size allocations must be distinct")
	}
	if h.SizeOf(a) < MinPayload {
		t.Errorf("zero-size allocation got %d bytes", h.SizeOf(a))
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(64)
	h.Malloc(64) // guard so the freed block does not merge into brk
	if !h.Free(a) {
		t.Fatal("free of live block failed")
	}
	b := h.Malloc(64)
	if a != b {
		t.Errorf("expected address reuse: freed %v, got %v", a, b)
	}
}

func TestDoubleFree(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(64)
	if !h.Free(a) {
		t.Fatal("first free failed")
	}
	if h.Free(a) {
		t.Error("double free should report failure")
	}
	if h.Stats().FailedFrees != 1 {
		t.Errorf("FailedFrees = %d, want 1", h.Stats().FailedFrees)
	}
}

func TestFreeUnknownAddress(t *testing.T) {
	h := New(0x10000)
	if h.Free(0xdeadbeef) {
		t.Error("freeing unknown address should fail")
	}
}

func TestCoalescingMergesNeighbours(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(64)
	b := h.Malloc(64)
	c := h.Malloc(64)
	h.Malloc(64) // tail guard
	h.Free(a)
	h.Free(c)
	h.Free(b) // should merge with both neighbours
	if h.Stats().Coalesces == 0 {
		t.Error("expected coalescing")
	}
	// The merged block must satisfy a request the fragments could not:
	// 3 payloads + 2 reclaimed headers.
	big := h.Malloc(64*3 + 2*HeaderSize)
	if big != a {
		t.Errorf("expected merged block at %v, got %v", a, big)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLargeBlock(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(1024)
	h.Malloc(16) // guard
	h.Free(a)
	small := h.Malloc(64)
	if small != a {
		t.Errorf("small alloc should reuse split block start %v, got %v", a, small)
	}
	second := h.Malloc(64)
	if !(second > small && second < a+1024) {
		t.Errorf("second alloc should come from the remainder, got %v", second)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocGrowPreservesAccounting(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(64)
	h.Malloc(16) // block growth in place
	na, copied := h.Realloc(a, 256)
	if na == a {
		t.Error("grow with a neighbour should move")
	}
	if copied != 64 {
		t.Errorf("copied = %d, want 64", copied)
	}
	if h.SizeOf(na) < 256 {
		t.Errorf("new block too small: %d", h.SizeOf(na))
	}
	if h.Owns(a) {
		t.Error("old block should be freed")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocShrinkInPlace(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(256)
	na, _ := h.Realloc(a, 64)
	if na != a {
		t.Error("shrink should stay in place")
	}
}

func TestReallocNil(t *testing.T) {
	h := New(0x10000)
	a, copied := h.Realloc(mem.NilAddr, 128)
	if a == mem.NilAddr || copied != 0 {
		t.Errorf("Realloc(nil) = %v,%d", a, copied)
	}
}

func TestPeakTracking(t *testing.T) {
	h := New(0x10000)
	var addrs []mem.Addr
	for i := 0; i < 10; i++ {
		addrs = append(addrs, h.Malloc(1024))
	}
	peak := h.Stats().PeakBytes
	for _, a := range addrs {
		h.Free(a)
	}
	if h.Stats().PeakBytes != peak {
		t.Error("peak must not drop after frees")
	}
	if h.Stats().LiveBytes != 0 {
		t.Errorf("live bytes = %d after freeing everything", h.Stats().LiveBytes)
	}
	// Reusing freed space must not raise the peak.
	h.Malloc(1024)
	if h.Stats().PeakBytes != peak {
		t.Error("reuse should not raise peak")
	}
}

func TestStatsCounts(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(32)
	b := h.Malloc(32)
	h.Free(a)
	h.Realloc(b, 64)
	s := h.Stats()
	if s.Mallocs < 2 || s.Frees < 1 || s.Reallocs != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestOwns(t *testing.T) {
	h := New(0x10000)
	a := h.Malloc(64)
	if !h.Owns(a) {
		t.Error("should own live block")
	}
	h.Free(a)
	if h.Owns(a) {
		t.Error("should not own freed block")
	}
}

// TestRandomOperationsInvariant drives the allocator with random
// malloc/free/realloc sequences and validates the internal invariants and
// that live blocks never overlap.
func TestRandomOperationsInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		h := New(0x10000)
		type blk struct {
			addr mem.Addr
			size uint64
		}
		var live []blk
		for op := 0; op < 400; op++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.5:
				size := rng.Uint64n(600)
				a := h.Malloc(size)
				live = append(live, blk{a, h.SizeOf(a)})
			case rng.Float64() < 0.6:
				i := rng.Intn(len(live))
				if !h.Free(live[i].addr) {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			default:
				i := rng.Intn(len(live))
				na, _ := h.Realloc(live[i].addr, rng.Uint64n(800))
				live[i] = blk{na, h.SizeOf(na)}
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		// No two live blocks may overlap.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				ri := mem.Range{Start: live[i].addr, Size: live[i].size}
				rj := mem.Range{Start: live[j].addr, Size: live[j].size}
				if ri.Overlaps(rj) {
					t.Logf("overlap: %v %v", ri, rj)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinFor(t *testing.T) {
	if binFor(16) == binFor(4096) {
		t.Error("small and large sizes should use different bins")
	}
	for size := uint64(16); size <= 1<<20; size *= 2 {
		b := binFor(size)
		if b < 0 || b >= numBins {
			t.Fatalf("binFor(%d) = %d out of range", size, b)
		}
	}
	if binFor(1<<40) >= numBins {
		t.Error("huge size overflows bins")
	}
}

func TestBrkGrowsMonotonically(t *testing.T) {
	h := New(0x10000)
	prev := h.Brk()
	for i := 0; i < 50; i++ {
		h.Malloc(128)
		if h.Brk() < prev {
			t.Fatal("brk moved backwards")
		}
		prev = h.Brk()
	}
	if h.Base() != 0x10000 {
		t.Errorf("base = %v", h.Base())
	}
}
