// Package callstack tracks the dynamic call stack of a simulated program
// and produces the call-stack signatures that calling-context-based
// techniques (HALO, and the prior work surveyed in §2.2) use to identify
// allocation contexts.
//
// A signature is a 64-bit hash over the sequence of function ids currently
// on the stack. Identical stacks always produce identical signatures — the
// very property that makes calling contexts imprecise for hot-object
// detection: every allocation executed under the same stack is
// indistinguishable (paper Figure 3).
package callstack

import "prefix/internal/mem"

// Stack is a dynamic call stack. The zero value is an empty stack rooted
// at an implicit "main".
type Stack struct {
	frames []mem.FuncID
	sigs   []mem.StackSig // running signature per depth, so Sig is O(1)
}

const (
	fnv64Offset = 0xcbf29ce484222325
	fnv64Prime  = 0x100000001b3
)

// Push enters a function.
func (s *Stack) Push(fn mem.FuncID) {
	prev := mem.StackSig(fnv64Offset)
	if n := len(s.sigs); n > 0 {
		prev = s.sigs[n-1]
	}
	h := uint64(prev)
	v := uint64(fn)
	for i := 0; i < 4; i++ {
		h ^= v & 0xff
		h *= fnv64Prime
		v >>= 8
	}
	s.frames = append(s.frames, fn)
	s.sigs = append(s.sigs, mem.StackSig(h))
}

// Pop leaves the current function. Popping an empty stack is a no-op so a
// mismatched workload cannot corrupt the tracker.
func (s *Stack) Pop() {
	if n := len(s.frames); n > 0 {
		s.frames = s.frames[:n-1]
		s.sigs = s.sigs[:n-1]
	}
}

// Depth returns the number of frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Sig returns the signature of the current stack. The empty stack has the
// FNV offset basis as its signature.
//
//prefix:hotpath
func (s *Stack) Sig() mem.StackSig {
	if n := len(s.sigs); n > 0 {
		return s.sigs[n-1]
	}
	return mem.StackSig(fnv64Offset)
}

// Frames returns a copy of the current frames, outermost first.
func (s *Stack) Frames() []mem.FuncID {
	out := make([]mem.FuncID, len(s.frames))
	copy(out, s.frames)
	return out
}

// SigOf computes the signature of an explicit frame sequence; analyses use
// it to reason about hypothetical contexts without a live Stack.
func SigOf(frames []mem.FuncID) mem.StackSig {
	var s Stack
	for _, f := range frames {
		s.Push(f)
	}
	return s.Sig()
}
