package callstack

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
)

func TestPushPopDepth(t *testing.T) {
	var s Stack
	if s.Depth() != 0 {
		t.Fatal("empty stack depth != 0")
	}
	s.Push(1)
	s.Push(2)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	s.Pop()
	if s.Depth() != 1 {
		t.Fatalf("depth = %d", s.Depth())
	}
	s.Pop()
	s.Pop() // underflow is a no-op
	if s.Depth() != 0 {
		t.Fatal("underflow corrupted depth")
	}
}

func TestSigDeterministic(t *testing.T) {
	var a, b Stack
	for _, fn := range []mem.FuncID{1, 2, 3} {
		a.Push(fn)
		b.Push(fn)
	}
	if a.Sig() != b.Sig() {
		t.Error("identical stacks must share a signature")
	}
}

func TestSigRestoredAfterPop(t *testing.T) {
	var s Stack
	s.Push(1)
	sig1 := s.Sig()
	s.Push(2)
	s.Pop()
	if s.Sig() != sig1 {
		t.Error("signature not restored after pop")
	}
}

func TestSigOrderMatters(t *testing.T) {
	if SigOf([]mem.FuncID{1, 2}) == SigOf([]mem.FuncID{2, 1}) {
		t.Error("stack order must affect signature")
	}
}

func TestSigDepthMatters(t *testing.T) {
	if SigOf([]mem.FuncID{1}) == SigOf([]mem.FuncID{1, 1}) {
		t.Error("recursion depth must affect signature")
	}
}

func TestEmptySig(t *testing.T) {
	var s Stack
	if s.Sig() != SigOf(nil) {
		t.Error("empty stack signature mismatch")
	}
}

func TestFramesCopy(t *testing.T) {
	var s Stack
	s.Push(1)
	s.Push(2)
	f := s.Frames()
	if len(f) != 2 || f[0] != 1 || f[1] != 2 {
		t.Fatalf("frames = %v", f)
	}
	f[0] = 99
	if s.Frames()[0] != 1 {
		t.Error("Frames must return a copy")
	}
}

// TestNoCollisionsSmallSets verifies distinct short stacks get distinct
// signatures — the precision calling-context techniques rely on.
func TestNoCollisionsSmallSets(t *testing.T) {
	seen := make(map[mem.StackSig][]mem.FuncID)
	for a := mem.FuncID(1); a <= 20; a++ {
		for b := mem.FuncID(0); b <= 20; b++ {
			frames := []mem.FuncID{a}
			if b != 0 {
				frames = append(frames, b)
			}
			sig := SigOf(frames)
			if prev, dup := seen[sig]; dup {
				t.Fatalf("collision: %v and %v -> %v", prev, frames, sig)
			}
			seen[sig] = frames
		}
	}
}

// TestSigMatchesRebuild: property — pushing the frames of any stack into
// a fresh stack reproduces the signature (the "identical call stacks are
// indistinguishable" property that pollutes HALO pools).
func TestSigMatchesRebuild(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Stack
		frames := make([]mem.FuncID, 0, len(raw))
		for _, r := range raw {
			fn := mem.FuncID(r)
			s.Push(fn)
			frames = append(frames, fn)
		}
		return s.Sig() == SigOf(frames)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
