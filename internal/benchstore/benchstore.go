// Package benchstore gives suite runs a durable, comparable record: each
// run's per-benchmark headline metrics are snapshotted (with git/platform
// metadata) into a BENCH_<timestamp>.json document, and any run can be
// diffed against a recorded baseline — the bench suite's CI-enforceable
// regression gate. The tracked metrics are the evaluation's headline
// numbers: best-variant cycles, cache miss rates, baseline pollution,
// PreFix capture precision, and peak memory — plus, since schema 2, the
// per-benchmark host cost (wall time, events/sec throughput, heap
// allocation, GC pauses) and, since schema 4, the analyze stage's own
// throughput and shard count, so the simulator's own performance
// trajectory is gated alongside the simulated results.
package benchstore

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"prefix/internal/pipeline"
)

// Schema is the document version; bump on incompatible field changes.
// Version 2 added the per-benchmark "host" section; version 3 the
// optional per-benchmark "attrib" section (recorded only by attributed
// runs); version 4 the per-benchmark "analysis" section (the analyze
// stage's own wall time, events/sec, and shard count). Version 1
// documents (no host stats) still load, so old baselines keep gating
// the simulated metrics.
const Schema = 4

// minReadSchema is the oldest document version Read still accepts.
const minReadSchema = 1

// Run is one recorded suite run.
type Run struct {
	Schema     int         `json:"schema"`
	Timestamp  string      `json:"timestamp"` // RFC3339 UTC
	GitSHA     string      `json:"git_sha,omitempty"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Jobs       int         `json:"jobs"`
	Scale      string      `json:"scale"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's headline results within a run.
type Benchmark struct {
	Name           string  `json:"name"`
	BaselineCycles float64 `json:"baseline_cycles"`
	BestVariant    string  `json:"best_variant"`
	BestCycles     float64 `json:"best_cycles"`
	// TimeDeltaPct is the best variant's execution-time change vs the
	// baseline (negative = reduction, Table 3 convention).
	TimeDeltaPct float64 `json:"time_delta_pct"`
	// L1MissPct/LLCMissPct are the best run's miss rates in percent.
	L1MissPct  float64 `json:"l1_miss_pct"`
	LLCMissPct float64 `json:"llc_miss_pct"`
	// HDSSpurious/HALOSpurious are the baselines' polluting (non-hot)
	// region placements (Table 4).
	HDSSpurious  uint64 `json:"hds_spurious"`
	HALOSpurious uint64 `json:"halo_spurious"`
	// CapturePct is the best run's capture precision: the share of
	// plan-matched allocations served from the preallocated region
	// (mallocs avoided / (mallocs avoided + fallbacks)), in percent.
	CapturePct float64 `json:"capture_pct"`
	PeakBytes  uint64  `json:"peak_bytes"`
	// Host is the benchmark job's measured host cost (schema 2; nil in
	// v1 documents and in runs recorded without a perfstat collector).
	Host *HostStats `json:"host,omitempty"`
	// Attrib is the best run's per-site attribution summary (schema 3;
	// nil in older documents and in runs recorded without -attrib).
	Attrib *AttribStats `json:"attrib,omitempty"`
	// Analysis is the profiling analyze stage's own host cost (schema 4;
	// nil in older documents and in runs recorded without a perfstat
	// collector) — the series the sharded-analysis path is gated on.
	Analysis *AnalysisStats `json:"analysis,omitempty"`
}

// HostStats is the per-benchmark host-cost section: what the simulator
// itself spent evaluating the benchmark, as measured by perfstat.
type HostStats struct {
	WallNanos    int64   `json:"wall_nanos"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	GCPauseNanos uint64  `json:"gc_pause_nanos"`
	Goroutines   int     `json:"goroutines,omitempty"`
}

// AttribStats is the per-benchmark attribution section: how the best
// run's LLC misses distribute over allocation sites. Only attributed
// runs record it; gating on its metrics silently skips when either the
// baseline or the run lacks the section.
type AttribStats struct {
	// Sites is the number of allocation sites with attributed traffic.
	Sites int `json:"sites"`
	// TopSite is the site with the largest LLC-miss share, and
	// TopSiteLLCPct its share of the run's total LLC misses in percent.
	TopSite       uint32  `json:"top_site"`
	TopSiteLLCPct float64 `json:"top_site_llc_pct"`
	// UnattributedLLCPct is the share of LLC misses that hit memory no
	// tracked allocation owns (globals, stacks, freed objects).
	UnattributedLLCPct float64 `json:"unattributed_llc_pct"`
}

// AnalysisStats is the per-benchmark analyze-stage section: what the
// trace analysis alone cost on the host, and how many shards produced
// it (1 = the legacy single-pass analyzer). EventsPerSec divides the
// profiling trace's event count by the stage's wall time — the number
// the sharded path exists to raise.
type AnalysisStats struct {
	WallNanos    int64   `json:"wall_nanos"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Shards       int     `json:"shards"`
}

// Meta is the run-level metadata recorded alongside the results.
type Meta struct {
	Timestamp time.Time
	GitSHA    string
	Jobs      int
	Scale     string
}

// FromComparisons snapshots a comparison suite into a Run. GOOS/GOARCH
// are filled from the running binary.
func FromComparisons(cmps []*pipeline.Comparison, meta Meta) *Run {
	run := &Run{
		Schema:    Schema,
		Timestamp: meta.Timestamp.UTC().Format(time.RFC3339),
		GitSHA:    meta.GitSHA,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Jobs:      meta.Jobs,
		Scale:     meta.Scale,
	}
	for _, c := range cmps {
		best := c.BestResult()
		b := Benchmark{
			Name:           c.Benchmark,
			BaselineCycles: c.Baseline.Metrics.Cycles,
			BestVariant:    c.Best.String(),
			BestCycles:     best.Metrics.Cycles,
			TimeDeltaPct:   best.TimeDeltaPct(c.Baseline),
			L1MissPct:      100 * best.Metrics.Cache.L1MissRate(),
			LLCMissPct:     100 * best.Metrics.Cache.LLCMissRate(),
			PeakBytes:      best.PeakBytes,
		}
		if p := c.HDS.Pollution; p != nil {
			b.HDSSpurious = p.Spurious()
		}
		if p := c.HALO.Pollution; p != nil {
			b.HALOSpurious = p.Spurious()
		}
		if cap := best.Capture; cap != nil {
			if total := cap.MallocsAvoided + cap.FallbackMallocs; total > 0 {
				b.CapturePct = 100 * float64(cap.MallocsAvoided) / float64(total)
			}
		}
		if a := best.Attrib; a.Enabled {
			st := &AttribStats{}
			total := a.Total().LLCMisses
			for _, s := range a.Sites {
				if s.Site != 0 && s.Counts.Accesses > 0 {
					st.Sites++
				}
			}
			if top := a.Top(1); len(top) > 0 {
				st.TopSite = uint32(top[0].Site)
				st.TopSiteLLCPct = a.LLCMissSharePct(top[0].Site)
			}
			if sentinel, ok := a.Of(0); ok && total > 0 {
				st.UnattributedLLCPct = 100 * float64(sentinel.Counts.LLCMisses) / float64(total)
			}
			b.Attrib = st
		}
		if p := c.Profile; p != nil && p.AnalysisHost != nil {
			b.Analysis = &AnalysisStats{
				WallNanos:    p.AnalysisHost.WallNanos,
				Events:       p.AnalysisHost.Events,
				EventsPerSec: p.AnalysisHost.EventsPerSec(),
				Shards:       p.AnalysisShards,
			}
		}
		if h := c.Host; h != nil {
			b.Host = &HostStats{
				WallNanos:    h.WallNanos,
				Events:       h.Events,
				EventsPerSec: h.EventsPerSec(),
				Allocs:       h.Allocs,
				AllocBytes:   h.AllocBytes,
				GCPauseNanos: h.GCPauseNanos,
				Goroutines:   h.Goroutines,
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run
}

// Filename renders the canonical snapshot name for a run started at t:
// BENCH_20060102T150405Z.json.
func Filename(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// GitSHA returns the repository's short HEAD commit in dir, or "" when
// git (or the repository) is unavailable — metadata, never an error.
func GitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short=12", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Write writes the run as indented JSON.
func (r *Run) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the run to path.
func (r *Run) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Read parses a run document, rejecting unknown schema versions. Every
// version from minReadSchema through Schema loads: a v1 baseline simply
// has no host sections, and gating degrades gracefully (host metrics
// only gate once a baseline records them).
func Read(rd io.Reader) (*Run, error) {
	var run Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("benchstore: %w", err)
	}
	if run.Schema < minReadSchema || run.Schema > Schema {
		return nil, fmt.Errorf("benchstore: unsupported schema %d (want %d..%d)", run.Schema, minReadSchema, Schema)
	}
	return &run, nil
}

// ReadFile reads a run document from path.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// metric is one gated series: its name, direction, threshold slack, and
// accessor.
type metric struct {
	name        string
	higherWorse bool // false: lower is worse (e.g. capture precision)
	// slack multiplies the gate threshold for this metric (0 = 1×). The
	// simulated metrics are deterministic, so they gate at the raw
	// threshold; host-measured metrics vary with the machine and get
	// headroom so hardware differences don't gate while order-of-
	// magnitude collapses still do.
	slack float64
	get   func(Benchmark) float64
}

// threshold returns the metric's effective gate threshold.
func (m metric) threshold(regressPct float64) float64 {
	if m.slack > 0 {
		return regressPct * m.slack
	}
	return regressPct
}

// tracked is the regression-gated metric set.
var tracked = []metric{
	{name: "baseline_cycles", higherWorse: true, get: func(b Benchmark) float64 { return b.BaselineCycles }},
	{name: "best_cycles", higherWorse: true, get: func(b Benchmark) float64 { return b.BestCycles }},
	{name: "l1_miss_pct", higherWorse: true, get: func(b Benchmark) float64 { return b.L1MissPct }},
	{name: "llc_miss_pct", higherWorse: true, get: func(b Benchmark) float64 { return b.LLCMissPct }},
	{name: "hds_spurious", higherWorse: true, get: func(b Benchmark) float64 { return float64(b.HDSSpurious) }},
	{name: "halo_spurious", higherWorse: true, get: func(b Benchmark) float64 { return float64(b.HALOSpurious) }},
	{name: "capture_pct", higherWorse: false, get: func(b Benchmark) float64 { return b.CapturePct }},
	{name: "peak_bytes", higherWorse: true, get: func(b Benchmark) float64 { return float64(b.PeakBytes) }},
	// events_per_sec is the schema-2 host throughput: lower is worse. A
	// v1 baseline (no host section) reads as 0, and a higher current
	// value is an improvement, so old baselines never gate on it. The
	// 1.5× slack keeps the effective threshold meaningful for a metric
	// whose drop maxes out at 100%: at the smoke gate's -regress-pct 50
	// it takes a 75% throughput drop (a 4× slowdown, past any plausible
	// machine-to-machine variance) to fail.
	{name: "events_per_sec", higherWorse: false, slack: 1.5, get: func(b Benchmark) float64 {
		if b.Host == nil {
			return 0
		}
		return b.Host.EventsPerSec
	}},
	// analysis_events_per_sec gates the schema-4 analyze-stage
	// throughput: lower is worse, and the same 1.5× host-metric slack
	// applies. NaN marks the section absent (a pre-v4 baseline, or a run
	// recorded without perfstat), so the metric gates only between two
	// documents that both carry it.
	{name: "analysis_events_per_sec", higherWorse: false, slack: 1.5, get: func(b Benchmark) float64 {
		if b.Analysis == nil {
			return math.NaN()
		}
		return b.Analysis.EventsPerSec
	}},
	// The attrib_* metrics gate the schema-3 attribution section. NaN
	// marks the section absent (a run without -attrib, or a pre-v3
	// baseline); degradation skips NaN on either side, so attribution
	// gates only between two attributed runs. Both are deterministic
	// simulated quantities, so they gate at the raw threshold: the
	// hottest site's miss concentration and the share of misses escaping
	// attribution entirely must not balloon.
	{name: "attrib_top_site_llc_pct", higherWorse: true, get: func(b Benchmark) float64 {
		if b.Attrib == nil {
			return math.NaN()
		}
		return b.Attrib.TopSiteLLCPct
	}},
	{name: "attrib_unattributed_llc_pct", higherWorse: true, get: func(b Benchmark) float64 {
		if b.Attrib == nil {
			return math.NaN()
		}
		return b.Attrib.UnattributedLLCPct
	}},
}

// Regression is one tracked metric that degraded past the threshold, or
// a benchmark that vanished from the run entirely.
type Regression struct {
	Benchmark string
	Metric    string
	Baseline  float64
	Current   float64
	// ChangePct is the degradation in percent (positive = worse;
	// +Inf when the baseline value was 0 and the run's is not).
	ChangePct float64
	// Missing marks a benchmark recorded in the baseline but absent
	// from the current run.
	Missing bool
	// New marks a benchmark present in the current run but absent from
	// the baseline. New entries are informational — Gate reports them
	// without failing, since an addition is not a regression — but they
	// surface unrecorded coverage so the baseline gets refreshed.
	New bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: missing from run (present in baseline)", r.Benchmark)
	}
	if r.New {
		return fmt.Sprintf("%s: not in baseline (new in run; refresh the baseline to track it)", r.Benchmark)
	}
	change := fmt.Sprintf("%+.2f%%", r.ChangePct)
	if math.IsInf(r.ChangePct, 1) {
		change = "+inf%"
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%s)", r.Benchmark, r.Metric, r.Baseline, r.Current, change)
}

// Compare diffs current against baseline and returns every tracked
// metric that degraded by more than regressPct percent (scaled by the
// metric's slack for host-measured series), plus any benchmark missing
// from the current run and — flagged New — any benchmark present in the
// run but absent from the baseline. Results are ordered by baseline
// benchmark name then tracked-metric order, with New entries appended
// (sorted by name) at the end.
func Compare(baseline, current *Run, regressPct float64) []Regression {
	byName := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		byName[b.Name] = b
	}
	inBaseline := make(map[string]bool, len(baseline.Benchmarks))
	base := append([]Benchmark(nil), baseline.Benchmarks...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	var regs []Regression
	for _, bb := range base {
		inBaseline[bb.Name] = true
		cb, ok := byName[bb.Name]
		if !ok {
			regs = append(regs, Regression{Benchmark: bb.Name, Missing: true})
			continue
		}
		for _, m := range tracked {
			bv, cv := m.get(bb), m.get(cb)
			change, worse := degradation(bv, cv, m.higherWorse)
			if worse && change > m.threshold(regressPct) {
				regs = append(regs, Regression{
					Benchmark: bb.Name, Metric: m.name,
					Baseline: bv, Current: cv, ChangePct: change,
				})
			}
		}
	}
	var added []string
	for _, cb := range current.Benchmarks {
		if !inBaseline[cb.Name] {
			added = append(added, cb.Name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		regs = append(regs, Regression{Benchmark: name, New: true})
	}
	return regs
}

// degradation returns how much worse cur is than base, in percent of
// base, and whether it moved in the worse direction at all. A zero base
// with a worse cur is an infinite degradation (it always gates). NaN on
// either side marks an optional section absent from that document; the
// metric is skipped rather than gated.
func degradation(base, cur float64, higherWorse bool) (pct float64, worse bool) {
	if math.IsNaN(base) || math.IsNaN(cur) {
		return 0, false
	}
	delta := cur - base
	if !higherWorse {
		delta = -delta
	}
	if delta <= 0 {
		return 0, false
	}
	if base == 0 {
		return math.Inf(1), true
	}
	return 100 * delta / math.Abs(base), true
}

// Gate prints the comparison verdict to w and returns a non-nil error
// naming every offending benchmark and metric when any tracked metric
// regressed past regressPct.
func Gate(w io.Writer, baseline, current *Run, regressPct float64) error {
	fmt.Fprintf(w, "regression gate: run vs baseline %s (git %s, %d benchmarks), threshold +%g%%\n",
		baseline.Timestamp, orNone(baseline.GitSHA), len(baseline.Benchmarks), regressPct)
	regs := Compare(baseline, current, regressPct)
	var names []string
	for _, r := range regs {
		switch {
		case r.New:
			// Informational: an added benchmark is not a regression, but
			// it is untracked coverage until the baseline is refreshed.
			fmt.Fprintf(w, "  NEW        %s\n", r)
		case r.Missing:
			fmt.Fprintf(w, "  REGRESSED  %s\n", r)
			names = append(names, r.Benchmark+" (missing)")
		default:
			fmt.Fprintf(w, "  REGRESSED  %s\n", r)
			names = append(names, r.Benchmark+" "+r.Metric)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(w, "  ok: no tracked metric regressed more than %g%%\n", regressPct)
		return nil
	}
	return fmt.Errorf("benchstore: %d regression(s) past %g%%: %s",
		len(names), regressPct, strings.Join(names, ", "))
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
