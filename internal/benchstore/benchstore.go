// Package benchstore gives suite runs a durable, comparable record: each
// run's per-benchmark headline metrics are snapshotted (with git/platform
// metadata) into a BENCH_<timestamp>.json document, and any run can be
// diffed against a recorded baseline — the bench suite's CI-enforceable
// regression gate. The tracked metrics are the evaluation's headline
// numbers: best-variant cycles, cache miss rates, baseline pollution,
// PreFix capture precision, and peak memory.
package benchstore

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"prefix/internal/pipeline"
)

// Schema is the document version; bump on incompatible field changes.
const Schema = 1

// Run is one recorded suite run.
type Run struct {
	Schema     int         `json:"schema"`
	Timestamp  string      `json:"timestamp"` // RFC3339 UTC
	GitSHA     string      `json:"git_sha,omitempty"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Jobs       int         `json:"jobs"`
	Scale      string      `json:"scale"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's headline results within a run.
type Benchmark struct {
	Name           string  `json:"name"`
	BaselineCycles float64 `json:"baseline_cycles"`
	BestVariant    string  `json:"best_variant"`
	BestCycles     float64 `json:"best_cycles"`
	// TimeDeltaPct is the best variant's execution-time change vs the
	// baseline (negative = reduction, Table 3 convention).
	TimeDeltaPct float64 `json:"time_delta_pct"`
	// L1MissPct/LLCMissPct are the best run's miss rates in percent.
	L1MissPct  float64 `json:"l1_miss_pct"`
	LLCMissPct float64 `json:"llc_miss_pct"`
	// HDSSpurious/HALOSpurious are the baselines' polluting (non-hot)
	// region placements (Table 4).
	HDSSpurious  uint64 `json:"hds_spurious"`
	HALOSpurious uint64 `json:"halo_spurious"`
	// CapturePct is the best run's capture precision: the share of
	// plan-matched allocations served from the preallocated region
	// (mallocs avoided / (mallocs avoided + fallbacks)), in percent.
	CapturePct float64 `json:"capture_pct"`
	PeakBytes  uint64  `json:"peak_bytes"`
}

// Meta is the run-level metadata recorded alongside the results.
type Meta struct {
	Timestamp time.Time
	GitSHA    string
	Jobs      int
	Scale     string
}

// FromComparisons snapshots a comparison suite into a Run. GOOS/GOARCH
// are filled from the running binary.
func FromComparisons(cmps []*pipeline.Comparison, meta Meta) *Run {
	run := &Run{
		Schema:    Schema,
		Timestamp: meta.Timestamp.UTC().Format(time.RFC3339),
		GitSHA:    meta.GitSHA,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Jobs:      meta.Jobs,
		Scale:     meta.Scale,
	}
	for _, c := range cmps {
		best := c.BestResult()
		b := Benchmark{
			Name:           c.Benchmark,
			BaselineCycles: c.Baseline.Metrics.Cycles,
			BestVariant:    c.Best.String(),
			BestCycles:     best.Metrics.Cycles,
			TimeDeltaPct:   best.TimeDeltaPct(c.Baseline),
			L1MissPct:      100 * best.Metrics.Cache.L1MissRate(),
			LLCMissPct:     100 * best.Metrics.Cache.LLCMissRate(),
			PeakBytes:      best.PeakBytes,
		}
		if p := c.HDS.Pollution; p != nil {
			b.HDSSpurious = p.Spurious()
		}
		if p := c.HALO.Pollution; p != nil {
			b.HALOSpurious = p.Spurious()
		}
		if cap := best.Capture; cap != nil {
			if total := cap.MallocsAvoided + cap.FallbackMallocs; total > 0 {
				b.CapturePct = 100 * float64(cap.MallocsAvoided) / float64(total)
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run
}

// Filename renders the canonical snapshot name for a run started at t:
// BENCH_20060102T150405Z.json.
func Filename(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// GitSHA returns the repository's short HEAD commit in dir, or "" when
// git (or the repository) is unavailable — metadata, never an error.
func GitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short=12", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Write writes the run as indented JSON.
func (r *Run) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the run to path.
func (r *Run) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Read parses a run document, rejecting unknown schema versions.
func Read(rd io.Reader) (*Run, error) {
	var run Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("benchstore: %w", err)
	}
	if run.Schema != Schema {
		return nil, fmt.Errorf("benchstore: unsupported schema %d (want %d)", run.Schema, Schema)
	}
	return &run, nil
}

// ReadFile reads a run document from path.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// metric is one gated series: its name, direction, and accessor.
type metric struct {
	name        string
	higherWorse bool // false: lower is worse (e.g. capture precision)
	get         func(Benchmark) float64
}

// tracked is the regression-gated metric set.
var tracked = []metric{
	{"baseline_cycles", true, func(b Benchmark) float64 { return b.BaselineCycles }},
	{"best_cycles", true, func(b Benchmark) float64 { return b.BestCycles }},
	{"l1_miss_pct", true, func(b Benchmark) float64 { return b.L1MissPct }},
	{"llc_miss_pct", true, func(b Benchmark) float64 { return b.LLCMissPct }},
	{"hds_spurious", true, func(b Benchmark) float64 { return float64(b.HDSSpurious) }},
	{"halo_spurious", true, func(b Benchmark) float64 { return float64(b.HALOSpurious) }},
	{"capture_pct", false, func(b Benchmark) float64 { return b.CapturePct }},
	{"peak_bytes", true, func(b Benchmark) float64 { return float64(b.PeakBytes) }},
}

// Regression is one tracked metric that degraded past the threshold, or
// a benchmark that vanished from the run entirely.
type Regression struct {
	Benchmark string
	Metric    string
	Baseline  float64
	Current   float64
	// ChangePct is the degradation in percent (positive = worse;
	// +Inf when the baseline value was 0 and the run's is not).
	ChangePct float64
	// Missing marks a benchmark recorded in the baseline but absent
	// from the current run.
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: missing from run (present in baseline)", r.Benchmark)
	}
	change := fmt.Sprintf("%+.2f%%", r.ChangePct)
	if math.IsInf(r.ChangePct, 1) {
		change = "+inf%"
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%s)", r.Benchmark, r.Metric, r.Baseline, r.Current, change)
}

// Compare diffs current against baseline and returns every tracked
// metric that degraded by more than regressPct percent, plus any
// benchmark missing from the current run. Benchmarks new in the current
// run are ignored (additions are not regressions). Results are ordered
// by benchmark name, then tracked-metric order.
func Compare(baseline, current *Run, regressPct float64) []Regression {
	byName := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		byName[b.Name] = b
	}
	base := append([]Benchmark(nil), baseline.Benchmarks...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	var regs []Regression
	for _, bb := range base {
		cb, ok := byName[bb.Name]
		if !ok {
			regs = append(regs, Regression{Benchmark: bb.Name, Missing: true})
			continue
		}
		for _, m := range tracked {
			bv, cv := m.get(bb), m.get(cb)
			change, worse := degradation(bv, cv, m.higherWorse)
			if worse && change > regressPct {
				regs = append(regs, Regression{
					Benchmark: bb.Name, Metric: m.name,
					Baseline: bv, Current: cv, ChangePct: change,
				})
			}
		}
	}
	return regs
}

// degradation returns how much worse cur is than base, in percent of
// base, and whether it moved in the worse direction at all. A zero base
// with a worse cur is an infinite degradation (it always gates).
func degradation(base, cur float64, higherWorse bool) (pct float64, worse bool) {
	delta := cur - base
	if !higherWorse {
		delta = -delta
	}
	if delta <= 0 {
		return 0, false
	}
	if base == 0 {
		return math.Inf(1), true
	}
	return 100 * delta / math.Abs(base), true
}

// Gate prints the comparison verdict to w and returns a non-nil error
// naming every offending benchmark and metric when any tracked metric
// regressed past regressPct.
func Gate(w io.Writer, baseline, current *Run, regressPct float64) error {
	fmt.Fprintf(w, "regression gate: run vs baseline %s (git %s, %d benchmarks), threshold +%g%%\n",
		baseline.Timestamp, orNone(baseline.GitSHA), len(baseline.Benchmarks), regressPct)
	regs := Compare(baseline, current, regressPct)
	if len(regs) == 0 {
		fmt.Fprintf(w, "  ok: no tracked metric regressed more than %g%%\n", regressPct)
		return nil
	}
	names := make([]string, len(regs))
	for i, r := range regs {
		fmt.Fprintf(w, "  REGRESSED  %s\n", r)
		if r.Missing {
			names[i] = r.Benchmark + " (missing)"
		} else {
			names[i] = r.Benchmark + " " + r.Metric
		}
	}
	return fmt.Errorf("benchstore: %d regression(s) past %g%%: %s",
		len(regs), regressPct, strings.Join(names, ", "))
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
