package benchstore

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"prefix/internal/baselines"
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/obs/perfstat"
	"prefix/internal/pipeline"
	"prefix/internal/prefix"
)

func sampleRun() *Run {
	return &Run{
		Schema:    Schema,
		Timestamp: "2026-08-05T12:00:00Z",
		GitSHA:    "abc123def456",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Jobs:      8,
		Scale:     "bench",
		Benchmarks: []Benchmark{
			{
				Name: "mcf", BaselineCycles: 1000, BestVariant: "hds+hot",
				BestCycles: 900, TimeDeltaPct: -10, L1MissPct: 5, LLCMissPct: 0.5,
				HDSSpurious: 12, HALOSpurious: 3, CapturePct: 95, PeakBytes: 1 << 20,
				Host: &HostStats{
					WallNanos: 2_000_000_000, Events: 500_000_000, EventsPerSec: 250e6,
					Allocs: 1_000_000, AllocBytes: 64 << 20, GCPauseNanos: 3_000_000, Goroutines: 8,
				},
			},
			{
				Name: "health", BaselineCycles: 500, BestVariant: "hot",
				BestCycles: 480, TimeDeltaPct: -4, L1MissPct: 2, LLCMissPct: 0.1,
				CapturePct: 80, PeakBytes: 1 << 18,
				Host: &HostStats{
					WallNanos: 500_000_000, Events: 100_000_000, EventsPerSec: 200e6,
					Allocs: 200_000, AllocBytes: 8 << 20, GCPauseNanos: 1_000_000, Goroutines: 8,
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	run := sampleRun()
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, got) {
		t.Errorf("round trip mismatch:\n  wrote %+v\n  read  %+v", run, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	run := sampleRun()
	if err := run.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, got) {
		t.Error("file round trip mismatch")
	}
}

func TestReadRejectsSchema(t *testing.T) {
	in := strings.NewReader(`{"schema": 99, "benchmarks": []}`)
	if _, err := Read(in); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("Read(schema 99) = %v, want unsupported-schema error", err)
	}
	in = strings.NewReader(`{"schema": 0, "benchmarks": []}`)
	if _, err := Read(in); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("Read(schema 0) = %v, want unsupported-schema error", err)
	}
}

// TestReadV1Compat: a schema-1 baseline (recorded before the host
// section existed) must still load, with nil Host sections.
func TestReadV1Compat(t *testing.T) {
	in := strings.NewReader(`{
		"schema": 1,
		"timestamp": "2026-08-01T00:00:00Z",
		"goos": "linux", "goarch": "amd64", "jobs": 4, "scale": "bench",
		"benchmarks": [
			{"name": "mcf", "baseline_cycles": 1000, "best_variant": "hot",
			 "best_cycles": 900, "time_delta_pct": -10, "l1_miss_pct": 5,
			 "llc_miss_pct": 0.5, "hds_spurious": 12, "halo_spurious": 3,
			 "capture_pct": 95, "peak_bytes": 1048576}
		]
	}`)
	run, err := Read(in)
	if err != nil {
		t.Fatalf("Read(v1 doc) = %v, want success", err)
	}
	if run.Schema != 1 || len(run.Benchmarks) != 1 {
		t.Fatalf("v1 doc = schema %d, %d benchmarks", run.Schema, len(run.Benchmarks))
	}
	if run.Benchmarks[0].Host != nil {
		t.Errorf("v1 benchmark Host = %+v, want nil", run.Benchmarks[0].Host)
	}
	// And a v1 baseline gates a v2 run without spurious events_per_sec
	// verdicts: the run's higher throughput is an improvement.
	if regs := Compare(run, sampleRun(), 5); len(regs) != 1 || !regs[0].New || regs[0].Benchmark != "health" {
		t.Errorf("v1-baseline Compare = %+v, want only health flagged New", regs)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("Read(garbage) = nil, want error")
	}
}

func TestFilename(t *testing.T) {
	at := time.Date(2026, 8, 5, 14, 30, 9, 0, time.FixedZone("x", 3600))
	if got, want := Filename(at), "BENCH_20260805T133009Z.json"; got != want {
		t.Errorf("Filename = %q, want %q (UTC-normalized)", got, want)
	}
}

func TestGitSHA(t *testing.T) {
	// The repo root is two levels up; a real git checkout yields a SHA.
	if sha := GitSHA("../.."); sha == "" {
		t.Skip("not a git checkout")
	} else if len(sha) != 12 {
		t.Errorf("GitSHA = %q, want 12 hex chars", sha)
	}
	if sha := GitSHA(t.TempDir()); sha != "" {
		t.Errorf("GitSHA(non-repo) = %q, want empty", sha)
	}
}

func TestFromComparisons(t *testing.T) {
	cmp := &pipeline.Comparison{
		Benchmark: "mcf",
		Baseline:  result(1000, 100, 5, 1, 0),
		HDS:       withPollution(result(980, 100, 5, 1, 0), 50, 30),
		HALO:      withPollution(result(970, 100, 5, 1, 0), 40, 36),
		PreFix: map[prefix.Variant]pipeline.RunResult{
			prefix.VariantHDSHot: withCapture(result(900, 100, 4, 1, 1<<20), 90, 10),
		},
		Best: prefix.VariantHDSHot,
		Host: &perfstat.Sample{
			Phase: "suite", WallNanos: 1_000_000_000, Events: 250_000_000,
			Allocs: 42, AllocBytes: 4096, GCPauseNanos: 777, Goroutines: 6,
		},
	}
	meta := Meta{
		Timestamp: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		GitSHA:    "deadbeef0000",
		Jobs:      4,
		Scale:     "bench",
	}
	run := FromComparisons([]*pipeline.Comparison{cmp}, meta)
	if run.Schema != Schema || run.Timestamp != "2026-08-05T12:00:00Z" ||
		run.GitSHA != "deadbeef0000" || run.Jobs != 4 || run.Scale != "bench" {
		t.Errorf("run metadata = %+v", run)
	}
	if len(run.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(run.Benchmarks))
	}
	b := run.Benchmarks[0]
	if b.Name != "mcf" || b.BaselineCycles != 1000 || b.BestVariant != "prefix:hds+hot" || b.BestCycles != 900 {
		t.Errorf("headline fields = %+v", b)
	}
	if b.TimeDeltaPct != -10 {
		t.Errorf("TimeDeltaPct = %v, want -10", b.TimeDeltaPct)
	}
	if b.L1MissPct != 4 || b.LLCMissPct != 1 {
		t.Errorf("miss rates = %v/%v, want 4/1", b.L1MissPct, b.LLCMissPct)
	}
	if b.HDSSpurious != 20 || b.HALOSpurious != 4 {
		t.Errorf("spurious = %d/%d, want 20/4", b.HDSSpurious, b.HALOSpurious)
	}
	if b.CapturePct != 90 {
		t.Errorf("CapturePct = %v, want 90", b.CapturePct)
	}
	if b.PeakBytes != 1<<20 {
		t.Errorf("PeakBytes = %d, want %d", b.PeakBytes, 1<<20)
	}
	if b.Host == nil {
		t.Fatal("Host section missing from snapshot")
	}
	want := HostStats{
		WallNanos: 1_000_000_000, Events: 250_000_000, EventsPerSec: 250e6,
		Allocs: 42, AllocBytes: 4096, GCPauseNanos: 777, Goroutines: 6,
	}
	if *b.Host != want {
		t.Errorf("Host = %+v, want %+v", *b.Host, want)
	}
}

// TestFromComparisonsNoHost: a run recorded without a perfstat collector
// omits the host section rather than writing zeros.
func TestFromComparisonsNoHost(t *testing.T) {
	cmp := &pipeline.Comparison{
		Benchmark: "mcf",
		Baseline:  result(1000, 100, 5, 1, 0),
		PreFix: map[prefix.Variant]pipeline.RunResult{
			prefix.VariantHot: result(900, 100, 4, 1, 1<<20),
		},
		Best: prefix.VariantHot,
	}
	run := FromComparisons([]*pipeline.Comparison{cmp}, Meta{Timestamp: time.Unix(0, 0)})
	if run.Benchmarks[0].Host != nil {
		t.Errorf("Host = %+v, want nil without a collector", run.Benchmarks[0].Host)
	}
}

// result fabricates a RunResult with the given cycles, accesses, and
// L1/LLC miss counts.
func result(cycles float64, accesses, l1, llc, peak uint64) pipeline.RunResult {
	return pipeline.RunResult{
		Metrics: machine.Metrics{
			Cycles: cycles,
			Cache:  cachesim.Counts{Accesses: accesses, L1Misses: l1, LLCMisses: llc},
		},
		PeakBytes: peak,
	}
}

func withPollution(r pipeline.RunResult, all, hot uint64) pipeline.RunResult {
	r.Pollution = &baselines.Pollution{All: all, Hot: hot}
	return r
}

func withCapture(r pipeline.RunResult, avoided, fallback uint64) pipeline.RunResult {
	r.Capture = &prefix.Capture{MallocsAvoided: avoided, FallbackMallocs: fallback}
	return r
}

func TestCompare(t *testing.T) {
	base := sampleRun()
	cases := []struct {
		name   string
		mutate func(*Run)
		pct    float64
		want   []string // "benchmark metric" per expected regression, in order
	}{
		{"identical", func(r *Run) {}, 5, nil},
		{
			"cycles regress past threshold",
			func(r *Run) { r.Benchmarks[0].BestCycles = 1000 }, // +11.1%
			5,
			[]string{"mcf best_cycles"},
		},
		{
			"cycles regress under threshold",
			func(r *Run) { r.Benchmarks[0].BestCycles = 930 }, // +3.3%
			5,
			nil,
		},
		{
			"improvement never gates",
			func(r *Run) {
				r.Benchmarks[0].BestCycles = 1
				r.Benchmarks[0].CapturePct = 99.9
			},
			0,
			nil,
		},
		{
			"capture precision drop (lower is worse)",
			func(r *Run) { r.Benchmarks[0].CapturePct = 50 }, // -47%
			5,
			[]string{"mcf capture_pct"},
		},
		{
			"zero baseline to nonzero is infinite",
			func(r *Run) { r.Benchmarks[1].HDSSpurious = 1 }, // health: 0 -> 1
			1000,
			[]string{"health hds_spurious"},
		},
		{
			"missing benchmark",
			func(r *Run) { r.Benchmarks = r.Benchmarks[:1] }, // drop health
			5,
			[]string{"health (missing)"},
		},
		{
			"added benchmark reported as new, never as a regression",
			func(r *Run) {
				r.Benchmarks = append(r.Benchmarks, Benchmark{Name: "extra", BestCycles: 1e9})
			},
			5,
			[]string{"extra (new)"},
		},
		{
			"events/sec regression past slack threshold",
			// -80% throughput: past 20% * 1.5x slack = 30%.
			func(r *Run) { r.Benchmarks[0].Host.EventsPerSec = 50e6 },
			20,
			[]string{"mcf events_per_sec"},
		},
		{
			"events/sec drop inside slack headroom",
			// -25% throughput: machine variance headroom, under the 30%
			// effective threshold even though 25 > 20.
			func(r *Run) { r.Benchmarks[0].Host.EventsPerSec = 187.5e6 },
			20,
			nil,
		},
		{
			"events/sec improvement never gates",
			func(r *Run) { r.Benchmarks[0].Host.EventsPerSec = 900e6 },
			0,
			nil,
		},
		{
			"host section lost from run gates at full drop",
			// A v2 baseline with host stats vs a run that lost them reads
			// as a 100% throughput drop — past every slacked threshold.
			func(r *Run) { r.Benchmarks[0].Host = nil; r.Benchmarks[1].Host = nil },
			20,
			[]string{"health events_per_sec", "mcf events_per_sec"},
		},
		{
			"multiple regressions ordered by benchmark then metric",
			func(r *Run) {
				r.Benchmarks[0].BaselineCycles = 2000
				r.Benchmarks[0].PeakBytes = 1 << 30
				r.Benchmarks[1].L1MissPct = 50
			},
			5,
			[]string{"health l1_miss_pct", "mcf baseline_cycles", "mcf peak_bytes"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur := sampleRun()
			c.mutate(cur)
			regs := Compare(base, cur, c.pct)
			var got []string
			for _, r := range regs {
				switch {
				case r.Missing:
					got = append(got, r.Benchmark+" (missing)")
				case r.New:
					got = append(got, r.Benchmark+" (new)")
				default:
					got = append(got, r.Benchmark+" "+r.Metric)
				}
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("Compare = %v, want %v", got, c.want)
			}
		})
	}
}

func TestDegradation(t *testing.T) {
	cases := []struct {
		base, cur   float64
		higherWorse bool
		wantPct     float64
		wantWorse   bool
	}{
		{100, 110, true, 10, true},
		{100, 90, true, 0, false},
		{100, 90, false, 10, true},
		{100, 110, false, 0, false},
		{0, 5, true, math.Inf(1), true},
		{0, 0, true, 0, false},
		// NaN marks an optional section absent on one side: always skip.
		{math.NaN(), 100, true, 0, false},
		{100, math.NaN(), true, 0, false},
		{math.NaN(), math.NaN(), true, 0, false},
	}
	for _, c := range cases {
		pct, worse := degradation(c.base, c.cur, c.higherWorse)
		if pct != c.wantPct || worse != c.wantWorse {
			t.Errorf("degradation(%v, %v, %v) = %v, %v; want %v, %v",
				c.base, c.cur, c.higherWorse, pct, worse, c.wantPct, c.wantWorse)
		}
	}
}

// TestGateRegressed is the acceptance check: a doctored regressed run
// must fail the gate with an error naming the benchmark and metric.
func TestGateRegressed(t *testing.T) {
	base := sampleRun()
	cur := sampleRun()
	cur.Benchmarks[0].BestCycles = 2000 // mcf +122%
	var out bytes.Buffer
	err := Gate(&out, base, cur, 5)
	if err == nil {
		t.Fatal("Gate = nil, want regression error")
	}
	for _, want := range []string{"mcf", "best_cycles"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q does not name %q", err, want)
		}
	}
	if !strings.Contains(out.String(), "REGRESSED") ||
		!strings.Contains(out.String(), "mcf: best_cycles 900 -> 2000") {
		t.Errorf("gate output missing verdict line:\n%s", out.String())
	}
}

func TestGateClean(t *testing.T) {
	var out bytes.Buffer
	if err := Gate(&out, sampleRun(), sampleRun(), 5); err != nil {
		t.Fatalf("Gate(identical) = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "ok: no tracked metric regressed") {
		t.Errorf("clean gate output missing ok line:\n%s", out.String())
	}
}

// TestGateEventsPerSecRegression is the acceptance demonstration for the
// CI smoke gate: a seeded events/sec collapse fails Gate with an error
// naming the benchmark and the throughput metric.
func TestGateEventsPerSecRegression(t *testing.T) {
	base := sampleRun()
	cur := sampleRun()
	cur.Benchmarks[0].Host.EventsPerSec = 10e6 // mcf 250M/s -> 10M/s
	cur.Benchmarks[0].Host.WallNanos = 50_000_000_000
	var out bytes.Buffer
	err := Gate(&out, base, cur, 50)
	if err == nil {
		t.Fatal("Gate(seeded events/sec regression) = nil, want error")
	}
	for _, want := range []string{"mcf", "events_per_sec"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q does not name %q", err, want)
		}
	}
	if !strings.Contains(out.String(), "REGRESSED  mcf: events_per_sec") {
		t.Errorf("gate output missing events_per_sec verdict:\n%s", out.String())
	}
}

// withAttrib attaches a schema-3 attribution section to a run's first
// benchmark.
func withAttrib(r *Run, topPct, unattribPct float64) *Run {
	r.Benchmarks[0].Attrib = &AttribStats{
		Sites: 5, TopSite: 3, TopSiteLLCPct: topPct, UnattributedLLCPct: unattribPct,
	}
	return r
}

// TestAttribRoundTrip: the schema-3 attribution section survives the
// write/read cycle.
func TestAttribRoundTrip(t *testing.T) {
	run := withAttrib(sampleRun(), 40, 2)
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, got) {
		t.Error("attrib section lost in round trip")
	}
}

// TestAttribGating: the attrib_* metrics gate only between two attributed
// documents — an unattributed side (older baseline, or a run without
// -attrib) skips them instead of reading as zero.
func TestAttribGating(t *testing.T) {
	cases := []struct {
		name      string
		base, cur *Run
		want      []string
	}{
		{"both unattributed skips", sampleRun(), sampleRun(), nil},
		{"unattributed baseline skips", sampleRun(), withAttrib(sampleRun(), 90, 50), nil},
		{"unattributed run skips", withAttrib(sampleRun(), 40, 2), sampleRun(), nil},
		{
			"attributed regression gates",
			withAttrib(sampleRun(), 40, 2),
			withAttrib(sampleRun(), 60, 2), // top-site share +50%
			[]string{"mcf attrib_top_site_llc_pct"},
		},
		{
			"unattributed-share regression gates",
			withAttrib(sampleRun(), 40, 10),
			withAttrib(sampleRun(), 40, 20), // +100%
			[]string{"mcf attrib_unattributed_llc_pct"},
		},
		{
			"attributed improvement never gates",
			withAttrib(sampleRun(), 40, 10),
			withAttrib(sampleRun(), 10, 1),
			nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			regs := Compare(c.base, c.cur, 5)
			var got []string
			for _, r := range regs {
				got = append(got, r.Benchmark+" "+r.Metric)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("Compare = %v, want %v", got, c.want)
			}
		})
	}
}

// TestFromComparisonsAttrib: an attributed comparison snapshots the
// attribution summary; an unattributed one omits the section.
func TestFromComparisonsAttrib(t *testing.T) {
	best := result(900, 100, 4, 1, 1<<20)
	best.Attrib = machine.AttribCounts{
		Enabled: true,
		Sites: []machine.SiteAttrib{
			{Site: 0, Counts: cachesim.Counts{Accesses: 10, LLCMisses: 5}},
			{Site: 3, Counts: cachesim.Counts{Accesses: 50, LLCMisses: 60}},
			{Site: 7, Counts: cachesim.Counts{Accesses: 40, LLCMisses: 35}},
		},
	}
	cmp := &pipeline.Comparison{
		Benchmark: "mcf",
		Baseline:  result(1000, 100, 5, 1, 0),
		PreFix:    map[prefix.Variant]pipeline.RunResult{prefix.VariantHot: best},
		Best:      prefix.VariantHot,
	}
	run := FromComparisons([]*pipeline.Comparison{cmp}, Meta{Timestamp: time.Unix(0, 0)})
	a := run.Benchmarks[0].Attrib
	if a == nil {
		t.Fatal("attributed comparison produced no attrib section")
	}
	if a.Sites != 2 || a.TopSite != 3 {
		t.Errorf("Sites/TopSite = %d/%d, want 2/3", a.Sites, a.TopSite)
	}
	if want := 60.0; a.TopSiteLLCPct != want {
		t.Errorf("TopSiteLLCPct = %v, want %v", a.TopSiteLLCPct, want)
	}
	if want := 5.0; a.UnattributedLLCPct != want {
		t.Errorf("UnattributedLLCPct = %v, want %v", a.UnattributedLLCPct, want)
	}

	cmp.PreFix[prefix.VariantHot] = result(900, 100, 4, 1, 1<<20)
	run = FromComparisons([]*pipeline.Comparison{cmp}, Meta{Timestamp: time.Unix(0, 0)})
	if run.Benchmarks[0].Attrib != nil {
		t.Errorf("unattributed comparison wrote attrib = %+v, want nil", run.Benchmarks[0].Attrib)
	}
}

// TestGateNewBenchmark: an added benchmark is reported but does not fail
// the gate.
func TestGateNewBenchmark(t *testing.T) {
	base := sampleRun()
	cur := sampleRun()
	cur.Benchmarks = append(cur.Benchmarks, Benchmark{Name: "extra", BestCycles: 1e9})
	var out bytes.Buffer
	if err := Gate(&out, base, cur, 5); err != nil {
		t.Fatalf("Gate(added benchmark) = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "NEW        extra: not in baseline") {
		t.Errorf("gate output missing NEW notice:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok: no tracked metric regressed") {
		t.Errorf("gate output missing ok line:\n%s", out.String())
	}
}
