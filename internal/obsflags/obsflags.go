// Package obsflags is the observability flag kit shared by every CLI.
// One Register call adds the common flags (-metrics-out, -trace-out,
// -cpuprofile, -memprofile, -v; optionally -serve), and one Start/Close
// pair owns their whole lifecycle — profile start/stop, registry and
// tracer construction, the obshttp server, and end-of-run file writes —
// so the four commands share a single implementation instead of copies.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"prefix/internal/obs"
	"prefix/internal/obs/obshttp"
	"prefix/internal/obs/perfstat"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string
	Verbose    bool
	Serve      string
	Shards     int
}

// DefaultShards is the default -shards value: one shard per available
// CPU, so the parallel analysis path scales with the machine while
// producing output identical to -shards 1 (the merge is shard-count
// invariant).
//
//lint:ignore nodeterminism shard count only paces the parallel analysis; MergeAnalyses output is shard-count-invariant
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// Register adds the common observability flags to fs and returns the
// value struct (read after fs.Parse).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write run metrics to this file (Prometheus text; .json extension selects JSON)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace-event JSON of the pipeline phases (chrome://tracing, Perfetto)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a Go CPU profile of this process to the file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a Go heap profile of this process to the file")
	fs.BoolVar(&f.Verbose, "v", false, "print a phase-timing summary and per-phase host-cost table to stderr at the end of the run")
	return f
}

// RegisterShards additionally adds -shards (the parallel-analysis shard
// count; registered by the commands that analyze profiling traces).
func (f *Flags) RegisterShards(fs *flag.FlagSet) {
	fs.IntVar(&f.Shards, "shards", DefaultShards(), "analysis shard count: decode and analyze profiling traces on this many parallel workers (1 = single-pass; output is identical at every value)")
}

// RegisterServe additionally adds -serve (the live observability server;
// only the long-running harness commands register it).
func (f *Flags) RegisterServe(fs *flag.FlagSet) {
	fs.StringVar(&f.Serve, "serve", "", "serve live observability for the duration of the run on this address (e.g. :8080): /metrics, /status, /trace, /perf, /explain, /healthz, /debug/pprof")
}

// Session is the live observability state behind the flags. Metrics,
// Tracer, and Tracker are nil when nothing asked for them, matching the
// pipeline's nil-safe no-op convention.
type Session struct {
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Tracker *obs.JobTracker
	// Perf is the host-cost sampler. Unlike the other members it is
	// always created: its per-scope cost is two runtime probes, the -v
	// table and the /perf endpoint read from it, and when Metrics is
	// live it publishes the prefix_perf_* series there too.
	Perf *perfstat.Collector
	// Explain backs the /explain endpoint; created only when -serve is
	// live (the CLIs hand it to the pipeline, which fills it per
	// benchmark when attribution is on).
	Explain *obs.ExplainStore

	flags   *Flags
	cpuFile *os.File
	server  *obshttp.Server
	stderr  io.Writer
}

// Start builds the session: creates the registry/tracer any flag needs,
// starts the CPU profile, and brings up the -serve server (which always
// gets a registry, tracer, and job tracker so every endpoint is live).
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: f, stderr: os.Stderr}
	if f.MetricsOut != "" || f.Serve != "" {
		s.Metrics = obs.NewRegistry()
	}
	if f.TraceOut != "" || f.Verbose || f.Serve != "" {
		s.Tracer = obs.NewTracer()
	}
	s.Perf = perfstat.New(s.Metrics)
	if f.Serve != "" {
		s.Tracker = obs.NewJobTracker()
		s.Explain = obs.NewExplainStore()
		srv, err := obshttp.Serve(f.Serve, obshttp.Config{
			Registry: s.Metrics,
			Tracer:   s.Tracer,
			Tracker:  s.Tracker,
			Perf:     s.Perf,
			Explain:  s.Explain,
		})
		if err != nil {
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(s.stderr, "observability server listening on http://%s\n", srv.Addr())
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			s.shutdownServer()
			return nil, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.shutdownServer()
			return nil, err
		}
		s.cpuFile = cf
	}
	return s, nil
}

// Progress returns a pipeline progress callback that feeds the /status
// tracker with every event and prints running/failed events to stderr.
// Shard-stage events (ev.Shards > 0) reach the tracker but only print
// when failed, so a -shards N run does not emit N stderr lines per
// analyze stage.
func (s *Session) Progress() func(obs.JobEvent) {
	return func(ev obs.JobEvent) {
		s.Tracker.Observe(ev)
		if ev.State == obs.JobFailed || (ev.State == obs.JobRunning && ev.Shards == 0) {
			fmt.Fprintln(s.stderr, ev)
		}
	}
}

// Close finalizes the session: stops the CPU profile, writes the heap
// profile, the metrics and trace files, prints the -v summary, and shuts
// the server down. Call it on every exit path (it runs once); the first
// error wins.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if f := s.flags.MemProfile; f != "" {
		keep(writeHeapProfile(f))
		s.flags.MemProfile = ""
	}
	if f := s.flags.MetricsOut; f != "" {
		if err := s.Metrics.WriteMetricsFile(f); err != nil {
			keep(err)
		} else {
			fmt.Fprintf(s.stderr, "metrics written to %s\n", f)
		}
		s.flags.MetricsOut = ""
	}
	if f := s.flags.TraceOut; f != "" {
		if err := s.Tracer.WriteTraceFile(f); err != nil {
			keep(err)
		} else {
			fmt.Fprintf(s.stderr, "phase trace written to %s\n", f)
		}
		s.flags.TraceOut = ""
	}
	if s.flags.Verbose {
		keep(s.Tracer.WriteSummary(s.stderr))
		keep(s.Perf.WriteTable(s.stderr))
		s.flags.Verbose = false
	}
	s.shutdownServer()
	return first
}

func (s *Session) shutdownServer() {
	if s.server != nil {
		_ = s.server.Shutdown()
		s.server = nil
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
