package obsflags

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefix/internal/obs"
)

func TestRegisterAddsFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	f.RegisterServe(fs)
	for _, name := range []string{"metrics-out", "trace-out", "cpuprofile", "memprofile", "v", "serve"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-metrics-out", "m.prom", "-serve", ":0", "-v"}); err != nil {
		t.Fatal(err)
	}
	if f.MetricsOut != "m.prom" || f.Serve != ":0" || !f.Verbose {
		t.Errorf("parsed flags = %+v", f)
	}
}

func TestSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "run.prom")
	tracePath := filepath.Join(dir, "phases.json")
	f := &Flags{MetricsOut: metricsPath, TraceOut: tracePath}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	sess.stderr = io.Discard
	if sess.Metrics == nil || sess.Tracer == nil {
		t.Fatal("session missing registry/tracer despite output flags")
	}
	if sess.Tracker != nil {
		t.Error("tracker built without -serve")
	}
	sess.Metrics.Counter("prefix_test_total").Add(3)
	sess.Tracer.Start("phase").End()
	sess.Progress()(obs.JobEvent{Phase: "suite", Benchmark: "mcf", Jobs: 1, Seed: -1, State: obs.JobDone})
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "prefix_test_total 3") {
		t.Errorf("metrics file missing counter:\n%s", prom)
	}
	tr, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), "traceEvents") {
		t.Errorf("trace file is not a Chrome trace document:\n%s", tr)
	}
	// Close is idempotent.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionServe(t *testing.T) {
	f := &Flags{Serve: "127.0.0.1:0"}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Metrics == nil || sess.Tracer == nil || sess.Tracker == nil {
		t.Fatal("-serve must wire every observability source")
	}
	addr := sess.server.Addr()
	sess.Progress()(obs.JobEvent{Phase: "suite", Benchmark: "mcf", Jobs: 2, Seed: -1, State: obs.JobRunning})
	res, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), `"benchmark": "mcf"`) {
		t.Errorf("/status missing observed job:\n%s", body)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestSessionNilSafe(t *testing.T) {
	var sess *Session
	if err := sess.Close(); err != nil {
		t.Errorf("nil session Close = %v", err)
	}
	f := &Flags{}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// No flags set: everything nil, progress still callable.
	if s.Metrics != nil || s.Tracer != nil || s.Tracker != nil {
		t.Errorf("flagless session built observability state: %+v", s)
	}
	s.stderr = io.Discard
	s.Progress()(obs.JobEvent{Phase: "suite", Benchmark: "x", Jobs: 1, Seed: -1, State: obs.JobRunning})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterShards(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	f.RegisterShards(fs)
	if fs.Lookup("shards") == nil {
		t.Fatal("flag -shards not registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Shards != DefaultShards() {
		t.Errorf("default -shards = %d, want DefaultShards() = %d", f.Shards, DefaultShards())
	}
	if DefaultShards() < 1 {
		t.Errorf("DefaultShards() = %d, want >= 1", DefaultShards())
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := Register(fs2)
	f2.RegisterShards(fs2)
	if err := fs2.Parse([]string{"-shards", "8"}); err != nil {
		t.Fatal(err)
	}
	if f2.Shards != 8 {
		t.Errorf("parsed -shards = %d, want 8", f2.Shards)
	}
}

// TestProgressSuppressesShardRunningLines: shard-stage running events
// feed the tracker but do not print (a -shards N suite would otherwise
// emit N stderr lines per analyze stage); failed shard events always
// print.
func TestProgressSuppressesShardRunningLines(t *testing.T) {
	f := &Flags{Serve: "127.0.0.1:0"}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var buf strings.Builder
	sess.stderr = &buf
	prog := sess.Progress()
	prog(obs.JobEvent{Phase: "analyze-shard", Benchmark: "mcf", Job: 0, Jobs: 4, Seed: -1, Shards: 4, State: obs.JobRunning})
	prog(obs.JobEvent{Phase: "analyze-shard", Benchmark: "mcf", Job: 0, Jobs: 4, Seed: -1, Shards: 4, State: obs.JobDone})
	if got := buf.String(); got != "" {
		t.Errorf("shard running/done events printed: %q", got)
	}
	prog(obs.JobEvent{Phase: "suite", Benchmark: "mcf", Job: 0, Jobs: 1, Seed: -1, State: obs.JobRunning})
	if !strings.Contains(buf.String(), "[suite 1/1] mcf running") {
		t.Errorf("harness running event not printed: %q", buf.String())
	}
	prog(obs.JobEvent{Phase: "analyze-shard", Benchmark: "mcf", Job: 1, Jobs: 4, Seed: -1, Shards: 4, State: obs.JobFailed, Err: "boom"})
	if !strings.Contains(buf.String(), "failed: boom") {
		t.Errorf("failed shard event suppressed: %q", buf.String())
	}
	if st := sess.Tracker.Status(); st.Done != 1 {
		t.Errorf("tracker done = %d, want 1 (shard events must still reach /status)", st.Done)
	}
}
