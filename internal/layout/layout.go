// Package layout implements PreFix's layout determination (§2.1): the
// reconstitution of observed hot data streams (Algorithm 1) and the
// assignment of every chosen hot object to a fixed offset inside the
// preallocated memory region.
//
// The key property Algorithm 1 guarantees is exploitability: in the output
// RHDS no object appears in more than one stream, so every stream can be
// laid out contiguously. The input OHDS does not have that property (the
// same hot object often participates in several observed streams — the red
// ids of the paper's Figure 2).
package layout

import (
	"fmt"
	"sort"

	"prefix/internal/hds"
	"prefix/internal/mem"
)

// ReconStep is one Algorithm-1 action, recorded in input-stream order so
// the decision ledger can say exactly why each observed stream was kept,
// merged, split, or dropped.
type ReconStep struct {
	// Action is "seed", "unchanged", "drop", "merge", "split", or
	// "singleton".
	Action string `json:"action"`
	// Stream is the input OHDS index the action consumed.
	Stream int `json:"stream"`
	// Target is the output RHDS index affected, -1 for drop/singleton.
	Target int `json:"target"`
	// Objects is how many objects the action contributed to the layout.
	Objects int `json:"objects"`
	// Reason explains the action in Algorithm 1's terms.
	Reason string `json:"reason"`
}

// Reconstitution is the output of Algorithm 1.
type Reconstitution struct {
	// RHDS are the reconstituted streams, in construction order; placement
	// in the preallocated region follows this order.
	RHDS []hds.Stream
	// Singletons are hot objects that fell out of splitting with only one
	// object remaining; they are placed at the end of the region.
	Singletons []mem.ObjectID
	// Dropped counts OHDS that contributed nothing new (fully covered).
	Dropped int
	// Merged counts merge actions, Split counts split actions, Unchanged
	// counts unchanged inclusions (for the Figure 2 style summary).
	Merged, Split, Unchanged int
	// Steps is the per-input-stream action log, one entry per OHDS.
	Steps []ReconStep
}

// objectSet builds a membership set over a stream list.
func objectSet(streams []hds.Stream) map[mem.ObjectID]bool {
	set := make(map[mem.ObjectID]bool)
	for _, s := range streams {
		for _, o := range s.Objects {
			set[o] = true
		}
	}
	return set
}

// Reconstitute implements Algorithm 1. ohds must be sorted in descending
// order of memory references (the miner guarantees it).
func Reconstitute(ohds []hds.Stream) *Reconstitution {
	rec := &Reconstitution{}
	if len(ohds) == 0 {
		return rec
	}

	// RHDS ← Next(OHDS): the hottest stream seeds the output.
	rhds := []hds.Stream{cloneStream(ohds[0])}
	merged := []bool{false} // per-RHDS one-shot merge flag
	covered := objectSet(rhds)
	rec.Steps = append(rec.Steps, ReconStep{
		Action: "seed", Stream: 0, Target: 0, Objects: len(ohds[0].Objects),
		Reason: fmt.Sprintf("hottest observed stream (%d refs) seeds the layout", ohds[0].Heat),
	})

	for si, current := range ohds[1:] {
		si++ // input OHDS index
		// remaining ← Objects(current) − Objects(RHDS)
		var remaining []mem.ObjectID
		overlap := false
		for _, o := range current.Objects {
			if covered[o] {
				overlap = true
			} else {
				remaining = append(remaining, o)
			}
		}
		if len(remaining) == 0 {
			rec.Dropped++ // nothing to do: fully covered already
			rec.Steps = append(rec.Steps, ReconStep{
				Action: "drop", Stream: si, Target: -1,
				Reason: fmt.Sprintf("all %d objects already covered by hotter streams", len(current.Objects)),
			})
			continue
		}
		if !overlap {
			// Unchanged inclusion: disjoint from everything so far.
			rhds = append(rhds, cloneStream(current))
			merged = append(merged, false)
			for _, o := range current.Objects {
				covered[o] = true
			}
			rec.Unchanged++
			rec.Steps = append(rec.Steps, ReconStep{
				Action: "unchanged", Stream: si, Target: len(rhds) - 1, Objects: len(current.Objects),
				Reason: "disjoint from every placed stream; included unchanged",
			})
			continue
		}
		// Splitting/merging: append the remaining objects to the first
		// not-yet-merged RHDS stream that shares an object with current,
		// so shared objects sit next to the appended ones.
		done := false
		for i := range rhds {
			if merged[i] {
				continue
			}
			if intersects(rhds[i].Objects, current.Objects) {
				merged[i] = true
				rhds[i].Objects = append(rhds[i].Objects, remaining...)
				rhds[i].Heat += current.Heat
				for _, o := range remaining {
					covered[o] = true
				}
				done = true
				rec.Merged++
				rec.Steps = append(rec.Steps, ReconStep{
					Action: "merge", Stream: si, Target: i, Objects: len(remaining),
					Reason: fmt.Sprintf("shares objects with RHDS[%d]; %d uncovered objects appended there",
						i, len(remaining)),
				})
				break
			}
		}
		if !done {
			if len(remaining) > 1 {
				// Treat the remainder as a new stream.
				ns := hds.Stream{Objects: append([]mem.ObjectID(nil), remaining...), Heat: current.Heat}
				rhds = append(rhds, ns)
				merged = append(merged, false)
				for _, o := range remaining {
					covered[o] = true
				}
				rec.Split++
				rec.Steps = append(rec.Steps, ReconStep{
					Action: "split", Stream: si, Target: len(rhds) - 1, Objects: len(remaining),
					Reason: fmt.Sprintf("overlapping streams already merged; %d uncovered objects form a new stream",
						len(remaining)),
				})
			} else {
				// A single leftover object becomes a hot singleton at the
				// end of the preallocated region.
				rec.Singletons = append(rec.Singletons, remaining[0])
				covered[remaining[0]] = true
				rec.Split++
				rec.Steps = append(rec.Steps, ReconStep{
					Action: "singleton", Stream: si, Target: -1, Objects: 1,
					Reason: fmt.Sprintf("split left only %v uncovered; placed as a singleton after the streams",
						remaining[0]),
				})
			}
		}
	}
	rec.RHDS = rhds
	return rec
}

func cloneStream(s hds.Stream) hds.Stream {
	return hds.Stream{Objects: append([]mem.ObjectID(nil), s.Objects...), Heat: s.Heat}
}

func intersects(a, b []mem.ObjectID) bool {
	set := make(map[mem.ObjectID]bool, len(a))
	for _, o := range a {
		set[o] = true
	}
	for _, o := range b {
		if set[o] {
			return true
		}
	}
	return false
}

// Validate checks the exploitability invariant: no object in more than one
// RHDS stream, and no singleton inside any stream.
func (r *Reconstitution) Validate() error {
	seen := make(map[mem.ObjectID]int)
	for i, s := range r.RHDS {
		inner := make(map[mem.ObjectID]bool)
		for _, o := range s.Objects {
			if inner[o] {
				return fmt.Errorf("layout: object %v duplicated inside RHDS[%d]", o, i)
			}
			inner[o] = true
			if j, ok := seen[o]; ok {
				return fmt.Errorf("layout: object %v in RHDS[%d] and RHDS[%d]", o, j, i)
			}
			seen[o] = i
		}
	}
	for _, o := range r.Singletons {
		if i, ok := seen[o]; ok {
			return fmt.Errorf("layout: singleton %v also in RHDS[%d]", o, i)
		}
	}
	return nil
}

// Order returns the final placement order: streams first (in order), then
// singletons — the paper's "{2018, 2009, 2012, ...}" list of Figure 2.
func (r *Reconstitution) Order() []mem.ObjectID {
	var out []mem.ObjectID
	for _, s := range r.RHDS {
		out = append(out, s.Objects...)
	}
	return append(out, r.Singletons...)
}

// Placement maps every placed object to its offset within the
// preallocated region.
type Placement struct {
	Offsets map[mem.ObjectID]uint64
	Sizes   map[mem.ObjectID]uint64 // reserved (aligned) size per object
	Total   uint64                  // region size in bytes
	Order   []mem.ObjectID
}

// Align is the slot alignment inside the preallocated region. 16 matches
// malloc alignment so the transformation is a drop-in replacement.
const Align = 16

// Assign packs the objects in order into the region. sizes gives each
// object's allocation size from the profiling trace ("the object sizes
// that are used are based on the traces collected from the profiling
// run"). Objects missing from sizes get a minimal slot.
func Assign(order []mem.ObjectID, sizes map[mem.ObjectID]uint64) *Placement {
	p := &Placement{
		Offsets: make(map[mem.ObjectID]uint64, len(order)),
		Sizes:   make(map[mem.ObjectID]uint64, len(order)),
		Order:   append([]mem.ObjectID(nil), order...),
	}
	var off uint64
	for _, o := range order {
		if _, dup := p.Offsets[o]; dup {
			continue // defensive: placement is idempotent per object
		}
		sz := sizes[o]
		if sz == 0 {
			sz = Align
		}
		sz = mem.AlignUp(sz, Align)
		p.Offsets[o] = off
		p.Sizes[o] = sz
		off += sz
	}
	p.Total = off
	return p
}

// Validate checks that slots do not overlap and stay inside the region.
func (p *Placement) Validate() error {
	type slot struct {
		obj  mem.ObjectID
		off  uint64
		size uint64
	}
	slots := make([]slot, 0, len(p.Offsets))
	for o, off := range p.Offsets {
		slots = append(slots, slot{o, off, p.Sizes[o]})
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].off < slots[j].off })
	for i, s := range slots {
		if s.off+s.size > p.Total {
			return fmt.Errorf("layout: slot for %v [%d,%d) exceeds region %d", s.obj, s.off, s.off+s.size, p.Total)
		}
		if i > 0 {
			prev := slots[i-1]
			if prev.off+prev.size > s.off {
				return fmt.Errorf("layout: slots %v and %v overlap", prev.obj, s.obj)
			}
		}
	}
	return nil
}
