package layout

import (
	"testing"
	"testing/quick"

	"prefix/internal/hds"
	"prefix/internal/mem"
	"prefix/internal/xrand"
)

func ids(vs ...uint64) []mem.ObjectID {
	out := make([]mem.ObjectID, len(vs))
	for i, v := range vs {
		out[i] = mem.ObjectID(v)
	}
	return out
}

func stream(heat uint64, vs ...uint64) hds.Stream {
	return hds.Stream{Objects: ids(vs...), Heat: heat}
}

func TestReconstituteEmpty(t *testing.T) {
	r := Reconstitute(nil)
	if len(r.RHDS) != 0 || len(r.Singletons) != 0 {
		t.Error("empty OHDS should produce empty RHDS")
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReconstituteUnchangedInclusion(t *testing.T) {
	r := Reconstitute([]hds.Stream{stream(10, 1, 2), stream(5, 3, 4)})
	if len(r.RHDS) != 2 || r.Unchanged != 1 {
		t.Fatalf("rhds=%d unchanged=%d", len(r.RHDS), r.Unchanged)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReconstituteFullyCoveredDropped(t *testing.T) {
	r := Reconstitute([]hds.Stream{stream(10, 1, 2, 3), stream(5, 1, 3)})
	if len(r.RHDS) != 1 || r.Dropped != 1 {
		t.Fatalf("rhds=%d dropped=%d", len(r.RHDS), r.Dropped)
	}
}

func TestReconstituteMerge(t *testing.T) {
	// Second stream shares object 2 and brings 3, 4: merged into the
	// first RHDS entry.
	r := Reconstitute([]hds.Stream{stream(10, 1, 2), stream(5, 2, 3, 4)})
	if len(r.RHDS) != 1 || r.Merged != 1 {
		t.Fatalf("rhds=%d merged=%d", len(r.RHDS), r.Merged)
	}
	got := r.RHDS[0].Objects
	if len(got) != 4 {
		t.Fatalf("merged stream = %v", got)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReconstituteOneMergePerStream(t *testing.T) {
	// Three streams all overlapping the first: only one merge into it;
	// the rest must split.
	r := Reconstitute([]hds.Stream{
		stream(10, 1, 2),
		stream(8, 2, 3, 4),
		stream(6, 1, 5, 6),
	})
	if r.Merged != 1 {
		t.Errorf("merged = %d, want 1", r.Merged)
	}
	if r.Split != 1 {
		t.Errorf("split = %d, want 1", r.Split)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReconstituteSingleton(t *testing.T) {
	// Overlapping stream leaves exactly one new object: it becomes a
	// singleton (after the first RHDS entry has already been merged).
	r := Reconstitute([]hds.Stream{
		stream(10, 1, 2),
		stream(8, 2, 3, 4), // merges
		stream(6, 1, 7),    // splits; remainder {7} is a singleton
	})
	if len(r.Singletons) != 1 || r.Singletons[0] != 7 {
		t.Fatalf("singletons = %v", r.Singletons)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

// TestReconstitutePaperExample feeds the Figure 2 cc1 OHDS from the paper
// and checks the structural claims the paper makes: all RHDS exploitable
// (validated), 10 of the 12 hot objects covered by streams, 2 singletons.
func TestReconstitutePaperExample(t *testing.T) {
	ohds := []hds.Stream{
		stream(100, 2012, 2009),
		stream(95, 2009, 2012, 1963),
		stream(90, 2018, 2009),
		stream(85, 1963, 1967),
		stream(80, 2419, 24),
		stream(75, 24, 2017),
		stream(70, 22, 23),
		stream(65, 23, 2422),
		stream(60, 2012, 2016),
		stream(55, 2009, 2017),
	}
	r := Reconstitute(ohds)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	covered := hds.Objects(r.RHDS)
	total := len(covered) + len(r.Singletons)
	if total != 12 {
		t.Errorf("total hot objects = %d, want 12", total)
	}
	if len(r.Singletons) == 0 {
		t.Error("the cc1 example should leave singleton objects")
	}
	// Every input object must appear exactly once in the final order.
	order := r.Order()
	seen := make(map[mem.ObjectID]bool)
	for _, o := range order {
		if seen[o] {
			t.Fatalf("object %v placed twice", o)
		}
		seen[o] = true
	}
}

// TestReconstituteExploitabilityProperty: for random OHDS inputs the
// output always satisfies the exploitability invariant and covers every
// input object exactly once.
func TestReconstituteExploitabilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nStreams := rng.Intn(12) + 1
		ohds := make([]hds.Stream, 0, nStreams)
		for i := 0; i < nStreams; i++ {
			n := rng.Intn(5) + 2
			seen := make(map[mem.ObjectID]bool)
			var objs []mem.ObjectID
			for len(objs) < n {
				o := mem.ObjectID(rng.Intn(20) + 1)
				if !seen[o] {
					seen[o] = true
					objs = append(objs, o)
				}
			}
			ohds = append(ohds, hds.Stream{Objects: objs, Heat: uint64(100 - i)})
		}
		r := Reconstitute(ohds)
		if r.Validate() != nil {
			return false
		}
		// Coverage: every input object appears in RHDS or singletons.
		covered := hds.Objects(r.RHDS)
		for _, s := range r.Singletons {
			covered[s] = true
		}
		for _, s := range ohds {
			for _, o := range s.Objects {
				if !covered[o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignOffsets(t *testing.T) {
	sizes := map[mem.ObjectID]uint64{1: 40, 2: 64, 3: 100}
	p := Assign(ids(1, 2, 3), sizes)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Offsets[1] != 0 {
		t.Errorf("first offset = %d", p.Offsets[1])
	}
	if p.Offsets[2] != 48 { // 40 aligned to 48
		t.Errorf("second offset = %d, want 48", p.Offsets[2])
	}
	if p.Offsets[3] != 112 {
		t.Errorf("third offset = %d, want 112", p.Offsets[3])
	}
	if p.Total != 224 { // 112 + AlignUp(100)
		t.Errorf("total = %d, want 224", p.Total)
	}
}

func TestAssignUnknownSize(t *testing.T) {
	p := Assign(ids(1), map[mem.ObjectID]uint64{})
	if p.Sizes[1] != Align {
		t.Errorf("unknown size slot = %d", p.Sizes[1])
	}
}

func TestAssignDuplicateIgnored(t *testing.T) {
	p := Assign(ids(1, 1), map[mem.ObjectID]uint64{1: 16})
	if p.Total != 16 {
		t.Errorf("duplicate placed twice: total = %d", p.Total)
	}
}

// TestAssignNoOverlapProperty: slots never overlap and fit the region.
func TestAssignNoOverlapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(30) + 1
		order := make([]mem.ObjectID, n)
		sizes := make(map[mem.ObjectID]uint64, n)
		for i := range order {
			order[i] = mem.ObjectID(i + 1)
			sizes[order[i]] = rng.Uint64n(300)
		}
		p := Assign(order, sizes)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
