package baselines

import (
	"sort"

	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/mem"
	"prefix/internal/trace"
)

// PlanHALO derives the HALO configuration from a profile, following the
// HALO paper's recipe: allocation contexts (call-stack signatures) that
// allocate hot objects are grouped by access affinity — contexts whose
// objects co-occur in the same hot data stream land in the same group and
// hence the same pool.
func PlanHALO(a *trace.Analysis, hot *hotness.Set, streams []hds.Stream) HALOConfig {
	// Union-find over the stack signatures of hot objects.
	parent := make(map[mem.StackSig]mem.StackSig)
	var find func(mem.StackSig) mem.StackSig
	find = func(s mem.StackSig) mem.StackSig {
		p, ok := parent[s]
		if !ok {
			parent[s] = s
			return s
		}
		if p == s {
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(x, y mem.StackSig) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}

	sigOf := func(id mem.ObjectID) (mem.StackSig, bool) {
		o := a.Object(id)
		if o == nil {
			return 0, false
		}
		return o.Stack, true
	}
	for _, o := range hot.Objects {
		find(o.Stack) // ensure every hot context is represented
	}
	for _, s := range streams {
		var first mem.StackSig
		hasFirst := false
		for _, id := range s.Objects {
			sig, ok := sigOf(id)
			if !ok {
				continue
			}
			if !hasFirst {
				first, hasFirst = sig, true
				continue
			}
			union(first, sig)
		}
	}

	// Assign dense group ids in deterministic (sorted signature) order.
	roots := make(map[mem.StackSig]HALOGroup)
	var sigs []mem.StackSig
	for s := range parent {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	cfg := HALOConfig{Groups: make(map[mem.StackSig]HALOGroup)}
	for _, s := range sigs {
		r := find(s)
		g, ok := roots[r]
		if !ok {
			g = HALOGroup(cfg.NumGroups)
			roots[r] = g
			cfg.NumGroups++
		}
		cfg.Groups[s] = g
	}
	return cfg
}

// HotSetOf converts a hotness selection into the (site, instance) ground
// truth used for pollution accounting.
func HotSetOf(hot *hotness.Set) HotSet {
	hs := make(HotSet)
	for site, insts := range hot.PerSite {
		for _, inst := range insts {
			hs.Add(site, inst)
		}
	}
	return hs
}

// HDSSites returns the malloc sites that allocate stream objects — the
// site set the HDS baseline redirects (profile-guided static ids,
// Table 1). Streams below a small heat floor are ignored, as in the
// original work: a stream must account for a meaningful share of the
// references before its sites are worth redirecting.
func HDSSites(a *trace.Analysis, streams []hds.Stream) []mem.SiteID {
	var top uint64
	for _, s := range streams {
		if s.Heat > top {
			top = s.Heat
		}
	}
	floor := top / 10 // a stream must carry ≥10% of the hottest one's heat
	set := make(map[mem.SiteID]bool)
	for _, s := range streams {
		if s.Heat < floor {
			continue
		}
		for _, id := range s.Objects {
			if o := a.Object(id); o != nil {
				set[o.Site] = true
			}
		}
	}
	out := make([]mem.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
