package baselines

import (
	"testing"

	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/mem"
	"prefix/internal/trace"
)

// planTrace: site 1 allocates under stack A, site 2 under stack B, site 3
// under stack C; objects from A and B co-occur in a stream.
func planTrace() (*trace.Analysis, *hotness.Set) {
	r := trace.NewRecorder()
	r.Alloc(1, 0xA, 0x1000, 32)
	r.Alloc(2, 0xB, 0x2000, 32)
	r.Alloc(3, 0xC, 0x3000, 32)
	for i := 0; i < 10; i++ {
		r.Access(0x1000, 8, false)
		r.Access(0x2000, 8, false)
		r.Access(0x3000, 8, false)
	}
	a := trace.Analyze(r.Trace())
	hot := hotness.Select(a, hotness.Config{Coverage: 1, MinAccesses: 1})
	return a, hot
}

func TestPlanHALOAffinityGrouping(t *testing.T) {
	a, hot := planTrace()
	streams := []hds.Stream{{Objects: []mem.ObjectID{1, 2}, Heat: 100}}
	cfg := PlanHALO(a, hot, streams)
	if cfg.Groups[0xA] != cfg.Groups[0xB] {
		t.Error("co-occurring contexts must share a group")
	}
	if cfg.Groups[0xA] == cfg.Groups[0xC] {
		t.Error("unrelated context must get its own group")
	}
	if cfg.NumGroups != 2 {
		t.Errorf("groups = %d, want 2", cfg.NumGroups)
	}
}

func TestPlanHALONoStreams(t *testing.T) {
	a, hot := planTrace()
	cfg := PlanHALO(a, hot, nil)
	if cfg.NumGroups != 3 {
		t.Errorf("without streams every hot context is its own group: %d", cfg.NumGroups)
	}
}

func TestHotSetOf(t *testing.T) {
	_, hot := planTrace()
	hs := HotSetOf(hot)
	if !hs.Has(1, 1) || !hs.Has(2, 1) || !hs.Has(3, 1) {
		t.Error("hot set conversion lost instances")
	}
	if hs.Has(1, 2) {
		t.Error("phantom instance")
	}
}

func TestHDSSites(t *testing.T) {
	a, _ := planTrace()
	streams := []hds.Stream{
		{Objects: []mem.ObjectID{1, 2}, Heat: 100},
		{Objects: []mem.ObjectID{3}, Heat: 1}, // below the 10% heat floor
	}
	sites := HDSSites(a, streams)
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Errorf("sites = %v, want [1 2]", sites)
	}
}

func TestHDSSitesHeatFloor(t *testing.T) {
	a, _ := planTrace()
	streams := []hds.Stream{
		{Objects: []mem.ObjectID{1}, Heat: 1000},
		{Objects: []mem.ObjectID{3}, Heat: 200}, // 20% of top: kept
	}
	sites := HDSSites(a, streams)
	if len(sites) != 2 {
		t.Errorf("sites = %v", sites)
	}
}
