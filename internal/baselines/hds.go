package baselines

import (
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/simalloc"
)

// HDSRegionBase is where the HDS baseline's separate memory region lives.
const HDSRegionBase mem.Addr = 0x2000_0000_0000

// HDSAlloc is the HDS [8] baseline: the profile identifies the malloc
// sites that allocate hot-data-stream objects, and at runtime *every*
// allocation from those sites is redirected to a separate memory region in
// allocation order. There is no per-instance check (Table 1: "Hot Object
// Check: no checks and no overhead"), so chosen sites that also allocate
// non-HDS objects pollute the region — the paper's first limitation.
type HDSAlloc struct {
	sites map[mem.SiteID]bool
	// region is managed like a normal heap, per the paper: "malloc/free
	// overhead similar to other heap objects".
	region   *simalloc.Heap
	fallback *simalloc.Heap
	cost     cachesim.CostModel

	hot       HotSet
	counters  map[mem.SiteID]mem.Instance
	pollution Pollution
}

// NewHDS builds the HDS baseline. sites is the profile-chosen site set;
// hot is the ground-truth hot set used only for pollution accounting.
func NewHDS(sites []mem.SiteID, hot HotSet, cost cachesim.CostModel) *HDSAlloc {
	s := make(map[mem.SiteID]bool, len(sites))
	for _, id := range sites {
		s[id] = true
	}
	return &HDSAlloc{
		sites:    s,
		region:   simalloc.New(HDSRegionBase),
		fallback: simalloc.New(HeapBase),
		cost:     cost,
		hot:      hot,
		counters: make(map[mem.SiteID]mem.Instance),
	}
}

// Name implements machine.Allocator.
func (h *HDSAlloc) Name() string { return "hds" }

// Malloc implements machine.Allocator.
func (h *HDSAlloc) Malloc(site mem.SiteID, _ mem.StackSig, size uint64) (mem.Addr, uint64) {
	h.counters[site]++
	if h.sites[site] {
		h.pollution.All++
		if h.hot.Has(site, h.counters[site]) {
			h.pollution.Hot++
		}
		return h.region.Malloc(size), h.cost.MallocInstr
	}
	return h.fallback.Malloc(size), h.cost.MallocInstr
}

// Free implements machine.Allocator.
func (h *HDSAlloc) Free(addr mem.Addr) uint64 {
	if addr >= HDSRegionBase {
		h.region.Free(addr)
	} else {
		h.fallback.Free(addr)
	}
	return h.cost.FreeInstr
}

// Realloc implements machine.Allocator.
func (h *HDSAlloc) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	if addr >= HDSRegionBase {
		na, _ := h.region.Realloc(addr, size)
		return na, h.cost.ReallocInstr
	}
	na, _ := h.fallback.Realloc(addr, size)
	return na, h.cost.ReallocInstr
}

// Pollution returns the Table 4 counts.
func (h *HDSAlloc) Pollution() Pollution { return h.pollution }

// PeakBytes returns combined peak footprint of region and heap.
func (h *HDSAlloc) PeakBytes() uint64 {
	return h.region.Stats().PeakBytes + h.fallback.Stats().PeakBytes
}

var _ machine.Allocator = (*HDSAlloc)(nil)
