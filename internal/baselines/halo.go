package baselines

import (
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/simalloc"
)

// HALO address-space layout: each affinity group's pool gets a private
// 1 GiB window above HALOPoolBase; chunks are carved from the window.
const (
	HALOPoolBase   mem.Addr = 0x3000_0000_0000
	haloPoolStride uint64   = 1 << 30
	// HALOChunk is the on-demand growth quantum of a pool ("reserved
	// regions, grown on demand", Table 1).
	HALOChunk uint64 = 64 << 10
)

// HALOGroup identifies one affinity group of allocation contexts.
type HALOGroup int

// HALOConfig is the profile product HALO consumes: call-stack signatures
// grouped by access affinity. Every runtime allocation whose stack
// signature appears here is placed in its group's pool.
type HALOConfig struct {
	Groups map[mem.StackSig]HALOGroup
	// NumGroups is 1 + the highest group id.
	NumGroups int
}

// HALO is the HALO [21] baseline. It disambiguates allocation sites by
// calling context (stack signature) and pools same-group allocations
// together. Because a signature identifies *every* allocation executed
// under that stack — not a specific dynamic instance — objects that merely
// share the context of a hot allocation pollute the pool (paper §2.2 and
// Table 4), and objects within a pool stay in allocation order.
type HALO struct {
	cfg      HALOConfig
	pools    []*haloPool
	fallback *simalloc.Heap
	cost     cachesim.CostModel

	hot       HotSet
	counters  map[mem.SiteID]mem.Instance
	pollution Pollution
	freeMarks map[mem.Addr]uint64 // live pool allocations: addr -> size
}

type haloPool struct {
	base   mem.Addr
	bump   mem.Addr
	limit  mem.Addr // end of currently reserved chunks
	window mem.Addr // end of the pool's address window
	peak   uint64
	// freeBySize recycles freed pool blocks (size-class free lists):
	// HALO's pools are managed regions, not leak-forever bumps.
	freeBySize map[uint64][]mem.Addr
}

// NewHALO builds the HALO baseline.
func NewHALO(cfg HALOConfig, hot HotSet, cost cachesim.CostModel) *HALO {
	h := &HALO{
		cfg:       cfg,
		fallback:  simalloc.New(HeapBase),
		cost:      cost,
		hot:       hot,
		counters:  make(map[mem.SiteID]mem.Instance),
		freeMarks: make(map[mem.Addr]uint64),
	}
	for g := 0; g < cfg.NumGroups; g++ {
		base := HALOPoolBase + mem.Addr(uint64(g)*haloPoolStride)
		h.pools = append(h.pools, &haloPool{
			base: base, bump: base, limit: base,
			window:     base + mem.Addr(haloPoolStride),
			freeBySize: make(map[uint64][]mem.Addr),
		})
	}
	return h
}

// Name implements machine.Allocator.
func (h *HALO) Name() string { return "halo" }

// haloCheckInstr models the runtime cost of hashing the call stack and
// probing the signature table on every instrumented allocation (Table 1:
// "Hot Object Check: get the call stack ... and check against a
// signature").
const haloCheckInstr = 12

// Malloc implements machine.Allocator.
func (h *HALO) Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (mem.Addr, uint64) {
	h.counters[site]++
	g, ok := h.cfg.Groups[stack]
	if !ok || int(g) >= len(h.pools) {
		return h.fallback.Malloc(size), h.cost.MallocInstr + haloCheckInstr
	}
	p := h.pools[g]
	size = mem.AlignUp(maxU64(size, 16), 16)
	h.pollution.All++
	if h.hot.Has(site, h.counters[site]) {
		h.pollution.Hot++
	}
	// Reuse a freed block of the same size class if one exists.
	if list := p.freeBySize[size]; len(list) > 0 {
		addr := list[len(list)-1]
		p.freeBySize[size] = list[:len(list)-1]
		h.freeMarks[addr] = size
		return addr, h.cost.MallocInstr + haloCheckInstr
	}
	if p.bump+mem.Addr(size) > p.limit {
		grow := mem.AlignUp(size, HALOChunk)
		if p.limit+mem.Addr(grow) > p.window {
			// Pool window exhausted; spill to the heap.
			return h.fallback.Malloc(size), h.cost.MallocInstr + haloCheckInstr
		}
		p.limit += mem.Addr(grow)
	}
	addr := p.bump
	p.bump += mem.Addr(size)
	if used := uint64(p.bump - p.base); used > p.peak {
		p.peak = used
	}
	h.freeMarks[addr] = size
	// Pool management costs are "similar to other heap objects"
	// (Table 1): chunk bookkeeping plus the signature check.
	return addr, h.cost.MallocInstr + haloCheckInstr
}

// Free implements machine.Allocator.
func (h *HALO) Free(addr mem.Addr) uint64 {
	if addr >= HALOPoolBase {
		// Managed deallocation: the block returns to its pool's
		// size-class free list for reuse.
		if size, ok := h.freeMarks[addr]; ok {
			delete(h.freeMarks, addr)
			g := int(uint64(addr-HALOPoolBase) / haloPoolStride)
			if g >= 0 && g < len(h.pools) {
				p := h.pools[g]
				p.freeBySize[size] = append(p.freeBySize[size], addr)
			}
		}
		return h.cost.FreeInstr
	}
	h.fallback.Free(addr)
	return h.cost.FreeInstr
}

// Realloc implements machine.Allocator.
func (h *HALO) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	if addr >= HALOPoolBase {
		old := h.freeMarks[addr]
		if size <= old {
			return addr, 12
		}
		na, cost := h.Malloc(0, 0, size) // group 0 lookup will miss; goes to heap
		delete(h.freeMarks, addr)
		return na, cost + h.cost.ReallocInstr
	}
	na, _ := h.fallback.Realloc(addr, size)
	return na, h.cost.ReallocInstr
}

// Pollution returns the Table 4 counts.
func (h *HALO) Pollution() Pollution { return h.pollution }

// PeakBytes returns the combined peak footprint: reserved pool chunks plus
// the heap.
func (h *HALO) PeakBytes() uint64 {
	total := h.fallback.Stats().PeakBytes
	for _, p := range h.pools {
		total += mem.AlignUp(p.peak, HALOChunk)
	}
	return total
}

var _ machine.Allocator = (*HALO)(nil)

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
