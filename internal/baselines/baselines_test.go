package baselines

import (
	"testing"

	"prefix/internal/cachesim"
	"prefix/internal/mem"
)

func cost() cachesim.CostModel { return cachesim.DefaultCost() }

func TestBaselineBasics(t *testing.T) {
	b := NewBaseline(cost())
	a1, instr := b.Malloc(1, 0, 64)
	if a1 == mem.NilAddr || instr != cost().MallocInstr {
		t.Errorf("malloc: %v %d", a1, instr)
	}
	if got := b.Free(a1); got != cost().FreeInstr {
		t.Errorf("free cost = %d", got)
	}
	a2, _ := b.Malloc(2, 0, 64)
	na, _ := b.Realloc(a2, 128)
	if na == mem.NilAddr {
		t.Error("realloc failed")
	}
	if b.PeakBytes() == 0 {
		t.Error("peak not tracked")
	}
}

func TestHotSet(t *testing.T) {
	hs := make(HotSet)
	hs.Add(1, 3)
	hs.Add(1, 5)
	if !hs.Has(1, 3) || !hs.Has(1, 5) || hs.Has(1, 4) || hs.Has(2, 3) {
		t.Error("hot set membership wrong")
	}
}

func TestPollution(t *testing.T) {
	p := Pollution{Hot: 3, All: 10}
	if p.Spurious() != 7 {
		t.Errorf("spurious = %d", p.Spurious())
	}
}

func TestHDSRedirectsChosenSites(t *testing.T) {
	hot := make(HotSet)
	hot.Add(1, 1)
	h := NewHDS([]mem.SiteID{1}, hot, cost())
	a1, _ := h.Malloc(1, 0, 64) // chosen site: region
	a2, _ := h.Malloc(2, 0, 64) // other site: heap
	if a1 < HDSRegionBase {
		t.Error("chosen site not redirected")
	}
	if a2 >= HDSRegionBase {
		t.Error("unchosen site redirected")
	}
}

func TestHDSPollutionAccounting(t *testing.T) {
	hot := make(HotSet)
	hot.Add(1, 1) // only the first instance is hot
	h := NewHDS([]mem.SiteID{1}, hot, cost())
	for i := 0; i < 5; i++ {
		h.Malloc(1, 0, 32)
	}
	p := h.Pollution()
	if p.Hot != 1 || p.All != 5 {
		t.Errorf("pollution = %+v, want 1/5", p)
	}
	if p.Spurious() != 4 {
		t.Errorf("spurious = %d", p.Spurious())
	}
}

func TestHDSFreeRouting(t *testing.T) {
	h := NewHDS([]mem.SiteID{1}, make(HotSet), cost())
	r, _ := h.Malloc(1, 0, 64)
	hp, _ := h.Malloc(2, 0, 64)
	h.Free(r)
	h.Free(hp)
	// Region reuses its own freed space.
	r2, _ := h.Malloc(1, 0, 64)
	if r2 != r {
		t.Error("region free list not reused")
	}
	// Realloc keeps objects on their side.
	r3, _ := h.Realloc(r2, 128)
	if r3 < HDSRegionBase {
		t.Error("region realloc left the region")
	}
	h2, _ := h.Malloc(2, 0, 32)
	h3, _ := h.Realloc(h2, 64)
	if h3 >= HDSRegionBase {
		t.Error("heap realloc entered the region")
	}
}

func haloCfg(sigs ...mem.StackSig) HALOConfig {
	cfg := HALOConfig{Groups: make(map[mem.StackSig]HALOGroup)}
	for i, s := range sigs {
		cfg.Groups[s] = HALOGroup(i % 2)
	}
	cfg.NumGroups = 2
	return cfg
}

func TestHALOPoolsBySignature(t *testing.T) {
	h := NewHALO(haloCfg(0xaaa, 0xbbb), make(HotSet), cost())
	a, _ := h.Malloc(1, 0xaaa, 64)
	b, _ := h.Malloc(2, 0xbbb, 64)
	c, _ := h.Malloc(3, 0xccc, 64) // unknown signature: heap
	if a < HALOPoolBase || b < HALOPoolBase {
		t.Error("known signatures should be pooled")
	}
	if uint64(a-HALOPoolBase)/haloPoolStride == uint64(b-HALOPoolBase)/haloPoolStride {
		t.Error("different groups share a pool")
	}
	if c >= HALOPoolBase {
		t.Error("unknown signature pooled")
	}
}

func TestHALOSameSignaturePollutes(t *testing.T) {
	// The Figure 3 imprecision: cold allocations under the hot stack
	// signature land in the pool and count as pollution.
	hot := make(HotSet)
	hot.Add(1, 1)
	h := NewHALO(haloCfg(0xaaa), hot, cost())
	for i := 0; i < 6; i++ {
		h.Malloc(1, 0xaaa, 32)
	}
	p := h.Pollution()
	if p.Hot != 1 || p.All != 6 {
		t.Errorf("pollution = %+v", p)
	}
}

func TestHALOFreeListReuse(t *testing.T) {
	h := NewHALO(haloCfg(0xaaa), make(HotSet), cost())
	a, _ := h.Malloc(1, 0xaaa, 64)
	h.Free(a)
	b, _ := h.Malloc(1, 0xaaa, 64)
	if b != a {
		t.Error("pool must reuse freed blocks of the same size class")
	}
}

func TestHALOReallocInPool(t *testing.T) {
	h := NewHALO(haloCfg(0xaaa), make(HotSet), cost())
	a, _ := h.Malloc(1, 0xaaa, 64)
	na, _ := h.Realloc(a, 32)
	if na != a {
		t.Error("shrinking pool realloc should stay")
	}
	na2, _ := h.Realloc(a, 1024)
	if na2 >= HALOPoolBase {
		t.Error("grown pool object should spill to the heap")
	}
}

func TestHALOPeakIncludesChunks(t *testing.T) {
	h := NewHALO(haloCfg(0xaaa), make(HotSet), cost())
	h.Malloc(1, 0xaaa, 64)
	if h.PeakBytes() < HALOChunk {
		t.Errorf("peak %d should include a reserved chunk", h.PeakBytes())
	}
}
