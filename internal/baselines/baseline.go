// Package baselines implements the allocation strategies PreFix is
// evaluated against:
//
//   - Baseline: the plain heap allocator (compiled -O3 binary in the
//     paper);
//   - HDS (Chilimbi & Shaham 2006): every allocation from a chosen set of
//     malloc sites is redirected to a separate memory region, in
//     allocation order;
//   - HALO (Savage & Jones 2020): allocations whose call-stack signature
//     belongs to an affinity group are placed in that group's pool, grown
//     on demand in chunks.
//
// Both prior techniques suffer the pollution and no-reordering limitations
// the paper's Table 1 summarizes; the implementations here reproduce those
// limitations faithfully so Tables 3 and 4 can be regenerated.
package baselines

import (
	"prefix/internal/cachesim"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/simalloc"
)

// HeapBase is where the general-purpose heap lives in the simulated
// address space. Strategy-private regions are placed far above it.
const HeapBase mem.Addr = 0x0001_0000

// Baseline is the unmodified allocator: everything goes to the heap.
type Baseline struct {
	Heap *simalloc.Heap
	cost cachesim.CostModel
}

// NewBaseline returns the baseline strategy.
func NewBaseline(cost cachesim.CostModel) *Baseline {
	return &Baseline{Heap: simalloc.New(HeapBase), cost: cost}
}

// Name implements machine.Allocator.
func (b *Baseline) Name() string { return "baseline" }

// Malloc implements machine.Allocator.
func (b *Baseline) Malloc(_ mem.SiteID, _ mem.StackSig, size uint64) (mem.Addr, uint64) {
	return b.Heap.Malloc(size), b.cost.MallocInstr
}

// Free implements machine.Allocator.
func (b *Baseline) Free(addr mem.Addr) uint64 {
	b.Heap.Free(addr)
	return b.cost.FreeInstr
}

// Realloc implements machine.Allocator.
func (b *Baseline) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	na, _ := b.Heap.Realloc(addr, size)
	return na, b.cost.ReallocInstr
}

// PeakBytes returns the heap's peak footprint.
func (b *Baseline) PeakBytes() uint64 { return b.Heap.Stats().PeakBytes }

var _ machine.Allocator = (*Baseline)(nil)

// HotSet records which dynamic allocations are actually hot, keyed by
// static site and dynamic instance. Strategies use it purely for pollution
// accounting (Table 4) — it never influences placement decisions of the
// HDS/HALO baselines, which cannot distinguish instances at runtime.
type HotSet map[mem.SiteID]map[mem.Instance]bool

// Has reports whether the instance-th allocation of site is hot.
func (h HotSet) Has(site mem.SiteID, inst mem.Instance) bool {
	return h[site][inst]
}

// Add marks an instance hot.
func (h HotSet) Add(site mem.SiteID, inst mem.Instance) {
	m := h[site]
	if m == nil {
		m = make(map[mem.Instance]bool)
		h[site] = m
	}
	m[inst] = true
}

// Pollution is the Table 4 accounting: how many objects were directed to
// the technique's special region(s), and how many of those are hot.
type Pollution struct {
	Hot uint64 // hot objects captured in the region
	All uint64 // all objects placed in the region
}

// Spurious returns the number of polluting (non-hot) objects.
func (p Pollution) Spurious() uint64 { return p.All - p.Hot }

// Publish reports the Table 4 pollution counters into reg under the given
// label pairs. Nil-safe on a nil registry.
func (p Pollution) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	reg.Counter("prefix_pollution_captured_total", kv...).Add(p.All)
	reg.Counter("prefix_pollution_hot_total", kv...).Add(p.Hot)
	reg.Counter("prefix_pollution_spurious_total", kv...).Add(p.Spurious())
}
