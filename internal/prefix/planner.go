package prefix

import (
	"fmt"
	"sort"

	"prefix/internal/context"
	"prefix/internal/hds"
	"prefix/internal/hotness"
	"prefix/internal/layout"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/trace"
)

// Miner selects the hot-data-stream detector.
type Miner uint8

const (
	// MinerLCS is the paper's choice (§3.1).
	MinerLCS Miner = iota
	// MinerSequitur is the detector of the original HDS work, kept for
	// the ablation comparison.
	MinerSequitur
)

// PlanConfig controls planning.
type PlanConfig struct {
	Benchmark string
	Variant   Variant
	Hot       hotness.Config
	HDS       hds.Config
	Share     context.ShareConfig
	Miner     Miner
	// RecycleRatio is the allocs/max-live factor beyond which an
	// All-pattern counter is converted to a recycling ring (§2.4). 0
	// disables recycling.
	RecycleRatio float64
	// PromoteAll and PromoteMinAllocs control "all ids" site promotion:
	// a site whose selected-hot fraction reaches PromoteAll (and which
	// allocated at least PromoteMinAllocs objects) has all its instances
	// treated as hot. 0 disables promotion.
	PromoteAll       float64
	PromoteMinAllocs uint64
	// HybridContext enables the §2.2.2 hybrid mechanism: Fixed and
	// Regular counters additionally record each hot instance's profiled
	// call-stack signature, and the runtime requires both the id and the
	// signature to match before placing an object. All-id counters are
	// exempt (every instance is hot regardless of context).
	HybridContext bool
	// MaxRegionBytes caps the preallocated region ("the increase in the
	// program's memory footprint ... can be controlled by limiting the
	// size of the preallocated memory", §1). Recycling rings are kept —
	// they are small and bounded — and the static placement is truncated
	// from the end of the layout order (the coldest singletons) until it
	// fits. 0 means unlimited.
	MaxRegionBytes uint64
	// Trace, when non-nil, receives one child span per planning stage
	// (mining, reconstitution, context inference, recycling, slot
	// assignment) with per-stage counters attached. Purely observational:
	// it never influences the plan.
	Trace *obs.Span
	// Ledger, when non-nil, receives one Decision per planning choice —
	// classification reasons, sharing attempts, reconstitution actions,
	// recycling geometry, slot placements, budget truncation. Like Trace
	// it is purely observational and deterministic.
	Ledger *Ledger
}

// DefaultPlanConfig returns the configuration used across the evaluation.
func DefaultPlanConfig(benchmark string, v Variant) PlanConfig {
	hotCfg := hotness.DefaultConfig()
	// The planner prefers complete hot sets over a hard cap: recycling
	// and "all ids" classification both depend on seeing every hot
	// instance of a site, and region growth is bounded by recycling and
	// by the coverage threshold.
	hotCfg.MaxObjects = 0
	return PlanConfig{
		Benchmark:        benchmark,
		Variant:          v,
		Hot:              hotCfg,
		HDS:              hds.DefaultConfig(),
		Share:            context.DefaultShareConfig(),
		Miner:            MinerLCS,
		RecycleRatio:     4,
		PromoteAll:       0.8,
		PromoteMinAllocs: 8,
	}
}

// SelectHot performs hot-object selection plus "all ids" promotion per
// the configuration; BuildPlan uses it internally, and callers that need
// the same ground truth for baseline accounting call it directly.
func SelectHot(a *trace.Analysis, cfg PlanConfig) *hotness.Set {
	hot := hotness.Select(a, cfg.Hot)
	if cfg.PromoteAll > 0 {
		hot.PromoteSites(a, cfg.PromoteAll, cfg.PromoteMinAllocs)
	}
	return hot
}

// BuildPlan runs the full profile analysis of Figure 8 on an analyzed
// trace and produces a Plan plus the reporting Summary.
func BuildPlan(a *trace.Analysis, cfg PlanConfig) (*Plan, *Summary, error) {
	return BuildPlanFromHot(a, SelectHot(a, cfg), cfg)
}

// BuildPlanFromHot is BuildPlan with a caller-provided hot set (so one
// selection can be shared between PreFix planning and the baseline
// pollution accounting).
func BuildPlanFromHot(a *trace.Analysis, hot *hotness.Set, cfg PlanConfig) (*Plan, *Summary, error) {
	if len(hot.Objects) == 0 {
		return nil, nil, fmt.Errorf("prefix: no hot objects found in profile")
	}

	// --- Hot data stream mining -------------------------------------
	mineSpan := cfg.Trace.Child("hds-mining")
	refs := hds.CollapseRefs(a.Refs, hot.IDs)
	var ohds []hds.Stream
	switch cfg.Miner {
	case MinerSequitur:
		ohds = hds.MineSequitur(refs, cfg.HDS)
	default:
		ohds = hds.MineLCS(refs, cfg.HDS)
	}
	accesses := make(map[mem.ObjectID]uint64, len(hot.Objects))
	for _, o := range hot.Objects {
		accesses[o.ID] = o.Accesses
	}
	ohds = hds.WeighByAccesses(ohds, accesses)
	mineSpan.Set("refs", len(refs))
	mineSpan.Set("streams", len(ohds))
	mineSpan.End()
	minerName := "lcs"
	if cfg.Miner == MinerSequitur {
		minerName = "sequitur"
	}
	cfg.Ledger.Record(Decision{
		Stage: StageMining, Kind: "streams-mined", Counter: -1,
		Reason: fmt.Sprintf("%s miner found %d observed hot data streams over %d collapsed hot references",
			minerName, len(ohds), len(refs)),
	})

	// --- Layout determination (Algorithm 1) -------------------------
	reconSpan := cfg.Trace.Child("reconstitution")
	recon := layout.Reconstitute(ohds)
	if err := recon.Validate(); err != nil {
		reconSpan.End()
		return nil, nil, err
	}
	reconSpan.Set("rhds", len(recon.RHDS))
	reconSpan.Set("singletons", len(recon.Singletons))
	reconSpan.End()
	if cfg.Ledger != nil {
		for _, st := range recon.Steps {
			cfg.Ledger.Record(Decision{
				Stage: StageReconstitution, Kind: "hds-" + st.Action, Counter: -1,
				Reason: fmt.Sprintf("OHDS[%d]: %s", st.Stream, st.Reason),
			})
		}
	}

	// Placement order by variant.
	hotOrder := make([]mem.ObjectID, 0, len(hot.Objects)) // allocation order
	for _, o := range hot.Objects {
		hotOrder = append(hotOrder, o.ID)
	}
	sort.Slice(hotOrder, func(i, j int) bool { return hotOrder[i] < hotOrder[j] })

	inStream := hds.Objects(recon.RHDS)
	var order []mem.ObjectID
	switch cfg.Variant {
	case VariantHot:
		order = hotOrder
	case VariantHDS:
		order = recon.Order() // streams then split singletons
	case VariantHDSHot:
		order = recon.Order()
		placed := make(map[mem.ObjectID]bool, len(order))
		for _, o := range order {
			placed[o] = true
		}
		for _, o := range hotOrder {
			if !placed[o] {
				order = append(order, o)
			}
		}
	default:
		return nil, nil, fmt.Errorf("prefix: unknown variant %v", cfg.Variant)
	}
	// The placement can only target hot objects.
	orderSet := make(map[mem.ObjectID]bool, len(order))
	filtered := order[:0]
	for _, o := range order {
		if hot.IDs[o] && !orderSet[o] {
			orderSet[o] = true
			filtered = append(filtered, o)
		}
	}
	order = filtered

	// --- Context determination (§2.2) --------------------------------
	// Identification is independent of the layout variant: every site
	// that allocates hot objects is instrumented, and patterns are
	// inferred over the full hot set. The variant only decides which
	// objects receive static slots; recycling applies to qualifying
	// counters under every variant ("all versions of PreFix perform the
	// same" on the recycling benchmarks, §3.3).
	ctxSpan := cfg.Trace.Child("context-inference")
	hotSites := make(map[mem.SiteID]bool)
	for site := range hot.PerSite {
		hotSites[site] = true
	}
	var allocs []context.AllocRecord
	for _, o := range a.Objects {
		if !hotSites[o.Site] {
			continue
		}
		allocs = append(allocs, context.AllocRecord{
			Site:   o.Site,
			Object: o.ID,
			Hot:    hot.IDs[o.ID],
		})
	}
	asn, err := context.BuildAssignment(allocs, cfg.Share)
	if err != nil {
		ctxSpan.End()
		return nil, nil, err
	}
	ctxSpan.Set("sites", len(hotSites))
	ctxSpan.Set("counters", len(asn.Counters))
	ctxSpan.End()
	if cfg.Ledger != nil {
		for _, sd := range asn.Trail {
			kind := "share-rejected"
			if sd.Accepted {
				kind = "share-accepted"
			}
			cfg.Ledger.Record(Decision{
				Stage: StageContext, Kind: kind, Counter: -1, Sites: sd.Sites, Reason: sd.Reason,
			})
		}
		for ci, c := range asn.Counters {
			cfg.Ledger.Record(Decision{
				Stage: StageContext, Kind: "counter-classified", Counter: ci, Sites: c.Sites,
				Reason: fmt.Sprintf("%s pattern over %d site(s): %s", c.Kind, len(c.Sites), c.Reason),
			})
		}
	}

	// --- Recycling decision (§2.4) ------------------------------------
	// Decide which counters become slot rings *before* assigning static
	// offsets, so recycled objects never consume static region space
	// (this is what lets leela/swissmap shrink their footprints).
	recycleSpan := cfg.Trace.Child("recycling")
	liveness := hotness.AnalyzeLiveness(a)
	type ringSpec struct {
		n        int
		slotSize uint64
	}
	rings := make(map[int]ringSpec) // assignment counter index -> ring
	recycledObj := make(map[mem.ObjectID]bool)
	if cfg.RecycleRatio <= 0 {
		cfg.Ledger.Record(Decision{
			Stage: StageRecycling, Kind: "recycling-disabled", Counter: -1,
			Reason: "recycling disabled by configuration (RecycleRatio 0)",
		})
	} else {
		for ci, c := range asn.Counters {
			if c.Kind != context.KindAll {
				continue // only all-ids counters can serve every instance from a ring
			}
			if why, ok := recyclable(c.Sites, liveness, cfg.RecycleRatio); !ok {
				cfg.Ledger.Record(Decision{
					Stage: StageRecycling, Kind: "ring-rejected", Counter: ci, Sites: c.Sites, Reason: why,
				})
				continue
			}
			n, slotSize := ringGeometry(c, a, liveness)
			if n <= 0 || slotSize == 0 {
				cfg.Ledger.Record(Decision{
					Stage: StageRecycling, Kind: "ring-rejected", Counter: ci, Sites: c.Sites,
					Reason: fmt.Sprintf("degenerate ring geometry (N=%d slot=%d B)", n, slotSize),
				})
				continue
			}
			rings[ci] = ringSpec{n: n, slotSize: slotSize}
			for _, obj := range c.HotIDs {
				recycledObj[obj] = true
			}
			cfg.Ledger.Record(Decision{
				Stage: StageRecycling, Kind: "ring-sized", Counter: ci, Sites: c.Sites,
				Size: uint64(n) * slotSize,
				Reason: fmt.Sprintf(
					"every site reaches allocs/max-live ratio %.3g; N=%d (peak simultaneously-live objects), slot=%d B (largest hot object) serve %d hot objects from %d B of ring space",
					cfg.RecycleRatio, n, slotSize, len(c.HotIDs), uint64(n)*slotSize),
			})
		}
	}
	recycleSpan.Set("rings", len(rings))
	recycleSpan.Set("recycled_objects", len(recycledObj))
	recycleSpan.End()

	// --- Slot assignment ----------------------------------------------
	slotSpan := cfg.Trace.Child("slot-assignment")
	staticOrder := make([]mem.ObjectID, 0, len(order))
	for _, id := range order {
		if !recycledObj[id] {
			staticOrder = append(staticOrder, id)
		}
	}
	sizes := make(map[mem.ObjectID]uint64, len(staticOrder))
	for _, id := range staticOrder {
		o := a.Object(id)
		sz := o.Size
		if o.FinalSize > sz {
			sz = o.FinalSize
		}
		sizes[id] = sz
	}
	if cfg.MaxRegionBytes > 0 {
		// Reserve ring space first, then truncate the static placement
		// (coldest-last layout order) to the remaining budget.
		var ringBytes uint64
		for _, r := range rings {
			ringBytes += uint64(r.n) * r.slotSize
		}
		budget := uint64(0)
		if cfg.MaxRegionBytes > ringBytes {
			budget = cfg.MaxRegionBytes - ringBytes
		}
		var used uint64
		cut := len(staticOrder)
		for i, id := range staticOrder {
			sz := mem.AlignUp(maxU64p(sizes[id], layout.Align), layout.Align)
			if used+sz > budget {
				cut = i
				break
			}
			used += sz
		}
		if cfg.Ledger != nil {
			for _, id := range staticOrder[cut:] {
				cfg.Ledger.Record(Decision{
					Stage: StagePlacement, Kind: "budget-truncated", Counter: -1,
					Sites: []mem.SiteID{a.Object(id).Site}, Object: id, Size: sizes[id],
					Reason: fmt.Sprintf(
						"region budget %d B (rings reserve %d B) exhausted after %d B; coldest tail of the layout order dropped",
						cfg.MaxRegionBytes, ringBytes, used),
				})
			}
		}
		staticOrder = staticOrder[:cut]
	}
	placement := layout.Assign(staticOrder, sizes)
	if err := placement.Validate(); err != nil {
		slotSpan.End()
		return nil, nil, err
	}
	slotSpan.Set("placed", len(placement.Offsets))
	slotSpan.Set("region_bytes", placement.Total)
	slotSpan.End()
	if cfg.Ledger != nil {
		// Where each placed object sits in the layout order and why: its
		// reconstituted stream position, singleton slot, or variant tail.
		why := make(map[mem.ObjectID]string, len(staticOrder))
		for i, s := range recon.RHDS {
			for j, o := range s.Objects {
				why[o] = fmt.Sprintf("position %d of reconstituted stream RHDS[%d] (stream order drives the next-line prefetcher)", j, i)
			}
		}
		for _, o := range recon.Singletons {
			why[o] = "hot singleton left over from stream splitting; placed after the streams"
		}
		for _, id := range staticOrder {
			w, ok := why[id]
			if !ok || cfg.Variant == VariantHot {
				w = "hot object placed in allocation order"
				if cfg.Variant == VariantHDSHot {
					w = "hot object outside every reconstituted stream; appended after the streams"
				}
			}
			cfg.Ledger.Record(Decision{
				Stage: StagePlacement, Kind: "slot-assigned", Counter: asn.SiteCounter[a.Object(id).Site],
				Sites: []mem.SiteID{a.Object(id).Site}, Object: id,
				Offset: placement.Offsets[id], Size: placement.Sizes[id], Reason: w,
			})
		}
	}

	plan := &Plan{
		Benchmark:   cfg.Benchmark,
		Variant:     cfg.Variant,
		SiteCounter: make(map[mem.SiteID]int),
		Order:       order,
	}
	regionEnd := placement.Total

	for ci, c := range asn.Counters {
		pc := PlanCounter{
			Sites: c.Sites,
			Kind:  c.Kind,
			Set:   c.Set,
			Start: c.Pattern.Start,
			Step:  c.Pattern.Step,
			Count: c.Pattern.Count,
		}
		if r, ok := rings[ci]; ok {
			pc.Recycle = &RecyclePlan{N: r.n, SlotSize: r.slotSize, Base: regionEnd}
			regionEnd += uint64(r.n) * r.slotSize
		} else {
			pc.SlotOf = make(map[mem.Instance]Slot)
			for id, obj := range c.HotIDs {
				if off, ok := placement.Offsets[obj]; ok {
					pc.SlotOf[id] = Slot{Offset: off, Size: placement.Sizes[obj]}
				}
			}
			if cfg.HybridContext && c.Kind != context.KindAll {
				pc.Sigs = make(map[mem.Instance]mem.StackSig, len(c.HotIDs))
				for id, obj := range c.HotIDs {
					pc.Sigs[id] = a.Object(obj).Stack
				}
			}
		}
		plan.Counters = append(plan.Counters, pc)
		for _, s := range c.Sites {
			plan.SiteCounter[s] = len(plan.Counters) - 1
		}
	}

	plan.RegionSize = regionEnd
	plan.PlacedObjects = len(placement.Offsets)
	for _, id := range order {
		if inStream[id] {
			if _, still := placement.Offsets[id]; still {
				plan.HDSObjects++
			}
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}

	hotInHDS := 0
	for id := range hot.IDs {
		if inStream[id] {
			hotInHDS++
		}
	}
	sum := &Summary{
		OHDS:        ohds,
		Recon:       recon,
		HotObjects:  len(hot.Objects),
		HotInHDS:    hotInHDS,
		CoveragePct: hot.CoveragePct(),
		Ledger:      cfg.Ledger,
	}
	return plan, sum, nil
}

func maxU64p(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func recyclable(sites []mem.SiteID, l hotness.Liveness, ratio float64) (string, bool) {
	for _, s := range sites {
		if !l.RecyclingCandidate(s, ratio) {
			return fmt.Sprintf(
				"site %d allocates %d objects with peak live %d — below the allocs/max-live ratio %.3g recycling needs",
				s, l.SiteAllocs[s], l.SiteMaxLive[s], ratio), false
		}
	}
	return "", true
}

// ringGeometry sizes a recycling ring: N = peak simultaneously-live
// objects across the counter's sites (so in the common case everything is
// served from the ring), slot size = largest hot object of the counter.
func ringGeometry(c *context.Counter, a *trace.Analysis, l hotness.Liveness) (int, uint64) {
	var n uint64
	for _, s := range c.Sites {
		n += l.SiteMaxLive[s]
	}
	var slot uint64
	for _, obj := range c.HotIDs {
		o := a.Object(obj)
		sz := o.Size
		if o.FinalSize > sz {
			sz = o.FinalSize
		}
		if sz > slot {
			slot = sz
		}
	}
	slot = mem.AlignUp(slot, layout.Align)
	return int(n), slot
}
