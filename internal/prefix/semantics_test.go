package prefix

import (
	"testing"
	"testing/quick"

	"prefix/internal/mem"
	"prefix/internal/trace"
	"prefix/internal/xrand"
)

// TestAllocatorSemanticsProperty drives random allocation programs
// through a plan built from their own profile and checks the §2.3
// correctness claim: the transformation only changes *where* objects
// live. Concretely, at all times no two live allocations overlap
// (region-placed, ring-placed, or fallback), every Malloc yields a
// usable address, and frees make slots reusable.
func TestAllocatorSemanticsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)

		// Generate a random program: a list of (site, size, lifetime)
		// allocations with interleaved accesses, replayed identically
		// for profiling and evaluation.
		type op struct {
			site mem.SiteID
			size uint64
			live int // ops until freed
		}
		nOps := 150 + rng.Intn(150)
		ops := make([]op, nOps)
		for i := range ops {
			ops[i] = op{
				site: mem.SiteID(rng.Intn(4) + 1),
				size: rng.Uint64n(200) + 1,
				live: rng.Intn(20) + 1,
			}
		}

		// Profile run on a recorder-backed pseudo-heap.
		rec := trace.NewRecorder()
		{
			next := mem.Addr(0x10000)
			type liveObj struct {
				addr  mem.Addr
				until int
			}
			var live []liveObj
			for i, o := range ops {
				a := next
				next += mem.Addr(o.size + 32)
				rec.Alloc(o.site, mem.StackSig(o.site), a, o.size)
				rec.Access(a, 8, false)
				rec.Access(a, 8, false)
				rec.Access(a, 8, true)
				rec.Access(a, 8, false)
				live = append(live, liveObj{a, i + o.live})
				kept := live[:0]
				for _, l := range live {
					if l.until <= i {
						rec.Free(l.addr)
					} else {
						kept = append(kept, l)
					}
				}
				live = kept
			}
			for _, l := range live {
				rec.Free(l.addr)
			}
		}
		cfg := DefaultPlanConfig("prop", VariantHDSHot)
		cfg.Hot.MinAccesses = 1
		plan, _, err := BuildPlan(trace.Analyze(rec.Trace()), cfg)
		if err != nil {
			return true // profiles without hot objects are fine to skip
		}
		if plan.Validate() != nil {
			t.Log("invalid plan")
			return false
		}

		// Evaluation run: same program on the PreFix allocator, with an
		// overlap oracle over requested sizes.
		alloc := NewAllocator(plan, cost())
		type liveRange struct {
			r     mem.Range
			until int
		}
		var live []liveRange
		for i, o := range ops {
			addr, _ := alloc.Malloc(o.site, mem.StackSig(o.site), o.size)
			if addr == mem.NilAddr {
				t.Log("nil address")
				return false
			}
			nr := mem.Range{Start: addr, Size: o.size}
			for _, l := range live {
				if l.r.Overlaps(nr) {
					t.Logf("overlap: live %v with new %v (seed %d op %d)", l.r, nr, seed, i)
					return false
				}
			}
			live = append(live, liveRange{nr, i + o.live})
			kept := live[:0]
			for _, l := range live {
				if l.until <= i {
					alloc.Free(l.r.Start)
				} else {
					kept = append(kept, l)
				}
			}
			live = kept
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAllocatorReallocSemanticsProperty extends the oracle with random
// reallocs: the (possibly moved) object must never overlap other live
// objects, matching Figure 6's semantics.
func TestAllocatorReallocSemanticsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		plan := ringPlan() // ring of 2x64B slots on site 5
		alloc := NewAllocator(plan, cost())
		type liveRange struct{ r mem.Range }
		var live []liveRange
		check := func(nr mem.Range, skip int) bool {
			for j, l := range live {
				if j != skip && l.r.Overlaps(nr) {
					return false
				}
			}
			return true
		}
		for i := 0; i < 300; i++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.5:
				size := rng.Uint64n(120) + 1
				addr, _ := alloc.Malloc(5, 0, size)
				nr := mem.Range{Start: addr, Size: size}
				if !check(nr, -1) {
					t.Logf("malloc overlap at op %d (seed %d)", i, seed)
					return false
				}
				live = append(live, liveRange{nr})
			case rng.Float64() < 0.5:
				j := rng.Intn(len(live))
				alloc.Free(live[j].r.Start)
				live = append(live[:j], live[j+1:]...)
			default:
				j := rng.Intn(len(live))
				size := rng.Uint64n(200) + 1
				addr, _ := alloc.Realloc(live[j].r.Start, size)
				nr := mem.Range{Start: addr, Size: size}
				if !check(nr, j) {
					t.Logf("realloc overlap at op %d (seed %d)", i, seed)
					return false
				}
				live[j] = liveRange{nr}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
