package prefix

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"prefix/internal/mem"
)

// buildLedger plans the synthetic trace with recording enabled.
func buildLedger(t *testing.T, mutate func(*PlanConfig)) (*Plan, *Ledger) {
	t.Helper()
	cfg := DefaultPlanConfig("synth", VariantHDSHot)
	cfg.Ledger = NewLedger()
	if mutate != nil {
		mutate(&cfg)
	}
	plan, sum, err := BuildPlan(synthTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ledger != cfg.Ledger {
		t.Fatal("summary does not carry the ledger")
	}
	return plan, cfg.Ledger
}

// TestLedgerCoversEveryStage: a recorded plan build leaves decisions in
// every pipeline stage, every counter has a classification entry, and
// every statically placed object has a slot-assigned entry with its
// offset and a reason.
func TestLedgerCoversEveryStage(t *testing.T) {
	plan, led := buildLedger(t, nil)

	for _, stage := range []string{StageMining, StageReconstitution, StageContext, StageRecycling, StagePlacement} {
		if len(led.Stage(stage)) == 0 {
			t.Errorf("no decisions recorded for stage %q", stage)
		}
	}
	for ci := range plan.Counters {
		found := false
		for _, d := range led.ForCounter(ci) {
			if d.Kind == "counter-classified" {
				found = true
				if d.Reason == "" {
					t.Errorf("counter %d classified without a reason", ci)
				}
			}
		}
		if !found {
			t.Errorf("counter %d has no classification decision", ci)
		}
	}

	placed := 0
	for _, d := range led.Stage(StagePlacement) {
		if d.Kind == "slot-assigned" {
			placed++
			if d.Reason == "" || len(d.Sites) == 0 {
				t.Errorf("placement decision without reason/site: %+v", d)
			}
		}
	}
	if placed != plan.PlacedObjects {
		t.Errorf("placement decisions %d != placed objects %d", placed, plan.PlacedObjects)
	}

	// The synthetic churn site recycles, so a ring-sized entry must name it.
	ringSized := false
	for _, d := range led.Stage(StageRecycling) {
		if d.Kind == "ring-sized" {
			ringSized = true
			if !strings.Contains(d.Reason, "peak simultaneously-live") {
				t.Errorf("ring reason lacks geometry rationale: %q", d.Reason)
			}
		}
	}
	if !ringSized {
		t.Error("no ring-sized decision despite the churn site")
	}
}

// TestLedgerDeterministic: identical inputs record the identical decision
// sequence — the ledger is an exportable, reproducible artifact.
func TestLedgerDeterministic(t *testing.T) {
	_, a := buildLedger(t, nil)
	_, b := buildLedger(t, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical plan builds produced different ledgers")
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("ledger JSON not byte-identical across identical builds")
	}
	rt, err := ReadLedgerJSON(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt, a) {
		t.Fatal("ledger JSON round trip lost decisions")
	}
}

// TestLedgerNilSafe: a nil ledger records nothing and never panics, and
// planning without one produces the identical plan.
func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Record(Decision{Stage: StageMining})
	if l.Len() != 0 || l.ForSite(1) != nil || l.ForCounter(0) != nil || l.Stage(StageMining) != nil {
		t.Fatal("nil ledger not inert")
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	withLed, _ := buildLedger(t, nil)
	cfg := DefaultPlanConfig("synth", VariantHDSHot)
	without, _, err := BuildPlan(synthTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withLed, without) {
		t.Fatal("recording the ledger changed the plan")
	}
}

// TestLedgerRecyclingDisabled and budget truncation reasons.
func TestLedgerConfigReasons(t *testing.T) {
	_, led := buildLedger(t, func(c *PlanConfig) { c.RecycleRatio = 0 })
	found := false
	for _, d := range led.Stage(StageRecycling) {
		if d.Kind == "recycling-disabled" {
			found = true
		}
	}
	if !found {
		t.Error("no recycling-disabled decision with RecycleRatio 0")
	}

	_, led = buildLedger(t, func(c *PlanConfig) { c.MaxRegionBytes = 64 })
	truncated := 0
	for _, d := range led.Stage(StagePlacement) {
		if d.Kind == "budget-truncated" {
			truncated++
			if !strings.Contains(d.Reason, "budget") {
				t.Errorf("truncation reason lacks budget: %q", d.Reason)
			}
		}
	}
	if truncated == 0 {
		t.Error("64-byte budget truncated nothing")
	}
}

// TestLedgerForSite: site-scoped lookup joins classification and
// placement decisions for one site.
func TestLedgerForSite(t *testing.T) {
	_, led := buildLedger(t, nil)
	ds := led.ForSite(mem.SiteID(1))
	if len(ds) == 0 {
		t.Fatal("no decisions recorded for hot site 1")
	}
	stages := map[string]bool{}
	for _, d := range ds {
		stages[d.Stage] = true
	}
	if !stages[StageContext] {
		t.Errorf("site 1 decisions missing context stage: %v", stages)
	}
}
