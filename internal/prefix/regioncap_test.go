package prefix

import (
	"testing"
)

func TestMaxRegionBytesCapsPlacement(t *testing.T) {
	a := synthTrace()
	uncapped, _, err := BuildPlan(a, DefaultPlanConfig("synth", VariantHot))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPlanConfig("synth", VariantHot)
	cfg.MaxRegionBytes = uncapped.RegionSize / 2
	capped, _, err := BuildPlan(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if capped.RegionSize > cfg.MaxRegionBytes {
		t.Errorf("region %d exceeds cap %d", capped.RegionSize, cfg.MaxRegionBytes)
	}
	if capped.PlacedObjects >= uncapped.PlacedObjects {
		t.Errorf("cap did not reduce placement: %d vs %d", capped.PlacedObjects, uncapped.PlacedObjects)
	}
	if capped.PlacedObjects == 0 {
		t.Error("a half-size cap should still place the hottest objects")
	}
	if err := capped.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMaxRegionBytesKeepsRings(t *testing.T) {
	a := synthTrace()
	cfg := DefaultPlanConfig("synth", VariantHot)
	cfg.MaxRegionBytes = 300 // big enough only for the recycling ring
	plan, _, err := BuildPlan(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasRing := false
	for i := range plan.Counters {
		if plan.Counters[i].Recycle != nil {
			hasRing = true
		}
	}
	if !hasRing {
		t.Error("rings must survive a tight cap (they are small and bounded)")
	}
}

func TestMaxRegionBytesRuntimeStillCorrect(t *testing.T) {
	a := synthTrace()
	cfg := DefaultPlanConfig("synth", VariantHot)
	cfg.MaxRegionBytes = 128
	plan, _, err := BuildPlan(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dropped objects must fall back to malloc without any error — the
	// correctness argument of §2.3 is independent of the cap.
	al := NewAllocator(plan, cost())
	for i := 0; i < 50; i++ {
		addr, _ := al.Malloc(1, 0, 32)
		al.Free(addr)
	}
}
