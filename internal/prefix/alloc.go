package prefix

import (
	"prefix/internal/cachesim"
	"prefix/internal/context"
	"prefix/internal/machine"
	"prefix/internal/mem"
	"prefix/internal/obs"
	"prefix/internal/simalloc"
)

// Capture accumulates the runtime statistics behind Tables 5 and 6: how
// many allocations matched the plan and were served from the preallocated
// region (malloc calls avoided), how many frees were intercepted, and how
// many distinct objects were captured.
type Capture struct {
	MallocsAvoided  uint64
	FreesAvoided    uint64
	ReallocsInPlace uint64
	ReallocsMoved   uint64
	FallbackMallocs uint64
	// HybridRejects counts matching ids rejected by the §2.2.2 hybrid
	// call-stack check (would-be spurious captures).
	HybridRejects uint64
	// StaticCaptured is the number of distinct static slots ever filled;
	// RecycledCaptured the number of placements into recycling rings.
	StaticCaptured   uint64
	RecycledCaptured uint64
	CheckInstr       uint64 // total instrumentation instructions executed
}

// CallsAvoided is the Table 6 "Calls Avoided" figure: heap mallocs that
// became preallocated placements.
func (c Capture) CallsAvoided() uint64 { return c.MallocsAvoided }

// Publish reports the capture statistics — placements, pattern-check
// outcomes, recycling hits, fallbacks — into reg under the given label
// pairs. Nil-safe on a nil registry.
func (c Capture) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	reg.Counter("prefix_capture_mallocs_avoided_total", kv...).Add(c.MallocsAvoided)
	reg.Counter("prefix_capture_frees_avoided_total", kv...).Add(c.FreesAvoided)
	reg.Counter("prefix_capture_reallocs_in_place_total", kv...).Add(c.ReallocsInPlace)
	reg.Counter("prefix_capture_reallocs_moved_total", kv...).Add(c.ReallocsMoved)
	reg.Counter("prefix_capture_fallback_mallocs_total", kv...).Add(c.FallbackMallocs)
	reg.Counter("prefix_capture_hybrid_rejects_total", kv...).Add(c.HybridRejects)
	reg.Counter("prefix_capture_static_total", kv...).Add(c.StaticCaptured)
	reg.Counter("prefix_capture_recycled_total", kv...).Add(c.RecycledCaptured)
	reg.Counter("prefix_capture_check_instructions_total", kv...).Add(c.CheckInstr)
}

// Allocator executes a Plan: the instrumented malloc/free/realloc of the
// paper's Figures 4–7. Allocations that do not match the plan fall back to
// the ordinary heap, so program semantics never depend on the plan being
// right — mirroring the paper's correctness argument.
type Allocator struct {
	plan *Plan
	cost cachesim.CostModel

	counters []mem.Instance    // current counter values
	patterns []context.Pattern // runtime matchers, index-aligned with plan.Counters

	// Static slot state.
	slotLive map[uint64]bool      // region offset -> occupied
	byAddr   map[mem.Addr]Slot    // live region address -> slot
	ringOf   map[mem.Addr]ringRef // live ring address -> which ring slot

	// Recycling rings, index-aligned with plan.Counters (nil when the
	// counter has no ring).
	rings []*ring

	fallback *simalloc.Heap
	cap      Capture
}

type ring struct {
	plan RecyclePlan
	free []bool
}

type ringRef struct {
	counter int
	slot    int
}

// NewAllocator builds the runtime for a validated plan.
func NewAllocator(plan *Plan, cost cachesim.CostModel) *Allocator {
	a := &Allocator{
		plan:     plan,
		cost:     cost,
		counters: make([]mem.Instance, len(plan.Counters)),
		patterns: make([]context.Pattern, len(plan.Counters)),
		slotLive: make(map[uint64]bool),
		byAddr:   make(map[mem.Addr]Slot),
		ringOf:   make(map[mem.Addr]ringRef),
		rings:    make([]*ring, len(plan.Counters)),
		fallback: simalloc.New(0x0001_0000),
	}
	for i := range plan.Counters {
		a.patterns[i] = plan.Counters[i].Pattern()
		if r := plan.Counters[i].Recycle; r != nil {
			rg := &ring{plan: *r, free: make([]bool, r.N)}
			for j := range rg.free {
				rg.free[j] = true
			}
			a.rings[i] = rg
		}
	}
	return a
}

// Name implements machine.Allocator.
func (a *Allocator) Name() string { return a.plan.Variant.String() }

// Plan returns the plan being executed.
func (a *Allocator) Plan() *Plan { return a.plan }

// Capture returns the runtime capture statistics.
func (a *Allocator) Capture() Capture { return a.cap }

// Region returns the preallocated region range.
func (a *Allocator) Region() mem.Range { return a.plan.Region() }

// hybridSigInstr models the call-stack hash comparison the hybrid
// context adds on top of the id check.
const hybridSigInstr = 8

// Malloc implements machine.Allocator (paper Figure 4, and Figure 7 for
// recycling counters).
func (a *Allocator) Malloc(site mem.SiteID, stack mem.StackSig, size uint64) (mem.Addr, uint64) {
	ci, instrumented := a.plan.SiteCounter[site]
	if !instrumented {
		a.cap.FallbackMallocs++
		return a.fallback.Malloc(size), a.cost.MallocInstr
	}
	a.counters[ci]++
	id := a.counters[ci]
	check := a.patterns[ci].CheckInstr()
	a.cap.CheckInstr += check

	// Figure 7: object recycling.
	if rg := a.rings[ci]; rg != nil {
		slot := int(uint64(id-1) % uint64(rg.plan.N))
		if rg.free[slot] && size <= rg.plan.SlotSize {
			rg.free[slot] = false
			addr := RegionBase + mem.Addr(rg.plan.Base+uint64(slot)*rg.plan.SlotSize)
			a.ringOf[addr] = ringRef{counter: ci, slot: slot}
			a.cap.MallocsAvoided++
			a.cap.RecycledCaptured++
			return addr, check + 4
		}
		a.cap.FallbackMallocs++
		return a.fallback.Malloc(size), a.cost.MallocInstr + check
	}

	// Figure 4: static preallocated placement. Under the hybrid context
	// (§2.2.2) the profiled call-stack signature must match as well.
	if a.patterns[ci].Matches(id) {
		if sigs := a.plan.Counters[ci].Sigs; sigs != nil {
			a.cap.CheckInstr += hybridSigInstr
			if want, ok := sigs[id]; ok && want != stack {
				a.cap.HybridRejects++
				a.cap.FallbackMallocs++
				return a.fallback.Malloc(size), a.cost.MallocInstr + check + hybridSigInstr
			}
		}
		if slot, ok := a.plan.Counters[ci].SlotOf[id]; ok && size <= slot.Size && !a.slotLive[slot.Offset] {
			a.slotLive[slot.Offset] = true
			addr := RegionBase + mem.Addr(slot.Offset)
			a.byAddr[addr] = slot
			a.cap.MallocsAvoided++
			a.cap.StaticCaptured++
			return addr, check + 4
		}
	}
	a.cap.FallbackMallocs++
	return a.fallback.Malloc(size), a.cost.MallocInstr + check
}

// regionCheckInstr models the `ObjectAddress ∈ PreallocMemory` range check
// added to every free/realloc site (Figures 5 and 6).
const regionCheckInstr = 2

// Free implements machine.Allocator (paper Figure 5).
func (a *Allocator) Free(addr mem.Addr) uint64 {
	if a.plan.Region().Contains(addr) {
		if ref, ok := a.ringOf[addr]; ok {
			a.rings[ref.counter].free[ref.slot] = true
			delete(a.ringOf, addr)
			a.cap.FreesAvoided++
			return regionCheckInstr + 2
		}
		if slot, ok := a.byAddr[addr]; ok {
			a.slotLive[slot.Offset] = false
			delete(a.byAddr, addr)
			a.cap.FreesAvoided++
			return regionCheckInstr + 2
		}
		// Address inside the region that we did not hand out: treat as a
		// no-op mark, keeping the transformation semantics-preserving.
		a.cap.FreesAvoided++
		return regionCheckInstr + 2
	}
	a.fallback.Free(addr)
	return a.cost.FreeInstr + regionCheckInstr
}

// Realloc implements machine.Allocator (paper Figure 6).
func (a *Allocator) Realloc(addr mem.Addr, size uint64) (mem.Addr, uint64) {
	if a.plan.Region().Contains(addr) {
		var cur uint64
		var release func()
		if ref, ok := a.ringOf[addr]; ok {
			cur = a.rings[ref.counter].plan.SlotSize
			release = func() {
				a.rings[ref.counter].free[ref.slot] = true
				delete(a.ringOf, addr)
			}
		} else if slot, ok := a.byAddr[addr]; ok {
			cur = slot.Size
			release = func() {
				a.slotLive[slot.Offset] = false
				delete(a.byAddr, addr)
			}
		}
		if size <= cur {
			// Common case per the paper: the new size fits the
			// preallocated slot.
			a.cap.ReallocsInPlace++
			return addr, regionCheckInstr + 2
		}
		// Move the object out of the region: malloc, copy, mark free.
		na := a.fallback.Malloc(size)
		if release != nil {
			release()
		}
		a.cap.ReallocsMoved++
		copyInstr := cur / 8 // one instruction per copied word
		return na, a.cost.MallocInstr + regionCheckInstr + copyInstr
	}
	na, _ := a.fallback.Realloc(addr, size)
	return na, a.cost.ReallocInstr + regionCheckInstr
}

// PeakBytes returns the modeled peak memory: the whole preallocated
// region (reserved up front) plus the fallback heap's peak.
func (a *Allocator) PeakBytes() uint64 {
	return a.plan.RegionSize + a.fallback.Stats().PeakBytes
}

// Publish reports the allocator's full runtime state into reg: the
// capture statistics, region size/occupancy gauges, and the fallback
// heap's footprint and fragmentation. Nil-safe on a nil registry.
func (a *Allocator) Publish(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	a.cap.Publish(reg, kv...)

	var staticLive uint64
	for _, slot := range a.byAddr {
		staticLive += slot.Size
	}
	var ringLive uint64
	for _, rg := range a.rings {
		if rg == nil {
			continue
		}
		for _, free := range rg.free {
			if !free {
				ringLive += rg.plan.SlotSize
			}
		}
	}
	reg.Gauge("prefix_region_bytes", kv...).Set(float64(a.plan.RegionSize))
	reg.Gauge("prefix_region_live_bytes", kv...).Set(float64(staticLive + ringLive))
	if a.plan.RegionSize > 0 {
		reg.Gauge("prefix_region_occupancy", kv...).Set(float64(staticLive+ringLive) / float64(a.plan.RegionSize))
	}
	reg.Gauge("prefix_peak_bytes", kv...).Set(float64(a.PeakBytes()))
	a.fallback.Stats().Publish(reg, kv...)
}

var _ machine.Allocator = (*Allocator)(nil)
